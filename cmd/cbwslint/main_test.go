package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunExitCodes pins the driver's exit-status convention end to end:
// 2 for usage errors, 1 for findings and load failures, 0 when clean.
func TestRunExitCodes(t *testing.T) {
	tests := []struct {
		name       string
		args       []string
		wantCode   int
		wantStdout string // substring, "" to skip
		wantStderr string // substring, "" to skip
	}{
		{
			name:     "bad flag is a usage error",
			args:     []string{"-nonsense"},
			wantCode: 2,
		},
		{
			name:       "no packages is a usage error",
			args:       []string{},
			wantCode:   2,
			wantStderr: "usage: cbwslint",
		},
		{
			name:       "list exits clean",
			args:       []string{"-list"},
			wantCode:   0,
			wantStdout: "cbws/hotpathalloc",
		},
		{
			name:     "unresolvable pattern is a runtime failure",
			args:     []string{"./does-not-exist"},
			wantCode: 1,
		},
		{
			name:       "findings exit 1",
			args:       []string{"../../internal/lint/testdata/src/batchalias"},
			wantCode:   1,
			wantStdout: "(cbws/batchalias)",
			wantStderr: "findings",
		},
		{
			name:     "clean package exits 0",
			args:     []string{"."},
			wantCode: 0,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("exit code = %d, want %d\nstdout: %s\nstderr: %s",
					code, tc.wantCode, stdout.String(), stderr.String())
			}
			if tc.wantStdout != "" && !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Errorf("stdout %q does not contain %q", stdout.String(), tc.wantStdout)
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tc.wantStderr)
			}
		})
	}
}

package cache

import (
	"math/rand"
	"testing"

	"cbws/internal/mem"
)

// refCache is a deliberately naive reference implementation of a
// set-associative LRU cache with instant fills (no MSHR/timing): per
// set, an ordered slice from MRU to LRU. The real Cache, when driven
// with fills that complete instantly, must agree with it on every
// hit/miss outcome.
type refCache struct {
	ways int
	sets map[uint64][]mem.LineAddr
	mask uint64
}

func newRefCache(sets, ways int) *refCache {
	return &refCache{ways: ways, sets: make(map[uint64][]mem.LineAddr), mask: uint64(sets - 1)}
}

// access returns true on hit and updates LRU/contents like a
// write-allocate cache with instant fill.
func (r *refCache) access(l mem.LineAddr) bool {
	idx := uint64(l) & r.mask
	set := r.sets[idx]
	for i, tag := range set {
		if tag == l {
			// Move to MRU position.
			copy(set[1:i+1], set[:i])
			set[0] = l
			return true
		}
	}
	// Miss: insert at MRU, evict LRU if full.
	set = append([]mem.LineAddr{l}, set...)
	if len(set) > r.ways {
		set = set[:r.ways]
	}
	r.sets[idx] = set
	return false
}

func TestCacheMatchesReferenceModel(t *testing.T) {
	const sets, ways = 8, 4
	cfg := Config{Name: "ref", SizeBytes: sets * ways * mem.LineSize, Ways: ways, LatencyCycles: 1, MSHRs: 4}
	for seed := int64(0); seed < 20; seed++ {
		c := mustCache(t, cfg)
		ref := newRefCache(sets, ways)
		rng := rand.New(rand.NewSource(seed))
		now := uint64(0)
		for i := 0; i < 5000; i++ {
			now += 10 // instant fills: every prior fill has completed
			// Skewed address distribution to exercise both hits and
			// evictions.
			l := mem.LineAddr(rng.Intn(3 * sets * ways))
			got := c.Access(l, now)
			want := ref.access(l)
			if got.Hit != want {
				t.Fatalf("seed %d access %d line %v: cache hit=%v, reference hit=%v",
					seed, i, l, got.Hit, want)
			}
			if got.FilledNew {
				c.Fill(l, now, 0, false)
			}
			if got.Merged {
				t.Fatalf("seed %d access %d: unexpected merge with instant fills", seed, i)
			}
		}
	}
}

func TestCacheMatchesReferenceWithInvalidations(t *testing.T) {
	const sets, ways = 4, 2
	cfg := Config{Name: "ref2", SizeBytes: sets * ways * mem.LineSize, Ways: ways, LatencyCycles: 1, MSHRs: 4}
	c := mustCache(t, cfg)
	ref := newRefCache(sets, ways)
	rng := rand.New(rand.NewSource(42))
	now := uint64(0)
	// Mirror invalidations into the reference by removing the line.
	refInvalidate := func(l mem.LineAddr) {
		idx := uint64(l) & ref.mask
		set := ref.sets[idx]
		for i, tag := range set {
			if tag == l {
				ref.sets[idx] = append(set[:i], set[i+1:]...)
				return
			}
		}
	}
	for i := 0; i < 5000; i++ {
		now += 10
		l := mem.LineAddr(rng.Intn(2 * sets * ways))
		if rng.Intn(10) == 0 {
			c.Invalidate(l)
			refInvalidate(l)
			continue
		}
		got := c.Access(l, now)
		want := ref.access(l)
		if got.Hit != want {
			t.Fatalf("access %d line %v: cache hit=%v, reference hit=%v", i, l, got.Hit, want)
		}
		if got.FilledNew {
			c.Fill(l, now, 0, false)
		}
	}
}

package lint_test

import (
	"testing"

	"cbws/internal/lint"
	"cbws/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	linttest.Run(t, lint.Determinism, "testdata/src/determinism")
}

// Sweep runs the full prefetcher comparison over the memory-intensive
// benchmark group — a miniature of the paper's Figures 12 and 14 —
// using the public API plus the harness.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"cbws/internal/harness"
	"cbws/internal/workload"
)

func main() {
	opts := harness.DefaultOptions()
	opts.Sim.MaxInstructions = 1_500_000
	opts.Sim.WarmupInstructions = 500_000
	opts.Parallel = 8
	m := harness.NewMatrix(opts)

	specs := workload.MemoryIntensive()
	factories := harness.Prefetchers()
	if err := m.Fill(specs, factories); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-24s", "benchmark")
	for _, f := range factories {
		fmt.Printf("  %10s", f.Name)
	}
	fmt.Println("  (IPC)")
	for _, spec := range specs {
		fmt.Printf("%-24s", spec.Name)
		for _, f := range factories {
			r, err := m.Get(spec, f)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %10.3f", r.Metrics.IPC())
		}
		fmt.Println()
	}

	// Headline: CBWS+SMS speedup over standalone SMS.
	sms, _ := harness.FactoryByName("sms")
	hybrid, _ := harness.FactoryByName("cbws+sms")
	var logSum, n float64
	for _, spec := range specs {
		a, err1 := m.Get(spec, sms)
		b, err2 := m.Get(spec, hybrid)
		if err1 != nil || err2 != nil {
			os.Exit(1)
		}
		if a.Metrics.IPC() > 0 {
			logSum += math.Log(b.Metrics.IPC() / a.Metrics.IPC())
			n++
		}
	}
	fmt.Printf("\nCBWS+SMS speedup over SMS (geomean, MI group): %.2fx\n", math.Exp(logSum/n))
}

package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	apiv1 "cbws/api/v1"
)

// fakeWorker is a minimal in-memory daemon speaking just enough of the
// v1 API for routing tests: submissions are keyed by SHA-256 of the
// body (so every worker agrees on content addresses, like a
// homogeneous fleet), jobs complete instantly, results are the body
// echoed back.
type fakeWorker struct {
	ts *httptest.Server

	mu       sync.Mutex
	submits  int
	results  map[string][]byte
	statuses int
}

func newFakeWorker(t *testing.T) *fakeWorker {
	f := &fakeWorker{results: make(map[string][]byte)}
	f.ts = httptest.NewServer(http.HandlerFunc(f.serve))
	t.Cleanup(f.ts.Close)
	return f
}

func bodyKey(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

func (f *fakeWorker) serve(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case r.Method == http.MethodPost && r.URL.Path == apiv1.PathJobs:
		body, _ := io.ReadAll(r.Body)
		key := bodyKey(body)
		f.submits++
		f.results[key] = body
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(apiv1.JobView{Key: key, Status: apiv1.StatusQueued})
	case strings.HasPrefix(r.URL.Path, apiv1.PathJobs+"/"):
		key := strings.TrimPrefix(r.URL.Path, apiv1.PathJobs+"/")
		f.statuses++
		if _, ok := f.results[key]; !ok {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(apiv1.ErrorBody{Error: "unknown job"})
			return
		}
		json.NewEncoder(w).Encode(apiv1.JobView{Key: key, Status: apiv1.StatusDone})
	case strings.HasPrefix(r.URL.Path, apiv1.PathResults+"/"):
		key := strings.TrimPrefix(r.URL.Path, apiv1.PathResults+"/")
		data, ok := f.results[key]
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(apiv1.ErrorBody{Error: "no result"})
			return
		}
		w.Write(data)
	default:
		w.WriteHeader(http.StatusNotFound)
	}
}

func (f *fakeWorker) submitCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.submits
}

// newFakeFleet builds n fake workers and a cluster client over them.
func newFakeFleet(t *testing.T, n int) (map[string]*fakeWorker, *Client) {
	t.Helper()
	fleet := make(map[string]*fakeWorker, n)
	var urls []string
	for i := 0; i < n; i++ {
		f := newFakeWorker(t)
		fleet[f.ts.URL] = f
		urls = append(urls, f.ts.URL)
	}
	c, err := New(urls, func(w *apiv1.Client) { w.Poll = 0 })
	if err != nil {
		t.Fatal(err)
	}
	return fleet, c
}

// TestSubmitRoutesToOwner checks every submission lands on exactly the
// ring owner of its route key.
func TestSubmitRoutesToOwner(t *testing.T) {
	fleet, c := newFakeFleet(t, 3)
	for i := 0; i < 24; i++ {
		body := []byte(fmt.Sprintf(`{"workload":"w%d","prefetcher":"p"}`, i))
		route := string(body)
		before := map[string]int{}
		for url, f := range fleet {
			before[url] = f.submitCount()
		}
		_, worker, err := c.Submit(route, body)
		if err != nil {
			t.Fatal(err)
		}
		if owner := c.Owner(route); worker != owner {
			t.Fatalf("cell %d went to %s, ring owner is %s", i, worker, owner)
		}
		for url, f := range fleet {
			want := before[url]
			if url == worker {
				want++
			}
			if got := f.submitCount(); got != want {
				t.Fatalf("worker %s saw %d submits, want %d", url, got, want)
			}
		}
	}
}

// TestSubmitFailsOverToSuccessor kills a route's owner and checks the
// submission lands on the next worker in the key's ring sequence, with
// the dead worker remembered as down.
func TestSubmitFailsOverToSuccessor(t *testing.T) {
	fleet, c := newFakeFleet(t, 3)
	body := []byte(`{"workload":"w","prefetcher":"p"}`)
	route := string(body)
	seq := c.ring.Sequence(route)
	fleet[seq[0]].ts.Close() // owner dies

	view, worker, err := c.Submit(route, body)
	if err != nil {
		t.Fatal(err)
	}
	if worker != seq[1] {
		t.Fatalf("failover went to %s, want first successor %s", worker, seq[1])
	}
	if view.Key != bodyKey(body) {
		t.Fatalf("view key %s", view.Key)
	}
	down := c.Down()
	if len(down) != 1 || down[0] != seq[0] {
		t.Fatalf("down list %v, want [%s]", down, seq[0])
	}

	// Later submissions skip the corpse without re-probing it.
	if _, worker2, err := c.Submit(route, body); err != nil || worker2 != seq[1] {
		t.Fatalf("second submit: %s, %v", worker2, err)
	}
}

// TestCollectResubmitsWhenWorkerDies submits to the owner, kills it,
// and checks Collect reroutes the cell to a live worker and still
// returns the result.
func TestCollectResubmitsWhenWorkerDies(t *testing.T) {
	fleet, c := newFakeFleet(t, 3)
	body := []byte(`{"workload":"w","prefetcher":"p"}`)
	route := string(body)
	view, worker, err := c.Submit(route, body)
	if err != nil {
		t.Fatal(err)
	}
	fleet[worker].ts.Close() // dies before the client collects

	gotView, data, served, err := c.Collect(worker, route, body, view.Key)
	if err != nil {
		t.Fatal(err)
	}
	if served == worker {
		t.Fatal("Collect claims the dead worker served the result")
	}
	if gotView.Status != apiv1.StatusDone || string(data) != string(body) {
		t.Fatalf("collected %+v %q", gotView, data)
	}
}

// TestCollectDetectsHeterogeneousFleet checks a resubmission that keys
// differently (fleet on mixed code versions / base configs) is an
// explicit error, not a silently different result.
func TestCollectDetectsHeterogeneousFleet(t *testing.T) {
	fleet, c := newFakeFleet(t, 2)
	body := []byte(`{"workload":"w","prefetcher":"p"}`)
	route := string(body)
	_, worker, err := c.Submit(route, body)
	if err != nil {
		t.Fatal(err)
	}
	// Lie about the expected key: the resubmission path must notice the
	// fleet "disagrees" with it. Kill the owner to force that path.
	fleet[worker].ts.Close()
	wrong := strings.Repeat("0", 64)
	_, _, _, err = c.Collect(worker, route, body, wrong)
	if err == nil || !strings.Contains(err.Error(), "not homogeneous") {
		t.Fatalf("got %v, want heterogeneous-fleet error", err)
	}
}

// TestResultAnyFindsOffOwnerCopy stores a result only on the LAST
// worker of the key's sequence and checks ResultAny still finds it.
func TestResultAnyFindsOffOwnerCopy(t *testing.T) {
	fleet, c := newFakeFleet(t, 3)
	body := []byte(`{"workload":"w","prefetcher":"p"}`)
	key := bodyKey(body)
	seq := c.ring.Sequence(key)
	holder := fleet[seq[len(seq)-1]]
	holder.mu.Lock()
	holder.results[key] = body
	holder.mu.Unlock()

	data, err := c.ResultAny(key)
	if err != nil || string(data) != string(body) {
		t.Fatalf("ResultAny: %q, %v", data, err)
	}
	if _, err := c.ResultAny(strings.Repeat("f", 64)); err == nil {
		t.Fatal("ResultAny invented a result for an unknown key")
	}
}

// TestAllWorkersDown checks total fleet loss is a clear error.
func TestAllWorkersDown(t *testing.T) {
	fleet, c := newFakeFleet(t, 2)
	for _, f := range fleet {
		f.ts.Close()
	}
	if _, _, err := c.Submit("k", []byte("{}")); err == nil {
		t.Fatal("submit succeeded against a dead fleet")
	}
	if _, err := c.StatusAny("k"); err == nil {
		t.Fatal("status succeeded against a dead fleet")
	}
}

func TestNewRejectsBadFleet(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := New([]string{"http://a", "http://a"}, nil); err == nil {
		t.Fatal("duplicate worker accepted")
	}
}

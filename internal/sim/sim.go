// Package sim wires the timing engine, the cache hierarchy and a
// prefetcher into one simulated system and runs workloads through it —
// the equivalent of the paper's gem5 configuration (Table II).
package sim

import (
	"context"
	"fmt"

	"cbws/internal/branch"
	"cbws/internal/cache"
	"cbws/internal/engine"
	"cbws/internal/mem"
	"cbws/internal/prefetch"
	"cbws/internal/stats"
	"cbws/internal/trace"
)

// Config is the full-system configuration.
type Config struct {
	Core   engine.Config
	Memory cache.HierarchyConfig
	// Branch configures the tournament branch predictor (Table II).
	Branch branch.Config
	// IdealBranchPrediction disables the predictor: every branch is
	// predicted correctly, as in the pre-branch model (for ablation).
	IdealBranchPrediction bool
	// MaxInstructions truncates the workload (0 = unlimited). The paper
	// simulates 1e9 instructions per benchmark; the default harness
	// uses smaller windows with proportionally scaled working sets.
	MaxInstructions uint64
	// WarmupInstructions excludes the first N instructions from the
	// reported metrics (caches and predictors warm normally), the
	// equivalent of the paper's fast-forward to each benchmark's
	// region of interest. Must be below MaxInstructions when both are
	// set.
	WarmupInstructions uint64
}

// DefaultConfig returns the Table II system.
func DefaultConfig() Config {
	return Config{
		Core:   engine.DefaultConfig(),
		Memory: cache.DefaultHierarchyConfig(),
		Branch: branch.DefaultConfig(),
	}
}

// Result is the outcome of one workload × prefetcher run.
type Result struct {
	Workload   string
	Prefetcher string
	Metrics    stats.Metrics
}

func (r Result) String() string {
	return fmt.Sprintf("%s/%s: %s", r.Workload, r.Prefetcher, r.Metrics)
}

// port adapts the hierarchy to the engine's MemPort and BlockObserver,
// training the prefetcher on every demand access in commit order and
// forwarding block markers, exactly as the paper's prefetcher observes
// the in-order commit stage.
type port struct {
	h  *cache.Hierarchy
	pf prefetch.Prefetcher
	// noTrain short-circuits the per-access observer plumbing for the
	// no-prefetch baseline, which has no training input and never
	// queues a prefetch.
	noTrain bool
	now     uint64
	issue   prefetch.IssueFunc
}

func newPort(h *cache.Hierarchy, pf prefetch.Prefetcher) *port {
	p := &port{h: h, pf: pf}
	_, p.noTrain = pf.(*prefetch.None)
	p.issue = func(l mem.LineAddr) { p.h.Prefetch(l, p.now) }
	return p
}

func (p *port) access(pc uint64, addr mem.Addr, write bool, now uint64) uint64 {
	var info cache.AccessInfo
	p.h.AccessInto(&info, pc, addr, write, now)
	if p.noTrain {
		return info.ReadyAt
	}
	p.now = now
	p.h.DrainPrefetchQueue(now)
	p.pf.OnAccess(prefetch.Access{
		PC:    pc,
		Addr:  addr,
		Line:  info.Line,
		Write: write,
		HitL1: info.HitL1,
		HitL2: info.HitL2,
		PfHit: info.PfHit,
	}, p.issue)
	return info.ReadyAt
}

// Load implements engine.MemPort.
func (p *port) Load(pc uint64, addr mem.Addr, now uint64) uint64 {
	return p.access(pc, addr, false, now)
}

// Store implements engine.MemPort.
func (p *port) Store(pc uint64, addr mem.Addr, now uint64) uint64 {
	return p.access(pc, addr, true, now)
}

// BlockBegin implements engine.BlockObserver.
func (p *port) BlockBegin(id int) { p.pf.OnBlockBegin(id) }

// BlockEnd implements engine.BlockObserver.
func (p *port) BlockEnd(id int) { p.pf.OnBlockEnd(id, p.issue) }

// Run simulates workload wl on the configured system with prefetcher pf
// (which is Reset first) and returns the collected metrics. It is
// RunContext with a background context and no options.
func Run(cfg Config, wl trace.Generator, pf prefetch.Prefetcher) (Result, error) {
	return RunContext(context.Background(), cfg, wl, pf)
}

// RunContext simulates workload wl on the configured system with
// prefetcher pf (which is Reset first) and returns the collected
// metrics. The context is checked at batch boundaries: cancelling it
// aborts the run promptly and returns ctx.Err(). Options attach
// observability — WithProbe samples a full metrics snapshot plus
// ROB/MSHR occupancy every WithSampleInterval committed instructions,
// WithProgress reports the committed instruction count at the same
// cadence. With no options the run takes exactly the unobserved fast
// path and produces bit-identical results to prior releases.
func RunContext(ctx context.Context, cfg Config, wl trace.Generator, pf prefetch.Prefetcher, opts ...Option) (Result, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if (o.probe != nil || o.progress != nil) && o.interval == 0 {
		o.interval = DefaultSampleInterval
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	h, err := cache.NewHierarchy(cfg.Memory)
	if err != nil {
		return Result{}, err
	}
	pf.Reset()
	if eo, ok := pf.(prefetch.EvictionObserver); ok {
		h.OnL1Evict(eo.OnCacheEvict)
	}
	p := newPort(h, pf)
	eng, err := engine.New(cfg.Core, p, p)
	if err != nil {
		return Result{}, err
	}
	if !cfg.IdealBranchPrediction {
		bp, err := branch.New(cfg.Branch)
		if err != nil {
			return Result{}, err
		}
		eng.AttachBranchPredictor(bp)
	}

	// Warmup handling: the first WarmupInstructions train caches and
	// predictors but are excluded from the reported metrics, like the
	// paper's fast-forward to each benchmark's region of interest.
	sink := &runSink{eng: eng, h: h, warmup: cfg.WarmupInstructions,
		warmed: cfg.WarmupInstructions == 0,
		probe:  o.probe, progress: o.progress, interval: o.interval,
		nextMark: o.interval}
	if done := ctx.Done(); done != nil {
		// Background and TODO contexts can never be cancelled; leaving
		// ctx nil keeps the per-batch check a single pointer test.
		sink.ctx = ctx
	}

	var gen trace.Generator = wl
	if cfg.MaxInstructions > 0 {
		gen = trace.Limit{Gen: wl, Max: cfg.MaxInstructions}
	}
	trace.DriveBatches(gen, sink)
	if sink.err != nil {
		return Result{}, sink.err
	}

	eng.Finish()
	h.Finish() // settles wrong counts (unused prefetched lines drained)
	final := takeSnapshot(eng, h)

	m := final.sub(sink.base)
	if sink.probe != nil {
		sink.emitSample(final, true)
	}
	return Result{Workload: wl.Name(), Prefetcher: pf.Name(), Metrics: m}, nil
}

// runSink drives the engine, takes the warmup snapshot and emits probe
// samples. The engine's instruction counter advances by exactly
// Event.Count per event, so the event that crosses the next boundary —
// the warmup end or a sampling mark — can be located by a plain count
// scan, no simulation needed, and the batch split there: the snapshot
// lands after exactly the same event the per-event pipeline would have
// snapshotted at, while every fragment still takes the engine's batch
// fast path. With no probe, progress callback or cancellable context
// attached, the post-warmup path is a single boundary check followed by
// the plain batched consume.
type runSink struct {
	eng    *engine.Engine
	h      *cache.Hierarchy
	warmup uint64
	warmed bool
	base   snapshot

	// ctx is non-nil only for cancellable contexts; it is polled once
	// per batch (at most every 256 events).
	ctx context.Context
	err error

	probe    Probe
	progress func(instructions uint64)
	interval uint64 // sampling period in instructions; 0 disables marks
	nextMark uint64 // next sampling boundary, in committed instructions
	prev     snapshot
	seq      int
	sample   Sample // reused across samples: steady-state sampling allocates nothing
}

func (s *runSink) Consume(ev trace.Event) {
	batch := [1]trace.Event{ev}
	s.ConsumeBatch(batch[:])
}

// nextBoundary returns the smallest pending instruction boundary (the
// warmup end or the next sampling mark) and whether one exists.
func (s *runSink) nextBoundary() (uint64, bool) {
	if !s.warmed {
		if s.interval != 0 && s.nextMark < s.warmup {
			return s.nextMark, true
		}
		return s.warmup, true
	}
	if s.interval != 0 {
		return s.nextMark, true
	}
	return 0, false
}

// crossBoundary handles the boundary the engine just committed past:
// the warmup end snapshots the metric base, sampling marks report
// progress and emit a probe sample.
func (s *runSink) crossBoundary() {
	done := s.eng.Stats.Instructions
	atWarmup := !s.warmed && done >= s.warmup
	if atWarmup {
		s.warmed = true
		s.base = takeSnapshot(s.eng, s.h)
		s.prev = s.base
	}
	if s.interval != 0 && done >= s.nextMark {
		for s.nextMark <= done {
			s.nextMark += s.interval
		}
		if s.progress != nil {
			s.progress(done)
		}
		// Samples cover only the measured region: marks inside warmup
		// (and the mark coinciding with the warmup end, whose interval
		// would mix warm and measured execution) report progress only.
		if s.probe != nil && s.warmed && !atWarmup {
			s.emitSample(takeSnapshot(s.eng, s.h), false)
		}
	}
}

// emitSample fills the reused Sample from the snapshot cur and hands it
// to the probe. The caller guarantees cur was taken at the current
// engine state.
func (s *runSink) emitSample(cur snapshot, final bool) {
	now := cur.engine.Cycles
	s.sample = Sample{
		Index:           s.seq,
		Instructions:    s.eng.Stats.Instructions,
		Cycles:          now,
		Interval:        cur.sub(s.prev),
		Cumulative:      cur.sub(s.base),
		ROBOccupancy:    s.eng.ROBOccupancy(),
		L1MSHROccupancy: s.h.L1.MSHROccupancy(now),
		L2MSHROccupancy: s.h.L2.MSHROccupancy(now),
		Final:           final,
	}
	s.seq++
	s.prev = cur
	s.probe.OnSample(&s.sample)
}

// ConsumeBatch implements trace.BatchSink. Batches are split at every
// pending boundary so that snapshots land on exact instruction counts;
// a cancelled context stops the producer cooperatively.
func (s *runSink) ConsumeBatch(batch []trace.Event) bool {
	if s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			s.err = err
			return false
		}
	}
	for {
		bound, ok := s.nextBoundary()
		if !ok {
			return s.eng.ConsumeBatch(batch)
		}
		remaining := bound - s.eng.Stats.Instructions
		var cum uint64
		split := -1
		for i := range batch {
			cum += uint64(batch[i].Count())
			if cum >= remaining {
				split = i
				break
			}
		}
		if split < 0 {
			return s.eng.ConsumeBatch(batch)
		}
		s.eng.ConsumeBatch(batch[: split+1 : split+1])
		s.crossBoundary()
		batch = batch[split+1:]
		if len(batch) == 0 {
			return true
		}
	}
}

// snapshot captures every counter that contributes to the reported
// metrics, so a warmup window can be subtracted out.
type snapshot struct {
	engine engine.Stats
	t      cache.Timeliness
	l2     cache.Stats
	bytes  uint64
	demand uint64
	wb     uint64
	misses uint64
}

func takeSnapshot(eng *engine.Engine, h *cache.Hierarchy) snapshot {
	return snapshot{
		engine: eng.Snapshot(),
		t:      h.Timeliness,
		l2:     h.L2.Stats,
		bytes:  h.BytesFromMem,
		demand: h.DemandBytes,
		wb:     h.WritebackBytes,
		misses: h.DemandL2Misses(),
	}
}

// sub converts the counter deltas between two snapshots into metrics.
func (s snapshot) sub(base snapshot) stats.Metrics {
	es, bs := s.engine, base.engine
	t, bt := s.t, base.t
	loopFrac := 0.0
	if es.TotalSlots > bs.TotalSlots {
		loopFrac = float64(es.BlockSlots-bs.BlockSlots) / float64(es.TotalSlots-bs.TotalSlots)
	}
	return stats.Metrics{
		Instructions: es.Instructions - bs.Instructions,
		Cycles:       es.Cycles - bs.Cycles,
		Loads:        es.Loads - bs.Loads,
		Stores:       es.Stores - bs.Stores,
		Branches:     es.Branches - bs.Branches,
		Mispredicts:  es.Mispredicts - bs.Mispredicts,
		Blocks:       es.Blocks - bs.Blocks,
		LoopFrac:     loopFrac,

		DemandL2:       t.DemandL2 - bt.DemandL2,
		DemandL2Misses: s.misses - base.misses,

		Timely:    t.Timely - bt.Timely,
		ShorterWT: t.ShorterWT - bt.ShorterWT,
		NonTimely: t.NonTimely - bt.NonTimely,
		Missing:   t.Missing - bt.Missing,
		PlainHit:  t.PlainHit - bt.PlainHit,
		Wrong:     s.l2.PrefetchWrong - base.l2.PrefetchWrong,

		BytesFromMem:      s.bytes - base.bytes,
		DemandBytes:       s.demand - base.demand,
		WritebackBytes:    s.wb - base.wb,
		PrefetchIssued:    s.l2.PrefetchIssued - base.l2.PrefetchIssued,
		PrefetchRedundant: s.l2.PrefetchRedundant - base.l2.PrefetchRedundant,
		PrefetchDropped:   s.l2.PrefetchDropped - base.l2.PrefetchDropped,
		PrefetchUseful:    s.l2.PrefetchUseful - base.l2.PrefetchUseful,
		PrefetchLate:      s.l2.PrefetchLate - base.l2.PrefetchLate,
	}
}

package lint_test

import (
	"testing"

	"cbws/internal/lint"
	"cbws/internal/lint/linttest"
)

func TestAtomicDiscipline(t *testing.T) {
	linttest.Run(t, lint.AtomicDiscipline, "testdata/src/atomicdiscipline")
}

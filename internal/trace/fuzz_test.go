package trace

import (
	"bytes"
	"testing"

	"cbws/internal/mem"
)

// FuzzDecode feeds arbitrary bytes to the trace reader: it must never
// panic, and every successfully decoded stream must contain only valid
// event kinds.
func FuzzDecode(f *testing.F) {
	// Seed with a valid trace.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "seed")
	if err != nil {
		f.Fatal(err)
	}
	w.Consume(Event{Kind: BlockBegin, Block: 1})
	w.Consume(Event{Kind: Load, PC: 0x400000, Addr: 0x12345})
	w.Consume(Event{Kind: Branch, PC: 0x400004, Taken: true})
	w.Consume(Event{Kind: Instr, N: 9})
	w.Consume(Event{Kind: BlockEnd, Block: 1})
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("CBWT\x01\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		n := 0
		_ = r.Decode(SinkFunc(func(e Event) {
			if e.Kind > Branch {
				t.Fatalf("decoded invalid kind %d", e.Kind)
			}
			n++
			if n > 1<<20 {
				t.Fatal("unbounded decode")
			}
		}))
	})
}

// FuzzRoundTrip encodes fuzz-shaped events and verifies decode
// reproduces them exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0x400000), uint64(0x1000), 5, true)
	f.Fuzz(func(t *testing.T, pc, addr uint64, n int, taken bool) {
		events := []Event{
			{Kind: Load, PC: pc, Addr: mem.Addr(addr)},
			{Kind: Branch, PC: pc ^ 0x40, Taken: taken},
			{Kind: Store, PC: pc + 4, Addr: mem.Addr(addr ^ 0xFFF)},
		}
		if n > 0 {
			events = append(events, Event{Kind: Instr, N: n})
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, "fuzz")
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range events {
			w.Consume(e)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		if err := r.Decode(SinkFunc(func(e Event) {
			if i >= len(events) {
				t.Fatal("extra events decoded")
			}
			if e != events[i] {
				t.Fatalf("event %d: got %+v want %+v", i, e, events[i])
			}
			i++
		})); err != nil {
			t.Fatal(err)
		}
		if i != len(events) {
			t.Fatalf("decoded %d of %d", i, len(events))
		}
	})
}

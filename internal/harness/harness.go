// Package harness runs the paper's evaluation: every workload × every
// prefetcher on the Table II system, memoizing results so that all
// figures derive from one simulation matrix, and rendering each figure
// and table of the paper as a report.Table.
package harness

import (
	"fmt"
	"runtime"
	"sync"

	"cbws/internal/core"
	"cbws/internal/prefetch"
	"cbws/internal/sim"
	"cbws/internal/workload"
)

// Factory names and constructs one prefetching scheme.
type Factory struct {
	Name string
	New  func() prefetch.Prefetcher
}

// Prefetchers returns the six evaluated schemes in the paper's plotting
// order: no-prefetch, stride, GHB PC/DC, GHB G/DC, SMS, CBWS, CBWS+SMS.
func Prefetchers() []Factory {
	return []Factory{
		{Name: "none", New: func() prefetch.Prefetcher { return prefetch.NewNone() }},
		{Name: "stride", New: func() prefetch.Prefetcher { return prefetch.NewStride(prefetch.StrideConfig{}) }},
		{Name: "ghb-pc/dc", New: func() prefetch.Prefetcher { return prefetch.NewGHB(prefetch.GHBConfig{Mode: prefetch.PCDC}) }},
		{Name: "ghb-g/dc", New: func() prefetch.Prefetcher { return prefetch.NewGHB(prefetch.GHBConfig{Mode: prefetch.GlobalDC}) }},
		{Name: "sms", New: func() prefetch.Prefetcher { return prefetch.NewSMS(prefetch.SMSConfig{}) }},
		{Name: "cbws", New: func() prefetch.Prefetcher { return core.New(core.Config{}) }},
		{Name: "cbws+sms", New: func() prefetch.Prefetcher {
			return core.NewComposite(core.New(core.Config{}), prefetch.NewSMS(prefetch.SMSConfig{}))
		}},
	}
}

// ExtendedPrefetchers returns the evaluated schemes plus extension
// baselines beyond the paper's roster (AMPM and Markov, which the
// paper's related-work section discusses but does not evaluate).
func ExtendedPrefetchers() []Factory {
	return append(Prefetchers(),
		Factory{Name: "ampm", New: func() prefetch.Prefetcher { return prefetch.NewAMPM(prefetch.AMPMConfig{}) }},
		Factory{Name: "markov", New: func() prefetch.Prefetcher { return prefetch.NewMarkov(prefetch.MarkovConfig{}) }},
	)
}

// FactoryByName looks up an evaluated or extension scheme.
func FactoryByName(name string) (Factory, bool) {
	for _, f := range ExtendedPrefetchers() {
		if f.Name == name {
			return f, true
		}
	}
	return Factory{}, false
}

// Options configures a harness run.
type Options struct {
	Sim sim.Config
	// Parallel bounds the number of simulations run concurrently by
	// Fill. Zero or negative means one per available CPU
	// (runtime.GOMAXPROCS(0)), the default.
	Parallel int
}

// DefaultOptions returns the Table II system with a 4M-instruction
// window per run, the first 1M excluded from metrics as warmup (the
// paper simulates 1e9 instructions starting at each benchmark's
// region of interest). Fill parallelism defaults to the full machine
// width.
func DefaultOptions() Options {
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = 4_000_000
	cfg.WarmupInstructions = 1_000_000
	return Options{Sim: cfg, Parallel: runtime.GOMAXPROCS(0)}
}

// cell is one memoized matrix entry. The sync.Once gives Get
// single-flight semantics: concurrent requests for the same cell run
// the simulation exactly once and all block on that one run, instead
// of racing to simulate it redundantly.
type cell struct {
	once sync.Once
	res  sim.Result
	err  error
}

// Matrix memoizes workload × prefetcher simulation results.
type Matrix struct {
	opts Options

	mu    sync.Mutex
	cells map[string]*cell
}

// NewMatrix creates an empty result matrix.
func NewMatrix(opts Options) *Matrix {
	return &Matrix{opts: opts, cells: make(map[string]*cell)}
}

// Options returns the matrix configuration.
func (m *Matrix) Options() Options { return m.opts }

// Get simulates (or returns the memoized result of) one cell. Safe for
// concurrent use; concurrent Gets of the same cell simulate it once.
func (m *Matrix) Get(spec workload.Spec, f Factory) (sim.Result, error) {
	key := spec.Name + "\x00" + f.Name
	m.mu.Lock()
	c, ok := m.cells[key]
	if !ok {
		c = &cell{}
		m.cells[key] = c
	}
	m.mu.Unlock()
	c.once.Do(func() {
		c.res, c.err = sim.Run(m.opts.Sim, spec.Make(), f.New())
		if c.err != nil {
			c.err = fmt.Errorf("harness: %s/%s: %w", spec.Name, f.Name, c.err)
		}
	})
	return c.res, c.err
}

// Fill simulates every cell of specs × factories, using up to
// opts.Parallel goroutines (all CPUs when Parallel <= 0). Each
// simulation is fully independent, so parallel cells share nothing.
func (m *Matrix) Fill(specs []workload.Spec, factories []Factory) error {
	type job struct {
		s workload.Spec
		f Factory
	}
	var jobs []job
	for _, s := range specs {
		for _, f := range factories {
			jobs = append(jobs, job{s, f})
		}
	}
	par := m.opts.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, par)
	errs := make(chan error, len(jobs))
	for _, j := range jobs {
		sem <- struct{}{}
		go func(j job) {
			defer func() { <-sem }()
			_, err := m.Get(j.s, j.f)
			errs <- err
		}(j)
	}
	for range jobs {
		if err := <-errs; err != nil {
			return err
		}
	}
	return nil
}

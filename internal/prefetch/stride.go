package prefetch

import (
	"cbws/internal/mem"
)

// StrideConfig parametrizes the stride prefetcher. The paper configures
// an unrealistically large 256-entry fully-associative table to give the
// baseline the benefit of the doubt (Section VII).
type StrideConfig struct {
	TableEntries int
	Degree       int // prefetch depth once a stream reaches steady state
	PCBits       int // tag width used for storage accounting (48 in Table III)
	StrideBits   int // stride width used for storage accounting (12)
	// IssueOnHits also issues prefetches from L1-hitting accesses — an
	// aggressive policy the statically-configured baseline cannot
	// afford in the paper (it would pollute non-loop phases); off by
	// default, available for ablation.
	IssueOnHits bool
}

// DefaultStrideConfig returns the Table II/III configuration.
func DefaultStrideConfig() StrideConfig {
	return StrideConfig{TableEntries: 256, Degree: 2, PCBits: 48, StrideBits: 12}
}

// Two-bit confidence state machine of the classic reference prediction
// table (Chen & Baer / Fu & Patel).
type strideState uint8

const (
	strideInitial strideState = iota
	strideTransient
	strideSteady
)

type strideEntry struct {
	pc       uint64
	lastLine mem.LineAddr
	stride   int64
	state    strideState
	lru      uint64
	trained  bool // has recorded at least one access
}

// Stride is a PC-indexed reference prediction table prefetcher.
type Stride struct {
	NoBlocks
	cfg     StrideConfig
	entries map[uint64]*strideEntry
	tick    uint64
}

// NewStride builds a stride prefetcher; zero-value fields of cfg fall
// back to defaults.
func NewStride(cfg StrideConfig) *Stride {
	def := DefaultStrideConfig()
	if cfg.TableEntries == 0 {
		cfg.TableEntries = def.TableEntries
	}
	if cfg.Degree == 0 {
		cfg.Degree = def.Degree
	}
	if cfg.PCBits == 0 {
		cfg.PCBits = def.PCBits
	}
	if cfg.StrideBits == 0 {
		cfg.StrideBits = def.StrideBits
	}
	return &Stride{cfg: cfg, entries: make(map[uint64]*strideEntry, cfg.TableEntries)}
}

// Name implements Prefetcher.
func (s *Stride) Name() string { return "stride" }

// Reset implements Prefetcher.
func (s *Stride) Reset() {
	s.entries = make(map[uint64]*strideEntry, s.cfg.TableEntries)
	s.tick = 0
}

func (s *Stride) lookup(pc uint64) *strideEntry {
	if e, ok := s.entries[pc]; ok {
		return e
	}
	if len(s.entries) >= s.cfg.TableEntries {
		// Evict the LRU entry of the fully-associative table.
		var victim uint64
		best := ^uint64(0)
		for k, e := range s.entries {
			if e.lru < best {
				best = e.lru
				victim = k
			}
		}
		delete(s.entries, victim)
	}
	e := &strideEntry{pc: pc}
	s.entries[pc] = e
	return e
}

// OnAccess trains the table on every demand access and prefetches
// Degree lines ahead of steady strided streams.
func (s *Stride) OnAccess(a Access, issue IssueFunc) {
	s.tick++
	e := s.lookup(a.PC)
	e.lru = s.tick
	if !e.trained {
		// Fresh entry: just record the address.
		e.trained = true
		e.lastLine = a.Line
		return
	}
	delta := a.Line.Delta(e.lastLine)
	e.lastLine = a.Line
	if delta == 0 {
		return // same line; no stream information
	}
	if delta == e.stride {
		if e.state < strideSteady {
			e.state++
		}
	} else {
		e.stride = delta
		e.state = strideTransient
		return
	}
	// The table trains on every access but, like the other static
	// baselines, issues prefetches only when the triggering access
	// missed the whole hierarchy (conservative prefetch-on-miss
	// policy for a prefetcher filling the L2).
	if e.state == strideSteady && (s.cfg.IssueOnHits || a.Miss()) {
		for d := 1; d <= s.cfg.Degree; d++ {
			issue(a.Line.Add(e.stride * int64(d)))
		}
	}
}

// StorageBits implements the Table III estimate:
// (PC + 2 × stride) × entries.
func (s *Stride) StorageBits() uint64 {
	return uint64(s.cfg.PCBits+2*s.cfg.StrideBits) * uint64(s.cfg.TableEntries)
}

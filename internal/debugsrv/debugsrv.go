// Package debugsrv serves the standard Go diagnostics endpoints —
// /debug/pprof/* (CPU, heap, goroutine profiles) and /debug/vars
// (expvar, including memstats) — for the CLIs' opt-in -debug-addr flag.
// Serving is best-effort and fully detached from the simulation: the
// listener runs on its own goroutine and is torn down with the process.
package debugsrv

import (
	_ "expvar" // registers /debug/vars on the default mux
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
)

// Serve starts the diagnostics HTTP server on addr (e.g. ":6060" or
// "127.0.0.1:0") and returns the bound address. The server uses the
// default mux, where the pprof and expvar handlers self-register.
func Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("debugsrv: %w", err)
	}
	go func() {
		// The listener lives for the process; Serve only returns on
		// close, and its error has nowhere useful to go.
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}

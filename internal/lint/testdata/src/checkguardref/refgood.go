package check

// Reference models may depend on the shared leaf packages — the
// declared interfaces — just not on the optimized implementations.
import (
	_ "cbws/internal/mem"
	_ "cbws/internal/trace"
)

package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	apiv1 "cbws/api/v1"
	"cbws/internal/debugsrv"
	"cbws/internal/sim"
	"cbws/internal/workload"
)

// SubmitRequest is the POST /v1/jobs body (wire type, see api/v1).
type SubmitRequest = apiv1.SubmitRequest

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // client went away; nothing useful to do
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiv1.ErrorBody{Error: fmt.Sprintf(format, args...)})
}

// maxBodyBytes bounds submit request bodies; configs are small.
const maxBodyBytes = 1 << 20

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs          submit a job (idempotent by content address)
//	GET  /v1/jobs/{key}    job status with progress
//	GET  /v1/results/{key} the run-record JSON for a completed job
//	GET  /v1/workloads     workload roster
//	GET  /v1/prefetchers   prefetcher roster
//	GET  /healthz          liveness + drain state
//	GET  /debug/...        pprof + expvar diagnostics (debugsrv)
//
// plus the streaming-simulation API (see api/v1 PathStreams):
//
//	POST   /v1/streams              open a stream (admission-controlled)
//	GET    /v1/streams/{id}         stream status
//	POST   /v1/streams/{id}/chunks  append CBWT trace bytes
//	POST   /v1/streams/{id}/close   end of input, finalize
//	DELETE /v1/streams/{id}         abort
//	GET    /v1/streams/{id}/probe   live probe snapshot
//
// The wire contract (paths, body shapes, status mapping) is the api/v1
// package; this handler is its server side.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+apiv1.PathJobs, s.handleSubmit)
	mux.HandleFunc("GET "+apiv1.PathJobs+"/{key}", s.handleStatus)
	mux.HandleFunc("GET "+apiv1.PathResults+"/{key}", s.handleResult)
	mux.HandleFunc("GET "+apiv1.PathWorkloads, s.handleWorkloads)
	mux.HandleFunc("GET "+apiv1.PathPrefetchers, s.handlePrefetchers)
	mux.HandleFunc("GET "+apiv1.PathHealthz, s.handleHealthz)
	mux.HandleFunc("POST "+apiv1.PathStreams, s.handleStreamOpen)
	mux.HandleFunc("GET "+apiv1.PathStreams+"/{id}", s.handleStreamStatus)
	mux.HandleFunc("POST "+apiv1.PathStreams+"/{id}/chunks", s.handleStreamChunk)
	mux.HandleFunc("POST "+apiv1.PathStreams+"/{id}/close", s.handleStreamClose)
	mux.HandleFunc("DELETE "+apiv1.PathStreams+"/{id}", s.handleStreamAbort)
	mux.HandleFunc("GET "+apiv1.PathStreams+"/{id}/probe", s.handleStreamProbe)
	mux.Handle("GET /debug/", debugsrv.Handler())
	return mux
}

// ParseSpec decodes one submit request against the base configuration.
// Shared by the HTTP handler and by clients (cbwsctl) that want the
// canonical key of a request without a round trip.
func ParseSpec(body []byte, base sim.Config) (JobSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		return JobSpec{}, fmt.Errorf("parsing request: %w", err)
	}
	spec := JobSpec{Workload: req.Workload, Prefetcher: req.Prefetcher, Config: base, WorkloadHash: req.WorkloadHash}
	if len(req.Config) > 0 {
		cfg, err := sim.ReadConfig(bytes.NewReader(req.Config), base)
		if err != nil {
			return JobSpec{}, err
		}
		spec.Config = cfg
	}
	if err := spec.Validate(); err != nil {
		return JobSpec{}, err
	}
	return spec, nil
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	spec, err := ParseSpec(body, s.cfg.BaseSim)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	view, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds()+0.5)))
		writeError(w, http.StatusTooManyRequests, "%v (retry after %s)", err, s.cfg.RetryAfter)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, ErrCorpusMismatch):
		writeError(w, http.StatusConflict, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	code := http.StatusOK
	if view.Status == StatusQueued {
		code = http.StatusAccepted
	}
	writeJSON(w, code, view)
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	view, ok := s.Status(key)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", key)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	data, ok := s.Result(key)
	if !ok {
		if view, live := s.Status(key); live {
			writeError(w, http.StatusNotFound, "job %q is %s, result not available", key, view.Status)
		} else {
			writeError(w, http.StatusNotFound, "unknown job %q", key)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (s *Service) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	var out []apiv1.RosterEntry
	for _, spec := range workload.All() {
		out = append(out, apiv1.RosterEntry{Name: spec.Name, Suite: spec.Suite, MI: spec.MI})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handlePrefetchers(w http.ResponseWriter, r *http.Request) {
	var out []apiv1.RosterEntry
	for _, f := range s.prefetcherRoster() {
		out = append(out, apiv1.RosterEntry{Name: f})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, apiv1.Healthz{
		Status:      "ok",
		Draining:    s.draining.Load(),
		CodeVersion: s.cfg.CodeVersion,
	})
}

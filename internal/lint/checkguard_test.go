package lint_test

import (
	"testing"

	"cbws/internal/lint"
	"cbws/internal/lint/linttest"
)

func TestCheckGuard(t *testing.T) {
	linttest.Run(t, lint.CheckGuard, "testdata/src/checkguard")
}

func TestCheckGuardRefImports(t *testing.T) {
	linttest.Run(t, lint.CheckGuard, "testdata/src/checkguardref")
}

package service

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"cbws/internal/harness"
)

func baseSpec() JobSpec {
	return JobSpec{
		Workload:   "stencil-default",
		Prefetcher: "cbws",
		Config:     harness.DefaultOptions().Sim,
	}
}

func TestKeyDeterministic(t *testing.T) {
	a, b := baseSpec(), baseSpec()
	if a.Key("v1") != b.Key("v1") {
		t.Fatal("equal specs hash differently")
	}
	if a.Key("v1") == a.Key("v2") {
		t.Fatal("code version not covered by the key")
	}
	if len(a.Key("v1")) != 64 {
		t.Fatalf("key is not a sha256 hex string: %q", a.Key("v1"))
	}
}

// TestKeyIgnoresJSONFieldOrder submits the same effective request with
// config fields in two different orders (and one omitting defaults)
// and requires identical keys: the content address covers effective
// values, not the submitted encoding.
func TestKeyIgnoresJSONFieldOrder(t *testing.T) {
	base := harness.DefaultOptions().Sim
	bodies := []string{
		`{"workload":"stencil-default","prefetcher":"cbws","config":{"MaxInstructions":200000,"WarmupInstructions":50000}}`,
		`{"prefetcher":"cbws","config":{"WarmupInstructions":50000,"MaxInstructions":200000},"workload":"stencil-default"}`,
	}
	var keys []string
	for _, b := range bodies {
		spec, err := ParseSpec([]byte(b), base)
		if err != nil {
			t.Fatalf("ParseSpec(%s): %v", b, err)
		}
		keys = append(keys, spec.Key("v1"))
	}
	if keys[0] != keys[1] {
		t.Fatalf("field order changed the key:\n%s\n%s", keys[0], keys[1])
	}

	// Stating a default explicitly must be the same as omitting it.
	explicit := `{"workload":"stencil-default","prefetcher":"cbws","config":{"MaxInstructions":200000,"WarmupInstructions":50000,"IdealBranchPrediction":false}}`
	spec, err := ParseSpec([]byte(explicit), base)
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.Key("v1"); got != keys[0] {
		t.Fatalf("explicit default changed the key: %s vs %s", got, keys[0])
	}
}

// mutate changes one leaf field to a different value of its type.
func mutate(v reflect.Value) {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 1)
	case reflect.String:
		v.SetString(v.String() + "x")
	default:
		panic("unsupported kind " + v.Kind().String())
	}
}

// walkLeaves visits every settable leaf field of a struct value,
// depth-first, reporting the dotted path of each.
func walkLeaves(v reflect.Value, path string, visit func(path string, leaf reflect.Value)) {
	if v.Kind() == reflect.Struct {
		for i := 0; i < v.NumField(); i++ {
			f := v.Type().Field(i)
			if !f.IsExported() {
				continue
			}
			walkLeaves(v.Field(i), path+"."+f.Name, visit)
		}
		return
	}
	visit(path, v)
}

// TestKeyCoversEveryConfigField mutates each leaf field of sim.Config
// by reflection and requires the key to change: a new config field can
// never silently alias existing cache entries. The walk also fails on
// field kinds the mutator does not understand, so structural additions
// (slices, maps) force this test to be updated alongside the key
// definition.
func TestKeyCoversEveryConfigField(t *testing.T) {
	want := baseSpec().Key("v1")
	seen := 0
	root := baseSpec()
	walkLeaves(reflect.ValueOf(&root.Config).Elem(), "Config", func(path string, leaf reflect.Value) {
		t.Helper()
		seen++
		spec := baseSpec()
		// Re-walk to the same leaf on the fresh copy and mutate it.
		cur := reflect.ValueOf(&spec.Config).Elem()
		for _, name := range strings.Split(path, ".")[1:] {
			cur = cur.FieldByName(name)
		}
		mutate(cur)
		if got := spec.Key("v1"); got == want {
			t.Errorf("mutating %s did not change the cache key", path)
		}
	})
	if seen < 15 {
		t.Fatalf("config walk found only %d leaves — walker broken?", seen)
	}

	// Identity fields too.
	for _, alter := range []func(*JobSpec){
		func(s *JobSpec) { s.Workload = "429.mcf-ref" },
		func(s *JobSpec) { s.Prefetcher = "sms" },
	} {
		spec := baseSpec()
		alter(&spec)
		if spec.Key("v1") == want {
			t.Error("mutating workload/prefetcher did not change the cache key")
		}
	}
}

// TestKeyCanonicalInputShape pins the canonical pre-hash encoding
// indirectly: the key must be the hash of fixed-order JSON, so a spec
// round-tripped through its own JSON encoding keys identically.
func TestKeyCanonicalInputShape(t *testing.T) {
	spec := baseSpec()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back JobSpec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Key("v1") != spec.Key("v1") {
		t.Fatal("JSON round-trip changed the key")
	}
}

// TestKeyCoversWorkloadHash checks the corpus content address is part
// of the job identity: distinct corpora can never alias, while a spec
// with no hash (generator-backed) keys exactly as specs did before the
// field existed — its canonical bytes must not mention the field at
// all, so old disk caches stay valid.
func TestKeyCoversWorkloadHash(t *testing.T) {
	plain := baseSpec()
	a, b := baseSpec(), baseSpec()
	a.WorkloadHash = strings.Repeat("a", 64)
	b.WorkloadHash = strings.Repeat("b", 64)
	if a.Key("v1") == plain.Key("v1") || b.Key("v1") == plain.Key("v1") {
		t.Fatal("workload hash not covered by the key")
	}
	if a.Key("v1") == b.Key("v1") {
		t.Fatal("different corpus hashes key identically")
	}
	// omitempty on the canonical struct: an empty hash must be absent
	// from the marshaled spec, the same shape the key hashes.
	bs, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(bs), "workload_hash") {
		t.Fatalf("empty workload hash leaked into canonical JSON: %s", bs)
	}
}

func TestValidateWorkloadHash(t *testing.T) {
	ok := baseSpec()
	ok.WorkloadHash = strings.Repeat("0123456789abcdef", 4)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid hash rejected: %v", err)
	}
	short := baseSpec()
	short.WorkloadHash = "abc123"
	if err := short.Validate(); err == nil || !strings.Contains(err.Error(), "workload_hash") {
		t.Fatalf("short hash: got %v", err)
	}
	upper := baseSpec()
	upper.WorkloadHash = strings.Repeat("A", 64)
	if err := upper.Validate(); err == nil || !strings.Contains(err.Error(), "hex") {
		t.Fatalf("non-hex hash: got %v", err)
	}
}

func TestValidateSpec(t *testing.T) {
	ok := baseSpec()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}

	unknownWl := baseSpec()
	unknownWl.Workload = "no-such-benchmark"
	if err := unknownWl.Validate(); err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("unknown workload: got %v", err)
	}

	// The prefetcher miss must carry the registry's case-insensitive
	// suggestion — this exact message lands in HTTP 400 bodies.
	unknownPf := baseSpec()
	unknownPf.Prefetcher = "CBWS"
	err := unknownPf.Validate()
	want := `unknown prefetcher "CBWS" (did you mean "cbws"? valid: none, stride, ghb-pc/dc, ghb-g/dc, sms, cbws, cbws+sms, ampm, markov, pythia, gaze)`
	if err == nil || err.Error() != want {
		t.Fatalf("prefetcher suggestion:\n got %v\nwant %s", err, want)
	}

	unbounded := baseSpec()
	unbounded.Config.MaxInstructions = 0
	unbounded.Config.WarmupInstructions = 0
	if err := unbounded.Validate(); err == nil || !strings.Contains(err.Error(), "MaxInstructions") {
		t.Fatalf("unbounded config: got %v", err)
	}
}

// Annotate demonstrates the compiler side of the paper: a kernel written
// in the mini-IR is analyzed (CFG → dominators → natural loops), its
// innermost tight loop is wrapped in BLOCK_BEGIN/BLOCK_END markers by
// the automatic annotation pass, and the annotated program is executed
// to show the marker placement in the committed instruction stream.
package main

import (
	"fmt"
	"log"

	"cbws/internal/annotate"
	"cbws/internal/interp"
	"cbws/internal/ir"
	"cbws/internal/trace"
)

func main() {
	// sum += a[i*cols + j] over a 4x8 matrix: a doubly-nested loop.
	b := ir.NewBuilder("matsum")
	const base = 1 << 24
	i := b.Const(0)
	j := b.Reg()
	rows := b.Const(4)
	cols := b.Const(8)
	sum := b.Const(0)
	ci := b.Reg()
	cj := b.Reg()
	addr := b.Reg()
	v := b.Reg()
	b.Label("outer")
	b.CmpLT(ci, i, rows)
	b.BrZ(ci, "done")
	b.ConstTo(j, 0)
	b.Label("inner")
	b.CmpLT(cj, j, cols)
	b.BrZ(cj, "iend")
	b.Mul(addr, i, cols)
	b.Add(addr, addr, j)
	b.MulI(addr, addr, 8)
	b.Load(v, addr, base)
	b.Add(sum, sum, v)
	b.AddI(j, j, 1)
	b.Jmp("inner")
	b.Label("iend")
	b.AddI(i, i, 1)
	b.Jmp("outer")
	b.Label("done")
	b.Ret()
	prog := b.MustBuild()

	fmt.Println("=== original program ===")
	fmt.Print(prog)

	res, err := annotate.Annotate(prog, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nannotation pass found %d innermost tight loop(s):\n", len(res.Loops))
	for _, l := range res.Loops {
		fmt.Printf("  block %d: header B%d, latch B%d, %d static instructions\n",
			l.BlockID, l.Header, l.Latch, l.StaticInstrs)
	}

	fmt.Println("\n=== annotated program ===")
	fmt.Print(res.Prog)

	// Execute and show the first events of the committed stream.
	m, err := interp.New(res.Prog, 0)
	if err != nil {
		log.Fatal(err)
	}
	tr := trace.New("matsum")
	if err := m.Run(tr); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== first 20 committed events ===")
	for i, e := range tr.Events {
		if i >= 20 {
			break
		}
		fmt.Printf("  %v\n", e)
	}
	fmt.Printf("(%d events total; only the inner loop carries markers)\n", len(tr.Events))
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cbws/internal/harness"
	"cbws/internal/sim"
	"cbws/internal/workload"
)

// testConfig is a small, fast base system for service tests.
func testConfig() Config {
	base := harness.DefaultOptions().Sim
	base.MaxInstructions = 200_000
	base.WarmupInstructions = 50_000
	return Config{
		Workers:        2,
		QueueDepth:     16,
		BaseSim:        base,
		SampleInterval: 50_000,
		CodeVersion:    "test",
	}
}

func newTestService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = svc.Drain(ctx)
	})
	return svc, ts
}

func postJob(t *testing.T, url, body string) (int, map[string]any, http.Header) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("response is not JSON (%d): %q", resp.StatusCode, raw)
	}
	return resp.StatusCode, m, resp.Header
}

func getJSON(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// waitDone polls the status endpoint until the job reaches a terminal
// state.
func waitDone(t *testing.T, url, key string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, raw := getJSON(t, url+"/v1/jobs/"+key)
		if code != http.StatusOK {
			t.Fatalf("status %s: %d %s", key, code, raw)
		}
		var view JobView
		if err := json.Unmarshal(raw, &view); err != nil {
			t.Fatal(err)
		}
		switch view.Status {
		case StatusDone, StatusFailed, StatusCanceled:
			var m map[string]any
			_ = json.Unmarshal(raw, &m)
			return m
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", key)
	return nil
}

func TestSubmitRunResult(t *testing.T) {
	svc, ts := newTestService(t, testConfig())

	code, m, _ := postJob(t, ts.URL, `{"workload":"stencil-default","prefetcher":"cbws"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, m)
	}
	key, _ := m["key"].(string)
	if len(key) != 64 {
		t.Fatalf("submit returned no content address: %v", m)
	}

	final := waitDone(t, ts.URL, key)
	if final["status"] != string(StatusDone) {
		t.Fatalf("job did not complete: %v", final)
	}
	prog := final["progress"].(map[string]any)
	if prog["instructions"].(float64) != 200_000 {
		t.Fatalf("done job progress: %v", prog)
	}

	code, raw := getJSON(t, ts.URL+"/v1/results/"+key)
	if code != http.StatusOK {
		t.Fatalf("result: %d %s", code, raw)
	}
	var rec harness.RunRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	if err := rec.Validate(); err != nil {
		t.Fatalf("served result is not a valid PR-2 run record: %v", err)
	}

	// The served metrics must be bit-identical to a direct harness run
	// of the same cell — the service adds caching, not new semantics.
	spec, _ := workload.ByName("stencil-default")
	f, _ := harness.FactoryByName("cbws")
	direct, err := harness.NewMatrix(harness.Options{Sim: svc.cfg.BaseSim}).Get(spec, f)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Metrics != direct.Metrics {
		t.Fatalf("served metrics diverge from direct run:\n got %+v\nwant %+v", rec.Metrics, direct.Metrics)
	}
	got := harness.CellHash(sim.Result{Workload: rec.Workload, Prefetcher: rec.Prefetcher, Metrics: rec.Metrics})
	want := harness.CellHash(direct)
	if got != want {
		t.Fatalf("cell hash mismatch: %s vs %s", got, want)
	}

	// Resubmission is answered from the cache.
	code, m, _ = postJob(t, ts.URL, `{"workload":"stencil-default","prefetcher":"cbws"}`)
	if code != http.StatusOK || m["cached"] != true {
		t.Fatalf("resubmit not served from cache: %d %v", code, m)
	}
	if svc.counters.cacheHits.Load() == 0 {
		t.Fatal("cache hit not counted")
	}
}

func TestSubmitIdempotentWhileQueued(t *testing.T) {
	svc, _ := newTestService(t, testConfig())
	spec, err := ParseSpec([]byte(`{"workload":"fft-simlarge","prefetcher":"stride"}`), svc.cfg.BaseSim)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Key != v2.Key {
		t.Fatalf("same spec produced two jobs: %s vs %s", v1.Key, v2.Key)
	}
	if svc.counters.cacheMisses.Load() != 1 {
		t.Fatalf("duplicate submission counted as a second miss: %d", svc.counters.cacheMisses.Load())
	}
}

func TestSubmitErrors(t *testing.T) {
	_, ts := newTestService(t, testConfig())

	// Unknown prefetcher: the 400 body must carry the registry's
	// case-insensitive suggestion verbatim.
	code, m, _ := postJob(t, ts.URL, `{"workload":"stencil-default","prefetcher":"CBWS"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown prefetcher: %d %v", code, m)
	}
	wantMsg := `unknown prefetcher "CBWS" (did you mean "cbws"? valid: none, stride, ghb-pc/dc, ghb-g/dc, sms, cbws, cbws+sms, ampm, markov, pythia, gaze)`
	if m["error"] != wantMsg {
		t.Fatalf("400 body:\n got %v\nwant %s", m["error"], wantMsg)
	}

	code, m, _ = postJob(t, ts.URL, `{"workload":"no-such","prefetcher":"cbws"}`)
	if code != http.StatusBadRequest || !strings.Contains(m["error"].(string), "unknown workload") {
		t.Fatalf("unknown workload: %d %v", code, m)
	}

	code, m, _ = postJob(t, ts.URL, `{"workload":"stencil-default","prefetcher":"cbws","config":{"NoSuchField":1}}`)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown config field: %d %v", code, m)
	}

	code, m, _ = postJob(t, ts.URL, `{"workload":"stencil-default","prefetcher":"cbws","config":{"WarmupInstructions":300000}}`)
	if code != http.StatusBadRequest {
		t.Fatalf("invalid config (warmup >= max): %d %v", code, m)
	}

	code, raw := getJSON(t, ts.URL+"/v1/jobs/"+strings.Repeat("0", 64))
	if code != http.StatusNotFound {
		t.Fatalf("unknown job: %d %s", code, raw)
	}
	code, raw = getJSON(t, ts.URL+"/v1/results/"+strings.Repeat("0", 64))
	if code != http.StatusNotFound {
		t.Fatalf("unknown result: %d %s", code, raw)
	}
}

func TestBackpressureAndDrain(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	// One long-running job occupies the single worker (~2s), one fills
	// the queue, the third must bounce with 429 + Retry-After.
	long := cfg.BaseSim
	long.MaxInstructions = 60_000_000
	long.WarmupInstructions = 1_000_000
	cfg.BaseSim = long
	svc, ts := newTestService(t, cfg)

	submit := func(wl, pf string) (int, map[string]any, http.Header) {
		return postJob(t, ts.URL, fmt.Sprintf(`{"workload":%q,"prefetcher":%q}`, wl, pf))
	}
	code, m1, _ := submit("stencil-default", "none")
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d %v", code, m1)
	}
	code, m2, _ := submit("fft-simlarge", "none")
	if code != http.StatusAccepted {
		t.Fatalf("second submit: %d %v", code, m2)
	}
	code, m3, hdr := submit("bfs-1m", "none")
	if code != http.StatusTooManyRequests {
		t.Fatalf("third submit should bounce: %d %v", code, m3)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if svc.counters.rejected.Load() != 1 {
		t.Fatalf("rejected counter: %d", svc.counters.rejected.Load())
	}

	// A rejected spec must be resubmittable once there is room — the
	// bounce may not leave a tombstone in the job table.
	bouncedKey := mustSpec(t, svc, "bfs-1m", "none").Key(svc.cfg.CodeVersion)
	if _, ok := svc.Job(bouncedKey); ok {
		t.Fatal("429'd submission left a job behind")
	}

	// Drain: the running job finishes, the queued one is canceled.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	k1 := m1["key"].(string)
	view1, ok := svc.Status(k1)
	if !ok || view1.Status != StatusDone {
		t.Fatalf("running job after drain: %+v (ok=%v), want done", view1, ok)
	}
	k2 := m2["key"].(string)
	view2, ok := svc.Status(k2)
	if !ok || view2.Status != StatusCanceled {
		t.Fatalf("queued job after drain: %+v (ok=%v), want canceled", view2, ok)
	}

	// Draining services refuse new work.
	if _, err := svc.Submit(mustSpec(t, svc, "radix-simlarge", "none")); err != ErrDraining {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}
}

func mustSpec(t *testing.T, svc *Service, wl, pf string) JobSpec {
	t.Helper()
	spec, err := ParseSpec([]byte(fmt.Sprintf(`{"workload":%q,"prefetcher":%q}`, wl, pf)), svc.cfg.BaseSim)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestJobTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.JobTimeout = 30 * time.Millisecond
	big := cfg.BaseSim
	big.MaxInstructions = 500_000_000 // would take minutes
	big.WarmupInstructions = 1_000_000
	cfg.BaseSim = big
	svc, ts := newTestService(t, cfg)

	view, err := svc.Submit(mustSpec(t, svc, "stencil-default", "none"))
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, ts.URL, view.Key)
	if final["status"] != string(StatusFailed) {
		t.Fatalf("timed-out job: %v, want failed", final)
	}
	if !strings.Contains(final["error"].(string), "context deadline exceeded") {
		t.Fatalf("timeout error not surfaced: %v", final["error"])
	}
}

func TestCachePersistenceAcrossServices(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.CacheDir = dir

	svc1, ts1 := newTestService(t, cfg)
	view, err := svc1.Submit(mustSpec(t, svc1, "stencil-default", "stride"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts1.URL, view.Key)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "index.json")); err != nil {
		t.Fatalf("drain did not persist the cache index: %v", err)
	}

	// A new daemon over the same directory serves the result without
	// simulating: submission comes back done+cached immediately.
	svc2, _ := newTestService(t, cfg)
	got, err := svc2.Submit(mustSpec(t, svc2, "stencil-default", "stride"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusDone || !got.Cached {
		t.Fatalf("restarted daemon did not serve from persisted cache: %+v", got)
	}
	if svc2.counters.cacheHits.Load() != 1 || svc2.counters.cacheMisses.Load() != 0 {
		t.Fatalf("hit/miss after restart: %d/%d",
			svc2.counters.cacheHits.Load(), svc2.counters.cacheMisses.Load())
	}
	data, ok := svc2.Result(got.Key)
	if !ok {
		t.Fatal("result bytes missing after restart")
	}
	var rec harness.RunRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if err := rec.Validate(); err != nil {
		t.Fatalf("persisted record invalid: %v", err)
	}
}

func TestHealthzAndRosters(t *testing.T) {
	_, ts := newTestService(t, testConfig())
	code, raw := getJSON(t, ts.URL+"/healthz")
	if code != http.StatusOK || !bytes.Contains(raw, []byte(`"status": "ok"`)) {
		t.Fatalf("healthz: %d %s", code, raw)
	}
	code, raw = getJSON(t, ts.URL+"/v1/workloads")
	if code != http.StatusOK || !bytes.Contains(raw, []byte("stencil-default")) {
		t.Fatalf("workloads roster: %d", code)
	}
	code, raw = getJSON(t, ts.URL+"/v1/prefetchers")
	if code != http.StatusOK || !bytes.Contains(raw, []byte("cbws+sms")) {
		t.Fatalf("prefetchers roster: %d", code)
	}
	code, raw = getJSON(t, ts.URL+"/debug/vars")
	if code != http.StatusOK || !bytes.Contains(raw, []byte("cbwsd")) {
		t.Fatalf("expvar not mounted on service mux: %d %.120s", code, raw)
	}
}

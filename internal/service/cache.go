package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// CacheIndexSchema versions the on-disk index layout.
const CacheIndexSchema = "cbws-result-cache/1"

// CacheMeta is the human-readable identity stored in the index next to
// each content address.
type CacheMeta struct {
	Key        string `json:"key"`
	Workload   string `json:"workload"`
	Prefetcher string `json:"prefetcher"`
	Bytes      int    `json:"bytes"`
}

// cacheIndex is the persisted catalogue of cached results.
type cacheIndex struct {
	Schema  string      `json:"schema"`
	Entries []CacheMeta `json:"entries"`
}

// Cache is the content-addressed result store: encoded run records
// keyed by JobSpec.Key. All entries live in memory — a hit serves
// pre-encoded bytes with no I/O or allocation — and, when a directory
// is configured, each entry is written through to <key>.json so a
// restarted daemon starts warm. The index (index.json) is persisted on
// drain.
type Cache struct {
	dir string

	mu   sync.RWMutex
	mem  map[string][]byte    //cbws:guardedby mu
	meta map[string]CacheMeta //cbws:guardedby mu
}

// keyFileRE matches content-address file names: 64 hex chars + .json.
var keyFileRE = regexp.MustCompile(`^[0-9a-f]{64}\.json$`)

// NewCache opens (and, for a non-empty dir, loads) a result cache.
// Entries are recovered from index.json when present, else by scanning
// the directory for key-shaped files, so a crash before the index was
// persisted loses nothing.
func NewCache(dir string) (*Cache, error) {
	mem := make(map[string][]byte)
	meta := make(map[string]CacheMeta)
	if dir == "" {
		return &Cache{dir: dir, mem: mem, meta: meta}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	keys, err := diskKeys(dir)
	if err != nil {
		return nil, err
	}
	for _, m := range keys {
		data, err := os.ReadFile(filepath.Join(dir, m.Key+".json"))
		if err != nil {
			if os.IsNotExist(err) {
				continue // indexed but never written: skip, don't fail startup
			}
			return nil, fmt.Errorf("cache: %w", err)
		}
		m.Bytes = len(data)
		mem[m.Key] = data
		meta[m.Key] = m
	}
	// The maps are fully built before the Cache is published, so no
	// lock is taken here.
	return &Cache{dir: dir, mem: mem, meta: meta}, nil
}

// diskKeys returns the entries to load: the persisted index union any
// key-shaped files the index does not mention.
func diskKeys(dir string) ([]CacheMeta, error) {
	var out []CacheMeta
	seen := make(map[string]bool)
	if data, err := os.ReadFile(filepath.Join(dir, "index.json")); err == nil {
		var idx cacheIndex
		if err := json.Unmarshal(data, &idx); err != nil {
			return nil, fmt.Errorf("cache: parsing index.json: %w", err)
		}
		if idx.Schema != CacheIndexSchema {
			return nil, fmt.Errorf("cache: index schema %q, want %q", idx.Schema, CacheIndexSchema)
		}
		for _, m := range idx.Entries {
			if !seen[m.Key] {
				seen[m.Key] = true
				out = append(out, m)
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("cache: %w", err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	for _, de := range names {
		name := de.Name()
		if !keyFileRE.MatchString(name) {
			continue
		}
		key := strings.TrimSuffix(name, ".json")
		if !seen[key] {
			seen[key] = true
			out = append(out, CacheMeta{Key: key})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Get returns the pre-encoded result bytes for key. This is the
// cache-hit serving path — a repeated sweep is answered entirely from
// here — and it allocates nothing: the stored bytes are returned as-is
// and must not be mutated by the caller.
//
//cbws:hotpath
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.RLock()
	data, ok := c.mem[key]
	c.mu.RUnlock()
	return data, ok
}

// Meta returns the index entry for key.
func (c *Cache) Meta(key string) (CacheMeta, bool) {
	c.mu.RLock()
	m, ok := c.meta[key]
	c.mu.RUnlock()
	return m, ok
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.mem)
}

// Put stores the encoded result under its content address, writing
// through to disk when a directory is configured. The write is atomic
// (temp file + rename), so a concurrent reader or a crash never
// observes a torn entry.
func (c *Cache) Put(key string, meta CacheMeta, data []byte) error {
	meta.Key = key
	meta.Bytes = len(data)
	c.mu.Lock()
	c.mem[key] = data
	c.meta[key] = meta
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	return writeFileAtomic(filepath.Join(c.dir, key+".json"), data)
}

// PutOnce stores data under key only if the key is absent, reporting
// whether this call's bytes were stored. First write wins: streaming
// finalization uses it so a result already computed by the closed-job
// path (whose bytes include run-local telemetry like wall time) stays
// authoritative, and every later writer is served those exact bytes.
func (c *Cache) PutOnce(key string, meta CacheMeta, data []byte) (stored bool, err error) {
	meta.Key = key
	meta.Bytes = len(data)
	c.mu.Lock()
	if _, ok := c.mem[key]; ok {
		c.mu.Unlock()
		return false, nil
	}
	c.mem[key] = data
	c.meta[key] = meta
	c.mu.Unlock()
	if c.dir == "" {
		return true, nil
	}
	return true, writeFileAtomic(filepath.Join(c.dir, key+".json"), data)
}

// PersistIndex writes the index.json catalogue: every entry sorted by
// key, so the file is byte-stable for a given cache population. Called
// on graceful drain.
func (c *Cache) PersistIndex() error {
	if c.dir == "" {
		return nil
	}
	c.mu.RLock()
	idx := cacheIndex{Schema: CacheIndexSchema}
	for _, m := range c.meta {
		idx.Entries = append(idx.Entries, m)
	}
	c.mu.RUnlock()
	sort.SliceStable(idx.Entries, func(i, j int) bool { return idx.Entries[i].Key < idx.Entries[j].Key })
	data, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(c.dir, "index.json"), append(data, '\n'))
}

// writeFileAtomic writes data to path via a temp file and rename.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// Command cbwsctl is the client for the cbwsd simulation daemon.
//
// Usage:
//
//	cbwsctl [-server URL] submit -workload W -prefetcher P [-n N] [-warmup N] [-wait]
//	        [-workload-hash SHA256]
//	cbwsctl [-server URL] status KEY
//	cbwsctl [-server URL] result KEY [-o FILE]
//	cbwsctl [-server URL] sweep -workloads A,B -prefetchers X,Y [-n N] [-warmup N]
//	        [-golden FILE] [-require-cached] [-out DIR]
//
// submit posts one job and prints its content address (with -wait it
// polls until the job finishes). status and result read a job back by
// that address. sweep drives a full workload × prefetcher matrix:
// every cell is submitted (429 backpressure is honored by sleeping the
// server's Retry-After and retrying), polled to completion, fetched,
// and validated as a run record. With -golden each served result's
// canonical cell hash is compared against the manifest's — the same
// hashes golden/seed.json pins — so a sweep can prove a remote daemon
// bit-identical to the local seed without rerunning anything. With
// -require-cached the sweep fails unless every cell was answered from
// the daemon's content-addressed cache, which is how CI asserts a
// repeated sweep is 100% cache hits.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"cbws/internal/cli"
	"cbws/internal/harness"
	"cbws/internal/service"
	"cbws/internal/sim"
)

func main() {
	cli.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: cbwsctl [-server URL] {submit|status|result|sweep} ...")
	return cli.ExitUsage
}

// run is main with its environment abstracted for tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cbwsctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", "http://127.0.0.1:8344", "cbwsd base URL")
	timeout := fs.Duration("timeout", 10*time.Minute, "overall budget for waiting on jobs")
	poll := fs.Duration("poll", 100*time.Millisecond, "status polling period")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if fs.NArg() == 0 {
		return usage(stderr)
	}
	c := &client{
		base:   strings.TrimRight(*server, "/"),
		hc:     &http.Client{Timeout: 30 * time.Second},
		budget: *timeout,
		poll:   *poll,
		stderr: stderr,
	}
	cmd, rest := fs.Arg(0), fs.Args()[1:]
	switch cmd {
	case "submit":
		return c.cmdSubmit(rest, stdout, stderr)
	case "status":
		return c.cmdStatus(rest, stdout, stderr)
	case "result":
		return c.cmdResult(rest, stdout, stderr)
	case "sweep":
		return c.cmdSweep(rest, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "cbwsctl: unknown command %q\n", cmd)
		return usage(stderr)
	}
}

// client wraps the daemon's HTTP API with 429-aware retry.
type client struct {
	base   string
	hc     *http.Client
	budget time.Duration
	poll   time.Duration
	stderr io.Writer
}

// apiError is a non-2xx response decoded from the daemon's error
// envelope.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return fmt.Sprintf("server: %s (HTTP %d)", e.msg, e.code) }

func decodeError(resp *http.Response, body []byte) error {
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		eb.Error = strings.TrimSpace(string(body))
	}
	return &apiError{code: resp.StatusCode, msg: eb.Error}
}

// submit posts one job, sleeping out 429 backpressure: on queue-full
// the server's Retry-After is honored (with a floor) and the request
// retried until the overall budget is spent.
func (c *client) submit(body []byte) (service.JobView, error) {
	deadline := time.Now().Add(c.budget)
	for {
		resp, err := c.hc.Post(c.base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return service.JobView{}, err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return service.JobView{}, err
		}
		switch {
		case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted:
			var view service.JobView
			if err := json.Unmarshal(raw, &view); err != nil {
				return service.JobView{}, fmt.Errorf("decoding submit response: %w", err)
			}
			return view, nil
		case resp.StatusCode == http.StatusTooManyRequests:
			wait := retryAfter(resp)
			if time.Now().Add(wait).After(deadline) {
				return service.JobView{}, fmt.Errorf("queue stayed full for %s: %w", c.budget, decodeError(resp, raw))
			}
			fmt.Fprintf(c.stderr, "cbwsctl: queue full, retrying in %s\n", wait)
			time.Sleep(wait)
		default:
			return service.JobView{}, decodeError(resp, raw)
		}
	}
}

// retryAfter reads the 429 Retry-After header, flooring unparseable or
// zero values at 100ms so the retry loop never spins.
func retryAfter(resp *http.Response) time.Duration {
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return 100 * time.Millisecond
}

func (c *client) getJSON(path string, v any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp, raw)
	}
	return json.Unmarshal(raw, v)
}

func (c *client) status(key string) (service.JobView, error) {
	var view service.JobView
	err := c.getJSON("/v1/jobs/"+key, &view)
	return view, err
}

func (c *client) result(key string) ([]byte, error) {
	resp, err := c.hc.Get(c.base + "/v1/results/" + key)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp, raw)
	}
	return raw, nil
}

// waitDone polls a job's status until it reaches a terminal state.
func (c *client) waitDone(key string) (service.JobView, error) {
	deadline := time.Now().Add(c.budget)
	for {
		view, err := c.status(key)
		if err != nil {
			return view, err
		}
		switch view.Status {
		case service.StatusDone:
			return view, nil
		case service.StatusFailed, service.StatusCanceled:
			return view, fmt.Errorf("job %s %s: %s", key[:12], view.Status, view.Error)
		}
		if time.Now().After(deadline) {
			return view, fmt.Errorf("job %s still %s after %s", key[:12], view.Status, c.budget)
		}
		time.Sleep(c.poll)
	}
}

// requestBody builds one submit body. n/warm of 0 mean "daemon
// default": no config override is sent at all.
func requestBody(wl, pf, wlHash string, n, warm uint64, warmSet bool) ([]byte, error) {
	req := service.SubmitRequest{Workload: wl, Prefetcher: pf, WorkloadHash: wlHash}
	cfg := map[string]uint64{}
	if n > 0 {
		cfg["MaxInstructions"] = n
	}
	if warmSet {
		cfg["WarmupInstructions"] = warm
	}
	if len(cfg) > 0 {
		b, err := json.Marshal(cfg)
		if err != nil {
			return nil, err
		}
		req.Config = b
	}
	return json.Marshal(req)
}

func (c *client) cmdSubmit(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cbwsctl submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	wl := fs.String("workload", "", "workload name")
	pf := fs.String("prefetcher", "", "prefetcher name")
	n := fs.Uint64("n", 0, "instruction budget (0: daemon default)")
	warm := fs.Uint64("warmup", 0, "warmup instructions")
	wlHash := fs.String("workload-hash", "", "pin the corpus content address the job must run from (daemon 409s on mismatch)")
	wait := fs.Bool("wait", false, "poll until the job finishes")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if *wl == "" || *pf == "" {
		fmt.Fprintln(stderr, "cbwsctl submit: -workload and -prefetcher are required")
		return cli.ExitUsage
	}
	body, err := requestBody(*wl, *pf, *wlHash, *n, *warm, flagSet(fs, "warmup"))
	if err != nil {
		fmt.Fprintf(stderr, "cbwsctl: %v\n", err)
		return cli.ExitFail
	}
	view, err := c.submit(body)
	if err != nil {
		fmt.Fprintf(stderr, "cbwsctl: %v\n", err)
		return cli.ExitFail
	}
	if *wait && view.Status != service.StatusDone {
		if view, err = c.waitDone(view.Key); err != nil {
			fmt.Fprintf(stderr, "cbwsctl: %v\n", err)
			return cli.ExitFail
		}
	}
	printView(stdout, view)
	return cli.ExitOK
}

func flagSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func printView(w io.Writer, view service.JobView) {
	cached := ""
	if view.Cached {
		cached = " (cached)"
	}
	fmt.Fprintf(w, "%s  %s/%s  %s%s", view.Key, view.Workload, view.Prefetcher, view.Status, cached)
	if view.Status == service.StatusRunning && view.Progress.MaxInstructions > 0 {
		fmt.Fprintf(w, "  %d/%d instructions", view.Progress.Instructions, view.Progress.MaxInstructions)
	}
	if view.Error != "" {
		fmt.Fprintf(w, "  error: %s", view.Error)
	}
	fmt.Fprintln(w)
}

func (c *client) cmdStatus(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "usage: cbwsctl status KEY")
		return cli.ExitUsage
	}
	view, err := c.status(args[0])
	if err != nil {
		fmt.Fprintf(stderr, "cbwsctl: %v\n", err)
		return cli.ExitFail
	}
	printView(stdout, view)
	return cli.ExitOK
}

func (c *client) cmdResult(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cbwsctl result", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write the run record here instead of stdout")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: cbwsctl result [-o FILE] KEY")
		return cli.ExitUsage
	}
	data, err := c.result(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "cbwsctl: %v\n", err)
		return cli.ExitFail
	}
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "cbwsctl: %v\n", err)
			return cli.ExitFail
		}
		return cli.ExitOK
	}
	_, _ = stdout.Write(data)
	return cli.ExitOK
}

// sweepCell is one matrix cell's outcome.
type sweepCell struct {
	Workload   string
	Prefetcher string
	Key        string
	Cached     bool
	Record     *harness.RunRecord
}

func (c *client) cmdSweep(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cbwsctl sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	wls := fs.String("workloads", "", "comma-separated workload names")
	pfs := fs.String("prefetchers", "", "comma-separated prefetcher names")
	n := fs.Uint64("n", 0, "instruction budget per cell (0: daemon default)")
	warm := fs.Uint64("warmup", 0, "warmup instructions per cell")
	golden := fs.String("golden", "", "compare served cell hashes against this golden manifest")
	requireCached := fs.Bool("require-cached", false, "fail unless every cell is served from the cache")
	outDir := fs.String("out", "", "write each cell's run record into this directory")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	workloads := splitList(*wls)
	prefetchers := splitList(*pfs)
	if len(workloads) == 0 || len(prefetchers) == 0 {
		fmt.Fprintln(stderr, "cbwsctl sweep: -workloads and -prefetchers are required")
		return cli.ExitUsage
	}
	var manifest *harness.GoldenManifest
	if *golden != "" {
		var err error
		manifest, err = harness.ReadGolden(*golden)
		if err != nil {
			fmt.Fprintf(stderr, "cbwsctl: %v\n", err)
			return cli.ExitFail
		}
	}

	// Submit every cell first (the daemon dedups and queues), then
	// collect: the daemon's worker pool provides the parallelism.
	cells := make([]*sweepCell, 0, len(workloads)*len(prefetchers))
	for _, wl := range workloads {
		for _, pf := range prefetchers {
			body, err := requestBody(wl, pf, "", *n, *warm, flagSet(fs, "warmup"))
			if err != nil {
				fmt.Fprintf(stderr, "cbwsctl: %v\n", err)
				return cli.ExitFail
			}
			view, err := c.submit(body)
			if err != nil {
				fmt.Fprintf(stderr, "cbwsctl: %s/%s: %v\n", wl, pf, err)
				return cli.ExitFail
			}
			cells = append(cells, &sweepCell{
				Workload: wl, Prefetcher: pf, Key: view.Key,
				Cached: view.Cached && view.Status == service.StatusDone,
			})
		}
	}

	cachedCount := 0
	var mismatches []string
	for _, cell := range cells {
		if _, err := c.waitDone(cell.Key); err != nil {
			fmt.Fprintf(stderr, "cbwsctl: %s/%s: %v\n", cell.Workload, cell.Prefetcher, err)
			return cli.ExitFail
		}
		data, err := c.result(cell.Key)
		if err != nil {
			fmt.Fprintf(stderr, "cbwsctl: %s/%s: %v\n", cell.Workload, cell.Prefetcher, err)
			return cli.ExitFail
		}
		rec := &harness.RunRecord{}
		if err := json.Unmarshal(data, rec); err != nil {
			fmt.Fprintf(stderr, "cbwsctl: %s/%s: decoding result: %v\n", cell.Workload, cell.Prefetcher, err)
			return cli.ExitFail
		}
		if err := rec.Validate(); err != nil {
			fmt.Fprintf(stderr, "cbwsctl: %s/%s: invalid run record: %v\n", cell.Workload, cell.Prefetcher, err)
			return cli.ExitFail
		}
		cell.Record = rec
		if cell.Cached {
			cachedCount++
		}
		if *outDir != "" {
			name := sanitize(cell.Workload) + "__" + sanitize(cell.Prefetcher) + ".json"
			if err := os.WriteFile(filepath.Join(*outDir, name), data, 0o644); err != nil {
				fmt.Fprintf(stderr, "cbwsctl: %v\n", err)
				return cli.ExitFail
			}
		}
		if manifest != nil {
			got := harness.CellHash(sim.Result{
				Workload:   rec.Workload,
				Prefetcher: rec.Prefetcher,
				Metrics:    rec.Metrics,
			})
			want, ok := goldenHash(manifest, rec.Workload, rec.Prefetcher)
			switch {
			case !ok:
				mismatches = append(mismatches,
					fmt.Sprintf("%s/%s: not in golden manifest", rec.Workload, rec.Prefetcher))
			case want != got:
				mismatches = append(mismatches,
					fmt.Sprintf("%s/%s: hash diverged (want %.12s…, got %.12s…)", rec.Workload, rec.Prefetcher, want, got))
			}
		}
	}

	fmt.Fprintf(stdout, "sweep: %d cells, %d served from cache\n", len(cells), cachedCount)
	for _, cell := range cells {
		m := cell.Record.Metrics
		tag := ""
		if cell.Cached {
			tag = "  [cached]"
		}
		fmt.Fprintf(stdout, "  %-26s %-10s IPC %.4f  MPKI %.2f%s\n",
			cell.Workload, cell.Prefetcher, m.IPC(), m.MPKI(), tag)
	}
	for _, mm := range mismatches {
		fmt.Fprintf(stderr, "cbwsctl: golden mismatch: %s\n", mm)
	}
	if len(mismatches) > 0 {
		return cli.ExitFail
	}
	if manifest != nil {
		fmt.Fprintf(stdout, "golden: all %d cells match %s\n", len(cells), *golden)
	}
	if *requireCached && cachedCount != len(cells) {
		fmt.Fprintf(stderr, "cbwsctl: -require-cached: only %d/%d cells were cache hits\n", cachedCount, len(cells))
		return cli.ExitFail
	}
	return cli.ExitOK
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// sanitize maps roster names to safe file names ("ghb-pc/dc" →
// "ghb-pc_dc").
func sanitize(name string) string {
	return strings.NewReplacer("/", "_", " ", "_").Replace(name)
}

// goldenHash looks up one cell's pinned hash in a manifest.
func goldenHash(g *harness.GoldenManifest, wl, pf string) (string, bool) {
	for _, c := range g.Cells {
		if c.Workload == wl && c.Prefetcher == pf {
			return c.Hash, true
		}
	}
	return "", false
}

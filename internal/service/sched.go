package service

import "sync"

// ticketSched is the fair scheduler for active streams: a fixed number
// of run slots handed out in strict FIFO order. A stream's generator
// acquires a slot, simulates one quantum of batches, releases, and
// re-queues — so when more streams are runnable than slots exist, the
// worker pool round-robins across them instead of letting the first
// arrivals starve the rest. (Plain channel semaphores or sync.Cond make
// no wakeup-order promise; the explicit waiter queue does.)
type ticketSched struct {
	mu    sync.Mutex
	free  int         //cbws:guardedby mu
	q     []chan bool //cbws:guardedby mu — FIFO of blocked acquirers
	drain bool        //cbws:guardedby mu
}

func newTicketSched(slots int) *ticketSched {
	return &ticketSched{free: slots}
}

// acquire blocks until a slot is available (or the scheduler is
// stopped, reporting false). Slots are granted in arrival order.
func (ts *ticketSched) acquire() bool {
	ts.mu.Lock()
	if ts.drain {
		ts.mu.Unlock()
		return false
	}
	if ts.free > 0 {
		ts.free--
		ts.mu.Unlock()
		return true
	}
	w := make(chan bool, 1)
	ts.q = append(ts.q, w)
	ts.mu.Unlock()
	return <-w
}

// release returns a slot, handing it directly to the longest-waiting
// acquirer if one is queued.
func (ts *ticketSched) release() {
	ts.mu.Lock()
	if len(ts.q) > 0 {
		w := ts.q[0]
		ts.q = ts.q[1:]
		ts.mu.Unlock()
		w <- true
		return
	}
	ts.free++
	ts.mu.Unlock()
}

// stop fails all queued and future acquires. Held slots are unaffected;
// their holders finish the current quantum and release normally.
func (ts *ticketSched) stop() {
	ts.mu.Lock()
	ts.drain = true
	q := ts.q
	ts.q = nil
	ts.mu.Unlock()
	for _, w := range q {
		w <- false
	}
}

// waiting reports the number of blocked acquirers (tests).
func (ts *ticketSched) waiting() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.q)
}

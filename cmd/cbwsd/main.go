// Command cbwsd is the cbws simulation daemon: a long-running HTTP/JSON
// service that accepts simulation jobs (workload × prefetcher ×
// sim.Config), runs them on a bounded worker pool, and serves results
// from a content-addressed cache so repeated sweeps cost nothing.
//
// Usage:
//
//	cbwsd [-addr 127.0.0.1:8344] [-cache-dir DIR] [-workers N] [-queue N]
//	      [-n instructions] [-warmup instructions] [-config system.json]
//	      [-job-timeout D] [-drain-timeout D] [-addr-file PATH]
//	      [-corpus-dir DIR] [-corpus-mmap=false]
//	      [-peers URL[,URL...]] [-advertise URL]
//	      [-stream-workers N] [-max-streams N] [-tenant-streams N]
//	      [-tenant-rate BYTES/S] [-tenant-burst BYTES]
//	      [-stream-buffer EVENTS] [-stream-idle-timeout D]
//
// -addr :0 binds an ephemeral port; combined with -addr-file the bound
// address is written to a file once listening, so scripts can start the
// daemon on a random port and discover it race-free. On SIGINT/SIGTERM
// the daemon drains gracefully: the listener closes, running jobs
// finish (bounded by -drain-timeout), queued jobs are canceled, and the
// cache index is persisted before exit 0.
//
// -peers turns the daemon into one worker of a fleet: before
// simulating a job it asks the listed sibling daemons for the job's
// content address and serves a sibling's cached bytes when one has
// them (the federated result cache). Every worker can be given the
// same full fleet list — the daemon filters its own -advertise URL
// (default: http://<bound address>) out, so a deployment needs only
// one peer list, not one per worker. The listener is bound before the
// service starts for exactly this reason: with -addr :0 the advertised
// URL is only known once the port is.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cbws/internal/cli"
	"cbws/internal/harness"
	"cbws/internal/service"
	"cbws/internal/sim"
)

func main() {
	cli.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment abstracted for tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cbwsd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8344", "listen address (:0 for an ephemeral port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening")
	workers := fs.Int("workers", 0, "concurrent simulations (0: one per CPU)")
	queue := fs.Int("queue", 64, "queued-job bound; submissions beyond it get 429")
	cacheDir := fs.String("cache-dir", "", "persist results and the cache index here (default: memory only)")
	n := fs.Uint64("n", 4_000_000, "base instruction budget per job")
	warm := fs.Uint64("warmup", 1_000_000, "base warmup instructions excluded from metrics")
	configPath := fs.String("config", "", "JSON system-config file (overrides Table II defaults)")
	jobTimeout := fs.Duration("job-timeout", 0, "abort a single job after this long (0: no timeout)")
	drainTimeout := fs.Duration("drain-timeout", time.Minute, "bound on finishing running jobs at shutdown")
	interval := fs.Uint64("sample-interval", 0, "probe/progress period in instructions (0: default)")
	corpusDir := fs.String("corpus-dir", "", "replay workloads from packed .cbwc corpora in this directory (others use live generators)")
	corpusMmap := fs.Bool("corpus-mmap", true, "mmap corpus files (false: positioned-read fallback)")
	peers := fs.String("peers", "", "comma-separated sibling daemon URLs to peer-fetch results from (own URL is filtered out)")
	advertise := fs.String("advertise", "", "this daemon's URL as peers see it (default: http://<bound address>)")
	peerTimeout := fs.Duration("peer-timeout", 2*time.Second, "per-sibling budget for peer-fetch probes")
	streamWorkers := fs.Int("stream-workers", 0, "concurrently simulating streams (0: same as -workers)")
	maxStreams := fs.Int("max-streams", 0, "daemon-wide open-stream bound, opens beyond it get 429 (0: default 64, -1: unlimited)")
	tenantStreams := fs.Int("tenant-streams", 0, "per-tenant concurrent-stream quota (0: default 4, -1: unlimited)")
	tenantRate := fs.Float64("tenant-rate", 0, "per-tenant sustained chunk-ingest rate in bytes/second (0: default 8 MiB/s)")
	tenantBurst := fs.Float64("tenant-burst", 0, "per-tenant token-bucket burst in bytes; also the largest admissible chunk (0: default 4 MiB)")
	streamBuffer := fs.Int("stream-buffer", 0, "per-stream decoded-event buffer bound (0: default 65536)")
	streamIdle := fs.Duration("stream-idle-timeout", 0, "finalize or cancel a stream after this long without a chunk (0: default 2m, <0: never)")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "cbwsd: unexpected argument %q\n", fs.Arg(0))
		return cli.ExitUsage
	}
	if *warm >= *n {
		fmt.Fprintf(stderr, "cbwsd: -warmup %d must be smaller than -n %d\n", *warm, *n)
		return cli.ExitUsage
	}

	base := sim.DefaultConfig()
	if *configPath != "" {
		var err error
		base, err = sim.LoadConfig(*configPath)
		if err != nil {
			fmt.Fprintf(stderr, "cbwsd: %v\n", err)
			return cli.ExitFail
		}
	}
	base.MaxInstructions = *n
	base.WarmupInstructions = *warm

	var corpusSrc *harness.CorpusSource
	if *corpusDir != "" {
		src, err := harness.OpenCorpusDir(*corpusDir, *corpusMmap)
		if err != nil {
			fmt.Fprintf(stderr, "cbwsd: %v\n", err)
			return cli.ExitFail
		}
		corpusSrc = src
		defer corpusSrc.Close()
		fmt.Fprintf(stderr, "cbwsd: corpus replay for %d workload(s) from %s\n",
			len(corpusSrc.Names()), *corpusDir)
	}

	// The listener comes up before the service: with -addr :0 the
	// daemon's own advertised URL exists only after the bind, and the
	// peer list must have self filtered out before the ring is built.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "cbwsd: %v\n", err)
		return cli.ExitFail
	}
	bound := ln.Addr().String()
	self := *advertise
	if self == "" {
		self = "http://" + bound
	}
	siblings := filterSelf(splitList(*peers), self)

	svc, err := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		JobTimeout:     *jobTimeout,
		CacheDir:       *cacheDir,
		BaseSim:        base,
		SampleInterval: *interval,
		Corpus:         corpusSrc,
		Peers:          siblings,
		PeerTimeout:    *peerTimeout,

		StreamWorkers:      *streamWorkers,
		MaxStreams:         *maxStreams,
		TenantStreams:      *tenantStreams,
		TenantRateBytes:    *tenantRate,
		TenantBurstBytes:   *tenantBurst,
		StreamBufferEvents: *streamBuffer,
		StreamIdleTimeout:  *streamIdle,
	})
	if err != nil {
		ln.Close()
		fmt.Fprintf(stderr, "cbwsd: %v\n", err)
		return cli.ExitFail
	}

	if *addrFile != "" {
		if err := writeAddrFile(*addrFile, bound); err != nil {
			ln.Close()
			fmt.Fprintf(stderr, "cbwsd: %v\n", err)
			return cli.ExitFail
		}
		defer os.Remove(*addrFile)
	}
	fmt.Fprintf(stderr, "cbwsd: listening on http://%s (version %s, cache %d entries)\n",
		bound, svc.CodeVersion(), svc.Cache().Len())
	if len(siblings) > 0 {
		fmt.Fprintf(stderr, "cbwsd: peering with %d sibling(s) as %s\n", len(siblings), self)
	}

	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintf(stderr, "cbwsd: serve: %v\n", err)
		return cli.ExitFail
	}
	stop() // a second signal kills immediately

	fmt.Fprintln(stderr, "cbwsd: draining (running jobs finish, queued jobs cancel)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "cbwsd: shutdown: %v\n", err)
	}
	if err := svc.Drain(shutdownCtx); err != nil {
		fmt.Fprintf(stderr, "cbwsd: drain: %v\n", err)
		return cli.ExitFail
	}
	fmt.Fprintf(stderr, "cbwsd: drained cleanly (cache %d entries)\n", svc.Cache().Len())
	return cli.ExitOK
}

// splitList parses a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// filterSelf drops the daemon's own advertised URL from the peer list,
// so every worker in a fleet can be handed the identical list.
// Trailing slashes are ignored in the comparison.
func filterSelf(peers []string, self string) []string {
	canon := strings.TrimRight(self, "/")
	var out []string
	for _, p := range peers {
		if strings.TrimRight(p, "/") != canon {
			out = append(out, p)
		}
	}
	return out
}

// writeAddrFile publishes the bound address atomically (write to a temp
// file, then rename), so a polling reader never sees a partial address.
func writeAddrFile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

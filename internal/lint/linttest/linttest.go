// Package linttest is the fixture harness for the cbwslint analyzers,
// in the spirit of golang.org/x/tools/go/analysis/analysistest: a
// testdata directory holds one package of deliberately good, bad, and
// suppressed code, and every expected finding is declared in place
// with a trailing comment of the form
//
//	// want "regexp"
//
// (several per line allowed). The harness type-checks the fixture,
// runs one analyzer over it, applies the production //lint:ignore
// suppression pass, and fails the test on any missed, unexpected, or
// mismatched diagnostic — so the fixtures double as an executable
// specification of each analyzer.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"cbws/internal/lint/analysis"
)

// wantRe extracts the regexps of a want comment; like analysistest,
// both "double-quoted" and `backquoted` forms are accepted.
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run type-checks the fixture package in dir and asserts that the
// analyzer's post-suppression diagnostics match the fixture's want
// comments exactly.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	diags, fset, files, err := analyze(a, dir)
	if err != nil {
		t.Fatal(err)
	}

	var wants []*expectation
	for _, f := range files {
		filename := fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				line := fset.Position(c.Pos()).Line
				ms := wantRe.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", filename, line, c.Text)
				}
				for _, m := range ms {
					pat := m[1]
					if m[2] != "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", filename, line, pat, err)
					}
					wants = append(wants, &expectation{file: filename, line: line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.met && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// analyze loads and type-checks the fixture package rooted at dir and
// returns the analyzer's diagnostics after suppression filtering.
func analyze(a *analysis.Analyzer, dir string) ([]analysis.Diagnostic, *token.FileSet, []*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("linttest: no .go files in %s", dir)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	importSet := make(map[string]bool)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	var importPaths []string
	for p := range importSet {
		importPaths = append(importPaths, p)
	}
	sort.Strings(importPaths)

	// Resolve the fixture's imports (stdlib and cbws packages alike)
	// from build-cache export data; the go command runs from the test
	// directory, which is inside the module.
	exports, err := analysis.ExportsFor(".", importPaths)
	if err != nil {
		return nil, nil, nil, err
	}
	pkgPath := filepath.Base(dir)
	typesPkg, info, err := analysis.TypeCheck(fset, pkgPath, files, analysis.ExportImporter(fset, exports))
	if err != nil {
		return nil, nil, nil, err
	}

	pkg := &analysis.Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Types:     typesPkg,
		TypesInfo: info,
	}
	// ModulePath == the fixture path itself: in-package calls count as
	// module-internal, which is what the hotpathalloc fixtures rely on.
	diags, err := analysis.Run([]*analysis.Analyzer{{
		Name:  a.Name,
		Doc:   a.Doc,
		Run:   a.Run,
		Scope: nil, // fixtures always run the analyzer
	}}, []*analysis.Package{pkg}, pkgPath)
	if err != nil {
		return nil, nil, nil, err
	}
	return diags, fset, files, nil
}

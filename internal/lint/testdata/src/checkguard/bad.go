// Package checkguard is the fixture for the guard rules of the
// cbws/checkguard analyzer (the reference-model import rule is
// exercised by the sibling checkguardref fixture).
package checkguard

import "cbws/internal/check"

type table struct{ n int }

func (t *table) insert(v int) {
	check.Assertf(v >= 0, "negative insert %d", v) // want `not guarded by check.Enabled`
	t.n++
}

func (t *table) drop() {
	if t.n == 0 {
		check.Failf("drop on empty table") // want `not guarded by check.Enabled`
	}
	t.n--
}

// checkTable calls a hook directly from an unexported check*-named
// function, so it is a recognized invariant helper: its body is exempt
// but its call sites carry the guard obligation.
func checkTable(t *table) {
	check.Assertf(t.n >= 0, "size underflow: %d", t.n)
}

func (t *table) rebalance() {
	checkTable(t) // want `invariant helper checkTable is not guarded`
	t.n /= 2
}

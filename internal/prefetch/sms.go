package prefetch

import (
	"cbws/internal/mem"
)

// SMSConfig parametrizes spatial memory streaming (Table II: 32-entry
// active generation table, 32-entry filter table, 512-entry pattern
// history table, 2KB regions).
type SMSConfig struct {
	AGTEntries    int
	FilterEntries int
	PHTEntries    int
	RegionBytes   uint64
	// Table III field widths for storage accounting.
	PCBits      int
	TagBits     int
	OffsetBits  int
	PatternBits int
}

// DefaultSMSConfig returns the paper's configuration.
func DefaultSMSConfig() SMSConfig {
	return SMSConfig{
		AGTEntries:    32,
		FilterEntries: 32,
		PHTEntries:    512,
		RegionBytes:   2 << 10,
		PCBits:        48,
		TagBits:       36,
		OffsetBits:    5,
		PatternBits:   16,
	}
}

type smsGeneration struct {
	region  mem.Region
	trigger uint64 // PC ⊕ offset signature of the first access
	pattern uint64 // bitmap of line offsets touched this generation
	lru     uint64
}

type smsFilterEntry struct {
	region    mem.Region
	trigger   uint64
	firstLine int
	lru       uint64
}

type smsPHTEntry struct {
	pattern uint64
	lru     uint64
}

// SMS is the spatial memory streaming prefetcher: it learns the bitmap
// of cache lines touched within a spatial region during a "generation"
// and, when a new generation begins with the same trigger signature
// (PC + region offset), prefetches the learned footprint.
type SMS struct {
	NoBlocks
	cfg    SMSConfig
	rc     mem.RegionConfig
	agt    map[mem.Region]*smsGeneration
	filter map[mem.Region]*smsFilterEntry
	pht    map[uint64]*smsPHTEntry
	tick   uint64
}

// NewSMS builds an SMS prefetcher; zero-value fields of cfg fall back to
// defaults.
func NewSMS(cfg SMSConfig) *SMS {
	def := DefaultSMSConfig()
	if cfg.AGTEntries == 0 {
		cfg.AGTEntries = def.AGTEntries
	}
	if cfg.FilterEntries == 0 {
		cfg.FilterEntries = def.FilterEntries
	}
	if cfg.PHTEntries == 0 {
		cfg.PHTEntries = def.PHTEntries
	}
	if cfg.RegionBytes == 0 {
		cfg.RegionBytes = def.RegionBytes
	}
	if cfg.PCBits == 0 {
		cfg.PCBits = def.PCBits
	}
	if cfg.TagBits == 0 {
		cfg.TagBits = def.TagBits
	}
	if cfg.OffsetBits == 0 {
		cfg.OffsetBits = def.OffsetBits
	}
	if cfg.PatternBits == 0 {
		cfg.PatternBits = def.PatternBits
	}
	s := &SMS{cfg: cfg, rc: mem.RegionConfig{SizeBytes: cfg.RegionBytes}}
	s.Reset()
	return s
}

// Name implements Prefetcher.
func (s *SMS) Name() string { return "sms" }

// Reset implements Prefetcher.
func (s *SMS) Reset() {
	s.agt = make(map[mem.Region]*smsGeneration, s.cfg.AGTEntries)
	s.filter = make(map[mem.Region]*smsFilterEntry, s.cfg.FilterEntries)
	s.pht = make(map[uint64]*smsPHTEntry, s.cfg.PHTEntries)
	s.tick = 0
}

func (s *SMS) signature(pc uint64, offset int) uint64 {
	return pc<<uint(s.cfg.OffsetBits) | uint64(offset)
}

// endGeneration commits a finished generation's footprint to the PHT.
func (s *SMS) endGeneration(g *smsGeneration) {
	if e, ok := s.pht[g.trigger]; ok {
		e.pattern = g.pattern
		e.lru = s.tick
		return
	}
	if len(s.pht) >= s.cfg.PHTEntries {
		var victim uint64
		best := ^uint64(0)
		for k, e := range s.pht {
			if e.lru < best {
				best = e.lru
				victim = k
			}
		}
		delete(s.pht, victim)
	}
	s.pht[g.trigger] = &smsPHTEntry{pattern: g.pattern, lru: s.tick}
}

// evictOldestAGT ends and removes the LRU generation.
func (s *SMS) evictOldestAGT() {
	var victim mem.Region
	var vg *smsGeneration
	best := ^uint64(0)
	for r, g := range s.agt {
		if g.lru < best {
			best = g.lru
			victim = r
			vg = g
		}
	}
	if vg != nil {
		s.endGeneration(vg)
		delete(s.agt, victim)
	}
}

// OnAccess trains on every L1 demand access, as in the original SMS
// design, and prefetches a region's learned footprint when a new
// generation begins.
func (s *SMS) OnAccess(a Access, issue IssueFunc) {
	s.tick++
	region := s.rc.RegionOf(a.Addr)
	offset := s.rc.OffsetOf(a.Addr)

	if g, ok := s.agt[region]; ok {
		g.pattern |= 1 << uint(offset)
		g.lru = s.tick
		return
	}
	if f, ok := s.filter[region]; ok {
		if f.firstLine == offset {
			f.lru = s.tick
			return // still a single-line region
		}
		// Second distinct line: promote to an active generation.
		delete(s.filter, region)
		if len(s.agt) >= s.cfg.AGTEntries {
			s.evictOldestAGT()
		}
		s.agt[region] = &smsGeneration{
			region:  region,
			trigger: f.trigger,
			pattern: (1 << uint(f.firstLine)) | (1 << uint(offset)),
			lru:     s.tick,
		}
		return
	}

	// First access of a new generation: predict from the PHT and
	// allocate a filter entry.
	sig := s.signature(a.PC, offset)
	if e, ok := s.pht[sig]; ok {
		e.lru = s.tick
		pattern := e.pattern
		for off := 0; off < s.rc.LinesPerRegion() && off < 64; off++ {
			if pattern&(1<<uint(off)) != 0 && off != offset {
				issue(s.rc.LineAt(region, off))
			}
		}
	}
	if len(s.filter) >= s.cfg.FilterEntries {
		var victim mem.Region
		best := ^uint64(0)
		for r, f := range s.filter {
			if f.lru < best {
				best = f.lru
				victim = r
			}
		}
		delete(s.filter, victim)
	}
	s.filter[region] = &smsFilterEntry{region: region, trigger: sig, firstLine: offset, lru: s.tick}
}

// OnCacheEvict ends the generation of the region containing the evicted
// line, committing its footprint to the pattern history table — the
// original SMS trigger for generation completion.
func (s *SMS) OnCacheEvict(l mem.LineAddr) {
	region := s.rc.RegionOf(l.Byte())
	if g, ok := s.agt[region]; ok {
		s.endGeneration(g)
		delete(s.agt, region)
		return
	}
	delete(s.filter, region)
}

var _ EvictionObserver = (*SMS)(nil)

// StorageBits implements the Table III estimate:
// AGT + Filter: (offset + PC + tag) × 32 and (offset + PC + tag + pattern) × 32;
// PHT: (pattern + PC + offset) × 512.
func (s *SMS) StorageBits() uint64 {
	agt := uint64(s.cfg.OffsetBits+s.cfg.PCBits+s.cfg.TagBits) * uint64(s.cfg.AGTEntries)
	filter := uint64(s.cfg.OffsetBits+s.cfg.PCBits+s.cfg.TagBits+s.cfg.PatternBits) * uint64(s.cfg.FilterEntries)
	pht := uint64(s.cfg.PatternBits+s.cfg.PCBits+s.cfg.OffsetBits) * uint64(s.cfg.PHTEntries)
	return agt + filter + pht
}

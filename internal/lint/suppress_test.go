package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"testing"

	"cbws/internal/lint/analysis"
)

// fakeAnalyzer reports "<name> finding" at every identifier literally
// named mark, so the tests below control diagnostic positions through
// source layout alone.
func fakeAnalyzer(name string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: name,
		Doc:  "test analyzer reporting at idents named mark",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok && id.Name == "mark" {
						pass.Reportf(id.Pos(), "%s finding", pass.Analyzer.Name)
					}
					return true
				})
			}
			return nil
		},
	}
}

func runSuppression(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "s.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, info, err := analysis.TypeCheck(fset, "s", []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(
		[]*analysis.Analyzer{fakeAnalyzer("alpha"), fakeAnalyzer("beta")},
		[]*analysis.Package{{PkgPath: "s", Fset: fset, Files: []*ast.File{f}, Types: pkg, TypesInfo: info}},
		"s")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
	}
	return got
}

// TestSuppressionSemantics pins the //lint:ignore contract: same-line
// and preceding-line comments suppress, anything farther away doesn't,
// a missing reason invalidates the suppression, the cbws/ prefix is
// mandatory, and a suppression silences exactly the named analyzer.
func TestSuppressionSemantics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "same line suppresses named analyzer only",
			src:  "package s\n\nvar mark = 0 //lint:ignore cbws/alpha covered elsewhere\n",
			want: []string{"beta finding"},
		},
		{
			name: "preceding line suppresses named analyzer only",
			src:  "package s\n\n//lint:ignore cbws/alpha covered elsewhere\nvar mark = 0\n",
			want: []string{"beta finding"},
		},
		{
			name: "two lines above does not suppress",
			src:  "package s\n\n//lint:ignore cbws/alpha covered elsewhere\n\nvar mark = 0\n",
			want: []string{"alpha finding", "beta finding"},
		},
		{
			name: "missing reason does not suppress",
			src:  "package s\n\nvar mark = 0 //lint:ignore cbws/alpha\n",
			want: []string{"alpha finding", "beta finding"},
		},
		{
			name: "missing cbws prefix does not suppress",
			src:  "package s\n\nvar mark = 0 //lint:ignore alpha covered elsewhere\n",
			want: []string{"alpha finding", "beta finding"},
		},
		{
			name: "stacked suppressions silence both analyzers",
			src:  "package s\n\n//lint:ignore cbws/beta covered elsewhere\nvar mark = 0 //lint:ignore cbws/alpha covered elsewhere\n",
			want: nil,
		},
		{
			// A comment on line N covers lines N and N+1 (so the
			// above-the-statement form works); it reaches no farther.
			name: "suppression covers its own and the following line",
			src:  "package s\n\nvar mark = 0 //lint:ignore cbws/alpha covered elsewhere\nvar other = mark\n",
			want: []string{"beta finding", "beta finding"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runSuppression(t, tc.src)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("diagnostics = %q, want %q", got, tc.want)
			}
		})
	}
}

// Command cbwsctl is the client for cbwsd simulation daemons — one, or
// a whole fleet.
//
// Usage:
//
//	cbwsctl [-server URL[,URL...]] submit -workload W -prefetcher P [-n N] [-warmup N] [-wait]
//	        [-workload-hash SHA256]
//	cbwsctl [-server URL[,URL...]] status KEY
//	cbwsctl [-server URL[,URL...]] result KEY [-o FILE]
//	cbwsctl [-server URL[,URL...]] sweep -workloads A,B -prefetchers X,Y [-n N] [-warmup N]
//	        [-golden FILE] [-require-cached] [-out DIR]
//	cbwsctl [-server URL[,URL...]] stream -tenant T -workload W -prefetcher P
//	        [-n N] [-warmup N] [-f FILE|-] [-chunk BYTES]
//
// stream feeds a CBWT trace (file or stdin) into a live streaming
// simulation on the first server: the daemon simulates chunks as they
// arrive, admission control (429/413 + Retry-After) is honored by
// waiting it out, and the finalized run record's content address is
// printed when the stream completes.
//
// -server takes a single daemon URL (the classic setup) or a
// comma-separated fleet. Against a fleet every operation is ring-aware:
// submissions route to the consistent-hash owner of the job's content,
// sweeps shard their cells across the workers, and a worker dying
// mid-sweep is survived by resubmitting its cells to the next worker
// on the ring — content-addressed jobs make the rerun bit-identical.
//
// submit posts one job and prints its content address (with -wait it
// polls until the job finishes). status and result look a job up
// across the fleet by that address. sweep drives a full workload ×
// prefetcher matrix: every cell is submitted (429 backpressure is
// honored by sleeping the server's jittered Retry-After and retrying),
// polled to completion, fetched, and validated as a run record. With
// -golden each served result's canonical cell hash is compared against
// the manifest's — the same hashes golden/seed.json pins — so a sweep
// can prove a remote daemon (or a whole cluster) bit-identical to the
// local seed without rerunning anything. With -require-cached the
// sweep fails unless every cell was answered from a daemon's
// content-addressed cache, which is how CI asserts a repeated sweep is
// 100% cache hits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	apiv1 "cbws/api/v1"
	"cbws/internal/cli"
	"cbws/internal/cluster"
	"cbws/internal/harness"
	"cbws/internal/sim"
)

func main() {
	cli.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: cbwsctl [-server URL[,URL...]] {submit|status|result|sweep|stream} ...")
	return cli.ExitUsage
}

// run is main with its environment abstracted for tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cbwsctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", "http://127.0.0.1:8344", "cbwsd base URL, or a comma-separated fleet")
	timeout := fs.Duration("timeout", 10*time.Minute, "overall budget for waiting on jobs")
	poll := fs.Duration("poll", 100*time.Millisecond, "status polling period")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if fs.NArg() == 0 {
		return usage(stderr)
	}
	fleet, err := cluster.New(splitList(*server), func(w *apiv1.Client) {
		w.Budget = *timeout
		w.Poll = *poll
		w.Logf = func(format string, a ...any) {
			fmt.Fprintf(stderr, "cbwsctl: "+format+"\n", a...)
		}
	})
	if err != nil {
		fmt.Fprintf(stderr, "cbwsctl: -server: %v\n", err)
		return cli.ExitUsage
	}
	c := &ctl{fleet: fleet}
	cmd, rest := fs.Arg(0), fs.Args()[1:]
	switch cmd {
	case "submit":
		return c.cmdSubmit(rest, stdout, stderr)
	case "status":
		return c.cmdStatus(rest, stdout, stderr)
	case "result":
		return c.cmdResult(rest, stdout, stderr)
	case "sweep":
		return c.cmdSweep(rest, stdout, stderr)
	case "stream":
		return c.cmdStream(rest, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "cbwsctl: unknown command %q\n", cmd)
		return usage(stderr)
	}
}

// ctl binds the subcommands to a fleet client. A single -server URL is
// just a one-worker fleet: the ring routes everything to it.
type ctl struct {
	fleet *cluster.Client
}

// worker returns the per-daemon client of the first fleet member, for
// operations that are stateful on a single daemon (streams).
func (c *ctl) worker() *apiv1.Client {
	return c.fleet.Worker(c.fleet.Workers()[0])
}

// requestBody builds one submit body. n/warm of 0 mean "daemon
// default": no config override is sent at all.
func requestBody(wl, pf, wlHash string, n, warm uint64, warmSet bool) ([]byte, error) {
	req := apiv1.SubmitRequest{Workload: wl, Prefetcher: pf, WorkloadHash: wlHash}
	cfg := map[string]uint64{}
	if n > 0 {
		cfg["MaxInstructions"] = n
	}
	if warmSet {
		cfg["WarmupInstructions"] = warm
	}
	if len(cfg) > 0 {
		b, err := json.Marshal(cfg)
		if err != nil {
			return nil, err
		}
		req.Config = b
	}
	return json.Marshal(req)
}

func (c *ctl) cmdSubmit(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cbwsctl submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	wl := fs.String("workload", "", "workload name")
	pf := fs.String("prefetcher", "", "prefetcher name")
	n := fs.Uint64("n", 0, "instruction budget (0: daemon default)")
	warm := fs.Uint64("warmup", 0, "warmup instructions")
	wlHash := fs.String("workload-hash", "", "pin the corpus content address the job must run from (daemon 409s on mismatch)")
	wait := fs.Bool("wait", false, "poll until the job finishes")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if *wl == "" || *pf == "" {
		fmt.Fprintln(stderr, "cbwsctl submit: -workload and -prefetcher are required")
		return cli.ExitUsage
	}
	body, err := requestBody(*wl, *pf, *wlHash, *n, *warm, flagSet(fs, "warmup"))
	if err != nil {
		fmt.Fprintf(stderr, "cbwsctl: %v\n", err)
		return cli.ExitFail
	}
	view, worker, err := c.fleet.Submit(string(body), body)
	if err != nil {
		fmt.Fprintf(stderr, "cbwsctl: %v\n", err)
		return cli.ExitFail
	}
	if *wait && view.Status != apiv1.StatusDone {
		if view, _, _, err = c.fleet.Collect(worker, string(body), body, view.Key); err != nil {
			fmt.Fprintf(stderr, "cbwsctl: %v\n", err)
			return cli.ExitFail
		}
	}
	printView(stdout, view)
	return cli.ExitOK
}

func flagSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func printView(w io.Writer, view apiv1.JobView) {
	cached := ""
	if view.Cached {
		cached = " (cached)"
	}
	fmt.Fprintf(w, "%s  %s/%s  %s%s", view.Key, view.Workload, view.Prefetcher, view.Status, cached)
	if view.Status == apiv1.StatusRunning && view.Progress.MaxInstructions > 0 {
		fmt.Fprintf(w, "  %d/%d instructions", view.Progress.Instructions, view.Progress.MaxInstructions)
	}
	if view.Error != "" {
		fmt.Fprintf(w, "  error: %s", view.Error)
	}
	fmt.Fprintln(w)
}

func (c *ctl) cmdStatus(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "usage: cbwsctl status KEY")
		return cli.ExitUsage
	}
	view, err := c.fleet.StatusAny(args[0])
	if err != nil {
		fmt.Fprintf(stderr, "cbwsctl: %v\n", err)
		return cli.ExitFail
	}
	printView(stdout, view)
	return cli.ExitOK
}

func (c *ctl) cmdResult(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cbwsctl result", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write the run record here instead of stdout")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: cbwsctl result [-o FILE] KEY")
		return cli.ExitUsage
	}
	data, err := c.fleet.ResultAny(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "cbwsctl: %v\n", err)
		return cli.ExitFail
	}
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "cbwsctl: %v\n", err)
			return cli.ExitFail
		}
		return cli.ExitOK
	}
	_, _ = stdout.Write(data)
	return cli.ExitOK
}

// sweepCell is one matrix cell's outcome.
type sweepCell struct {
	Workload   string
	Prefetcher string
	Key        string
	Cached     bool
	Record     *harness.RunRecord

	body   []byte // submit body; doubles as the ring route key
	worker string // worker that accepted the submission
}

func (c *ctl) cmdSweep(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cbwsctl sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	wls := fs.String("workloads", "", "comma-separated workload names")
	pfs := fs.String("prefetchers", "", "comma-separated prefetcher names")
	n := fs.Uint64("n", 0, "instruction budget per cell (0: daemon default)")
	warm := fs.Uint64("warmup", 0, "warmup instructions per cell")
	golden := fs.String("golden", "", "compare served cell hashes against this golden manifest")
	requireCached := fs.Bool("require-cached", false, "fail unless every cell is served from the cache")
	outDir := fs.String("out", "", "write each cell's run record into this directory")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	workloads := splitList(*wls)
	prefetchers := splitList(*pfs)
	if len(workloads) == 0 || len(prefetchers) == 0 {
		fmt.Fprintln(stderr, "cbwsctl sweep: -workloads and -prefetchers are required")
		return cli.ExitUsage
	}
	var manifest *harness.GoldenManifest
	if *golden != "" {
		var err error
		manifest, err = harness.ReadGolden(*golden)
		if err != nil {
			fmt.Fprintf(stderr, "cbwsctl: %v\n", err)
			return cli.ExitFail
		}
	}

	// Submit every cell first — the ring shards them across the fleet,
	// each daemon dedups and queues — then collect: the workers' pools
	// provide the parallelism.
	cells := make([]*sweepCell, 0, len(workloads)*len(prefetchers))
	for _, wl := range workloads {
		for _, pf := range prefetchers {
			body, err := requestBody(wl, pf, "", *n, *warm, flagSet(fs, "warmup"))
			if err != nil {
				fmt.Fprintf(stderr, "cbwsctl: %v\n", err)
				return cli.ExitFail
			}
			view, worker, err := c.fleet.Submit(string(body), body)
			if err != nil {
				fmt.Fprintf(stderr, "cbwsctl: %s/%s: %v\n", wl, pf, err)
				return cli.ExitFail
			}
			cells = append(cells, &sweepCell{
				Workload: wl, Prefetcher: pf, Key: view.Key,
				Cached: view.Cached && view.Status == apiv1.StatusDone,
				body:   body, worker: worker,
			})
		}
	}

	cachedCount := 0
	var mismatches []string
	for _, cell := range cells {
		_, data, _, err := c.fleet.Collect(cell.worker, string(cell.body), cell.body, cell.Key)
		if err != nil {
			fmt.Fprintf(stderr, "cbwsctl: %s/%s: %v\n", cell.Workload, cell.Prefetcher, err)
			return cli.ExitFail
		}
		rec := &harness.RunRecord{}
		if err := json.Unmarshal(data, rec); err != nil {
			fmt.Fprintf(stderr, "cbwsctl: %s/%s: decoding result: %v\n", cell.Workload, cell.Prefetcher, err)
			return cli.ExitFail
		}
		if err := rec.Validate(); err != nil {
			fmt.Fprintf(stderr, "cbwsctl: %s/%s: invalid run record: %v\n", cell.Workload, cell.Prefetcher, err)
			return cli.ExitFail
		}
		cell.Record = rec
		if cell.Cached {
			cachedCount++
		}
		if *outDir != "" {
			name := sanitize(cell.Workload) + "__" + sanitize(cell.Prefetcher) + ".json"
			if err := os.WriteFile(filepath.Join(*outDir, name), data, 0o644); err != nil {
				fmt.Fprintf(stderr, "cbwsctl: %v\n", err)
				return cli.ExitFail
			}
		}
		if manifest != nil {
			got := harness.CellHash(sim.Result{
				Workload:   rec.Workload,
				Prefetcher: rec.Prefetcher,
				Metrics:    rec.Metrics,
			})
			want, ok := goldenHash(manifest, rec.Workload, rec.Prefetcher)
			switch {
			case !ok:
				mismatches = append(mismatches,
					fmt.Sprintf("%s/%s: not in golden manifest", rec.Workload, rec.Prefetcher))
			case want != got:
				mismatches = append(mismatches,
					fmt.Sprintf("%s/%s: hash diverged (want %.12s…, got %.12s…)", rec.Workload, rec.Prefetcher, want, got))
			}
		}
	}

	fmt.Fprintf(stdout, "sweep: %d cells, %d served from cache\n", len(cells), cachedCount)
	for _, cell := range cells {
		m := cell.Record.Metrics
		tag := ""
		if cell.Cached {
			tag = "  [cached]"
		}
		fmt.Fprintf(stdout, "  %-26s %-10s IPC %.4f  MPKI %.2f%s\n",
			cell.Workload, cell.Prefetcher, m.IPC(), m.MPKI(), tag)
	}
	if down := c.fleet.Down(); len(down) > 0 {
		fmt.Fprintf(stderr, "cbwsctl: %d worker(s) died during the sweep: %s\n", len(down), strings.Join(down, ", "))
	}
	for _, mm := range mismatches {
		fmt.Fprintf(stderr, "cbwsctl: golden mismatch: %s\n", mm)
	}
	if len(mismatches) > 0 {
		return cli.ExitFail
	}
	if manifest != nil {
		fmt.Fprintf(stdout, "golden: all %d cells match %s\n", len(cells), *golden)
	}
	if *requireCached && cachedCount != len(cells) {
		fmt.Fprintf(stderr, "cbwsctl: -require-cached: only %d/%d cells were cache hits\n", cachedCount, len(cells))
		return cli.ExitFail
	}
	return cli.ExitOK
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// sanitize maps roster names to safe file names ("ghb-pc/dc" →
// "ghb-pc_dc").
func sanitize(name string) string {
	return strings.NewReplacer("/", "_", " ", "_").Replace(name)
}

// goldenHash looks up one cell's pinned hash in a manifest.
func goldenHash(g *harness.GoldenManifest, wl, pf string) (string, bool) {
	for _, c := range g.Cells {
		if c.Workload == wl && c.Prefetcher == pf {
			return c.Hash, true
		}
	}
	return "", false
}

// Package cbws is a from-scratch reproduction of the code block working
// set (CBWS) prefetcher of Fuchs, Mannor, Weiser and Etsion,
// "Loop-Aware Memory Prefetching Using Code Block Working Sets",
// MICRO 2014.
//
// The package provides the paper's complete experimental apparatus as a
// library:
//
//   - a trace-driven out-of-order core and two-level cache hierarchy
//     matching the paper's Table II configuration;
//   - the CBWS prefetcher itself (sub-1KB hardware budget, 16-line
//     working-set vectors, 4-step differential prediction, 16-entry
//     history table) plus the CBWS+SMS integration;
//   - the four baseline prefetchers it is evaluated against: stride,
//     GHB G/DC, GHB PC/DC and spatial memory streaming (SMS);
//   - 30 workload emulations standing in for the paper's SPEC CPU2006 /
//     PARSEC / SPLASH / Rodinia / Parboil benchmarks;
//   - a mini-IR with an automatic innermost-tight-loop annotation pass,
//     reproducing the paper's LLVM-based BLOCK_BEGIN/BLOCK_END
//     instrumentation.
//
// Quick start:
//
//	cfg := cbws.DefaultConfig()
//	cfg.MaxInstructions = 2_000_000
//	wl, _ := cbws.WorkloadByName("stencil-default")
//	res, err := cbws.Run(cfg, wl.Make(), cbws.NewCBWSPlusSMS())
//	fmt.Println(res.Metrics.IPC(), res.Metrics.MPKI())
//
// The cmd/figures binary regenerates every table and figure of the
// paper's evaluation; cmd/cbwsim simulates a single workload ×
// prefetcher pair; cmd/tracegen captures annotated traces to disk.
package cbws

import (
	"cbws/internal/core"
	"cbws/internal/prefetch"
	"cbws/internal/sim"
	"cbws/internal/stats"
	"cbws/internal/trace"
	"cbws/internal/workload"
)

// Config is the full simulated-system configuration (core, memory
// hierarchy, instruction window).
type Config = sim.Config

// Result is the outcome of one simulation run.
type Result = sim.Result

// Metrics are the measured counters and derived statistics of a run.
type Metrics = stats.Metrics

// Prefetcher is a hardware prefetching scheme.
type Prefetcher = prefetch.Prefetcher

// Workload generates a committed-instruction trace.
type Workload = trace.Generator

// WorkloadSpec names and constructs one benchmark emulation.
type WorkloadSpec = workload.Spec

// CBWSConfig parametrizes the CBWS prefetcher hardware; its zero value
// uses the paper's sub-1KB configuration.
type CBWSConfig = core.Config

// DefaultConfig returns the paper's Table II system: a 4-wide, 128-entry
// ROB core with a 32KB 4-way L1D, an inclusive 2MB 8-way L2 and a
// 300-cycle memory.
func DefaultConfig() Config { return sim.DefaultConfig() }

// Run simulates workload wl on the configured system under prefetcher
// pf and returns the collected metrics.
func Run(cfg Config, wl Workload, pf Prefetcher) (Result, error) { return sim.Run(cfg, wl, pf) }

// NewCBWS builds the paper's CBWS prefetcher. A zero-value config uses
// the paper's parameters (16-line vectors, 4 steps, 16-entry table).
func NewCBWS(cfg CBWSConfig) *core.Prefetcher { return core.New(cfg) }

// NewCBWSPlusSMS builds the integrated CBWS+SMS prefetcher — the paper's
// best-performing configuration.
func NewCBWSPlusSMS() Prefetcher {
	return core.NewComposite(core.New(core.Config{}), prefetch.NewSMS(prefetch.SMSConfig{}))
}

// NewSMS builds the spatial memory streaming baseline.
func NewSMS() Prefetcher { return prefetch.NewSMS(prefetch.SMSConfig{}) }

// NewStride builds the 256-stream stride baseline.
func NewStride() Prefetcher { return prefetch.NewStride(prefetch.StrideConfig{}) }

// NewGHBPCDC builds the GHB PC/DC baseline.
func NewGHBPCDC() Prefetcher { return prefetch.NewGHB(prefetch.GHBConfig{Mode: prefetch.PCDC}) }

// NewGHBGDC builds the GHB G/DC baseline.
func NewGHBGDC() Prefetcher { return prefetch.NewGHB(prefetch.GHBConfig{Mode: prefetch.GlobalDC}) }

// NewNone builds the no-prefetching baseline.
func NewNone() Prefetcher { return prefetch.NewNone() }

// Workloads returns all 30 benchmark emulations.
func Workloads() []WorkloadSpec { return workload.All() }

// MemoryIntensiveWorkloads returns the paper's Table IV group.
func MemoryIntensiveWorkloads() []WorkloadSpec { return workload.MemoryIntensive() }

// WorkloadByName looks up a benchmark emulation by its paper name
// (e.g. "stencil-default", "429.mcf-ref").
func WorkloadByName(name string) (WorkloadSpec, bool) { return workload.ByName(name) }

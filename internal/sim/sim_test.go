package sim

import (
	"testing"

	"cbws/internal/cache"
	"cbws/internal/core"
	"cbws/internal/engine"
	"cbws/internal/mem"
	"cbws/internal/prefetch"
	"cbws/internal/stats"
	"cbws/internal/trace"
)

// stridedLoop is a synthetic generator: an annotated loop whose
// iteration touches `lanes` lines spaced `gap` lines apart, advancing by
// `stride` lines per iteration, with `compute` filler instructions.
func stridedLoop(iters, lanes, gap int, stride int64, compute int) trace.Generator {
	return trace.GeneratorFunc{GenName: "strided", Fn: func(s trace.Sink) {
		base := mem.LineAddr(1 << 24)
		for n := 0; n < iters; n++ {
			s.Consume(trace.Event{Kind: trace.BlockBegin, Block: 0})
			cur := base.Add(stride * int64(n))
			for l := 0; l < lanes; l++ {
				s.Consume(trace.Event{
					Kind: trace.Load,
					PC:   uint64(0x1000 + 4*l),
					Addr: cur.Add(int64(l * gap)).Byte(),
				})
			}
			s.Consume(trace.Event{Kind: trace.Instr, N: compute})
			s.Consume(trace.Event{Kind: trace.BlockEnd, Block: 0})
		}
	}}
}

func TestRunBasicAccounting(t *testing.T) {
	cfg := DefaultConfig()
	res, err := Run(cfg, stridedLoop(1000, 4, 100, 17, 10), prefetch.NewNone())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	m := res.Metrics
	if res.Workload != "strided" || res.Prefetcher != "none" {
		t.Errorf("names: %s/%s", res.Workload, res.Prefetcher)
	}
	// 1000 iterations × (4 loads + 10 instrs + 2 markers).
	if m.Instructions != 1000*16 {
		t.Errorf("instructions = %d", m.Instructions)
	}
	if m.Loads != 4000 || m.Blocks != 1000 {
		t.Errorf("loads=%d blocks=%d", m.Loads, m.Blocks)
	}
	if m.Cycles == 0 || m.IPC() <= 0 {
		t.Error("no cycles simulated")
	}
	if m.LoopFrac < 0.9 {
		t.Errorf("loop frac = %v", m.LoopFrac)
	}
	// Every line is fresh: all demand accesses miss.
	if m.DemandL2Misses == 0 || m.BytesFromMem == 0 {
		t.Error("no misses recorded for a streaming loop")
	}
}

func TestMaxInstructionsTruncates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInstructions = 500
	res, err := Run(cfg, stridedLoop(100000, 4, 100, 17, 10), prefetch.NewNone())
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Instructions > 520 {
		t.Errorf("instructions = %d, want <= ~500", res.Metrics.Instructions)
	}
}

func TestWarmupExcluded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInstructions = 10_000
	cfg.WarmupInstructions = 5_000
	res, err := Run(cfg, stridedLoop(100000, 4, 100, 17, 10), prefetch.NewNone())
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Instructions < 4_000 || m.Instructions > 6_000 {
		t.Errorf("measured instructions = %d, want ~5000", m.Instructions)
	}
	// Full-window run for comparison.
	cfg.WarmupInstructions = 0
	full, _ := Run(cfg, stridedLoop(100000, 4, 100, 17, 10), prefetch.NewNone())
	if m.Cycles >= full.Metrics.Cycles {
		t.Errorf("warmup cycles not subtracted: %d >= %d", m.Cycles, full.Metrics.Cycles)
	}
}

func TestCBWSBeatsNoneOnStridedLoop(t *testing.T) {
	cfg := DefaultConfig()
	gen := func() trace.Generator { return stridedLoop(20000, 8, 100, 23, 10) }
	none, err := Run(cfg, gen(), prefetch.NewNone())
	if err != nil {
		t.Fatal(err)
	}
	cbws, err := Run(cfg, gen(), core.New(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if cbws.Metrics.IPC() <= none.Metrics.IPC()*1.2 {
		t.Errorf("CBWS IPC %.3f vs none %.3f: expected a clear win on a constant-stride loop",
			cbws.Metrics.IPC(), none.Metrics.IPC())
	}
	if cbws.Metrics.MPKI() >= none.Metrics.MPKI() {
		t.Errorf("CBWS MPKI %.2f vs none %.2f", cbws.Metrics.MPKI(), none.Metrics.MPKI())
	}
	if cbws.Metrics.Timely == 0 && cbws.Metrics.ShorterWT == 0 {
		t.Error("no covered accesses recorded")
	}
}

func TestSMSEvictionWiring(t *testing.T) {
	// SMS ends generations on L1 evictions; run a region-friendly
	// workload and verify SMS actually issues prefetches (it cannot
	// without generation ends).
	gen := trace.GeneratorFunc{GenName: "regions", Fn: func(s trace.Sink) {
		// Touch many sequential 2KB regions fully, one after another.
		for r := 0; r < 3000; r++ {
			base := mem.Addr(1<<28 + r*2048)
			for off := 0; off < 2048; off += 64 {
				s.Consume(trace.Event{Kind: trace.Load, PC: 0x2000, Addr: base + mem.Addr(off)})
				s.Consume(trace.Event{Kind: trace.Instr, N: 3})
			}
		}
	}}
	res, err := Run(DefaultConfig(), gen, prefetch.NewSMS(prefetch.SMSConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.PrefetchIssued == 0 {
		t.Error("SMS issued nothing: eviction wiring broken")
	}
	if res.Metrics.Timely == 0 {
		t.Error("SMS produced no timely prefetches on sequential regions")
	}
}

func TestCompositeMatchesAtLeastSMS(t *testing.T) {
	// On a region-friendly pattern the hybrid must not lose to SMS.
	gen := func() trace.Generator { return stridedLoop(20000, 2, 1, 2, 30) }
	sms, err := Run(DefaultConfig(), gen(), prefetch.NewSMS(prefetch.SMSConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Run(DefaultConfig(), gen(),
		core.NewComposite(core.New(core.Config{}), prefetch.NewSMS(prefetch.SMSConfig{})))
	if err != nil {
		t.Fatal(err)
	}
	if comp.Metrics.IPC() < sms.Metrics.IPC()*0.95 {
		t.Errorf("composite IPC %.3f well below SMS %.3f", comp.Metrics.IPC(), sms.Metrics.IPC())
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Memory.L1.Ways = 0
	if _, err := Run(cfg, stridedLoop(10, 1, 1, 1, 1), prefetch.NewNone()); err == nil {
		t.Error("expected config error")
	}
	cfg = DefaultConfig()
	cfg.Core.Width = 0
	if _, err := Run(cfg, stridedLoop(10, 1, 1, 1, 1), prefetch.NewNone()); err == nil {
		t.Error("expected core config error")
	}
}

func TestDefaultConfigIsTableII(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Core != engine.DefaultConfig() {
		t.Error("core config drifted from Table II")
	}
	if cfg.Memory != cache.DefaultHierarchyConfig() {
		t.Error("memory config drifted from Table II")
	}
}

func TestPrefetcherResetBetweenRuns(t *testing.T) {
	pf := core.New(core.Config{})
	cfg := DefaultConfig()
	if _, err := Run(cfg, stridedLoop(5000, 4, 100, 17, 5), pf); err != nil {
		t.Fatal(err)
	}
	blocksAfterFirst := pf.Stats.Blocks
	if _, err := Run(cfg, stridedLoop(5000, 4, 100, 17, 5), pf); err != nil {
		t.Fatal(err)
	}
	if pf.Stats.Blocks != blocksAfterFirst {
		t.Errorf("stats accumulated across runs: %d vs %d", pf.Stats.Blocks, blocksAfterFirst)
	}
}

func TestRunDeterministic(t *testing.T) {
	// Two identical runs (fresh generators, fresh prefetchers) must
	// produce bit-identical metrics — the property that makes every
	// figure reproducible.
	cfg := DefaultConfig()
	cfg.MaxInstructions = 100_000
	run := func() stats.Metrics {
		res, err := Run(cfg, stridedLoop(50_000, 4, 100, 17, 10),
			core.NewComposite(core.New(core.Config{}), prefetch.NewSMS(prefetch.SMSConfig{})))
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics
	}
	a := run()
	b := run()
	if a != b {
		t.Errorf("nondeterministic results:\n%+v\n%+v", a, b)
	}
}

func TestIdealBranchPrediction(t *testing.T) {
	// A divergent-branch trace under the ideal front end must be at
	// least as fast as under the tournament predictor.
	gen := func() trace.Generator {
		return trace.GeneratorFunc{GenName: "branchy", Fn: func(s trace.Sink) {
			rng := uint64(7)
			for i := 0; i < 30_000; i++ {
				s.Consume(trace.Event{Kind: trace.Instr, N: 5})
				rng ^= rng << 13
				rng ^= rng >> 7
				s.Consume(trace.Event{Kind: trace.Branch, PC: 0x40, Taken: rng&1 == 0})
			}
		}}
	}
	cfg := DefaultConfig()
	real, err := Run(cfg, gen(), prefetch.NewNone())
	if err != nil {
		t.Fatal(err)
	}
	cfg.IdealBranchPrediction = true
	ideal, err := Run(cfg, gen(), prefetch.NewNone())
	if err != nil {
		t.Fatal(err)
	}
	if real.Metrics.Mispredicts == 0 {
		t.Error("tournament predictor never mispredicted a random branch")
	}
	if ideal.Metrics.Mispredicts != 0 {
		t.Error("ideal front end mispredicted")
	}
	if ideal.Metrics.IPC() <= real.Metrics.IPC() {
		t.Errorf("ideal IPC %.3f not above real %.3f", ideal.Metrics.IPC(), real.Metrics.IPC())
	}
}

package hotpathalloc

// suppressed demonstrates the waiver syntax: the reason is mandatory,
// and the comment silences exactly one analyzer on the next line.
//
//cbws:hotpath
func suppressed() []int {
	//lint:ignore cbws/hotpathalloc one-time warm-up allocation, measured free at steady state
	return make([]int, 8)
}

// bare demonstrates that the reason is not optional: a suppression
// without one is inert and the finding still fires.
//
//cbws:hotpath
func bare() []int {
	//lint:ignore cbws/hotpathalloc
	return make([]int, 8) // want `calls make`
}

package harness

import (
	"fmt"

	"cbws/internal/core"
	"cbws/internal/mem"
	"cbws/internal/report"
	"cbws/internal/stats"
	"cbws/internal/trace"
	"cbws/internal/workload"
)

// Figure1 reports the fraction of runtime spent in tight innermost
// loops for the memory-intensive group (paper Figure 1).
func Figure1(m *Matrix) (*report.Table, error) {
	noPf, _ := FactoryByName("none")
	t := &report.Table{
		Title:   "Figure 1: fraction of runtime in tight innermost loops (no-prefetch)",
		Columns: []string{"benchmark", "loop", "non-loop"},
	}
	var fracs []float64
	for _, spec := range workload.MemoryIntensive() {
		r, err := m.Get(spec, noPf)
		if err != nil {
			return nil, err
		}
		f := r.Metrics.LoopFrac
		fracs = append(fracs, f)
		t.AddRow(spec.Name, report.Pct(f), report.Pct(1-f))
	}
	t.AddRow("average", report.Pct(stats.Mean(fracs)), report.Pct(1-stats.Mean(fracs)))
	return t, nil
}

// TableI reproduces the paper's Table I: CBWS construction and
// differential calculation from the two-block example trace (cache line
// size 64B).
func TableI() *report.Table {
	// The access sequence of Table I, as (pc, byte address) pairs per
	// block instance.
	block0 := []uint64{0x4800, 0x4804, 0xFE50, 0x481C, 0xFE50, 0x7FE0, 0x7FE0}
	block1 := []uint64{0x4900, 0x4904, 0xFC50, 0x491C, 0x7FE0}
	tr := trace.New("table1")
	emitBlock := func(addrs []uint64) {
		tr.Consume(trace.Event{Kind: trace.BlockBegin, Block: 0})
		for i, a := range addrs {
			tr.Consume(trace.Event{Kind: trace.Load, PC: uint64(0x100 + 4*i), Addr: mem.Addr(a)})
		}
		tr.Consume(trace.Event{Kind: trace.BlockEnd, Block: 0})
	}
	emitBlock(block0)
	emitBlock(block1)

	sets := core.ExtractCBWS(tr, 0, 16)
	d := core.Differential(sets[0], sets[1])

	t := &report.Table{
		Title:   "Table I: CBWS construction and differential (line size 64B)",
		Columns: []string{"quantity", "value"},
	}
	lines := func(v core.Vector) string {
		s := "("
		for i, l := range v {
			if i > 0 {
				s += ", "
			}
			s += fmt.Sprintf("%X", uint64(l))
		}
		return s + ")"
	}
	t.AddRow("CBWS0", lines(sets[0]))
	t.AddRow("CBWS1", lines(sets[1]))
	t.AddRow("Delta(0,1)", d.String())
	return t
}

// Figure3And4 reproduces the stencil access-pattern illustration: the
// CBWS vectors of consecutive inner-loop iterations (Figure 3) and
// their constant differentials (Figure 4).
func Figure3And4(iterations int) (*report.Table, *report.Table) {
	if iterations <= 0 {
		iterations = 8
	}
	spec, _ := workload.ByName("stencil-default")
	// Capture enough of the trace to cover the requested iterations.
	tr := trace.Capture(trace.Limit{Gen: spec.Make(), Max: uint64(40 * (iterations + 4))})
	sets := core.ExtractCBWS(tr, 0, 16)
	if len(sets) > iterations {
		sets = sets[:iterations]
	}

	f3 := &report.Table{Title: "Figure 3: stencil CBWS vectors (line addresses)"}
	for i, v := range sets {
		f3.AddRow(fmt.Sprintf("CBWS%d", i), v.String())
	}
	f4 := &report.Table{Title: "Figure 4: stencil CBWS differentials"}
	for i := 1; i < len(sets); i++ {
		d := core.Differential(sets[i-1], sets[i])
		f4.AddRow(fmt.Sprintf("CBWS%d-CBWS%d", i, i-1), d.String())
	}
	return f3, f4
}

// Figure5Workloads is the benchmark subset shown in the paper's
// Figure 5.
var Figure5Workloads = []string{
	"450.soplex-ref",
	"433.milc-su3imp",
	"stencil-default",
	"radix-simlarge",
	"sgemm-medium",
	"streamcluster-simlarge",
}

// Figure5 reports the skew of the CBWS differential distribution: the
// fraction of loop iterations covered by the top 1%, 5%, 10% and 25% of
// distinct differential vectors, plus the absolute vector count.
func Figure5(maxInstr uint64) (*report.Table, error) {
	if maxInstr == 0 {
		maxInstr = 1_000_000
	}
	t := &report.Table{
		Title:   "Figure 5: iterations covered by top-k% of distinct CBWS differential vectors",
		Columns: []string{"benchmark", "vectors", "iterations", "top1%", "top5%", "top10%", "top25%"},
	}
	for _, name := range Figure5Workloads {
		spec, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown workload %q", name)
		}
		c := core.NewCensus(16)
		trace.Limit{Gen: spec.Make(), Max: maxInstr}.Generate(c)
		t.AddRow(name,
			fmt.Sprintf("%d", c.DistinctVectors()),
			fmt.Sprintf("%d", c.Iterations()),
			report.Pct(c.CoverageAt(0.01)),
			report.Pct(c.CoverageAt(0.05)),
			report.Pct(c.CoverageAt(0.10)),
			report.Pct(c.CoverageAt(0.25)))
	}
	return t, nil
}

// TableII renders the simulation parameters actually in force.
func TableII(opts Options) *report.Table {
	t := &report.Table{
		Title:   "Table II: simulation parameters",
		Columns: []string{"parameter", "value"},
	}
	c := opts.Sim
	t.AddRow("OoO width", fmt.Sprintf("%d", c.Core.Width))
	t.AddRow("ROB entries", fmt.Sprintf("%d", c.Core.ROBEntries))
	t.AddRow("LDQ entries", fmt.Sprintf("%d", c.Core.LDQEntries))
	t.AddRow("STQ entries", fmt.Sprintf("%d", c.Core.STQEntries))
	t.AddRow("BP type", "tournament")
	t.AddRow("BP entries", fmt.Sprintf("%dK", c.Branch.Entries>>10))
	t.AddRow("BP tag size", fmt.Sprintf("%d-bit", c.Branch.TagBits))
	t.AddRow("BP history size", fmt.Sprintf("%d-bit", c.Branch.HistoryBits))
	t.AddRow("mispredict penalty", fmt.Sprintf("%d cycles", c.Core.MispredictPenalty))
	t.AddRow("L1D size", fmt.Sprintf("%dKB", c.Memory.L1.SizeBytes>>10))
	t.AddRow("L1D assoc", fmt.Sprintf("%d-way LRU", c.Memory.L1.Ways))
	t.AddRow("L1D latency", fmt.Sprintf("%d cycles", c.Memory.L1.LatencyCycles))
	t.AddRow("L1D MSHRs", fmt.Sprintf("%d", c.Memory.L1.MSHRs))
	t.AddRow("L2 size", fmt.Sprintf("%dMB", c.Memory.L2.SizeBytes>>20))
	t.AddRow("L2 assoc", fmt.Sprintf("%d-way LRU", c.Memory.L2.Ways))
	t.AddRow("L2 latency", fmt.Sprintf("%d cycles", c.Memory.L2.LatencyCycles))
	t.AddRow("L2 MSHRs", fmt.Sprintf("%d", c.Memory.L2.MSHRs))
	t.AddRow("L2 inclusion", "inclusive")
	t.AddRow("line size", "64 bytes")
	t.AddRow("memory latency", fmt.Sprintf("%d cycles", c.Memory.MemoryLatency))
	t.AddRow("instructions/run", fmt.Sprintf("%d", c.MaxInstructions))
	return t
}

// TableIII compares the storage budgets of the evaluated prefetchers.
func TableIII() *report.Table {
	t := &report.Table{
		Title:   "Table III: hardware storage requirements",
		Columns: []string{"prefetcher", "bits", "bytes", "KB"},
	}
	for _, f := range Prefetchers() {
		if f.Name == "none" {
			continue
		}
		bits := f.New().StorageBits()
		t.AddRow(f.Name,
			fmt.Sprintf("%d", bits),
			fmt.Sprintf("%d", bits/8),
			report.F(float64(bits)/8/1024, 2))
	}
	return t
}

// collect runs specs × Prefetchers() and returns results grouped by
// scheme name.
func collect(m *Matrix, specs []workload.Spec) (map[string][]stats.Metrics, error) {
	factories := Prefetchers()
	if err := m.Fill(specs, factories); err != nil {
		return nil, err
	}
	out := make(map[string][]stats.Metrics, len(factories))
	for _, f := range factories {
		for _, s := range specs {
			r, err := m.Get(s, f)
			if err != nil {
				return nil, err
			}
			out[f.Name] = append(out[f.Name], r.Metrics)
		}
	}
	return out, nil
}

// Figure12 reports last-level-cache MPKI per memory-intensive benchmark
// and prefetcher, plus the MI and all-benchmark averages (lower is
// better).
func Figure12(m *Matrix) (*report.Table, error) {
	return metricTable(m,
		"Figure 12: L2 demand MPKI (lower is better)",
		func(mm stats.Metrics) string { return report.F(mm.MPKI(), 2) },
		func(ms []stats.Metrics) string {
			var xs []float64
			for _, mm := range ms {
				xs = append(xs, mm.MPKI())
			}
			return report.F(stats.Mean(xs), 2)
		})
}

// metricTable renders one value per (MI benchmark, prefetcher) plus
// average-MI and average-ALL rows.
func metricTable(m *Matrix, title string,
	cell func(stats.Metrics) string,
	avg func([]stats.Metrics) string) (*report.Table, error) {

	factories := Prefetchers()
	cols := []string{"benchmark"}
	for _, f := range factories {
		cols = append(cols, f.Name)
	}
	t := &report.Table{Title: title, Columns: cols}

	mi := workload.MemoryIntensive()
	all := workload.All()
	byPf, err := collect(m, all)
	if err != nil {
		return nil, err
	}
	miByPf, err := collect(m, mi)
	if err != nil {
		return nil, err
	}
	for _, spec := range mi {
		row := []string{spec.Name}
		for _, f := range factories {
			r, err := m.Get(spec, f)
			if err != nil {
				return nil, err
			}
			row = append(row, cell(r.Metrics))
		}
		t.AddRow(row...)
	}
	miRow := []string{"average-MI"}
	allRow := []string{"average-ALL"}
	for _, f := range factories {
		miRow = append(miRow, avg(miByPf[f.Name]))
		allRow = append(allRow, avg(byPf[f.Name]))
	}
	t.AddRow(miRow...)
	t.AddRow(allRow...)
	return t, nil
}

// Figure13 reports the timeliness/accuracy breakdown: for every MI
// benchmark and scheme, the five classes as percentages of demand L2
// accesses (wrong can exceed 100%, as in the paper).
func Figure13(m *Matrix) (*report.Table, error) {
	factories := Prefetchers()
	t := &report.Table{
		Title:   "Figure 13: timeliness and accuracy (% of demand L2 accesses)",
		Columns: []string{"benchmark", "prefetcher", "timely", "shorter-wait", "non-timely", "missing", "wrong"},
	}
	specs := workload.MemoryIntensive()
	if err := m.Fill(specs, factories); err != nil {
		return nil, err
	}
	addRows := func(label string, get func(Factory) (stats.Metrics, error)) error {
		for _, f := range factories {
			mm, err := get(f)
			if err != nil {
				return err
			}
			t.AddRow(label, f.Name,
				report.Pct(mm.TimelyFrac()),
				report.Pct(mm.ShorterWTFrac()),
				report.Pct(mm.NonTimelyFrac()),
				report.Pct(mm.MissingFrac()),
				report.Pct(mm.WrongFrac()))
			label = ""
		}
		return nil
	}
	for _, spec := range specs {
		spec := spec
		if err := addRows(spec.Name, func(f Factory) (stats.Metrics, error) {
			r, err := m.Get(spec, f)
			return r.Metrics, err
		}); err != nil {
			return nil, err
		}
	}
	// Averages over groups.
	for _, grp := range []struct {
		label string
		specs []workload.Spec
	}{{"average-MI", workload.MemoryIntensive()}, {"average-ALL", workload.All()}} {
		grp := grp
		byPf, err := collect(m, grp.specs)
		if err != nil {
			return nil, err
		}
		if err := addRows(grp.label, func(f Factory) (stats.Metrics, error) {
			ms := byPf[f.Name]
			var a stats.Metrics
			var timely, swt, nt, miss, wrong []float64
			for _, mm := range ms {
				timely = append(timely, mm.TimelyFrac())
				swt = append(swt, mm.ShorterWTFrac())
				nt = append(nt, mm.NonTimelyFrac())
				miss = append(miss, mm.MissingFrac())
				wrong = append(wrong, mm.WrongFrac())
			}
			// Synthesize a Metrics whose fractions are the means.
			a.DemandL2 = 1_000_000
			a.Timely = uint64(stats.Mean(timely) * 1_000_000)
			a.ShorterWT = uint64(stats.Mean(swt) * 1_000_000)
			a.NonTimely = uint64(stats.Mean(nt) * 1_000_000)
			a.Missing = uint64(stats.Mean(miss) * 1_000_000)
			a.Wrong = uint64(stats.Mean(wrong) * 1_000_000)
			return a, nil
		}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Figure14 reports IPC normalized to SMS for the MI group and the
// regular group, with group averages (higher is better).
func Figure14(m *Matrix) (*report.Table, *report.Table, error) {
	factories := Prefetchers()
	smsF, _ := FactoryByName("sms")
	build := func(title string, specs []workload.Spec, avgSpecs []workload.Spec, avgLabel string) (*report.Table, error) {
		cols := []string{"benchmark"}
		for _, f := range factories {
			cols = append(cols, f.Name)
		}
		t := &report.Table{Title: title, Columns: cols}
		if err := m.Fill(specs, factories); err != nil {
			return nil, err
		}
		for _, spec := range specs {
			base, err := m.Get(spec, smsF)
			if err != nil {
				return nil, err
			}
			row := []string{spec.Name}
			for _, f := range factories {
				r, err := m.Get(spec, f)
				if err != nil {
					return nil, err
				}
				row = append(row, report.F(r.Metrics.IPC()/base.Metrics.IPC(), 3))
			}
			t.AddRow(row...)
		}
		if err := m.Fill(avgSpecs, factories); err != nil {
			return nil, err
		}
		row := []string{avgLabel}
		for _, f := range factories {
			var speedups []float64
			for _, spec := range avgSpecs {
				base, err := m.Get(spec, smsF)
				if err != nil {
					return nil, err
				}
				r, err := m.Get(spec, f)
				if err != nil {
					return nil, err
				}
				speedups = append(speedups, r.Metrics.IPC()/base.Metrics.IPC())
			}
			row = append(row, report.F(stats.GeoMean(speedups), 3))
		}
		t.AddRow(row...)
		return t, nil
	}
	mi, err := build("Figure 14a: IPC normalized to SMS, memory-intensive group",
		workload.MemoryIntensive(), workload.MemoryIntensive(), "average-MI")
	if err != nil {
		return nil, nil, err
	}
	reg, err := build("Figure 14b: IPC normalized to SMS, regular group",
		workload.Regular(), workload.All(), "average-ALL")
	if err != nil {
		return nil, nil, err
	}
	return mi, reg, nil
}

// perfCostRatio returns the perf/cost of m normalized to base:
// (IPC_m / IPC_base) × (bytes_base / bytes_m). The +1 on both byte
// counts keeps workloads with zero measured memory traffic finite (the
// ratio degenerates to the IPC ratio, which is the right answer when
// neither configuration touches memory).
func perfCostRatio(m, base stats.Metrics) float64 {
	if base.IPC() == 0 {
		return 0
	}
	return (m.IPC() / base.IPC()) *
		(float64(base.BytesFromMem+1) / float64(m.BytesFromMem+1))
}

// Figure15 reports performance/cost — IPC per byte read from memory —
// normalized to the no-prefetch configuration (higher is better).
func Figure15(m *Matrix) (*report.Table, error) {
	noneF, _ := FactoryByName("none")
	factories := Prefetchers()
	cols := []string{"benchmark"}
	for _, f := range factories {
		cols = append(cols, f.Name)
	}
	t := &report.Table{
		Title:   "Figure 15: performance/cost (IPC per byte read, normalized to no-prefetch)",
		Columns: cols,
	}
	specs := workload.MemoryIntensive()
	if err := m.Fill(workload.All(), factories); err != nil {
		return nil, err
	}
	for _, spec := range specs {
		base, err := m.Get(spec, noneF)
		if err != nil {
			return nil, err
		}
		row := []string{spec.Name}
		for _, f := range factories {
			r, err := m.Get(spec, f)
			if err != nil {
				return nil, err
			}
			row = append(row, report.F(perfCostRatio(r.Metrics, base.Metrics), 3))
		}
		t.AddRow(row...)
	}
	// Averages skip benchmarks whose no-prefetch memory traffic is
	// negligible in the measured window: with an (almost) fully
	// cache-resident working set the perf/cost ratio is dominated by
	// measurement noise rather than by prefetching behaviour.
	const trafficFloor = 64 << 10
	for _, grp := range []struct {
		label string
		specs []workload.Spec
	}{{"average-MI", workload.MemoryIntensive()}, {"average-ALL", workload.All()}} {
		row := []string{grp.label}
		for _, f := range factories {
			var vals []float64
			for _, spec := range grp.specs {
				base, err := m.Get(spec, noneF)
				if err != nil {
					return nil, err
				}
				if base.Metrics.BytesFromMem < trafficFloor {
					continue
				}
				r, err := m.Get(spec, f)
				if err != nil {
					return nil, err
				}
				vals = append(vals, perfCostRatio(r.Metrics, base.Metrics))
			}
			row = append(row, report.F(stats.GeoMean(vals), 3))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// LearnedTable compares the paper's CBWS and CBWS+SMS against the
// learned baselines (Pythia-style online RL, Gaze-style spatial) on
// all 30 kernels: per-kernel IPC speedup over no-prefetching, with
// geomean rows for the memory-intensive group, the regular group and
// the full suite. This is the paper's core question restated with
// modern baselines — does loop-aware working-set capture still win on
// tight loops against learned and pattern-characterizing designs?
func LearnedTable(m *Matrix) (*report.Table, error) {
	schemes := []string{"cbws", "cbws+sms", "pythia", "gaze"}
	none, ok := FactoryByName("none")
	if !ok {
		return nil, fmt.Errorf("harness: no-prefetch baseline missing")
	}
	cols := []string{"benchmark"}
	for _, s := range schemes {
		cols = append(cols, s)
	}
	t := &report.Table{
		Title:   "Learned baselines: IPC speedup over no-prefetching (CBWS vs Pythia-style RL and Gaze-style spatial)",
		Columns: cols,
	}
	speedup := func(spec workload.Spec, sn string) (float64, error) {
		f, ok := FactoryByName(sn)
		if !ok {
			return 0, fmt.Errorf("harness: unknown scheme %q", sn)
		}
		base, err := m.Get(spec, Factory{Name: none.Name, New: none.New})
		if err != nil {
			return 0, err
		}
		r, err := m.Get(spec, f)
		if err != nil {
			return 0, err
		}
		return r.Metrics.IPC() / base.Metrics.IPC(), nil
	}
	for _, spec := range workload.All() {
		row := []string{spec.Name}
		for _, sn := range schemes {
			s, err := speedup(spec, sn)
			if err != nil {
				return nil, err
			}
			row = append(row, report.F(s, 3))
		}
		t.AddRow(row...)
	}
	for _, grp := range []struct {
		label string
		specs []workload.Spec
	}{
		{"geomean-MI", workload.MemoryIntensive()},
		{"geomean-regular", workload.Regular()},
		{"geomean-ALL", workload.All()},
	} {
		row := []string{grp.label}
		for _, sn := range schemes {
			var vals []float64
			for _, spec := range grp.specs {
				s, err := speedup(spec, sn)
				if err != nil {
					return nil, err
				}
				vals = append(vals, s)
			}
			row = append(row, report.F(stats.GeoMean(vals), 3))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ExtensionTable compares the extension baselines (AMPM, Markov) against
// the paper's SMS and CBWS+SMS on a representative memory-intensive
// subset — prefetchers the paper's related-work section discusses but
// does not evaluate.
func ExtensionTable(m *Matrix) (*report.Table, error) {
	schemes := []string{"none", "sms", "ampm", "markov", "cbws+sms"}
	subset := []string{
		"stencil-default", "sgemm-medium", "429.mcf-ref",
		"histo-large", "462.libquantum-ref", "radix-simlarge",
	}
	cols := []string{"benchmark"}
	for _, s := range schemes {
		cols = append(cols, s)
	}
	t := &report.Table{
		Title:   "Extension: MPKI of related-work prefetchers (AMPM, Markov) vs the paper's roster",
		Columns: cols,
	}
	for _, name := range subset {
		spec, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown workload %q", name)
		}
		row := []string{name}
		for _, sn := range schemes {
			f, ok := FactoryByName(sn)
			if !ok {
				return nil, fmt.Errorf("harness: unknown scheme %q", sn)
			}
			r, err := m.Get(spec, f)
			if err != nil {
				return nil, err
			}
			row = append(row, report.F(r.Metrics.MPKI(), 2))
		}
		t.AddRow(row...)
	}
	return t, nil
}

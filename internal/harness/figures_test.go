package harness

import (
	"strings"
	"testing"
)

// figMatrix is a shared tiny matrix for figure-builder tests.
var figMatrix = NewMatrix(figOptions())

func figOptions() Options {
	opts := DefaultOptions()
	opts.Sim.MaxInstructions = 100_000
	opts.Sim.WarmupInstructions = 20_000
	opts.Parallel = 8
	return opts
}

func TestFigure12Builds(t *testing.T) {
	tab, err := Figure12(figMatrix)
	if err != nil {
		t.Fatal(err)
	}
	// 15 MI rows + average-MI + average-ALL.
	if len(tab.Rows) != 17 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
	if len(tab.Columns) != 8 { // benchmark + 7 schemes
		t.Errorf("columns = %d", len(tab.Columns))
	}
	s := tab.String()
	for _, want := range []string{"stencil-default", "average-MI", "average-ALL", "cbws+sms"} {
		if !strings.Contains(s, want) {
			t.Errorf("figure 12 missing %q", want)
		}
	}
}

func TestFigure13Builds(t *testing.T) {
	tab, err := Figure13(figMatrix)
	if err != nil {
		t.Fatal(err)
	}
	// (15 MI benchmarks + 2 averages) × 7 schemes.
	if len(tab.Rows) != 17*7 {
		t.Errorf("rows = %d, want %d", len(tab.Rows), 17*7)
	}
	// Percent columns present for every row.
	for _, row := range tab.Rows {
		if len(row) != 7 {
			t.Fatalf("row %v has %d cells", row, len(row))
		}
		for _, cell := range row[2:] {
			if !strings.HasSuffix(cell, "%") {
				t.Fatalf("cell %q not a percentage", cell)
			}
		}
	}
}

func TestFigure14Builds(t *testing.T) {
	mi, reg, err := Figure14(figMatrix)
	if err != nil {
		t.Fatal(err)
	}
	if len(mi.Rows) != 16 || len(reg.Rows) != 16 {
		t.Errorf("rows: mi=%d reg=%d", len(mi.Rows), len(reg.Rows))
	}
	// The SMS column is the normalization baseline: every SMS cell is
	// exactly 1.000.
	smsCol := -1
	for i, c := range mi.Columns {
		if c == "sms" {
			smsCol = i
		}
	}
	if smsCol < 0 {
		t.Fatal("no sms column")
	}
	for _, row := range mi.Rows {
		if row[smsCol] != "1.000" {
			t.Errorf("%s: sms cell %q, want 1.000", row[0], row[smsCol])
		}
	}
}

func TestFigure15Builds(t *testing.T) {
	tab, err := Figure15(figMatrix)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 17 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
	// The none column is the baseline: per-benchmark cells are 1.000.
	for _, row := range tab.Rows[:15] {
		if row[1] != "1.000" {
			t.Errorf("%s: none cell %q, want 1.000", row[0], row[1])
		}
	}
}

func TestExtensionTableBuilds(t *testing.T) {
	tab, err := ExtensionTable(figMatrix)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
	s := tab.String()
	for _, want := range []string{"ampm", "markov", "cbws+sms"} {
		if !strings.Contains(s, want) {
			t.Errorf("extension table missing %q", want)
		}
	}
}

func TestLearnedTableBuilds(t *testing.T) {
	tab, err := LearnedTable(figMatrix)
	if err != nil {
		t.Fatal(err)
	}
	// 30 benchmarks + geomean-MI + geomean-regular + geomean-ALL.
	if len(tab.Rows) != 33 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
	if len(tab.Columns) != 5 { // benchmark + 4 schemes
		t.Errorf("columns = %d", len(tab.Columns))
	}
	s := tab.String()
	for _, want := range []string{"pythia", "gaze", "cbws+sms", "geomean-MI", "geomean-ALL"} {
		if !strings.Contains(s, want) {
			t.Errorf("learned table missing %q", want)
		}
	}
}

// Command cbwslint runs the repo's custom analyzer suite
// (cbws/hotpathalloc, cbws/determinism, cbws/checkguard,
// cbws/batchalias — see internal/lint) over the named packages.
//
// Usage:
//
//	cbwslint [-tags taglist] [-list] packages...
//
// Run it on both build variants, because the cbwscheck-tagged files
// only load under -tags cbwscheck:
//
//	cbwslint ./...
//	cbwslint -tags cbwscheck ./...
//
// Exit status follows the repo convention: 0 clean, 1 findings or a
// load/analysis failure, 2 usage error. Findings are printed to stdout
// as "file:line:col: message (cbws/analyzer)"; a finding is silenced in
// place with
//
//	//lint:ignore cbws/<analyzer> <reason>
//
// on (or immediately above) the flagged line — the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cbws/internal/cli"
	"cbws/internal/lint"
	"cbws/internal/lint/analysis"
)

func main() {
	cli.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process edges (args, streams, exit) abstracted
// so tests can drive every exit path.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cbwslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tags := fs.String("tags", "", "build tags to load packages with (e.g. cbwscheck)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: cbwslint [-tags taglist] [-list] packages...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "cbws/%s: %s\n", a.Name, a.Doc)
		}
		return cli.ExitOK
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return cli.ExitUsage
	}

	pkgs, err := analysis.Load(".", *tags, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "cbwslint: %v\n", err)
		return cli.ExitFail
	}
	module := ""
	for _, p := range pkgs {
		if p.Module != "" {
			module = p.Module
			break
		}
	}
	diags, err := analysis.Run(lint.Analyzers(), pkgs, module)
	if err != nil {
		fmt.Fprintf(stderr, "cbwslint: %v\n", err)
		return cli.ExitFail
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "cbwslint: %d findings\n", len(diags))
		return cli.ExitFail
	}
	return cli.ExitOK
}

package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"cbws/internal/lint/analysis"
)

// CheckGuard enforces the check-layer/production separation:
//
//  1. Calls to the invariant hooks check.Assertf and check.Failf must
//     be guarded — lexically inside an `if check.Enabled` block — or
//     confined to a cbwscheck-tagged file, or live inside an
//     unexported check* helper (the repo convention for batched
//     invariant scans such as checkSet / checkROBOrder).
//  2. Calls to those unexported check* helpers must themselves be
//     guarded by check.Enabled (or be made from another helper /
//     tagged file), closing the loop opened by rule 1.
//  3. Reference-model files (ref*.go in the check package) must not
//     import the optimized packages they validate (internal/cache,
//     internal/engine, internal/core): the models are only credible
//     while they share nothing with the code under test beyond the
//     declared trace/mem interfaces.
//
// Package check itself is exempt from the guard rules (it defines the
// hooks).
var CheckGuard = &analysis.Analyzer{
	Name: "checkguard",
	Doc: "require check.Enabled guards around invariant hooks and " +
		"keep reference models import-independent of optimized packages",
	Run: runCheckGuard,
}

// refDenylist names the optimized packages (by path suffix) that
// reference models must not import.
var refDenylist = []string{"internal/cache", "internal/engine", "internal/core", "internal/prefetch/learned"}

func runCheckGuard(pass *analysis.Pass) error {
	inCheckPkg := pass.Pkg.Name() == "check"
	helpers := collectCheckHelpers(pass)
	for _, f := range pass.Files {
		filename := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if inCheckPkg {
			if strings.HasPrefix(filename, "ref") {
				checkRefImports(pass, f)
			}
			continue // the check package defines the hooks; guards don't apply
		}
		if analysis.FileHasBuildTag(f, "cbwscheck") {
			continue // the whole file only exists in checked builds
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedCalls(pass, fd, helpers)
		}
	}
	return nil
}

// collectCheckHelpers returns the unexported check*-named functions of
// this package whose bodies call check.Assertf or check.Failf
// directly; their call sites take over the guard obligation.
func collectCheckHelpers(pass *analysis.Pass) map[*types.Func]bool {
	helpers := make(map[*types.Func]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isCheckHelperName(fd.Name.Name) {
				continue
			}
			callsHook := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isInvariantHook(pass.TypesInfo, call) {
					callsHook = true
				}
				return !callsHook
			})
			if callsHook {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					helpers[fn] = true
				}
			}
		}
	}
	return helpers
}

func isCheckHelperName(name string) bool {
	return strings.HasPrefix(name, "check") && !ast.IsExported(name)
}

func isInvariantHook(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeOf(info, call)
	return isPkgFunc(fn, "internal/check", "Assertf") || isPkgFunc(fn, "internal/check", "Failf")
}

// checkGuardedCalls walks one function body tracking whether the
// current position is dominated by an `if check.Enabled` condition,
// and reports unguarded hook and helper calls.
func checkGuardedCalls(pass *analysis.Pass, fd *ast.FuncDecl, helpers map[*types.Func]bool) {
	// Inside a helper every hook call is fine: the helper's own call
	// sites carry the guard obligation (rule 2).
	selfIsHelper := false
	if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		selfIsHelper = helpers[fn]
	}
	var walk func(n ast.Node, guarded bool)
	walk = func(n ast.Node, guarded bool) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(node ast.Node) bool {
			switch e := node.(type) {
			case *ast.IfStmt:
				if guardsCheckEnabled(pass.TypesInfo, e.Cond) {
					walk(e.Init, guarded)
					walk(e.Body, true)
					walk(e.Else, guarded)
					return false
				}
			case *ast.CallExpr:
				if guarded || selfIsHelper {
					return true
				}
				if isInvariantHook(pass.TypesInfo, e) {
					pass.Reportf(e.Pos(),
						"call to check.%s is not guarded by check.Enabled (wrap it in `if check.Enabled`, move it into an unexported check* helper, or a cbwscheck-tagged file)",
						calleeOf(pass.TypesInfo, e).Name())
				} else if fn := calleeOf(pass.TypesInfo, e); fn != nil && helpers[fn] {
					pass.Reportf(e.Pos(),
						"call to invariant helper %s is not guarded by check.Enabled", fn.Name())
				}
			}
			return true
		})
	}
	walk(fd.Body, false)
}

// checkRefImports enforces rule 3 on one ref*.go file.
func checkRefImports(pass *analysis.Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		for _, deny := range refDenylist {
			if path == deny || strings.HasSuffix(path, "/"+deny) {
				pass.Reportf(imp.Pos(),
					"reference model imports optimized package %s; reference and production implementations must stay independent", path)
			}
		}
	}
}

package prefetch

import (
	"testing"

	"cbws/internal/mem"
)

func TestGHBModeNames(t *testing.T) {
	if NewGHB(GHBConfig{Mode: GlobalDC}).Name() != "ghb-g/dc" {
		t.Error("g/dc name")
	}
	if NewGHB(GHBConfig{Mode: PCDC}).Name() != "ghb-pc/dc" {
		t.Error("pc/dc name")
	}
}

func TestGHBPCDCConstantStride(t *testing.T) {
	p := NewGHB(GHBConfig{Mode: PCDC})
	c := &collect{}
	// Constant stride 5 at one PC: after enough misses the delta pair
	// (5,5) recurs and degree-3 prefetching fires at +5, +10, +15.
	var last []mem.LineAddr
	for i := 0; i < 8; i++ {
		c.lines = nil
		p.OnAccess(missAt(0x40, mem.LineAddr(100+5*i)), c.issue)
		last = append([]mem.LineAddr{}, c.lines...)
	}
	cur := mem.LineAddr(100 + 5*7)
	want := []mem.LineAddr{cur + 5, cur + 10, cur + 15}
	if len(last) != 3 {
		t.Fatalf("issued %v, want %v", last, want)
	}
	for i := range want {
		if last[i] != want[i] {
			t.Errorf("issued %v, want %v", last, want)
		}
	}
}

func TestGHBPCDCRepeatingPattern(t *testing.T) {
	p := NewGHB(GHBConfig{Mode: PCDC})
	c := &collect{}
	// Delta pattern +1, +9 repeating: PC/DC must predict the
	// continuation after seeing the delta pair recur.
	addr := mem.LineAddr(1000)
	var seq []mem.LineAddr
	deltas := []int64{1, 9, 1, 9, 1, 9, 1, 9}
	seq = append(seq, addr)
	for _, d := range deltas {
		addr = addr.Add(d)
		seq = append(seq, addr)
	}
	var last []mem.LineAddr
	for _, a := range seq {
		c.lines = nil
		p.OnAccess(missAt(0x40, a), c.issue)
		last = append([]mem.LineAddr{}, c.lines...)
	}
	if len(last) == 0 {
		t.Fatal("no prediction for repeating delta pattern")
	}
	// The last access completed a (1,9) pair: next deltas are 1, 9, 1.
	cur := seq[len(seq)-1]
	want := []mem.LineAddr{cur.Add(1), cur.Add(10), cur.Add(11)}
	for i := range last {
		if i < len(want) && last[i] != want[i] {
			t.Errorf("issued %v, want prefix of %v", last, want)
		}
	}
}

func TestGHBSeparatePCStreams(t *testing.T) {
	p := NewGHB(GHBConfig{Mode: PCDC})
	c := &collect{}
	// Two interleaved PC streams with different strides must not
	// contaminate each other.
	for i := 0; i < 8; i++ {
		p.OnAccess(missAt(0xA, mem.LineAddr(100+3*i)), c.issue)
		p.OnAccess(missAt(0xB, mem.LineAddr(50000+11*i)), c.issue)
	}
	for _, l := range c.lines {
		// All predictions must be near one of the two streams.
		nearA := l >= 100 && l <= 100+3*10
		nearB := l >= 50000 && l <= 50000+11*10
		if !nearA && !nearB {
			t.Errorf("prediction %v belongs to neither stream", l)
		}
	}
	if len(c.lines) == 0 {
		t.Error("no predictions for either stream")
	}
}

func TestGHBGlobalDCInterleavedIsOneStream(t *testing.T) {
	pg := NewGHB(GHBConfig{Mode: GlobalDC})
	c := &collect{}
	// In G/DC all PCs share one history: a globally constant stride is
	// predicted even when PCs alternate.
	for i := 0; i < 8; i++ {
		c.lines = nil
		pg.OnAccess(missAt(uint64(i%2), mem.LineAddr(100+4*i)), c.issue)
	}
	if len(c.lines) == 0 {
		t.Error("g/dc missed the global stride")
	}
}

func TestGHBMissTriggerOnly(t *testing.T) {
	p := NewGHB(GHBConfig{Mode: PCDC})
	c := &collect{}
	for i := 0; i < 8; i++ {
		p.OnAccess(missAt(0x40, mem.LineAddr(100+5*i)), c.issue)
	}
	c.lines = nil
	// Hits (L1 or L2) must not trigger under the paper's policy.
	a := missAt(0x40, 140)
	a.HitL1 = true
	p.OnAccess(a, c.issue)
	b := missAt(0x40, 145)
	b.HitL2 = true
	p.OnAccess(b, c.issue)
	if len(c.lines) != 0 {
		t.Errorf("hit-triggered: %v", c.lines)
	}
}

func TestGHBTrainOnHits(t *testing.T) {
	p := NewGHB(GHBConfig{Mode: PCDC, TrainOnHits: true})
	c := &collect{}
	for i := 0; i < 8; i++ {
		p.OnAccess(hitAt(0x40, mem.LineAddr(100+5*i)), c.issue)
	}
	if len(c.lines) == 0 {
		t.Error("TrainOnHits did not trigger on hits")
	}
}

func TestGHBBufferWrapInvalidatesLinks(t *testing.T) {
	p := NewGHB(GHBConfig{Mode: PCDC, BufferEntries: 8})
	c := &collect{}
	// Train PC 0xA, then flood the buffer with other PCs so the chain
	// of 0xA is overwritten; a new 0xA access must not follow stale
	// links (would panic or mispredict wildly).
	for i := 0; i < 4; i++ {
		p.OnAccess(missAt(0xA, mem.LineAddr(100+5*i)), c.issue)
	}
	for i := 0; i < 16; i++ {
		p.OnAccess(missAt(uint64(0x100+i), mem.LineAddr(9000+100*i)), c.issue)
	}
	c.lines = nil
	p.OnAccess(missAt(0xA, 120), c.issue)
	if len(c.lines) != 0 {
		t.Errorf("stale chain produced predictions: %v", c.lines)
	}
}

func TestGHBNoMatchNoPrediction(t *testing.T) {
	p := NewGHB(GHBConfig{Mode: PCDC})
	c := &collect{}
	// Random-walk deltas with no recurring pair: no predictions.
	deltas := []int64{3, 17, -4, 91, 5, -22, 13, 41}
	addr := mem.LineAddr(100000)
	for _, d := range deltas {
		addr = addr.Add(d)
		p.OnAccess(missAt(0x40, addr), c.issue)
	}
	if len(c.lines) != 0 {
		t.Errorf("predicted without a delta match: %v", c.lines)
	}
}

func TestGHBStorageBitsTableIII(t *testing.T) {
	// G/DC: (3+3)*12*256 = 18432 bits = 2.25KB.
	if got := NewGHB(GHBConfig{Mode: GlobalDC}).StorageBits(); got != 18432 {
		t.Errorf("g/dc StorageBits = %d, want 18432", got)
	}
	// PC/DC: G/DC + 48*256 = 30720 bits = 3.75KB.
	if got := NewGHB(GHBConfig{Mode: PCDC}).StorageBits(); got != 30720 {
		t.Errorf("pc/dc StorageBits = %d, want 30720", got)
	}
}

func TestGHBReset(t *testing.T) {
	p := NewGHB(GHBConfig{Mode: PCDC})
	c := &collect{}
	for i := 0; i < 8; i++ {
		p.OnAccess(missAt(0x40, mem.LineAddr(100+5*i)), c.issue)
	}
	p.Reset()
	c.lines = nil
	p.OnAccess(missAt(0x40, 140), c.issue)
	if len(c.lines) != 0 {
		t.Errorf("reset did not clear history: %v", c.lines)
	}
}

package hotpathalloc

import "cbws/internal/check"

// Reset is cold-path setup: unannotated functions may allocate freely.
func (r *ring) Reset(n int) {
	r.buf = make([]int, 0, n)
	r.count = 0
}

//cbws:hotpath
func (r *ring) push(v int) {
	// Appending to receiver-owned, preallocated capacity is the
	// sanctioned zero-allocation idiom.
	r.buf = append(r.buf, v)
	r.count++
}

//cbws:hotpath
func (r *ring) recycle() {
	// Receiver-derived aliases stay receiver-owned through reslicing.
	scratch := r.buf[:0]
	scratch = append(scratch, r.count)
	r.buf = scratch
	r.transfer()
}

//cbws:hotpath
func (r *ring) transfer() {
	if check.Enabled {
		// Checked builds may allocate: everything under the
		// check.Enabled guard is exempt, including boxing variadics.
		check.Assertf(r.count >= 0, "negative count %d", r.count)
	}
	r.count++
}

type cell struct{ vals []int }

type grid struct{ cells [4]cell }

// store appends through a pointer into receiver-owned storage
// (c := &g.cells[i]): still the preallocated-capacity idiom.
//
//cbws:hotpath
func (g *grid) store(i, v int) {
	c := &g.cells[i]
	c.vals = append(c.vals[:0], v)
}

//cbws:hotpath
func sum(xs []int) int {
	// Plain arithmetic, indexing, and struct values allocate nothing.
	total := 0
	for _, x := range xs {
		total += x
	}
	v := val{x: total}
	return v.x
}

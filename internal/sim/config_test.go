package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestConfigRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInstructions = 123456
	cfg.Memory.MemoryLatency = 250
	var buf bytes.Buffer
	if err := WriteConfig(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConfig(&buf, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Errorf("round trip changed config:\n got %+v\nwant %+v", got, cfg)
	}
}

func TestPartialConfigKeepsDefaults(t *testing.T) {
	// A file that only overrides one field keeps Table II for the rest.
	got, err := ReadConfig(strings.NewReader(`{"MaxInstructions": 777}`), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxInstructions != 777 {
		t.Errorf("override lost: %d", got.MaxInstructions)
	}
	def := DefaultConfig()
	if got.Memory != def.Memory || got.Core != def.Core {
		t.Error("defaults not preserved")
	}
}

func TestNestedPartialOverride(t *testing.T) {
	js := `{"Memory": {"L1": {"Name":"L1D","SizeBytes": 65536, "Ways": 4, "LatencyCycles": 2, "MSHRs": 4},
	                   "L2": {"Name":"L2","SizeBytes": 2097152, "Ways": 8, "LatencyCycles": 30, "MSHRs": 32},
	                   "MemoryLatency": 400}}`
	got, err := ReadConfig(strings.NewReader(js), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.Memory.L1.SizeBytes != 65536 || got.Memory.MemoryLatency != 400 {
		t.Errorf("nested override lost: %+v", got.Memory)
	}
}

func TestConfigUnknownFieldRejected(t *testing.T) {
	if _, err := ReadConfig(strings.NewReader(`{"Bogus": 1}`), DefaultConfig()); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestConfigValidationOnLoad(t *testing.T) {
	// An L1 with zero ways must be rejected.
	js := `{"Memory": {"L1": {"Name":"L1","SizeBytes": 32768, "Ways": 0, "LatencyCycles": 2, "MSHRs": 4},
	                   "L2": {"Name":"L2","SizeBytes": 2097152, "Ways": 8, "LatencyCycles": 30, "MSHRs": 32},
	                   "MemoryLatency": 300}}`
	if _, err := ReadConfig(strings.NewReader(js), DefaultConfig()); err == nil {
		t.Error("invalid geometry accepted")
	}
	// Warmup >= limit must be rejected.
	if _, err := ReadConfig(strings.NewReader(`{"MaxInstructions": 100, "WarmupInstructions": 100}`), DefaultConfig()); err == nil {
		t.Error("warmup >= limit accepted")
	}
}

func TestLoadConfigFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cfg.json")
	if err := os.WriteFile(path, []byte(`{"MaxInstructions": 42}`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxInstructions != 42 {
		t.Errorf("loaded %d", got.MaxInstructions)
	}
	if _, err := LoadConfig(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestDefaultConfigValidates(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Error(err)
	}
}

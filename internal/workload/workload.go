// Package workload provides the 30 benchmark emulations the harness runs
// — 15 memory-intensive (Table IV) and 15 regular — substituting for the
// SPEC CPU2006 / PARSEC / SPLASH / Rodinia / Parboil binaries of the
// paper's methodology.
//
// Each emulation reproduces the memory access structure of the
// benchmark's hot loops (stream counts, stride patterns, region
// locality, data dependence, branch divergence, working set size) rather
// than its computation, since the prefetchers under study observe only
// the committed address/PC/loop-marker stream. Innermost tight loops
// carry BLOCK_BEGIN/BLOCK_END annotations with static block IDs, exactly
// as the paper's LLVM pass emits them; see internal/annotate for the
// pass itself, which several IR-based kernels here exercise end to end.
//
// All generators are deterministic (fixed-seed splitmix64).
package workload

import (
	"sort"

	"cbws/internal/mem"
	"cbws/internal/trace"
)

// Spec describes one benchmark emulation.
type Spec struct {
	// Name matches the labels used in the paper's figures
	// (e.g. "stencil-default", "429.mcf-ref").
	Name string
	// Suite is the originating benchmark suite.
	Suite string
	// MI marks membership in the memory-intensive group (Table IV).
	MI bool
	// Make constructs a fresh generator for one run.
	Make func() trace.Generator
}

var registry []Spec

func register(s Spec) { registry = append(registry, s) }

// All returns every registered workload, sorted by name.
func All() []Spec {
	out := make([]Spec, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MemoryIntensive returns the Table IV group, sorted by name.
func MemoryIntensive() []Spec {
	var out []Spec
	for _, s := range All() {
		if s.MI {
			out = append(out, s)
		}
	}
	return out
}

// Regular returns the low-MPKI group, sorted by name.
func Regular() []Spec {
	var out []Spec
	for _, s := range All() {
		if !s.MI {
			out = append(out, s)
		}
	}
	return out
}

// ByName looks up a workload.
func ByName(name string) (Spec, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// prng is a splitmix64 deterministic random source.
type prng struct{ state uint64 }

func newPRNG(seed uint64) *prng { return &prng{state: seed} }

func (p *prng) next() uint64 {
	p.state += 0x9E3779B97F4A7C15
	z := p.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (p *prng) intn(n int) int { return int(p.next() % uint64(n)) }

// stopEmission unwinds a workload body once the consumer has requested
// a stop (its instruction budget is exhausted). The bodies are deeply
// nested loops with no natural early exit, so the one panic per run —
// recovered in GenerateBatches — replaces the per-event closure and
// panic the old Limit needed.
type stopEmission struct{}

// emitBatch is the emit buffer length; it matches the trace package's
// producer batch size so batch boundaries are unchanged from the
// Batcher-based pipeline.
const emitBatch = 256

// emit batches events into one reusable buffer, coalesces consecutive
// non-memory instructions, and provides shorthand for the event kinds;
// all workloads drive one of these. It owns its buffer rather than
// delegating to a trace.Batcher so that the per-event fast paths —
// pending-instr flush plus the event store — run without a function
// call per event.
type emit struct {
	sink trace.BatchSink
	n    int
	pend int
	buf  [emitBatch]trace.Event
}

func newEmit(sink trace.BatchSink) *emit { return &emit{sink: sink} }

// push appends one event, delivering the buffer when it is full and
// unwinding the workload body when the consumer stops.
func (e *emit) push(ev trace.Event) {
	n := e.n
	if uint(n) >= emitBatch {
		e.flushBuf()
		n = 0
	}
	e.buf[n] = ev
	e.n = n + 1
}

// flushBuf delivers the buffered events to the sink; a stop request
// unwinds the workload body (the event stream delivered so far is
// complete — nothing buffered is lost).
func (e *emit) flushBuf() {
	if e.n > 0 {
		more := e.sink.ConsumeBatch(e.buf[:e.n])
		e.n = 0
		if !more {
			panic(stopEmission{})
		}
	}
}

func (e *emit) flush() {
	if e.pend > 0 {
		n := e.pend
		e.pend = 0
		e.push(trace.Event{Kind: trace.Instr, N: n})
	}
}

// instr queues n non-memory instructions.
func (e *emit) instr(n int) { e.pend += n }

func (e *emit) load(pc uint64, addr mem.Addr) {
	n := e.n
	if p := e.pend; p > 0 {
		if uint(n) < emitBatch-1 {
			e.pend = 0
			e.buf[n] = trace.Event{Kind: trace.Instr, N: p}
			e.buf[n+1] = trace.Event{Kind: trace.Load, PC: pc, Addr: addr}
			e.n = n + 2
			return
		}
	} else if uint(n) < emitBatch {
		e.buf[n] = trace.Event{Kind: trace.Load, PC: pc, Addr: addr}
		e.n = n + 1
		return
	}
	e.flush()
	e.push(trace.Event{Kind: trace.Load, PC: pc, Addr: addr})
}

func (e *emit) store(pc uint64, addr mem.Addr) {
	n := e.n
	if p := e.pend; p > 0 {
		if uint(n) < emitBatch-1 {
			e.pend = 0
			e.buf[n] = trace.Event{Kind: trace.Instr, N: p}
			e.buf[n+1] = trace.Event{Kind: trace.Store, PC: pc, Addr: addr}
			e.n = n + 2
			return
		}
	} else if uint(n) < emitBatch {
		e.buf[n] = trace.Event{Kind: trace.Store, PC: pc, Addr: addr}
		e.n = n + 1
		return
	}
	e.flush()
	e.push(trace.Event{Kind: trace.Store, PC: pc, Addr: addr})
}

// branch emits a conditional-branch event at static site pc with the
// given outcome.
func (e *emit) branch(pc uint64, taken bool) {
	n := e.n
	if p := e.pend; p > 0 {
		if uint(n) < emitBatch-1 {
			e.pend = 0
			e.buf[n] = trace.Event{Kind: trace.Instr, N: p}
			e.buf[n+1] = trace.Event{Kind: trace.Branch, PC: pc, Taken: taken}
			e.n = n + 2
			return
		}
	} else if uint(n) < emitBatch {
		e.buf[n] = trace.Event{Kind: trace.Branch, PC: pc, Taken: taken}
		e.n = n + 1
		return
	}
	e.flush()
	e.push(trace.Event{Kind: trace.Branch, PC: pc, Taken: taken})
}

func (e *emit) begin(id int) {
	e.flush()
	e.push(trace.Event{Kind: trace.BlockBegin, Block: id})
}

func (e *emit) end(id int) {
	e.flush()
	e.push(trace.Event{Kind: trace.BlockEnd, Block: id})
}

// gen adapts a workload body to trace.BatchGenerator.
type gen struct {
	name string
	body func(*emit)
}

func (g gen) Name() string { return g.name }

func (g gen) Generate(sink trace.Sink) { g.GenerateBatches(trace.AsBatchSink(sink)) }

// GenerateBatches implements trace.BatchGenerator: the body emits into
// one reusable buffer and is unwound at most once when the sink stops.
func (g gen) GenerateBatches(sink trace.BatchSink) {
	e := newEmit(sink)
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(stopEmission); !ok {
				panic(r)
			}
		}
	}()
	g.body(e)
	e.flush()
	e.flushBuf()
}

// Distinct base addresses per array, spaced 256MB apart so arrays never
// alias and set-index interference between streams is realistic but not
// adversarial.
const arrayStride = 256 << 20

func base(k int) mem.Addr { return mem.Addr(1<<32 + k*arrayStride) }

// word is the element size used by most kernels (doubles).
const word = 8

// f32 is the element size of single-precision kernels.
const f32 = 4

#!/usr/bin/env bash
# End-to-end smoke of the cbwsd simulation service and cbwsctl client:
#
#   1. start cbwsd on an ephemeral port (discovered via -addr-file)
#      with the golden manifest's 400k/100k instruction window;
#   2. sweep a small workload × prefetcher matrix — including one
#      learned-prefetcher scheme (pythia) — and require every served
#      cell hash to match golden/seed.json: the daemon must be
#      byte-identical to the checked-in seed;
#   3. repeat the sweep and require a 100% cache-hit rate, checked both
#      by cbwsctl -require-cached and by the expvar counter deltas;
#   4. SIGTERM the daemon and require a clean drain: exit status 0 and
#      a persisted cache index.
#
# Run from the repository root: ./scripts/service_smoke.sh
set -euo pipefail

WORKLOADS="stencil-default,fft-simlarge"
# "pythia" exercises a learned-prefetcher cell end to end: the roster
# growth must leave job keys, cache replay, and golden hashes unchanged
# for the pre-existing schemes while serving the new ones.
PREFETCHERS="none,cbws,pythia"
CELLS=6

tmp="$(mktemp -d)"
daemon_pid=""
cleanup() {
    if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -9 "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "service-smoke: building cbwsd and cbwsctl"
go build -o "$tmp/cbwsd" ./cmd/cbwsd
go build -o "$tmp/cbwsctl" ./cmd/cbwsctl

# The prefetcher roster rides inside request/response payloads as plain
# strings, so growing it must not move the wire shape: regenerating the
# wirecompat manifest has to be a no-op against the committed file.
echo "service-smoke: api/v1 wire shape must be unchanged by the roster"
go run ./cmd/cbwslint -write-compat ./api/v1 >/dev/null
git diff --exit-code -- api/v1/compat.json || {
    echo "service-smoke: api/v1/compat.json changed; the roster growth moved the wire shape" >&2
    exit 1
}

mkdir -p "$tmp/cache"
"$tmp/cbwsd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -cache-dir "$tmp/cache" \
    -n 400000 -warmup 100000 2>"$tmp/cbwsd.log" &
daemon_pid=$!

for _ in $(seq 1 100); do
    [ -s "$tmp/addr" ] && break
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "service-smoke: cbwsd died on startup:" >&2
        cat "$tmp/cbwsd.log" >&2
        exit 1
    fi
    sleep 0.1
done
[ -s "$tmp/addr" ] || { echo "service-smoke: cbwsd never published its address" >&2; exit 1; }
url="http://$(cat "$tmp/addr")"
echo "service-smoke: cbwsd on $url"

# expvar_counter NAME prints the daemon's current cbwsd.NAME value.
expvar_counter() {
    curl -sf "$url/debug/vars" | grep -o "\"$1\":[0-9]*" | head -1 | cut -d: -f2
}

echo "service-smoke: sweep $WORKLOADS x $PREFETCHERS against golden/seed.json"
"$tmp/cbwsctl" -server "$url" sweep \
    -workloads "$WORKLOADS" -prefetchers "$PREFETCHERS" -golden golden/seed.json

hits_before="$(expvar_counter cache_hits)"
misses_before="$(expvar_counter cache_misses)"

echo "service-smoke: repeat sweep must be 100% cache hits"
"$tmp/cbwsctl" -server "$url" sweep \
    -workloads "$WORKLOADS" -prefetchers "$PREFETCHERS" -golden golden/seed.json \
    -require-cached

hits_after="$(expvar_counter cache_hits)"
misses_after="$(expvar_counter cache_misses)"
if [ "$misses_after" -ne "$misses_before" ]; then
    echo "service-smoke: repeat sweep caused $((misses_after - misses_before)) cache misses, want 0" >&2
    exit 1
fi
if [ "$((hits_after - hits_before))" -ne "$CELLS" ]; then
    echo "service-smoke: repeat sweep scored $((hits_after - hits_before)) cache hits, want $CELLS" >&2
    exit 1
fi

echo "service-smoke: SIGTERM, expecting a clean drain"
kill -TERM "$daemon_pid"
drain_status=0
wait "$daemon_pid" || drain_status=$?
daemon_pid=""
if [ "$drain_status" -ne 0 ]; then
    echo "service-smoke: cbwsd exited $drain_status after SIGTERM, want 0:" >&2
    cat "$tmp/cbwsd.log" >&2
    exit 1
fi
if [ ! -f "$tmp/cache/index.json" ]; then
    echo "service-smoke: drain did not persist the cache index" >&2
    exit 1
fi
entries="$(ls "$tmp/cache" | grep -c '\.json$')"
echo "service-smoke: PASS (drained cleanly, $entries cache files persisted)"

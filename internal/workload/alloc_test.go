package workload

import (
	"testing"

	"cbws/internal/trace"
)

type countBatchSink struct{ events uint64 }

func (c *countBatchSink) ConsumeBatch(batch []trace.Event) bool {
	c.events += uint64(len(batch))
	return true
}

func TestGeneratorPipelineAllocationsAreO1(t *testing.T) {
	// A full generator → Limit → sink run over 200k instructions must
	// allocate a small constant number of objects (generator state and
	// the emit buffer), independent of the event count: the per-event
	// path is a buffer store. The bound is deliberately loose — the
	// regression it guards against is per-event allocation, which would
	// show up at 4-5 orders of magnitude above it.
	spec, ok := ByName("stencil-default")
	if !ok {
		t.Fatal("stencil-default missing")
	}
	var cs countBatchSink
	avg := testing.AllocsPerRun(3, func() {
		trace.Limit{Gen: spec.Make(), Max: 200_000}.GenerateBatches(&cs)
	})
	if cs.events == 0 {
		t.Fatal("no events delivered")
	}
	if avg > 100 {
		t.Errorf("full pipeline run allocates %.0f objects, want O(1) (<= 100)", avg)
	}
}

package trace

import (
	"encoding/binary"
	"fmt"

	"cbws/internal/mem"
)

// ChunkDecoder is the incremental counterpart of Reader: it decodes the
// same CBWT byte stream, but fed as arbitrary chunks instead of a
// complete file. Chunk boundaries carry no meaning — a varint, an event,
// or even the file header may be split across any number of Feed calls —
// so a network ingest path can forward whatever byte windows the client
// happened to POST and still decode the exact event sequence a
// whole-stream Reader would have produced (FuzzStreamChunkFraming pins
// this equivalence).
//
// The steady-state Feed path allocates nothing: partial events wait in a
// fixed-size pending buffer (a complete event is at most maxEventBytes),
// decoded events accumulate in a decoder-owned batch that is flushed to
// the sink in place. Only header handling (the trace name) allocates,
// once per stream.
//
// Decoding errors are sticky: after the first malformed byte every
// subsequent Feed reports the same error. Bytes after the stream
// terminator are ignored, exactly as Reader stops reading at the
// terminator and never inspects trailing data.
type ChunkDecoder struct {
	phase    decodePhase
	err      error
	name     string
	headBuf  []byte // header accumulation; freed once the header parses
	headNeed int    // name bytes still missing (phaseName)

	lastPC   uint64
	lastAddr uint64

	pend  [maxEventBytes]byte
	npend int

	batch  [batchSize]Event
	nbatch int
}

// decodePhase tracks how far into the stream layout the decoder is.
type decodePhase uint8

const (
	phaseMagic  decodePhase = iota // magic + version + name-length varint
	phaseName                      // trace name bytes
	phaseEvents                    // event records
	phaseDone                      // terminator seen; trailing bytes ignored
)

// maxEventBytes bounds one encoded event: a kind byte plus at most two
// 64-bit varints (10 bytes each). If that many bytes cannot be decoded
// into a complete event, the stream is malformed, not merely short.
const maxEventBytes = 1 + 2*binary.MaxVarintLen64

// Name returns the trace name from the stream header and whether the
// header has been fully decoded yet.
func (d *ChunkDecoder) Name() (string, bool) {
	return d.name, d.phase >= phaseEvents
}

// Terminated reports whether the stream terminator byte has been seen:
// the trace is complete and any further bytes are ignored.
func (d *ChunkDecoder) Terminated() bool { return d.phase == phaseDone }

// Err returns the sticky decode error, nil while the stream is healthy.
func (d *ChunkDecoder) Err() error { return d.err }

// Feed decodes the next window of stream bytes, delivering complete
// events to sink in batches. It returns the first (sticky) decode error;
// events decoded before the error are still delivered. A sink stop
// request discards the rest of the window (and all future ones), like a
// Reader whose sink stopped.
func (d *ChunkDecoder) Feed(data []byte, sink BatchSink) error {
	if d.err != nil {
		return d.err
	}
	if d.phase < phaseEvents {
		var err error
		data, err = d.feedHeader(data)
		if err != nil || d.phase < phaseEvents {
			return err
		}
	}
	for len(data) > 0 && d.phase == phaseEvents {
		var (
			e  Event
			n  int
			ok bool
		)
		if d.npend > 0 {
			// A previous window ended mid-event: extend the pending
			// buffer and retry. n counts bytes consumed from data.
			add := copy(d.pend[d.npend:], data)
			e, n, ok = d.decodeOne(d.pend[:d.npend+add])
			if !ok {
				if d.err != nil {
					break
				}
				if d.npend+add >= maxEventBytes {
					d.err = fmt.Errorf("%w: event exceeds %d bytes", ErrBadTrace, maxEventBytes)
					break
				}
				d.npend += add
				data = data[add:]
				continue
			}
			n -= d.npend
			d.npend = 0
		} else {
			e, n, ok = d.decodeOne(data)
			if !ok {
				if d.err != nil {
					break
				}
				d.npend = copy(d.pend[:], data)
				break
			}
		}
		data = data[n:]
		if d.phase == phaseDone {
			break
		}
		d.batch[d.nbatch] = e
		d.nbatch++
		if d.nbatch == batchSize && !d.flush(sink) {
			return nil
		}
	}
	if !d.flush(sink) {
		return nil
	}
	return d.err
}

// flush delivers the buffered batch; it reports false when the sink
// requested a stop, which is treated like a terminator (remaining input
// is discarded, not an error).
func (d *ChunkDecoder) flush(sink BatchSink) bool {
	if d.nbatch == 0 {
		return true
	}
	more := sink.ConsumeBatch(d.batch[:d.nbatch])
	d.nbatch = 0
	if !more {
		d.phase = phaseDone
		return false
	}
	return true
}

// feedHeader consumes header bytes (magic, version, name length, name)
// and returns the unconsumed remainder once the header is complete.
func (d *ChunkDecoder) feedHeader(data []byte) ([]byte, error) {
	d.headBuf = append(d.headBuf, data...)
	if d.phase == phaseMagic {
		// magic + version + a complete name-length varint.
		need := len(traceMagic) + 1
		if len(d.headBuf) < need {
			return nil, nil
		}
		if string(d.headBuf[:len(traceMagic)]) != traceMagic {
			d.err = fmt.Errorf("%w: bad magic %q", ErrBadTrace, d.headBuf[:len(traceMagic)])
			return nil, d.err
		}
		if v := d.headBuf[len(traceMagic)]; v != traceVersion {
			d.err = fmt.Errorf("%w: unsupported version %d", ErrBadTrace, v)
			return nil, d.err
		}
		nameLen, n := binary.Uvarint(d.headBuf[need:])
		if n == 0 {
			return nil, nil // varint still incomplete
		}
		if n < 0 || nameLen > 1<<16 {
			d.err = fmt.Errorf("%w: name too long", ErrBadTrace)
			return nil, d.err
		}
		d.headBuf = d.headBuf[need+n:]
		d.headNeed = int(nameLen)
		d.phase = phaseName
	}
	if d.phase == phaseName {
		if len(d.headBuf) < d.headNeed {
			return nil, nil
		}
		d.name = string(d.headBuf[:d.headNeed])
		rest := d.headBuf[d.headNeed:]
		d.headBuf = nil
		d.phase = phaseEvents
		return rest, nil
	}
	return nil, nil
}

// decodeOne decodes a single event record from the front of b. It
// returns ok == false either because b is too short (retry with more
// bytes) or because the record is malformed (d.err is set). The
// terminator flips the decoder to phaseDone and reports n == 1 with a
// zero event.
func (d *ChunkDecoder) decodeOne(b []byte) (e Event, n int, ok bool) {
	kb := b[0]
	if kb == kindEOF {
		d.phase = phaseDone
		return Event{}, 1, true
	}
	e.Kind = Kind(kb)
	n = 1
	switch e.Kind {
	case Instr:
		v, un := binary.Uvarint(b[n:])
		if un == 0 {
			return e, 0, false
		}
		if un < 0 || v > MaxInstrCount {
			d.err = fmt.Errorf("%w: instr count %d exceeds %d", ErrBadTrace, v, uint64(MaxInstrCount))
			return e, 0, false
		}
		e.N = int(v)
		n += un
	case Load, Store:
		dpc, un := binary.Varint(b[n:])
		if un == 0 {
			return e, 0, false
		}
		if un < 0 {
			d.err = fmt.Errorf("%w: bad pc delta", ErrBadTrace)
			return e, 0, false
		}
		n += un
		daddr, un2 := binary.Varint(b[n:])
		if un2 == 0 {
			return e, 0, false
		}
		if un2 < 0 {
			d.err = fmt.Errorf("%w: bad addr delta", ErrBadTrace)
			return e, 0, false
		}
		n += un2
		d.lastPC = uint64(int64(d.lastPC) + dpc)
		d.lastAddr = uint64(int64(d.lastAddr) + daddr)
		e.PC = d.lastPC
		e.Addr = mem.Addr(d.lastAddr)
	case BlockBegin, BlockEnd:
		v, un := binary.Uvarint(b[n:])
		if un == 0 {
			return e, 0, false
		}
		if un < 0 || v > MaxBlockID {
			d.err = fmt.Errorf("%w: block ID %d exceeds %d", ErrBadTrace, v, uint64(MaxBlockID))
			return e, 0, false
		}
		e.Block = int(v)
		n += un
	case Branch:
		dpc, un := binary.Varint(b[n:])
		if un == 0 {
			return e, 0, false
		}
		if un < 0 {
			d.err = fmt.Errorf("%w: bad pc delta", ErrBadTrace)
			return e, 0, false
		}
		n += un
		t, un2 := binary.Uvarint(b[n:])
		if un2 == 0 {
			return e, 0, false
		}
		if un2 < 0 || t > 1 {
			d.err = fmt.Errorf("%w: branch outcome %d is not 0 or 1", ErrBadTrace, t)
			return e, 0, false
		}
		n += un2
		d.lastPC = uint64(int64(d.lastPC) + dpc)
		e.PC = d.lastPC
		e.Taken = t != 0
	default:
		d.err = fmt.Errorf("%w: unknown kind %d", ErrBadTrace, kb)
		return e, 0, false
	}
	return e, n, true
}

// Finish declares the input complete and checks the stream ended
// cleanly: the header parsed, no partial event is pending, and the
// terminator byte was seen — the same conditions under which a
// whole-stream Reader.Decode of the concatenated bytes returns nil.
func (d *ChunkDecoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.phase != phaseDone {
		d.err = fmt.Errorf("%w: truncated stream (no terminator)", ErrBadTrace)
		return d.err
	}
	return nil
}

// AtEventBoundary reports whether the decoder sits exactly between
// events: the header is parsed and no partial record is buffered. A
// stream closed here is structurally clean even without a terminator —
// the service's finalize-or-cancel logic uses this to distinguish "the
// client stopped between events" from "the client stopped mid-record".
func (d *ChunkDecoder) AtEventBoundary() bool {
	return d.err == nil && (d.phase == phaseDone || (d.phase == phaseEvents && d.npend == 0))
}

// Package engine implements the trace-driven out-of-order timing model:
// a W-wide core with an R-entry reorder buffer whose IPC responds to
// memory latency and memory-level parallelism, which is the property a
// prefetcher study needs from its core model.
//
// The model processes the committed instruction stream in program order.
// Each instruction occupies a ROB slot from dispatch to commit; loads
// start their cache access at dispatch and block commit until the data
// returns, so independent misses overlap up to the ROB size and the MSHR
// count — the same first-order behaviour as the paper's gem5 core
// (4-wide, 128-entry ROB, Table II).
//
// Internally the core clock is kept in "slot" units of 1/Width cycles so
// that fetch and commit bandwidth are enforced with integer arithmetic.
package engine

import (
	"fmt"

	"cbws/internal/mem"
	"cbws/internal/trace"
)

// Config describes the core (Table II defaults via DefaultConfig).
type Config struct {
	Width      int // fetch/commit width
	ROBEntries int
	LDQEntries int
	STQEntries int
	// MispredictPenalty is the front-end refill charged per branch
	// misprediction, in cycles. Ignored when no predictor is attached.
	MispredictPenalty uint64
}

// DefaultConfig returns the paper's core: 4-wide, 128-entry ROB,
// 32-entry load and store queues, 15-cycle misprediction refill.
func DefaultConfig() Config {
	return Config{Width: 4, ROBEntries: 128, LDQEntries: 32, STQEntries: 32, MispredictPenalty: 15}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Width <= 0 || c.ROBEntries <= 0 || c.LDQEntries <= 0 || c.STQEntries <= 0 {
		return fmt.Errorf("engine: all structure sizes must be positive, got %+v", c)
	}
	return nil
}

// BranchPredictor is the engine's view of the branch predictor (see
// internal/branch). Update records the outcome and reports whether the
// prediction was correct.
type BranchPredictor interface {
	Update(pc uint64, outcome bool) (correct bool)
}

// MemPort is the engine's view of the memory hierarchy. Load and Store
// are called at dispatch time (cycle now) and return the cycle at which
// the access data is available. Calls are made with monotonically
// non-decreasing now.
type MemPort interface {
	Load(pc uint64, addr mem.Addr, now uint64) (readyAt uint64)
	Store(pc uint64, addr mem.Addr, now uint64) (readyAt uint64)
}

// BlockObserver receives block boundary markers in commit order. The
// prefetcher wrapper implements it; a no-op implementation is used when
// no prefetcher is attached.
type BlockObserver interface {
	BlockBegin(id int)
	BlockEnd(id int)
}

// NopBlocks is a BlockObserver that ignores all markers.
type NopBlocks struct{}

// BlockBegin implements BlockObserver.
func (NopBlocks) BlockBegin(int) {}

// BlockEnd implements BlockObserver.
func (NopBlocks) BlockEnd(int) {}

// Stats holds the engine's outputs.
type Stats struct {
	Instructions uint64
	Cycles       uint64
	Loads        uint64
	Stores       uint64
	Branches     uint64
	Mispredicts  uint64
	Blocks       uint64 // dynamic block (loop iteration) count
	BlockSlots   uint64 // slot-units of runtime spent inside blocks
	TotalSlots   uint64 // slot-units of total runtime
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// LoopResidency returns the fraction of runtime spent inside annotated
// blocks (Figure 1).
func (s Stats) LoopResidency() float64 {
	if s.TotalSlots == 0 {
		return 0
	}
	return float64(s.BlockSlots) / float64(s.TotalSlots)
}

// Engine is the timing model. It implements trace.Sink.
type Engine struct {
	cfg    Config
	memsys MemPort
	blocks BlockObserver
	bp     BranchPredictor // nil: branches always predicted correctly

	width   uint64
	fetchQ  uint64   // fetch clock, in slot units (1 slot = 1/Width cycle)
	commitQ uint64   // commit clock, in slot units
	rob     []uint64 // per-slot cycle at which the previous occupant committed
	robPos  int
	ldq     []uint64 // completion cycles of the last LDQEntries loads
	ldqPos  int
	stq     []uint64
	stqPos  int

	inBlock     bool
	blockStartQ uint64

	Stats Stats
}

// New builds an engine over the given memory port. blocks may be nil.
func New(cfg Config, memsys MemPort, blocks BlockObserver) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if blocks == nil {
		blocks = NopBlocks{}
	}
	return &Engine{
		cfg:    cfg,
		memsys: memsys,
		blocks: blocks,
		width:  uint64(cfg.Width),
		rob:    make([]uint64, cfg.ROBEntries),
		ldq:    make([]uint64, cfg.LDQEntries),
		stq:    make([]uint64, cfg.STQEntries),
	}, nil
}

// AttachBranchPredictor installs bp; a nil predictor means branches are
// always predicted correctly (an ideal front end).
func (e *Engine) AttachBranchPredictor(bp BranchPredictor) { e.bp = bp }

// dispatch advances the fetch clock by one instruction and returns the
// cycle at which the instruction enters the ROB, accounting for ROB
// back-pressure.
func (e *Engine) dispatch() uint64 {
	e.fetchQ++
	enter := e.fetchQ / e.width
	if free := e.rob[e.robPos]; free > enter {
		enter = free
		e.fetchQ = enter * e.width // fetch stalls until the slot frees
	}
	return enter
}

// commit retires the instruction that completed at cycle complete,
// honoring in-order commit and commit width, and frees its ROB slot.
func (e *Engine) commit(complete uint64) {
	q := complete * e.width
	if q < e.commitQ+1 {
		q = e.commitQ + 1
	}
	e.commitQ = q
	e.rob[e.robPos] = q / e.width
	e.robPos++
	if e.robPos == len(e.rob) {
		e.robPos = 0
	}
	e.Stats.Instructions++
}

// Consume processes one trace event.
func (e *Engine) Consume(ev trace.Event) {
	switch ev.Kind {
	case trace.Instr:
		for n := ev.Count(); n > 0; n-- {
			enter := e.dispatch()
			e.commit(enter + 1)
		}
	case trace.Load:
		enter := e.dispatch()
		// LDQ back-pressure: at most LDQEntries loads in flight.
		if free := e.ldq[e.ldqPos]; free > enter {
			enter = free
		}
		ready := e.memsys.Load(ev.PC, ev.Addr, enter)
		e.ldq[e.ldqPos] = ready
		e.ldqPos++
		if e.ldqPos == len(e.ldq) {
			e.ldqPos = 0
		}
		e.commit(ready)
		e.Stats.Loads++
	case trace.Store:
		enter := e.dispatch()
		if free := e.stq[e.stqPos]; free > enter {
			enter = free
		}
		ready := e.memsys.Store(ev.PC, ev.Addr, enter)
		e.stq[e.stqPos] = ready
		e.stqPos++
		if e.stqPos == len(e.stq) {
			e.stqPos = 0
		}
		// Stores retire through the store buffer without blocking
		// commit on the cache fill.
		e.commit(enter + 1)
		e.Stats.Stores++
	case trace.Branch:
		enter := e.dispatch()
		e.commit(enter + 1)
		e.Stats.Branches++
		if e.bp != nil && !e.bp.Update(ev.PC, ev.Taken) {
			e.Stats.Mispredicts++
			// Squash: everything fetched past the branch is discarded,
			// so younger instructions dispatch only after the branch
			// resolves plus the refill penalty. Without operand
			// tracking, the branch's commit time is the resolution
			// estimate — data-dependent branches (the ones that
			// actually mispredict) resolve when their feeding loads
			// complete, which in-order commit approximates.
			stallUntil := e.commitQ + e.cfg.MispredictPenalty*e.width
			if stallUntil > e.fetchQ {
				e.fetchQ = stallUntil
			}
		}
	case trace.BlockBegin:
		// Block markers are real (single-cycle) instructions in the
		// paper's extended ISA.
		enter := e.dispatch()
		e.commit(enter + 1)
		if !e.inBlock {
			e.inBlock = true
			e.blockStartQ = e.commitQ
		}
		e.blocks.BlockBegin(ev.Block)
	case trace.BlockEnd:
		enter := e.dispatch()
		e.commit(enter + 1)
		if e.inBlock {
			e.inBlock = false
			e.Stats.BlockSlots += e.commitQ - e.blockStartQ
			e.Stats.Blocks++
		}
		e.blocks.BlockEnd(ev.Block)
	}
}

// Snapshot returns the statistics as of now, with the clock fields
// filled from the current commit state. Used to mark the end of a
// warmup window so measured metrics cover only the region of interest.
func (e *Engine) Snapshot() Stats {
	s := e.Stats
	s.Cycles = (e.commitQ + e.width - 1) / e.width
	s.TotalSlots = e.commitQ
	if e.inBlock {
		s.BlockSlots += e.commitQ - e.blockStartQ
	}
	return s
}

// Finish settles the clocks and returns the final statistics.
func (e *Engine) Finish() Stats {
	if e.inBlock {
		e.inBlock = false
		e.Stats.BlockSlots += e.commitQ - e.blockStartQ
		e.Stats.Blocks++
	}
	e.Stats.Cycles = (e.commitQ + e.width - 1) / e.width
	e.Stats.TotalSlots = e.commitQ
	return e.Stats
}

package analysis

import (
	"go/parser"
	"go/token"
	"testing"
)

func TestFileHasBuildTag(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"//go:build cbwscheck\n\npackage x\n", true},
		{"//go:build cbwscheck && linux\n\npackage x\n", true},
		{"//go:build !cbwscheck\n\npackage x\n", false},
		{"//go:build linux\n\npackage x\n", false},
		{"package x\n\n//go:build cbwscheck\n", false}, // after package clause: not a constraint
	}
	for _, tc := range cases {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "x.go", tc.src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		if got := FileHasBuildTag(f, "cbwscheck"); got != tc.want {
			t.Errorf("FileHasBuildTag(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestSuppressionsRequireReason(t *testing.T) {
	fset := token.NewFileSet()
	src := `package x

func a() {
	//lint:ignore cbws/demo documented reason
	_ = 1
	//lint:ignore cbws/demo
	_ = 2
	//lint:ignore demo missing the cbws/ prefix
	_ = 3
}
`
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{PkgPath: "x", Fset: fset}
	pkg.Files = append(pkg.Files, f)
	sup := collectSuppressions(pkg)

	diag := func(line int) Diagnostic {
		return Diagnostic{Analyzer: "demo", Pos: token.Position{Filename: "x.go", Line: line}}
	}
	if !sup.suppressed(diag(5)) {
		t.Error("suppression with reason on the line above should suppress")
	}
	if sup.suppressed(diag(7)) {
		t.Error("bare suppression (no reason) must not suppress")
	}
	if sup.suppressed(diag(9)) {
		t.Error("suppression without the cbws/ prefix must not suppress")
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"cbws/internal/lint/analysis"
)

// GuardedByAnnotation marks a struct field as protected by a sibling
// mutex field. It appears in the field's doc or line comment:
//
//	mu    sync.Mutex
//	jobs  map[string]*Job //cbws:guardedby mu
//
// Every read or write of the annotated field must then happen while
// the named sync.Mutex (or sync.RWMutex: RLock suffices for reads,
// Lock is required for writes) is held on all paths. Methods whose
// name ends in "Locked" are assumed to be called with the receiver's
// guard mutexes held — and callers of such methods are checked for
// exactly that, across packages via object facts.
const GuardedByAnnotation = "//cbws:guardedby"

// lockedFact is exported for every *Locked method of a type with
// guarded fields so that importing packages can verify their call
// sites hold the receiver's mutexes.
type lockedFact struct {
	Mutexes []string
}

// GuardedBy verifies //cbws:guardedby field annotations: an annotated
// field may only be accessed while the named sibling mutex is held.
// The check is an intraprocedural forward dataflow over each function
// body — Lock/RLock acquire, Unlock/RUnlock release, deferred unlocks
// keep the mutex held to function exit, and branches join by
// intersection (a lock must be held on every path reaching the
// access). Function literals are analyzed against an empty lock set,
// since they may run on any goroutine.
var GuardedBy = &analysis.Analyzer{
	Name: "guardedby",
	Doc: "verify that fields annotated //cbws:guardedby <mutex> are only " +
		"accessed while the named sibling sync.Mutex/RWMutex is held",
	Run: runGuardedBy,
}

// guardInfo describes one annotated field: the name of the sibling
// mutex that guards it.
type guardInfo struct {
	mutex string
}

type guardedChecker struct {
	pass *analysis.Pass
	// guards maps an annotated field object to its guard.
	guards map[types.Object]guardInfo
	// typeGuards maps a struct type to the sorted mutex field names
	// guarding any of its fields; *Locked methods on such a type are
	// assumed (and required) to run with all of them held.
	typeGuards map[*types.TypeName][]string
	// locked is the same-package view of lockedFact.
	locked map[*types.Func][]string
}

func runGuardedBy(pass *analysis.Pass) error {
	c := &guardedChecker{
		pass:       pass,
		guards:     make(map[types.Object]guardInfo),
		typeGuards: make(map[*types.TypeName][]string),
		locked:     make(map[*types.Func][]string),
	}
	// Phase 1: collect annotations and validate the named mutexes.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok {
					if st, ok := ts.Type.(*ast.StructType); ok {
						c.collectStruct(ts, st)
					}
				}
			}
		}
	}
	// Phase 2: record the contract of every *Locked method before any
	// body is checked, so intra-package call sites (and, via facts,
	// importing packages) can be verified.
	c.collectLockedContracts()
	// Phase 3: dataflow over every function body.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				c.checkFunc(fd)
			}
		}
	}
	return nil
}

func (c *guardedChecker) collectStruct(ts *ast.TypeSpec, st *ast.StructType) {
	tn, _ := c.pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
	var mutexes []string
	for _, field := range st.Fields.List {
		guard, ok := guardAnnotation(field)
		if !ok {
			continue
		}
		mut := siblingField(c.pass.TypesInfo, st, guard)
		if mut == nil || !isMutexType(mut.Type()) {
			c.pass.Reportf(field.Pos(), "//cbws:guardedby names %q: no sibling sync.Mutex or sync.RWMutex field", guard)
			continue
		}
		for _, name := range field.Names {
			if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
				c.guards[obj] = guardInfo{mutex: guard}
			}
		}
		if !containsString(mutexes, guard) {
			mutexes = append(mutexes, guard)
		}
	}
	if tn != nil && len(mutexes) > 0 {
		sort.Strings(mutexes)
		c.typeGuards[tn] = mutexes
	}
}

// guardAnnotation extracts the mutex name from a field's
// //cbws:guardedby comment (doc group or trailing line comment).
func guardAnnotation(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, cmt := range cg.List {
			rest, ok := strings.CutPrefix(cmt.Text, GuardedByAnnotation)
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) >= 1 {
				return fields[0], true
			}
			return "", true
		}
	}
	return "", false
}

func siblingField(info *types.Info, st *ast.StructType, name string) *types.Var {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name == name {
				v, _ := info.Defs[n].(*types.Var)
				return v
			}
		}
	}
	return nil
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// lockedDecl is one *Locked method awaiting contract derivation.
type lockedDecl struct {
	fn   *types.Func
	fd   *ast.FuncDecl
	recv types.Object
}

// collectLockedContracts derives, for every *Locked method on a type
// with guarded fields, the set of mutexes its callers must hold: the
// guards of the receiver fields the body accesses directly, plus the
// contracts of other *Locked methods it calls on the same receiver
// (one propagation round — deeper chains would need a fixpoint, which
// the codebase doesn't).
func (c *guardedChecker) collectLockedContracts() {
	info := c.pass.TypesInfo
	var decls []lockedDecl
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			tn := receiverTypeName(fn)
			if tn == nil {
				continue
			}
			if _, ok := c.typeGuards[tn]; !ok {
				continue
			}
			if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
				continue
			}
			recv := info.Defs[fd.Recv.List[0].Names[0]]
			if recv == nil {
				continue
			}
			decls = append(decls, lockedDecl{fn: fn, fd: fd, recv: recv})
		}
	}
	direct := make(map[*types.Func]map[string]bool, len(decls))
	for _, d := range decls {
		direct[d.fn] = c.directGuards(d)
	}
	for _, d := range decls {
		need := direct[d.fn]
		for _, callee := range c.receiverLockedCallees(d) {
			for m := range direct[callee] {
				need[m] = true
			}
		}
		mutexes := make([]string, 0, len(need))
		for m := range need {
			mutexes = append(mutexes, m)
		}
		sort.Strings(mutexes)
		c.locked[d.fn] = mutexes
		c.pass.ExportObjectFact(d.fn, lockedFact{Mutexes: mutexes})
	}
}

// directGuards returns the guard mutexes of receiver fields the body
// accesses directly (owner expression is exactly the receiver).
func (c *guardedChecker) directGuards(d lockedDecl) map[string]bool {
	info := c.pass.TypesInfo
	need := make(map[string]bool)
	ast.Inspect(d.fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		gi, guarded := c.guards[info.Uses[sel.Sel]]
		if !guarded {
			return true
		}
		if root, path, ok := selectorPath(info, sel.X); ok && root == d.recv && path == "" {
			need[gi.mutex] = true
		}
		return true
	})
	return need
}

// receiverLockedCallees returns the *Locked methods d's body calls on
// its own receiver.
func (c *guardedChecker) receiverLockedCallees(d lockedDecl) []*types.Func {
	info := c.pass.TypesInfo
	var out []*types.Func
	ast.Inspect(d.fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(info, call)
		if fn == nil || !strings.HasSuffix(fn.Name(), "Locked") {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if root, path, ok := selectorPath(info, sel.X); ok && root == d.recv && path == "" {
			out = append(out, fn)
		}
		return true
	})
	return out
}

// receiverTypeName returns the defining TypeName of fn's receiver base
// type, or nil for non-methods and non-named receivers.
func receiverTypeName(fn *types.Func) *types.TypeName {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// lockedMutexes resolves the mutexes a *Locked method requires, from
// the same package or from a fact exported by a dependency.
func (c *guardedChecker) lockedMutexes(fn *types.Func) ([]string, bool) {
	if m, ok := c.locked[fn]; ok {
		return m, true
	}
	if v, ok := c.pass.ImportObjectFact(fn); ok {
		if f, ok := v.(lockedFact); ok {
			return f.Mutexes, true
		}
	}
	return nil, false
}

// lockMode is the bitset of modes a mutex is held in on the current
// path: read (RLock) and/or write (Lock).
type lockMode uint8

const (
	lockRead lockMode = 1 << iota
	lockWrite
)

// lockKey identifies a mutex by the root object of its access path and
// the selector path from that root ("s" + ".tenants.mu"), so distinct
// instances reached from different variables do not alias.
type lockKey struct {
	root types.Object
	path string
}

type lockState map[lockKey]lockMode

func (st lockState) clone() lockState {
	out := make(lockState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// intersect keeps only the locks (and modes) held in both states.
func intersect(a, b lockState) lockState {
	out := make(lockState)
	for k, v := range a {
		if m := v & b[k]; m != 0 {
			out[k] = m
		}
	}
	return out
}

// joinStates merges two branch exits; a terminated branch (return,
// break, continue) does not constrain the state after the merge point.
func joinStates(a lockState, aTerm bool, b lockState, bTerm bool) lockState {
	switch {
	case aTerm && bTerm:
		return a
	case aTerm:
		return b
	case bTerm:
		return a
	default:
		return intersect(a, b)
	}
}

// selectorPath resolves expr to a (root object, ".a.b" selector path)
// pair. Only plain identifier roots with pure field selections are
// trackable; anything involving calls, indexing, or slicing is not.
func selectorPath(info *types.Info, e ast.Expr) (types.Object, string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return nil, "", false
		}
		return obj, "", true
	case *ast.SelectorExpr:
		root, p, ok := selectorPath(info, e.X)
		if !ok {
			return nil, "", false
		}
		return root, p + "." + e.Sel.Name, true
	case *ast.StarExpr:
		return selectorPath(info, e.X)
	}
	return nil, "", false
}

func (c *guardedChecker) checkFunc(fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	fc := &fnChecker{c: c, pass: c.pass}
	st := lockState{}
	// A *Locked method runs with its contract mutexes held; seed the
	// entry state accordingly.
	if fd.Recv != nil && strings.HasSuffix(fd.Name.Name, "Locked") &&
		len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		if fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
			if recvObj := c.pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]; recvObj != nil {
				for _, m := range c.locked[fn] {
					st[lockKey{recvObj, "." + m}] = lockWrite
				}
			}
		}
	}
	fc.stmts(fd.Body.List, st)
}

// fnChecker walks one function body, threading lockState through the
// control flow.
type fnChecker struct {
	c    *guardedChecker
	pass *analysis.Pass
}

// stmts walks a statement list. It returns the exit state and whether
// the list always terminates (return/break/continue/goto), in which
// case the exit state does not constrain the merge point.
func (fc *fnChecker) stmts(list []ast.Stmt, st lockState) (lockState, bool) {
	for _, s := range list {
		var term bool
		st, term = fc.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (fc *fnChecker) stmt(s ast.Stmt, st lockState) (lockState, bool) {
	switch s := s.(type) {
	case nil:
		return st, false
	case *ast.BlockStmt:
		return fc.stmts(s.List, st)
	case *ast.ExprStmt:
		fc.expr(s.X, st)
		return st, false
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			fc.expr(rhs, st)
		}
		for _, lhs := range s.Lhs {
			fc.assignTarget(lhs, st)
		}
		return st, false
	case *ast.IncDecStmt:
		fc.assignTarget(s.X, st)
		return st, false
	case *ast.DeferStmt:
		fc.deferStmt(s, st)
		return st, false
	case *ast.GoStmt:
		// The goroutine runs with no locks held from its own
		// perspective; arguments are evaluated now, under the current
		// state.
		for _, arg := range s.Call.Args {
			fc.expr(arg, st)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			fc.funcLit(lit)
		} else {
			fc.expr(s.Call.Fun, st)
		}
		return st, false
	case *ast.SendStmt:
		fc.expr(s.Chan, st)
		fc.expr(s.Value, st)
		return st, false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			fc.expr(r, st)
		}
		return st, true
	case *ast.BranchStmt:
		return st, true
	case *ast.LabeledStmt:
		return fc.stmt(s.Stmt, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						fc.expr(v, st)
					}
				}
			}
		}
		return st, false
	case *ast.IfStmt:
		st, _ = fc.stmt(s.Init, st)
		fc.expr(s.Cond, st)
		thenSt, thenTerm := fc.stmts(s.Body.List, st.clone())
		elseSt, elseTerm := st.clone(), false
		if s.Else != nil {
			elseSt, elseTerm = fc.stmt(s.Else, elseSt)
		}
		return joinStates(thenSt, thenTerm, elseSt, elseTerm), false
	case *ast.ForStmt:
		st, _ = fc.stmt(s.Init, st)
		fc.expr(s.Cond, st)
		bodySt, bodyTerm := fc.stmts(s.Body.List, st.clone())
		if !bodyTerm {
			bodySt, _ = fc.stmt(s.Post, bodySt)
		}
		// Loop exit: only locks held both before the loop and at the
		// end of an iteration are assumed afterwards (a break mid-body
		// is treated conservatively).
		return intersect(st, bodySt), false
	case *ast.RangeStmt:
		fc.expr(s.X, st)
		bodySt, _ := fc.stmts(s.Body.List, st.clone())
		return intersect(st, bodySt), false
	case *ast.SwitchStmt:
		st, _ = fc.stmt(s.Init, st)
		fc.expr(s.Tag, st)
		return fc.clauses(s.Body.List, st, !hasDefaultClause(s.Body.List)), false
	case *ast.TypeSwitchStmt:
		st, _ = fc.stmt(s.Init, st)
		st, _ = fc.stmt(s.Assign, st)
		return fc.clauses(s.Body.List, st, !hasDefaultClause(s.Body.List)), false
	case *ast.SelectStmt:
		// select blocks until one case proceeds: join the case exits.
		return fc.clauses(s.Body.List, st, false), false
	default:
		return st, false
	}
}

func hasDefaultClause(list []ast.Stmt) bool {
	for _, cl := range list {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// clauses joins the non-terminated exits of switch/select clauses.
// includeEntry adds the entry state to the join (a switch without a
// default may execute no clause at all).
func (fc *fnChecker) clauses(list []ast.Stmt, st lockState, includeEntry bool) lockState {
	var exits []lockState
	for _, cl := range list {
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				fc.expr(e, st)
			}
			s, term := fc.stmts(cl.Body, st.clone())
			if !term {
				exits = append(exits, s)
			}
		case *ast.CommClause:
			cs := st.clone()
			cs, _ = fc.stmt(cl.Comm, cs)
			s, term := fc.stmts(cl.Body, cs)
			if !term {
				exits = append(exits, s)
			}
		}
	}
	if includeEntry {
		exits = append(exits, st)
	}
	if len(exits) == 0 {
		return st // every clause terminates; the successor is unreachable
	}
	out := exits[0]
	for _, e := range exits[1:] {
		out = intersect(out, e)
	}
	return out
}

func (fc *fnChecker) deferStmt(s *ast.DeferStmt, st lockState) {
	// defer mu.Unlock() releases at function exit: the mutex stays
	// held for the remainder of the body, so the state is untouched.
	if sel, ok := ast.Unparen(s.Call.Fun).(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock" {
			if isMutexType(fc.pass.TypesInfo.TypeOf(sel.X)) {
				return
			}
		}
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		for _, a := range s.Call.Args {
			fc.expr(a, st)
		}
		fc.funcLit(lit)
		return
	}
	fc.expr(s.Call.Fun, st)
	for _, a := range s.Call.Args {
		fc.expr(a, st)
	}
}

// funcLit analyzes a closure body against an empty lock set: it may
// run on any goroutine, so locks held at the creation site don't
// transfer. Locks the closure acquires itself are tracked normally.
func (fc *fnChecker) funcLit(lit *ast.FuncLit) {
	fc.stmts(lit.Body.List, lockState{})
}

// expr walks an expression in read position, updating st for lock
// operations and checking guarded-field accesses.
func (fc *fnChecker) expr(e ast.Expr, st lockState) {
	switch e := e.(type) {
	case nil, *ast.Ident, *ast.BasicLit:
	case *ast.ParenExpr:
		fc.expr(e.X, st)
	case *ast.SelectorExpr:
		if fc.isGuarded(e) {
			fc.access(e, st, false)
		}
		fc.expr(e.X, st)
	case *ast.StarExpr:
		fc.expr(e.X, st)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// Taking a guarded field's address lets it escape the
			// critical section; require the write mode.
			if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok && fc.isGuarded(sel) {
				fc.access(sel, st, true)
				fc.expr(sel.X, st)
				return
			}
		}
		fc.expr(e.X, st)
	case *ast.BinaryExpr:
		fc.expr(e.X, st)
		fc.expr(e.Y, st)
	case *ast.IndexExpr:
		fc.expr(e.X, st)
		fc.expr(e.Index, st)
	case *ast.IndexListExpr:
		fc.expr(e.X, st)
		for _, i := range e.Indices {
			fc.expr(i, st)
		}
	case *ast.SliceExpr:
		fc.expr(e.X, st)
		fc.expr(e.Low, st)
		fc.expr(e.High, st)
		fc.expr(e.Max, st)
	case *ast.TypeAssertExpr:
		fc.expr(e.X, st)
	case *ast.CallExpr:
		fc.call(e, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			fc.expr(el, st)
		}
	case *ast.KeyValueExpr:
		fc.expr(e.Key, st)
		fc.expr(e.Value, st)
	case *ast.FuncLit:
		fc.funcLit(e)
	}
}

func (fc *fnChecker) call(e *ast.CallExpr, st lockState) {
	if fc.lockOp(e, st) {
		return
	}
	// delete(x.guardedMap, k) writes the field.
	if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && len(e.Args) >= 1 {
		if b, ok := fc.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
			if sel, ok := ast.Unparen(e.Args[0]).(*ast.SelectorExpr); ok && fc.isGuarded(sel) {
				fc.access(sel, st, true)
				fc.expr(sel.X, st)
				for _, a := range e.Args[1:] {
					fc.expr(a, st)
				}
				return
			}
		}
	}
	fc.lockedCall(e, st)
	fc.expr(e.Fun, st)
	for _, a := range e.Args {
		fc.expr(a, st)
	}
}

// lockOp recognizes Lock/RLock/Unlock/RUnlock calls on sync mutexes
// and updates st in place. It reports true when e was such a call.
func (fc *fnChecker) lockOp(e *ast.CallExpr, st lockState) bool {
	fn := methodOf(fc.pass.TypesInfo, e)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	var bit lockMode
	var acquire bool
	switch fn.Name() {
	case "Lock":
		bit, acquire = lockWrite, true
	case "RLock":
		bit, acquire = lockRead, true
	case "Unlock":
		bit, acquire = lockWrite, false
	case "RUnlock":
		bit, acquire = lockRead, false
	default:
		return false
	}
	sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
	if !ok {
		return true
	}
	root, path, ok := selectorPath(fc.pass.TypesInfo, sel.X)
	if !ok {
		return true // untrackable mutex expression: no state change
	}
	key := lockKey{root, path}
	if acquire {
		st[key] |= bit
	} else {
		st[key] &^= bit
		if st[key] == 0 {
			delete(st, key)
		}
	}
	return true
}

// lockedCall checks that a call to a *Locked method holds the
// receiver's guard mutexes in write mode.
func (fc *fnChecker) lockedCall(e *ast.CallExpr, st lockState) {
	fn := calleeOf(fc.pass.TypesInfo, e)
	if fn == nil || !strings.HasSuffix(fn.Name(), "Locked") {
		return
	}
	mutexes, ok := fc.c.lockedMutexes(fn)
	if !ok {
		return
	}
	sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	root, path, ok := selectorPath(fc.pass.TypesInfo, sel.X)
	if !ok {
		return
	}
	for _, m := range mutexes {
		if st[lockKey{root, path + "." + m}]&lockWrite == 0 {
			fc.pass.Reportf(e.Pos(), "call to %s without holding %s", fn.Name(), m)
		}
	}
}

// assignTarget checks an assignment LHS: storing to a guarded field
// (or an element of one) requires the write mode.
func (fc *fnChecker) assignTarget(lhs ast.Expr, st lockState) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if fc.isGuarded(l) {
			fc.access(l, st, true)
			fc.expr(l.X, st)
			return
		}
		fc.expr(l, st)
	case *ast.IndexExpr:
		if sel, ok := ast.Unparen(l.X).(*ast.SelectorExpr); ok && fc.isGuarded(sel) {
			fc.access(sel, st, true)
			fc.expr(sel.X, st)
			fc.expr(l.Index, st)
			return
		}
		fc.expr(l, st)
	case *ast.StarExpr:
		fc.expr(l.X, st)
	case *ast.Ident:
		// Local or blank target: nothing guarded.
	default:
		fc.expr(lhs, st)
	}
}

func (fc *fnChecker) isGuarded(sel *ast.SelectorExpr) bool {
	obj := fc.pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return false
	}
	_, ok := fc.c.guards[obj]
	return ok
}

func (fc *fnChecker) access(sel *ast.SelectorExpr, st lockState, write bool) {
	obj := fc.pass.TypesInfo.Uses[sel.Sel]
	gi := fc.c.guards[obj]
	root, path, ok := selectorPath(fc.pass.TypesInfo, sel.X)
	if !ok {
		return // untrackable owner: give the benefit of the doubt
	}
	mode := st[lockKey{root, path + "." + gi.mutex}]
	switch {
	case write && mode&lockWrite == 0:
		if mode&lockRead != 0 {
			fc.pass.Reportf(sel.Sel.Pos(), "field %s written while holding only %s.RLock", sel.Sel.Name, gi.mutex)
		} else {
			fc.pass.Reportf(sel.Sel.Pos(), "field %s written without holding %s", sel.Sel.Name, gi.mutex)
		}
	case !write && mode == 0:
		fc.pass.Reportf(sel.Sel.Pos(), "field %s read without holding %s", sel.Sel.Name, gi.mutex)
	}
}

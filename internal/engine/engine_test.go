package engine

import (
	"testing"

	"cbws/internal/mem"
	"cbws/internal/trace"
)

// fixedMem is a MemPort with constant latencies.
type fixedMem struct {
	loadLat  uint64
	storeLat uint64
	loads    []uint64 // issue cycles observed
}

func (f *fixedMem) Load(pc uint64, addr mem.Addr, now uint64) uint64 {
	f.loads = append(f.loads, now)
	return now + f.loadLat
}

func (f *fixedMem) Store(pc uint64, addr mem.Addr, now uint64) uint64 {
	return now + f.storeLat
}

func mustEngine(t *testing.T, memsys MemPort, blocks BlockObserver) *Engine {
	t.Helper()
	e, err := New(DefaultConfig(), memsys, blocks)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config: %v", err)
	}
	bad := Config{Width: 0, ROBEntries: 128, LDQEntries: 32, STQEntries: 32}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero width")
	}
	if _, err := New(bad, &fixedMem{}, nil); err == nil {
		t.Error("New should reject invalid config")
	}
}

func TestWidthBoundIPC(t *testing.T) {
	// Pure ALU instructions commit at the core width: IPC -> 4.
	e := mustEngine(t, &fixedMem{}, nil)
	e.Consume(trace.Event{Kind: trace.Instr, N: 100000})
	s := e.Finish()
	if s.Instructions != 100000 {
		t.Fatalf("instructions = %d", s.Instructions)
	}
	if ipc := s.IPC(); ipc < 3.9 || ipc > 4.01 {
		t.Errorf("IPC = %.3f, want ~4", ipc)
	}
}

func TestLoadLatencyBoundIPC(t *testing.T) {
	// Serialized dependent-commit loads: each load blocks commit until
	// its data returns, but loads issue at dispatch so up to ROB-many
	// overlap. With one load per instruction and 100-cycle latency,
	// throughput is bounded by dispatch (stalling on ROB) — the
	// pipeline must sustain far more than 1/100 IPC.
	f := &fixedMem{loadLat: 100}
	e := mustEngine(t, f, nil)
	for i := 0; i < 1000; i++ {
		e.Consume(trace.Event{Kind: trace.Load, PC: 1, Addr: mem.Addr(i * 64)})
	}
	s := e.Finish()
	// The 32-entry LDQ bounds memory-level parallelism: throughput
	// approaches 32 loads per 100 cycles = 0.32 IPC.
	ipc := s.IPC()
	if ipc < 0.25 || ipc > 0.40 {
		t.Errorf("IPC = %.3f, want ~0.32 (LDQ-bound overlap)", ipc)
	}
	if s.Loads != 1000 {
		t.Errorf("loads = %d", s.Loads)
	}
}

func TestLDQBoundsOverlap(t *testing.T) {
	// 256 loads of latency L with a 32-entry LDQ proceed in ceil(256/32)
	// = 8 serialized batches of 32 overlapping loads each.
	f := &fixedMem{loadLat: 10000}
	e := mustEngine(t, f, nil)
	for i := 0; i < 256; i++ {
		e.Consume(trace.Event{Kind: trace.Load, PC: 1, Addr: mem.Addr(i * 64)})
	}
	s := e.Finish()
	if s.Cycles < 8*10000 {
		t.Errorf("cycles = %d, want >= 80000 (LDQ limits overlap)", s.Cycles)
	}
	if s.Cycles > 9*10000 {
		t.Errorf("cycles = %d: too little overlap", s.Cycles)
	}
}

func TestLDQLimitsOutstandingLoads(t *testing.T) {
	// 32-entry LDQ: load 33 must wait for load 1's completion.
	f := &fixedMem{loadLat: 1000}
	e := mustEngine(t, f, nil)
	for i := 0; i < 33; i++ {
		e.Consume(trace.Event{Kind: trace.Load, PC: 1, Addr: mem.Addr(i * 64)})
	}
	if len(f.loads) != 33 {
		t.Fatalf("observed %d loads", len(f.loads))
	}
	if f.loads[32] < 1000 {
		t.Errorf("33rd load issued at %d, want >= 1000 (LDQ full)", f.loads[32])
	}
	if f.loads[31] >= 1000 {
		t.Errorf("32nd load issued at %d, should not be LDQ-stalled", f.loads[31])
	}
}

func TestStoresDoNotBlockCommit(t *testing.T) {
	// Stores retire through the store buffer: high store latency must
	// not serialize commit.
	f := &fixedMem{storeLat: 10000}
	e := mustEngine(t, f, nil)
	for i := 0; i < 30; i++ {
		e.Consume(trace.Event{Kind: trace.Store, PC: 1, Addr: mem.Addr(i * 64)})
	}
	s := e.Finish()
	if s.Cycles > 100 {
		t.Errorf("cycles = %d: stores blocked commit", s.Cycles)
	}
	if s.Stores != 30 {
		t.Errorf("stores = %d", s.Stores)
	}
}

func TestMonotonicLoadIssueTimes(t *testing.T) {
	f := &fixedMem{loadLat: 77}
	e := mustEngine(t, f, nil)
	for i := 0; i < 500; i++ {
		e.Consume(trace.Event{Kind: trace.Instr, N: i % 5})
		e.Consume(trace.Event{Kind: trace.Load, PC: 1, Addr: mem.Addr(i * 64)})
	}
	for i := 1; i < len(f.loads); i++ {
		if f.loads[i] < f.loads[i-1] {
			t.Fatalf("load %d issued at %d before previous at %d", i, f.loads[i], f.loads[i-1])
		}
	}
}

type blockRecorder struct {
	begins, ends []int
}

func (b *blockRecorder) BlockBegin(id int) { b.begins = append(b.begins, id) }
func (b *blockRecorder) BlockEnd(id int)   { b.ends = append(b.ends, id) }

func TestBlockObserverAndResidency(t *testing.T) {
	f := &fixedMem{loadLat: 50}
	rec := &blockRecorder{}
	e := mustEngine(t, f, rec)

	// Non-loop prologue.
	e.Consume(trace.Event{Kind: trace.Instr, N: 1000})
	for i := 0; i < 10; i++ {
		e.Consume(trace.Event{Kind: trace.BlockBegin, Block: 7})
		e.Consume(trace.Event{Kind: trace.Load, PC: 1, Addr: mem.Addr(i * 64)})
		e.Consume(trace.Event{Kind: trace.Instr, N: 100})
		e.Consume(trace.Event{Kind: trace.BlockEnd, Block: 7})
	}
	s := e.Finish()
	if len(rec.begins) != 10 || len(rec.ends) != 10 || rec.begins[0] != 7 {
		t.Errorf("observer: %d begins, %d ends", len(rec.begins), len(rec.ends))
	}
	if s.Blocks != 10 {
		t.Errorf("blocks = %d", s.Blocks)
	}
	res := s.LoopResidency()
	if res <= 0.3 || res >= 0.9 {
		t.Errorf("residency = %.2f, want in (0.3, 0.9)", res)
	}
}

func TestUnterminatedBlockClosedAtFinish(t *testing.T) {
	e := mustEngine(t, &fixedMem{}, nil)
	e.Consume(trace.Event{Kind: trace.BlockBegin, Block: 1})
	e.Consume(trace.Event{Kind: trace.Instr, N: 100})
	s := e.Finish()
	if s.Blocks != 1 {
		t.Errorf("blocks = %d, want 1 (closed at finish)", s.Blocks)
	}
	if s.LoopResidency() < 0.9 {
		t.Errorf("residency = %.2f, want ~1", s.LoopResidency())
	}
}

func TestNestedBeginIgnored(t *testing.T) {
	// A second BlockBegin while inside a block must not reset the
	// residency accounting start.
	e := mustEngine(t, &fixedMem{}, nil)
	e.Consume(trace.Event{Kind: trace.BlockBegin, Block: 1})
	e.Consume(trace.Event{Kind: trace.Instr, N: 50})
	e.Consume(trace.Event{Kind: trace.BlockBegin, Block: 1})
	e.Consume(trace.Event{Kind: trace.Instr, N: 50})
	e.Consume(trace.Event{Kind: trace.BlockEnd, Block: 1})
	s := e.Finish()
	if s.Blocks != 1 {
		t.Errorf("blocks = %d, want 1", s.Blocks)
	}
	if s.LoopResidency() < 0.9 {
		t.Errorf("residency = %.2f, want ~1 (both halves inside)", s.LoopResidency())
	}
}

func TestSnapshotMidRun(t *testing.T) {
	e := mustEngine(t, &fixedMem{}, nil)
	e.Consume(trace.Event{Kind: trace.Instr, N: 4000})
	snap := e.Snapshot()
	if snap.Instructions != 4000 {
		t.Errorf("snapshot instructions = %d", snap.Instructions)
	}
	if snap.Cycles < 1000 || snap.Cycles > 1100 {
		t.Errorf("snapshot cycles = %d, want ~1000", snap.Cycles)
	}
	e.Consume(trace.Event{Kind: trace.Instr, N: 4000})
	s := e.Finish()
	if s.Instructions-snap.Instructions != 4000 {
		t.Errorf("delta instructions = %d", s.Instructions-snap.Instructions)
	}
	if d := s.Cycles - snap.Cycles; d < 990 || d > 1100 {
		t.Errorf("delta cycles = %d, want ~1000", d)
	}
}

func TestIPCZeroCycles(t *testing.T) {
	var s Stats
	if s.IPC() != 0 {
		t.Error("IPC of empty stats should be 0")
	}
	if s.LoopResidency() != 0 {
		t.Error("residency of empty stats should be 0")
	}
}

func TestNopBlocks(t *testing.T) {
	// NopBlocks must satisfy the interface and do nothing.
	var nb NopBlocks
	nb.BlockBegin(1)
	nb.BlockEnd(1)
}

// alwaysWrong is a BranchPredictor that mispredicts everything.
type alwaysWrong struct{}

func (alwaysWrong) Update(uint64, bool) bool { return false }

// alwaysRight predicts everything correctly.
type alwaysRight struct{}

func (alwaysRight) Update(uint64, bool) bool { return true }

func TestMispredictPenaltyStallsFetch(t *testing.T) {
	run := func(bp BranchPredictor) Stats {
		e := mustEngine(t, &fixedMem{}, nil)
		e.AttachBranchPredictor(bp)
		for i := 0; i < 1000; i++ {
			e.Consume(trace.Event{Kind: trace.Instr, N: 3})
			e.Consume(trace.Event{Kind: trace.Branch, PC: 0x40, Taken: true})
		}
		return e.Finish()
	}
	good := run(alwaysRight{})
	bad := run(alwaysWrong{})
	if bad.Mispredicts != 1000 || good.Mispredicts != 0 {
		t.Fatalf("mispredicts: good=%d bad=%d", good.Mispredicts, bad.Mispredicts)
	}
	if good.Branches != 1000 {
		t.Errorf("branches = %d", good.Branches)
	}
	// Each mispredict costs ~the refill penalty in fetch stall.
	if bad.Cycles < good.Cycles+1000*10 {
		t.Errorf("penalty not charged: good=%d bad=%d cycles", good.Cycles, bad.Cycles)
	}
}

func TestNilPredictorIsIdeal(t *testing.T) {
	e := mustEngine(t, &fixedMem{}, nil)
	for i := 0; i < 100; i++ {
		e.Consume(trace.Event{Kind: trace.Branch, PC: 0x40, Taken: i%2 == 0})
	}
	s := e.Finish()
	if s.Mispredicts != 0 {
		t.Errorf("nil predictor mispredicted: %d", s.Mispredicts)
	}
	if s.Branches != 100 {
		t.Errorf("branches = %d", s.Branches)
	}
}

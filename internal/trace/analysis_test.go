package trace

import (
	"strings"
	"testing"

	"cbws/internal/mem"
)

func analysisFixture() Generator {
	return GeneratorFunc{GenName: "fixture", Fn: func(s Sink) {
		for i := 0; i < 100; i++ {
			s.Consume(Event{Kind: BlockBegin, Block: 0})
			s.Consume(Event{Kind: Load, PC: 0x10, Addr: mem.Addr(1<<20 + i*64)})
			s.Consume(Event{Kind: Load, PC: 0x14, Addr: mem.Addr(1<<21 + i*128)})
			s.Consume(Event{Kind: Store, PC: 0x18, Addr: mem.Addr(1<<22 + i*64)})
			s.Consume(Event{Kind: Instr, N: 5})
			s.Consume(Event{Kind: Branch, PC: 0x1c, Taken: i%4 != 0})
			s.Consume(Event{Kind: BlockEnd, Block: 0})
		}
	}}
}

func TestAnalyzeCounts(t *testing.T) {
	s := Analyze(analysisFixture(), 0)
	if s.Loads != 200 || s.Stores != 100 || s.Blocks != 100 {
		t.Errorf("counts: %+v", s)
	}
	if s.Branches != 100 || s.BranchTaken != 75 {
		t.Errorf("branches: %d taken %d", s.Branches, s.BranchTaken)
	}
	// 2 + 2 + 1 per-stream lines... stream 1: 100 lines; stream 2 (stride
	// 128B): 100 distinct lines over 200 line span; stream 3: 100.
	if s.UniqueLines != 300 {
		t.Errorf("unique lines = %d, want 300", s.UniqueLines)
	}
	if s.UniquePCs != 3 {
		t.Errorf("unique PCs = %d", s.UniquePCs)
	}
	if s.FootprintBytes != 300*64 {
		t.Errorf("footprint = %d", s.FootprintBytes)
	}
}

func TestAnalyzeBlockSizes(t *testing.T) {
	s := Analyze(analysisFixture(), 0)
	if got := s.BlocksWithin(16); got != 1.0 {
		t.Errorf("BlocksWithin(16) = %v", got)
	}
	if got := s.BlocksWithin(2); got != 0 {
		t.Errorf("BlocksWithin(2) = %v (blocks have 3 lines)", got)
	}
	if s.BlockSizes[3] != 100 {
		t.Errorf("block sizes: %v", s.BlockSizes)
	}
}

func TestAnalyzeStrides(t *testing.T) {
	s := Analyze(analysisFixture(), 0)
	// Dominant strides: +1 (two streams) and +2 (the 128B stream).
	found1, found2 := false, false
	for _, sc := range s.TopStrides {
		if sc.Stride == 1 && sc.Count >= 190 {
			found1 = true
		}
		if sc.Stride == 2 && sc.Count >= 95 {
			found2 = true
		}
	}
	if !found1 || !found2 {
		t.Errorf("stride histogram: %+v", s.TopStrides)
	}
}

func TestAnalyzeOverflowBucket(t *testing.T) {
	g := GeneratorFunc{GenName: "big", Fn: func(s Sink) {
		s.Consume(Event{Kind: BlockBegin, Block: 0})
		for i := 0; i < 40; i++ {
			s.Consume(Event{Kind: Load, PC: 1, Addr: mem.Addr(i * 64)})
		}
		s.Consume(Event{Kind: BlockEnd, Block: 0})
	}}
	s := Analyze(g, 0)
	if s.BlockSizes[17] != 1 {
		t.Errorf("overflow bucket: %v", s.BlockSizes)
	}
	if s.BlocksWithin(16) != 0 {
		t.Error("overflowing block counted as within 16")
	}
}

func TestAnalyzeLimit(t *testing.T) {
	s := Analyze(analysisFixture(), 50)
	if s.Instructions > 60 {
		t.Errorf("limit not applied: %d instructions", s.Instructions)
	}
}

func TestSummaryRender(t *testing.T) {
	s := Analyze(analysisFixture(), 0)
	out := s.String()
	for _, want := range []string{"fixture", "loads", "blocks <= 16 lines: 100.0%", "top per-PC line strides"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

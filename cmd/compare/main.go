// Command compare simulates one workload under two prefetching schemes
// and prints a side-by-side metric comparison — the quickest way to see
// *why* one scheme wins (coverage, timeliness, accuracy, traffic).
//
// Usage:
//
//	compare -workload stencil-default -a sms -b cbws+sms
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"cbws/internal/cli"
	"cbws/internal/debugsrv"
	"cbws/internal/harness"
	"cbws/internal/report"
	"cbws/internal/sim"
	"cbws/internal/stats"
	"cbws/internal/workload"
)

func main() {
	wl := flag.String("workload", "stencil-default", "workload name")
	a := flag.String("a", "sms", "first prefetcher")
	b := flag.String("b", "cbws+sms", "second prefetcher")
	n := flag.Uint64("n", 4_000_000, "instructions to simulate")
	warm := flag.Uint64("warmup", 1_000_000, "warmup instructions excluded from metrics")
	debugAddr := flag.String("debug-addr", "", "serve pprof/expvar diagnostics on this address (e.g. :6060)")
	flag.Parse()

	if flag.NArg() > 0 {
		flag.Usage()
		cli.Usagef("compare", "unexpected argument %q", flag.Arg(0))
	}
	if *warm >= *n {
		flag.Usage()
		cli.Usagef("compare", "-warmup %d must be smaller than -n %d", *warm, *n)
	}

	if *debugAddr != "" {
		addr, err := debugsrv.Serve(*debugAddr)
		if err != nil {
			cli.Errorf("compare", "%v", err)
		}
		fmt.Fprintf(os.Stderr, "compare: diagnostics on http://%s/debug/pprof/ and /debug/vars\n", addr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	spec, ok := workload.ByName(*wl)
	if !ok {
		cli.Errorf("compare", "unknown workload %q", *wl)
	}
	run := func(name string) stats.Metrics {
		f, ok := harness.FactoryByName(name)
		if !ok {
			cli.Errorf("compare", "unknown prefetcher %q", name)
		}
		cfg := sim.DefaultConfig()
		cfg.MaxInstructions = *n
		cfg.WarmupInstructions = *warm
		res, err := sim.RunContext(ctx, cfg, spec.Make(), f.New())
		if err != nil {
			cli.Errorf("compare", "%v", err)
		}
		return res.Metrics
	}
	ma := run(*a)
	mb := run(*b)

	t := &report.Table{
		Title:   fmt.Sprintf("%s: %s vs %s", spec.Name, *a, *b),
		Columns: []string{"metric", *a, *b, "delta"},
	}
	addF := func(name string, va, vb float64, prec int, higherBetter bool) {
		delta := "-"
		if va != 0 {
			change := (vb - va) / va * 100
			sign := ""
			if change > 0 {
				sign = "+"
			}
			marker := ""
			if (change > 1 && higherBetter) || (change < -1 && !higherBetter) {
				marker = " (better)"
			} else if (change < -1 && higherBetter) || (change > 1 && !higherBetter) {
				marker = " (worse)"
			}
			delta = fmt.Sprintf("%s%.1f%%%s", sign, change, marker)
		}
		t.AddRow(name, report.F(va, prec), report.F(vb, prec), delta)
	}
	addF("IPC", ma.IPC(), mb.IPC(), 3, true)
	addF("MPKI", ma.MPKI(), mb.MPKI(), 2, false)
	addF("timely %", 100*ma.TimelyFrac(), 100*mb.TimelyFrac(), 1, true)
	addF("shorter-wait %", 100*ma.ShorterWTFrac(), 100*mb.ShorterWTFrac(), 1, true)
	addF("missing %", 100*ma.MissingFrac(), 100*mb.MissingFrac(), 1, false)
	addF("wrong %", 100*ma.WrongFrac(), 100*mb.WrongFrac(), 1, false)
	addF("prefetches issued", float64(ma.PrefetchIssued), float64(mb.PrefetchIssued), 0, true)
	addF("accuracy %", 100*ma.Accuracy(), 100*mb.Accuracy(), 1, true)
	addF("read MB", float64(ma.BytesFromMem)/(1<<20), float64(mb.BytesFromMem)/(1<<20), 2, false)
	addF("writeback MB", float64(ma.WritebackBytes)/(1<<20), float64(mb.WritebackBytes)/(1<<20), 2, false)
	addF("mispredict %", 100*ma.MispredictRate(), 100*mb.MispredictRate(), 2, false)
	t.Render(os.Stdout)

	if ma.IPC() > 0 {
		fmt.Printf("speedup (%s over %s): %s\n", *b, *a, report.Speedup(mb.IPC()/ma.IPC()))
	}
}

package cache

import (
	"fmt"

	"cbws/internal/check"
	"cbws/internal/mem"
)

// HierarchyConfig describes the full memory system (Table II defaults via
// DefaultHierarchyConfig).
type HierarchyConfig struct {
	L1            Config
	L2            Config
	MemoryLatency uint64
	// PrefetchQueueDepth bounds the prefetch request queue between the
	// prefetcher and the L2. Zero models direct issue (candidates go
	// straight to the MSHR check, the default); a positive depth
	// models a hardware FIFO drained at PrefetchIssueRate requests per
	// demand access, with overflow dropped (and classified non-timely
	// if later demanded).
	PrefetchQueueDepth int
	// PrefetchIssueRate is the queue drain rate in requests per demand
	// access (default 2 when a queue is configured).
	PrefetchIssueRate int
	// MemoryChannels bounds concurrent memory transfers (0: unlimited,
	// the paper's flat-latency model). With channels configured, each
	// transfer occupies a channel for MemoryOccupancy cycles, so
	// prefetch traffic—including wrong prefetches—contends with demand
	// fills for bandwidth.
	MemoryChannels int
	// MemoryOccupancy is the per-transfer channel busy time in cycles
	// (default 16 when channels are configured: 64B over a 4B/cycle
	// channel).
	MemoryOccupancy uint64
}

// DefaultHierarchyConfig returns the Table II configuration: 32KB 4-way
// L1D at 2 cycles with 4 MSHRs; inclusive 2MB 8-way L2 at 30 cycles with
// 32 MSHRs; 300-cycle memory.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1:            Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 4, LatencyCycles: 2, MSHRs: 4},
		L2:            Config{Name: "L2", SizeBytes: 2 << 20, Ways: 8, LatencyCycles: 30, MSHRs: 32},
		MemoryLatency: 300,
	}
}

// Timeliness aggregates the five demand-classification counters of
// Figure 13. Timely, ShorterWaiting, NonTimely and Missing partition the
// non-plain-hit demand L2 accesses; Wrong counts prefetched lines that
// were never demanded and is reported beyond 100% in the paper's plot.
type Timeliness struct {
	DemandL2   uint64 // all demand accesses that reached the L2
	Timely     uint64 // demand hit on a completed, unused prefetch
	ShorterWT  uint64 // demand merged with an in-flight prefetch
	NonTimely  uint64 // demand miss on a line the prefetcher identified but never issued
	Missing    uint64 // demand miss never identified by the prefetcher
	PlainHit   uint64 // demand hit on a non-prefetched (or already-used) line
	MergedDem  uint64 // demand merged with an in-flight demand fill
	WrongFinal uint64 // filled in by Finish from the L2 prefetch-wrong count
}

// Hierarchy wires the two cache levels to the memory model, implements
// the prefetch-into-L2 path, and classifies every demand L2 access for
// the timeliness/accuracy analysis.
type Hierarchy struct {
	cfg HierarchyConfig
	L1  *Cache
	L2  *Cache

	// identified remembers lines the prefetcher targeted but the
	// hierarchy refused to issue (MSHR pressure), so a later demand
	// miss on them is classified non-timely rather than missing.
	identified     map[mem.LineAddr]struct{}
	identifiedFIFO []mem.LineAddr
	identifiedCap  int

	Timeliness     Timeliness
	BytesFromMem   uint64 // all bytes transferred from memory (demand + prefetch)
	DemandBytes    uint64 // bytes transferred from memory on demand misses
	WritebackBytes uint64 // dirty-eviction traffic back to memory

	// l1Evict is the prefetcher's eviction observer (SMS generation
	// tracking), invoked on every L1 eviction.
	l1Evict func(mem.LineAddr)

	// pfQueue is the bounded prefetch request queue (nil: direct issue).
	pfQueue []mem.LineAddr
	// PrefetchQueueDrops counts candidates lost to queue overflow.
	PrefetchQueueDrops uint64

	// channels holds the busy-until cycle of each memory channel when
	// bandwidth modelling is enabled.
	channels []uint64
	// MemoryStallCycles accumulates the total transfer start delay due
	// to channel contention.
	MemoryStallCycles uint64
}

// AccessInfo describes one demand access as seen by a prefetcher's
// training input and by the timing model.
type AccessInfo struct {
	PC      uint64
	Addr    mem.Addr
	Line    mem.LineAddr
	Write   bool
	HitL1   bool
	HitL2   bool // meaningful only when !HitL1; true also for in-flight merges
	PfHit   bool // first demand use of a prefetched line
	ReadyAt uint64
}

// NewHierarchy builds the hierarchy from cfg.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	l1, err := New(cfg.L1)
	if err != nil {
		return nil, err
	}
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, err
	}
	h := &Hierarchy{
		cfg:           cfg,
		L1:            l1,
		L2:            l2,
		identified:    make(map[mem.LineAddr]struct{}),
		identifiedCap: 4096,
	}
	if cfg.MemoryChannels > 0 {
		h.channels = make([]uint64, cfg.MemoryChannels)
	}
	// Inclusive L2: evicting an L2 line back-invalidates the L1 copy;
	// a dirty eviction writes the line back to memory.
	l2.OnEvict(func(l mem.LineAddr, dirty bool) {
		l1.Invalidate(l)
		if dirty {
			h.WritebackBytes += mem.LineSize
		}
	})
	// L1 dirty evictions write through to the L2 copy.
	l1.OnEvict(func(l mem.LineAddr, dirty bool) {
		if dirty {
			l2.MarkDirty(l)
		}
		if h.l1Evict != nil {
			h.l1Evict(l)
		}
	})
	return h, nil
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// OnL1Evict registers an observer for L1 evictions (the SMS
// generation-end trigger).
func (h *Hierarchy) OnL1Evict(fn func(mem.LineAddr)) { h.l1Evict = fn }

func (h *Hierarchy) rememberIdentified(l mem.LineAddr) {
	if _, ok := h.identified[l]; ok {
		return
	}
	if len(h.identifiedFIFO) >= h.identifiedCap {
		old := h.identifiedFIFO[0]
		h.identifiedFIFO = h.identifiedFIFO[1:]
		delete(h.identified, old)
	}
	h.identified[l] = struct{}{}
	h.identifiedFIFO = append(h.identifiedFIFO, l)
}

func (h *Hierarchy) wasIdentified(l mem.LineAddr) bool {
	if _, ok := h.identified[l]; ok {
		delete(h.identified, l)
		return true
	}
	return false
}

// memTransferStart allocates a memory channel for a transfer requested
// at cycle now and returns the cycle at which the transfer begins. With
// bandwidth modelling disabled it returns now.
func (h *Hierarchy) memTransferStart(now uint64) uint64 {
	if len(h.channels) == 0 {
		return now
	}
	occ := h.cfg.MemoryOccupancy
	if occ == 0 {
		occ = 16
	}
	best := 0
	for i := 1; i < len(h.channels); i++ {
		if h.channels[i] < h.channels[best] {
			best = i
		}
	}
	start := now
	if h.channels[best] > start {
		start = h.channels[best]
		h.MemoryStallCycles += start - now
	}
	h.channels[best] = start + occ
	return start
}

// Access performs a demand access (load or store) at cycle now and
// returns the completion cycle together with hit/miss information for
// prefetcher training.
func (h *Hierarchy) Access(pc uint64, addr mem.Addr, write bool, now uint64) AccessInfo {
	var info AccessInfo
	h.AccessInto(&info, pc, addr, write, now)
	return info
}

// AccessInto is Access with the result written through info instead of
// returned, saving the struct copy on the per-access hot path.
func (h *Hierarchy) AccessInto(info *AccessInfo, pc uint64, addr mem.Addr, write bool, now uint64) {
	l := mem.LineOf(addr)
	*info = AccessInfo{PC: pc, Addr: addr, Line: l, Write: write}

	// The L1 lookup is specialized inline rather than going through
	// Cache.Access: prefetches fill into the L2 only, so no L1 line is
	// ever in the prefetched-unused state and the hit and merge arms
	// need none of the prefetch-use accounting. Folding the write case
	// into the same scan also saves MarkDirty's second walk of the set.
	c1 := h.L1
	c1.Stats.Accesses++
	n1 := now
	if n1 < c1.lastTime {
		n1 = c1.lastTime // enforce monotonic time for MSHR accounting
	}
	c1.lastTime = n1
	base := int(uint64(l)&c1.setMask) * c1.ways
	if check.Enabled {
		// The inlined L1 scan bypasses Cache.Access, so it carries its
		// own checkpoint for the SoA coherence and MSHR invariants.
		c1.checkSet(base)
		c1.checkMSHR()
	}
	tags := c1.tags[base : base+c1.ways]
	for i := range tags {
		if tags[i] != uint64(l) {
			continue
		}
		w := &c1.lines[base+i]
		c1.lruTick++
		w.lru = c1.lruTick
		if write {
			w.dirty = true
		}
		if w.fillAt <= n1 {
			c1.Stats.Hits++
			info.HitL1 = true
			info.ReadyAt = n1 + c1.cfg.LatencyCycles
		} else {
			// Wait for the L1 fill already in flight; the matching L2
			// access was classified when the fill was allocated.
			c1.Stats.Misses++
			c1.Stats.MergedMiss++
			info.ReadyAt = w.fillAt
		}
		return
	}
	c1.Stats.Misses++

	// L1 miss: access the L2 after the L1 lookup latency.
	t2 := now + h.cfg.L1.LatencyCycles
	h.Timeliness.DemandL2++
	r2 := h.L2.Access(l, t2)
	var ready uint64
	switch {
	case r2.Hit:
		info.HitL2 = true
		ready = r2.ReadyAt
		if r2.WasPfHit {
			info.PfHit = true
			h.Timeliness.Timely++
		} else {
			h.Timeliness.PlainHit++
		}
	case r2.Merged:
		info.HitL2 = true
		ready = r2.ReadyAt
		if r2.MergedPf {
			info.PfHit = true
			h.Timeliness.ShorterWT++
		} else {
			h.Timeliness.MergedDem++
		}
	default:
		// L2 miss: fetch from memory (waiting for a channel when
		// bandwidth modelling is enabled).
		start := h.memTransferStart(t2)
		ready = h.L2.Fill(l, start, h.cfg.MemoryLatency, false)
		h.BytesFromMem += mem.LineSize
		h.DemandBytes += mem.LineSize
		if h.wasIdentified(l) {
			h.Timeliness.NonTimely++
		} else {
			h.Timeliness.Missing++
		}
	}

	// Fill the L1 with the line; the data is usable once both the L2
	// (or memory) delivery and the L1 fill complete.
	info.ReadyAt = h.L1.Fill(l, now, ready-now, false)
	if write {
		h.L1.MarkDirty(l)
	}
}

// Prefetch requests that line l be brought into the L2 at cycle now.
// With a configured prefetch queue the request is enqueued (dropping on
// overflow) and issued when the queue drains; otherwise it is issued
// directly. It returns true if a fill was allocated immediately.
func (h *Hierarchy) Prefetch(l mem.LineAddr, now uint64) bool {
	if h.cfg.PrefetchQueueDepth > 0 {
		if len(h.pfQueue) >= h.cfg.PrefetchQueueDepth {
			h.PrefetchQueueDrops++
			h.rememberIdentified(l)
			return false
		}
		h.pfQueue = append(h.pfQueue, l)
		return false
	}
	return h.issuePrefetch(l, now)
}

func (h *Hierarchy) issuePrefetch(l mem.LineAddr, now uint64) bool {
	issued, reason := h.L2.TryPrefetch(l, h.memTransferStart(now), h.cfg.MemoryLatency)
	if issued {
		h.BytesFromMem += mem.LineSize
		return true
	}
	if reason == RefusedNoMSHR {
		h.rememberIdentified(l)
	}
	return false
}

// DrainPrefetchQueue issues up to the configured rate of queued
// prefetches at cycle now. The simulator calls it once per demand
// access, modelling the queue's issue bandwidth. The empty check lives
// in this inlinable wrapper so the common no-queue case costs one
// length test at the call site.
func (h *Hierarchy) DrainPrefetchQueue(now uint64) {
	if len(h.pfQueue) == 0 {
		return
	}
	h.drainPrefetchQueue(now)
}

func (h *Hierarchy) drainPrefetchQueue(now uint64) {
	rate := h.cfg.PrefetchIssueRate
	if rate <= 0 {
		rate = 2
	}
	for i := 0; i < rate && len(h.pfQueue) > 0; i++ {
		l := h.pfQueue[0]
		h.pfQueue = h.pfQueue[1:]
		h.issuePrefetch(l, now)
	}
}

// Finish settles end-of-run accounting: remaining unused prefetched
// lines are charged as wrong.
func (h *Hierarchy) Finish() {
	h.L1.DrainWrong()
	h.L2.DrainWrong()
	h.Timeliness.WrongFinal = h.L2.Stats.PrefetchWrong
}

// DemandL2Misses returns the demand L2 accesses not covered by
// prefetching — the numerator of the paper's MPKI metric (Figure 12).
// Accesses that merge with an in-flight prefetch reduced their waiting
// time and are accounted in the shorter-waiting-time class of
// Figure 13 rather than as misses.
func (h *Hierarchy) DemandL2Misses() uint64 {
	t := &h.Timeliness
	return t.NonTimely + t.Missing + t.MergedDem
}

// String summarizes the hierarchy state for debugging.
func (h *Hierarchy) String() string {
	return fmt.Sprintf("hierarchy{L1 %d/%d hits, L2 %d/%d hits, %d bytes from mem}",
		h.L1.Stats.Hits, h.L1.Stats.Accesses, h.L2.Stats.Hits, h.L2.Stats.Accesses, h.BytesFromMem)
}

GO ?= go

# Pinned third-party tool versions. Install reproducibly with
# `make tools`; never ad-hoc @latest. The custom cbwslint suite needs
# no install: it lives in this module (cmd/cbwslint) and is stdlib-only.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: all build test vet fmt-check race bench obs-smoke service-smoke check \
	fuzz-smoke golden bench-gate corpus-smoke cluster-smoke streaming-smoke \
	lint lint-custom lint-v2 compat-manifest staticcheck govulncheck tools

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails if any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The harness has real concurrency (parallel matrix fill, single-flight
# memoization), the sim probes run under it, and the service stacks a
# worker pool and HTTP handlers on top, so all three get a
# race-detector pass.
race:
	$(GO) test -race ./internal/sim/... ./internal/harness/... ./internal/service/... ./internal/cluster/...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# End-to-end observability smoke: simulate 200k instructions with a run
# record attached, then re-validate the record against the schema.
obs-smoke:
	$(GO) build -o /tmp/cbwsim-smoke ./cmd/cbwsim
	/tmp/cbwsim-smoke -workload stencil-default -prefetcher cbws+sms \
		-n 200000 -warmup 50000 -obs /tmp/cbwsim-smoke-run.json -sample-interval 20000
	/tmp/cbwsim-smoke -validate-record /tmp/cbwsim-smoke-run.json

# End-to-end service smoke: start cbwsd on an ephemeral port, sweep a
# small matrix with cbwsctl against golden/seed.json, replay it as 100%
# cache hits, and SIGTERM-drain cleanly.
service-smoke:
	./scripts/service_smoke.sh

# End-to-end cluster smoke: 3 peered cbwsd workers, a sharded sweep
# byte-identical to golden/seed.json, peer-fetch instead of
# re-simulation, a 100% cache-hit cbwsload hot replay, SIGKILL
# failover, and clean drains.
cluster-smoke:
	./scripts/cluster_smoke.sh

# End-to-end streaming smoke: one cbwsd, two tenants. Over-quota opens
# must be rejected 429 + Retry-After without touching the in-quota
# tenant, a streamed full-budget trace must land byte-identical under
# the closed-job content address, and a SIGTERM drain must finalize a
# complete open stream and cancel a half-fed one.
streaming-smoke:
	./scripts/streaming_smoke.sh

# End-to-end corpus smoke: pack two kernels into CBWC corpora (twice,
# requiring identical bytes), convert a CBWT capture and require the
# same bytes again, then replay the golden matrix from the corpus on
# both the mmap and ReaderAt paths against golden/seed.json.
corpus-smoke:
	./scripts/corpus_smoke.sh

# Each differential fuzz target gets a short coverage-guided run on top
# of its seed corpus (CI uses 30s per target; override with FUZZTIME).
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test ./internal/check/ -run '^$$' -fuzz '^FuzzCacheVsRef$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/check/ -run '^$$' -fuzz '^FuzzCBWSVsRef$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace/ -run '^$$' -fuzz '^FuzzTraceRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace/ -run '^$$' -fuzz '^FuzzStreamChunkFraming$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace/corpus/ -run '^$$' -fuzz '^FuzzCorpusRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace/corpus/ -run '^$$' -fuzz '^FuzzCorpusParse$$' -fuzztime $(FUZZTIME)

# Golden determinism gate: rebuild the full-matrix manifest with serial
# and parallel fills and require both to match golden/seed.json byte
# for byte. To re-baseline after an intentional behaviour change:
#   go run ./cmd/figures -n 400000 -warmup 100000 -golden golden/seed.json
golden:
	$(GO) build -o /tmp/cbws-figures ./cmd/figures
	/tmp/cbws-figures -n 400000 -warmup 100000 -par 1 -golden /tmp/cbws-golden-serial.json
	/tmp/cbws-figures -n 400000 -warmup 100000 -par 0 -golden /tmp/cbws-golden-parallel.json
	cmp /tmp/cbws-golden-serial.json golden/seed.json
	cmp /tmp/cbws-golden-parallel.json golden/seed.json

# Install the pinned third-party analysis tools into GOBIN (network
# required once; the versions above keep it reproducible).
tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

staticcheck:
	staticcheck ./...

govulncheck:
	govulncheck ./...

# Custom analyzer suite (internal/lint), run on both build-tag variants
# so the cbwscheck-only files are covered too. Exit status: 0 clean,
# 1 findings, 2 usage error.
lint-custom:
	$(GO) run ./cmd/cbwslint ./...
	$(GO) run ./cmd/cbwslint -tags cbwscheck ./...

# Just the v2 analyzers (guardedby, golifecycle, wirecompat,
# atomicdiscipline) — faster feedback while annotating lock contracts
# or changing the wire package.
lint-v2:
	$(GO) run ./cmd/cbwslint -analyzers guardedby,golifecycle,wirecompat,atomicdiscipline ./...
	$(GO) run ./cmd/cbwslint -tags cbwscheck -analyzers guardedby,golifecycle,wirecompat,atomicdiscipline ./...

# Regenerate the frozen api/v1 wire-contract manifest. CI requires the
# committed file to match (`git diff --exit-code api/v1/compat.json`);
# breaking rewrites refuse to run without a CompatVersion note:
#   go run ./cmd/cbwslint -write-compat -compat-bump "<note>" ./api/v1
compat-manifest:
	$(GO) run ./cmd/cbwslint -write-compat ./api/v1

# Aggregate lint pass: formatting, vet, staticcheck (skipped with a
# notice when the pinned binary is not installed; run `make tools`),
# and the custom suite.
lint: fmt-check vet lint-custom
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; run 'make tools' (skipping)"; \
	fi

# Benchmark regression gate: the pipeline and CBWS hot-path benchmarks
# must stay within the baseline's time ratio with exact allocs/op.
# To re-baseline: make bench-gate BENCHGATE_FLAGS='-write BENCH_baseline.json'
BENCHGATE_FLAGS ?= -baseline BENCH_baseline.json
bench-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkPipelineEventsPerSec$$|BenchmarkCBWSOnAccess$$|BenchmarkCorpusReplayEventsPerSec$$|BenchmarkPythiaOnAccess$$|BenchmarkGazeOnAccess$$' \
		-count 3 . | tee /tmp/cbws-bench.out
	$(GO) run ./cmd/benchgate $(BENCHGATE_FLAGS) -input /tmp/cbws-bench.out

check: build vet fmt-check test race obs-smoke

package core

import (
	"sort"
	"strconv"

	"cbws/internal/mem"
	"cbws/internal/trace"
)

// Census measures the distribution of exact (unhashed) 1-step CBWS
// differential vectors across a workload, the analysis behind Figure 5:
// a small fraction of distinct vectors differentiates the vast majority
// of loop iterations.
//
// Census implements trace.Sink so it can be attached to a generator
// directly, without timing simulation.
type Census struct {
	maxVec int

	inBlock  bool
	curBlock int
	cur      Vector
	prev     map[int]Vector // per static block: previous instance's CBWS
	diffBuf  Diff           // reusable differential scratch
	keyBuf   []byte         // reusable canonical-key scratch

	// counts maps a canonical differential to its occurrence counter.
	// The counter is boxed so the steady-state increment needs no
	// string allocation: the map probe with string(keyBuf) is
	// allocation-free, and only a first-seen insert materializes the
	// key.
	counts     map[string]*uint64
	iterations uint64 // block instances with a defined differential
}

// NewCensus returns a census that traces up to maxVec lines per block
// (0 means the paper's 16).
func NewCensus(maxVec int) *Census {
	if maxVec == 0 {
		maxVec = 16
	}
	return &Census{
		maxVec:   maxVec,
		curBlock: -1,
		prev:     make(map[int]Vector),
		counts:   make(map[string]*uint64),
	}
}

// appendDiffKey appends d's canonical form ("s0,s1,...,") to buf.
func appendDiffKey(buf []byte, d Diff) []byte {
	for _, s := range d {
		buf = strconv.AppendInt(buf, s, 10)
		buf = append(buf, ',')
	}
	return buf
}

// Consume processes one trace event.
func (c *Census) Consume(e trace.Event) {
	switch e.Kind {
	case trace.BlockBegin:
		c.inBlock = true
		c.curBlock = e.Block
		c.cur = c.cur[:0]
	case trace.BlockEnd:
		if !c.inBlock {
			return
		}
		c.inBlock = false
		if prev, ok := c.prev[c.curBlock]; ok && len(prev) > 0 && len(c.cur) > 0 {
			c.diffBuf = DifferentialInto(c.diffBuf, prev, c.cur)
			c.keyBuf = appendDiffKey(c.keyBuf[:0], c.diffBuf)
			if n, ok := c.counts[string(c.keyBuf)]; ok {
				*n++
			} else {
				one := uint64(1)
				c.counts[string(c.keyBuf)] = &one
			}
			c.iterations++
		}
		c.prev[c.curBlock] = append(c.prev[c.curBlock][:0], c.cur...)
	case trace.Load, trace.Store:
		if !c.inBlock || len(c.cur) >= c.maxVec {
			return
		}
		l := mem.LineOf(e.Addr)
		if !c.cur.Contains(l) {
			c.cur = append(c.cur, l)
		}
	}
}

// ConsumeBatch implements trace.BatchSink, so batch generators feed the
// census without the per-event interface call of the legacy Sink path.
func (c *Census) ConsumeBatch(batch []trace.Event) bool {
	for i := range batch {
		c.Consume(batch[i])
	}
	return true
}

// DistinctVectors returns the number of distinct differential vectors
// observed.
func (c *Census) DistinctVectors() int { return len(c.counts) }

// Iterations returns the number of block instances that produced a
// differential.
func (c *Census) Iterations() uint64 { return c.iterations }

// CoveragePoint is one point of the Figure 5 curve.
type CoveragePoint struct {
	VectorFrac    float64 // fraction of distinct vectors considered (x axis)
	IterationFrac float64 // fraction of iterations they cover (y axis)
}

// Coverage returns the cumulative coverage curve: vectors sorted by
// descending frequency, with the cumulative fraction of iterations each
// prefix explains. The curve has one point per distinct vector.
func (c *Census) Coverage() []CoveragePoint {
	if c.iterations == 0 || len(c.counts) == 0 {
		return nil
	}
	freqs := make([]uint64, 0, len(c.counts))
	for _, n := range c.counts {
		freqs = append(freqs, *n)
	}
	sort.Slice(freqs, func(i, j int) bool { return freqs[i] > freqs[j] })
	out := make([]CoveragePoint, len(freqs))
	var cum uint64
	for i, n := range freqs {
		cum += n
		out[i] = CoveragePoint{
			VectorFrac:    float64(i+1) / float64(len(freqs)),
			IterationFrac: float64(cum) / float64(c.iterations),
		}
	}
	return out
}

// CoverageAt returns the fraction of iterations covered by the given
// fraction of the most frequent distinct vectors (e.g. CoverageAt(0.05)
// answers "how many iterations do 5% of the vectors explain?"). The
// vector budget is rounded up, so any positive fraction includes at
// least the most frequent vector.
func (c *Census) CoverageAt(vectorFrac float64) float64 {
	curve := c.Coverage()
	if len(curve) == 0 || vectorFrac <= 0 {
		return 0
	}
	k := int(vectorFrac * float64(len(curve)))
	if float64(k) < vectorFrac*float64(len(curve)) || k == 0 {
		k++ // ceil
	}
	if k > len(curve) {
		k = len(curve)
	}
	return curve[k-1].IterationFrac
}

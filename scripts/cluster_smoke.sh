#!/usr/bin/env bash
# End-to-end smoke of a sharded cbwsd cluster with the federated result
# cache, driven by the ring-aware cbwsctl and the cbwsload harness:
#
#   1. boot 3 peered cbwsd workers on distinct ports (every worker gets
#      the same full -peers list and filters itself out);
#   2. sweep the golden sub-matrix through the fleet and require every
#      served cell hash to match golden/seed.json — a sharded cluster
#      must be byte-identical to the single-daemon seed;
#   3. replay the sweep with -require-cached: ring routing is stable,
#      so every cell is a cache hit on its owner;
#   4. sweep against ONE worker only: cells owned by its siblings must
#      arrive via peer-fetch (peer_fetch_hits moves) without a single
#      new simulation anywhere in the fleet;
#   5. replay a hot-key cbwsload mix against the warm fleet: the report
#      must show a 100% cache-hit ratio and the fleet-wide
#      jobs_simulated counter must not move;
#   6. SIGKILL one worker and repeat the golden sweep with the dead
#      worker still listed: the client must fail over and finish;
#   7. SIGTERM the survivors and require clean drains.
#
# Run from the repository root: ./scripts/cluster_smoke.sh
set -euo pipefail

WORKLOADS="stencil-default,fft-simlarge"
PREFETCHERS="none,cbws"
CELLS=4
NWORKERS=3

tmp="$(mktemp -d)"
declare -a pids=() urls=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "cluster-smoke: building cbwsd, cbwsctl, cbwsload"
go build -o "$tmp/cbwsd" ./cmd/cbwsd
go build -o "$tmp/cbwsctl" ./cmd/cbwsctl
go build -o "$tmp/cbwsload" ./cmd/cbwsload

# Peer lists must be complete before any worker starts, so ports are
# picked up front (probing for free ones) instead of using -addr :0.
pick_ports() {
    local picked=()
    while [ "${#picked[@]}" -lt "$NWORKERS" ]; do
        local p=$(( (RANDOM % 20000) + 20000 ))
        local dup=0
        for q in "${picked[@]:-}"; do [ "$q" = "$p" ] && dup=1; done
        [ "$dup" = 1 ] && continue
        if ! (exec 3<>"/dev/tcp/127.0.0.1/$p") 2>/dev/null; then
            picked+=("$p")
        else
            exec 3>&- 3<&- || true
        fi
    done
    echo "${picked[@]}"
}
read -r -a ports <<<"$(pick_ports)"

peer_list=""
for p in "${ports[@]}"; do
    peer_list="${peer_list:+$peer_list,}http://127.0.0.1:$p"
done

for i in $(seq 0 $((NWORKERS - 1))); do
    port="${ports[$i]}"
    mkdir -p "$tmp/cache$i"
    "$tmp/cbwsd" -addr "127.0.0.1:$port" -addr-file "$tmp/addr$i" \
        -cache-dir "$tmp/cache$i" -peers "$peer_list" \
        -n 400000 -warmup 100000 2>"$tmp/cbwsd$i.log" &
    pids[$i]=$!
    urls[$i]="http://127.0.0.1:$port"
done

for i in $(seq 0 $((NWORKERS - 1))); do
    for _ in $(seq 1 100); do
        [ -s "$tmp/addr$i" ] && break
        if ! kill -0 "${pids[$i]}" 2>/dev/null; then
            echo "cluster-smoke: worker $i died on startup:" >&2
            cat "$tmp/cbwsd$i.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    [ -s "$tmp/addr$i" ] || { echo "cluster-smoke: worker $i never came up" >&2; exit 1; }
    grep -q "peering with $((NWORKERS - 1)) sibling" "$tmp/cbwsd$i.log" || {
        echo "cluster-smoke: worker $i did not filter itself from the peer list:" >&2
        cat "$tmp/cbwsd$i.log" >&2
        exit 1
    }
done
fleet="$(IFS=,; echo "${urls[*]}")"
echo "cluster-smoke: $NWORKERS workers up: $fleet"

# expvar_counter URL NAME prints one worker's cbwsd.NAME value.
expvar_counter() {
    curl -sf "$1/debug/vars" | grep -o "\"$2\":[0-9]*" | head -1 | cut -d: -f2
}
# fleet_counter NAME sums a counter across all live workers.
fleet_counter() {
    local sum=0 v
    for u in "${urls[@]}"; do
        v="$(expvar_counter "$u" "$1" || echo 0)"
        sum=$((sum + ${v:-0}))
    done
    echo "$sum"
}

echo "cluster-smoke: sharded sweep $WORKLOADS x $PREFETCHERS against golden/seed.json"
"$tmp/cbwsctl" -server "$fleet" sweep \
    -workloads "$WORKLOADS" -prefetchers "$PREFETCHERS" -golden golden/seed.json

echo "cluster-smoke: replay must be 100% cache hits (stable ring routing)"
"$tmp/cbwsctl" -server "$fleet" sweep \
    -workloads "$WORKLOADS" -prefetchers "$PREFETCHERS" -golden golden/seed.json \
    -require-cached

echo "cluster-smoke: single-worker sweep must peer-fetch, not simulate"
phits_before="$(expvar_counter "${urls[0]}" peer_fetch_hits)"
sim_before="$(fleet_counter jobs_simulated)"
"$tmp/cbwsctl" -server "${urls[0]}" sweep \
    -workloads "$WORKLOADS" -prefetchers "$PREFETCHERS" -golden golden/seed.json
phits_after="$(expvar_counter "${urls[0]}" peer_fetch_hits)"
sim_after="$(fleet_counter jobs_simulated)"
if [ "$phits_after" -le "$phits_before" ]; then
    echo "cluster-smoke: peer_fetch_hits never moved ($phits_before -> $phits_after)" >&2
    exit 1
fi
if [ "$sim_after" -ne "$sim_before" ]; then
    echo "cluster-smoke: single-worker sweep simulated $((sim_after - sim_before)) jobs, want 0 (federated cache)" >&2
    exit 1
fi
echo "cluster-smoke: worker 0 peer-fetched $((phits_after - phits_before)) cells, fleet simulated 0"

echo "cluster-smoke: hot-key cbwsload replay against the warm fleet"
sim_before="$(fleet_counter jobs_simulated)"
"$tmp/cbwsload" -servers "$fleet" \
    -workloads "$WORKLOADS" -prefetchers "$PREFETCHERS" \
    -requests 60 -concurrency 6 -hot-frac 1 -hot-set "$CELLS" -seed 7 \
    -report "$tmp/load.json" 2>"$tmp/cbwsload.log"
grep -q '"cache_hit_ratio": 1' "$tmp/load.json" || {
    echo "cluster-smoke: hot replay was not 100% cache hits:" >&2
    cat "$tmp/load.json" >&2
    exit 1
}
grep -q '"retries_429"' "$tmp/load.json" || {
    echo "cluster-smoke: load report is missing retry counts" >&2
    exit 1
}
sim_after="$(fleet_counter jobs_simulated)"
if [ "$sim_after" -ne "$sim_before" ]; then
    echo "cluster-smoke: hot replay simulated $((sim_after - sim_before)) jobs, want 0" >&2
    exit 1
fi
echo "cluster-smoke: 60 hot submissions, 0 simulations, ratio 1.0"

echo "cluster-smoke: SIGKILL worker 1, sweep must fail over and stay golden"
kill -9 "${pids[1]}"
wait "${pids[1]}" 2>/dev/null || true
pids[1]=""
urls=("${urls[0]}" "${urls[2]}")
"$tmp/cbwsctl" -server "$fleet" sweep \
    -workloads "$WORKLOADS" -prefetchers "$PREFETCHERS" -golden golden/seed.json \
    2>"$tmp/failover.log" || {
    echo "cluster-smoke: sweep with a dead worker failed:" >&2
    cat "$tmp/failover.log" >&2
    exit 1
}

echo "cluster-smoke: SIGTERM survivors, expecting clean drains"
for i in 0 2; do
    kill -TERM "${pids[$i]}"
    status=0
    wait "${pids[$i]}" || status=$?
    pids[$i]=""
    if [ "$status" -ne 0 ]; then
        echo "cluster-smoke: worker $i exited $status after SIGTERM, want 0:" >&2
        cat "$tmp/cbwsd$i.log" >&2
        exit 1
    fi
    [ -f "$tmp/cache$i/index.json" ] || {
        echo "cluster-smoke: worker $i drain did not persist its cache index" >&2
        exit 1
    }
done
echo "cluster-smoke: PASS (sharded sweep golden, federated cache, failover, clean drains)"

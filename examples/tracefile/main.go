// Tracefile demonstrates the binary trace format: capture an annotated
// workload trace to disk, summarize it, and replay it through the
// simulator — the decoupled trace-driven methodology of trace-based
// prefetcher studies.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cbws"
	"cbws/internal/trace"
)

func main() {
	wl, ok := cbws.WorkloadByName("radix-simlarge")
	if !ok {
		log.Fatal("radix workload missing")
	}

	path := filepath.Join(os.TempDir(), "radix.cbwt")
	defer os.Remove(path)

	// 1. Capture 300K instructions into a trace file.
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	w, err := trace.NewWriter(f, wl.Name)
	if err != nil {
		log.Fatal(err)
	}
	trace.Limit{Gen: wl.Make(), Max: 300_000}.Generate(w)
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("captured %s (%d bytes on disk)\n\n", path, st.Size())

	// 2. Summarize the trace.
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	r, err := trace.NewReader(rf)
	if err != nil {
		log.Fatal(err)
	}
	trace.Analyze(r, 0).Render(os.Stdout)
	rf.Close()

	// 3. Replay the trace file through the simulated system.
	rf, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	r, err = trace.NewReader(rf)
	if err != nil {
		log.Fatal(err)
	}
	cfg := cbws.DefaultConfig()
	res, err := cbws.Run(cfg, r, cbws.NewCBWSPlusSMS())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplay under cbws+sms: IPC=%.3f MPKI=%.2f timely=%.1f%%\n",
		res.Metrics.IPC(), res.Metrics.MPKI(), 100*res.Metrics.TimelyFrac())
}

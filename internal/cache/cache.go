// Package cache implements the simulated memory hierarchy: set-associative
// caches with LRU replacement and MSHR-limited miss handling, composed
// into the two-level hierarchy of Table II (32KB 4-way L1D, inclusive 2MB
// 8-way L2, 300-cycle memory). Prefetches fill into the L2, as in the
// paper.
//
// The model is functional-with-latency: each access is resolved
// synchronously into a completion cycle. Lines are installed at miss time
// but carry a fillAt stamp; accesses that arrive before fillAt merge with
// the outstanding fill, which models MSHR hit-under-miss and late
// ("shorter-waiting-time") prefetches. The timing model guarantees that
// access times are monotonically non-decreasing, which the MSHR occupancy
// accounting relies on.
package cache

import (
	"fmt"

	"cbws/internal/check"
	"cbws/internal/mem"
)

// Config describes one cache level.
type Config struct {
	Name          string
	SizeBytes     int
	Ways          int
	LatencyCycles uint64
	MSHRs         int
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (mem.LineSize * c.Ways) }

// Validate checks that the geometry is a realizable power-of-two design.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %s: size and ways must be positive", c.Name)
	}
	if c.SizeBytes%(mem.LineSize*c.Ways) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by ways*linesize", c.Name, c.SizeBytes)
	}
	if !mem.IsPow2(uint64(c.Sets())) {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, c.Sets())
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("cache %s: need at least one MSHR", c.Name)
	}
	return nil
}

// line is one cache way.
type line struct {
	tag      mem.LineAddr
	valid    bool
	prefetch bool   // brought in by a prefetch ...
	used     bool   // ... and demanded at least once since
	dirty    bool   // written since fill (write-back policy)
	fillAt   uint64 // cycle at which the data arrives
	lru      uint64 // last-touch stamp
}

// Stats aggregates per-level counters.
type Stats struct {
	Accesses   uint64 // demand lookups
	Hits       uint64 // demand hits on resident, filled lines
	Misses     uint64 // demand misses (including merges with in-flight fills)
	MergedMiss uint64 // subset of Misses that merged with an in-flight fill

	PrefetchIssued    uint64 // prefetch fills allocated
	PrefetchRedundant uint64 // dropped: line already present or in flight
	PrefetchDropped   uint64 // dropped: no MSHR available
	PrefetchUseful    uint64 // prefetched lines demanded after fill (timely)
	PrefetchLate      uint64 // demanded while the prefetch was in flight
	PrefetchWrong     uint64 // prefetched lines evicted or left unused

	Writebacks uint64 // dirty lines evicted (write-back traffic)
}

// invalidTag marks an empty way in the compact tag array. It can never
// collide with a real tag: line addresses are byte addresses shifted
// right by the line-size bits, so the top bits are always zero.
const invalidTag = ^uint64(0)

// Cache is one set-associative level. Way metadata is split
// structure-of-arrays style: tags holds just the tag of every way
// (invalidTag when empty) so the find-by-tag scan that dominates the
// simulator's profile touches one or two hardware cache lines per set,
// while the colder per-way state stays in lines. Invariant:
// tags[i] == uint64(lines[i].tag) iff lines[i].valid, else invalidTag.
type Cache struct {
	cfg      Config
	lines    []line   // ways, flat: set s occupies [s*ways, (s+1)*ways)
	tags     []uint64 // compact tag per way, same indexing
	ways     int
	setMask  uint64
	lruTick  uint64
	mshr     []uint64 // fillAt cycles of outstanding fills
	evictCB  func(l mem.LineAddr, dirty bool)
	Stats    Stats
	lastTime uint64
}

// New builds a cache from cfg; cfg must validate.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tags := make([]uint64, cfg.Sets()*cfg.Ways)
	for i := range tags {
		tags[i] = invalidTag
	}
	return &Cache{
		cfg:     cfg,
		lines:   make([]line, cfg.Sets()*cfg.Ways),
		tags:    tags,
		ways:    cfg.Ways,
		setMask: uint64(cfg.Sets() - 1),
		mshr:    make([]uint64, 0, cfg.MSHRs),
	}, nil
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// OnEvict registers a callback invoked with the line address and dirty
// state of every evicted line; the hierarchy uses it for inclusive
// back-invalidation and write-back propagation.
func (c *Cache) OnEvict(fn func(l mem.LineAddr, dirty bool)) { c.evictCB = fn }

// MarkDirty flags line l as written, if resident. Dirty lines charge a
// write-back on eviction.
func (c *Cache) MarkDirty(l mem.LineAddr) {
	if i := c.findWay(l); i >= 0 {
		c.lines[i].dirty = true
	}
}

// findWay returns the flat way index holding l, or -1. A tag match
// implies validity: empty ways hold invalidTag.
//
//cbws:hotpath
func (c *Cache) findWay(l mem.LineAddr) int {
	base := int(uint64(l)&c.setMask) * c.ways
	tags := c.tags[base : base+c.ways]
	for i := range tags {
		if tags[i] == uint64(l) {
			return base + i
		}
	}
	return -1
}

// Probe reports whether l is resident (possibly still in flight) without
// updating replacement state.
//
//cbws:hotpath
func (c *Cache) Probe(l mem.LineAddr) (resident bool, fillAt uint64, isPrefetchUnused bool) {
	if i := c.findWay(l); i >= 0 {
		w := &c.lines[i]
		return true, w.fillAt, w.prefetch && !w.used
	}
	return false, 0, false
}

// Contains reports whether l is resident and filled by cycle now.
func (c *Cache) Contains(l mem.LineAddr, now uint64) bool {
	resident, fillAt, _ := c.Probe(l)
	return resident && fillAt <= now
}

// mshrFree reaps completed entries and reports whether an MSHR is
// available at cycle now; if not, it returns the earliest cycle at which
// one frees.
//
// Reaping must stay eager (every call), not deferred until the list is
// full: call times are not monotonic — a demand fill is allocated at
// now + L1 latency while the same access's prefetch issue runs at now —
// so an entry discarded at a later timestamp may still be "live" at an
// earlier one, and deferring the reap would change availability
// decisions.
//
//cbws:hotpath
func (c *Cache) mshrFree(now uint64) (bool, uint64) {
	out := c.mshr[:0]
	earliest := ^uint64(0)
	for _, t := range c.mshr {
		if t > now {
			out = append(out, t)
			if t < earliest {
				earliest = t
			}
		}
	}
	c.mshr = out
	if len(c.mshr) < c.cfg.MSHRs {
		return true, now
	}
	return false, earliest
}

// MSHROccupancy returns the number of fills still outstanding at cycle
// now. It is a read-only observability accessor: unlike mshrFree it
// never reaps, so sampling cannot perturb allocation decisions.
func (c *Cache) MSHROccupancy(now uint64) int {
	n := 0
	for _, t := range c.mshr {
		if t > now {
			n++
		}
	}
	return n
}

// victim selects the replacement way in l's set: an invalid way if any,
// otherwise the LRU way. Ways with outstanding fills are skipped when
// possible (they are pinned by their MSHR). Returns a flat way index.
//
//cbws:hotpath
func (c *Cache) victim(l mem.LineAddr, now uint64) int {
	base := int(uint64(l)&c.setMask) * c.ways
	lru := -1
	for i := base; i < base+c.ways; i++ {
		w := &c.lines[i]
		if !w.valid {
			return i
		}
		if w.fillAt > now {
			continue // pinned: fill outstanding
		}
		if lru < 0 || w.lru < c.lines[lru].lru {
			lru = i
		}
	}
	if lru < 0 {
		// Every way has an outstanding fill; fall back to plain LRU.
		lru = base
		for i := base; i < base+c.ways; i++ {
			if c.lines[i].lru < c.lines[lru].lru {
				lru = i
			}
		}
	}
	return lru
}

// evict notifies about, and accounts for, the eviction of way i.
//
//cbws:hotpath
func (c *Cache) evict(i int) {
	w := &c.lines[i]
	if !w.valid {
		return
	}
	if w.prefetch && !w.used {
		c.Stats.PrefetchWrong++
	}
	if w.dirty {
		c.Stats.Writebacks++
	}
	if c.evictCB != nil {
		c.evictCB(w.tag, w.dirty)
	}
	w.valid = false
	c.tags[i] = invalidTag
}

// Invalidate removes l if resident (back-invalidation). The eviction
// callback is invoked.
func (c *Cache) Invalidate(l mem.LineAddr) {
	if i := c.findWay(l); i >= 0 {
		c.evict(i)
	}
}

// touch updates LRU state.
//
//cbws:hotpath
func (c *Cache) touch(w *line) {
	c.lruTick++
	w.lru = c.lruTick
}

// checkSet verifies the SoA coherence invariant for the set holding
// flat way index base: tags[i] mirrors lines[i].tag exactly when the
// way is valid and holds invalidTag otherwise. Called only under
// check.Enabled.
func (c *Cache) checkSet(base int) {
	for i := base; i < base+c.ways; i++ {
		w := &c.lines[i]
		if w.valid {
			check.Assertf(c.tags[i] == uint64(w.tag),
				"cache %s way %d: tag array %#x != line tag %#x",
				c.cfg.Name, i, c.tags[i], uint64(w.tag))
		} else {
			check.Assertf(c.tags[i] == invalidTag,
				"cache %s way %d: invalid way holds tag %#x", c.cfg.Name, i, c.tags[i])
		}
	}
}

// checkMSHR verifies the MSHR occupancy bound. Called only under
// check.Enabled.
func (c *Cache) checkMSHR() {
	check.Assertf(len(c.mshr) <= c.cfg.MSHRs,
		"cache %s: %d outstanding fills exceed %d MSHRs",
		c.cfg.Name, len(c.mshr), c.cfg.MSHRs)
}

// Check runs every structural invariant over the whole cache: SoA
// coherence of every set, the MSHR bound, and no duplicate resident
// tags within a set. Tests and fuzz targets call it at sequence
// boundaries; unlike the embedded checkpoints it does not require
// check.Enabled.
func (c *Cache) Check() error {
	if len(c.mshr) > c.cfg.MSHRs {
		return fmt.Errorf("cache %s: %d outstanding fills exceed %d MSHRs",
			c.cfg.Name, len(c.mshr), c.cfg.MSHRs)
	}
	for s := 0; s < c.cfg.Sets(); s++ {
		base := s * c.ways
		seen := make(map[uint64]bool, c.ways)
		for i := base; i < base+c.ways; i++ {
			w := &c.lines[i]
			if w.valid {
				if c.tags[i] != uint64(w.tag) {
					return fmt.Errorf("cache %s way %d: tag array %#x != line tag %#x",
						c.cfg.Name, i, c.tags[i], uint64(w.tag))
				}
				if seen[c.tags[i]] {
					return fmt.Errorf("cache %s set %d: duplicate resident tag %#x",
						c.cfg.Name, s, c.tags[i])
				}
				seen[c.tags[i]] = true
			} else if c.tags[i] != invalidTag {
				return fmt.Errorf("cache %s way %d: invalid way holds tag %#x",
					c.cfg.Name, i, c.tags[i])
			}
		}
	}
	return nil
}

// AccessResult describes the outcome of one demand access at a level.
type AccessResult struct {
	Hit       bool   // resident and filled
	Merged    bool   // missed but merged with an outstanding fill
	MergedPf  bool   // the outstanding fill was a prefetch
	ReadyAt   uint64 // cycle at which the data is available at this level
	WasPfHit  bool   // hit on a prefetched line's first demand use
	FilledNew bool   // a new fill was allocated (caller provides fill latency)
}

// Access performs a demand lookup of line l at cycle now. If the line
// misses and does not merge, the caller must complete the fill by calling
// Fill with the backing-store completion time; Access returns with
// FilledNew=true and ReadyAt=0 in that case.
//
//cbws:hotpath
func (c *Cache) Access(l mem.LineAddr, now uint64) AccessResult {
	c.Stats.Accesses++
	if now < c.lastTime {
		now = c.lastTime // enforce monotonic time for MSHR accounting
	}
	c.lastTime = now
	if check.Enabled {
		c.checkSet(int(uint64(l)&c.setMask) * c.ways)
		c.checkMSHR()
	}
	if i := c.findWay(l); i >= 0 {
		w := &c.lines[i]
		c.touch(w)
		if w.fillAt <= now {
			c.Stats.Hits++
			res := AccessResult{Hit: true, ReadyAt: now + c.cfg.LatencyCycles}
			if w.prefetch && !w.used {
				w.used = true
				c.Stats.PrefetchUseful++
				res.WasPfHit = true
			}
			return res
		}
		// In flight: merge with the outstanding fill.
		c.Stats.Misses++
		c.Stats.MergedMiss++
		res := AccessResult{Merged: true, ReadyAt: w.fillAt}
		if w.prefetch && !w.used {
			w.used = true
			c.Stats.PrefetchLate++
			res.MergedPf = true
		}
		return res
	}
	c.Stats.Misses++
	return AccessResult{FilledNew: true}
}

// Fill installs line l with data arriving at cycle fillAt, allocated at
// cycle now (MSHR occupancy spans [now, fillAt)). If no MSHR is free the
// allocation is delayed and the returned actual fill time reflects the
// stall; callers use the return value as the completion time.
//
//cbws:hotpath
func (c *Cache) Fill(l mem.LineAddr, now uint64, latency uint64, isPrefetch bool) (fillAt uint64) {
	free, at := c.mshrFree(now)
	if !free {
		now = at
		_, _ = c.mshrFree(now) // reap at the new time
	}
	fillAt = now + latency
	c.mshr = append(c.mshr, fillAt)
	i := c.victim(l, now)
	c.evict(i)
	w := &c.lines[i]
	*w = line{tag: l, valid: true, prefetch: isPrefetch, fillAt: fillAt}
	c.tags[i] = uint64(l)
	c.touch(w)
	if isPrefetch {
		c.Stats.PrefetchIssued++
	}
	if check.Enabled {
		c.checkSet(int(uint64(l)&c.setMask) * c.ways)
		c.checkMSHR()
	}
	return fillAt
}

// TryPrefetch attempts to allocate a prefetch fill for l at cycle now with
// the given backing latency. It returns (issued, reason) where reason
// explains a refusal.
//
//cbws:hotpath
func (c *Cache) TryPrefetch(l mem.LineAddr, now uint64, latency uint64) (bool, PrefetchRefusal) {
	if resident, _, _ := c.Probe(l); resident {
		c.Stats.PrefetchRedundant++
		return false, RefusedResident
	}
	if free, _ := c.mshrFree(now); !free {
		c.Stats.PrefetchDropped++
		return false, RefusedNoMSHR
	}
	c.Fill(l, now, latency, true)
	return true, 0
}

// PrefetchRefusal explains why a prefetch was not issued.
type PrefetchRefusal int

const (
	// RefusedResident means the target line is already present or in flight.
	RefusedResident PrefetchRefusal = iota + 1
	// RefusedNoMSHR means all MSHRs were busy.
	RefusedNoMSHR
)

// DrainWrong counts lines still resident that were prefetched and never
// used, charging them as wrong predictions. Called once at end of
// simulation so that unused prefetches are fully accounted.
func (c *Cache) DrainWrong() {
	for i := range c.lines {
		w := &c.lines[i]
		if w.valid && w.prefetch && !w.used {
			c.Stats.PrefetchWrong++
			w.used = true
		}
	}
}

// ResidentLines returns the number of valid lines (for tests).
func (c *Cache) ResidentLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

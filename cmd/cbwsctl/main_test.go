package main

import (
	"bytes"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cbws/internal/cli"
	"cbws/internal/harness"
	"cbws/internal/service"
	"cbws/internal/workload"
)

// startDaemon brings up an in-process cbwsd-equivalent service.
func startDaemon(t *testing.T, cfg service.Config) (*service.Service, string) {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts.URL
}

func smallConfig() service.Config {
	base := harness.DefaultOptions().Sim
	base.MaxInstructions = 200_000
	base.WarmupInstructions = 50_000
	return service.Config{Workers: 2, QueueDepth: 16, BaseSim: base, CodeVersion: "test"}
}

func runCtl(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"frobnicate"},
		{"-no-such-flag"},
		{"submit"},                     // missing -workload/-prefetcher
		{"status"},                     // missing KEY
		{"status", "k1", "k2"},         // too many
		{"sweep", "-workloads", "a,b"}, // missing -prefetchers
		{"result"},                     // missing KEY
	} {
		code, _, _ := runCtl(t, args...)
		if code != cli.ExitUsage {
			t.Errorf("run(%q) = %d, want %d", args, code, cli.ExitUsage)
		}
	}
}

func TestSubmitStatusResult(t *testing.T) {
	_, url := startDaemon(t, smallConfig())

	code, out, errOut := runCtl(t, "-server", url, "submit",
		"-workload", "stencil-default", "-prefetcher", "stride", "-wait")
	if code != cli.ExitOK {
		t.Fatalf("submit -wait: exit %d, stderr %s", code, errOut)
	}
	fields := strings.Fields(out)
	if len(fields) < 3 || len(fields[0]) != 64 || !strings.Contains(out, "done") {
		t.Fatalf("submit output: %q", out)
	}
	key := fields[0]

	code, out, _ = runCtl(t, "-server", url, "status", key)
	if code != cli.ExitOK || !strings.Contains(out, "done") {
		t.Fatalf("status: exit %d, %q", code, out)
	}

	dest := filepath.Join(t.TempDir(), "run.json")
	code, _, errOut = runCtl(t, "-server", url, "result", "-o", dest, key)
	if code != cli.ExitOK {
		t.Fatalf("result: exit %d, stderr %s", code, errOut)
	}
	rec, err := harness.ReadRunRecord(dest)
	if err != nil {
		t.Fatalf("served record invalid: %v", err)
	}
	if rec.Workload != "stencil-default" || rec.Prefetcher != "stride" {
		t.Fatalf("wrong record: %s/%s", rec.Workload, rec.Prefetcher)
	}

	// Failures surface the daemon's error message and exit 1.
	code, _, errOut = runCtl(t, "-server", url, "submit", "-workload", "stencil-default", "-prefetcher", "CBWS")
	if code != cli.ExitFail || !strings.Contains(errOut, `did you mean "cbws"?`) {
		t.Fatalf("bad prefetcher: exit %d, stderr %q", code, errOut)
	}
	code, _, errOut = runCtl(t, "-server", url, "result", strings.Repeat("0", 64))
	if code != cli.ExitFail || !strings.Contains(errOut, "HTTP 404") {
		t.Fatalf("missing result: exit %d, stderr %q", code, errOut)
	}
}

func TestSweepGoldenAndCacheReplay(t *testing.T) {
	cfg := smallConfig()
	svc, url := startDaemon(t, cfg)

	// Pin a golden manifest for the swept sub-matrix with a direct
	// harness run on the same configuration.
	var specs []workload.Spec
	for _, name := range []string{"stencil-default", "fft-simlarge"} {
		s, ok := workload.ByName(name)
		if !ok {
			t.Fatal(name)
		}
		specs = append(specs, s)
	}
	var factories []harness.Factory
	for _, name := range []string{"none", "cbws"} {
		f, err := harness.ResolveFactory(name)
		if err != nil {
			t.Fatal(err)
		}
		factories = append(factories, f)
	}
	manifest, err := harness.BuildGolden(harness.NewMatrix(harness.Options{Sim: cfg.BaseSim}), specs, factories)
	if err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join(t.TempDir(), "golden.json")
	if err := harness.WriteGolden(goldenPath, manifest); err != nil {
		t.Fatal(err)
	}

	outDir := t.TempDir()
	sweep := []string{"-server", url, "sweep",
		"-workloads", "stencil-default,fft-simlarge", "-prefetchers", "none,cbws",
		"-golden", goldenPath, "-out", outDir}
	code, out, errOut := runCtl(t, sweep...)
	if code != cli.ExitOK {
		t.Fatalf("sweep: exit %d\nstdout %s\nstderr %s", code, out, errOut)
	}
	if !strings.Contains(out, "sweep: 4 cells") || !strings.Contains(out, "golden: all 4 cells match") {
		t.Fatalf("sweep output: %s", out)
	}
	entries, err := os.ReadDir(outDir)
	if err != nil || len(entries) != 4 {
		t.Fatalf("sweep -out wrote %d files (err %v), want 4", len(entries), err)
	}

	// The repeat sweep must be answered entirely from the cache.
	hits0 := svc.Counters().CacheHits
	code, out, errOut = runCtl(t, append(sweep, "-require-cached")...)
	if code != cli.ExitOK {
		t.Fatalf("cached sweep: exit %d\nstdout %s\nstderr %s", code, out, errOut)
	}
	if !strings.Contains(out, "4 served from cache") {
		t.Fatalf("cached sweep output: %s", out)
	}
	if got := svc.Counters().CacheHits - hits0; got != 4 {
		t.Fatalf("repeat sweep scored %d cache hits, want 4", got)
	}

	// A fresh sweep with -require-cached must fail loudly.
	code, _, errOut = runCtl(t, "-server", url, "sweep",
		"-workloads", "bfs-1m", "-prefetchers", "none", "-require-cached")
	if code != cli.ExitFail || !strings.Contains(errOut, "-require-cached") {
		t.Fatalf("uncached -require-cached sweep: exit %d, stderr %q", code, errOut)
	}
}

// startFleet brings up n peered in-process daemons: every worker knows
// the others' URLs, so a cache entry anywhere serves the whole fleet.
// Listeners are bound first so the peer lists can be complete before
// any service starts — the same order cbwsd uses.
func startFleet(t *testing.T, n int) []string {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	for i := range lns {
		cfg := smallConfig()
		for j, u := range urls {
			if j != i {
				cfg.Peers = append(cfg.Peers, u)
			}
		}
		svc, err := service.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv := &http.Server{Handler: svc.Handler()}
		go srv.Serve(lns[i])
		t.Cleanup(func() { srv.Close() })
	}
	return urls
}

// TestSweepAgainstFleet shards a sweep across two peered daemons and
// replays it: the repeat must be answered entirely from the fleet's
// caches, proving ring routing is stable sweep to sweep.
func TestSweepAgainstFleet(t *testing.T) {
	urls := startFleet(t, 2)
	fleet := strings.Join(urls, ",")

	sweep := []string{"-server", fleet, "sweep",
		"-workloads", "stencil-default,fft-simlarge", "-prefetchers", "none,stride"}
	code, out, errOut := runCtl(t, sweep...)
	if code != cli.ExitOK {
		t.Fatalf("fleet sweep: exit %d\nstdout %s\nstderr %s", code, out, errOut)
	}
	if !strings.Contains(out, "sweep: 4 cells") {
		t.Fatalf("fleet sweep output: %s", out)
	}

	code, out, errOut = runCtl(t, append(sweep, "-require-cached")...)
	if code != cli.ExitOK {
		t.Fatalf("fleet replay: exit %d\nstdout %s\nstderr %s", code, out, errOut)
	}
	if !strings.Contains(out, "4 served from cache") {
		t.Fatalf("fleet replay output: %s", out)
	}

	// status/result find a key regardless of which worker computed it.
	fields := strings.Fields(out)
	var key string
	for _, f := range fields {
		if len(f) == 64 {
			key = f
			break
		}
	}
	if key == "" {
		// The replay output lists metrics, not keys; look one up instead.
		code, out, _ := runCtl(t, "-server", fleet, "submit",
			"-workload", "stencil-default", "-prefetcher", "none")
		if code != cli.ExitOK {
			t.Fatalf("submit for key: %d", code)
		}
		key = strings.Fields(out)[0]
	}
	if code, out, errOut := runCtl(t, "-server", fleet, "status", key); code != cli.ExitOK || !strings.Contains(out, "done") {
		t.Fatalf("fleet status: exit %d, %q, stderr %s", code, out, errOut)
	}
	if code, _, errOut := runCtl(t, "-server", fleet, "result", "-o", filepath.Join(t.TempDir(), "r.json"), key); code != cli.ExitOK {
		t.Fatalf("fleet result: exit %d, stderr %s", code, errOut)
	}
}

// TestFleetDuplicateServersRejected checks a malformed -server list is
// a usage error, not a skewed ring.
func TestFleetDuplicateServersRejected(t *testing.T) {
	code, _, errOut := runCtl(t, "-server", "http://x:1,http://x:1", "status", strings.Repeat("0", 64))
	if code != cli.ExitUsage || !strings.Contains(errOut, "duplicate") {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
}

func TestSweepRetriesBackpressure(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	cfg.RetryAfter = time.Second
	long := cfg.BaseSim
	long.MaxInstructions = 30_000_000
	long.WarmupInstructions = 1_000_000
	cfg.BaseSim = long
	_, url := startDaemon(t, cfg)

	// Three cells through a depth-1 queue: the third submit is bounced
	// with 429 and must be retried until the queue frees.
	code, out, errOut := runCtl(t, "-server", url, "-timeout", "2m", "sweep",
		"-workloads", "stencil-default,fft-simlarge,bfs-1m", "-prefetchers", "none")
	if code != cli.ExitOK {
		t.Fatalf("sweep under backpressure: exit %d\nstdout %s\nstderr %s", code, out, errOut)
	}
	if !strings.Contains(errOut, "queue full, retrying") {
		t.Fatalf("sweep never hit backpressure — test config too weak?\nstderr %s", errOut)
	}
	if !strings.Contains(out, "sweep: 3 cells") {
		t.Fatalf("sweep output: %s", out)
	}
}

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	apiv1 "cbws/api/v1"
	"cbws/internal/cli"
)

// cmdStream feeds a CBWT trace file (or stdin) into a cbwsd streaming
// simulation: open, chunked upload with backpressure honored, close,
// wait, print the finalized result key. Streams are stateful on one
// daemon, so against a fleet the stream goes to the first server.
func (c *ctl) cmdStream(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cbwsctl stream", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tenant := fs.String("tenant", "", "quota account the stream is billed to")
	wl := fs.String("workload", "", "declared workload name for the streamed trace")
	pf := fs.String("prefetcher", "", "prefetcher name")
	n := fs.Uint64("n", 0, "instruction budget (0: daemon default)")
	warm := fs.Uint64("warmup", 0, "warmup instructions")
	in := fs.String("f", "-", "CBWT trace file (-: stdin)")
	// 64 KiB needs at most 32769 event slots, half the daemon's default
	// 65536-event stream buffer — large enough to amortize the HTTP
	// round-trip, small enough to never trip the hard 413 bound.
	chunk := fs.Int("chunk", 64<<10, "chunk size in bytes")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if *tenant == "" || *wl == "" || *pf == "" {
		fmt.Fprintln(stderr, "cbwsctl stream: -tenant, -workload and -prefetcher are required")
		return cli.ExitUsage
	}
	if *chunk <= 0 {
		fmt.Fprintln(stderr, "cbwsctl stream: -chunk must be positive")
		return cli.ExitUsage
	}

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(stderr, "cbwsctl: %v\n", err)
			return cli.ExitFail
		}
		defer f.Close()
		src = f
	}

	req := apiv1.OpenStreamRequest{Tenant: *tenant, Workload: *wl, Prefetcher: *pf}
	cfg := map[string]uint64{}
	if *n > 0 {
		cfg["MaxInstructions"] = *n
	}
	if flagSet(fs, "warmup") {
		cfg["WarmupInstructions"] = *warm
	}
	if len(cfg) > 0 {
		b, err := json.Marshal(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "cbwsctl: %v\n", err)
			return cli.ExitFail
		}
		req.Config = b
	}

	client := c.worker()
	view, err := client.OpenStream(req)
	if err != nil {
		fmt.Fprintf(stderr, "cbwsctl: open stream: %v\n", err)
		return cli.ExitFail
	}
	fmt.Fprintf(stderr, "cbwsctl: stream %s open (%s/%s, tenant %s)\n", view.ID, *wl, *pf, *tenant)

	buf := make([]byte, *chunk)
	var sent uint64
	for {
		nr, rerr := io.ReadFull(src, buf)
		if nr > 0 {
			ack, err := client.SendChunk(view.ID, buf[:nr], nil)
			if err != nil {
				fmt.Fprintf(stderr, "cbwsctl: chunk at %d bytes: %v\n", sent, err)
				return cli.ExitFail
			}
			sent += uint64(nr)
			if ack.State.Terminal() {
				break
			}
		}
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			break
		}
		if rerr != nil {
			fmt.Fprintf(stderr, "cbwsctl: reading trace: %v\n", rerr)
			return cli.ExitFail
		}
	}
	if _, err := client.CloseStream(view.ID); err != nil {
		fmt.Fprintf(stderr, "cbwsctl: close stream: %v\n", err)
		return cli.ExitFail
	}
	final, err := client.WaitStream(view.ID)
	if err != nil {
		fmt.Fprintf(stderr, "cbwsctl: %v\n", err)
		return cli.ExitFail
	}
	fmt.Fprintf(stdout, "%s  %s/%s  %s  %d bytes, %d events\n",
		final.Key, final.Workload, final.Prefetcher, final.State, final.BytesIn, final.Events)
	return cli.ExitOK
}

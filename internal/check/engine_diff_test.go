package check_test

import (
	"math/rand"
	"testing"

	"cbws/internal/branch"
	"cbws/internal/check"
	"cbws/internal/engine"
	"cbws/internal/mem"
	"cbws/internal/trace"
	"cbws/internal/workload"
)

// pureMemPort is a stateless memory port: the completion time depends
// only on the request, so the production engine and the reference can
// share one instance without interfering. Latencies are spread from
// L1-hit-like to memory-miss-like to exercise ROB/LDQ/STQ stalls.
type pureMemPort struct{}

func (pureMemPort) latency(addr mem.Addr) uint64 {
	h := uint64(addr) * 0x9E3779B97F4A7C15
	switch h >> 62 {
	case 0:
		return 2 // L1-like
	case 1:
		return 32 // L2-like
	default:
		return 300 + h%17 // memory-like, slightly jittered
	}
}

func (p pureMemPort) Load(pc uint64, addr mem.Addr, now uint64) uint64 {
	return now + p.latency(addr)
}

func (p pureMemPort) Store(pc uint64, addr mem.Addr, now uint64) uint64 {
	return now + p.latency(addr^0xA5A5)
}

// randomTrace builds a pseudo-random event stream with every event
// kind: instruction batches, loads, stores, branches, and (sometimes
// unbalanced) block markers.
func randomTrace(rng *rand.Rand, events int) *trace.Trace {
	tr := trace.New("random")
	block := 0
	for i := 0; i < events; i++ {
		pc := uint64(0x400000 + rng.Intn(256)*4)
		addr := mem.Addr(rng.Intn(1<<16) * 8)
		switch rng.Intn(12) {
		case 0, 1:
			tr.Consume(trace.Event{Kind: trace.Instr, N: rng.Intn(9)}) // N=0 means 1
		case 2, 3, 4, 5:
			tr.Consume(trace.Event{Kind: trace.Load, PC: pc, Addr: addr})
		case 6, 7:
			tr.Consume(trace.Event{Kind: trace.Store, PC: pc, Addr: addr})
		case 8, 9:
			tr.Consume(trace.Event{Kind: trace.Branch, PC: pc, Taken: rng.Intn(3) != 0})
		case 10:
			tr.Consume(trace.Event{Kind: trace.BlockBegin, Block: block})
		default:
			tr.Consume(trace.Event{Kind: trace.BlockEnd, Block: block})
			if rng.Intn(4) == 0 {
				block = rng.Intn(3)
			}
		}
	}
	return tr
}

// engineStatsMirror converts production engine statistics into the
// reference struct for field-by-field comparison.
func engineStatsMirror(s engine.Stats) check.RefEngineStats {
	return check.RefEngineStats{
		Instructions: s.Instructions,
		Cycles:       s.Cycles,
		Loads:        s.Loads,
		Stores:       s.Stores,
		Branches:     s.Branches,
		Mispredicts:  s.Mispredicts,
		Blocks:       s.Blocks,
		BlockSlots:   s.BlockSlots,
		TotalSlots:   s.TotalSlots,
	}
}

// driveEnginePair replays tr into the production engine (in randomly
// sized batches, exercising the batched state hoisting) and into the
// unbounded-window reference (one event at a time), comparing ROB
// occupancy at every batch boundary and the full statistics at the end.
func driveEnginePair(t *testing.T, tr *trace.Trace, rng *rand.Rand, withBranch bool) {
	t.Helper()
	cfg := engine.DefaultConfig()
	refCfg := check.RefEngineConfig{
		Width:             cfg.Width,
		ROBEntries:        cfg.ROBEntries,
		LDQEntries:        cfg.LDQEntries,
		STQEntries:        cfg.STQEntries,
		MispredictPenalty: cfg.MispredictPenalty,
	}
	port := pureMemPort{}
	eng, err := engine.New(cfg, port, nil)
	if err != nil {
		t.Fatal(err)
	}
	var refBP check.RefBranchPredictor
	if withBranch {
		// Two predictor instances fed the same outcome sequence stay in
		// lockstep; sharing one would double-train it.
		bp1, err := branch.New(branch.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		bp2, err := branch.New(branch.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		eng.AttachBranchPredictor(bp1)
		refBP = bp2
	}
	ref, err := check.NewRefEngine(refCfg, port, refBP)
	if err != nil {
		t.Fatal(err)
	}

	events := tr.Events
	for len(events) > 0 {
		n := 1 + rng.Intn(300)
		if n > len(events) {
			n = len(events)
		}
		eng.ConsumeBatch(events[:n])
		ref.ConsumeBatch(events[:n])
		events = events[n:]
		if got, want := eng.ROBOccupancy(), ref.ROBOccupancy(); got != want {
			t.Fatalf("ROB occupancy diverged with %d events left: real %d, ref %d",
				len(events), got, want)
		}
	}
	got := engineStatsMirror(eng.Finish())
	want := ref.Finish()
	if got != want {
		t.Fatalf("final stats diverged:\n real %+v\n  ref %+v", got, want)
	}
}

// TestEngineVsReference drives over a million random events through the
// production engine's batched path and the unbounded-window reference,
// with invariant checkers enabled, requiring identical ROB occupancy at
// every batch boundary and bit-identical final statistics.
func TestEngineVsReference(t *testing.T) {
	prev := check.Enabled
	check.Enabled = true
	defer func() { check.Enabled = prev }()

	const seeds, eventsPerSeed = 4, 300_000 // 1.2M events total
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, eventsPerSeed)
		driveEnginePair(t, tr, rng, seed%2 == 0)
	}
}

// TestEngineVsReferenceOnWorkload replays a real workload prefix — the
// annotated stencil kernel — through both engines, covering the
// structured block/branch patterns a synthetic random trace does not.
func TestEngineVsReferenceOnWorkload(t *testing.T) {
	spec, ok := workload.ByName("stencil-default")
	if !ok {
		t.Fatal("stencil-default workload missing")
	}
	tr := trace.New(spec.Name)
	trace.DriveBatches(trace.Limit{Gen: spec.Make(), Max: 200_000}, tr)
	driveEnginePair(t, tr, rand.New(rand.NewSource(1)), true)
}

// Package apiv1 is the versioned wire contract of the cbwsd simulation
// service: the request/response body types, the route layout, the job
// content-address (JobSpec.Key), and the shared HTTP client every
// consumer — cbwsctl, cbwsload, and the daemon's own peer-fetch path —
// speaks through.
//
// Compatibility rules (the "v1" in the import path is a promise):
//
//   - Body shapes only grow. New fields must be optional (omitempty)
//     and servers must reject nothing they accepted before. Removing
//     or renaming a JSON field is a v2.
//   - Routes under /v1/ are stable. New routes may be added; existing
//     ones never change method, path shape, or status-code mapping.
//   - The canonical key encoding (KeySchema) is part of the contract:
//     it decides which cached results are shareable between daemons,
//     so any change to it must bump KeySchema, never mutate it in
//     place.
//
// The types here marshal byte-identically to the pre-extraction
// internal/service definitions, so on-disk cache indexes and job keys
// written by older daemons load unchanged.
package apiv1

import "encoding/json"

// Route layout of the v1 API. Servers mount these exact paths; clients
// construct requests from them.
const (
	PathJobs        = "/v1/jobs"        // POST: submit; GET {key}: status
	PathResults     = "/v1/results"     // GET {key}: run-record JSON
	PathWorkloads   = "/v1/workloads"   // GET: workload roster
	PathPrefetchers = "/v1/prefetchers" // GET: prefetcher roster
	PathHealthz     = "/healthz"        // GET: liveness + drain state
	PathVars        = "/debug/vars"     // GET: expvar counters
)

// SubmitRequest is the POST /v1/jobs body. Config, when present, is a
// partial sim.Config merged over the daemon's base configuration
// (unknown fields are rejected); absent, the base is used as-is.
type SubmitRequest struct {
	Workload   string          `json:"workload"`
	Prefetcher string          `json:"prefetcher"`
	Config     json.RawMessage `json:"config,omitempty"`
	// WorkloadHash, when present, pins the content address of the
	// corpus the job must run from; the daemon rejects the submission
	// (409) if its corpus for the workload differs.
	WorkloadHash string `json:"workload_hash,omitempty"`
}

// Status is a job's lifecycle state.
type Status string

// The job lifecycle: queued → running → done | failed, with canceled
// for jobs still queued when the daemon drains.
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is a final state.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Progress is the polled completion state of a job, derived from the
// simulator's progress hook.
type Progress struct {
	// Instructions is the committed instruction count at the last
	// progress report (0 until the first sample interval elapses).
	Instructions uint64 `json:"instructions"`
	// MaxInstructions is the job's instruction budget.
	MaxInstructions uint64 `json:"max_instructions"`
}

// JobView is the wire form of a job's state, returned by the submit and
// status endpoints.
type JobView struct {
	Key        string   `json:"key"`
	Workload   string   `json:"workload"`
	Prefetcher string   `json:"prefetcher"`
	Status     Status   `json:"status"`
	Progress   Progress `json:"progress"`
	// Cached marks a view synthesized from the result cache alone (the
	// result predates this daemon's job table) or a completion whose
	// bytes are served from the cache.
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
}

// ErrorBody is the JSON error envelope of every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
}

// RosterEntry is one name in the workload/prefetcher listings.
type RosterEntry struct {
	Name  string `json:"name"`
	Suite string `json:"suite,omitempty"`
	MI    bool   `json:"mi,omitempty"`
}

// Healthz is the liveness body.
type Healthz struct {
	Status      string `json:"status"`
	Draining    bool   `json:"draining"`
	CodeVersion string `json:"code_version"`
}

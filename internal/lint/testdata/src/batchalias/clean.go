package batchalias

// copier takes ownership the sanctioned way: append copies the
// elements out of the borrowed backing array.
type copier struct{ buf []Ev }

func (c *copier) ConsumeBatch(batch []Ev) bool {
	c.buf = append(c.buf, batch...)
	return true
}

// forwarder passes the batch onward synchronously — the borrow rules
// transfer to the callee for the duration of the same call.
type forwarder struct{ next *copier }

func (f *forwarder) ConsumeBatch(batch []Ev) bool {
	process(batch[1:])
	return f.next.ConsumeBatch(batch)
}

// reader only reads element copies; locals derived by indexing do not
// alias the backing array.
type reader struct{ sum uint64 }

func (r *reader) ConsumeBatch(batch []Ev) bool {
	for i := range batch {
		ev := batch[i]
		r.sum += ev.Addr
	}
	return true
}

// Command benchgate compares `go test -bench` output against a
// checked-in baseline and fails on regressions: wall time may grow by
// at most the configured ratio (default 2x, absorbing CI machine
// noise), while allocations per operation must match exactly (they are
// deterministic, so any change is a real regression or a real
// improvement to re-baseline).
//
// Usage:
//
//	go test -bench 'Pipeline|CBWS' -run '^$' . | benchgate -baseline BENCH_baseline.json
//	go test -bench ... | benchgate -write BENCH_baseline.json
//
// Only benchmarks present in the baseline are gated; extra benchmarks
// in the input are ignored, but a gated benchmark missing from the
// input is an error (the gate must never pass vacuously). Repeated
// runs of one benchmark (go test -count) are folded with min(ns/op),
// the least-noisy estimate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"cbws/internal/cli"
)

// BaselineEntry pins one benchmark.
type BaselineEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Baseline is the checked-in gate file.
type Baseline struct {
	// MaxTimeRatio bounds measured/baseline ns/op (0 means the
	// command-line default).
	MaxTimeRatio float64                  `json:"max_time_ratio,omitempty"`
	Benchmarks   map[string]BaselineEntry `json:"benchmarks"`
}

// Measurement is one parsed benchmark result line.
type Measurement struct {
	Name        string // -N GOMAXPROCS suffix stripped
	NsPerOp     float64
	AllocsPerOp int64
	HasAllocs   bool
}

// parseLine parses one `go test -bench` result line, returning ok=false
// for non-benchmark lines (headers, PASS, metrics-only output).
func parseLine(line string) (Measurement, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Measurement{}, false
	}
	m := Measurement{Name: f[0]}
	if i := strings.LastIndex(m.Name, "-"); i > 0 {
		if _, err := strconv.Atoi(m.Name[i+1:]); err == nil {
			m.Name = m.Name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	found := false
	for i := 2; i < len(f); i++ {
		v, err := strconv.ParseFloat(f[i-1], 64)
		if err != nil {
			continue
		}
		switch f[i] {
		case "ns/op":
			m.NsPerOp = v
			found = true
		case "allocs/op":
			m.AllocsPerOp = int64(v)
			m.HasAllocs = true
		}
	}
	return m, found
}

// parseBench folds all benchmark lines of r into per-name measurements,
// taking min(ns/op) over repeated runs; allocs/op must agree exactly
// across repeats.
func parseBench(r io.Reader) (map[string]Measurement, error) {
	out := make(map[string]Measurement)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		prev, seen := out[m.Name]
		if !seen {
			out[m.Name] = m
			continue
		}
		if m.HasAllocs && prev.HasAllocs && m.AllocsPerOp != prev.AllocsPerOp {
			return nil, fmt.Errorf("%s: allocs/op differ across runs (%d vs %d)",
				m.Name, prev.AllocsPerOp, m.AllocsPerOp)
		}
		if m.NsPerOp < prev.NsPerOp {
			prev.NsPerOp = m.NsPerOp
		}
		prev.HasAllocs = prev.HasAllocs || m.HasAllocs
		out[m.Name] = prev
	}
	return out, sc.Err()
}

// gate checks measurements against the baseline and returns one line
// per violation.
func gate(base Baseline, got map[string]Measurement, defaultRatio float64) []string {
	ratio := base.MaxTimeRatio
	if ratio == 0 {
		ratio = defaultRatio
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var bad []string
	for _, name := range names {
		want := base.Benchmarks[name]
		m, ok := got[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: gated benchmark missing from input", name))
			continue
		}
		if limit := want.NsPerOp * ratio; m.NsPerOp > limit {
			bad = append(bad, fmt.Sprintf("%s: %.0f ns/op exceeds %.1fx baseline %.0f ns/op (limit %.0f)",
				name, m.NsPerOp, ratio, want.NsPerOp, limit))
		}
		if !m.HasAllocs {
			bad = append(bad, fmt.Sprintf("%s: input has no allocs/op (run benchmarks with -benchmem or b.ReportAllocs)", name))
		} else if m.AllocsPerOp != want.AllocsPerOp {
			bad = append(bad, fmt.Sprintf("%s: %d allocs/op, baseline pins exactly %d",
				name, m.AllocsPerOp, want.AllocsPerOp))
		}
	}
	return bad
}

// writeBaseline emits a fresh baseline file from the measured input.
func writeBaseline(path string, got map[string]Measurement, ratio float64) error {
	base := Baseline{MaxTimeRatio: ratio, Benchmarks: make(map[string]BaselineEntry, len(got))}
	for name, m := range got {
		if !m.HasAllocs {
			return fmt.Errorf("%s: cannot baseline without allocs/op", name)
		}
		base.Benchmarks[name] = BaselineEntry{NsPerOp: m.NsPerOp, AllocsPerOp: m.AllocsPerOp}
	}
	b, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func main() {
	cli.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with the process edges (args, streams, exit) abstracted
// so tests can drive every exit path. Exit status follows the repo
// convention: 2 is reserved for usage errors (bad flags or arguments);
// everything that can only fail at runtime — unreadable input or
// baseline files, malformed bench output, gate violations — exits 1.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "", "baseline JSON file to gate against")
	write := fs.String("write", "", "write a new baseline JSON file from the input instead of gating")
	ratio := fs.Float64("ratio", 2.0, "maximum measured/baseline ns/op ratio (overridden by the baseline's max_time_ratio)")
	input := fs.String("input", "-", "bench output file (default stdin)")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}

	usage := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "benchgate: "+format+"\n", args...)
		return cli.ExitUsage
	}
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "benchgate: "+format+"\n", args...)
		return cli.ExitFail
	}
	if fs.NArg() > 0 {
		return usage("unexpected argument %q", fs.Arg(0))
	}
	if (*baselinePath == "") == (*write == "") {
		return usage("exactly one of -baseline or -write is required")
	}

	in := stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			return fail("%v", err)
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		return fail("%v", err)
	}
	if len(got) == 0 {
		return fail("no benchmark results in input")
	}

	if *write != "" {
		if err := writeBaseline(*write, got, *ratio); err != nil {
			return fail("%v", err)
		}
		fmt.Fprintf(stderr, "benchgate: wrote %s (%d benchmarks)\n", *write, len(got))
		return cli.ExitOK
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return fail("%v", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fail("%s: %v", *baselinePath, err)
	}
	if len(base.Benchmarks) == 0 {
		return fail("%s: baseline gates no benchmarks", *baselinePath)
	}
	if bad := gate(base, got, *ratio); len(bad) > 0 {
		for _, line := range bad {
			fmt.Fprintln(stderr, "benchgate:", line)
		}
		return cli.ExitFail
	}
	fmt.Fprintf(stdout, "benchgate: %d benchmarks within limits\n", len(base.Benchmarks))
	return cli.ExitOK
}

package workload

// Golden structural expectations: for every benchmark emulation, the
// properties that make it play its role in the study (footprint scale,
// block shape, branch divergence, stride structure). These pin down the
// workload designs so a refactor cannot silently change what the
// figures measure.

import (
	"testing"

	"cbws/internal/trace"
)

type golden struct {
	name string
	// footprint bounds over a 300K-instruction prefix, in cache lines.
	minLines, maxLines int
	// block working-set bounds (typical dynamic block, unique lines).
	minBlock, maxBlock int
	// branch divergence: fraction of branch events taken, [lo, hi].
	takenLo, takenHi float64
	// branches may legitimately be absent (0 events) if noBranches.
	noBranches bool
}

var goldenSpecs = []golden{
	// Memory-intensive group.
	{name: "stencil-default", minLines: 8_000, maxLines: 400_000, minBlock: 5, maxBlock: 8, takenLo: 0.9, takenHi: 1.0},
	{name: "sgemm-medium", minLines: 4_000, maxLines: 400_000, minBlock: 8, maxBlock: 10, takenLo: 0.9, takenHi: 1.0},
	{name: "nw", minLines: 10_000, maxLines: 400_000, minBlock: 3, maxBlock: 6, takenLo: 0.9, takenHi: 1.0},
	{name: "radix-simlarge", minLines: 10_000, maxLines: 400_000, minBlock: 4, maxBlock: 6, takenLo: 0.9, takenHi: 1.0},
	{name: "lu-ncb-simlarge", minLines: 5_000, maxLines: 400_000, minBlock: 3, maxBlock: 6, takenLo: 0.85, takenHi: 1.0},
	{name: "fft-simlarge", minLines: 10_000, maxLines: 400_000, minBlock: 1, maxBlock: 5, takenLo: 0.5, takenHi: 1.0},
	{name: "433.milc-su3imp", minLines: 20_000, maxLines: 400_000, minBlock: 10, maxBlock: 14, takenLo: 0.9, takenHi: 1.0},
	{name: "429.mcf-ref", minLines: 20_000, maxLines: 400_000, minBlock: 10, maxBlock: 14, takenLo: 0.05, takenHi: 0.35},
	{name: "450.soplex-ref", minLines: 10_000, maxLines: 400_000, minBlock: 2, maxBlock: 6, takenLo: 0.2, takenHi: 0.5},
	{name: "462.libquantum-ref", minLines: 10_000, maxLines: 400_000, minBlock: 4, maxBlock: 5, takenLo: 0.0, takenHi: 1.0},
	{name: "401.bzip2-source", minLines: 5_000, maxLines: 400_000, minBlock: 8, maxBlock: 80, takenLo: 0.2, takenHi: 0.3},
	{name: "histo-large", minLines: 10_000, maxLines: 400_000, minBlock: 2, maxBlock: 3, takenLo: 0.95, takenHi: 1.0},
	{name: "mri-q-large", minLines: 3_000, maxLines: 400_000, minBlock: 6, maxBlock: 7, takenLo: 0.9, takenHi: 1.0},
	{name: "lbm-long", minLines: 10_000, maxLines: 400_000, minBlock: 4, maxBlock: 10, takenLo: 0.1, takenHi: 0.35},
	{name: "streamcluster-simlarge", minLines: 10_000, maxLines: 400_000, minBlock: 2, maxBlock: 4, takenLo: 0.1, takenHi: 0.4},
	// Regular group: small footprints (L2-resident by design).
	{name: "458.sjeng-ref", minLines: 500, maxLines: 16_000, minBlock: 1, maxBlock: 2, takenLo: 0.15, takenHi: 0.35},
	{name: "471.omnetpp-omnetpp", minLines: 2_000, maxLines: 24_000, minBlock: 1, maxBlock: 3, noBranches: true},
	{name: "bfs-1m", minLines: 2_000, maxLines: 32_000, minBlock: 2, maxBlock: 3, takenLo: 0.05, takenHi: 0.25},
	{name: "canneal-simlarge", minLines: 2_000, maxLines: 16_000, minBlock: 1, maxBlock: 3, takenLo: 0.15, takenHi: 0.35},
	{name: "cholesky-tk29", minLines: 500, maxLines: 16_000, minBlock: 1, maxBlock: 3, noBranches: true},
	{name: "freqmine-simlarge", minLines: 2_000, maxLines: 16_000, minBlock: 1, maxBlock: 2, takenLo: 0.5, takenHi: 0.95},
	{name: "md-linpack", minLines: 500, maxLines: 8_000, minBlock: 1, maxBlock: 2, noBranches: true},
	{name: "mvx-linpack", minLines: 1_000, maxLines: 16_000, minBlock: 1, maxBlock: 3, noBranches: true},
	{name: "mxm-linpack", minLines: 1_000, maxLines: 16_000, minBlock: 1, maxBlock: 3, noBranches: true},
	{name: "ocean-cp-simlarge", minLines: 2_000, maxLines: 32_000, minBlock: 2, maxBlock: 5, noBranches: true},
	{name: "sad-base-large", minLines: 500, maxLines: 8_000, minBlock: 1, maxBlock: 3, noBranches: true},
	{name: "spmv-large", minLines: 2_000, maxLines: 64_000, minBlock: 2, maxBlock: 4, noBranches: true},
	{name: "water-spatial-native", minLines: 2_000, maxLines: 16_000, minBlock: 1, maxBlock: 2, noBranches: true},
	{name: "backprop", minLines: 1_000, maxLines: 16_000, minBlock: 1, maxBlock: 3, noBranches: true},
	{name: "srad-v1", minLines: 500, maxLines: 16_000, minBlock: 2, maxBlock: 4, noBranches: true},
}

func TestGoldenCoversAllWorkloads(t *testing.T) {
	if len(goldenSpecs) != len(All()) {
		t.Fatalf("golden table has %d entries, registry has %d", len(goldenSpecs), len(All()))
	}
	for _, g := range goldenSpecs {
		if _, ok := ByName(g.name); !ok {
			t.Errorf("golden entry %q not in registry", g.name)
		}
	}
}

func TestGoldenStructuralExpectations(t *testing.T) {
	for _, g := range goldenSpecs {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			spec, ok := ByName(g.name)
			if !ok {
				t.Fatal("missing workload")
			}
			s := trace.Analyze(spec.Make(), 300_000)

			if s.UniqueLines < g.minLines || s.UniqueLines > g.maxLines {
				t.Errorf("footprint %d lines, want [%d, %d]", s.UniqueLines, g.minLines, g.maxLines)
			}

			// Dominant block size: take the most frequent bucket.
			var domSize int
			var domCount uint64
			for size, n := range s.BlockSizes {
				if n > domCount {
					domCount = n
					domSize = size
				}
			}
			if domSize < g.minBlock || domSize > g.maxBlock {
				t.Errorf("dominant block size %d lines, want [%d, %d] (sizes: %v)",
					domSize, g.minBlock, g.maxBlock, s.BlockSizes)
			}

			if g.noBranches {
				return
			}
			if s.Branches == 0 {
				t.Fatal("expected branch events")
			}
			frac := float64(s.BranchTaken) / float64(s.Branches)
			if frac < g.takenLo || frac > g.takenHi {
				t.Errorf("taken fraction %.2f, want [%.2f, %.2f]", frac, g.takenLo, g.takenHi)
			}
		})
	}
}

package cbws_test

import (
	"context"
	"fmt"

	"cbws"
)

// ExampleWorkloads enumerates the benchmark roster.
func ExampleWorkloads() {
	fmt.Println(len(cbws.Workloads()), "workloads,",
		len(cbws.MemoryIntensiveWorkloads()), "memory-intensive")
	// Output: 30 workloads, 15 memory-intensive
}

// ExampleNewCBWS shows the paper's hardware budget: the CBWS prefetcher
// fits in under 1KB of storage (Figure 8).
func ExampleNewCBWS() {
	p := cbws.NewCBWS(cbws.CBWSConfig{})
	fmt.Printf("%s: %d bits (%d bytes)\n", p.Name(), p.StorageBits(), p.StorageBits()/8)
	// Output: cbws: 8080 bits (1010 bytes)
}

// ExampleRun simulates a workload under the paper's best configuration.
// Metrics depend on the timing model, so this example prints only
// structural facts.
func ExampleRun() {
	cfg := cbws.DefaultConfig()
	cfg.MaxInstructions = 100_000

	wl, _ := cbws.WorkloadByName("nw")
	res, err := cbws.Run(cfg, wl.Make(), cbws.NewCBWSPlusSMS())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.Workload, "under", res.Prefetcher,
		"simulated", res.Metrics.Instructions, "instructions")
	// Output: nw under cbws+sms simulated 100000 instructions
}

// ExampleRunContext shows the options API: constructing a prefetcher by
// registry name and sampling a time series while the run executes.
func ExampleRunContext() {
	cfg := cbws.DefaultConfig()
	cfg.MaxInstructions = 100_000

	wl, _ := cbws.WorkloadByName("nw")
	pf, err := cbws.NewPrefetcher("cbws+sms")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	series := cbws.NewTimeSeries(8)
	res, err := cbws.RunContext(context.Background(), cfg, wl.Make(), pf,
		cbws.WithProbe(series), cbws.WithSampleInterval(25_000))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	final, _ := series.Final()
	fmt.Println(res.Workload, "sampled", series.Len(), "points;",
		"final snapshot matches result:", final == res.Metrics)
	// Output: nw sampled 5 points; final snapshot matches result: true
}

// ExampleNewPrefetcher enumerates the scheme registry.
func ExampleNewPrefetcher() {
	for _, name := range cbws.Prefetchers() {
		p, _ := cbws.NewPrefetcher(name)
		fmt.Println(p.Name())
	}
	// Output:
	// none
	// stride
	// ghb-pc/dc
	// ghb-g/dc
	// sms
	// cbws
	// cbws+sms
	// ampm
	// markov
	// pythia
	// gaze
}

package harness

import (
	"context"
	"encoding/csv"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cbws/internal/sim"
	"cbws/internal/workload"
)

func TestCellFileName(t *testing.T) {
	cases := []struct{ wl, pf, want string }{
		{"stencil-default", "none", "stencil-default__none"},
		{"429.mcf-ref", "ghb-pc/dc", "429.mcf-ref__ghb-pc-dc"},
		{"a b", `c\d:e`, "a-b__c-d-e"},
	}
	for _, c := range cases {
		if got := CellFileName(c.wl, c.pf); got != c.want {
			t.Errorf("CellFileName(%q, %q) = %q, want %q", c.wl, c.pf, got, c.want)
		}
	}
}

// TestRunRecordRoundTrip runs one observed cell — deliberately a scheme
// whose name contains a path separator — and checks the written record:
// it reads back, validates, and matches the in-memory result exactly.
func TestRunRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := tinyOptions()
	opts.ObsDir = dir
	opts.SampleInterval = 20_000
	m := NewMatrix(opts)

	spec, _ := workload.ByName("stencil-default")
	f, _ := FactoryByName("ghb-pc/dc")
	res, err := m.Get(spec, f)
	if err != nil {
		t.Fatal(err)
	}

	base := filepath.Join(dir, CellFileName(spec.Name, f.Name))
	rec, err := ReadRunRecord(base + ".json")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Workload != spec.Name || rec.Prefetcher != f.Name {
		t.Errorf("record identity %s/%s, want %s/%s", rec.Workload, rec.Prefetcher, spec.Name, f.Name)
	}
	if rec.Metrics != res.Metrics {
		t.Errorf("record metrics diverge from the run:\nrecord: %+v\nrun:    %+v", rec.Metrics, res.Metrics)
	}
	if rec.SampleInterval != opts.SampleInterval {
		t.Errorf("record interval %d, want %d", rec.SampleInterval, opts.SampleInterval)
	}
	if rec.Config.MaxInstructions != opts.Sim.MaxInstructions {
		t.Errorf("record config not preserved")
	}

	// CSV: header plus one row per sample, rows consistent with the JSON.
	cf, err := os.Open(base + ".csv")
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	rows, err := csv.NewReader(cf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+len(rec.Samples) {
		t.Fatalf("CSV has %d rows, want header + %d samples", len(rows), len(rec.Samples))
	}
	if rows[0][0] != "instructions" || rows[0][len(rows[0])-1] != "final" {
		t.Errorf("unexpected CSV header: %v", rows[0])
	}
	if got := rows[len(rows)-1][len(rows[0])-1]; got != "true" {
		t.Errorf("last CSV row final = %s, want true", got)
	}
}

// TestRunRecordValidateRejects tampers with a valid record field by
// field and checks each corruption is caught.
func TestRunRecordValidateRejects(t *testing.T) {
	dir := t.TempDir()
	opts := tinyOptions()
	opts.ObsDir = dir
	m := NewMatrix(opts)
	spec, _ := workload.ByName("stencil-default")
	f, _ := FactoryByName("none")
	if _, err := m.Get(spec, f); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, CellFileName(spec.Name, f.Name)+".json")
	good, err := ReadRunRecord(path)
	if err != nil {
		t.Fatal(err)
	}

	tamper := []struct {
		name string
		mut  func(r *RunRecord)
	}{
		{"schema", func(r *RunRecord) { r.Schema = 99 }},
		{"workload", func(r *RunRecord) { r.Workload = "" }},
		{"go_version", func(r *RunRecord) { r.GoVersion = "" }},
		{"wall_time", func(r *RunRecord) { r.WallTime = -1 }},
		{"interval", func(r *RunRecord) { r.SampleInterval = 0 }},
		{"empty series", func(r *RunRecord) { r.Samples = nil }},
		{"no final", func(r *RunRecord) { r.Samples[len(r.Samples)-1].Final = false }},
		{"not monotonic", func(r *RunRecord) { r.Samples[0].Instructions = 1 << 60 }},
		{"sum mismatch", func(r *RunRecord) { r.Samples[0].Interval.Instructions += 7 }},
	}
	for _, tc := range tamper {
		r := *good
		r.Samples = append([]sim.SamplePoint(nil), good.Samples...)
		tc.mut(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: corrupted record validated", tc.name)
		}
	}
}

// TestFillContextAggregatesErrors breaks the configuration so every run
// fails and checks Fill reports all of them, not just the first.
func TestFillContextAggregatesErrors(t *testing.T) {
	opts := tinyOptions()
	opts.Sim.Memory.L1.MSHRs = 0 // invalid: hierarchy construction fails
	m := NewMatrix(opts)

	var specs []workload.Spec
	for _, n := range []string{"stencil-default", "histo-large"} {
		s, _ := workload.ByName(n)
		specs = append(specs, s)
	}
	var fs []Factory
	for _, n := range []string{"none", "sms"} {
		f, _ := FactoryByName(n)
		fs = append(fs, f)
	}
	err := m.Fill(specs, fs)
	if err == nil {
		t.Fatal("Fill with a broken config should fail")
	}
	joined, ok := err.(interface{ Unwrap() []error })
	if !ok {
		t.Fatalf("Fill error is not an errors.Join aggregate: %T %v", err, err)
	}
	if got := len(joined.Unwrap()); got != len(specs)*len(fs) {
		t.Errorf("Fill aggregated %d errors, want %d: %v", got, len(specs)*len(fs), err)
	}
	for _, cell := range []string{"stencil-default/none", "histo-large/sms"} {
		if !strings.Contains(err.Error(), cell) {
			t.Errorf("aggregate error does not name cell %s: %v", cell, err)
		}
	}
}

// TestFillContextCancelled checks a cancelled Fill returns ctx.Err()
// exactly once instead of one cancellation per cell.
func TestFillContextCancelled(t *testing.T) {
	m := NewMatrix(tinyOptions())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec, _ := workload.ByName("stencil-default")
	f, _ := FactoryByName("none")
	err := m.FillContext(ctx, []workload.Spec{spec}, []Factory{f})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := strings.Count(err.Error(), context.Canceled.Error()); n != 1 {
		t.Errorf("cancellation reported %d times, want once: %v", n, err)
	}
}

// TestGetRetriesAfterCancelledOwner checks that a cell whose owning run
// was cancelled is not poisoned: a later Get with a live context
// re-simulates it successfully.
func TestGetRetriesAfterCancelledOwner(t *testing.T) {
	m := NewMatrix(tinyOptions())
	spec, _ := workload.ByName("stencil-default")
	f, _ := FactoryByName("none")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.GetContext(ctx, spec, f); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Get: err = %v, want context.Canceled", err)
	}
	res, err := m.Get(spec, f)
	if err != nil {
		t.Fatalf("Get after cancelled owner: %v", err)
	}
	if res.Metrics.Instructions == 0 {
		t.Error("retried run produced no instructions")
	}
}

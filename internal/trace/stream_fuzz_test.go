package trace

import (
	"bytes"
	"testing"
)

// FuzzStreamChunkFraming is the chunk-framing differential: arbitrary
// bytes split into arbitrary chunk sizes through a ChunkDecoder must
// behave exactly like a whole-stream Reader over the same bytes — same
// events, same accept/reject verdict — and must never panic. This is
// the invariant the streaming ingest endpoint relies on: a client's
// chunk boundaries cannot change what simulates, and truncation or
// corruption surfaces as a clean decode error (HTTP 400), never a
// crash.
func FuzzStreamChunkFraming(f *testing.F) {
	valid := encodeTestTrace(f, "seed", streamTestEvents())
	f.Add(valid, uint16(1))
	f.Add(valid, uint16(7))
	f.Add(valid[:len(valid)-3], uint16(4)) // truncated mid-stream
	f.Add([]byte("CBWT\x01\x04name"), uint16(2))
	f.Add([]byte("CBWT\x02\x00\xFF"), uint16(3)) // bad version
	f.Add(append(valid, 0xAB, 0xCD), uint16(5))  // trailing garbage
	f.Add([]byte{}, uint16(1))

	f.Fuzz(func(t *testing.T, data []byte, chunk uint16) {
		size := int(chunk)%97 + 1

		// Reference: whole-stream decode of the same bytes.
		var want Trace
		var wantErr error
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			wantErr = err
		} else {
			wantErr = r.Decode(&want)
		}

		var d ChunkDecoder
		var got Trace
		var gotErr error
		rest := data
		for len(rest) > 0 && gotErr == nil {
			n := size
			if n > len(rest) {
				n = len(rest)
			}
			gotErr = d.Feed(rest[:n], &got)
			rest = rest[n:]
		}
		if gotErr == nil {
			gotErr = d.Finish()
		}

		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("verdict mismatch: Reader err=%v, ChunkDecoder err=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			// Both rejected. Error positions can differ by codec
			// granularity (the Reader errors mid-varint, the chunk
			// decoder at event scope), so only the verdict and the
			// already-delivered prefix relation are compared.
			return
		}
		if len(got.Events) != len(want.Events) {
			t.Fatalf("size=%d: %d events, want %d", size, len(got.Events), len(want.Events))
		}
		for i := range got.Events {
			if got.Events[i] != want.Events[i] {
				t.Fatalf("size=%d event %d: %+v != %+v", size, i, got.Events[i], want.Events[i])
			}
		}
		if name, ok := d.Name(); !ok || name != r.Name() {
			t.Fatalf("name %q (ok=%v), want %q", name, ok, r.Name())
		}
	})
}

// Package learned implements the two post-paper "learned" prefetchers
// of the related-work comparison: a Pythia-style online reinforcement
// learning prefetcher (Bera et al., MICRO 2021) and a Gaze-style
// spatial-pattern prefetcher that exploits intra-region temporal order
// (Chen et al., 2024). Both plug into the shared prefetch.Prefetcher
// interface and the scheme registry, so they are selectable everywhere
// a paper-era scheme is (cbwsim, figures, cbwsd sweeps).
//
// Like the production CBWS predictor, both designs are written to the
// repo's determinism contract: state lives in fixed preallocated
// tables, every replacement decision is driven by unique monotonic
// ticks or a deterministically seeded xorshift32, Q-values are
// fixed-point integers, and argmax ties break to the lowest action
// index — so a simulation run is bit-identical across repetitions and
// across harness parallelism, and golden manifests can pin their
// cells. Naive reference models live in internal/check (RefPythia,
// RefGaze) and are held bit-identical by differential tests and fuzz
// targets.
//
// The OnAccess hot paths are //cbws:hotpath annotated and therefore
// allocation-free in steady state, enforced by cbwslint and by
// AllocsPerRun regression tests.
package learned

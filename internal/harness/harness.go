// Package harness runs the paper's evaluation: every workload × every
// prefetcher on the Table II system, memoizing results so that all
// figures derive from one simulation matrix, and rendering each figure
// and table of the paper as a report.Table.
package harness

import (
	"fmt"
	"sync"

	"cbws/internal/core"
	"cbws/internal/prefetch"
	"cbws/internal/sim"
	"cbws/internal/workload"
)

// Factory names and constructs one prefetching scheme.
type Factory struct {
	Name string
	New  func() prefetch.Prefetcher
}

// Prefetchers returns the six evaluated schemes in the paper's plotting
// order: no-prefetch, stride, GHB PC/DC, GHB G/DC, SMS, CBWS, CBWS+SMS.
func Prefetchers() []Factory {
	return []Factory{
		{Name: "none", New: func() prefetch.Prefetcher { return prefetch.NewNone() }},
		{Name: "stride", New: func() prefetch.Prefetcher { return prefetch.NewStride(prefetch.StrideConfig{}) }},
		{Name: "ghb-pc/dc", New: func() prefetch.Prefetcher { return prefetch.NewGHB(prefetch.GHBConfig{Mode: prefetch.PCDC}) }},
		{Name: "ghb-g/dc", New: func() prefetch.Prefetcher { return prefetch.NewGHB(prefetch.GHBConfig{Mode: prefetch.GlobalDC}) }},
		{Name: "sms", New: func() prefetch.Prefetcher { return prefetch.NewSMS(prefetch.SMSConfig{}) }},
		{Name: "cbws", New: func() prefetch.Prefetcher { return core.New(core.Config{}) }},
		{Name: "cbws+sms", New: func() prefetch.Prefetcher {
			return core.NewComposite(core.New(core.Config{}), prefetch.NewSMS(prefetch.SMSConfig{}))
		}},
	}
}

// ExtendedPrefetchers returns the evaluated schemes plus extension
// baselines beyond the paper's roster (AMPM and Markov, which the
// paper's related-work section discusses but does not evaluate).
func ExtendedPrefetchers() []Factory {
	return append(Prefetchers(),
		Factory{Name: "ampm", New: func() prefetch.Prefetcher { return prefetch.NewAMPM(prefetch.AMPMConfig{}) }},
		Factory{Name: "markov", New: func() prefetch.Prefetcher { return prefetch.NewMarkov(prefetch.MarkovConfig{}) }},
	)
}

// FactoryByName looks up an evaluated or extension scheme.
func FactoryByName(name string) (Factory, bool) {
	for _, f := range ExtendedPrefetchers() {
		if f.Name == name {
			return f, true
		}
	}
	return Factory{}, false
}

// Options configures a harness run.
type Options struct {
	Sim sim.Config
	// Parallel runs independent simulations on multiple goroutines.
	Parallel int
}

// DefaultOptions returns the Table II system with a 4M-instruction
// window per run, the first 1M excluded from metrics as warmup (the
// paper simulates 1e9 instructions starting at each benchmark's
// region of interest).
func DefaultOptions() Options {
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = 4_000_000
	cfg.WarmupInstructions = 1_000_000
	return Options{Sim: cfg, Parallel: 4}
}

// Matrix memoizes workload × prefetcher simulation results.
type Matrix struct {
	opts Options

	mu      sync.Mutex
	results map[string]sim.Result
}

// NewMatrix creates an empty result matrix.
func NewMatrix(opts Options) *Matrix {
	return &Matrix{opts: opts, results: make(map[string]sim.Result)}
}

// Options returns the matrix configuration.
func (m *Matrix) Options() Options { return m.opts }

// Get simulates (or returns the memoized result of) one cell.
func (m *Matrix) Get(spec workload.Spec, f Factory) (sim.Result, error) {
	key := spec.Name + "\x00" + f.Name
	m.mu.Lock()
	if r, ok := m.results[key]; ok {
		m.mu.Unlock()
		return r, nil
	}
	m.mu.Unlock()
	r, err := sim.Run(m.opts.Sim, spec.Make(), f.New())
	if err != nil {
		return sim.Result{}, fmt.Errorf("harness: %s/%s: %w", spec.Name, f.Name, err)
	}
	m.mu.Lock()
	m.results[key] = r
	m.mu.Unlock()
	return r, nil
}

// Fill simulates every cell of specs × factories, using up to
// opts.Parallel goroutines. Each simulation is fully independent, so
// parallel cells share nothing.
func (m *Matrix) Fill(specs []workload.Spec, factories []Factory) error {
	type job struct {
		s workload.Spec
		f Factory
	}
	var jobs []job
	for _, s := range specs {
		for _, f := range factories {
			jobs = append(jobs, job{s, f})
		}
	}
	par := m.opts.Parallel
	if par < 1 {
		par = 1
	}
	sem := make(chan struct{}, par)
	errs := make(chan error, len(jobs))
	for _, j := range jobs {
		sem <- struct{}{}
		go func(j job) {
			defer func() { <-sem }()
			_, err := m.Get(j.s, j.f)
			errs <- err
		}(j)
	}
	for range jobs {
		if err := <-errs; err != nil {
			return err
		}
	}
	return nil
}

// Package golifecycle is the fixture for the cbws/golifecycle
// analyzer: goroutines below have no visible join mechanism.
package golifecycle

func work() {}

func badBare() {
	go work() // want `goroutine is not joined`
}

func badLit() {
	go func() { work() }() // want `goroutine is not joined`
}

func badNested() {
	f := func() {
		go func() { work() }() // want `goroutine is not joined`
	}
	f()
}

func badSendNeverReceived(sink chan int) {
	// The goroutine sends on a parameter channel, but this function
	// never receives from it: not a join.
	go func() { sink <- 1 }() // want `goroutine is not joined`
}

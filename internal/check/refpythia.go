package check

import (
	"cbws/internal/mem"
	"cbws/internal/prefetch"
)

// RefPythiaConfig mirrors learned.PythiaConfig. Zero values are NOT
// defaulted here: the differential tests construct both sides from one
// explicit parameter set.
type RefPythiaConfig struct {
	Actions              []int8
	Feature1Entries      int
	Feature2Entries      int
	DeltaHistory         int
	EQSize               int
	QBits                int
	AlphaShift           uint
	GammaShift           uint
	EpsilonShift         uint
	TimelyAge            uint64
	RewardAccurateTimely int32
	RewardAccurateLate   int32
	RewardInaccurate     int32
	RewardNoPrefGood     int32
	RewardNoPrefBad      int32
}

// RefPythiaStats mirrors learned.PythiaStats field for field.
type RefPythiaStats struct {
	Triggers       uint64
	Issued         uint64
	Explores       uint64
	AccurateTimely uint64
	AccurateLate   uint64
	Inaccurate     uint64
	NoPrefGood     uint64
	NoPrefBad      uint64
	QUpdates       uint64
}

// refPythiaEQ is one evaluation-queue decision awaiting its reward.
type refPythiaEQ struct {
	line     mem.LineAddr
	page     uint64
	h1, h2   uint32
	action   int32
	tick     uint64
	issued   bool
	rewarded bool
	sawMiss  bool
	reward   int32
}

// refPythiaSeed is the deterministic xorshift seed shared with the
// production prefetcher (the Pythia paper's venue, MICRO 2021; see
// learned.Pythia).
const refPythiaSeed = 0x20211018

// RefPythia is the naive reference for the Pythia-style RL prefetcher:
// Q-table rows live in maps allocated on first touch, the evaluation
// queue and delta history are plain slices shuffled with append, and
// nothing is preallocated. The feature hashes, fixed-point SARSA
// arithmetic, ε-greedy exploration sequence and reward classification
// re-implement the production spec directly, so the issued prefetch
// stream and statistics must be bit-identical to learned.Pythia
// configured with the same parameters.
type RefPythia struct {
	cfg  RefPythiaConfig
	qMax int32

	q1 map[uint32][]int32 // row → per-action Q-values, zero row if absent
	q2 map[uint32][]int32

	eq   []refPythiaEQ // oldest first
	hist []int32       // oldest first, fixed length DeltaHistory

	lastLine mem.LineAddr
	haveLast bool

	rng  uint32
	tick uint64

	Stats RefPythiaStats
}

// NewRefPythia builds the reference agent.
func NewRefPythia(cfg RefPythiaConfig) *RefPythia {
	p := &RefPythia{cfg: cfg}
	p.Reset()
	return p
}

// Reset returns the agent to power-on state, allocating everything
// fresh (deliberately: the reference has no preallocation discipline).
func (p *RefPythia) Reset() {
	p.qMax = 1<<(uint(p.cfg.QBits)-1) - 1
	p.q1 = make(map[uint32][]int32)
	p.q2 = make(map[uint32][]int32)
	p.eq = nil
	p.hist = make([]int32, p.cfg.DeltaHistory)
	p.lastLine = 0
	p.haveLast = false
	p.rng = refPythiaSeed
	p.tick = 0
	p.Stats = RefPythiaStats{}
}

func (p *RefPythia) xorshift() uint32 {
	x := p.rng
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	p.rng = x
	return x
}

func refClampDelta(d int64) int32 {
	if d > 127 {
		return 127
	}
	if d < -127 {
		return -127
	}
	return int32(d)
}

func (p *RefPythia) feature1(pc uint64) uint32 {
	h := (uint32(pc) ^ uint32(pc>>32)) * 0x9E3779B1
	for _, d := range p.hist { // oldest to newest
		h = (h<<7 | h>>25) ^ (uint32(d) * 0x85EBCA6B)
	}
	return h & uint32(p.cfg.Feature1Entries-1)
}

func (p *RefPythia) feature2(line mem.LineAddr, lastDelta int32) uint32 {
	off := uint32(line) & 63
	g := (off << 7) ^ (uint32(lastDelta) * 0xC2B2AE35)
	g ^= g >> 15
	return g & uint32(p.cfg.Feature2Entries-1)
}

// row returns table[h], materializing a zero row on first touch (the
// production flat array is zero-initialized).
func (p *RefPythia) row(table map[uint32][]int32, h uint32) []int32 {
	r, ok := table[h]
	if !ok {
		r = make([]int32, len(p.cfg.Actions))
		table[h] = r
	}
	return r
}

func (p *RefPythia) qsum(h1, h2 uint32, action int32) int32 {
	return p.row(p.q1, h1)[action] + p.row(p.q2, h2)[action]
}

func (p *RefPythia) argmax(h1, h2 uint32) int32 {
	best := int32(0)
	bestQ := p.qsum(h1, h2, 0)
	for a := int32(1); a < int32(len(p.cfg.Actions)); a++ {
		if q := p.qsum(h1, h2, a); q > bestQ {
			best, bestQ = a, q
		}
	}
	return best
}

func (p *RefPythia) clampQ(q int32) int32 {
	if q > p.qMax {
		return p.qMax
	}
	if q < -p.qMax {
		return -p.qMax
	}
	return q
}

// evictOldest finalizes the oldest decision's reward and applies the
// SARSA update, bootstrapping from the next-oldest queued decision.
func (p *RefPythia) evictOldest() {
	e := p.eq[0]
	p.eq = p.eq[1:]

	r := e.reward
	if !e.rewarded {
		switch {
		case e.issued:
			r = p.cfg.RewardInaccurate
			p.Stats.Inaccurate++
		case e.sawMiss:
			r = p.cfg.RewardNoPrefBad
			p.Stats.NoPrefBad++
		default:
			r = p.cfg.RewardNoPrefGood
			p.Stats.NoPrefGood++
		}
	}
	target := r
	if len(p.eq) > 0 {
		n := p.eq[0]
		qn := p.qsum(n.h1, n.h2, n.action)
		target += qn - qn>>p.cfg.GammaShift
	}
	cur := p.qsum(e.h1, e.h2, e.action)
	adj := (target - cur) >> p.cfg.AlphaShift
	r1 := p.row(p.q1, e.h1)
	r2 := p.row(p.q2, e.h2)
	r1[e.action] = p.clampQ(r1[e.action] + adj)
	r2[e.action] = p.clampQ(r2[e.action] + adj)
	p.Stats.QUpdates++
}

// OnAccess mirrors learned.Pythia.OnAccess: settle rewards, then on a
// trigger advance the delta history, pick an ε-greedy action and queue
// the decision.
func (p *RefPythia) OnAccess(a prefetch.Access, issue prefetch.IssueFunc) {
	p.tick++
	line := a.Line
	page := uint64(line) >> 6

	miss := a.Miss()
	claimed := false
	for i := range p.eq {
		e := &p.eq[i]
		if e.issued {
			if !claimed && !e.rewarded && e.line == line {
				claimed = true
				e.rewarded = true
				if p.tick-e.tick >= p.cfg.TimelyAge {
					e.reward = p.cfg.RewardAccurateTimely
					p.Stats.AccurateTimely++
				} else {
					e.reward = p.cfg.RewardAccurateLate
					p.Stats.AccurateLate++
				}
			}
		} else if miss && e.page == page {
			e.sawMiss = true
		}
	}

	if !miss && !a.PfHit {
		return
	}
	p.Stats.Triggers++

	var d int32
	if p.haveLast {
		d = refClampDelta(line.Delta(p.lastLine))
	}
	p.hist = append(p.hist[1:], d)
	p.lastLine = line
	p.haveLast = true

	h1 := p.feature1(a.PC)
	h2 := p.feature2(line, d)

	sel := p.argmax(h1, h2)
	x := p.xorshift()
	if x&(1<<p.cfg.EpsilonShift-1) == 0 {
		sel = int32((x >> p.cfg.EpsilonShift) % uint32(len(p.cfg.Actions)))
		p.Stats.Explores++
	}

	off := int64(p.cfg.Actions[sel])
	cand := line.Add(off)
	issued := off != 0 && uint64(cand)>>6 == page
	if issued {
		issue(cand)
		p.Stats.Issued++
	}

	if len(p.eq) == p.cfg.EQSize {
		p.evictOldest()
	}
	entry := refPythiaEQ{
		line:   line,
		page:   page,
		h1:     h1,
		h2:     h2,
		action: sel,
		tick:   p.tick,
		issued: issued,
	}
	if issued {
		entry.line = cand
	}
	p.eq = append(p.eq, entry)
}

package service

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"
)

func testKey(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func TestCacheMemoryOnly(t *testing.T) {
	c, err := NewCache("")
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("a")
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache reported a hit")
	}
	if err := c.Put(k, CacheMeta{Workload: "w", Prefetcher: "p"}, []byte("data")); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(k)
	if !ok || string(got) != "data" {
		t.Fatalf("Get after Put: %q, %v", got, ok)
	}
	m, ok := c.Meta(k)
	if !ok || m.Workload != "w" || m.Prefetcher != "p" || m.Bytes != 4 {
		t.Fatalf("Meta: %+v, %v", m, ok)
	}
	if err := c.PersistIndex(); err != nil {
		t.Fatalf("PersistIndex on a memory-only cache should be a no-op: %v", err)
	}
}

func TestCachePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := testKey("one"), testKey("two")
	if err := c.Put(k1, CacheMeta{Workload: "w1", Prefetcher: "p1"}, []byte("r1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(k2, CacheMeta{Workload: "w2", Prefetcher: "p2"}, []byte("r2")); err != nil {
		t.Fatal(err)
	}
	if err := c.PersistIndex(); err != nil {
		t.Fatal(err)
	}

	re, err := NewCache(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if re.Len() != 2 {
		t.Fatalf("reopened cache has %d entries, want 2", re.Len())
	}
	got, ok := re.Get(k1)
	if !ok || string(got) != "r1" {
		t.Fatalf("reopened Get(k1): %q, %v", got, ok)
	}
	m, ok := re.Meta(k2)
	if !ok || m.Workload != "w2" {
		t.Fatalf("reopened Meta(k2): %+v, %v — index metadata lost", m, ok)
	}
}

func TestCacheRecoversWithoutIndex(t *testing.T) {
	// A crash before PersistIndex leaves entry files but no index; the
	// data must still be recovered (with empty identity metadata).
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("orphan")
	if err := c.Put(k, CacheMeta{Workload: "w"}, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "index.json")); !os.IsNotExist(err) {
		t.Fatal("index.json written before PersistIndex")
	}
	re, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := re.Get(k)
	if !ok || string(got) != "payload" {
		t.Fatalf("orphan entry not recovered: %q, %v", got, ok)
	}
}

func TestCacheIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "short.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("foreign files loaded as cache entries: %d", c.Len())
	}
}

// TestCacheHitZeroAlloc pins the //cbws:hotpath contract on the
// cache-hit serving path: a Get must not allocate.
func TestCacheHitZeroAlloc(t *testing.T) {
	c, err := NewCache("")
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("hot")
	if err := c.Put(k, CacheMeta{}, []byte("hot data")); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := c.Get(k); !ok {
			t.Fatal("hit expected")
		}
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocates: %v allocs/op", allocs)
	}
}

package core

import (
	"strings"
	"testing"

	"cbws/internal/mem"
)

func TestTableDump(t *testing.T) {
	d := newDriver(Config{})
	for n := 0; n < 10; n++ {
		d.block(0, stridedBlock(n, 3, 100, 7))
	}
	dump := d.p.TableDump()
	if len(dump) != 16 {
		t.Fatalf("dump size %d", len(dump))
	}
	occupied := 0
	for _, e := range dump {
		if !e.Valid {
			continue
		}
		occupied++
		// Every valid entry of a constant-stride loop stores a
		// constant multiple of the base stride: step k records 7k.
		for _, s := range e.Diff {
			if s <= 0 || s%7 != 0 || s > 4*7 {
				t.Errorf("entry diff %v, want constant multiples of 7", e.Diff)
			}
		}
	}
	if occupied == 0 {
		t.Error("table empty after training")
	}
}

func TestCurrentAndLastCBWS(t *testing.T) {
	d := newDriver(Config{})
	d.block(0, stridedBlock(0, 3, 100, 7))
	last := d.p.LastCBWS(0)
	if len(last) != 3 {
		t.Fatalf("last CBWS %v", last)
	}
	want := stridedBlock(0, 3, 100, 7)
	for i := range want {
		if last[i] != want[i] {
			t.Errorf("last[%d] = %v, want %v", i, last[i], want[i])
		}
	}
	if d.p.LastCBWS(3) != nil {
		t.Error("unrecorded predecessor should be nil")
	}
	if d.p.LastCBWS(-1) != nil || d.p.LastCBWS(99) != nil {
		t.Error("out-of-range predecessor should be nil")
	}
	// A fresh block begin clears the current CBWS.
	d.p.OnBlockBegin(0)
	if len(d.p.CurrentCBWS()) != 0 {
		t.Error("current CBWS not cleared at block begin")
	}
}

func TestDumpIsACopy(t *testing.T) {
	d := newDriver(Config{})
	for n := 0; n < 10; n++ {
		d.block(0, stridedBlock(n, 2, 50, 3))
	}
	dump := d.p.TableDump()
	for i := range dump {
		if dump[i].Valid && len(dump[i].Diff) > 0 {
			dump[i].Diff[0] = 999999
		}
	}
	for _, e := range d.p.TableDump() {
		for _, s := range e.Diff {
			if s == 999999 {
				t.Fatal("dump aliases internal state")
			}
		}
	}
	// LastCBWS must also be a copy.
	last := d.p.LastCBWS(0)
	if last != nil && len(last) > 0 {
		last[0] = mem.LineAddr(0xDEAD)
		if d.p.LastCBWS(0)[0] == 0xDEAD {
			t.Fatal("LastCBWS aliases internal state")
		}
	}
}

func TestPrefetcherString(t *testing.T) {
	d := newDriver(Config{})
	for n := 0; n < 5; n++ {
		d.block(0, stridedBlock(n, 2, 50, 3))
	}
	s := d.p.String()
	for _, want := range []string{"cbws{", "blocks=5", "table="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

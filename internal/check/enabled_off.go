//go:build !cbwscheck

package check

// enabledDefault is false in normal builds: invariant checkers cost one
// predictable untaken branch per checkpoint.
const enabledDefault = false

package core

import (
	"testing"

	"cbws/internal/mem"
	"cbws/internal/prefetch"
)

// fakeFallback records training and issues a fixed line per access.
type fakeFallback struct {
	prefetch.NoBlocks
	accesses int
	evicts   int
	emit     mem.LineAddr
}

func (f *fakeFallback) Name() string { return "fake" }
func (f *fakeFallback) OnAccess(a prefetch.Access, issue prefetch.IssueFunc) {
	f.accesses++
	if f.emit != 0 {
		issue(f.emit)
	}
}
func (f *fakeFallback) StorageBits() uint64       { return 1000 }
func (f *fakeFallback) Reset()                    { f.accesses = 0 }
func (f *fakeFallback) OnCacheEvict(mem.LineAddr) { f.evicts++ }

func runBlocks(c *Composite, issued *[]mem.LineAddr, from, n int) {
	issue := func(l mem.LineAddr) { *issued = append(*issued, l) }
	for i := from; i < from+n; i++ {
		c.OnBlockBegin(0)
		for _, l := range stridedBlock(i, 3, 100, 7) {
			c.OnAccess(prefetch.Access{Addr: l.Byte(), Line: l}, issue)
		}
		c.OnBlockEnd(0, issue)
	}
}

func TestCompositeName(t *testing.T) {
	c := NewComposite(New(Config{}), &fakeFallback{})
	if c.Name() != "cbws+fake" {
		t.Errorf("name = %q", c.Name())
	}
}

func TestCompositeTrainsBoth(t *testing.T) {
	fb := &fakeFallback{}
	c := NewComposite(New(Config{}), fb)
	var issued []mem.LineAddr
	runBlocks(c, &issued, 0, 10)
	if fb.accesses != 30 {
		t.Errorf("fallback saw %d accesses, want 30", fb.accesses)
	}
	if c.CBWS().Stats.Blocks != 10 {
		t.Errorf("cbws saw %d blocks", c.CBWS().Stats.Blocks)
	}
}

func TestInclusiveCompositeUnionIssues(t *testing.T) {
	fb := &fakeFallback{emit: 0xDEAD}
	c := NewComposite(New(Config{}), fb)
	var issued []mem.LineAddr
	runBlocks(c, &issued, 0, 10)
	// The inclusive policy lets the fallback issue even when CBWS is
	// confident.
	found := false
	for _, l := range issued {
		if l == 0xDEAD {
			found = true
		}
	}
	if !found {
		t.Error("inclusive composite suppressed the fallback")
	}
	if !c.CBWS().Confident() {
		t.Fatal("CBWS should be confident on a constant stride")
	}
}

func TestExclusiveCompositeSuppressesWhenConfident(t *testing.T) {
	fb := &fakeFallback{emit: 0xDEAD}
	c := NewExclusiveComposite(New(Config{}), fb)
	var issued []mem.LineAddr
	runBlocks(c, &issued, 0, 20)
	if !c.CBWS().Confident() {
		t.Fatal("CBWS should be confident")
	}
	// Once confident, in-block fallback issues must be suppressed; the
	// early (unconfident) blocks may have let some through.
	issued = nil
	runBlocks(c, &issued, 20, 3)
	for _, l := range issued {
		if l == 0xDEAD {
			t.Fatal("exclusive composite let the fallback issue while confident")
		}
	}
	// CBWS's own predictions still flow.
	if len(issued) == 0 {
		t.Error("no CBWS predictions issued")
	}
}

func TestExclusiveCompositeFallsBackWhenNotConfident(t *testing.T) {
	fb := &fakeFallback{emit: 0xDEAD}
	c := NewExclusiveComposite(New(Config{}), fb)
	var issued []mem.LineAddr
	issue := func(l mem.LineAddr) { issued = append(issued, l) }
	// Random blocks: CBWS never confident, fallback issues freely.
	rng := uint64(99)
	for i := 0; i < 10; i++ {
		c.OnBlockBegin(0)
		rng ^= rng << 13
		rng ^= rng >> 7
		l := mem.LineAddr(rng >> 20)
		c.OnAccess(prefetch.Access{Addr: l.Byte(), Line: l}, issue)
		c.OnBlockEnd(0, issue)
	}
	found := false
	for _, l := range issued {
		if l == 0xDEAD {
			found = true
		}
	}
	if !found {
		t.Error("fallback suppressed despite no CBWS confidence")
	}
}

func TestCompositeStorageSums(t *testing.T) {
	cb := New(Config{})
	fb := &fakeFallback{}
	c := NewComposite(cb, fb)
	if c.StorageBits() != cb.StorageBits()+1000 {
		t.Errorf("storage = %d", c.StorageBits())
	}
}

func TestCompositeForwardsEvictions(t *testing.T) {
	fb := &fakeFallback{}
	c := NewComposite(New(Config{}), fb)
	c.OnCacheEvict(123)
	if fb.evicts != 1 {
		t.Error("eviction not forwarded to fallback")
	}
}

func TestCompositeReset(t *testing.T) {
	fb := &fakeFallback{}
	c := NewComposite(New(Config{}), fb)
	var issued []mem.LineAddr
	runBlocks(c, &issued, 0, 10)
	c.Reset()
	if fb.accesses != 0 || c.CBWS().Stats.Blocks != 0 {
		t.Error("reset incomplete")
	}
}

func TestCompositeWithRealSMS(t *testing.T) {
	c := NewComposite(New(Config{}), prefetch.NewSMS(prefetch.SMSConfig{}))
	if c.Name() != "cbws+sms" {
		t.Errorf("name = %q", c.Name())
	}
	var issued []mem.LineAddr
	runBlocks(c, &issued, 0, 10)
	// Smoke: no panic, both trained.
	if c.CBWS().Stats.Blocks != 10 {
		t.Error("cbws not trained")
	}
}

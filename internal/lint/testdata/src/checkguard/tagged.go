//go:build cbwscheck

package checkguard

import "cbws/internal/check"

// deepVerify lives in a cbwscheck-tagged file, which only compiles
// into checked builds: hook and helper calls need no guard here.
func (t *table) deepVerify() {
	check.Assertf(t.n >= 0, "size underflow: %d", t.n)
	checkTable(t)
	if t.n > 1<<20 {
		check.Failf("implausible table size %d", t.n)
	}
}

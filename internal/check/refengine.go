package check

import (
	"fmt"

	"cbws/internal/mem"
	"cbws/internal/trace"
)

// RefEngineConfig mirrors engine.Config.
type RefEngineConfig struct {
	Width             int
	ROBEntries        int
	LDQEntries        int
	STQEntries        int
	MispredictPenalty uint64
}

// RefEngineStats mirrors engine.Stats field for field.
type RefEngineStats struct {
	Instructions uint64
	Cycles       uint64
	Loads        uint64
	Stores       uint64
	Branches     uint64
	Mispredicts  uint64
	Blocks       uint64
	BlockSlots   uint64
	TotalSlots   uint64
}

// RefMemPort is the reference engine's view of the memory system,
// structurally identical to engine.MemPort.
type RefMemPort interface {
	Load(pc uint64, addr mem.Addr, now uint64) (readyAt uint64)
	Store(pc uint64, addr mem.Addr, now uint64) (readyAt uint64)
}

// RefBranchPredictor is the reference engine's view of the branch
// predictor, structurally identical to engine.BranchPredictor.
type RefBranchPredictor interface {
	Update(pc uint64, outcome bool) (correct bool)
}

// RefEngine is the unbounded-window reference for the timing engine's
// ROB occupancy and commit arithmetic. Where engine.Engine keeps its
// clocks decomposed into carry-propagated (cycle, sub-slot) pairs and
// its structures as fixed rings, the reference works in raw slot units
// with explicit division and remembers the commit cycle of *every*
// instruction and the completion cycle of *every* load and store in
// unbounded slices; the ROB/LDQ/STQ constraints become plain lookups at
// index i-Entries. Final statistics and ROB occupancy must be
// bit-identical to the production engine on any trace.
type RefEngine struct {
	cfg    RefEngineConfig
	memsys RefMemPort
	bp     RefBranchPredictor

	fetchQ  uint64 // fetch clock in slot units (1 slot = 1/Width cycle)
	commitQ uint64 // commit clock in slot units

	commits []uint64 // commit cycle of instruction i, for every i
	loads   []uint64 // completion cycle of the j-th load
	stores  []uint64 // completion cycle of the j-th store

	inBlock     bool
	blockStartQ uint64

	Stats RefEngineStats
}

// NewRefEngine builds the reference engine over the given memory port;
// bp may be nil for an ideal front end.
func NewRefEngine(cfg RefEngineConfig, memsys RefMemPort, bp RefBranchPredictor) (*RefEngine, error) {
	if cfg.Width <= 0 || cfg.ROBEntries <= 0 || cfg.LDQEntries <= 0 || cfg.STQEntries <= 0 {
		return nil, fmt.Errorf("refengine: all structure sizes must be positive, got %+v", cfg)
	}
	return &RefEngine{cfg: cfg, memsys: memsys, bp: bp}, nil
}

// dispatch advances the fetch clock by one slot and stalls it on ROB
// back-pressure: instruction i may not dispatch before instruction
// i-ROBEntries has committed. It returns the dispatch cycle.
func (e *RefEngine) dispatch() uint64 {
	width := uint64(e.cfg.Width)
	e.fetchQ++
	enter := e.fetchQ / width
	if i := len(e.commits) - e.cfg.ROBEntries; i >= 0 {
		if free := e.commits[i]; free > enter {
			enter = free
			e.fetchQ = enter * width
		}
	}
	return enter
}

// commit retires the instruction in order at the commit width: the
// commit clock advances by one slot, then jumps to the completion
// cycle when that is later. It records and returns the commit cycle.
func (e *RefEngine) commit(completeAt uint64) uint64 {
	width := uint64(e.cfg.Width)
	e.commitQ++
	if completeAt*width > e.commitQ {
		e.commitQ = completeAt * width
	}
	ccyc := e.commitQ / width
	e.commits = append(e.commits, ccyc)
	e.Stats.Instructions++
	return ccyc
}

// Consume processes one trace event.
func (e *RefEngine) Consume(ev trace.Event) {
	width := uint64(e.cfg.Width)
	switch ev.Kind {
	case trace.Instr:
		n := ev.N
		if n <= 0 {
			n = 1
		}
		for ; n > 0; n-- {
			enter := e.dispatch()
			e.commit(enter + 1)
		}
	case trace.Load:
		enter := e.dispatch()
		if i := len(e.loads) - e.cfg.LDQEntries; i >= 0 {
			if free := e.loads[i]; free > enter {
				enter = free
			}
		}
		ready := e.memsys.Load(ev.PC, ev.Addr, enter)
		e.loads = append(e.loads, ready)
		e.commit(ready)
		e.Stats.Loads++
	case trace.Store:
		enter := e.dispatch()
		if i := len(e.stores) - e.cfg.STQEntries; i >= 0 {
			if free := e.stores[i]; free > enter {
				enter = free
			}
		}
		ready := e.memsys.Store(ev.PC, ev.Addr, enter)
		e.stores = append(e.stores, ready)
		// Stores retire through the store buffer without blocking commit
		// on the fill.
		e.commit(enter + 1)
		e.Stats.Stores++
	case trace.Branch:
		enter := e.dispatch()
		e.commit(enter + 1)
		e.Stats.Branches++
		if e.bp != nil && !e.bp.Update(ev.PC, ev.Taken) {
			e.Stats.Mispredicts++
			// Squash: fetch resumes after the branch resolves plus the
			// refill penalty, in plain slot units.
			if squash := e.commitQ + e.cfg.MispredictPenalty*width; squash > e.fetchQ {
				e.fetchQ = squash
			}
		}
	case trace.BlockBegin:
		enter := e.dispatch()
		e.commit(enter + 1)
		if !e.inBlock {
			e.inBlock = true
			e.blockStartQ = e.commitQ
		}
	case trace.BlockEnd:
		enter := e.dispatch()
		e.commit(enter + 1)
		if e.inBlock {
			e.inBlock = false
			e.Stats.BlockSlots += e.commitQ - e.blockStartQ
			e.Stats.Blocks++
		}
	}
}

// ConsumeBatch implements trace.BatchSink by per-event replay.
func (e *RefEngine) ConsumeBatch(batch []trace.Event) bool {
	for i := range batch {
		e.Consume(batch[i])
	}
	return true
}

// ROBOccupancy counts dispatched-but-uncommitted instructions at the
// current fetch point over the unbounded commit history: of the last
// ROBEntries instructions, those whose commit cycle lies after the
// fetch cycle. Mirrors engine.Engine.ROBOccupancy.
func (e *RefEngine) ROBOccupancy() int {
	fcyc := e.fetchQ / uint64(e.cfg.Width)
	lo := len(e.commits) - e.cfg.ROBEntries
	if lo < 0 {
		lo = 0
	}
	n := 0
	for _, c := range e.commits[lo:] {
		if c > fcyc {
			n++
		}
	}
	return n
}

// Finish settles the clocks and returns the final statistics, mirroring
// engine.Engine.Finish.
func (e *RefEngine) Finish() RefEngineStats {
	width := uint64(e.cfg.Width)
	if e.inBlock {
		e.inBlock = false
		e.Stats.BlockSlots += e.commitQ - e.blockStartQ
		e.Stats.Blocks++
	}
	e.Stats.Cycles = (e.commitQ + width - 1) / width
	e.Stats.TotalSlots = e.commitQ
	return e.Stats
}

// Package mem provides the elementary address arithmetic shared by every
// component of the simulator: byte addresses, cache-line addresses and
// spatial regions.
//
// Throughout the code base a "line address" is a byte address divided by
// the cache line size (64 bytes, as in Table II of the paper); prefetchers
// and caches operate on line addresses so that two accesses within the
// same line compare equal.
package mem

import "fmt"

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// LineAddr is a cache-line address: a byte address with the low
// LineShift bits dropped.
type LineAddr uint64

const (
	// LineSize is the cache line size in bytes (Table II).
	LineSize = 64
	// LineShift is log2(LineSize).
	LineShift = 6
	// PageSize is the physical page size in bytes (Table II).
	PageSize = 4096
)

// LineOf returns the cache-line address containing a.
func LineOf(a Addr) LineAddr { return LineAddr(a >> LineShift) }

// Byte returns the byte address of the first byte of line l.
func (l LineAddr) Byte() Addr { return Addr(l) << LineShift }

// Add returns the line address offset by delta lines. Negative deltas are
// permitted; the result wraps like two's-complement arithmetic, matching
// hardware adders.
//
//cbws:hotpath
func (l LineAddr) Add(delta int64) LineAddr { return LineAddr(int64(l) + delta) }

// Delta returns the signed line-stride from a to l (l - a).
//
//cbws:hotpath
func (l LineAddr) Delta(a LineAddr) int64 { return int64(l) - int64(a) }

func (l LineAddr) String() string { return fmt.Sprintf("L%#x", uint64(l)) }

// Region identifies a fixed-size, aligned spatial region. SMS (Somogyi et
// al., ISCA'06) groups lines by region; the paper configures 2KB regions.
type Region uint64

// RegionConfig describes a power-of-two region geometry.
type RegionConfig struct {
	// SizeBytes is the region size; must be a power of two and a
	// multiple of LineSize.
	SizeBytes uint64
}

// LinesPerRegion returns the number of cache lines per region.
func (rc RegionConfig) LinesPerRegion() int { return int(rc.SizeBytes / LineSize) }

// RegionOf returns the region containing byte address a.
func (rc RegionConfig) RegionOf(a Addr) Region { return Region(uint64(a) / rc.SizeBytes) }

// OffsetOf returns the line offset of byte address a within its region.
func (rc RegionConfig) OffsetOf(a Addr) int {
	return int((uint64(a) % rc.SizeBytes) / LineSize)
}

// Base returns the byte address of the first byte of region r.
func (rc RegionConfig) Base(r Region) Addr { return Addr(uint64(r) * rc.SizeBytes) }

// LineAt returns the line address of the line at offset within region r.
func (rc RegionConfig) LineAt(r Region, offset int) LineAddr {
	return LineOf(rc.Base(r) + Addr(offset*LineSize))
}

// IsPow2 reports whether v is a power of two.
func IsPow2(v uint64) bool { return v != 0 && v&(v-1) == 0 }

// Log2 returns floor(log2(v)) for v > 0.
func Log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Package analysis is a small, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough driver surface to write
// the repo's custom analyzers (Analyzer, Pass, Diagnostic, object
// facts) without pulling x/tools into a module that is deliberately
// stdlib-only. Analyzers are written against the same conceptual API —
// an Analyzer holds a Run function that receives a Pass with parsed
// syntax and full type information and reports Diagnostics — so they
// could be ported to the x/tools framework by changing imports.
//
// Packages are loaded through the go command (`go list -export`),
// which compiles dependencies into the build cache and hands back
// export-data files; type-checking therefore works offline and needs
// no network or vendored tooling. See Load in load.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer; diagnostics print as
	// "cbws/<name>" and suppression comments reference the same
	// string (see //lint:ignore handling in suppress.go).
	Name string
	// Doc is the one-paragraph description shown by `cbwslint -list`.
	Doc string
	// Scope restricts which packages the multichecker driver applies
	// the analyzer to: a package is in scope when its import path
	// equals an entry or is a child of one ("cbws/internal/sim"
	// covers "cbws/internal/sim" and "cbws/internal/sim/...").
	// An empty Scope means every loaded package. Fixture tests bypass
	// Scope and always run the analyzer.
	Scope []string
	// Run executes the check on one package and reports findings
	// through pass.Report/Reportf.
	Run func(pass *Pass) error
}

// InScope reports whether the analyzer applies to pkgPath under the
// driver's scoping rule.
func (a *Analyzer) InScope(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, s := range a.Scope {
		if pkgPath == s || (len(pkgPath) > len(s) && pkgPath[:len(s)] == s && pkgPath[len(s)] == '/') {
			return true
		}
	}
	return false
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string // analyzer name, without the "cbws/" prefix
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (cbws/%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// ModulePath is the module being analyzed; analyzers use it to
	// distinguish module-internal callees (whose source they may
	// demand facts about) from stdlib ones.
	ModulePath string
	// Dir is the package's source directory. Analyzers that check
	// source against a committed artifact (wirecompat's compat.json)
	// resolve it relative to Dir.
	Dir string

	facts  *FactStore
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportObjectFact associates the analyzer's fact value with obj.
// Facts survive across packages within one driver run: packages are
// analyzed in dependency order, so a pass can import facts about any
// object its package imports. Objects are keyed by their stable full
// name (types.Func.FullName or package-qualified name), which is
// identical whether the object was type-checked from source or loaded
// from export data.
func (p *Pass) ExportObjectFact(obj types.Object, value any) {
	p.facts.set(p.Analyzer.Name, objectKey(obj), value)
}

// ImportObjectFact retrieves a fact previously exported for obj by the
// same analyzer, in this or any already-analyzed package.
func (p *Pass) ImportObjectFact(obj types.Object) (any, bool) {
	return p.facts.get(p.Analyzer.Name, objectKey(obj))
}

// objectKey returns a name for obj that is stable across loads from
// source and from export data.
func objectKey(obj types.Object) string {
	if f, ok := obj.(*types.Func); ok {
		return f.FullName()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

// FactStore holds analyzer facts for one driver run.
type FactStore struct {
	m map[[2]string]any
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore { return &FactStore{m: make(map[[2]string]any)} }

func (s *FactStore) set(analyzer, key string, value any) {
	s.m[[2]string{analyzer, key}] = value
}

func (s *FactStore) get(analyzer, key string) (any, bool) {
	v, ok := s.m[[2]string{analyzer, key}]
	return v, ok
}

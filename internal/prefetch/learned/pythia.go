package learned

import (
	"cbws/internal/check"
	"cbws/internal/mem"
	"cbws/internal/prefetch"
)

// PythiaConfig parametrizes the Pythia-style reinforcement-learning
// prefetcher. The design follows Bera et al. (MICRO 2021): a program
// feature vector — the trigger PC with a short global delta history,
// and the page offset with the most recent delta — is hashed into two
// Q-value tables over a configurable action space of prefetch offsets;
// actions are evaluated through a FIFO evaluation queue whose entries
// are rewarded by subsequent demand accesses and whose evictions drive
// fixed-point SARSA updates. Zero-value fields fall back to defaults.
type PythiaConfig struct {
	// Actions is the prefetch-offset action space in cache lines.
	// Offset 0 is the no-prefetch action and should be present; the
	// default list mirrors the spirit of Pythia's offset menu.
	Actions []int8
	// Feature1Entries / Feature2Entries size the two Q-value tables
	// (rows; rounded up to powers of two). Feature 1 is the PC ⊕
	// delta-history program signature, feature 2 the page offset ⊕
	// last delta.
	Feature1Entries int
	Feature2Entries int
	// DeltaHistory is the number of recent line deltas folded into
	// feature 1 (default 4).
	DeltaHistory int
	// EQSize is the evaluation-queue depth (default 64).
	EQSize int
	// QBits is the fixed-point Q-value width including sign; updates
	// saturate at ±(2^(QBits-1)-1) like narrow hardware adders.
	QBits int
	// AlphaShift encodes the learning rate α = 2^-AlphaShift
	// (default 3, α = 1/8); GammaShift the discount γ = 1 -
	// 2^-GammaShift (default 2, γ = 0.75); EpsilonShift the
	// exploration probability ε = 2^-EpsilonShift (default 6,
	// ε = 1/64). All three are plain shifts so the arithmetic is
	// exact, integer and bit-reproducible.
	AlphaShift   uint
	GammaShift   uint
	EpsilonShift uint
	// TimelyAge is the age (in trigger accesses) past which a demand
	// hit on a queued prefetch counts as accurate-and-timely rather
	// than accurate-but-late (default 8).
	TimelyAge uint64
	// Reward levels (Pythia Table 4 spirit): a demand hit on a queued
	// prefetch older/younger than TimelyAge, a prefetch evicted
	// unused, a no-prefetch decision vindicated (no demand miss on
	// the page while queued) or punished (a miss slipped through).
	RewardAccurateTimely int32
	RewardAccurateLate   int32
	RewardInaccurate     int32
	RewardNoPrefGood     int32
	RewardNoPrefBad      int32
}

// DefaultPythiaConfig returns the default configuration: 16 actions,
// 4096 + 1024 Q-table rows, 4-deep delta history, a 64-entry
// evaluation queue and 16-bit fixed-point Q-values.
func DefaultPythiaConfig() PythiaConfig {
	return PythiaConfig{
		Actions:              []int8{0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 32, -1, -2, -3, -6},
		Feature1Entries:      4096,
		Feature2Entries:      1024,
		DeltaHistory:         4,
		EQSize:               64,
		QBits:                16,
		AlphaShift:           3,
		GammaShift:           2,
		EpsilonShift:         6,
		TimelyAge:            8,
		RewardAccurateTimely: 20,
		RewardAccurateLate:   12,
		RewardInaccurate:     -14,
		RewardNoPrefGood:     12,
		RewardNoPrefBad:      -4,
	}
}

func (c PythiaConfig) withDefaults() PythiaConfig {
	d := DefaultPythiaConfig()
	if len(c.Actions) == 0 {
		c.Actions = d.Actions
	}
	if c.Feature1Entries == 0 {
		c.Feature1Entries = d.Feature1Entries
	}
	if c.Feature2Entries == 0 {
		c.Feature2Entries = d.Feature2Entries
	}
	c.Feature1Entries = nextPow2(c.Feature1Entries)
	c.Feature2Entries = nextPow2(c.Feature2Entries)
	if c.DeltaHistory == 0 {
		c.DeltaHistory = d.DeltaHistory
	}
	if c.EQSize == 0 {
		c.EQSize = d.EQSize
	}
	if c.QBits == 0 {
		c.QBits = d.QBits
	}
	if c.AlphaShift == 0 {
		c.AlphaShift = d.AlphaShift
	}
	if c.GammaShift == 0 {
		c.GammaShift = d.GammaShift
	}
	if c.EpsilonShift == 0 {
		c.EpsilonShift = d.EpsilonShift
	}
	if c.EpsilonShift > 31 {
		c.EpsilonShift = 31
	}
	if c.TimelyAge == 0 {
		c.TimelyAge = d.TimelyAge
	}
	if c.RewardAccurateTimely == 0 {
		c.RewardAccurateTimely = d.RewardAccurateTimely
	}
	if c.RewardAccurateLate == 0 {
		c.RewardAccurateLate = d.RewardAccurateLate
	}
	if c.RewardInaccurate == 0 {
		c.RewardInaccurate = d.RewardInaccurate
	}
	if c.RewardNoPrefGood == 0 {
		c.RewardNoPrefGood = d.RewardNoPrefGood
	}
	if c.RewardNoPrefBad == 0 {
		c.RewardNoPrefBad = d.RewardNoPrefBad
	}
	return c
}

// nextPow2 rounds n up to the next power of two (n ≥ 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// pageLineShift converts a line address to its 4KB-page number
// (PageSize/LineSize = 64 lines per page).
const pageLineShift = 6

// pythiaSeed is the deterministic xorshift32 seed (the Pythia paper's
// venue, MICRO 2021); shared bit-for-bit with check.RefPythia.
const pythiaSeed = 0x20211018

// PythiaStats counts prefetcher-internal events; the reference model
// mirrors it field for field.
type PythiaStats struct {
	Triggers       uint64 // accesses that selected an action (misses + prefetch hits)
	Issued         uint64 // prefetch candidates handed to the issue callback
	Explores       uint64 // ε-greedy exploration decisions
	AccurateTimely uint64 // queued prefetches rewarded as accurate and timely
	AccurateLate   uint64 // queued prefetches rewarded as accurate but late
	Inaccurate     uint64 // queued prefetches evicted unused
	NoPrefGood     uint64 // no-prefetch decisions evicted without a page miss
	NoPrefBad      uint64 // no-prefetch decisions that let a page miss through
	QUpdates       uint64 // SARSA updates applied on evaluation-queue eviction
}

// pythiaEQEntry is one evaluation-queue slot: the decision taken for
// one trigger access, awaiting its reward.
type pythiaEQEntry struct {
	line     mem.LineAddr // prefetched line (issued) or trigger line (no-prefetch)
	page     uint64       // trigger page, for no-prefetch miss tracking
	h1, h2   uint32       // Q-table rows the decision was drawn from
	action   int32        // action index into cfg.Actions
	tick     uint64       // insertion tick, for the timeliness split
	issued   bool         // a prefetch actually left for this entry
	rewarded bool
	sawMiss  bool // (no-prefetch only) a demand miss touched page while queued
	reward   int32
}

// Pythia is the online-RL prefetcher. All state is preallocated in
// Reset; OnAccess never allocates.
type Pythia struct {
	prefetch.NoBlocks
	cfg        PythiaConfig
	numActions int
	f1Mask     uint32
	f2Mask     uint32
	qMax       int32

	q1, q2 []int32 // row-major [rows × numActions] fixed-point Q-values

	eq     []pythiaEQEntry // FIFO ring, oldest at eqHead
	eqHead int
	eqLen  int

	deltaHist []int32 // ring of the DeltaHistory most recent deltas
	histPos   int     // index of the oldest element
	lastLine  mem.LineAddr
	haveLast  bool

	rng  uint32
	tick uint64

	Stats PythiaStats
}

var _ prefetch.Prefetcher = (*Pythia)(nil)

// NewPythia builds a Pythia-style prefetcher; zero-value fields of cfg
// fall back to defaults.
func NewPythia(cfg PythiaConfig) *Pythia {
	cfg = cfg.withDefaults()
	p := &Pythia{cfg: cfg}
	p.Reset()
	return p
}

// Name implements prefetch.Prefetcher.
func (p *Pythia) Name() string { return "pythia" }

// Config returns the active configuration.
func (p *Pythia) Config() PythiaConfig { return p.cfg }

// Reset implements prefetch.Prefetcher, preallocating every structure
// the hot path touches.
func (p *Pythia) Reset() {
	c := p.cfg
	p.numActions = len(c.Actions)
	p.f1Mask = uint32(c.Feature1Entries - 1)
	p.f2Mask = uint32(c.Feature2Entries - 1)
	p.qMax = 1<<(uint(c.QBits)-1) - 1
	p.q1 = make([]int32, c.Feature1Entries*p.numActions)
	p.q2 = make([]int32, c.Feature2Entries*p.numActions)
	p.eq = make([]pythiaEQEntry, c.EQSize)
	p.eqHead = 0
	p.eqLen = 0
	p.deltaHist = make([]int32, c.DeltaHistory)
	p.histPos = 0
	p.lastLine = 0
	p.haveLast = false
	p.rng = pythiaSeed
	p.tick = 0
	p.Stats = PythiaStats{}
}

//cbws:hotpath
func (p *Pythia) xorshift() uint32 {
	x := p.rng
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	p.rng = x
	return x
}

// clampDelta narrows a line stride to the ±127 range the delta history
// stores (hardware keeps small signed deltas; saturation is harmless
// because the value only feeds the feature hash).
//
//cbws:hotpath
func clampDelta(d int64) int32 {
	if d > 127 {
		return 127
	}
	if d < -127 {
		return -127
	}
	return int32(d)
}

// feature1 hashes the trigger PC and the delta history (oldest to
// newest) into a Q-table row. The formula is part of the reference
// contract: check.RefPythia re-implements it verbatim.
//
//cbws:hotpath
func (p *Pythia) feature1(pc uint64) uint32 {
	h := (uint32(pc) ^ uint32(pc>>32)) * 0x9E3779B1
	n := len(p.deltaHist)
	for i := 0; i < n; i++ {
		d := p.deltaHist[(p.histPos+i)%n]
		h = (h<<7 | h>>25) ^ (uint32(d) * 0x85EBCA6B)
	}
	return h & p.f1Mask
}

// feature2 hashes the line's page offset and the most recent delta
// into a row of the second Q-table.
//
//cbws:hotpath
func (p *Pythia) feature2(line mem.LineAddr, lastDelta int32) uint32 {
	off := uint32(line) & (1<<pageLineShift - 1)
	g := (off << 7) ^ (uint32(lastDelta) * 0xC2B2AE35)
	g ^= g >> 15
	return g & p.f2Mask
}

// qsum is the two-table Q-value of (state, action).
//
//cbws:hotpath
func (p *Pythia) qsum(h1, h2 uint32, action int32) int32 {
	return p.q1[int(h1)*p.numActions+int(action)] + p.q2[int(h2)*p.numActions+int(action)]
}

// argmax returns the action index with the highest Q-value; ties break
// to the lowest index, making the greedy policy fully deterministic.
//
//cbws:hotpath
func (p *Pythia) argmax(h1, h2 uint32) int32 {
	best := int32(0)
	bestQ := p.qsum(h1, h2, 0)
	for a := int32(1); a < int32(p.numActions); a++ {
		if q := p.qsum(h1, h2, a); q > bestQ {
			best, bestQ = a, q
		}
	}
	return best
}

//cbws:hotpath
func (p *Pythia) clampQ(q int32) int32 {
	if q > p.qMax {
		return p.qMax
	}
	if q < -p.qMax {
		return -p.qMax
	}
	return q
}

// evictOldest retires the oldest evaluation-queue entry: finalizes its
// reward (unused prefetches are inaccurate; unchallenged no-prefetch
// decisions were good calls) and applies the SARSA update
// Q(s,a) += α·(R + γ·Q(s',a') − Q(s,a)), bootstrapping from the next
// queued decision. Both component tables absorb the scaled TD error.
//
//cbws:hotpath
func (p *Pythia) evictOldest() {
	e := &p.eq[p.eqHead]
	p.eqHead = (p.eqHead + 1) % len(p.eq)
	p.eqLen--

	r := e.reward
	if !e.rewarded {
		switch {
		case e.issued:
			r = p.cfg.RewardInaccurate
			p.Stats.Inaccurate++
		case e.sawMiss:
			r = p.cfg.RewardNoPrefBad
			p.Stats.NoPrefBad++
		default:
			r = p.cfg.RewardNoPrefGood
			p.Stats.NoPrefGood++
		}
	}
	target := r
	if p.eqLen > 0 {
		n := &p.eq[p.eqHead]
		qn := p.qsum(n.h1, n.h2, n.action)
		target += qn - qn>>p.cfg.GammaShift // γ = 1 - 2^-GammaShift
	}
	cur := p.qsum(e.h1, e.h2, e.action)
	adj := (target - cur) >> p.cfg.AlphaShift
	i1 := int(e.h1)*p.numActions + int(e.action)
	i2 := int(e.h2)*p.numActions + int(e.action)
	p.q1[i1] = p.clampQ(p.q1[i1] + adj)
	p.q2[i2] = p.clampQ(p.q2[i2] + adj)
	p.Stats.QUpdates++
}

// OnAccess implements prefetch.Prefetcher. Every demand access settles
// rewards against the evaluation queue; misses and prefetch hits are
// the triggers that advance the delta history, consult the Q-tables
// and take a new action.
//
//cbws:hotpath
func (p *Pythia) OnAccess(a prefetch.Access, issue prefetch.IssueFunc) {
	p.tick++
	line := a.Line
	page := uint64(line) >> pageLineShift

	// 1. Reward propagation: the first queued unrewarded prefetch of
	// this exact line is accurate (timely if it has had TimelyAge
	// trigger accesses to complete); a demand miss marks every queued
	// no-prefetch decision on the same page as a lost opportunity.
	miss := a.Miss()
	claimed := false
	for i := 0; i < p.eqLen; i++ {
		e := &p.eq[(p.eqHead+i)%len(p.eq)]
		if e.issued {
			if !claimed && !e.rewarded && e.line == line {
				claimed = true
				e.rewarded = true
				if p.tick-e.tick >= p.cfg.TimelyAge {
					e.reward = p.cfg.RewardAccurateTimely
					p.Stats.AccurateTimely++
				} else {
					e.reward = p.cfg.RewardAccurateLate
					p.Stats.AccurateLate++
				}
			}
		} else if miss && e.page == page {
			e.sawMiss = true
		}
	}

	// 2. Only misses and first uses of prefetched lines trigger a new
	// decision — the same training gate the stride and GHB baselines
	// use, which keeps a working prefetch stream advancing.
	if !miss && !a.PfHit {
		return
	}
	p.Stats.Triggers++

	// 3. Advance the global delta history, then read the features
	// (the current delta is part of the state).
	var d int32
	if p.haveLast {
		d = clampDelta(line.Delta(p.lastLine))
	}
	p.deltaHist[p.histPos] = d
	p.histPos = (p.histPos + 1) % len(p.deltaHist)
	p.lastLine = line
	p.haveLast = true

	h1 := p.feature1(a.PC)
	h2 := p.feature2(line, d)

	// 4. ε-greedy action selection with deterministic exploration.
	sel := p.argmax(h1, h2)
	x := p.xorshift()
	if x&(1<<p.cfg.EpsilonShift-1) == 0 {
		sel = int32((x >> p.cfg.EpsilonShift) % uint32(p.numActions))
		p.Stats.Explores++
	}

	// 5. Execute: prefetches stay within the trigger's physical page,
	// as in Pythia; a cross-page candidate degenerates to no-prefetch.
	off := int64(p.cfg.Actions[sel])
	cand := line.Add(off)
	issued := off != 0 && uint64(cand)>>pageLineShift == page
	if issued {
		issue(cand)
		p.Stats.Issued++
	}

	// 6. Queue the decision for evaluation, retiring the oldest entry
	// (and its Q-update) when the queue is full.
	if p.eqLen == len(p.eq) {
		p.evictOldest()
	}
	slot := &p.eq[(p.eqHead+p.eqLen)%len(p.eq)]
	slot.line = line
	if issued {
		slot.line = cand
	}
	slot.page = page
	slot.h1 = h1
	slot.h2 = h2
	slot.action = sel
	slot.tick = p.tick
	slot.issued = issued
	slot.rewarded = false
	slot.sawMiss = false
	slot.reward = 0
	p.eqLen++

	if check.Enabled {
		p.checkQueue()
	}
}

// checkQueue verifies the evaluation-queue structural invariants under
// check.Enabled: occupancy within bounds and every entry's action and
// rows within their tables. The full Q-table range scan is amortized
// to every 4096th access — it is O(tables), and every slot write is
// clamped anyway.
func (p *Pythia) checkQueue() {
	check.Assertf(p.eqLen >= 0 && p.eqLen <= len(p.eq),
		"pythia: EQ occupancy %d out of range [0,%d]", p.eqLen, len(p.eq))
	for i := 0; i < p.eqLen; i++ {
		e := &p.eq[(p.eqHead+i)%len(p.eq)]
		check.Assertf(int(e.action) < p.numActions, "pythia: EQ action %d out of range", e.action)
		check.Assertf(int(e.h1) < p.cfg.Feature1Entries && int(e.h2) < p.cfg.Feature2Entries,
			"pythia: EQ rows (%d,%d) out of range", e.h1, e.h2)
	}
	if p.tick&0xFFF != 0 {
		return
	}
	for _, q := range p.q1 {
		check.Assertf(q <= p.qMax && q >= -p.qMax, "pythia: q1 value %d overflows %d bits", q, p.cfg.QBits)
	}
	for _, q := range p.q2 {
		check.Assertf(q <= p.qMax && q >= -p.qMax, "pythia: q2 value %d overflows %d bits", q, p.cfg.QBits)
	}
}

// StorageBits estimates the hardware budget: the two Q-tables at QBits
// per action, the evaluation queue (line tag, two row indexes, action
// index, age/flag byte) and the delta history.
func (p *Pythia) StorageBits() uint64 {
	c := p.cfg
	q := uint64(c.Feature1Entries+c.Feature2Entries) * uint64(p.numActions) * uint64(c.QBits)
	rowBits := mem.Log2(uint64(c.Feature1Entries)) + mem.Log2(uint64(c.Feature2Entries))
	actBits := mem.Log2(uint64(nextPow2(p.numActions)))
	eq := uint64(c.EQSize) * uint64(48+rowBits+actBits+8)
	hist := uint64(c.DeltaHistory) * 8
	return q + eq + hist
}

// Stencil walks through the paper's motivating example (Section II):
// it captures the first iterations of the Parboil stencil's annotated
// inner loop and prints the CBWS vectors (Figure 3) and their constant
// differentials (Figure 4), showing why a single prefetch context can
// cover the whole loop iteration.
package main

import (
	"fmt"
	"log"

	"cbws"
	"cbws/internal/core"
	"cbws/internal/trace"
)

func main() {
	wl, ok := cbws.WorkloadByName("stencil-default")
	if !ok {
		log.Fatal("stencil workload missing")
	}

	// Capture enough of the trace for eight inner-loop iterations.
	tr := trace.Capture(trace.Limit{Gen: wl.Make(), Max: 500})
	sets := core.ExtractCBWS(tr, 0, 16)
	if len(sets) > 8 {
		sets = sets[:8]
	}

	fmt.Println("CBWS vectors of consecutive stencil iterations (line addresses):")
	for i, v := range sets {
		fmt.Printf("  CBWS%d = %v\n", i, v)
	}

	fmt.Println("\nCBWS differentials (element-wise deltas between iterations):")
	for i := 1; i < len(sets); i++ {
		d := core.Differential(sets[i-1], sets[i])
		fmt.Printf("  CBWS%d-CBWS%d = %v\n", i, i-1, d)
	}

	fmt.Println("\nThe differential is the constant plane stride (1024 lines = 64KB):")
	fmt.Println("one vector predicts the complete working set of every pending")
	fmt.Println("iteration — the paper's Figure 4.")
}

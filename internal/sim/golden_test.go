package sim

import (
	"testing"

	"cbws/internal/branch"
	"cbws/internal/cache"
	"cbws/internal/core"
	"cbws/internal/engine"
	"cbws/internal/prefetch"
	"cbws/internal/trace"
	"cbws/internal/workload"
)

// runPerEvent mirrors Run exactly, except the trace is delivered one
// event at a time — the shape of the pre-batching pipeline. Timing
// semantics must not depend on where batch boundaries fall, so both
// paths have to produce identical metrics.
func runPerEvent(cfg Config, wl trace.Generator, pf prefetch.Prefetcher) (Result, error) {
	h, err := cache.NewHierarchy(cfg.Memory)
	if err != nil {
		return Result{}, err
	}
	pf.Reset()
	if eo, ok := pf.(prefetch.EvictionObserver); ok {
		h.OnL1Evict(eo.OnCacheEvict)
	}
	p := newPort(h, pf)
	eng, err := engine.New(cfg.Core, p, p)
	if err != nil {
		return Result{}, err
	}
	if !cfg.IdealBranchPrediction {
		bp, err := branch.New(cfg.Branch)
		if err != nil {
			return Result{}, err
		}
		eng.AttachBranchPredictor(bp)
	}
	sink := &runSink{eng: eng, h: h, warmup: cfg.WarmupInstructions,
		warmed: cfg.WarmupInstructions == 0}
	var gen trace.Generator = wl
	if cfg.MaxInstructions > 0 {
		gen = trace.Limit{Gen: wl, Max: cfg.MaxInstructions}
	}
	trace.Drive(gen, trace.SinkFunc(sink.Consume))
	eng.Finish()
	h.Finish()
	final := takeSnapshot(eng, h)
	m := final.sub(sink.base)
	return Result{Workload: wl.Name(), Prefetcher: pf.Name(), Metrics: m}, nil
}

// TestBatchedRunMatchesPerEventReference is the golden equivalence
// check for the batched pipeline: for a grid of workloads × prefetchers
// the batched Run and the per-event reference must agree on every
// metric, bit for bit.
func TestBatchedRunMatchesPerEventReference(t *testing.T) {
	factories := map[string]func() prefetch.Prefetcher{
		"none":   func() prefetch.Prefetcher { return prefetch.NewNone() },
		"stride": func() prefetch.Prefetcher { return prefetch.NewStride(prefetch.StrideConfig{}) },
		"sms":    func() prefetch.Prefetcher { return prefetch.NewSMS(prefetch.SMSConfig{}) },
		"cbws":   func() prefetch.Prefetcher { return core.New(core.Config{}) },
		"cbws+sms": func() prefetch.Prefetcher {
			return core.NewComposite(core.New(core.Config{}), prefetch.NewSMS(prefetch.SMSConfig{}))
		},
	}
	cfg := DefaultConfig()
	cfg.MaxInstructions = 90_000
	cfg.WarmupInstructions = 25_000
	for _, wlName := range []string{"stencil-default", "histo-large", "462.libquantum-ref", "429.mcf-ref"} {
		spec, ok := workload.ByName(wlName)
		if !ok {
			t.Fatalf("workload %s missing", wlName)
		}
		for pfName, mk := range factories {
			batched, err := Run(cfg, spec.Make(), mk())
			if err != nil {
				t.Fatal(err)
			}
			ref, err := runPerEvent(cfg, spec.Make(), mk())
			if err != nil {
				t.Fatal(err)
			}
			if batched.Metrics != ref.Metrics {
				t.Errorf("%s/%s: batched run diverges from per-event reference\n  batched: %+v\n  per-event: %+v",
					wlName, pfName, batched.Metrics, ref.Metrics)
			}
		}
	}
}

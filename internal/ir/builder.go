package ir

import "fmt"

// Builder assembles Programs with named labels so that kernels read like
// structured code. Branch targets may reference labels defined later;
// they are resolved by Build.
type Builder struct {
	name    string
	instrs  []Instr
	numRegs int
	labels  map[string]int
	fixups  map[int]string // instr index -> unresolved label
}

// NewBuilder starts a program.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int), fixups: make(map[int]string)}
}

// Reg allocates a fresh virtual register.
func (b *Builder) Reg() Reg {
	b.numRegs++
	return Reg(b.numRegs - 1)
}

// Label binds name to the next instruction index.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("ir: duplicate label %q", name))
	}
	b.labels[name] = len(b.instrs)
}

func (b *Builder) emit(in Instr) { b.instrs = append(b.instrs, in) }

func (b *Builder) emitBranch(in Instr, label string) {
	b.fixups[len(b.instrs)] = label
	b.emit(in)
}

// Const emits dst = imm and returns a fresh register holding imm.
func (b *Builder) Const(imm int64) Reg {
	r := b.Reg()
	b.emit(Instr{Op: Const, Dst: r, Imm: imm})
	return r
}

// ConstTo emits dst = imm.
func (b *Builder) ConstTo(dst Reg, imm int64) { b.emit(Instr{Op: Const, Dst: dst, Imm: imm}) }

// Mov emits dst = a.
func (b *Builder) Mov(dst, a Reg) { b.emit(Instr{Op: Mov, Dst: dst, A: a}) }

// Add emits dst = a + b2.
func (b *Builder) Add(dst, a, b2 Reg) { b.emit(Instr{Op: Add, Dst: dst, A: a, B: b2}) }

// AddI emits dst = a + imm.
func (b *Builder) AddI(dst, a Reg, imm int64) { b.emit(Instr{Op: AddI, Dst: dst, A: a, Imm: imm}) }

// Sub emits dst = a - b2.
func (b *Builder) Sub(dst, a, b2 Reg) { b.emit(Instr{Op: Sub, Dst: dst, A: a, B: b2}) }

// Mul emits dst = a * b2.
func (b *Builder) Mul(dst, a, b2 Reg) { b.emit(Instr{Op: Mul, Dst: dst, A: a, B: b2}) }

// MulI emits dst = a * imm.
func (b *Builder) MulI(dst, a Reg, imm int64) { b.emit(Instr{Op: MulI, Dst: dst, A: a, Imm: imm}) }

// Div emits dst = a / b2.
func (b *Builder) Div(dst, a, b2 Reg) { b.emit(Instr{Op: Div, Dst: dst, A: a, B: b2}) }

// Mod emits dst = a % b2.
func (b *Builder) Mod(dst, a, b2 Reg) { b.emit(Instr{Op: Mod, Dst: dst, A: a, B: b2}) }

// And emits dst = a & b2.
func (b *Builder) And(dst, a, b2 Reg) { b.emit(Instr{Op: And, Dst: dst, A: a, B: b2}) }

// Xor emits dst = a ^ b2.
func (b *Builder) Xor(dst, a, b2 Reg) { b.emit(Instr{Op: Xor, Dst: dst, A: a, B: b2}) }

// Shl emits dst = a << b2.
func (b *Builder) Shl(dst, a, b2 Reg) { b.emit(Instr{Op: Shl, Dst: dst, A: a, B: b2}) }

// Shr emits dst = a >> b2.
func (b *Builder) Shr(dst, a, b2 Reg) { b.emit(Instr{Op: Shr, Dst: dst, A: a, B: b2}) }

// CmpLT emits dst = (a < b2).
func (b *Builder) CmpLT(dst, a, b2 Reg) { b.emit(Instr{Op: CmpLT, Dst: dst, A: a, B: b2}) }

// CmpEQ emits dst = (a == b2).
func (b *Builder) CmpEQ(dst, a, b2 Reg) { b.emit(Instr{Op: CmpEQ, Dst: dst, A: a, B: b2}) }

// Load emits dst = memory[a + imm].
func (b *Builder) Load(dst, a Reg, imm int64) { b.emit(Instr{Op: Load, Dst: dst, A: a, Imm: imm}) }

// Store emits memory[a + imm] = v.
func (b *Builder) Store(a Reg, imm int64, v Reg) {
	b.emit(Instr{Op: Store, A: a, Imm: imm, B: v})
}

// Jmp emits an unconditional branch to label.
func (b *Builder) Jmp(label string) { b.emitBranch(Instr{Op: Jmp}, label) }

// BrNZ emits a branch to label taken when cond != 0.
func (b *Builder) BrNZ(cond Reg, label string) { b.emitBranch(Instr{Op: BrNZ, A: cond}, label) }

// BrZ emits a branch to label taken when cond == 0.
func (b *Builder) BrZ(cond Reg, label string) { b.emitBranch(Instr{Op: BrZ, A: cond}, label) }

// Ret emits a return.
func (b *Builder) Ret() { b.emit(Instr{Op: Ret}) }

// Nop emits a no-op (useful as padding to de-tighten a loop in tests).
func (b *Builder) Nop() { b.emit(Instr{Op: Nop}) }

// Build resolves labels and validates the program.
func (b *Builder) Build() (*Program, error) {
	instrs := make([]Instr, len(b.instrs))
	copy(instrs, b.instrs)
	for idx, label := range b.fixups {
		target, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("ir: undefined label %q", label)
		}
		instrs[idx].Target = target
	}
	p := &Program{Name: b.name, Instrs: instrs, NumRegs: b.numRegs}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error, for statically-known kernels.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

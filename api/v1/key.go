package apiv1

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"cbws/internal/harness"
	"cbws/internal/sim"
	"cbws/internal/workload"
)

// KeySchema versions the content-address layout. Bump it whenever the
// canonical key input changes shape, so old cache entries can never
// alias new ones.
const KeySchema = "cbws-job/1"

// JobSpec is the wire description of one simulation job: the workload
// and prefetcher by registry name plus the full system configuration.
// Submitted JSON may state config fields in any order and omit the ones
// it keeps at the Table II defaults; the spec is decoded into this
// struct before hashing, so the content address depends only on the
// effective values.
type JobSpec struct {
	Workload   string     `json:"workload"`
	Prefetcher string     `json:"prefetcher"`
	Config     sim.Config `json:"config"`
	// WorkloadHash is the content address (hex SHA-256) of the packed
	// CBWC corpus backing the workload, when the daemon replays it from
	// a corpus instead of a live generator. It folds the exact trace
	// bytes into the job key: two daemons pointed at byte-identical
	// corpora share cached results, and a corpus change can never serve
	// a stale result. Empty for generator-backed workloads, and omitted
	// from the canonical key bytes then — so generator-backed job keys
	// are unchanged from before the field existed.
	WorkloadHash string `json:"workload_hash,omitempty"`
}

// Key computes the content address of the job under the given code
// version: SHA-256 over the fixed-field-order JSON of (schema, code
// version, workload, prefetcher, config). Two submissions with equal
// effective values get the same key regardless of JSON field ordering;
// any config field change, roster change, or code change produces a
// different key.
func (s JobSpec) Key(codeVersion string) string {
	canonical := struct {
		Schema       string     `json:"schema"`
		CodeVersion  string     `json:"code_version"`
		Workload     string     `json:"workload"`
		Prefetcher   string     `json:"prefetcher"`
		Config       sim.Config `json:"config"`
		WorkloadHash string     `json:"workload_hash,omitempty"`
	}{KeySchema, codeVersion, s.Workload, s.Prefetcher, s.Config, s.WorkloadHash}
	b, err := json.Marshal(canonical)
	if err != nil {
		// Every field is a string or a plain struct of scalars; this
		// cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Validate checks that the spec names a registered workload and
// prefetcher and carries a runnable, bounded configuration. The
// prefetcher miss diagnostic includes the registry's case-insensitive
// "did you mean" suggestion verbatim — it is served to remote callers
// in HTTP 400 bodies.
func (s JobSpec) Validate() error {
	if s.Workload == "" {
		return fmt.Errorf("missing workload name")
	}
	if _, ok := workload.ByName(s.Workload); !ok {
		return fmt.Errorf("unknown workload %q (see /v1/workloads for the roster)", s.Workload)
	}
	if _, err := harness.ResolveFactory(s.Prefetcher); err != nil {
		return err
	}
	if err := s.Config.Validate(); err != nil {
		return err
	}
	if s.Config.MaxInstructions == 0 {
		return fmt.Errorf("config.MaxInstructions must be positive: the service does not run unbounded jobs")
	}
	if s.WorkloadHash != "" {
		if len(s.WorkloadHash) != 64 {
			return fmt.Errorf("workload_hash must be a hex SHA-256 (64 characters), got %d", len(s.WorkloadHash))
		}
		for _, c := range s.WorkloadHash {
			if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
				return fmt.Errorf("workload_hash must be lowercase hex")
			}
		}
	}
	return nil
}

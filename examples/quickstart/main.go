// Quickstart: simulate the Parboil stencil under SMS and under the
// integrated CBWS+SMS prefetcher, and compare the headline metrics —
// the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"cbws"
)

func main() {
	cfg := cbws.DefaultConfig()
	cfg.MaxInstructions = 2_000_000
	cfg.WarmupInstructions = 500_000

	wl, ok := cbws.WorkloadByName("stencil-default")
	if !ok {
		log.Fatal("stencil workload missing")
	}

	for _, pf := range []cbws.Prefetcher{cbws.NewSMS(), cbws.NewCBWSPlusSMS()} {
		res, err := cbws.Run(cfg, wl.Make(), pf)
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		fmt.Printf("%-9s IPC=%.3f  MPKI=%.2f  timely=%.1f%%  mem-traffic=%.1fMB\n",
			res.Prefetcher, m.IPC(), m.MPKI(), 100*m.TimelyFrac(),
			float64(m.BytesFromMem)/(1<<20))
	}
}

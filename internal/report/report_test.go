package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	t.Parallel()
	tab := &Table{
		Title:   "Demo",
		Columns: []string{"name", "value"},
	}
	tab.AddRow("alpha", "1.00")
	tab.AddRow("beta-longer-name", "22.50")
	s := tab.String()
	if !strings.Contains(s, "Demo\n====") {
		t.Errorf("missing title underline:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 6 { // title, underline, header, rule, 2 rows, (trailing blank trimmed)
		t.Errorf("got %d lines:\n%s", len(lines), s)
	}
	// Numeric cells right-align: "1.00" ends at the same column as "22.50".
	rowA := lines[4]
	rowB := lines[5]
	if len(rowA) != len(strings.TrimRight(rowB, " ")) && !strings.HasSuffix(rowA, "1.00") {
		t.Errorf("alignment off:\n%q\n%q", rowA, rowB)
	}
}

func TestTableNoColumns(t *testing.T) {
	t.Parallel()
	tab := &Table{Title: "Bare"}
	tab.AddRow("x", "y")
	s := tab.String()
	if strings.Contains(s, "---") {
		t.Errorf("rule printed without header:\n%s", s)
	}
	if !strings.Contains(s, "x") {
		t.Error("row missing")
	}
}

func TestRaggedRows(t *testing.T) {
	t.Parallel()
	tab := &Table{Columns: []string{"a"}}
	tab.AddRow("1", "2", "3")
	s := tab.String()
	if !strings.Contains(s, "3") {
		t.Errorf("extra cells dropped:\n%s", s)
	}
}

func TestLooksNumeric(t *testing.T) {
	t.Parallel()
	for _, s := range []string{"1.00", "-3.5", "85.1%", "1.16x", "2.25KB", "42"} {
		if !looksNumeric(s) {
			t.Errorf("%q should look numeric", s)
		}
	}
	for _, s := range []string{"", "alpha", "v1.2rc", "n/a"} {
		if looksNumeric(s) {
			t.Errorf("%q should not look numeric", s)
		}
	}
}

func TestFormatters(t *testing.T) {
	t.Parallel()
	if F(1.23456, 2) != "1.23" {
		t.Error("F")
	}
	if Pct(0.905) != "90.5%" {
		t.Error("Pct")
	}
	if Speedup(1.161) != "1.16x" {
		t.Error("Speedup")
	}
}

func TestRenderCSV(t *testing.T) {
	t.Parallel()
	tab := &Table{Title: "T", Columns: []string{"a", "b"}}
	tab.AddRow("x,y", `q"r`)
	var b strings.Builder
	tab.RenderCSV(&b)
	s := b.String()
	for _, want := range []string{"# T\n", "a,b\n", `"x,y"`, `"q""r"`} {
		if !strings.Contains(s, want) {
			t.Errorf("CSV missing %q:\n%s", want, s)
		}
	}
}

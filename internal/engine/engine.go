// Package engine implements the trace-driven out-of-order timing model:
// a W-wide core with an R-entry reorder buffer whose IPC responds to
// memory latency and memory-level parallelism, which is the property a
// prefetcher study needs from its core model.
//
// The model processes the committed instruction stream in program order.
// Each instruction occupies a ROB slot from dispatch to commit; loads
// start their cache access at dispatch and block commit until the data
// returns, so independent misses overlap up to the ROB size and the MSHR
// count — the same first-order behaviour as the paper's gem5 core
// (4-wide, 128-entry ROB, Table II).
//
// Internally the core clock is kept in "slot" units of 1/Width cycles so
// that fetch and commit bandwidth are enforced with integer arithmetic.
package engine

import (
	"fmt"

	"cbws/internal/check"
	"cbws/internal/mem"
	"cbws/internal/trace"
)

// Config describes the core (Table II defaults via DefaultConfig).
type Config struct {
	Width      int // fetch/commit width
	ROBEntries int
	LDQEntries int
	STQEntries int
	// MispredictPenalty is the front-end refill charged per branch
	// misprediction, in cycles. Ignored when no predictor is attached.
	MispredictPenalty uint64
}

// DefaultConfig returns the paper's core: 4-wide, 128-entry ROB,
// 32-entry load and store queues, 15-cycle misprediction refill.
func DefaultConfig() Config {
	return Config{Width: 4, ROBEntries: 128, LDQEntries: 32, STQEntries: 32, MispredictPenalty: 15}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Width <= 0 || c.ROBEntries <= 0 || c.LDQEntries <= 0 || c.STQEntries <= 0 {
		return fmt.Errorf("engine: all structure sizes must be positive, got %+v", c)
	}
	return nil
}

// BranchPredictor is the engine's view of the branch predictor (see
// internal/branch). Update records the outcome and reports whether the
// prediction was correct.
type BranchPredictor interface {
	Update(pc uint64, outcome bool) (correct bool)
}

// MemPort is the engine's view of the memory hierarchy. Load and Store
// are called at dispatch time (cycle now) and return the cycle at which
// the access data is available. Calls are made with monotonically
// non-decreasing now.
type MemPort interface {
	Load(pc uint64, addr mem.Addr, now uint64) (readyAt uint64)
	Store(pc uint64, addr mem.Addr, now uint64) (readyAt uint64)
}

// BlockObserver receives block boundary markers in commit order. The
// prefetcher wrapper implements it; a no-op implementation is used when
// no prefetcher is attached.
type BlockObserver interface {
	BlockBegin(id int)
	BlockEnd(id int)
}

// NopBlocks is a BlockObserver that ignores all markers.
type NopBlocks struct{}

// BlockBegin implements BlockObserver.
func (NopBlocks) BlockBegin(int) {}

// BlockEnd implements BlockObserver.
func (NopBlocks) BlockEnd(int) {}

// Stats holds the engine's outputs.
type Stats struct {
	Instructions uint64
	Cycles       uint64
	Loads        uint64
	Stores       uint64
	Branches     uint64
	Mispredicts  uint64
	Blocks       uint64 // dynamic block (loop iteration) count
	BlockSlots   uint64 // slot-units of runtime spent inside blocks
	TotalSlots   uint64 // slot-units of total runtime
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// LoopResidency returns the fraction of runtime spent inside annotated
// blocks (Figure 1).
func (s Stats) LoopResidency() float64 {
	if s.TotalSlots == 0 {
		return 0
	}
	return float64(s.BlockSlots) / float64(s.TotalSlots)
}

// Engine is the timing model. It implements trace.Sink.
type Engine struct {
	cfg    Config
	memsys MemPort
	blocks BlockObserver
	bp     BranchPredictor // nil: branches always predicted correctly

	width   uint64
	fetchQ  uint64   // fetch clock, in slot units (1 slot = 1/Width cycle)
	commitQ uint64   // commit clock, in slot units
	rob     []uint64 // per-slot cycle at which the previous occupant committed
	robPos  int
	ldq     []uint64 // completion cycles of the last LDQEntries loads
	ldqPos  int
	stq     []uint64
	stqPos  int

	inBlock     bool
	blockStartQ uint64

	Stats Stats
}

// New builds an engine over the given memory port. blocks may be nil.
func New(cfg Config, memsys MemPort, blocks BlockObserver) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if blocks == nil {
		blocks = NopBlocks{}
	}
	return &Engine{
		cfg:    cfg,
		memsys: memsys,
		blocks: blocks,
		width:  uint64(cfg.Width),
		rob:    make([]uint64, cfg.ROBEntries),
		ldq:    make([]uint64, cfg.LDQEntries),
		stq:    make([]uint64, cfg.STQEntries),
	}, nil
}

// AttachBranchPredictor installs bp; a nil predictor means branches are
// always predicted correctly (an ideal front end).
func (e *Engine) AttachBranchPredictor(bp BranchPredictor) { e.bp = bp }

// Consume processes one trace event. It is the per-event compatibility
// entry point; the timing logic lives in ConsumeBatch so the two paths
// cannot diverge.
//
//cbws:hotpath
func (e *Engine) Consume(ev trace.Event) {
	batch := [1]trace.Event{ev}
	e.ConsumeBatch(batch[:])
}

// ConsumeBatch implements trace.BatchSink: it processes a whole batch
// of events with the hot core state (fetch/commit clocks, ROB/LDQ/STQ
// ring positions, counters) hoisted into locals, writing it back once
// per batch. The dispatch and commit sequences are inlined at each
// event kind; they must stay line-for-line equivalent across arms —
// timing results are required to be bit-identical to per-event
// consumption.
//
// The slot-unit clocks are decomposed into (cycle, sub-slot) pairs with
// 0 <= sub < width, i.e. fetchQ = fcyc*width + fsub, so the
// per-instruction path needs no division: dispatch advances the fetch
// clock by one slot with carry and stalls on ROB back-pressure; commit
// retires in order at the commit width (commitQ = max(complete*width,
// commitQ+1), which in decomposed form is a slot increment plus a
// cycle comparison) and frees the ROB slot. ConsumeBatch never
// requests a stop.
//
//cbws:hotpath
func (e *Engine) ConsumeBatch(batch []trace.Event) bool {
	var (
		width  = e.width
		rob    = e.rob
		robPos = e.robPos
		ldq    = e.ldq
		ldqPos = e.ldqPos
		stq    = e.stq
		stqPos = e.stqPos
		st     = e.Stats
		fcyc   = e.fetchQ / width
		fsub   = e.fetchQ % width
		ccyc   = e.commitQ / width
		csub   = e.commitQ % width
	)
	for i := range batch {
		ev := &batch[i]
		switch ev.Kind {
		case trace.Instr:
			n := ev.N
			if n <= 0 {
				n = 1
			}
			for ; n > 0; n-- {
				// dispatch
				fsub++
				if fsub == width {
					fsub = 0
					fcyc++
				}
				enter := fcyc
				if free := rob[robPos]; free > enter {
					enter = free
					fcyc = enter // fetch stalls until the slot frees
					fsub = 0
				}
				// commit(enter + 1)
				csub++
				if csub == width {
					csub = 0
					ccyc++
				}
				if enter+1 > ccyc {
					ccyc = enter + 1
					csub = 0
				}
				rob[robPos] = ccyc
				robPos++
				if robPos == len(rob) {
					robPos = 0
				}
				st.Instructions++
			}
		case trace.Load:
			// dispatch
			fsub++
			if fsub == width {
				fsub = 0
				fcyc++
			}
			enter := fcyc
			if free := rob[robPos]; free > enter {
				enter = free
				fcyc = enter
				fsub = 0
			}
			// LDQ back-pressure: at most LDQEntries loads in flight.
			if free := ldq[ldqPos]; free > enter {
				enter = free
			}
			ready := e.memsys.Load(ev.PC, ev.Addr, enter)
			ldq[ldqPos] = ready
			ldqPos++
			if ldqPos == len(ldq) {
				ldqPos = 0
			}
			// commit(ready)
			csub++
			if csub == width {
				csub = 0
				ccyc++
			}
			if ready > ccyc {
				ccyc = ready
				csub = 0
			}
			rob[robPos] = ccyc
			robPos++
			if robPos == len(rob) {
				robPos = 0
			}
			st.Instructions++
			st.Loads++
		case trace.Store:
			// dispatch
			fsub++
			if fsub == width {
				fsub = 0
				fcyc++
			}
			enter := fcyc
			if free := rob[robPos]; free > enter {
				enter = free
				fcyc = enter
				fsub = 0
			}
			if free := stq[stqPos]; free > enter {
				enter = free
			}
			ready := e.memsys.Store(ev.PC, ev.Addr, enter)
			stq[stqPos] = ready
			stqPos++
			if stqPos == len(stq) {
				stqPos = 0
			}
			// Stores retire through the store buffer without blocking
			// commit on the cache fill: commit(enter + 1).
			csub++
			if csub == width {
				csub = 0
				ccyc++
			}
			if enter+1 > ccyc {
				ccyc = enter + 1
				csub = 0
			}
			rob[robPos] = ccyc
			robPos++
			if robPos == len(rob) {
				robPos = 0
			}
			st.Instructions++
			st.Stores++
		case trace.Branch:
			// dispatch
			fsub++
			if fsub == width {
				fsub = 0
				fcyc++
			}
			enter := fcyc
			if free := rob[robPos]; free > enter {
				enter = free
				fcyc = enter
				fsub = 0
			}
			// commit(enter + 1)
			csub++
			if csub == width {
				csub = 0
				ccyc++
			}
			if enter+1 > ccyc {
				ccyc = enter + 1
				csub = 0
			}
			rob[robPos] = ccyc
			robPos++
			if robPos == len(rob) {
				robPos = 0
			}
			st.Instructions++
			st.Branches++
			if e.bp != nil && !e.bp.Update(ev.PC, ev.Taken) {
				st.Mispredicts++
				// Squash: everything fetched past the branch is discarded,
				// so younger instructions dispatch only after the branch
				// resolves plus the refill penalty. Without operand
				// tracking, the branch's commit time is the resolution
				// estimate — data-dependent branches (the ones that
				// actually mispredict) resolve when their feeding loads
				// complete, which in-order commit approximates.
				// fetchQ = max(fetchQ, commitQ + penalty*width).
				scyc := ccyc + e.cfg.MispredictPenalty
				if scyc > fcyc || (scyc == fcyc && csub > fsub) {
					fcyc = scyc
					fsub = csub
				}
			}
		case trace.BlockBegin:
			// Block markers are real (single-cycle) instructions in the
			// paper's extended ISA.
			// dispatch
			fsub++
			if fsub == width {
				fsub = 0
				fcyc++
			}
			enter := fcyc
			if free := rob[robPos]; free > enter {
				enter = free
				fcyc = enter
				fsub = 0
			}
			// commit(enter + 1)
			csub++
			if csub == width {
				csub = 0
				ccyc++
			}
			if enter+1 > ccyc {
				ccyc = enter + 1
				csub = 0
			}
			rob[robPos] = ccyc
			robPos++
			if robPos == len(rob) {
				robPos = 0
			}
			st.Instructions++
			if !e.inBlock {
				e.inBlock = true
				e.blockStartQ = ccyc*width + csub
			}
			e.blocks.BlockBegin(ev.Block)
		case trace.BlockEnd:
			// dispatch
			fsub++
			if fsub == width {
				fsub = 0
				fcyc++
			}
			enter := fcyc
			if free := rob[robPos]; free > enter {
				enter = free
				fcyc = enter
				fsub = 0
			}
			// commit(enter + 1)
			csub++
			if csub == width {
				csub = 0
				ccyc++
			}
			if enter+1 > ccyc {
				ccyc = enter + 1
				csub = 0
			}
			rob[robPos] = ccyc
			robPos++
			if robPos == len(rob) {
				robPos = 0
			}
			st.Instructions++
			if e.inBlock {
				e.inBlock = false
				st.BlockSlots += ccyc*width + csub - e.blockStartQ
				st.Blocks++
			}
			e.blocks.BlockEnd(ev.Block)
		}
	}
	if check.Enabled {
		check.Assertf(fcyc*width+fsub >= e.fetchQ,
			"engine: fetch clock moved backwards: %d -> %d", e.fetchQ, fcyc*width+fsub)
		check.Assertf(ccyc*width+csub >= e.commitQ,
			"engine: commit clock moved backwards: %d -> %d", e.commitQ, ccyc*width+csub)
	}
	e.fetchQ = fcyc*width + fsub
	e.commitQ = ccyc*width + csub
	e.robPos = robPos
	e.ldqPos = ldqPos
	e.stqPos = stqPos
	e.Stats = st
	if check.Enabled {
		e.checkROBOrder()
	}
	return true
}

// checkROBOrder verifies the ROB's FIFO property: walking the ring in
// dispatch order (oldest slot first, starting at robPos), the recorded
// commit cycles must be non-decreasing, because the engine commits in
// program order. Called once per batch under check.Enabled.
func (e *Engine) checkROBOrder() {
	prev := uint64(0)
	for i := 0; i < len(e.rob); i++ {
		c := e.rob[(e.robPos+i)%len(e.rob)]
		check.Assertf(c >= prev,
			"engine: ROB FIFO order violated at ring offset %d: commit %d after %d", i, c, prev)
		prev = c
	}
}

// ROBOccupancy returns the number of reorder-buffer entries whose
// instruction has dispatched but not yet committed at the current fetch
// point — the in-flight window the next instruction contends with. It
// is an observability accessor (probes sample it every interval); the
// scan over the ROB ring is O(ROBEntries) and stays off the per-event
// hot path.
func (e *Engine) ROBOccupancy() int {
	fcyc := e.fetchQ / e.width
	n := 0
	for _, freeAt := range e.rob {
		if freeAt > fcyc {
			n++
		}
	}
	return n
}

func (e *Engine) Snapshot() Stats {
	s := e.Stats
	s.Cycles = (e.commitQ + e.width - 1) / e.width
	s.TotalSlots = e.commitQ
	if e.inBlock {
		s.BlockSlots += e.commitQ - e.blockStartQ
	}
	return s
}

// Finish settles the clocks and returns the final statistics.
func (e *Engine) Finish() Stats {
	if e.inBlock {
		e.inBlock = false
		e.Stats.BlockSlots += e.commitQ - e.blockStartQ
		e.Stats.Blocks++
	}
	e.Stats.Cycles = (e.commitQ + e.width - 1) / e.width
	e.Stats.TotalSlots = e.commitQ
	return e.Stats
}

// Fuzz targets for the CBWC corpus format. They live outside package
// corpus so they can seed from real workload generators via
// cbws/internal/workload without an import cycle.
package corpus_test

import (
	"bytes"
	"errors"
	"testing"

	"cbws/internal/trace"
	"cbws/internal/trace/corpus"
	"cbws/internal/workload"
)

// encodeStreamPrefix captures the first maxEvents events of a workload
// as a CBWT stream, the interchange format both fuzz targets start
// from.
func encodeStreamPrefix(f *testing.F, name string, maxEvents uint64) []byte {
	f.Helper()
	spec, ok := workload.ByName(name)
	if !ok {
		f.Fatalf("workload %q missing", name)
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, spec.Name)
	if err != nil {
		f.Fatal(err)
	}
	trace.DriveBatches(trace.Limit{Gen: spec.Make(), Max: maxEvents}, w)
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// packBytes encodes events into an in-memory CBWC corpus.
func packBytes(t *testing.T, name string, events []trace.Event, opts corpus.Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := corpus.NewWriter(&buf, name, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !w.ConsumeBatch(events) {
		t.Fatal("corpus writer refused stream-decoded events")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("corpus encode failed: %v", err)
	}
	return buf.Bytes()
}

// replayAll decodes a whole in-memory corpus into a flat event slice.
func replayAll(t *testing.T, data []byte) (string, []trace.Event) {
	t.Helper()
	c, err := corpus.OpenBytes(data)
	if err != nil {
		t.Fatalf("packed corpus rejected: %v", err)
	}
	out := trace.New(c.Name())
	if err := c.NewReplayer().Replay(out); err != nil {
		t.Fatalf("packed corpus failed to replay: %v", err)
	}
	return c.Name(), out.Events
}

// sameEvent compares events up to the shared Instr normalization: both
// codecs encode Count() for Instr events, which maps a raw N of 0 to 1.
func sameEvent(a, b trace.Event) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind == trace.Instr {
		return a.Count() == b.Count()
	}
	return a == b
}

// FuzzCorpusRoundTrip is the corpus-vs-stream differential target.
// Any byte string the CBWT stream decoder accepts defines an event
// stream; packing that stream into a CBWC corpus and replaying it must
// reproduce the stream bit-identically (modulo the Instr N=0→1
// normalization both codecs share), under both the plain and the
// compressed/small-block configurations — and packing twice must
// produce byte-identical corpora, pinning the content-address
// determinism the cbwsd cache keys rely on.
func FuzzCorpusRoundTrip(f *testing.F) {
	for _, name := range []string{"stencil-default", "429.mcf-ref", "radix-simlarge"} {
		f.Add(encodeStreamPrefix(f, name, 4096))
	}
	// Hostile seeds: valid CBWT header with garbage, oversized-field,
	// and tiny bodies.
	f.Add(append([]byte("CBWT\x01\x04fuzz"), 0x03, 0xFF, 0xFF, 0xFF))
	f.Add(append([]byte("CBWT\x01\x04fuzz"), 0x00, 0x01))
	f.Add([]byte("CBWT\x01\x04fuzz"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := trace.NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		first := trace.New(r.Name())
		if err := r.Decode(first); err != nil {
			return // stream rejected: nothing to pack
		}
		for _, opts := range []corpus.Options{
			{},
			{BlockEvents: 64, Compress: true},
		} {
			packed := packBytes(t, first.Name(), first.Events, opts)
			again := packBytes(t, first.Name(), first.Events, opts)
			if !bytes.Equal(packed, again) {
				t.Fatalf("pack is nondeterministic under %+v", opts)
			}
			name, events := replayAll(t, packed)
			if name != first.Name() {
				t.Fatalf("name diverged: %q != %q", name, first.Name())
			}
			if len(events) != len(first.Events) {
				t.Fatalf("event count diverged under %+v: %d != %d", opts, len(events), len(first.Events))
			}
			for i := range events {
				if !sameEvent(first.Events[i], events[i]) {
					t.Fatalf("event %d diverged under %+v: %+v != %+v", i, opts, first.Events[i], events[i])
				}
			}
		}
	})
}

// FuzzCorpusParse throws arbitrary bytes at the corpus reader: parsing
// plus a full replay must never panic, must fail with ErrBadCorpus (not
// some other error) when they fail, and whatever events a successful
// replay yields must respect the field bounds the decoder promises.
func FuzzCorpusParse(f *testing.F) {
	stream := encodeStreamPrefix(f, "stencil-default", 2048)
	r, err := trace.NewReader(bytes.NewReader(stream))
	if err != nil {
		f.Fatal(err)
	}
	tr := trace.New(r.Name())
	if err := r.Decode(tr); err != nil {
		f.Fatal(err)
	}
	for _, opts := range []corpus.Options{{}, {BlockEvents: 128, Compress: true}} {
		var buf bytes.Buffer
		w, werr := corpus.NewWriter(&buf, tr.Name(), opts)
		if werr != nil {
			f.Fatal(werr)
		}
		w.ConsumeBatch(tr.Events)
		if werr := w.Close(); werr != nil {
			f.Fatal(werr)
		}
		seed := buf.Bytes()
		f.Add(seed)
		// A few deterministic corruptions so the fuzzer starts inside
		// interesting validation branches, not just at the magic check.
		for _, off := range []int{4, 8, len(seed) / 2, len(seed) - 20} {
			mut := bytes.Clone(seed)
			mut[off] ^= 0xFF
			f.Add(mut)
		}
		f.Add(seed[:len(seed)-1])
	}
	f.Add([]byte("CBWC"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := corpus.OpenBytes(data)
		if err != nil {
			if !errors.Is(err, corpus.ErrBadCorpus) {
				t.Fatalf("parse failed with foreign error: %v", err)
			}
			return
		}
		out := trace.New(c.Name())
		if err := c.NewReplayer().Replay(out); err != nil {
			if !errors.Is(err, corpus.ErrBadCorpus) {
				t.Fatalf("replay failed with foreign error: %v", err)
			}
			return
		}
		if uint64(len(out.Events)) != c.Events() {
			t.Fatalf("replay yielded %d events, index promised %d", len(out.Events), c.Events())
		}
		for i, e := range out.Events {
			if e.N > trace.MaxInstrCount {
				t.Fatalf("event %d: replayed Instr count %d exceeds cap", i, e.N)
			}
			if e.Block < 0 || e.Block > trace.MaxBlockID {
				t.Fatalf("event %d: replayed block ID %d out of range", i, e.Block)
			}
		}
	})
}

package golifecycle

func suppressedDetached() {
	//lint:ignore cbws/golifecycle fixture: detached by documented design
	go work()
}

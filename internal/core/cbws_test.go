package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cbws/internal/mem"
	"cbws/internal/trace"
)

// tableITrace builds the exact access trace of the paper's Table I.
func tableITrace() *trace.Trace {
	tr := trace.New("table1")
	emit := func(addrs []uint64) {
		tr.Consume(trace.Event{Kind: trace.BlockBegin, Block: 0})
		for i, a := range addrs {
			kind := trace.Load
			tr.Consume(trace.Event{Kind: kind, PC: uint64(0x100 + 4*i), Addr: mem.Addr(a)})
		}
		tr.Consume(trace.Event{Kind: trace.BlockEnd, Block: 0})
	}
	emit([]uint64{0x4800, 0x4804, 0xFE50, 0x481C, 0xFE50, 0x7FE0, 0x7FE0})
	emit([]uint64{0x4900, 0x4904, 0xFC50, 0x491C, 0x7FE0})
	return tr
}

// TestTableIConstruction reproduces the paper's Table I: CBWS0 =
// (120, 3F9, 1FF), CBWS1 = (124, 3F1, 1FF), Δ0,1 = (4, -8, 0).
func TestTableIConstruction(t *testing.T) {
	sets := ExtractCBWS(tableITrace(), 0, 16)
	if len(sets) != 2 {
		t.Fatalf("extracted %d CBWSs, want 2", len(sets))
	}
	want0 := Vector{0x120, 0x3F9, 0x1FF}
	want1 := Vector{0x124, 0x3F1, 0x1FF}
	for i, w := range []Vector{want0, want1} {
		if len(sets[i]) != len(w) {
			t.Fatalf("CBWS%d = %v, want %v", i, sets[i], w)
		}
		for j := range w {
			if sets[i][j] != w[j] {
				t.Errorf("CBWS%d[%d] = %#x, want %#x", i, j, uint64(sets[i][j]), uint64(w[j]))
			}
		}
	}
	d := Differential(sets[0], sets[1])
	wantD := Diff{4, -8, 0}
	if !d.Equal(wantD) {
		t.Errorf("differential = %v, want %v", d, wantD)
	}
}

func TestExtractRespectsMaxVec(t *testing.T) {
	tr := trace.New("big")
	tr.Consume(trace.Event{Kind: trace.BlockBegin, Block: 0})
	for i := 0; i < 40; i++ {
		tr.Consume(trace.Event{Kind: trace.Load, PC: 1, Addr: mem.Addr(i * 64)})
	}
	tr.Consume(trace.Event{Kind: trace.BlockEnd, Block: 0})
	sets := ExtractCBWS(tr, 0, 16)
	if len(sets) != 1 || len(sets[0]) != 16 {
		t.Fatalf("got %d sets, first len %d; want 1 set of 16", len(sets), len(sets[0]))
	}
}

func TestExtractFiltersBlockID(t *testing.T) {
	tr := trace.New("mixed")
	for id := 0; id < 3; id++ {
		tr.Consume(trace.Event{Kind: trace.BlockBegin, Block: id})
		tr.Consume(trace.Event{Kind: trace.Load, PC: 1, Addr: mem.Addr(id * 4096)})
		tr.Consume(trace.Event{Kind: trace.BlockEnd, Block: id})
	}
	sets := ExtractCBWS(tr, 1, 16)
	if len(sets) != 1 || sets[0][0] != mem.LineOf(4096) {
		t.Fatalf("sets = %v", sets)
	}
}

func TestExtractDedupsWithinBlock(t *testing.T) {
	tr := trace.New("dedup")
	tr.Consume(trace.Event{Kind: trace.BlockBegin, Block: 0})
	for i := 0; i < 10; i++ {
		tr.Consume(trace.Event{Kind: trace.Load, PC: 1, Addr: mem.Addr((i % 2) * 64)})
	}
	tr.Consume(trace.Event{Kind: trace.BlockEnd, Block: 0})
	sets := ExtractCBWS(tr, 0, 16)
	if len(sets[0]) != 2 {
		t.Errorf("CBWS = %v, want 2 unique lines", sets[0])
	}
}

func TestDifferentialTruncatesToShorter(t *testing.T) {
	a := Vector{10, 20, 30, 40}
	b := Vector{11, 22}
	d := Differential(a, b)
	if !d.Equal(Diff{1, 2}) {
		t.Errorf("d = %v", d)
	}
	d = Differential(b, a)
	if !d.Equal(Diff{-1, -2}) {
		t.Errorf("d = %v", d)
	}
}

func TestApplyPredictsFuture(t *testing.T) {
	a := Vector{100, 200, 300}
	d := Diff{5, -3, 0}
	got := d.Apply(a)
	want := Vector{105, 197, 300}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Apply = %v, want %v", got, want)
		}
	}
}

// TestDifferentialApplyInverse checks the algebra the predictor relies
// on: Apply(Differential(a,b), a) == b (up to truncation).
func TestDifferentialApplyInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		a := make(Vector, n)
		b := make(Vector, n)
		for i := range a {
			a[i] = mem.LineAddr(rng.Uint64() >> 16)
			b[i] = a[i].Add(int64(rng.Intn(1<<20)) - 1<<19)
		}
		got := Differential(a, b).Apply(a)
		if len(got) != n {
			return false
		}
		for i := range b {
			if got[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDifferentialComposition checks multi-step consistency:
// Δ(a→c) == Δ(a→b) + Δ(b→c) element-wise.
func TestDifferentialComposition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		mk := func() Vector {
			v := make(Vector, n)
			for i := range v {
				v[i] = mem.LineAddr(rng.Uint64() >> 20)
			}
			return v
		}
		a, b, c := mk(), mk(), mk()
		ab := Differential(a, b)
		bc := Differential(b, c)
		ac := Differential(a, c)
		for i := 0; i < n; i++ {
			if ac[i] != ab[i]+bc[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorContains(t *testing.T) {
	v := Vector{1, 2, 3}
	if !v.Contains(2) || v.Contains(9) {
		t.Error("Contains wrong")
	}
}

func TestDiffStrings(t *testing.T) {
	if s := (Diff{1, -8, 0}).String(); s != "( 1, -8, 0 )" {
		t.Errorf("Diff.String = %q", s)
	}
	if s := (Vector{80, 81}).String(); s != "( 80, 81 )" {
		t.Errorf("Vector.String = %q", s)
	}
}

package cbws_test

import (
	"context"
	"errors"
	"testing"

	"cbws"
)

func TestFacadeQuickstart(t *testing.T) {
	cfg := cbws.DefaultConfig()
	cfg.MaxInstructions = 200_000
	cfg.WarmupInstructions = 50_000

	wl, ok := cbws.WorkloadByName("stencil-default")
	if !ok {
		t.Fatal("stencil workload missing")
	}
	res, err := cbws.Run(cfg, wl.Make(), cbws.NewCBWSPlusSMS())
	if err != nil {
		t.Fatal(err)
	}
	if res.Prefetcher != "cbws+sms" || res.Metrics.IPC() <= 0 {
		t.Errorf("result: %+v", res)
	}
}

func TestFacadePrefetcherConstructors(t *testing.T) {
	names := map[string]cbws.Prefetcher{
		"none":      cbws.NewNone(),
		"stride":    cbws.NewStride(),
		"ghb-pc/dc": cbws.NewGHBPCDC(),
		"ghb-g/dc":  cbws.NewGHBGDC(),
		"sms":       cbws.NewSMS(),
		"cbws":      cbws.NewCBWS(cbws.CBWSConfig{}),
		"cbws+sms":  cbws.NewCBWSPlusSMS(),
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("constructor for %q builds %q", want, p.Name())
		}
	}
}

func TestFacadeWorkloadRosters(t *testing.T) {
	if len(cbws.Workloads()) != 30 {
		t.Errorf("workloads = %d", len(cbws.Workloads()))
	}
	if len(cbws.MemoryIntensiveWorkloads()) != 15 {
		t.Errorf("MI workloads = %d", len(cbws.MemoryIntensiveWorkloads()))
	}
	if _, ok := cbws.WorkloadByName("429.mcf-ref"); !ok {
		t.Error("mcf missing")
	}
	if _, ok := cbws.WorkloadByName("nope"); ok {
		t.Error("bogus lookup succeeded")
	}
}

func TestFacadeCBWSStorageBudget(t *testing.T) {
	p := cbws.NewCBWS(cbws.CBWSConfig{})
	if bits := p.StorageBits(); bits >= 8*1024 {
		t.Errorf("CBWS storage = %d bits, must stay under 1KB", bits)
	}
}

func TestFacadeRegistry(t *testing.T) {
	names := cbws.Prefetchers()
	if len(names) < 7 {
		t.Fatalf("Prefetchers() lists %d schemes, want at least the evaluated 7", len(names))
	}
	for _, name := range names {
		p, err := cbws.NewPrefetcher(name)
		if err != nil {
			t.Fatalf("NewPrefetcher(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("NewPrefetcher(%q) builds %q", name, p.Name())
		}
	}
	if _, err := cbws.NewPrefetcher("bogus"); err == nil {
		t.Error("NewPrefetcher(bogus) should fail")
	}
}

func TestFacadeRunContextWithProbe(t *testing.T) {
	cfg := cbws.DefaultConfig()
	cfg.MaxInstructions = 200_000
	cfg.WarmupInstructions = 50_000

	wl, _ := cbws.WorkloadByName("stencil-default")
	pf, err := cbws.NewPrefetcher("cbws+sms")
	if err != nil {
		t.Fatal(err)
	}
	series := cbws.NewTimeSeries(8)
	res, err := cbws.RunContext(context.Background(), cfg, wl.Make(), pf,
		cbws.WithProbe(series), cbws.WithSampleInterval(50_000))
	if err != nil {
		t.Fatal(err)
	}
	final, ok := series.Final()
	if !ok {
		t.Fatal("no final sample")
	}
	if final != res.Metrics {
		t.Errorf("probe final snapshot diverges from Result.Metrics")
	}
	if series.Len() == 0 {
		t.Error("empty series")
	}
}

func TestFacadeRunContextCancelled(t *testing.T) {
	cfg := cbws.DefaultConfig()
	cfg.MaxInstructions = 200_000
	wl, _ := cbws.WorkloadByName("stencil-default")
	pf, _ := cbws.NewPrefetcher("none")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cbws.RunContext(ctx, cfg, wl.Make(), pf); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

var testWorkers = []string{"http://a:1", "http://b:2", "http://c:3"}

func mustRing(t *testing.T, workers []string) *Ring {
	t.Helper()
	r, err := NewRing(workers, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRingPinnedAssignments pins concrete key→worker routes. The ring
// is part of the fleet contract: every client (cbwsctl, cbwsload, the
// peer-fetch path) must derive the identical assignment from the same
// member list, across platforms and releases, or routing locality and
// failover order silently degrade. Any change to the hash is a
// topology migration and must be deliberate.
func TestRingPinnedAssignments(t *testing.T) {
	ring := mustRing(t, testWorkers)
	want := map[string]string{
		"alpha":   "http://b:2",
		"bravo":   "http://b:2",
		"charlie": "http://b:2",
		"delta":   "http://a:1",
		"echo":    "http://c:3",
		"foxtrot": "http://a:1",
	}
	for key, owner := range want {
		if got := ring.Owner(key); got != owner {
			t.Errorf("Owner(%q) = %q, want %q", key, got, owner)
		}
	}
	wantSeq := map[string][]string{
		"alpha": {"http://b:2", "http://a:1", "http://c:3"},
		"echo":  {"http://c:3", "http://a:1", "http://b:2"},
	}
	for key, seq := range wantSeq {
		if got := ring.Sequence(key); !reflect.DeepEqual(got, seq) {
			t.Errorf("Sequence(%q) = %v, want %v", key, got, seq)
		}
	}
}

// TestRingOrderIndependent checks every client derives the same ring
// regardless of how its -server list happens to be ordered.
func TestRingOrderIndependent(t *testing.T) {
	a := mustRing(t, []string{"http://a:1", "http://b:2", "http://c:3"})
	b := mustRing(t, []string{"http://c:3", "http://a:1", "http://b:2"})
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("member-list order changed Owner(%q): %q vs %q", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingStabilityOnLeave pins the consistent-hashing property the
// whole design rests on: when a worker leaves, ONLY the keys it owned
// move. Any key owned by a survivor keeps its owner exactly, so a
// failover reshuffles nothing but the dead worker's share.
func TestRingStabilityOnLeave(t *testing.T) {
	full := mustRing(t, testWorkers)
	without := mustRing(t, []string{"http://a:1", "http://c:3"})
	const keys = 20000
	orphaned := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		was := full.Owner(key)
		now := without.Owner(key)
		if was == "http://b:2" {
			orphaned++
			continue // b's keys must move somewhere, by definition
		}
		if was != now {
			t.Fatalf("key %q owned by surviving %q moved to %q when b left", key, was, now)
		}
	}
	// b owned roughly a third of the space; far outside that and the
	// vnode spread is broken.
	if orphaned < keys/5 || orphaned > keys/2 {
		t.Fatalf("departed worker owned %d/%d keys; spread broken", orphaned, keys)
	}
}

// TestRingStabilityOnJoin is the dual: a joining worker takes over
// roughly its fair share, and every key it does not take keeps its
// owner.
func TestRingStabilityOnJoin(t *testing.T) {
	three := mustRing(t, testWorkers)
	four := mustRing(t, append(append([]string(nil), testWorkers...), "http://d:4"))
	const keys = 20000
	taken := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		was, now := three.Owner(key), four.Owner(key)
		if now == "http://d:4" {
			taken++
			continue
		}
		if was != now {
			t.Fatalf("key %q moved %q → %q on join without going to the joiner", key, was, now)
		}
	}
	// Fair share is 1/4; accept a generous band around it.
	if taken < keys/8 || taken > keys*3/8 {
		t.Fatalf("joiner took %d/%d keys, want ≈%d", taken, keys, keys/4)
	}
}

// TestRingSpread checks the vnode count keeps worker load within a
// sane band of uniform — the raw-FNV regression this package once had
// skewed 2–10x.
func TestRingSpread(t *testing.T) {
	ring := mustRing(t, testWorkers)
	const keys = 30000
	count := map[string]int{}
	for i := 0; i < keys; i++ {
		count[ring.Owner(fmt.Sprintf("key-%d", i))]++
	}
	fair := keys / len(testWorkers)
	for w, n := range count {
		if n < fair*7/10 || n > fair*13/10 {
			t.Errorf("worker %s owns %d keys, want within 30%% of %d", w, n, fair)
		}
	}
}

// TestRingSequenceProperties checks Sequence is a permutation of the
// fleet starting at the owner, for every key.
func TestRingSequenceProperties(t *testing.T) {
	ring := mustRing(t, testWorkers)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		seq := ring.Sequence(key)
		if len(seq) != len(testWorkers) {
			t.Fatalf("Sequence(%q) has %d entries, want %d", key, len(seq), len(testWorkers))
		}
		if seq[0] != ring.Owner(key) {
			t.Fatalf("Sequence(%q) starts at %q, not owner %q", key, seq[0], ring.Owner(key))
		}
		seen := map[string]bool{}
		for _, w := range seq {
			if seen[w] {
				t.Fatalf("Sequence(%q) repeats %q", key, w)
			}
			seen[w] = true
		}
	}
}

func TestRingRejectsBadInput(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty worker list accepted")
	}
	if _, err := NewRing([]string{"http://a:1", "http://a:1"}, 0); err == nil {
		t.Error("duplicate worker accepted")
	}
}

func TestRingSingleWorker(t *testing.T) {
	ring := mustRing(t, []string{"http://only:1"})
	if ring.Owner("anything") != "http://only:1" {
		t.Fatal("single-worker ring must own everything")
	}
	if got := ring.Sequence("anything"); len(got) != 1 || got[0] != "http://only:1" {
		t.Fatalf("Sequence = %v", got)
	}
}

// Command cbwslint runs the repo's custom analyzer suite (see
// internal/lint: hotpathalloc, determinism, checkguard, batchalias,
// guardedby, golifecycle, wirecompat, atomicdiscipline) over the named
// packages.
//
// Usage:
//
//	cbwslint [-tags taglist] [-analyzers a,b] [-json] [-list] packages...
//	cbwslint -write-compat [-compat-bump note] ./api/v1
//
// Run it on both build variants, because the cbwscheck-tagged files
// only load under -tags cbwscheck:
//
//	cbwslint ./...
//	cbwslint -tags cbwscheck ./...
//
// -json prints findings as a machine-readable array instead of the
// human "file:line:col: message (cbws/analyzer)" lines; the exit
// status is unchanged. -write-compat regenerates the wirecompat
// manifest (compat.json) for exactly one package; when the rewrite is
// breaking relative to the committed manifest it refuses unless
// -compat-bump supplies the CompatVersion note.
//
// Exit status follows the repo convention: 0 clean, 1 findings or a
// load/analysis failure, 2 usage error. A finding is silenced in place
// with
//
//	//lint:ignore cbws/<analyzer> <reason>
//
// on (or immediately above) the flagged line — the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cbws/internal/cli"
	"cbws/internal/lint"
	"cbws/internal/lint/analysis"
)

func main() {
	cli.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the -json wire form of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// run is main with the process edges (args, streams, exit) abstracted
// so tests can drive every exit path.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cbwslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tags := fs.String("tags", "", "build tags to load packages with (e.g. cbwscheck)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	fix := fs.Bool("fix", false, "apply suggested fixes (reserved: no analyzer emits fixes yet)")
	names := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	writeCompat := fs.Bool("write-compat", false, "regenerate the wirecompat manifest for one package and exit")
	compatBump := fs.String("compat-bump", "", "CompatVersion note for a breaking -write-compat rewrite")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: cbwslint [-tags taglist] [-analyzers a,b] [-json] [-list] packages...")
		fmt.Fprintln(stderr, "       cbwslint -write-compat [-compat-bump note] package")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "cbws/%s: %s\n", a.Name, a.Doc)
		}
		return cli.ExitOK
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return cli.ExitUsage
	}

	analyzers := lint.Analyzers()
	if *names != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*names, ",") {
			a, ok := lint.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(stderr, "cbwslint: unknown analyzer %q (see -list)\n", name)
				return cli.ExitUsage
			}
			analyzers = append(analyzers, a)
		}
	}
	_ = fix // reserved for future analyzers with suggested fixes

	pkgs, err := analysis.Load(".", *tags, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "cbwslint: %v\n", err)
		return cli.ExitFail
	}
	if *writeCompat {
		return runWriteCompat(pkgs, *compatBump, stdout, stderr)
	}
	module := ""
	for _, p := range pkgs {
		if p.Module != "" {
			module = p.Module
			break
		}
	}
	diags, err := analysis.Run(analyzers, pkgs, module)
	if err != nil {
		fmt.Fprintf(stderr, "cbwslint: %v\n", err)
		return cli.ExitFail
	}
	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: "cbws/" + d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "cbwslint: %v\n", err)
			return cli.ExitFail
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "cbwslint: %d findings\n", len(diags))
		return cli.ExitFail
	}
	return cli.ExitOK
}

// runWriteCompat regenerates compat.json for exactly one package.
// Rewrites that are breaking relative to the committed manifest bump
// CompatVersion and require a -compat-bump note; additive rewrites
// keep the version.
func runWriteCompat(pkgs []*analysis.Package, bumpNote string, stdout, stderr io.Writer) int {
	if len(pkgs) != 1 {
		fmt.Fprintf(stderr, "cbwslint: -write-compat needs exactly one package, got %d\n", len(pkgs))
		return cli.ExitUsage
	}
	pkg := pkgs[0]
	cur := lint.BuildWireManifest(pkg.Files, pkg.Types, pkg.TypesInfo)
	cur.CompatVersion, cur.Note = 1, "initial freeze"

	path := filepath.Join(pkg.Dir, lint.WireCompatManifestName)
	if data, err := os.ReadFile(path); err == nil {
		var old lint.WireManifest
		if err := json.Unmarshal(data, &old); err != nil {
			fmt.Fprintf(stderr, "cbwslint: unreadable %s: %v\n", path, err)
			return cli.ExitFail
		}
		cur.CompatVersion, cur.Note = old.CompatVersion, old.Note
		probe := *cur // content with old version/note, for the diff
		breaking := false
		for _, it := range lint.DiffWireManifests(&old, &probe) {
			if it.Breaking {
				breaking = true
				fmt.Fprintf(stdout, "breaking: %s\n", it.Msg)
			}
		}
		if breaking {
			if bumpNote == "" {
				fmt.Fprintf(stderr, "cbwslint: breaking wire changes need -compat-bump \"<note>\"\n")
				return cli.ExitFail
			}
			cur.CompatVersion, cur.Note = old.CompatVersion+1, bumpNote
		} else if bumpNote != "" {
			cur.CompatVersion, cur.Note = old.CompatVersion+1, bumpNote
		}
	} else if bumpNote != "" {
		cur.Note = bumpNote
	}

	out, err := lint.EncodeWireManifest(cur)
	if err != nil {
		fmt.Fprintf(stderr, "cbwslint: %v\n", err)
		return cli.ExitFail
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintf(stderr, "cbwslint: %v\n", err)
		return cli.ExitFail
	}
	fmt.Fprintf(stdout, "cbwslint: wrote %s (compat_version %d)\n", path, cur.CompatVersion)
	return cli.ExitOK
}

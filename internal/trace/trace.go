// Package trace defines the committed-instruction event stream that the
// timing model consumes and that workloads (or the IR interpreter)
// produce.
//
// The stream corresponds to the in-order commit stage of the simulated
// core: the CBWS prefetcher, like the paper's hardware, observes memory
// accesses in program order together with the BLOCK_BEGIN / BLOCK_END
// marker instructions inserted by the annotation pass.
package trace

import (
	"fmt"

	"cbws/internal/mem"
)

// Kind classifies a trace event.
type Kind uint8

const (
	// Instr is a batch of non-memory instructions (ALU, branch, ...).
	// N carries the batch size.
	Instr Kind = iota
	// Load is a memory read by the instruction at PC from Addr.
	Load
	// Store is a memory write by the instruction at PC to Addr.
	Store
	// BlockBegin marks the start of an annotated code block (a tight
	// loop iteration). Block carries the static block ID.
	BlockBegin
	// BlockEnd marks the end of an annotated code block.
	BlockEnd
	// Branch is a conditional branch at PC whose outcome is Taken. The
	// engine consults the branch predictor and charges a refill
	// penalty on mispredictions.
	Branch
)

func (k Kind) String() string {
	switch k {
	case Instr:
		return "instr"
	case Load:
		return "load"
	case Store:
		return "store"
	case BlockBegin:
		return "block_begin"
	case BlockEnd:
		return "block_end"
	case Branch:
		return "branch"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Field bounds shared by every trace codec (the CBWT stream and the
// CBWC corpus format). The caps fit comfortably in an int32, so decoded
// events are well-formed on 32-bit builds too; a decoder finding a
// field beyond its cap rejects the input as malformed instead of
// truncating it into a garbage event.
const (
	// MaxInstrCount bounds Instr.N, the dynamic instruction count a
	// single batch event may carry.
	MaxInstrCount = 1 << 30
	// MaxBlockID bounds the static block ID of BlockBegin/BlockEnd
	// events.
	MaxBlockID = 1 << 30
)

// Event is one element of the committed instruction stream.
type Event struct {
	Kind  Kind
	PC    uint64   // static instruction address (Load/Store/Branch)
	Addr  mem.Addr // effective byte address (Load/Store)
	Block int      // static block ID (BlockBegin/BlockEnd)
	N     int      // batch size (Instr); 0 means 1
	Taken bool     // branch outcome (Branch)
}

// Count returns the number of dynamic instructions the event represents.
//
//cbws:hotpath
func (e Event) Count() int {
	if e.Kind == Instr {
		if e.N <= 0 {
			return 1
		}
		return e.N
	}
	return 1
}

// IsMem reports whether the event is a memory access.
func (e Event) IsMem() bool { return e.Kind == Load || e.Kind == Store }

func (e Event) String() string {
	switch e.Kind {
	case Instr:
		return fmt.Sprintf("instr x%d", e.Count())
	case Load:
		return fmt.Sprintf("load pc=%#x addr=%#x", e.PC, uint64(e.Addr))
	case Store:
		return fmt.Sprintf("store pc=%#x addr=%#x", e.PC, uint64(e.Addr))
	case BlockBegin:
		return fmt.Sprintf("block_begin id=%d", e.Block)
	case BlockEnd:
		return fmt.Sprintf("block_end id=%d", e.Block)
	case Branch:
		return fmt.Sprintf("branch pc=%#x taken=%v", e.PC, e.Taken)
	}
	return "event(?)"
}

// Sink consumes trace events. The timing model and the statistics
// collectors implement Sink.
type Sink interface {
	Consume(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Consume calls f(e).
func (f SinkFunc) Consume(e Event) { f(e) }

// BatchSink is the high-throughput event consumer: one virtual call
// delivers a whole slice of events. The batch is only valid for the
// duration of the call — producers reuse the backing array — so
// implementations must not retain it. The return value is a cooperative
// stop signal: false means the consumer wants no further events (its
// budget is exhausted) and the producer should wind down.
type BatchSink interface {
	ConsumeBatch(batch []Event) (more bool)
}

// perEventSink adapts a plain Sink to BatchSink by replaying the batch
// one event at a time. It never requests a stop.
type perEventSink struct{ s Sink }

func (p perEventSink) ConsumeBatch(batch []Event) bool {
	for i := range batch {
		p.s.Consume(batch[i])
	}
	return true
}

// AsBatchSink returns s itself when it already implements BatchSink and
// otherwise wraps it in a per-event replay adapter, so batch producers
// can feed legacy sinks without a special case.
func AsBatchSink(s Sink) BatchSink {
	if bs, ok := s.(BatchSink); ok {
		return bs
	}
	return perEventSink{s}
}

// batchSize is the producer-side buffer length. 256 events (~10KB) is
// large enough to amortize the per-batch virtual call and small enough
// to stay resident in L1d while the consumer walks it.
const batchSize = 256

// Batcher accumulates events into a reusable buffer and hands full
// buffers to a BatchSink. It is the producer half of the batched
// pipeline: generators allocate one Batcher per run and emit through it
// with no further allocation.
//
// Batcher also implements Sink for convenience; events pushed after the
// consumer has stopped are discarded.
type Batcher struct {
	sink BatchSink
	// n is the buffer fill level. Once the consumer stops, n is pinned
	// at batchSize so Event's single range test routes both the
	// buffer-full and the stopped case to eventSlow.
	n       int
	stopped bool
	buf     [batchSize]Event
}

// NewBatcher returns a Batcher feeding sink.
func NewBatcher(sink BatchSink) *Batcher {
	return &Batcher{sink: sink}
}

// Event appends e to the current batch, flushing when the buffer fills.
// It returns false once the consumer has asked for no more events;
// producers should stop generating then. The running case — room in the
// buffer, consumer still live — is kept small enough to inline into the
// generator loops; the full/stopped cases go through eventSlow.
func (b *Batcher) Event(e Event) bool {
	n := b.n
	if uint(n) >= batchSize {
		return b.eventSlow(e)
	}
	b.buf[n] = e
	b.n = n + 1
	return true
}

// eventSlow handles the buffer-full and consumer-stopped cases: it
// flushes the pending batch, then starts the next one with e. Compared
// to flushing eagerly on the fill-completing event, the stop signal is
// observed one event later; that event is discarded, never delivered,
// so consumers see an identical stream.
//
//cbws:hotpath
//go:noinline
func (b *Batcher) eventSlow(e Event) bool {
	if b.stopped {
		return false
	}
	if !b.Flush() {
		return false
	}
	b.buf[0] = e
	b.n = 1
	return true
}

// Flush delivers any buffered events. It returns false once the
// consumer has stopped.
//
//cbws:hotpath
func (b *Batcher) Flush() bool {
	if b.stopped {
		return false
	}
	if b.n > 0 {
		more := b.sink.ConsumeBatch(b.buf[:b.n])
		b.n = 0
		if !more {
			b.stopped = true
			b.n = batchSize // pin: route future Events to eventSlow
			return false
		}
	}
	return true
}

// Stopped reports whether the consumer has requested a stop.
func (b *Batcher) Stopped() bool { return b.stopped }

// Consume implements Sink.
func (b *Batcher) Consume(e Event) { b.Event(e) }

// Generator produces a trace by pushing events into a Sink. Workloads
// implement Generator; producing events by callback avoids materializing
// billion-event traces.
type Generator interface {
	// Name identifies the workload (used in reports).
	Name() string
	// Generate pushes the complete event stream into sink.
	Generate(sink Sink)
}

// BatchGenerator is the batched counterpart of Generator: the producer
// emits into reusable event buffers (usually via a Batcher) and honors
// the sink's cooperative stop signal. All in-repo generators implement
// it; Drive and DriveBatches select the fast path automatically.
type BatchGenerator interface {
	Generator
	// GenerateBatches pushes the event stream into sink in batches,
	// stopping early once the sink returns more == false.
	GenerateBatches(sink BatchSink)
}

// Drive feeds g's events into sink, taking the batched fast path when
// the generator supports it. Use it instead of g.Generate(sink) so that
// callers benefit from batching without caring which kind of generator
// they hold.
func Drive(g Generator, sink Sink) {
	if bg, ok := g.(BatchGenerator); ok {
		bg.GenerateBatches(AsBatchSink(sink))
		return
	}
	g.Generate(sink)
}

// DriveBatches feeds g's events into a batch sink. Plain generators are
// adapted through a Batcher; events they produce after the sink stops
// are discarded (a push generator offers no way to interrupt it).
func DriveBatches(g Generator, sink BatchSink) {
	if bg, ok := g.(BatchGenerator); ok {
		bg.GenerateBatches(sink)
		return
	}
	b := NewBatcher(sink)
	g.Generate(b)
	b.Flush()
}

// GeneratorFunc adapts a named function to the Generator interface.
type GeneratorFunc struct {
	GenName string
	Fn      func(Sink)
}

// Name returns the generator name.
func (g GeneratorFunc) Name() string { return g.GenName }

// Generate runs the wrapped function.
func (g GeneratorFunc) Generate(sink Sink) { g.Fn(sink) }

// Trace is an in-memory event sequence. It implements both Sink (append)
// and Generator (replay), which makes it convenient for tests and for
// capturing small traces to inspect.
type Trace struct {
	TraceName string
	Events    []Event
}

// New returns an empty named trace.
func New(name string) *Trace { return &Trace{TraceName: name} }

// Name returns the trace name.
func (t *Trace) Name() string { return t.TraceName }

// Consume appends e to the trace.
func (t *Trace) Consume(e Event) { t.Events = append(t.Events, e) }

// ConsumeBatch implements BatchSink by appending the whole batch.
func (t *Trace) ConsumeBatch(batch []Event) bool {
	t.Events = append(t.Events, batch...)
	return true
}

// Generate replays the captured events into sink.
func (t *Trace) Generate(sink Sink) {
	for _, e := range t.Events {
		sink.Consume(e)
	}
}

// GenerateBatches implements BatchGenerator: the whole trace is already
// materialized, so it is delivered as a single batch.
func (t *Trace) GenerateBatches(sink BatchSink) {
	if len(t.Events) > 0 {
		sink.ConsumeBatch(t.Events)
	}
}

// Instructions returns the total dynamic instruction count of the trace.
func (t *Trace) Instructions() uint64 {
	var n uint64
	for _, e := range t.Events {
		n += uint64(e.Count())
	}
	return n
}

// Capture materializes the events produced by g.
func Capture(g Generator) *Trace {
	t := New(g.Name())
	Drive(g, t)
	return t
}

// Limit wraps a generator and truncates its stream after max dynamic
// instructions, mirroring the paper's 1-billion-instruction simulation
// windows. The truncation is co-operative: an event is forwarded exactly
// when the instructions forwarded before it are still under the budget
// (so the final event may overshoot by its own count), and the producer
// is asked to stop at the first event past it.
type Limit struct {
	Gen Generator
	Max uint64
}

// Name returns the underlying generator's name.
func (l Limit) Name() string { return l.Gen.Name() }

// stopGeneration is the panic sentinel used to unwind out of a plain
// push generator once the instruction budget is exhausted. The batched
// path never panics: batch generators observe the sink's stop signal
// and return normally.
type stopGeneration struct{}

// limiter truncates the batch stream at the instruction budget with
// plain control flow: events are forwarded while the budget holds, the
// first over-budget event truncates its batch, and the producer is told
// to stop via the BatchSink return value.
type limiter struct {
	down     BatchSink
	max      uint64
	consumed uint64
	done     bool
}

//cbws:hotpath
func (lm *limiter) ConsumeBatch(batch []Event) bool {
	if lm.done {
		return false
	}
	// Whole-batch fast path: if the batch total stays within budget no
	// event can be over it (an event is forwarded while the count
	// before it is under max), so the per-event scan below runs for at
	// most one batch per run.
	var sum uint64
	for i := range batch {
		sum += uint64(batch[i].Count())
	}
	if lm.consumed+sum <= lm.max {
		lm.consumed += sum
		return lm.down.ConsumeBatch(batch)
	}
	for i := range batch {
		if lm.consumed >= lm.max {
			lm.done = true
			if i > 0 {
				lm.down.ConsumeBatch(batch[:i])
			}
			return false
		}
		lm.consumed += uint64(batch[i].Count())
	}
	return lm.down.ConsumeBatch(batch)
}

// Generate forwards events until the instruction budget is reached.
func (l Limit) Generate(sink Sink) { l.GenerateBatches(AsBatchSink(sink)) }

// GenerateBatches implements BatchGenerator. Batch-capable generators
// are stopped cooperatively — no panic, no closure per event. Plain
// push generators cannot observe a stop signal, so the legacy adapter
// unwinds them with the panic sentinel once the budget is exhausted.
func (l Limit) GenerateBatches(sink BatchSink) {
	lm := &limiter{down: sink, max: l.Max}
	if bg, ok := l.Gen.(BatchGenerator); ok {
		bg.GenerateBatches(lm)
		return
	}
	b := NewBatcher(lm)
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(stopGeneration); !ok {
				panic(r)
			}
		}
	}()
	l.Gen.Generate(SinkFunc(func(e Event) {
		if !b.Event(e) {
			panic(stopGeneration{})
		}
	}))
	b.Flush()
}

// Tee duplicates a stream into several sinks in order.
type Tee []Sink

// Consume forwards e to every sink.
func (t Tee) Consume(e Event) {
	for _, s := range t {
		s.Consume(e)
	}
}

// ConsumeBatch forwards the batch to every sink, batch-capable members
// directly and the rest one event at a time. It requests a stop only
// once every batch-capable member has (per-event members cannot signal).
func (t Tee) ConsumeBatch(batch []Event) bool {
	more := false
	for _, s := range t {
		if bs, ok := s.(BatchSink); ok {
			if bs.ConsumeBatch(batch) {
				more = true
			}
		} else {
			for i := range batch {
				s.Consume(batch[i])
			}
			more = true
		}
	}
	return more || len(t) == 0
}

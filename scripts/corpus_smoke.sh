#!/usr/bin/env bash
# End-to-end smoke of the CBWC corpus pipeline:
#
#   1. pack two kernels at the golden manifest's 400k window with
#      tracegen pack, twice each — the repacked files must be
#      byte-identical (content-address determinism);
#   2. capture one kernel as a CBWT stream and convert it with
#      tracegen pack -i — the converted corpus must be byte-identical
#      to the directly packed one;
#   3. run the full figures golden matrix with -corpus-dir so the two
#      packed kernels replay from the corpus while the rest generate
#      live, and require the manifest to match golden/seed.json byte
#      for byte — corpus replay must be invisible to results;
#   4. repeat with -corpus-mmap=false to drive the positioned-read
#      fallback path through the same golden gate.
#
# Run from the repository root: ./scripts/corpus_smoke.sh
set -euo pipefail

N=400000
WARM=100000
KERNELS="stencil-default fft-simlarge"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "corpus-smoke: building tracegen and figures"
go build -o "$tmp/tracegen" ./cmd/tracegen
go build -o "$tmp/figures" ./cmd/figures

mkdir -p "$tmp/corpus"
for wl in $KERNELS; do
    echo "corpus-smoke: packing $wl at $N instructions"
    "$tmp/tracegen" pack -workload "$wl" -n "$N" -o "$tmp/corpus/$wl.cbwc" \
        | tee "$tmp/pack-$wl.out"
    "$tmp/tracegen" pack -workload "$wl" -n "$N" -o "$tmp/repack-$wl.cbwc" >/dev/null
    cmp "$tmp/corpus/$wl.cbwc" "$tmp/repack-$wl.cbwc" || {
        echo "corpus-smoke: repacking $wl produced different bytes" >&2
        exit 1
    }
    "$tmp/tracegen" info "$tmp/corpus/$wl.cbwc" >/dev/null
done

echo "corpus-smoke: CBWT -> CBWC conversion must reproduce the direct pack"
"$tmp/tracegen" -workload stencil-default -n "$N" -o "$tmp/stencil.cbwt" >/dev/null
"$tmp/tracegen" pack -i "$tmp/stencil.cbwt" -o "$tmp/converted.cbwc" >/dev/null
cmp "$tmp/corpus/stencil-default.cbwc" "$tmp/converted.cbwc" || {
    echo "corpus-smoke: CBWT conversion produced different bytes than direct pack" >&2
    exit 1
}

echo "corpus-smoke: golden matrix with corpus replay (mmap)"
"$tmp/figures" -n "$N" -warmup "$WARM" -corpus-dir "$tmp/corpus" \
    -golden "$tmp/golden-mmap.json"
cmp "$tmp/golden-mmap.json" golden/seed.json || {
    echo "corpus-smoke: mmap corpus replay diverged from golden/seed.json" >&2
    exit 1
}

echo "corpus-smoke: golden matrix with corpus replay (ReaderAt fallback)"
"$tmp/figures" -n "$N" -warmup "$WARM" -corpus-dir "$tmp/corpus" -corpus-mmap=false \
    -golden "$tmp/golden-readerat.json"
cmp "$tmp/golden-readerat.json" golden/seed.json || {
    echo "corpus-smoke: ReaderAt corpus replay diverged from golden/seed.json" >&2
    exit 1
}

echo "corpus-smoke: PASS (pack deterministic, convert byte-identical, golden matched on both replay paths)"

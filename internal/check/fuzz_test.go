package check_test

import (
	"testing"

	"cbws/internal/cache"
	"cbws/internal/check"
	"cbws/internal/core"
	"cbws/internal/mem"
	"cbws/internal/prefetch"
)

// byteFeed turns a fuzz payload into a bounded operand stream; once the
// payload is exhausted every draw returns zero, so every input encodes
// a finite deterministic scenario.
type byteFeed struct {
	data []byte
	pos  int
}

func (b *byteFeed) next() byte {
	if b.pos >= len(b.data) {
		return 0
	}
	v := b.data[b.pos]
	b.pos++
	return v
}

// FuzzCacheVsRef lets the fuzzer drive the operation stream of the
// cache differential directly: each input byte pair selects an
// operation, a line address and a time step, and the production cache
// must stay bit-identical to the map-based reference throughout.
func FuzzCacheVsRef(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x40, 0x01, 0x80, 0x01, 0x00, 0x01})       // re-access one line
	f.Add([]byte{0x00, 0x10, 0x20, 0x10, 0x40, 0x10, 0x60, 0x10, 0x80}) // MSHR pressure
	seed := make([]byte, 0, 512)
	for i := 0; i < 256; i++ {
		seed = append(seed, byte(i*7), byte(i*13))
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		prev := check.Enabled
		check.Enabled = true
		defer func() { check.Enabled = prev }()

		realCfg, refCfg := cacheConfig()
		c, err := cache.New(realCfg)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := check.NewRefCache(refCfg)
		if err != nil {
			t.Fatal(err)
		}
		feed := &byteFeed{data: data}
		now := uint64(100)
		for i := 0; i < len(data)/2; i++ {
			op := feed.next()
			now += uint64(op >> 5) // forward steps 0..7
			at := now
			if op&0x10 != 0 && at > 10 {
				at -= uint64(op & 0x0F) // backward jitter
			}
			l := mem.LineAddr(feed.next()) // 256 lines over 64-line capacity
			switch {
			case op&0x03 != 0: // demand access + protocol fill
				got := c.Access(l, at)
				want := ref.Access(l, at)
				if got.Hit != want.Hit || got.Merged != want.Merged ||
					got.MergedPf != want.MergedPf || got.ReadyAt != want.ReadyAt ||
					got.WasPfHit != want.WasPfHit || got.FilledNew != want.FilledNew {
					t.Fatalf("op %d: access %v at %d diverged:\n real %+v\n  ref %+v",
						i, l, at, got, want)
				}
				if got.FilledNew {
					lat := uint64(op>>2) + 1
					if gf, wf := c.Fill(l, at, lat, false), ref.Fill(l, at, lat, false); gf != wf {
						t.Fatalf("op %d: fill %v: real completes %d, ref %d", i, l, gf, wf)
					}
				}
			case op&0x04 != 0: // prefetch
				gi, _ := c.TryPrefetch(l, at, 37)
				if wi := ref.TryPrefetch(l, at, 37); gi != wi {
					t.Fatalf("op %d: prefetch %v: real issued=%v, ref issued=%v", i, l, gi, wi)
				}
			case op&0x08 != 0:
				c.Invalidate(l)
				ref.Invalidate(l)
			default:
				c.MarkDirty(l)
				ref.MarkDirty(l)
			}
		}
		c.DrainWrong()
		ref.DrainWrong()
		compareCacheStats(t, len(data)/2, c.Stats, ref.Stats)
		if got, want := c.ResidentLines(), ref.ResidentLines(); got != want {
			t.Fatalf("resident lines: real %d, ref %d", got, want)
		}
		if err := c.Check(); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzCBWSVsRef drives fuzzer-shaped block/access streams through the
// production CBWS prefetcher and the naive reference, comparing the
// issued prefetch stream at every BLOCK_END plus final statistics.
func FuzzCBWSVsRef(f *testing.F) {
	f.Add([]byte{})
	// A clean two-iteration strided loop.
	loop := []byte{0xF0, 0x00}
	for it := 0; it < 8; it++ {
		for j := 0; j < 4; j++ {
			loop = append(loop, 0x10, byte(it*4+j))
		}
		loop = append(loop, 0xF1, 0x00, 0xF0, 0x00)
	}
	f.Add(loop)
	f.Add([]byte{0xF1, 0x05, 0x10, 0x20, 0xF0, 0x01, 0xF0, 0x02, 0x10, 0x30, 0xF1, 0x02})

	f.Fuzz(func(t *testing.T, data []byte) {
		prev := check.Enabled
		check.Enabled = true
		defer func() { check.Enabled = prev }()

		cfg := core.Config{MaxVector: 8, Steps: 3, HistoryDepth: 2,
			TableEntries: 4, HashBits: 10, StrideBits: 12, AddrBits: 32}
		p := core.New(cfg)
		ref := check.NewRefCBWS(check.RefCBWSConfig{MaxVector: 8, Steps: 3, HistoryDepth: 2,
			TableEntries: 4, HashBits: 10, StrideBits: 12, AddrBits: 32})

		var gotIssued, wantIssued []mem.LineAddr
		issueGot := func(l mem.LineAddr) { gotIssued = append(gotIssued, l) }
		issueWant := func(l mem.LineAddr) { wantIssued = append(wantIssued, l) }

		feed := &byteFeed{data: data}
		for i := 0; i < len(data)/2; i++ {
			op := feed.next()
			switch op {
			case 0xF0:
				id := int(feed.next() & 0x03)
				p.OnBlockBegin(id)
				ref.OnBlockBegin(id)
			case 0xF1:
				id := int(feed.next() & 0x07) // can mismatch the open block
				p.OnBlockEnd(id, issueGot)
				ref.OnBlockEnd(id, issueWant)
				if len(gotIssued) != len(wantIssued) {
					t.Fatalf("op %d: issued %d prefetches, ref issued %d",
						i, len(gotIssued), len(wantIssued))
				}
				for j := range gotIssued {
					if gotIssued[j] != wantIssued[j] {
						t.Fatalf("op %d: prefetch %d diverged: real %v, ref %v",
							i, j, gotIssued[j], wantIssued[j])
					}
				}
				if p.Confident() != ref.Confident() {
					t.Fatalf("op %d: confidence diverged", i)
				}
				gotIssued, wantIssued = gotIssued[:0], wantIssued[:0]
			default:
				line := mem.LineAddr(op)<<8 | mem.LineAddr(feed.next())
				a := prefetch.Access{Line: line, Addr: mem.Addr(uint64(line) * mem.LineSize)}
				p.OnAccess(a, issueGot)
				ref.OnAccess(a, issueWant)
			}
		}
		got := check.RefCBWSStats{
			Blocks:         p.Stats.Blocks,
			Overflows:      p.Stats.Overflows,
			TableHits:      p.Stats.TableHits,
			TableMisses:    p.Stats.TableMisses,
			LinesPredicted: p.Stats.LinesPredicted,
		}
		if got != ref.Stats {
			t.Fatalf("stats diverged:\n real %+v\n  ref %+v", got, ref.Stats)
		}
	})
}

package check_test

import (
	"math/rand"
	"testing"

	"cbws/internal/check"
	"cbws/internal/core"
	"cbws/internal/mem"
	"cbws/internal/prefetch"
)

// cbwsConfigs returns matched production/reference parameter sets. The
// non-default variants shrink the structures so table replacement,
// overflow and history churn all trigger under short streams.
func cbwsConfigs() []struct {
	name string
	real core.Config
	ref  check.RefCBWSConfig
} {
	mk := func(name string, maxVec, steps, depth, entries, hashBits, strideBits, addrBits int) struct {
		name string
		real core.Config
		ref  check.RefCBWSConfig
	} {
		return struct {
			name string
			real core.Config
			ref  check.RefCBWSConfig
		}{
			name: name,
			real: core.Config{MaxVector: maxVec, Steps: steps, HistoryDepth: depth,
				TableEntries: entries, HashBits: hashBits, StrideBits: strideBits, AddrBits: addrBits},
			ref: check.RefCBWSConfig{MaxVector: maxVec, Steps: steps, HistoryDepth: depth,
				TableEntries: entries, HashBits: hashBits, StrideBits: strideBits, AddrBits: addrBits},
		}
	}
	return []struct {
		name string
		real core.Config
		ref  check.RefCBWSConfig
	}{
		mk("paper", 16, 4, 3, 16, 12, 16, 32),
		mk("tiny", 4, 2, 1, 2, 6, 8, 24), // tiny table: constant random replacement
		mk("deep", 8, 6, 4, 8, 10, 12, 32),
	}
}

// driveCBWSPair feeds one pseudo-random block/access stream to the
// production prefetcher and the naive reference, comparing the issued
// prefetch stream after every BLOCK_END plus confidence and statistics.
// The stream mixes loop-like strided phases (so the history table
// actually hits) with random noise, block-ID changes, stray accesses
// outside blocks, and unbalanced BLOCK_END markers.
func driveCBWSPair(t testingT, p *core.Prefetcher, ref *check.RefCBWS, rng *rand.Rand, events int) {
	var gotIssued, wantIssued []mem.LineAddr
	issueGot := func(l mem.LineAddr) { gotIssued = append(gotIssued, l) }
	issueWant := func(l mem.LineAddr) { wantIssued = append(wantIssued, l) }

	block := 0
	base := mem.LineAddr(rng.Intn(1 << 20))
	stride := int64(rng.Intn(9) - 4)
	iter := int64(0)
	for i := 0; i < events; i++ {
		switch r := rng.Intn(100); {
		case r < 4: // begin (possibly re-begin, abandoning the open block)
			if rng.Intn(8) == 0 {
				block = rng.Intn(3)
			}
			p.OnBlockBegin(block)
			ref.OnBlockBegin(block)
		case r < 8: // end — sometimes with a mismatched ID
			id := block
			if rng.Intn(16) == 0 {
				id = block + 1
			}
			p.OnBlockEnd(id, issueGot)
			ref.OnBlockEnd(id, issueWant)
			if len(gotIssued) != len(wantIssued) {
				t.Fatalf("event %d: issued %d prefetches, ref issued %d",
					i, len(gotIssued), len(wantIssued))
			}
			for j := range gotIssued {
				if gotIssued[j] != wantIssued[j] {
					t.Fatalf("event %d: prefetch %d diverged: real %v, ref %v",
						i, j, gotIssued[j], wantIssued[j])
				}
			}
			if p.Confident() != ref.Confident() {
				t.Fatalf("event %d: confidence diverged: real %v, ref %v",
					i, p.Confident(), ref.Confident())
			}
			gotIssued, wantIssued = gotIssued[:0], wantIssued[:0]
			iter++
		default: // access: mostly strided loop pattern, some noise
			var line mem.LineAddr
			if rng.Intn(5) != 0 {
				line = base.Add(iter*stride + int64(rng.Intn(6)))
			} else {
				line = mem.LineAddr(rng.Intn(1 << 22))
			}
			a := prefetch.Access{Line: line, Addr: mem.Addr(uint64(line) * mem.LineSize)}
			p.OnAccess(a, issueGot)
			ref.OnAccess(a, issueWant)
			if len(gotIssued) != 0 || len(wantIssued) != 0 {
				t.Fatalf("event %d: CBWS issued on access (real %d, ref %d)",
					i, len(gotIssued), len(wantIssued))
			}
		}
	}
	got := check.RefCBWSStats{
		Blocks:         p.Stats.Blocks,
		Overflows:      p.Stats.Overflows,
		TableHits:      p.Stats.TableHits,
		TableMisses:    p.Stats.TableMisses,
		LinesPredicted: p.Stats.LinesPredicted,
	}
	if got != ref.Stats {
		t.Fatalf("stats diverged:\n real %+v\n  ref %+v", got, ref.Stats)
	}
}

// TestCBWSVsReference drives over a million events through the
// production CBWS prefetcher (incremental differentials, preallocated
// buffers) and the naive from-scratch reference, across three hardware
// configurations, requiring identical prefetch streams, confidence
// bits and statistics — including the random-replacement sequence.
func TestCBWSVsReference(t *testing.T) {
	prev := check.Enabled
	check.Enabled = true
	defer func() { check.Enabled = prev }()

	const seeds, eventsPerSeed = 3, 120_000 // 3 cfgs × 3 seeds × 120k ≈ 1.1M
	for _, cfg := range cbwsConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				p := core.New(cfg.real)
				ref := check.NewRefCBWS(cfg.ref)
				driveCBWSPair(t, p, ref, rand.New(rand.NewSource(seed)), eventsPerSeed)
			}
		})
	}
}

package service

import (
	"sync"
	"sync/atomic"

	apiv1 "cbws/api/v1"
)

// Status is a job's lifecycle state (wire type, see api/v1).
type Status = apiv1.Status

// The job lifecycle: queued → running → done | failed, with canceled
// for jobs still queued when the daemon drains.
const (
	StatusQueued   = apiv1.StatusQueued
	StatusRunning  = apiv1.StatusRunning
	StatusDone     = apiv1.StatusDone
	StatusFailed   = apiv1.StatusFailed
	StatusCanceled = apiv1.StatusCanceled
)

// Progress and JobView are the wire forms served by the status and
// submit endpoints (see api/v1).
type (
	Progress = apiv1.Progress
	JobView  = apiv1.JobView
)

// Job is one accepted simulation, identified by its content address.
// Submissions of the same spec map to the same Job (idempotent
// submission), so each distinct piece of work runs at most once per
// daemon lifetime.
type Job struct {
	Key  string
	Spec JobSpec

	// progress is the committed instruction count, stored from the
	// simulator's WithProgress hook every sample interval.
	progress atomic.Uint64

	mu     sync.Mutex
	status Status //cbws:guardedby mu
	errMsg string //cbws:guardedby mu
	done   chan struct{}
}

func newJob(key string, spec JobSpec) *Job {
	return &Job{Key: key, Spec: spec, status: StatusQueued, done: make(chan struct{})}
}

// setRunning transitions queued → running; it reports false when the
// job was already canceled (drain raced the worker).
func (j *Job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	return true
}

// finish marks the job done and releases status waiters.
func (j *Job) finish() {
	j.mu.Lock()
	j.status = StatusDone
	j.mu.Unlock()
	close(j.done)
}

// fail marks the job failed with the given message.
func (j *Job) fail(msg string) {
	j.mu.Lock()
	j.status = StatusFailed
	j.errMsg = msg
	j.mu.Unlock()
	close(j.done)
}

// cancel marks a still-queued job canceled (daemon drain). Running jobs
// are never canceled — drain waits for them.
func (j *Job) cancel(msg string) bool {
	j.mu.Lock()
	if j.status != StatusQueued {
		j.mu.Unlock()
		return false
	}
	j.status = StatusCanceled
	j.errMsg = msg
	j.mu.Unlock()
	close(j.done)
	return true
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// View snapshots the job for serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	status, errMsg := j.status, j.errMsg
	j.mu.Unlock()
	done := j.progress.Load()
	if status == StatusDone {
		done = j.Spec.Config.MaxInstructions
	}
	return JobView{
		Key:        j.Key,
		Workload:   j.Spec.Workload,
		Prefetcher: j.Spec.Prefetcher,
		Status:     status,
		Progress:   Progress{Instructions: done, MaxInstructions: j.Spec.Config.MaxInstructions},
		Error:      errMsg,
	}
}

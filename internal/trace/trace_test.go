package trace

import (
	"testing"

	"cbws/internal/mem"
)

func TestEventCount(t *testing.T) {
	cases := []struct {
		ev   Event
		want int
	}{
		{Event{Kind: Instr, N: 5}, 5},
		{Event{Kind: Instr, N: 0}, 1},
		{Event{Kind: Instr, N: -3}, 1},
		{Event{Kind: Load}, 1},
		{Event{Kind: Store}, 1},
		{Event{Kind: BlockBegin}, 1},
	}
	for _, c := range cases {
		if got := c.ev.Count(); got != c.want {
			t.Errorf("%v.Count() = %d, want %d", c.ev, got, c.want)
		}
	}
}

func TestEventIsMem(t *testing.T) {
	if !(Event{Kind: Load}).IsMem() || !(Event{Kind: Store}).IsMem() {
		t.Error("Load/Store should be memory events")
	}
	if (Event{Kind: Instr}).IsMem() || (Event{Kind: BlockBegin}).IsMem() {
		t.Error("Instr/BlockBegin should not be memory events")
	}
}

func TestTraceCaptureReplay(t *testing.T) {
	g := GeneratorFunc{GenName: "g", Fn: func(s Sink) {
		s.Consume(Event{Kind: BlockBegin, Block: 3})
		s.Consume(Event{Kind: Load, PC: 1, Addr: 100})
		s.Consume(Event{Kind: Instr, N: 7})
		s.Consume(Event{Kind: BlockEnd, Block: 3})
	}}
	tr := Capture(g)
	if tr.Name() != "g" {
		t.Errorf("Name = %q", tr.Name())
	}
	if len(tr.Events) != 4 {
		t.Fatalf("captured %d events", len(tr.Events))
	}
	if tr.Instructions() != 10 {
		t.Errorf("Instructions = %d, want 10", tr.Instructions())
	}
	// Replay into another trace must reproduce it.
	tr2 := New("copy")
	tr.Generate(tr2)
	if len(tr2.Events) != len(tr.Events) {
		t.Fatalf("replayed %d events", len(tr2.Events))
	}
	for i := range tr.Events {
		if tr.Events[i] != tr2.Events[i] {
			t.Errorf("event %d: %v != %v", i, tr.Events[i], tr2.Events[i])
		}
	}
}

func TestLimitTruncates(t *testing.T) {
	g := GeneratorFunc{GenName: "inf", Fn: func(s Sink) {
		for i := 0; ; i++ {
			s.Consume(Event{Kind: Instr, N: 10})
			s.Consume(Event{Kind: Load, PC: 1, Addr: mem.Addr(i * 64)})
		}
	}}
	tr := Capture(Limit{Gen: g, Max: 100})
	n := tr.Instructions()
	if n < 90 || n > 110 {
		t.Errorf("limited trace has %d instructions", n)
	}
}

func TestLimitPropagatesForeignPanic(t *testing.T) {
	g := GeneratorFunc{GenName: "boom", Fn: func(s Sink) {
		panic("unrelated failure")
	}}
	defer func() {
		if r := recover(); r == nil {
			t.Error("expected the foreign panic to propagate")
		}
	}()
	Limit{Gen: g, Max: 100}.Generate(SinkFunc(func(Event) {}))
}

func TestLimitExactBudgetNoStop(t *testing.T) {
	// A generator that finishes within budget must not panic or stop.
	g := GeneratorFunc{GenName: "small", Fn: func(s Sink) {
		s.Consume(Event{Kind: Instr, N: 5})
	}}
	tr := Capture(Limit{Gen: g, Max: 100})
	if tr.Instructions() != 5 {
		t.Errorf("got %d instructions", tr.Instructions())
	}
}

func TestTee(t *testing.T) {
	a := New("a")
	b := New("b")
	tee := Tee{a, b}
	tee.Consume(Event{Kind: Load, PC: 9, Addr: 640})
	if len(a.Events) != 1 || len(b.Events) != 1 {
		t.Fatal("tee did not duplicate")
	}
	if a.Events[0] != b.Events[0] {
		t.Error("tee events differ")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Instr: "instr", Load: "load", Store: "store",
		BlockBegin: "block_begin", BlockEnd: "block_end",
		Kind(99): "kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

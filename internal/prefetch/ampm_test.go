package prefetch

import (
	"testing"

	"cbws/internal/mem"
)

func ampmAccessAt(base mem.Addr, line int, miss bool) Access {
	addr := base + mem.Addr(line*mem.LineSize)
	a := Access{PC: 0x40, Addr: addr, Line: mem.LineOf(addr)}
	if !miss {
		a.HitL1 = true
	}
	return a
}

func TestAMPMUnitStride(t *testing.T) {
	p := NewAMPM(AMPMConfig{})
	c := &collect{}
	base := mem.Addr(0x100000) // 4KB-aligned zone
	// Touch lines 0, 1; the miss at line 2 matches stride 1 and
	// prefetches line 3 (and beyond, degree permitting).
	p.OnAccess(ampmAccessAt(base, 0, true), c.issue)
	p.OnAccess(ampmAccessAt(base, 1, true), c.issue)
	c.lines = nil
	p.OnAccess(ampmAccessAt(base, 2, true), c.issue)
	if len(c.lines) == 0 {
		t.Fatal("no prefetch for a unit-stride pattern")
	}
	if c.lines[0] != mem.LineOf(base+3*mem.LineSize) {
		t.Errorf("first prefetch %v, want line 3 of the zone", c.lines[0])
	}
}

func TestAMPMLargeStride(t *testing.T) {
	p := NewAMPM(AMPMConfig{})
	c := &collect{}
	base := mem.Addr(0x200000)
	p.OnAccess(ampmAccessAt(base, 0, true), c.issue)
	p.OnAccess(ampmAccessAt(base, 5, true), c.issue)
	c.lines = nil
	p.OnAccess(ampmAccessAt(base, 10, true), c.issue)
	found := false
	for _, l := range c.lines {
		if l == mem.LineOf(base+15*mem.LineSize) {
			found = true
		}
	}
	if !found {
		t.Errorf("stride-5 prediction missing: %v", c.lines)
	}
}

func TestAMPMNegativeStride(t *testing.T) {
	p := NewAMPM(AMPMConfig{})
	c := &collect{}
	base := mem.Addr(0x300000)
	p.OnAccess(ampmAccessAt(base, 40, true), c.issue)
	p.OnAccess(ampmAccessAt(base, 38, true), c.issue)
	c.lines = nil
	p.OnAccess(ampmAccessAt(base, 36, true), c.issue)
	found := false
	for _, l := range c.lines {
		if l == mem.LineOf(base+34*mem.LineSize) {
			found = true
		}
	}
	if !found {
		t.Errorf("negative-stride prediction missing: %v", c.lines)
	}
}

func TestAMPMNoPatternNoPrefetch(t *testing.T) {
	p := NewAMPM(AMPMConfig{})
	c := &collect{}
	base := mem.Addr(0x400000)
	// Two isolated accesses: no stride has two prior hits.
	p.OnAccess(ampmAccessAt(base, 7, true), c.issue)
	p.OnAccess(ampmAccessAt(base, 29, true), c.issue)
	if len(c.lines) != 0 {
		t.Errorf("prefetched without a pattern: %v", c.lines)
	}
}

func TestAMPMHitsTrainButDoNotTrigger(t *testing.T) {
	p := NewAMPM(AMPMConfig{})
	c := &collect{}
	base := mem.Addr(0x500000)
	p.OnAccess(ampmAccessAt(base, 0, false), c.issue)
	p.OnAccess(ampmAccessAt(base, 1, false), c.issue)
	p.OnAccess(ampmAccessAt(base, 2, false), c.issue)
	if len(c.lines) != 0 {
		t.Errorf("hits triggered prefetches: %v", c.lines)
	}
	// A subsequent miss can use the hit-trained map.
	p.OnAccess(ampmAccessAt(base, 3, true), c.issue)
	if len(c.lines) == 0 {
		t.Error("hit-trained map not used by the triggering miss")
	}
}

func TestAMPMStaysInZone(t *testing.T) {
	p := NewAMPM(AMPMConfig{})
	c := &collect{}
	base := mem.Addr(0x600000)
	// Pattern at the end of the zone: predictions beyond line 63 are
	// suppressed.
	p.OnAccess(ampmAccessAt(base, 61, true), c.issue)
	p.OnAccess(ampmAccessAt(base, 62, true), c.issue)
	p.OnAccess(ampmAccessAt(base, 63, true), c.issue)
	for _, l := range c.lines {
		if l >= mem.LineOf(base+64*mem.LineSize) || l < mem.LineOf(base) {
			t.Errorf("prediction %v escaped the zone", l)
		}
	}
}

func TestAMPMZoneEviction(t *testing.T) {
	p := NewAMPM(AMPMConfig{Zones: 2})
	c := &collect{}
	// Train zone A, then touch two other zones to evict it.
	a := mem.Addr(0x700000)
	p.OnAccess(ampmAccessAt(a, 0, true), c.issue)
	p.OnAccess(ampmAccessAt(a, 1, true), c.issue)
	p.OnAccess(ampmAccessAt(mem.Addr(0x800000), 0, true), c.issue)
	p.OnAccess(ampmAccessAt(mem.Addr(0x900000), 0, true), c.issue)
	c.lines = nil
	// Zone A's map is gone: the returning miss sees an empty map.
	p.OnAccess(ampmAccessAt(a, 2, true), c.issue)
	if len(c.lines) != 0 {
		t.Errorf("evicted zone retained its map: %v", c.lines)
	}
}

func TestAMPMDegreeBound(t *testing.T) {
	p := NewAMPM(AMPMConfig{Degree: 2})
	c := &collect{}
	base := mem.Addr(0xA00000)
	// Dense prefix: many strides match.
	for i := 0; i < 8; i++ {
		p.OnAccess(ampmAccessAt(base, i, true), c.issue)
	}
	c.lines = nil
	p.OnAccess(ampmAccessAt(base, 8, true), c.issue)
	if len(c.lines) > 2 {
		t.Errorf("degree bound exceeded: %v", c.lines)
	}
}

func TestAMPMStorageBits(t *testing.T) {
	p := NewAMPM(AMPMConfig{})
	// 64 zones × (36-bit tag + 64-bit bitmap).
	if got := p.StorageBits(); got != 64*(36+64) {
		t.Errorf("StorageBits = %d", got)
	}
}

func TestAMPMReset(t *testing.T) {
	p := NewAMPM(AMPMConfig{})
	c := &collect{}
	base := mem.Addr(0xB00000)
	p.OnAccess(ampmAccessAt(base, 0, true), c.issue)
	p.OnAccess(ampmAccessAt(base, 1, true), c.issue)
	p.Reset()
	c.lines = nil
	p.OnAccess(ampmAccessAt(base, 2, true), c.issue)
	if len(c.lines) != 0 {
		t.Errorf("reset did not clear the maps: %v", c.lines)
	}
}

package check

import (
	"fmt"

	"cbws/internal/mem"
)

// RefCacheConfig mirrors the geometry of one internal/cache level. It is
// declared here rather than imported so the reference stays free of any
// dependency on the code it cross-checks.
type RefCacheConfig struct {
	Sets          int
	Ways          int
	LatencyCycles uint64
	MSHRs         int
}

// RefCacheStats mirrors cache.Stats field for field; differential tests
// compare the two structs counter by counter.
type RefCacheStats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	MergedMiss uint64

	PrefetchIssued    uint64
	PrefetchRedundant uint64
	PrefetchDropped   uint64
	PrefetchUseful    uint64
	PrefetchLate      uint64
	PrefetchWrong     uint64

	Writebacks uint64
}

// RefAccessResult mirrors cache.AccessResult.
type RefAccessResult struct {
	Hit       bool
	Merged    bool
	MergedPf  bool
	ReadyAt   uint64
	WasPfHit  bool
	FilledNew bool
}

// refLine is one resident line of the reference cache.
type refLine struct {
	prefetch bool
	used     bool
	dirty    bool
	fillAt   uint64
	lru      uint64
}

// RefCache is the functional reference model of a set-associative LRU
// cache with MSHR-limited miss handling: a map of resident lines per
// set, naive linear scans everywhere, allocation on every reap. Its
// observable behaviour — hit/miss/merge outcomes, fill completion
// times, eviction choices, statistics — must be bit-identical to
// cache.Cache driven with the same operation sequence.
type RefCache struct {
	cfg      RefCacheConfig
	sets     []map[mem.LineAddr]*refLine
	lruTick  uint64
	mshr     []uint64
	lastTime uint64
	Stats    RefCacheStats
}

// NewRefCache builds the reference model.
func NewRefCache(cfg RefCacheConfig) (*RefCache, error) {
	if cfg.Sets <= 0 || cfg.Ways <= 0 || cfg.MSHRs <= 0 {
		return nil, fmt.Errorf("refcache: sets, ways and MSHRs must be positive, got %+v", cfg)
	}
	if !mem.IsPow2(uint64(cfg.Sets)) {
		return nil, fmt.Errorf("refcache: set count %d not a power of two", cfg.Sets)
	}
	sets := make([]map[mem.LineAddr]*refLine, cfg.Sets)
	for i := range sets {
		sets[i] = make(map[mem.LineAddr]*refLine)
	}
	return &RefCache{cfg: cfg, sets: sets}, nil
}

func (c *RefCache) set(l mem.LineAddr) map[mem.LineAddr]*refLine {
	return c.sets[uint64(l)&uint64(c.cfg.Sets-1)]
}

func (c *RefCache) touch(w *refLine) {
	c.lruTick++
	w.lru = c.lruTick
}

// mshrFree reports whether an MSHR is available at cycle now, reaping
// completed entries first (eagerly, like the production cache — see the
// non-monotonic-call-time note on Cache.mshrFree). When none is free it
// returns the earliest cycle at which one frees.
func (c *RefCache) mshrFree(now uint64) (bool, uint64) {
	var live []uint64
	earliest := ^uint64(0)
	for _, t := range c.mshr {
		if t > now {
			live = append(live, t)
			if t < earliest {
				earliest = t
			}
		}
	}
	c.mshr = live
	if len(c.mshr) < c.cfg.MSHRs {
		return true, now
	}
	return false, earliest
}

// MSHROccupancy counts fills still outstanding at cycle now without
// reaping.
func (c *RefCache) MSHROccupancy(now uint64) int {
	n := 0
	for _, t := range c.mshr {
		if t > now {
			n++
		}
	}
	return n
}

// Probe reports residency without touching replacement state.
func (c *RefCache) Probe(l mem.LineAddr) (resident bool, fillAt uint64, isPrefetchUnused bool) {
	if w, ok := c.set(l)[l]; ok {
		return true, w.fillAt, w.prefetch && !w.used
	}
	return false, 0, false
}

// evict removes l from its set, charging wrong-prefetch and write-back
// accounting exactly like cache.Cache.evict.
func (c *RefCache) evict(l mem.LineAddr) {
	set := c.set(l)
	w, ok := set[l]
	if !ok {
		return
	}
	if w.prefetch && !w.used {
		c.Stats.PrefetchWrong++
	}
	if w.dirty {
		c.Stats.Writebacks++
	}
	delete(set, l)
}

// Invalidate removes l if resident.
func (c *RefCache) Invalidate(l mem.LineAddr) { c.evict(l) }

// MarkDirty flags line l as written, if resident.
func (c *RefCache) MarkDirty(l mem.LineAddr) {
	if w, ok := c.set(l)[l]; ok {
		w.dirty = true
	}
}

// victim returns the line to evict from l's set, or false when an empty
// way exists: the LRU line among those without an outstanding fill at
// cycle now, falling back to the plain LRU line when every way is
// pinned. LRU stamps are unique, so the choice is deterministic even
// over map iteration.
func (c *RefCache) victim(l mem.LineAddr, now uint64) (mem.LineAddr, bool) {
	set := c.set(l)
	if len(set) < c.cfg.Ways {
		return 0, false
	}
	var victim mem.LineAddr
	best := ^uint64(0)
	for a, w := range set {
		if w.fillAt > now {
			continue // pinned: fill outstanding
		}
		if w.lru < best {
			best = w.lru
			victim = a
		}
	}
	if best == ^uint64(0) {
		for a, w := range set {
			if w.lru < best {
				best = w.lru
				victim = a
			}
		}
	}
	return victim, true
}

// Access performs a demand lookup of line l at cycle now, mirroring
// cache.Cache.Access (including the monotonic-time clamp).
func (c *RefCache) Access(l mem.LineAddr, now uint64) RefAccessResult {
	c.Stats.Accesses++
	if now < c.lastTime {
		now = c.lastTime
	}
	c.lastTime = now
	if w, ok := c.set(l)[l]; ok {
		c.touch(w)
		if w.fillAt <= now {
			c.Stats.Hits++
			res := RefAccessResult{Hit: true, ReadyAt: now + c.cfg.LatencyCycles}
			if w.prefetch && !w.used {
				w.used = true
				c.Stats.PrefetchUseful++
				res.WasPfHit = true
			}
			return res
		}
		c.Stats.Misses++
		c.Stats.MergedMiss++
		res := RefAccessResult{Merged: true, ReadyAt: w.fillAt}
		if w.prefetch && !w.used {
			w.used = true
			c.Stats.PrefetchLate++
			res.MergedPf = true
		}
		return res
	}
	c.Stats.Misses++
	return RefAccessResult{FilledNew: true}
}

// Fill installs line l with data arriving latency cycles after the MSHR
// allocation, stalling the allocation when no MSHR is free, mirroring
// cache.Cache.Fill.
func (c *RefCache) Fill(l mem.LineAddr, now uint64, latency uint64, isPrefetch bool) (fillAt uint64) {
	free, at := c.mshrFree(now)
	if !free {
		now = at
		_, _ = c.mshrFree(now)
	}
	fillAt = now + latency
	c.mshr = append(c.mshr, fillAt)
	if v, full := c.victim(l, now); full {
		c.evict(v)
	}
	w := &refLine{prefetch: isPrefetch, fillAt: fillAt}
	c.set(l)[l] = w
	c.touch(w)
	if isPrefetch {
		c.Stats.PrefetchIssued++
	}
	return fillAt
}

// TryPrefetch mirrors cache.Cache.TryPrefetch: refuse on residency or
// MSHR exhaustion, otherwise allocate a prefetch fill.
func (c *RefCache) TryPrefetch(l mem.LineAddr, now uint64, latency uint64) bool {
	if resident, _, _ := c.Probe(l); resident {
		c.Stats.PrefetchRedundant++
		return false
	}
	if free, _ := c.mshrFree(now); !free {
		c.Stats.PrefetchDropped++
		return false
	}
	c.Fill(l, now, latency, true)
	return true
}

// DrainWrong charges resident never-used prefetched lines as wrong, as
// at end of simulation.
func (c *RefCache) DrainWrong() {
	for _, set := range c.sets {
		for _, w := range set {
			if w.prefetch && !w.used {
				c.Stats.PrefetchWrong++
				w.used = true
			}
		}
	}
}

// ResidentLines returns the number of resident lines.
func (c *RefCache) ResidentLines() int {
	n := 0
	for _, set := range c.sets {
		n += len(set)
	}
	return n
}

package stats

import (
	"math"
	"testing"
)

func TestIPC(t *testing.T) {
	t.Parallel()
	m := Metrics{Instructions: 1000, Cycles: 250}
	if got := m.IPC(); got != 4.0 {
		t.Errorf("IPC = %v", got)
	}
	if (Metrics{}).IPC() != 0 {
		t.Error("zero-cycle IPC should be 0")
	}
}

func TestMPKI(t *testing.T) {
	t.Parallel()
	m := Metrics{Instructions: 1_000_000, DemandL2Misses: 25_000}
	if got := m.MPKI(); got != 25.0 {
		t.Errorf("MPKI = %v", got)
	}
	if (Metrics{DemandL2Misses: 5}).MPKI() != 0 {
		t.Error("zero-instruction MPKI should be 0")
	}
}

func TestTimelinessFractions(t *testing.T) {
	t.Parallel()
	m := Metrics{
		DemandL2:  1000,
		Timely:    280,
		ShorterWT: 20,
		NonTimely: 100,
		Missing:   400,
		Wrong:     1100, // can exceed DemandL2, as in Figure 13
	}
	if got := m.TimelyFrac(); got != 0.28 {
		t.Errorf("timely = %v", got)
	}
	if got := m.ShorterWTFrac(); got != 0.02 {
		t.Errorf("swt = %v", got)
	}
	if got := m.NonTimelyFrac(); got != 0.1 {
		t.Errorf("nt = %v", got)
	}
	if got := m.MissingFrac(); got != 0.4 {
		t.Errorf("missing = %v", got)
	}
	if got := m.WrongFrac(); got != 1.1 {
		t.Errorf("wrong = %v", got)
	}
	var zero Metrics
	if zero.TimelyFrac() != 0 || zero.WrongFrac() != 0 {
		t.Error("zero-demand fractions should be 0")
	}
}

func TestPerfPerByte(t *testing.T) {
	t.Parallel()
	m := Metrics{Instructions: 4000, Cycles: 1000, BytesFromMem: 2}
	if got := m.PerfPerByte(); got != 2.0 {
		t.Errorf("perf/byte = %v", got)
	}
	if !math.IsInf(Metrics{Instructions: 1, Cycles: 1}.PerfPerByte(), 1) {
		t.Error("zero-byte perf/cost should be +Inf")
	}
}

func TestAccuracyCoverage(t *testing.T) {
	t.Parallel()
	m := Metrics{
		PrefetchIssued: 100,
		PrefetchUseful: 60,
		PrefetchLate:   20,
		Timely:         60,
		DemandL2Misses: 40,
	}
	if got := m.Accuracy(); got != 0.8 {
		t.Errorf("accuracy = %v", got)
	}
	if got := m.Coverage(); got != 0.6 {
		t.Errorf("coverage = %v", got)
	}
	var zero Metrics
	if zero.Accuracy() != 0 || zero.Coverage() != 0 {
		t.Error("zero cases")
	}
}

func TestMean(t *testing.T) {
	t.Parallel()
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	t.Parallel()
	if GeoMean(nil) != 0 {
		t.Error("empty geomean")
	}
	got := GeoMean([]float64{2, 8})
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean = %v, want 4", got)
	}
	// Non-positive values are skipped.
	got = GeoMean([]float64{0, -3, 4})
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean with non-positives = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	t.Parallel()
	got := Normalize([]float64{2, 6, 5}, []float64{1, 3, 0})
	want := []float64{2, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("normalize = %v, want %v", got, want)
		}
	}
}

func TestString(t *testing.T) {
	t.Parallel()
	m := Metrics{Instructions: 100, Cycles: 100, DemandL2: 10, Timely: 5}
	if m.String() == "" {
		t.Error("empty string")
	}
}

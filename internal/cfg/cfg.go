// Package cfg builds control-flow graphs over the mini-IR and performs
// the structural analyses the annotation pass needs: dominator trees,
// back-edge detection and natural-loop construction. Together with
// internal/annotate it reproduces the paper's LLVM pass that discovers
// and tags innermost tight loops.
package cfg

import (
	"fmt"
	"sort"

	"cbws/internal/ir"
)

// Block is one basic block: instruction indices [Start, End) of the
// underlying program.
type Block struct {
	ID    int
	Start int
	End   int
	Succs []int // successor block IDs
	Preds []int // predecessor block IDs
}

// Graph is the CFG of a program.
type Graph struct {
	Prog   *ir.Program
	Blocks []Block
	// blockOf maps instruction index -> block ID.
	blockOf []int
}

// Build constructs the CFG of p. Unreachable instructions still form
// blocks but have no predecessors.
func Build(p *ir.Program) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Instrs)
	leader := make([]bool, n)
	leader[0] = true
	for i, in := range p.Instrs {
		if in.Op.IsBranch() {
			leader[in.Target] = true
			if i+1 < n {
				leader[i+1] = true
			}
		}
		if in.Op == ir.Ret && i+1 < n {
			leader[i+1] = true
		}
	}
	g := &Graph{Prog: p, blockOf: make([]int, n)}
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || leader[i] {
			g.Blocks = append(g.Blocks, Block{ID: len(g.Blocks), Start: start, End: i})
			start = i
		}
	}
	for b := range g.Blocks {
		for i := g.Blocks[b].Start; i < g.Blocks[b].End; i++ {
			g.blockOf[i] = b
		}
	}
	for b := range g.Blocks {
		blk := &g.Blocks[b]
		last := p.Instrs[blk.End-1]
		addEdge := func(to int) {
			toBlk := g.blockOf[to]
			blk.Succs = append(blk.Succs, toBlk)
			g.Blocks[toBlk].Preds = append(g.Blocks[toBlk].Preds, b)
		}
		switch last.Op {
		case ir.Jmp:
			addEdge(last.Target)
		case ir.BrNZ, ir.BrZ:
			addEdge(last.Target)
			if blk.End < n {
				addEdge(blk.End)
			}
		case ir.Ret:
			// no successors
		default:
			if blk.End < n {
				addEdge(blk.End)
			}
		}
	}
	return g, nil
}

// BlockOf returns the block ID containing instruction index i.
func (g *Graph) BlockOf(i int) int { return g.blockOf[i] }

// Dominators computes the immediate dominator of every block using the
// Cooper–Harvey–Kennedy iterative algorithm. idom[entry] == entry;
// unreachable blocks get idom -1.
func (g *Graph) Dominators() []int {
	n := len(g.Blocks)
	// Reverse post-order over the reachable subgraph.
	rpo := make([]int, 0, n)
	seen := make([]bool, n)
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range g.Blocks[b].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		rpo = append(rpo, b)
	}
	dfs(0)
	// rpo currently holds post-order; reverse it.
	for i, j := 0, len(rpo)-1; i < j; i, j = i+1, j-1 {
		rpo[i], rpo[j] = rpo[j], rpo[i]
	}
	order := make([]int, n) // block -> RPO index
	for i := range order {
		order[i] = -1
	}
	for i, b := range rpo {
		order[b] = i
	}

	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range g.Blocks[b].Preds {
				if idom[p] == -1 {
					continue // predecessor not yet processed / unreachable
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// dominates reports whether a dominates b under idom.
func dominates(idom []int, a, b int) bool {
	for {
		if b == a {
			return true
		}
		if b == 0 || idom[b] == -1 || idom[b] == b {
			return a == b
		}
		b = idom[b]
	}
}

// Loop is a natural loop.
type Loop struct {
	Header int   // header block ID
	Latch  int   // source block of the back edge
	Blocks []int // all block IDs in the loop body (including header), sorted
	// StaticInstrs is the number of IR instructions across the body.
	StaticInstrs int
}

// contains reports whether block b is in the loop body.
func (l *Loop) contains(b int) bool {
	i := sort.SearchInts(l.Blocks, b)
	return i < len(l.Blocks) && l.Blocks[i] == b
}

// Loops finds all natural loops: for every back edge u→h (h dominates
// u), the loop body is h plus every block that reaches u without passing
// through h. Multiple back edges to one header are merged into a single
// loop, matching LLVM's loop representation.
func (g *Graph) Loops() []Loop {
	idom := g.Dominators()
	byHeader := make(map[int]*Loop)
	for u := range g.Blocks {
		for _, h := range g.Blocks[u].Succs {
			if idom[u] == -1 || !dominates(idom, h, u) {
				continue
			}
			l, ok := byHeader[h]
			if !ok {
				l = &Loop{Header: h, Latch: u}
				byHeader[h] = l
			}
			l.Latch = u // keep the most recently found latch
			// Reverse reachability from u, stopping at h: the body is
			// every block that reaches the latch without passing
			// through the header. The header's own predecessors are
			// never explored (h seeds the visited set).
			inBody := map[int]bool{h: true}
			var stack []int
			if !inBody[u] {
				inBody[u] = true
				stack = append(stack, u)
			}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range g.Blocks[b].Preds {
					if !inBody[p] {
						inBody[p] = true
						stack = append(stack, p)
					}
				}
			}
			for b := range inBody {
				if !l.contains(b) {
					l.Blocks = append(l.Blocks, b)
					sort.Ints(l.Blocks)
				}
			}
		}
	}
	loops := make([]Loop, 0, len(byHeader))
	for _, l := range byHeader {
		for _, b := range l.Blocks {
			l.StaticInstrs += g.Blocks[b].End - g.Blocks[b].Start
		}
		loops = append(loops, *l)
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].Header < loops[j].Header })
	return loops
}

// Innermost filters loops to those whose body contains no other loop's
// header — the paper's tight innermost loops, before the size filter.
func Innermost(loops []Loop) []Loop {
	var out []Loop
	for i := range loops {
		inner := true
		for j := range loops {
			if i == j {
				continue
			}
			if loops[i].contains(loops[j].Header) && loops[i].Header != loops[j].Header {
				inner = false
				break
			}
		}
		if inner {
			out = append(out, loops[i])
		}
	}
	return out
}

// ExitEdges returns the (from, to) block pairs leaving the loop.
func (g *Graph) ExitEdges(l Loop) [][2]int {
	var out [][2]int
	for _, b := range l.Blocks {
		for _, s := range g.Blocks[b].Succs {
			if !l.contains(s) {
				out = append(out, [2]int{b, s})
			}
		}
	}
	return out
}

// String renders the CFG for debugging.
func (g *Graph) String() string {
	s := fmt.Sprintf("cfg of %q: %d blocks\n", g.Prog.Name, len(g.Blocks))
	for _, b := range g.Blocks {
		s += fmt.Sprintf("  B%d [%d,%d) -> %v\n", b.ID, b.Start, b.End, b.Succs)
	}
	return s
}

package engine

import (
	"testing"

	"cbws/internal/mem"
	"cbws/internal/trace"
)

func TestROBOccupancy(t *testing.T) {
	cfg := DefaultConfig()

	// Fresh engine: nothing in flight.
	e := mustEngine(t, &fixedMem{loadLat: 1000}, nil)
	if got := e.ROBOccupancy(); got != 0 {
		t.Fatalf("fresh engine ROB occupancy = %d, want 0", got)
	}

	// A width-bound ALU stream keeps commit hard on fetch's heels: only
	// the entries of the last cycle or two are still waiting.
	alu := mustEngine(t, &fixedMem{}, nil)
	alu.Consume(trace.Event{Kind: trace.Instr, N: 100_000})
	if got := alu.ROBOccupancy(); got <= 0 || got > cfg.ROBEntries/2 {
		t.Errorf("compute-bound ROB occupancy = %d, want small positive (< %d)", got, cfg.ROBEntries/2)
	}

	// Long-latency loads decouple the commit clock from fetch; ROB
	// back-pressure then pins dispatch one ROB-length behind commit, so
	// the structure reads (nearly) full — and never beyond capacity.
	for i := 0; i < 200; i++ {
		e.Consume(trace.Event{Kind: trace.Load, PC: 1, Addr: mem.Addr(i * 64)})
	}
	occ := e.ROBOccupancy()
	if occ <= cfg.ROBEntries/2 {
		t.Errorf("memory-bound ROB occupancy = %d, want > %d (ROB-limited dispatch)", occ, cfg.ROBEntries/2)
	}
	if occ > cfg.ROBEntries {
		t.Errorf("ROB occupancy = %d exceeds capacity %d", occ, cfg.ROBEntries)
	}
}

func TestROBOccupancyIsReadOnly(t *testing.T) {
	f := &fixedMem{loadLat: 500}
	a := mustEngine(t, f, nil)
	b := mustEngine(t, &fixedMem{loadLat: 500}, nil)
	for i := 0; i < 100; i++ {
		a.Consume(trace.Event{Kind: trace.Load, PC: 1, Addr: mem.Addr(i * 64)})
		b.Consume(trace.Event{Kind: trace.Load, PC: 1, Addr: mem.Addr(i * 64)})
		a.ROBOccupancy() // sampled every event on a only
	}
	sa, sb := a.Finish(), b.Finish()
	if sa != sb {
		t.Errorf("sampling ROB occupancy perturbed the run:\nsampled:   %+v\nunsampled: %+v", sa, sb)
	}
}

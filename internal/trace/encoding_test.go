package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"cbws/internal/mem"
)

func roundTrip(t *testing.T, name string, events []Event) *Reader {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, name)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, e := range events {
		w.Consume(e)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	return r
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: BlockBegin, Block: 12},
		{Kind: Load, PC: 0x401000, Addr: 0x12345678},
		{Kind: Store, PC: 0x401004, Addr: 0x12345640},
		{Kind: Instr, N: 42},
		{Kind: Load, PC: 0x401000, Addr: 0x12345679},
		{Kind: BlockEnd, Block: 12},
	}
	r := roundTrip(t, "rt", events)
	if r.Name() != "rt" {
		t.Errorf("Name = %q", r.Name())
	}
	var got []Event
	if err := r.Decode(SinkFunc(func(e Event) { got = append(got, e) })); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		want := events[i]
		if want.Kind == Instr && want.N == 0 {
			want.N = 1
		}
		if got[i] != want {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], want)
		}
	}
}

func TestEncodeDecodeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var events []Event
	pc := uint64(0x400000)
	addr := uint64(1 << 30)
	for i := 0; i < 5000; i++ {
		switch rng.Intn(5) {
		case 0:
			events = append(events, Event{Kind: Instr, N: 1 + rng.Intn(100)})
		case 1, 2:
			pc += uint64(rng.Intn(64)) * 4
			addr += uint64(rng.Int63n(1<<20)) - 1<<19
			events = append(events, Event{Kind: Load, PC: pc, Addr: mem.Addr(addr)})
		case 3:
			events = append(events, Event{Kind: Store, PC: pc, Addr: mem.Addr(addr)})
		case 4:
			events = append(events, Event{Kind: BlockBegin, Block: rng.Intn(16)})
		}
		if rng.Intn(4) == 0 {
			pc += 4
			events = append(events, Event{Kind: Branch, PC: pc, Taken: rng.Intn(2) == 0})
		}
	}
	r := roundTrip(t, "random", events)
	i := 0
	err := r.Decode(SinkFunc(func(e Event) {
		if i < len(events) && e != events[i] {
			t.Fatalf("event %d mismatch: got %+v want %+v", i, e, events[i])
		}
		i++
	}))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if i != len(events) {
		t.Errorf("decoded %d of %d events", i, len(events))
	}
}

func TestReaderAsGenerator(t *testing.T) {
	events := []Event{
		{Kind: Load, PC: 4, Addr: 64},
		{Kind: Instr, N: 3},
	}
	r := roundTrip(t, "gen", events)
	tr := Capture(r)
	if tr.Name() != "gen" || len(tr.Events) != 2 {
		t.Fatalf("capture: name=%q events=%d", tr.Name(), len(tr.Events))
	}
}

func TestDecodeBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("XXXX\x01\x00")))
	if !errors.Is(err, ErrBadTrace) {
		t.Errorf("err = %v, want ErrBadTrace", err)
	}
}

func TestDecodeBadVersion(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("CBWT\x7f\x00")))
	if !errors.Is(err, ErrBadTrace) {
		t.Errorf("err = %v, want ErrBadTrace", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "trunc")
	if err != nil {
		t.Fatal(err)
	}
	w.Consume(Event{Kind: Load, PC: 1, Addr: 64})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop off the terminator and part of the last event.
	raw := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Decode(SinkFunc(func(Event) {})); !errors.Is(err, ErrBadTrace) {
		t.Errorf("Decode err = %v, want ErrBadTrace", err)
	}
}

func TestDecodeUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] = 0x77 // replace EOF marker with a bogus kind
	raw = append(raw, 0xFF)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Decode(SinkFunc(func(Event) {})); !errors.Is(err, ErrBadTrace) {
		t.Errorf("Decode err = %v, want ErrBadTrace", err)
	}
}

func TestWriterRejectsUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "x")
	if err != nil {
		t.Fatal(err)
	}
	w.Consume(Event{Kind: Kind(200)})
	if err := w.Close(); err == nil {
		t.Error("expected Close to report the encoding error")
	}
}

// rawStream builds a header for name "x" followed by the given body
// bytes and an EOF terminator, bypassing the Writer's validation.
func rawStream(body ...byte) []byte {
	stream := []byte("CBWT\x01\x01x")
	stream = append(stream, body...)
	return append(stream, kindEOF)
}

// TestDecodeRejectsUnboundedFields pins the decoder's field bounds:
// uvarint values beyond the shared caps (or a branch outcome other than
// 0/1) are a malformed stream, not a giant event. Unchecked, an
// Instr.N or Block near 2^64 would wrap through int into garbage
// (negative counts, bogus block IDs) on 32-bit builds.
func TestDecodeRejectsUnboundedFields(t *testing.T) {
	huge := binary.AppendUvarint(nil, uint64(MaxInstrCount)+1)
	cases := map[string][]byte{
		"instr-count":    rawStream(append([]byte{byte(Instr)}, huge...)...),
		"instr-wrap":     rawStream(append([]byte{byte(Instr)}, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01)...),
		"block-begin-id": rawStream(append([]byte{byte(BlockBegin)}, binary.AppendUvarint(nil, uint64(MaxBlockID)+1)...)...),
		"block-end-id":   rawStream(append([]byte{byte(BlockEnd)}, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01)...),
		"branch-outcome": rawStream(byte(Branch), 0x00, 0x02),
	}
	for name, stream := range cases {
		r, err := NewReader(bytes.NewReader(stream))
		if err != nil {
			t.Fatalf("%s: header rejected: %v", name, err)
		}
		if err := r.Decode(SinkFunc(func(Event) {})); !errors.Is(err, ErrBadTrace) {
			t.Errorf("%s: Decode err = %v, want ErrBadTrace", name, err)
		}
	}
}

// TestDecodeAcceptsBoundaryFields checks the caps are inclusive: the
// largest legal values decode cleanly.
func TestDecodeAcceptsBoundaryFields(t *testing.T) {
	events := []Event{
		{Kind: Instr, N: MaxInstrCount},
		{Kind: BlockBegin, Block: MaxBlockID},
		{Kind: BlockEnd, Block: MaxBlockID},
	}
	r := roundTrip(t, "bounds", events)
	var got []Event
	if err := r.Decode(SinkFunc(func(e Event) { got = append(got, e) })); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], events[i])
		}
	}
}

// TestWriterRejectsOutOfRangeFields mirrors the decoder bounds on the
// encode side, keeping the codec closed: everything the writer accepts,
// the reader accepts back.
func TestWriterRejectsOutOfRangeFields(t *testing.T) {
	for name, e := range map[string]Event{
		"instr-count":    {Kind: Instr, N: MaxInstrCount + 1},
		"block-negative": {Kind: BlockBegin, Block: -1},
		"block-huge":     {Kind: BlockEnd, Block: MaxBlockID + 1},
	} {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, "x")
		if err != nil {
			t.Fatal(err)
		}
		w.Consume(e)
		if err := w.Close(); err == nil {
			t.Errorf("%s: expected Close to report the encoding error", name)
		}
	}
}

func TestCompactEncoding(t *testing.T) {
	// Strided streams should delta-encode to a few bytes per event.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "stride")
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	for i := 0; i < n; i++ {
		w.Consume(Event{Kind: Load, PC: 0x400100, Addr: mem.Addr(1<<30 + i*64)})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if perEvent := float64(buf.Len()) / n; perEvent > 4.5 {
		t.Errorf("strided stream encodes to %.1f bytes/event, want <= 4.5", perEvent)
	}
}

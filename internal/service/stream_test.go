package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	apiv1 "cbws/api/v1"
	"cbws/internal/trace"
	"cbws/internal/workload"
)

// fakeClock is an injectable, manually-advanced time source: admission
// refills and idle detection become fully deterministic in tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestTokenBucketBurstThenSustain(t *testing.T) {
	clk := newFakeClock()
	b := newTokenBucket(1000, 500, clk.Now()) // 1000 B/s sustained, 500 B burst

	// The bucket starts full: the whole burst is available immediately.
	if ok, _ := b.take(clk.Now(), 500); !ok {
		t.Fatal("full bucket refused its burst")
	}
	// Drained: the next byte is refused with the time until it refills.
	ok, wait := b.take(clk.Now(), 100)
	if ok {
		t.Fatal("empty bucket granted tokens")
	}
	if want := 100 * time.Millisecond; wait != want {
		t.Fatalf("wait = %v, want %v", wait, want)
	}
	// Sustained phase: elapsed time refills at the configured rate.
	clk.Advance(100 * time.Millisecond)
	if ok, _ := b.take(clk.Now(), 100); !ok {
		t.Fatal("refill did not credit 100 tokens after 100ms at 1000/s")
	}
	if ok, _ := b.take(clk.Now(), 1); ok {
		t.Fatal("bucket granted more than the refill")
	}
	// Refill is capped at the burst no matter how long the idle gap.
	clk.Advance(time.Hour)
	if ok, _ := b.take(clk.Now(), 500); !ok {
		t.Fatal("idle bucket should be full again")
	}
	if ok, _ := b.take(clk.Now(), 1); ok {
		t.Fatal("refill exceeded the burst cap")
	}
}

func TestTenantIsolation(t *testing.T) {
	clk := newFakeClock()
	tt := newTenantTable(1000, 1000)
	a := tt.get("tenant-a", clk.Now())
	b := tt.get("tenant-b", clk.Now())

	// Draining tenant A's bucket must not touch tenant B's.
	if ok, _ := a.admitBytes(clk.Now(), 1000); !ok {
		t.Fatal("tenant A refused within burst")
	}
	if ok, _ := a.admitBytes(clk.Now(), 1); ok {
		t.Fatal("tenant A granted past its burst")
	}
	if ok, _ := b.admitBytes(clk.Now(), 1000); !ok {
		t.Fatal("tenant B throttled by tenant A's traffic")
	}
	if got := a.vars().RejectedRate; got != 1 {
		t.Fatalf("tenant A rejected_rate = %d, want 1", got)
	}
	if got := b.vars().RejectedRate; got != 0 {
		t.Fatalf("tenant B rejected_rate = %d, want 0", got)
	}

	// Concurrent-stream quotas are per tenant too.
	if !a.admitOpen(2) || !a.admitOpen(2) {
		t.Fatal("tenant A refused within quota")
	}
	if a.admitOpen(2) {
		t.Fatal("tenant A granted past its quota")
	}
	if !b.admitOpen(2) {
		t.Fatal("tenant B blocked by tenant A's streams")
	}
	a.releaseStream()
	if !a.admitOpen(2) {
		t.Fatal("released slot not reusable")
	}
	if got := a.vars().RejectedQuota; got != 1 {
		t.Fatalf("tenant A rejected_quota = %d, want 1", got)
	}
	// The table returns the same account for the same name.
	if tt.get("tenant-a", clk.Now()) != a {
		t.Fatal("tenant table returned a fresh account for a known name")
	}
}

func TestTicketSchedFIFO(t *testing.T) {
	ts := newTicketSched(1)
	if !ts.acquire() {
		t.Fatal("free slot refused")
	}
	// Enqueue three waiters one at a time so their queue order is fixed.
	order := make(chan int, 3)
	for i := 1; i <= 3; i++ {
		i := i
		before := ts.waiting()
		go func() {
			if ts.acquire() {
				order <- i
				ts.release()
			}
		}()
		deadline := time.Now().Add(5 * time.Second)
		for ts.waiting() != before+1 {
			if time.Now().After(deadline) {
				t.Fatal("waiter never queued")
			}
			time.Sleep(time.Millisecond)
		}
	}
	ts.release()
	for want := 1; want <= 3; want++ {
		select {
		case got := <-order:
			if got != want {
				t.Fatalf("wakeup order %d, want %d (FIFO)", got, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never woke")
		}
	}
}

func TestTicketSchedStop(t *testing.T) {
	ts := newTicketSched(1)
	if !ts.acquire() {
		t.Fatal("free slot refused")
	}
	got := make(chan bool, 1)
	go func() { got <- ts.acquire() }()
	deadline := time.Now().Add(5 * time.Second)
	for ts.waiting() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	ts.stop()
	if <-got {
		t.Fatal("queued acquire succeeded after stop")
	}
	if ts.acquire() {
		t.Fatal("acquire succeeded after stop")
	}
}

// encodeWorkloadTrace renders the named registered workload's event
// stream, truncated at max instructions, as CBWT bytes — exactly what a
// tenant tracing the same program would stream.
func encodeWorkloadTrace(t *testing.T, name string, max uint64) []byte {
	t.Helper()
	spec, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	captured := trace.Capture(trace.Limit{Gen: spec.Make(), Max: max})
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, name)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range captured.Events {
		w.Consume(e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// feedChunks sends data to an open stream in 48 KiB pieces, letting the
// client's backpressure handling absorb retryable 413s while the
// simulator drains the ring.
func feedChunks(t *testing.T, c *apiv1.Client, id string, data []byte) {
	t.Helper()
	const size = 48 << 10
	for off := 0; off < len(data); off += size {
		end := off + size
		if end > len(data) {
			end = len(data)
		}
		if _, err := c.SendChunk(id, data[off:end], nil); err != nil {
			t.Fatalf("chunk at %d: %v", off, err)
		}
	}
}

// streamTrace opens a stream and feeds data in chunkSize pieces.
func streamTrace(t *testing.T, c *apiv1.Client, req apiv1.OpenStreamRequest, data []byte, chunkSize int) apiv1.StreamView {
	t.Helper()
	view, err := c.OpenStream(req)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(data); off += chunkSize {
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		if _, err := c.SendChunk(view.ID, data[off:end], nil); err != nil {
			t.Fatalf("chunk at %d: %v", off, err)
		}
	}
	if _, err := c.CloseStream(view.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.WaitStream(view.ID)
	if err != nil {
		t.Fatal(err)
	}
	return final
}

// TestStreamMatchesClosedJob is the in-process half of the streaming
// smoke: streaming a workload's own trace bytes must produce the same
// run record as the closed job, cached under the same content address.
func TestStreamMatchesClosedJob(t *testing.T) {
	const wl = "stencil-default"
	cfg := testConfig()

	// Closed job on its own service instance (separate cache).
	svcA, tsA := newTestService(t, cfg)
	specBody := `{"workload": "` + wl + `", "prefetcher": "cbws"}`
	code, m, _ := postJob(t, tsA.URL, specBody)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: %d %v", code, m)
	}
	key := m["key"].(string)
	waitDone(t, tsA.URL, key)
	recA, ok := svcA.Result(key)
	if !ok {
		t.Fatal("closed job result missing")
	}

	// Stream the same instruction stream into a fresh service.
	svcB, tsB := newTestService(t, cfg)
	data := encodeWorkloadTrace(t, wl, cfg.BaseSim.MaxInstructions)
	client := apiv1.NewClient(tsB.URL)
	final := streamTrace(t, client, apiv1.OpenStreamRequest{
		Tenant: "acme", Workload: wl, Prefetcher: "cbws",
	}, data, 64<<10)

	// Full-budget stream of a registered workload adopts the closed
	// job's key: the two serving paths converge on one cache entry.
	if final.Key != key {
		t.Fatalf("stream key %s, want closed-job key %s", final.Key, key)
	}
	recB, ok := svcB.Result(key)
	if !ok {
		t.Fatal("stream result missing from cache")
	}

	// The records agree on everything except run-local telemetry.
	var a, b map[string]any
	if err := json.Unmarshal(recA, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(recB, &b); err != nil {
		t.Fatal(err)
	}
	delete(a, "wall_time_sec")
	delete(b, "wall_time_sec")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("stream record diverges from closed-job record:\n%s\nvs\n%s", recA, recB)
	}

	// A closed-job submit on the stream's daemon is now a cache hit.
	view, err := apiv1.NewClient(tsB.URL).Submit([]byte(specBody))
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != StatusDone || !view.Cached {
		t.Fatalf("closed job after stream: status %s cached %v, want done from cache", view.Status, view.Cached)
	}
}

// TestStreamPartialGetsOwnKey checks a stream that ends before the
// instruction budget is content-addressed by its own bytes, not the
// closed job's key — a truncated stream must never poison the cache
// entry a full simulation would be served from.
func TestStreamPartialGetsOwnKey(t *testing.T) {
	const wl = "stencil-default"
	cfg := testConfig()
	_, ts := newTestService(t, cfg)

	// Half the budget, cut at an event boundary, properly terminated.
	data := encodeWorkloadTrace(t, wl, cfg.BaseSim.MaxInstructions/2)
	client := apiv1.NewClient(ts.URL)
	final := streamTrace(t, client, apiv1.OpenStreamRequest{
		Tenant: "acme", Workload: wl, Prefetcher: "cbws",
	}, data, 16<<10)

	closedKey := JobSpec{Workload: wl, Prefetcher: "cbws", Config: cfg.BaseSim}.Key(cfg.CodeVersion)
	if final.Key == closedKey {
		t.Fatal("partial stream adopted the closed-job key")
	}
	if final.Key == "" {
		t.Fatal("partial stream produced no result key")
	}
}

func openStream(t *testing.T, url, body string) (int, map[string]any, http.Header) {
	t.Helper()
	resp, err := http.Post(url+apiv1.PathStreams, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, m, resp.Header
}

func postChunk(t *testing.T, url, id string, chunk []byte) (int, http.Header) {
	t.Helper()
	resp, err := http.Post(url+apiv1.PathStreams+"/"+id+"/chunks", "application/octet-stream", bytes.NewReader(chunk))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&m)
	return resp.StatusCode, resp.Header
}

// TestStreamQuotaRejects drives the admission layer over HTTP: an
// over-quota tenant gets 429 + Retry-After while another tenant is
// admitted untouched.
func TestStreamQuotaRejects(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig()
	cfg.TenantStreams = 1
	cfg.Clock = clk.Now
	svc, ts := newTestService(t, cfg)

	body := `{"tenant": "greedy", "workload": "stencil-default", "prefetcher": "cbws"}`
	code, first, _ := openStream(t, ts.URL, body)
	if code != http.StatusCreated {
		t.Fatalf("first open: %d %v", code, first)
	}
	code, m, hdr := openStream(t, ts.URL, body)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota open: %d %v, want 429", code, m)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// The other tenant is unaffected by greedy's quota exhaustion.
	code, m, _ = openStream(t, ts.URL, `{"tenant": "polite", "workload": "stencil-default", "prefetcher": "cbws"}`)
	if code != http.StatusCreated {
		t.Fatalf("in-quota tenant rejected: %d %v", code, m)
	}
	vars := svc.Counters()
	if vars.StreamsRejected != 1 {
		t.Fatalf("streams_rejected_429 = %d, want 1", vars.StreamsRejected)
	}
	found := false
	for _, tv := range vars.Tenants {
		if tv.Tenant == "greedy" {
			found = true
			if tv.RejectedQuota != 1 {
				t.Fatalf("greedy rejected_quota = %d, want 1", tv.RejectedQuota)
			}
		}
	}
	if !found {
		t.Fatal("tenant greedy missing from vars")
	}
}

// TestStreamRateLimit429 exhausts a tenant's byte bucket and checks the
// 429 + Retry-After reject, then the deterministic refill.
func TestStreamRateLimit429(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig()
	cfg.TenantRateBytes = 1024
	cfg.TenantBurstBytes = 4096
	cfg.Clock = clk.Now
	_, ts := newTestService(t, cfg)

	data := encodeWorkloadTrace(t, "stencil-default", cfg.BaseSim.MaxInstructions)
	if len(data) < 8192 {
		t.Fatalf("trace too small (%d bytes) to exercise the bucket", len(data))
	}
	code, m, _ := openStream(t, ts.URL, `{"tenant": "pacer", "workload": "stencil-default", "prefetcher": "cbws"}`)
	if code != http.StatusCreated {
		t.Fatalf("open: %d %v", code, m)
	}
	id := m["id"].(string)

	if code, _ := postChunk(t, ts.URL, id, data[:4096]); code != http.StatusOK {
		t.Fatalf("burst chunk: %d, want 200", code)
	}
	code, hdr := postChunk(t, ts.URL, id, data[4096:8192])
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-rate chunk: %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("rate-limit 429 without Retry-After")
	}
	// 4096 bytes at 1024 B/s: four seconds of refill make it admissible.
	clk.Advance(4 * time.Second)
	if code, _ := postChunk(t, ts.URL, id, data[4096:8192]); code != http.StatusOK {
		t.Fatalf("post-refill chunk: %d, want 200", code)
	}
	// A chunk that exceeds the burst can never be granted: permanent 413.
	big := make([]byte, 8192)
	code, hdr = postChunk(t, ts.URL, id, big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-burst chunk: %d, want 413", code)
	}
	if hdr.Get("Retry-After") != "" {
		t.Fatal("over-burst 413 must not carry Retry-After (it is permanent)")
	}
}

// TestStreamBufferBackpressure checks the bounded-buffer 413s at the
// ingest layer: retryable when the simulator is merely behind, hard
// when the chunk could never fit.
func TestStreamBufferBackpressure(t *testing.T) {
	clk := newFakeClock()
	tt := newTenantTable(1<<30, 1<<30)
	ten := tt.get("t", clk.Now())
	ten.admitOpen(0)
	st := newStream("st-test", JobSpec{Workload: "w"}, "t", ten, 64, clk.Now())

	head := encodeTestHeader(t, "w")
	if _, rej := st.ingest(head, clk.Now()); rej != nil {
		t.Fatalf("header chunk rejected: %v", rej)
	}
	// 50 two-byte Instr events fit the 64-event ring.
	chunk := bytes.Repeat([]byte{byte(trace.Instr), 0x01}, 50)
	if _, rej := st.ingest(chunk, clk.Now()); rej != nil {
		t.Fatalf("first event chunk rejected: %v", rej)
	}
	// No simulator drains the ring here: the next chunk cannot fit right
	// now, but could after a drain — retryable 413.
	_, rej := st.ingest(chunk, clk.Now())
	if rej == nil || rej.code != http.StatusRequestEntityTooLarge || rej.retryAfter <= 0 {
		t.Fatalf("full-buffer reject = %+v, want retryable 413", rej)
	}
	// A chunk bigger than the whole ring can never fit — permanent 413.
	huge := bytes.Repeat([]byte{byte(trace.Instr), 0x01}, 100)
	_, rej = st.ingest(huge, clk.Now())
	if rej == nil || rej.code != http.StatusRequestEntityTooLarge || rej.retryAfter != 0 {
		t.Fatalf("oversized reject = %+v, want permanent 413", rej)
	}
}

// encodeTestHeader returns just the CBWT header bytes for name.
func encodeTestHeader(t *testing.T, name string) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, name)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	return b[:len(b)-1] // drop the terminator
}

// TestStreamIngestZeroAlloc pins the chunk ingest hot path at zero
// allocations per chunk: decoder, ring, hash, admission, and counter
// coalescing all run on preallocated state.
func TestStreamIngestZeroAlloc(t *testing.T) {
	clk := newFakeClock()
	tt := newTenantTable(1<<40, 1<<40)
	ten := tt.get("t", clk.Now())
	st := newStream("st-alloc", JobSpec{Workload: "w"}, "t", ten, 1<<12, clk.Now())

	if _, rej := st.ingest(encodeTestHeader(t, "w"), clk.Now()); rej != nil {
		t.Fatalf("header rejected: %v", rej)
	}
	chunk := bytes.Repeat([]byte{byte(trace.Instr), 0x01}, 256)
	drain := make([]trace.Event, 512)
	now := clk.Now()
	allocs := testing.AllocsPerRun(200, func() {
		if _, rej := st.ingest(chunk, now); rej != nil {
			t.Fatalf("chunk rejected: %v", rej)
		}
		st.take(drain)
	})
	if allocs != 0 {
		t.Fatalf("ingest allocates %v per chunk, want 0", allocs)
	}
}

// TestStreamMalformedChunk checks a bad chunk fails the stream with 400
// and later chunks are refused.
func TestStreamMalformedChunk(t *testing.T) {
	_, ts := newTestService(t, testConfig())
	code, m, _ := openStream(t, ts.URL, `{"tenant": "acme", "workload": "stencil-default", "prefetcher": "cbws"}`)
	if code != http.StatusCreated {
		t.Fatalf("open: %d %v", code, m)
	}
	id := m["id"].(string)
	if code, _ := postChunk(t, ts.URL, id, []byte("this is not CBWT")); code != http.StatusBadRequest {
		t.Fatalf("garbage chunk: %d, want 400", code)
	}
	view, err := apiv1.NewClient(ts.URL).StreamStatus(id)
	if err != nil {
		t.Fatal(err)
	}
	if view.State != StreamFailed {
		t.Fatalf("state after bad chunk = %s, want failed", view.State)
	}
	if code, _ := postChunk(t, ts.URL, id, []byte{0xFF}); code != http.StatusConflict {
		t.Fatalf("chunk after failure: %d, want 409", code)
	}
}

// TestStreamIdleReaper checks the idle sweep: a cleanly terminated
// stream finalizes into a result, a mid-trace one is canceled.
func TestStreamIdleReaper(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig()
	cfg.Clock = clk.Now
	cfg.StreamIdleTimeout = time.Minute
	svc, ts := newTestService(t, cfg)
	client := apiv1.NewClient(ts.URL)

	// Stream 1: a terminated trace that under-runs the instruction
	// budget, never closed — the simulator drains it and then sits
	// waiting for chunks; only the reaper can finalize it.
	data := encodeWorkloadTrace(t, "stencil-default", cfg.BaseSim.MaxInstructions/2)
	done, err := client.OpenStream(apiv1.OpenStreamRequest{Tenant: "a", Workload: "stencil-default", Prefetcher: "cbws"})
	if err != nil {
		t.Fatal(err)
	}
	feedChunks(t, client, done.ID, data)
	// Stream 2: header only — cut mid-trace.
	stuck, err := client.OpenStream(apiv1.OpenStreamRequest{Tenant: "a", Workload: "stencil-default", Prefetcher: "cbws"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.SendChunk(stuck.ID, encodeTestHeader(t, "stencil-default"), nil); err != nil {
		t.Fatal(err)
	}

	clk.Advance(2 * time.Minute)
	svc.reapIdleStreams(clk.Now())

	view, err := client.WaitStream(done.ID)
	if err != nil {
		t.Fatalf("terminated idle stream should finalize: %v", err)
	}
	if view.Key == "" {
		t.Fatal("finalized idle stream has no result key")
	}
	if _, err := client.WaitStream(stuck.ID); err == nil {
		t.Fatal("mid-trace idle stream should be canceled")
	}
	st, _ := svc.Stream(stuck.ID)
	if got := st.View().State; got != StreamCanceled {
		t.Fatalf("mid-trace idle stream state = %s, want canceled", got)
	}
}

// TestStreamDrainFinalizeOrCancel checks graceful drain settles every
// open stream: terminated traces finalize into cached results,
// mid-trace streams cancel — and Drain returns only once both runners
// exited.
func TestStreamDrainFinalizeOrCancel(t *testing.T) {
	cfg := testConfig()
	svc, ts := newTestService(t, cfg)
	client := apiv1.NewClient(ts.URL)

	// A terminated but under-budget trace: still open at drain time,
	// finalizable because its byte stream ended cleanly.
	data := encodeWorkloadTrace(t, "stencil-default", cfg.BaseSim.MaxInstructions/2)
	fin, err := client.OpenStream(apiv1.OpenStreamRequest{Tenant: "a", Workload: "stencil-default", Prefetcher: "cbws"})
	if err != nil {
		t.Fatal(err)
	}
	feedChunks(t, client, fin.ID, data)
	cut, err := client.OpenStream(apiv1.OpenStreamRequest{Tenant: "b", Workload: "stencil-default", Prefetcher: "cbws"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.SendChunk(cut.ID, encodeTestHeader(t, "stencil-default"), nil); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	finSt, _ := svc.Stream(fin.ID)
	v := finSt.View()
	if v.State != StreamDone || v.Key == "" {
		t.Fatalf("terminated stream after drain: %s key=%q, want done with key", v.State, v.Key)
	}
	if _, ok := svc.Result(v.Key); !ok {
		t.Fatal("drained stream's result missing from cache")
	}
	cutSt, _ := svc.Stream(cut.ID)
	if got := cutSt.View().State; got != StreamCanceled {
		t.Fatalf("mid-trace stream after drain = %s, want canceled", got)
	}
}

// TestStreamOpenValidation checks open-time rejects.
func TestStreamOpenValidation(t *testing.T) {
	_, ts := newTestService(t, testConfig())
	cases := map[string]string{
		"missing tenant":     `{"workload": "w", "prefetcher": "cbws"}`,
		"missing workload":   `{"tenant": "a", "prefetcher": "cbws"}`,
		"unknown prefetcher": `{"tenant": "a", "workload": "w", "prefetcher": "nope"}`,
		"unknown field":      `{"tenant": "a", "workload": "w", "prefetcher": "cbws", "bogus": 1}`,
	}
	for name, body := range cases {
		if code, m, _ := openStream(t, ts.URL, body); code != http.StatusBadRequest {
			t.Errorf("%s: %d %v, want 400", name, code, m)
		}
	}
	// Unregistered workload names are allowed — the trace arrives over
	// the wire — they just never adopt a closed-job cache key.
	if code, m, _ := openStream(t, ts.URL, `{"tenant": "a", "workload": "custom-app", "prefetcher": "cbws"}`); code != http.StatusCreated {
		t.Errorf("custom workload: %d %v, want 201", code, m)
	}
}

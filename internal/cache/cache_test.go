package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cbws/internal/mem"
)

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func small() Config {
	return Config{Name: "t", SizeBytes: 8 * mem.LineSize, Ways: 2, LatencyCycles: 2, MSHRs: 2}
}

func TestConfigValidate(t *testing.T) {
	good := []Config{
		small(),
		{Name: "l1", SizeBytes: 32 << 10, Ways: 4, LatencyCycles: 2, MSHRs: 4},
		{Name: "l2", SizeBytes: 2 << 20, Ways: 8, LatencyCycles: 30, MSHRs: 32},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: unexpected error %v", c.Name, err)
		}
	}
	bad := []Config{
		{Name: "zero"},
		{Name: "negWays", SizeBytes: 1024, Ways: -1, MSHRs: 1},
		{Name: "nonDiv", SizeBytes: 1000, Ways: 2, MSHRs: 1},
		{Name: "nonPow2Sets", SizeBytes: 3 * 2 * mem.LineSize, Ways: 2, MSHRs: 1},
		{Name: "noMSHR", SizeBytes: 1024, Ways: 2, MSHRs: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.Name)
		}
	}
}

func TestSets(t *testing.T) {
	cfg := Config{SizeBytes: 32 << 10, Ways: 4}
	if got := cfg.Sets(); got != 128 {
		t.Errorf("Sets = %d, want 128", got)
	}
}

func TestMissThenHit(t *testing.T) {
	c := mustCache(t, small())
	r := c.Access(100, 10)
	if !r.FilledNew {
		t.Fatalf("first access should miss: %+v", r)
	}
	fillAt := c.Fill(100, 10, 300, false)
	if fillAt != 310 {
		t.Errorf("fillAt = %d, want 310", fillAt)
	}
	// Before the fill completes, the access merges.
	r = c.Access(100, 200)
	if !r.Merged || r.ReadyAt != 310 {
		t.Errorf("merge: %+v", r)
	}
	// After the fill completes, it's a hit.
	r = c.Access(100, 400)
	if !r.Hit || r.ReadyAt != 402 {
		t.Errorf("hit: %+v", r)
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 2 || c.Stats.MergedMiss != 1 {
		t.Errorf("stats: %+v", c.Stats)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way cache: lines mapping to the same set evict in LRU order.
	c := mustCache(t, small()) // 4 sets
	sameSet := func(i int) mem.LineAddr { return mem.LineAddr(i * 4) }

	for i := 0; i < 2; i++ {
		c.Access(sameSet(i), uint64(i))
		c.Fill(sameSet(i), uint64(i), 0, false)
	}
	// Touch line 0 so line 1 becomes LRU.
	c.Access(sameSet(0), 10)
	// Insert a third line: must evict line 1.
	c.Fill(sameSet(2), 20, 0, false)
	if !c.Contains(sameSet(0), 30) {
		t.Error("line 0 (MRU) was evicted")
	}
	if c.Contains(sameSet(1), 30) {
		t.Error("line 1 (LRU) survived")
	}
	if !c.Contains(sameSet(2), 30) {
		t.Error("line 2 missing after fill")
	}
}

func TestEvictionCallback(t *testing.T) {
	c := mustCache(t, small())
	var evicted []mem.LineAddr
	c.OnEvict(func(l mem.LineAddr, dirty bool) { evicted = append(evicted, l) })
	sameSet := func(i int) mem.LineAddr { return mem.LineAddr(i * 4) }
	for i := 0; i < 3; i++ {
		c.Fill(sameSet(i), uint64(i*400), 0, false)
	}
	if len(evicted) != 1 || evicted[0] != sameSet(0) {
		t.Errorf("evicted = %v, want [%v]", evicted, sameSet(0))
	}
}

func TestInvalidate(t *testing.T) {
	c := mustCache(t, small())
	c.Fill(7, 0, 0, false)
	if !c.Contains(7, 10) {
		t.Fatal("line missing after fill")
	}
	c.Invalidate(7)
	if c.Contains(7, 10) {
		t.Error("line survived invalidation")
	}
	// Invalidating an absent line is a no-op.
	c.Invalidate(7)
}

func TestMSHRStall(t *testing.T) {
	c := mustCache(t, small()) // 2 MSHRs
	// Two outstanding fills occupy both MSHRs.
	f1 := c.Fill(1, 0, 300, false)
	f2 := c.Fill(2, 0, 300, false)
	if f1 != 300 || f2 != 300 {
		t.Fatalf("fills: %d %d", f1, f2)
	}
	// A third fill at cycle 10 must wait for an MSHR: completes at
	// 300 (earliest free) + 300.
	f3 := c.Fill(3, 10, 300, false)
	if f3 != 600 {
		t.Errorf("stalled fill completes at %d, want 600", f3)
	}
}

func TestMSHRReap(t *testing.T) {
	c := mustCache(t, small())
	c.Fill(1, 0, 100, false)
	c.Fill(2, 0, 100, false)
	// After both fills complete, MSHRs are free again: no stall.
	f := c.Fill(3, 200, 100, false)
	if f != 300 {
		t.Errorf("fill after reap completes at %d, want 300", f)
	}
}

func TestPrefetchAccounting(t *testing.T) {
	c := mustCache(t, small())
	issued, _ := c.TryPrefetch(5, 0, 300)
	if !issued || c.Stats.PrefetchIssued != 1 {
		t.Fatalf("prefetch not issued: %+v", c.Stats)
	}
	// Same line again: redundant.
	issued, reason := c.TryPrefetch(5, 1, 300)
	if issued || reason != RefusedResident {
		t.Errorf("redundant prefetch: issued=%v reason=%v", issued, reason)
	}
	if c.Stats.PrefetchRedundant != 1 {
		t.Errorf("stats: %+v", c.Stats)
	}
	// Demand use while in flight: late prefetch.
	r := c.Access(5, 100)
	if !r.Merged || !r.MergedPf {
		t.Errorf("late merge: %+v", r)
	}
	if c.Stats.PrefetchLate != 1 {
		t.Errorf("stats: %+v", c.Stats)
	}
}

func TestPrefetchTimelyUse(t *testing.T) {
	c := mustCache(t, small())
	c.TryPrefetch(5, 0, 100)
	r := c.Access(5, 200)
	if !r.Hit || !r.WasPfHit {
		t.Fatalf("timely hit: %+v", r)
	}
	if c.Stats.PrefetchUseful != 1 {
		t.Errorf("stats: %+v", c.Stats)
	}
	// Second use is a plain hit, not another useful prefetch.
	r = c.Access(5, 300)
	if !r.Hit || r.WasPfHit {
		t.Errorf("second use: %+v", r)
	}
	if c.Stats.PrefetchUseful != 1 {
		t.Errorf("double-counted useful prefetch: %+v", c.Stats)
	}
}

func TestPrefetchMSHRDrop(t *testing.T) {
	c := mustCache(t, small()) // 2 MSHRs
	c.Fill(1, 0, 300, false)
	c.Fill(2, 0, 300, false)
	issued, reason := c.TryPrefetch(3, 10, 300)
	if issued || reason != RefusedNoMSHR {
		t.Errorf("prefetch with full MSHRs: issued=%v reason=%v", issued, reason)
	}
	if c.Stats.PrefetchDropped != 1 {
		t.Errorf("stats: %+v", c.Stats)
	}
}

func TestWrongOnEviction(t *testing.T) {
	c := mustCache(t, small())
	sameSet := func(i int) mem.LineAddr { return mem.LineAddr(i * 4) }
	c.TryPrefetch(sameSet(0), 0, 0)
	// Fill two more lines into the set: the unused prefetch evicts.
	c.Fill(sameSet(1), 100, 0, false)
	c.Fill(sameSet(2), 200, 0, false)
	if c.Stats.PrefetchWrong != 1 {
		t.Errorf("wrong = %d, want 1", c.Stats.PrefetchWrong)
	}
}

func TestDrainWrong(t *testing.T) {
	c := mustCache(t, small())
	c.TryPrefetch(1, 0, 0)
	c.TryPrefetch(2, 0, 0)
	c.Access(1, 100) // line 1 used, line 2 not
	c.DrainWrong()
	if c.Stats.PrefetchWrong != 1 {
		t.Errorf("wrong = %d, want 1", c.Stats.PrefetchWrong)
	}
	// Draining twice must not double-count.
	c.DrainWrong()
	if c.Stats.PrefetchWrong != 1 {
		t.Errorf("wrong after second drain = %d", c.Stats.PrefetchWrong)
	}
}

func TestPinnedVictimSkipped(t *testing.T) {
	c := mustCache(t, small())
	sameSet := func(i int) mem.LineAddr { return mem.LineAddr(i * 4) }
	// Line 0 has an outstanding fill (pinned); line 1 is complete.
	c.Fill(sameSet(0), 0, 1000, false)
	c.Fill(sameSet(1), 0, 0, false)
	// New fill should evict the completed line 1, not the pinned one.
	c.Fill(sameSet(2), 10, 0, false)
	if resident, _, _ := c.Probe(sameSet(0)); !resident {
		t.Error("pinned line was evicted")
	}
	if resident, _, _ := c.Probe(sameSet(1)); resident {
		t.Error("completed line survived; pinned line should be kept")
	}
}

func TestResidentNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(small())
		if err != nil {
			return false
		}
		now := uint64(0)
		for i := 0; i < 500; i++ {
			now += uint64(rng.Intn(10))
			l := mem.LineAddr(rng.Intn(64))
			if rng.Intn(2) == 0 {
				if r := c.Access(l, now); r.FilledNew {
					c.Fill(l, now, uint64(rng.Intn(50)), false)
				}
			} else {
				c.TryPrefetch(l, now, uint64(rng.Intn(50)))
			}
			if c.ResidentLines() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestProbeContainsConsistency(t *testing.T) {
	// Property: Contains(l, now) is true iff Probe reports resident
	// with fillAt <= now.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(small())
		if err != nil {
			return false
		}
		now := uint64(0)
		for i := 0; i < 300; i++ {
			now += uint64(rng.Intn(20))
			l := mem.LineAddr(rng.Intn(32))
			if r := c.Access(l, now); r.FilledNew {
				c.Fill(l, now, uint64(rng.Intn(100)), rng.Intn(2) == 0)
			}
			probe := mem.LineAddr(rng.Intn(32))
			resident, fillAt, _ := c.Probe(probe)
			want := resident && fillAt <= now
			if c.Contains(probe, now) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDirtyEvictionWriteback(t *testing.T) {
	c := mustCache(t, small())
	sameSet := func(i int) mem.LineAddr { return mem.LineAddr(i * 4) }
	var dirtyEvicted []mem.LineAddr
	c.OnEvict(func(l mem.LineAddr, dirty bool) {
		if dirty {
			dirtyEvicted = append(dirtyEvicted, l)
		}
	})
	c.Fill(sameSet(0), 0, 0, false)
	c.MarkDirty(sameSet(0))
	c.Fill(sameSet(1), 100, 0, false) // clean
	// Third fill evicts line 0 (LRU, dirty).
	c.Fill(sameSet(2), 200, 0, false)
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
	if len(dirtyEvicted) != 1 || dirtyEvicted[0] != sameSet(0) {
		t.Errorf("dirty evictions: %v", dirtyEvicted)
	}
}

func TestMarkDirtyAbsentLineNoop(t *testing.T) {
	c := mustCache(t, small())
	c.MarkDirty(99) // must not panic or create state
	if c.ResidentLines() != 0 {
		t.Error("MarkDirty materialized a line")
	}
}

// Package batchalias is the fixture for the cbws/batchalias analyzer.
// Every type below implements the structural BatchSink shape
// (ConsumeBatch([]Ev) bool) and violates the borrow contract one way.
package batchalias

type Ev struct{ Addr uint64 }

func process([]Ev) {}

type keeper struct{ saved []Ev }

func (k *keeper) ConsumeBatch(batch []Ev) bool {
	k.saved = batch // want `retains the borrowed batch`
	return true
}

type mutator struct{}

func (mutator) ConsumeBatch(batch []Ev) bool {
	batch[0] = Ev{} // want `mutates the borrowed batch`
	return true
}

type appender struct{}

func (appender) ConsumeBatch(batch []Ev) bool {
	batch = append(batch, Ev{}) // want `appends to the borrowed batch`
	return len(batch) > 0
}

type slicer struct{ window []Ev }

func (s *slicer) ConsumeBatch(batch []Ev) bool {
	s.window = batch[:1] // want `retains the borrowed batch`
	return true
}

type pointer struct{}

func (pointer) ConsumeBatch(batch []Ev) bool {
	p := &batch[0]
	p.Addr = 1 // want `mutates the borrowed batch`
	return true
}

type sender struct{ ch chan []Ev }

func (s *sender) ConsumeBatch(batch []Ev) bool {
	s.ch <- batch // want `sends the borrowed batch on a channel`
	return true
}

type asyncer struct{}

func (asyncer) ConsumeBatch(batch []Ev) bool {
	go process(batch) // want `passes the borrowed batch to a goroutine`
	return true
}

type closer struct{ fn func() int }

func (c *closer) ConsumeBatch(batch []Ev) bool {
	c.fn = func() int { return len(batch) } // want `closure inside ConsumeBatch captures the borrowed batch`
	return true
}

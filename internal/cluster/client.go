package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"sync"

	apiv1 "cbws/api/v1"
)

// Client drives a cbwsd fleet through the ring: submissions route to
// the key's owner, and every operation fails over along the ring
// sequence when a worker is unreachable. Content-addressed idempotent
// jobs make that safe — resubmitting a cell to a different worker can
// only produce the identical result (or find it already cached /
// peer-fetched).
//
// A worker that fails at the transport level is marked down for the
// lifetime of the Client; later operations skip it. API-level errors
// (400, 404, 409, persistent 429) are the server answering and are
// never failover triggers — except 503, which a draining worker
// returns on submit.
type Client struct {
	ring *Ring

	mu      sync.Mutex
	workers map[string]*apiv1.Client //cbws:guardedby mu
	down    map[string]bool          //cbws:guardedby mu
}

// New builds a cluster client over the worker base URLs. configure,
// when non-nil, is applied to each per-worker api/v1 client (budgets,
// jitter source, log hooks) after construction.
func New(urls []string, configure func(*apiv1.Client)) (*Client, error) {
	ring, err := NewRing(urls, 0)
	if err != nil {
		return nil, err
	}
	// The worker map is fully built before the Client is published, so
	// no lock is taken during construction.
	workers := make(map[string]*apiv1.Client, len(urls))
	for _, u := range ring.Nodes() {
		w := apiv1.NewClient(u)
		if configure != nil {
			configure(w)
		}
		workers[w.Base] = w
	}
	return &Client{
		ring:    ring,
		workers: workers,
		down:    make(map[string]bool),
	}, nil
}

// Workers returns the fleet's base URLs in canonical ring order.
func (c *Client) Workers() []string { return c.ring.Nodes() }

// Worker returns the api/v1 client for one base URL ("" or unknown:
// nil).
func (c *Client) Worker(url string) *apiv1.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workers[url]
}

// Owner returns the worker the ring assigns to routeKey.
func (c *Client) Owner(routeKey string) string { return c.ring.Owner(routeKey) }

// markDown records a worker as unreachable; subsequent operations skip
// it.
func (c *Client) markDown(url string) {
	c.mu.Lock()
	c.down[url] = true
	c.mu.Unlock()
}

// isDown reports whether url has been marked unreachable.
func (c *Client) isDown(url string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down[url]
}

// Down returns the workers currently marked unreachable.
func (c *Client) Down() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, u := range c.ring.Nodes() {
		if c.down[u] {
			out = append(out, u)
		}
	}
	return out
}

// failover reports whether err means "try the next worker": transport
// failures and 503 (draining). API answers like 400/404/409 are final.
func failover(err error) bool {
	if err == nil {
		return false
	}
	var apiErr *apiv1.Error
	if errors.As(err, &apiErr) {
		return apiErr.Code == http.StatusServiceUnavailable
	}
	return true
}

// Submit posts body to routeKey's owner, failing over along the ring
// sequence. It returns the accepted view and the worker that took the
// job — status polls for the job must go back to that worker.
func (c *Client) Submit(routeKey string, body []byte) (apiv1.JobView, string, error) {
	var lastErr error
	tried := 0
	for _, url := range c.ring.Sequence(routeKey) {
		if c.isDown(url) {
			continue
		}
		tried++
		view, err := c.Worker(url).Submit(body)
		if err == nil {
			return view, url, nil
		}
		if !failover(err) {
			return apiv1.JobView{}, url, err
		}
		c.markDown(url)
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: all %d workers marked down", c.ring.Len())
	}
	return apiv1.JobView{}, "", fmt.Errorf("cluster: no worker accepted the job (%d tried): %w", tried, lastErr)
}

// Collect waits for the job submitted as body (content address key) on
// worker to finish and fetches its result. If the worker dies mid-wait
// the cell is resubmitted to the next live worker on the ring and the
// wait continues there — the new worker either peer-fetches the result
// or recomputes it bit-identically, so the caller never observes the
// failure beyond latency. Returns the terminal view, the result bytes,
// and the worker that finally served them.
func (c *Client) Collect(worker, routeKey string, body []byte, key string) (apiv1.JobView, []byte, string, error) {
	// One resubmission per remaining worker at most: a dead fleet must
	// surface as an error, not an infinite reroute loop.
	for hops := 0; hops <= c.ring.Len(); hops++ {
		w := c.Worker(worker)
		if w == nil {
			return apiv1.JobView{}, nil, "", fmt.Errorf("cluster: unknown worker %q", worker)
		}
		view, err := w.WaitDone(key)
		if err == nil {
			data, rerr := w.Result(key)
			if rerr == nil {
				return view, data, worker, nil
			}
			err = rerr
		}
		if !failover(err) {
			return view, nil, worker, err
		}
		c.markDown(worker)
		view, next, serr := c.Submit(routeKey, body)
		if serr != nil {
			return apiv1.JobView{}, nil, "", fmt.Errorf("cluster: resubmitting %.12s… after %s died: %w", key, worker, serr)
		}
		if view.Key != key {
			// Same body must produce the same content address everywhere;
			// a mismatch means the fleet disagrees on code version or base
			// config and results would not be comparable.
			return apiv1.JobView{}, nil, "", fmt.Errorf(
				"cluster: %s keyed the job %.12s…, expected %.12s… — fleet is not homogeneous (code version or base config differs)",
				next, view.Key, key)
		}
		worker = next
	}
	return apiv1.JobView{}, nil, "", fmt.Errorf("cluster: job %.12s… kept failing over; fleet unstable", key)
}

// StatusAny looks key up on every live worker in ring order and
// returns the first answer. Useful for `cbwsctl status` against a
// fleet, where the caller does not know which worker owns the job.
func (c *Client) StatusAny(key string) (apiv1.JobView, error) {
	return firstAny(c, key, func(w *apiv1.Client) (apiv1.JobView, error) { return w.Status(key) })
}

// ResultAny fetches key's result from the first worker that has it,
// in ring order — after a peer-fetch or a sweep any worker on the key's
// sequence may serve it.
func (c *Client) ResultAny(key string) ([]byte, error) {
	return firstAny(c, key, func(w *apiv1.Client) ([]byte, error) { return w.Result(key) })
}

// firstAny walks key's ring sequence and returns the first successful
// answer, skipping down workers and marking transport failures.
// API-level errors are remembered and returned only when no worker
// succeeds.
func firstAny[T any](c *Client, key string, op func(*apiv1.Client) (T, error)) (T, error) {
	var zero T
	var lastErr error
	for _, url := range c.ring.Sequence(key) {
		if c.isDown(url) {
			continue
		}
		v, err := op(c.Worker(url))
		if err == nil {
			return v, nil
		}
		if failover(err) {
			c.markDown(url)
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: all %d workers marked down", c.ring.Len())
	}
	return zero, lastErr
}

package check_test

import (
	"math/rand"
	"testing"

	"cbws/internal/check"
	"cbws/internal/mem"
	"cbws/internal/prefetch"
	"cbws/internal/prefetch/learned"
)

// pythiaConfigs returns matched production/reference parameter sets.
// Every field is explicit (the reference does no defaulting); the
// non-default variants shrink the tables and queue so aliasing,
// evaluation-queue churn, Q saturation and exploration all trigger
// under short streams.
func pythiaConfigs() []struct {
	name string
	real learned.PythiaConfig
	ref  check.RefPythiaConfig
} {
	mk := func(name string, actions []int8, f1, f2, hist, eq, qbits int,
		alpha, gamma, eps uint, age uint64) struct {
		name string
		real learned.PythiaConfig
		ref  check.RefPythiaConfig
	} {
		return struct {
			name string
			real learned.PythiaConfig
			ref  check.RefPythiaConfig
		}{
			name: name,
			real: learned.PythiaConfig{Actions: actions, Feature1Entries: f1, Feature2Entries: f2,
				DeltaHistory: hist, EQSize: eq, QBits: qbits,
				AlphaShift: alpha, GammaShift: gamma, EpsilonShift: eps, TimelyAge: age,
				RewardAccurateTimely: 20, RewardAccurateLate: 12, RewardInaccurate: -14,
				RewardNoPrefGood: 12, RewardNoPrefBad: -4},
			ref: check.RefPythiaConfig{Actions: actions, Feature1Entries: f1, Feature2Entries: f2,
				DeltaHistory: hist, EQSize: eq, QBits: qbits,
				AlphaShift: alpha, GammaShift: gamma, EpsilonShift: eps, TimelyAge: age,
				RewardAccurateTimely: 20, RewardAccurateLate: 12, RewardInaccurate: -14,
				RewardNoPrefGood: 12, RewardNoPrefBad: -4},
		}
	}
	return []struct {
		name string
		real learned.PythiaConfig
		ref  check.RefPythiaConfig
	}{
		mk("default", []int8{0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 32, -1, -2, -3, -6},
			4096, 1024, 4, 64, 16, 3, 2, 6, 8),
		// Tiny tables and a 4-deep queue: constant aliasing and
		// eviction churn; 8-bit Q saturates quickly.
		mk("tiny", []int8{0, 1, -1, 2}, 64, 32, 2, 4, 8, 2, 1, 3, 2),
		// Deep history, heavy exploration.
		mk("deep", []int8{0, 1, 2, 4, 8, -1, -4, 63, -63}, 256, 128, 6, 16, 12, 4, 3, 4, 4),
	}
}

// learnedPythiaStats converts production stats for struct comparison.
func learnedPythiaStats(s learned.PythiaStats) check.RefPythiaStats {
	return check.RefPythiaStats{
		Triggers:       s.Triggers,
		Issued:         s.Issued,
		Explores:       s.Explores,
		AccurateTimely: s.AccurateTimely,
		AccurateLate:   s.AccurateLate,
		Inaccurate:     s.Inaccurate,
		NoPrefGood:     s.NoPrefGood,
		NoPrefBad:      s.NoPrefBad,
		QUpdates:       s.QUpdates,
	}
}

// drivePythiaPair feeds one pseudo-random access stream to the
// production agent and the naive reference, comparing the issued
// prefetch stream after every event plus final statistics. The stream
// mixes strided loop phases (which the agent learns), phase changes,
// random noise, cache hits (reward-scan-only events) and prefetched
// first uses.
func drivePythiaPair(t testingT, p *learned.Pythia, ref *check.RefPythia, rng *rand.Rand, events int) {
	var gotIssued, wantIssued []mem.LineAddr
	issueGot := func(l mem.LineAddr) { gotIssued = append(gotIssued, l) }
	issueWant := func(l mem.LineAddr) { wantIssued = append(wantIssued, l) }

	base := mem.LineAddr(rng.Intn(1 << 22))
	stride := int64(rng.Intn(7) - 3)
	pc := uint64(0x400000 + rng.Intn(8)*0x40)
	pos := int64(0)
	for i := 0; i < events; i++ {
		if rng.Intn(400) == 0 { // phase change
			base = mem.LineAddr(rng.Intn(1 << 22))
			stride = int64(rng.Intn(7) - 3)
			pc = uint64(0x400000 + rng.Intn(8)*0x40)
			pos = 0
		}
		var line mem.LineAddr
		if rng.Intn(6) != 0 {
			line = base.Add(pos*stride + int64(rng.Intn(2)))
			pos++
		} else {
			line = mem.LineAddr(rng.Intn(1 << 22))
		}
		a := prefetch.Access{PC: pc, Line: line, Addr: line.Byte()}
		switch rng.Intn(5) {
		case 0:
			a.HitL1 = true
		case 1:
			a.HitL2 = true
		case 2:
			a.PfHit = true
		}
		p.OnAccess(a, issueGot)
		ref.OnAccess(a, issueWant)
		if len(gotIssued) != len(wantIssued) {
			t.Fatalf("event %d: issued %d prefetches, ref issued %d",
				i, len(gotIssued), len(wantIssued))
		}
		for j := range gotIssued {
			if gotIssued[j] != wantIssued[j] {
				t.Fatalf("event %d: prefetch %d diverged: real %v, ref %v",
					i, j, gotIssued[j], wantIssued[j])
			}
		}
		gotIssued, wantIssued = gotIssued[:0], wantIssued[:0]
	}
	if got := learnedPythiaStats(p.Stats); got != ref.Stats {
		t.Fatalf("stats diverged:\n real %+v\n  ref %+v", got, ref.Stats)
	}
}

// TestPythiaVsReference drives over a million events through the
// production Pythia-style agent (flat preallocated Q-tables, ring
// buffers) and the naive map-and-slice reference, across three
// hardware configurations, requiring identical prefetch streams and
// statistics — including the ε-greedy exploration sequence and the
// fixed-point SARSA updates.
func TestPythiaVsReference(t *testing.T) {
	prev := check.Enabled
	check.Enabled = true
	defer func() { check.Enabled = prev }()

	const seeds, eventsPerSeed = 3, 120_000 // 3 cfgs × 3 seeds × 120k ≈ 1.1M
	for _, cfg := range pythiaConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				p := learned.NewPythia(cfg.real)
				ref := check.NewRefPythia(cfg.ref)
				drivePythiaPair(t, p, ref, rand.New(rand.NewSource(seed)), eventsPerSeed)
			}
		})
	}
}

// gazeConfigs returns matched production/reference parameter sets.
func gazeConfigs() []struct {
	name string
	real learned.GazeConfig
	ref  check.RefGazeConfig
} {
	mk := func(name string, region, active, patterns, order int, confMax, confThr int8) struct {
		name string
		real learned.GazeConfig
		ref  check.RefGazeConfig
	} {
		return struct {
			name string
			real learned.GazeConfig
			ref  check.RefGazeConfig
		}{
			name: name,
			real: learned.GazeConfig{RegionBytes: region, ActiveEntries: active,
				PatternEntries: patterns, OrderLines: order, ConfMax: confMax, ConfThreshold: confThr},
			ref: check.RefGazeConfig{RegionBytes: region, ActiveEntries: active,
				PatternEntries: patterns, OrderLines: order, ConfMax: confMax, ConfThreshold: confThr},
		}
	}
	return []struct {
		name string
		real learned.GazeConfig
		ref  check.RefGazeConfig
	}{
		mk("default", 4096, 64, 512, 8, 3, 2),
		// 4 active regions and 16 patterns: constant LRU eviction and
		// row aliasing; replay gate at one confirmation.
		mk("tiny", 512, 4, 16, 4, 2, 1),
		mk("wide", 2048, 16, 64, 16, 5, 3),
	}
}

func learnedGazeStats(s learned.GazeStats) check.RefGazeStats {
	return check.RefGazeStats{
		Generations:       s.Generations,
		SingleLine:        s.SingleLine,
		PatternsLearned:   s.PatternsLearned,
		PatternsConfirmed: s.PatternsConfirmed,
		PatternsDiverged:  s.PatternsDiverged,
		Replays:           s.Replays,
		LinesPrefetched:   s.LinesPrefetched,
	}
}

// driveGazePair feeds one pseudo-random access/eviction stream to the
// production prefetcher and the naive reference, comparing the issued
// prefetch stream after every event plus final statistics. The stream
// revisits a small set of regions with recurring per-PC footprints (so
// patterns confirm and replay), mixed with noise accesses, hits, and
// cache evictions that close generations.
func driveGazePair(t testingT, g *learned.Gaze, ref *check.RefGaze, rng *rand.Rand, events int) {
	var gotIssued, wantIssued []mem.LineAddr
	issueGot := func(l mem.LineAddr) { gotIssued = append(gotIssued, l) }
	issueWant := func(l mem.LineAddr) { wantIssued = append(wantIssued, l) }

	lines := g.Config().RegionBytes >> 6
	for i := 0; i < events; i++ {
		if rng.Intn(10) == 0 { // eviction, sometimes of an active region
			line := mem.LineAddr(uint64(rng.Intn(32))<<uint(mem.Log2(uint64(lines))) | uint64(rng.Intn(lines)))
			g.OnCacheEvict(line)
			ref.OnCacheEvict(line)
			continue
		}
		region := uint64(rng.Intn(32))
		pc := uint64(0x400000 + (region%4)*0x40) // PC correlated with region class
		// Footprint shape recurs per PC class with occasional deviation.
		off := int64((int(region%4)*7 + rng.Intn(6)*3) % lines)
		if rng.Intn(12) == 0 {
			off = int64(rng.Intn(lines))
		}
		line := mem.LineAddr(region<<uint(mem.Log2(uint64(lines))) | uint64(off))
		a := prefetch.Access{PC: pc, Line: line, Addr: line.Byte()}
		switch rng.Intn(5) {
		case 0:
			a.HitL1 = true
		case 1:
			a.PfHit = true
		}
		g.OnAccess(a, issueGot)
		ref.OnAccess(a, issueWant)
		if len(gotIssued) != len(wantIssued) {
			t.Fatalf("event %d: issued %d prefetches, ref issued %d",
				i, len(gotIssued), len(wantIssued))
		}
		for j := range gotIssued {
			if gotIssued[j] != wantIssued[j] {
				t.Fatalf("event %d: prefetch %d diverged: real %v, ref %v",
					i, j, gotIssued[j], wantIssued[j])
			}
		}
		gotIssued, wantIssued = gotIssued[:0], wantIssued[:0]
	}
	if got := learnedGazeStats(g.Stats); got != ref.Stats {
		t.Fatalf("stats diverged:\n real %+v\n  ref %+v", got, ref.Stats)
	}
}

// TestGazeVsReference drives over a million events through the
// production Gaze-style prefetcher (fixed bitmap tables, linear-scan
// CAM) and the naive map-based reference, across three hardware
// configurations, requiring identical prefetch streams and statistics
// — including replay order and the LRU eviction sequence.
func TestGazeVsReference(t *testing.T) {
	prev := check.Enabled
	check.Enabled = true
	defer func() { check.Enabled = prev }()

	const seeds, eventsPerSeed = 3, 120_000 // 3 cfgs × 3 seeds × 120k ≈ 1.1M
	for _, cfg := range gazeConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				g := learned.NewGaze(cfg.real)
				ref := check.NewRefGaze(cfg.ref)
				driveGazePair(t, g, ref, rand.New(rand.NewSource(seed)), eventsPerSeed)
			}
		})
	}
}

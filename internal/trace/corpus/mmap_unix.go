//go:build unix

package corpus

import (
	"errors"
	"os"
	"syscall"
)

// errMmapUnavailable makes Open fall through to the io.ReaderAt path.
var errMmapUnavailable = errors.New("corpus: mmap unavailable")

// mmapFile maps the whole file read-only and returns the mapping plus
// its release function. Callers fall back to positioned reads on error.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, nil, errMmapUnavailable
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"cbws/internal/trace"
	"cbws/internal/trace/corpus"
	"cbws/internal/workload"
)

// CorpusSource serves workloads from packed CBWC trace corpora instead
// of live generators. It maps workload names (the name recorded in each
// corpus header) to opened corpora, so a harness run can replay
// captured traces at memory bandwidth while workloads without a packed
// corpus fall back to their generators untouched.
//
// A CorpusSource is immutable after OpenCorpusDir and safe for
// concurrent use: every Override hands out a fresh Replayer over the
// shared read-only Corpus.
type CorpusSource struct {
	dir     string
	corpora map[string]*corpus.Corpus
	hashes  map[string]string

	closeMu sync.Mutex
	closed  bool //cbws:guardedby closeMu
}

// OpenCorpusDir opens every *.cbwc file in dir, keyed by the workload
// name in its header. With mmap false the io.ReaderAt fallback path is
// forced (replay output is identical). Two corpora claiming the same
// workload name are rejected — the source must be unambiguous about
// which bytes back a name, because the content hash feeds cache keys.
func OpenCorpusDir(dir string, mmap bool) (*CorpusSource, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("harness: corpus dir: %w", err)
	}
	s := &CorpusSource{
		dir:     dir,
		corpora: make(map[string]*corpus.Corpus),
		hashes:  make(map[string]string),
	}
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".cbwc") {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		c, err := corpus.Open(path, corpus.OpenOptions{DisableMmap: !mmap})
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("harness: corpus %s: %w", path, err)
		}
		name := c.Name()
		if _, dup := s.corpora[name]; dup {
			c.Close()
			s.Close()
			return nil, fmt.Errorf("harness: corpus dir %s: two corpora claim workload %q", dir, name)
		}
		hash, err := c.Hash()
		if err != nil {
			c.Close()
			s.Close()
			return nil, fmt.Errorf("harness: corpus %s: %w", path, err)
		}
		s.corpora[name] = c
		s.hashes[name] = hash
	}
	if len(s.corpora) == 0 {
		s.Close()
		return nil, fmt.Errorf("harness: corpus dir %s holds no .cbwc files", dir)
	}
	return s, nil
}

// Dir returns the directory the source was opened from.
func (s *CorpusSource) Dir() string { return s.dir }

// Names returns the workload names with a packed corpus, sorted.
func (s *CorpusSource) Names() []string {
	out := make([]string, 0, len(s.corpora))
	for name := range s.corpora {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Has reports whether a corpus backs the named workload.
func (s *CorpusSource) Has(name string) bool {
	_, ok := s.corpora[name]
	return ok
}

// Hash returns the content address (hex SHA-256 of the file bytes) of
// the corpus backing name.
func (s *CorpusSource) Hash(name string) (string, bool) {
	h, ok := s.hashes[name]
	return h, ok
}

// Instructions returns the dynamic instruction count recorded in the
// corpus backing name (0 when absent), so callers can check a corpus
// covers their simulation window before trusting replay.
func (s *CorpusSource) Instructions(name string) uint64 {
	if c, ok := s.corpora[name]; ok {
		return c.Instructions()
	}
	return 0
}

// Override returns spec with Make rebound to corpus replay when a
// corpus backs spec.Name, and spec unchanged otherwise. Each
// constructed generator is an independent Replayer, so overridden
// specs stay safe for the harness's parallel fills.
func (s *CorpusSource) Override(spec workload.Spec) workload.Spec {
	c, ok := s.corpora[spec.Name]
	if !ok {
		return spec
	}
	spec.Make = func() trace.Generator { return c.NewReplayer() }
	return spec
}

// Close releases every opened corpus.
func (s *CorpusSource) Close() error {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, c := range s.corpora {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

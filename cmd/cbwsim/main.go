// Command cbwsim simulates one workload under one prefetching scheme on
// the Table II system and prints the collected metrics.
//
// Usage:
//
//	cbwsim -workload stencil-default -prefetcher cbws+sms [-n instructions]
//	cbwsim -workload stencil-default -obs run.json [-sample-interval N]
//	cbwsim -validate-record run.json
//	cbwsim -list
//
// With -obs a time-series probe samples the run every -sample-interval
// committed instructions and a structured run record (JSON manifest
// including the delta-encoded sample series) is written to the given
// path; -validate-record checks such a file against the schema.
// -debug-addr serves pprof and expvar diagnostics while the simulation
// runs. The run is cancellable: an interrupt aborts at the next trace
// batch boundary.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"cbws/internal/cli"
	"cbws/internal/debugsrv"
	"cbws/internal/harness"
	"cbws/internal/sim"
	"cbws/internal/workload"
)

func main() {
	wl := flag.String("workload", "stencil-default", "workload name (see -list)")
	pf := flag.String("prefetcher", "cbws+sms", "prefetcher name (see cbws.Prefetchers: none, stride, ghb-pc/dc, ghb-g/dc, sms, cbws, cbws+sms, ampm, markov, pythia, gaze)")
	n := flag.Uint64("n", 4_000_000, "instructions to simulate")
	warm := flag.Uint64("warmup", 1_000_000, "warmup instructions excluded from metrics")
	list := flag.Bool("list", false, "list workloads and exit")
	configPath := flag.String("config", "", "JSON system-config file (overrides Table II defaults)")
	dumpConfig := flag.Bool("dump-config", false, "print the effective configuration as JSON and exit")
	obs := flag.String("obs", "", "write a run record (JSON manifest + sample series) to this path")
	interval := flag.Uint64("sample-interval", 0, "probe sampling period in instructions (0: default)")
	validate := flag.String("validate-record", "", "validate a run-record JSON file against the schema and exit")
	debugAddr := flag.String("debug-addr", "", "serve pprof/expvar diagnostics on this address (e.g. :6060)")
	flag.Parse()

	if flag.NArg() > 0 {
		flag.Usage()
		cli.Usagef("cbwsim", "unexpected argument %q", flag.Arg(0))
	}
	if *warm >= *n {
		flag.Usage()
		cli.Usagef("cbwsim", "-warmup %d must be smaller than -n %d", *warm, *n)
	}

	if *validate != "" {
		rec, err := harness.ReadRunRecord(*validate)
		if err != nil {
			cli.Errorf("cbwsim", "%v", err)
		}
		fmt.Printf("%s: valid run record (schema %d, %s/%s, %d samples)\n",
			*validate, rec.Schema, rec.Workload, rec.Prefetcher, len(rec.Samples))
		return
	}

	if *debugAddr != "" {
		addr, err := debugsrv.Serve(*debugAddr)
		if err != nil {
			cli.Errorf("cbwsim", "%v", err)
		}
		fmt.Fprintf(os.Stderr, "cbwsim: diagnostics on http://%s/debug/pprof/ and /debug/vars\n", addr)
	}

	if *list {
		fmt.Println("memory-intensive workloads:")
		for _, s := range workload.MemoryIntensive() {
			fmt.Printf("  %-26s (%s)\n", s.Name, s.Suite)
		}
		fmt.Println("regular workloads:")
		for _, s := range workload.Regular() {
			fmt.Printf("  %-26s (%s)\n", s.Name, s.Suite)
		}
		return
	}

	spec, ok := workload.ByName(*wl)
	if !ok {
		cli.Errorf("cbwsim", "unknown workload %q (try -list)", *wl)
	}
	f, ok := harness.FactoryByName(*pf)
	if !ok {
		cli.Errorf("cbwsim", "unknown prefetcher %q", *pf)
	}

	cfg := sim.DefaultConfig()
	if *configPath != "" {
		var err error
		cfg, err = sim.LoadConfig(*configPath)
		if err != nil {
			cli.Errorf("cbwsim", "%v", err)
		}
	}
	cfg.MaxInstructions = *n
	cfg.WarmupInstructions = *warm
	if *dumpConfig {
		if err := sim.WriteConfig(os.Stdout, cfg); err != nil {
			cli.Errorf("cbwsim", "%v", err)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var opts []sim.Option
	var ts *sim.TimeSeries
	sampleEvery := *interval
	if *obs != "" {
		if sampleEvery == 0 {
			sampleEvery = sim.DefaultSampleInterval
		}
		ts = sim.NewTimeSeries(int(*n/sampleEvery) + 2)
		opts = append(opts, sim.WithProbe(ts), sim.WithSampleInterval(sampleEvery))
	}

	start := time.Now()
	res, err := sim.RunContext(ctx, cfg, spec.Make(), f.New(), opts...)
	if err != nil {
		cli.Errorf("cbwsim", "%v", err)
	}
	if ts != nil {
		rec := harness.NewRunRecord(cfg, res, sampleEvery, ts.Points(), time.Since(start))
		if err := rec.WriteJSON(*obs); err != nil {
			cli.Errorf("cbwsim", "%v", err)
		}
		fmt.Fprintf(os.Stderr, "cbwsim: wrote run record %s (%d samples)\n", *obs, len(rec.Samples))
	}

	m := res.Metrics
	fmt.Printf("workload     %s\nprefetcher   %s\n", res.Workload, res.Prefetcher)
	fmt.Printf("instructions %d\ncycles       %d\nIPC          %.4f\n", m.Instructions, m.Cycles, m.IPC())
	fmt.Printf("loads        %d\nstores       %d\nblocks       %d\n", m.Loads, m.Stores, m.Blocks)
	fmt.Printf("branches     %d (mispredict %.2f%%)\n", m.Branches, 100*m.MispredictRate())
	fmt.Printf("loop frac    %.1f%%\n", 100*m.LoopFrac)
	fmt.Printf("L2 demand    %d (misses %d, MPKI %.2f)\n", m.DemandL2, m.DemandL2Misses, m.MPKI())
	fmt.Printf("timely       %.1f%%\nshorter-wait %.1f%%\nnon-timely   %.1f%%\nmissing      %.1f%%\nwrong        %.1f%%\n",
		100*m.TimelyFrac(), 100*m.ShorterWTFrac(), 100*m.NonTimelyFrac(), 100*m.MissingFrac(), 100*m.WrongFrac())
	fmt.Printf("prefetches   issued %d, useful %d, late %d, redundant %d, dropped %d\n",
		m.PrefetchIssued, m.PrefetchUseful, m.PrefetchLate, m.PrefetchRedundant, m.PrefetchDropped)
	fmt.Printf("mem traffic  %d bytes read (demand %d), %d bytes written back\n", m.BytesFromMem, m.DemandBytes, m.WritebackBytes)
	fmt.Printf("perf/cost    %.3g IPC/byte\n", m.PerfPerByte())
}

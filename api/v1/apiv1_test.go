package apiv1

import (
	"encoding/json"
	"testing"

	"cbws/internal/harness"
)

// TestWireShapesPinned pins the exact marshaled bytes of the wire
// types. These shapes predate the api/v1 extraction — cbwsd daemons
// and cbwsctl clients from before it must interoperate with the ones
// after — so a diff here is a wire break, not a refactor.
func TestWireShapesPinned(t *testing.T) {
	cases := []struct {
		name string
		v    any
		want string
	}{
		{
			"JobView",
			JobView{
				Key: "k", Workload: "w", Prefetcher: "p", Status: StatusRunning,
				Progress: Progress{Instructions: 5, MaxInstructions: 10},
			},
			`{"key":"k","workload":"w","prefetcher":"p","status":"running","progress":{"instructions":5,"max_instructions":10}}`,
		},
		{
			"JobView cached+error",
			JobView{Key: "k", Status: StatusDone, Cached: true, Error: "boom"},
			`{"key":"k","workload":"","prefetcher":"","status":"done","progress":{"instructions":0,"max_instructions":0},"cached":true,"error":"boom"}`,
		},
		{
			"SubmitRequest minimal",
			SubmitRequest{Workload: "w", Prefetcher: "p"},
			`{"workload":"w","prefetcher":"p"}`,
		},
		{
			"SubmitRequest full",
			SubmitRequest{Workload: "w", Prefetcher: "p", Config: json.RawMessage(`{"MaxInstructions":1}`), WorkloadHash: "h"},
			`{"workload":"w","prefetcher":"p","config":{"MaxInstructions":1},"workload_hash":"h"}`,
		},
		{
			"ErrorBody",
			ErrorBody{Error: "no"},
			`{"error":"no"}`,
		},
		{
			"RosterEntry",
			RosterEntry{Name: "fft-simlarge", Suite: "splash2", MI: true},
			`{"name":"fft-simlarge","suite":"splash2","mi":true}`,
		},
		{
			"Healthz",
			Healthz{Status: "ok", Draining: false, CodeVersion: "abc"},
			`{"status":"ok","draining":false,"code_version":"abc"}`,
		},
	}
	for _, tc := range cases {
		b, err := json.Marshal(tc.v)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if string(b) != tc.want {
			t.Errorf("%s wire shape changed:\n got %s\nwant %s", tc.name, b, tc.want)
		}
	}
}

// TestJobKeyPinned pins one concrete content address. The key decides
// which on-disk cache entries and federated peer results are valid, so
// it may only change when the canonical input is changed deliberately
// (with a KeySchema bump or an accepted cache invalidation) — never as
// a side effect of refactoring. This exact value was produced by the
// pre-extraction internal/service implementation.
func TestJobKeyPinned(t *testing.T) {
	cfg := harness.DefaultOptions().Sim
	cfg.MaxInstructions = 400000
	cfg.WarmupInstructions = 100000
	spec := JobSpec{Workload: "stencil-default", Prefetcher: "cbws", Config: cfg}
	const want = "15cd20e2938e577b9ceba62d1a1c73cc2e032e99536254effef15e42791549b6"
	if got := spec.Key("pinned-code-version"); got != want {
		t.Fatalf("canonical job key drifted — this invalidates every existing cache:\n got %s\nwant %s", got, want)
	}
}

func TestStatusTerminal(t *testing.T) {
	for st, want := range map[Status]bool{
		StatusQueued: false, StatusRunning: false,
		StatusDone: true, StatusFailed: true, StatusCanceled: true,
	} {
		if st.Terminal() != want {
			t.Errorf("%s.Terminal() = %v, want %v", st, !want, want)
		}
	}
}

package prefetch

import (
	"cbws/internal/mem"
)

// GHBIndexMode selects how the global history buffer is keyed.
type GHBIndexMode int

const (
	// GlobalDC is GHB G/DC: a single global miss stream with delta
	// correlation.
	GlobalDC GHBIndexMode = iota
	// PCDC is GHB PC/DC: per-PC miss streams with delta correlation.
	PCDC
)

func (m GHBIndexMode) String() string {
	if m == GlobalDC {
		return "ghb-g/dc"
	}
	return "ghb-pc/dc"
}

// GHBConfig parametrizes the GHB prefetcher (Table II: 256 entries,
// history length 3, prefetch degree 3).
type GHBConfig struct {
	Mode          GHBIndexMode
	BufferEntries int
	HistoryLength int // deltas in the correlation key window
	Degree        int
	// TrainOnHits also records cache hits in the buffer and triggers
	// on them. The paper's GHB records misses and prefetches only on
	// misses — the static-policy limitation Section II contrasts the
	// compiler-hinted CBWS prefetcher against, which may track L1 hits
	// inside annotated loops.
	TrainOnHits bool
	StrideBits  int // Table III accounting
	PCBits      int
}

// DefaultGHBConfig returns the Table II configuration for the given mode.
func DefaultGHBConfig(mode GHBIndexMode) GHBConfig {
	return GHBConfig{
		Mode:          mode,
		BufferEntries: 256,
		HistoryLength: 3,
		Degree:        3,
		StrideBits:    12,
		PCBits:        48,
	}
}

// ghbEntry is one slot of the circular global history buffer. prevSeq
// links to the previous entry with the same index key; the link is valid
// only while that entry has not been overwritten.
type ghbEntry struct {
	line    mem.LineAddr
	seq     uint64
	prevSeq uint64
	hasPrev bool
}

// GHB is the global history buffer prefetcher of Nesbit & Smith, in
// either global (G/DC) or PC-localized (PC/DC) delta-correlation mode.
type GHB struct {
	NoBlocks
	cfg      GHBConfig
	buf      []ghbEntry
	seq      uint64 // next sequence number; entry seq s lives at s % len(buf)
	index    map[uint64]uint64
	scratch  []mem.LineAddr
	dscratch []int64
}

// NewGHB builds a GHB prefetcher; zero-value fields fall back to the
// defaults for cfg.Mode.
func NewGHB(cfg GHBConfig) *GHB {
	def := DefaultGHBConfig(cfg.Mode)
	if cfg.BufferEntries == 0 {
		cfg.BufferEntries = def.BufferEntries
	}
	if cfg.HistoryLength == 0 {
		cfg.HistoryLength = def.HistoryLength
	}
	if cfg.Degree == 0 {
		cfg.Degree = def.Degree
	}
	if cfg.StrideBits == 0 {
		cfg.StrideBits = def.StrideBits
	}
	if cfg.PCBits == 0 {
		cfg.PCBits = def.PCBits
	}
	return &GHB{
		cfg:     cfg,
		buf:     make([]ghbEntry, cfg.BufferEntries),
		index:   make(map[uint64]uint64),
		scratch: make([]mem.LineAddr, 0, 32),
	}
}

// Name implements Prefetcher.
func (g *GHB) Name() string { return g.cfg.Mode.String() }

// Reset implements Prefetcher.
func (g *GHB) Reset() {
	g.buf = make([]ghbEntry, g.cfg.BufferEntries)
	g.index = make(map[uint64]uint64)
	g.seq = 0
}

func (g *GHB) key(pc uint64) uint64 {
	if g.cfg.Mode == PCDC {
		return pc
	}
	return 0
}

// live reports whether the entry with sequence number s is still in the
// buffer, and returns it.
func (g *GHB) live(s uint64) (*ghbEntry, bool) {
	e := &g.buf[s%uint64(len(g.buf))]
	return e, e.seq == s && (g.seq-s) <= uint64(len(g.buf))
}

// push inserts a miss address into the buffer and links it to the
// previous entry with the same key.
func (g *GHB) push(key uint64, line mem.LineAddr) uint64 {
	s := g.seq
	g.seq++
	e := &g.buf[s%uint64(len(g.buf))]
	*e = ghbEntry{line: line, seq: s}
	if prev, ok := g.index[key]; ok {
		if _, alive := g.live(prev); alive {
			e.prevSeq = prev
			e.hasPrev = true
		}
	}
	g.index[key] = s
	// Bound the index table at the buffer size (a 256-entry index
	// table in hardware); evict arbitrarily when it overflows.
	if len(g.index) > len(g.buf) {
		for k, v := range g.index {
			if _, alive := g.live(v); !alive {
				delete(g.index, k)
			}
		}
	}
	return s
}

// stream collects the most recent addresses of the key stream ending at
// sequence s, newest first, up to max entries.
func (g *GHB) stream(s uint64, max int) []mem.LineAddr {
	out := g.scratch[:0]
	for len(out) < max {
		e, alive := g.live(s)
		if !alive {
			break
		}
		out = append(out, e.line)
		if !e.hasPrev {
			break
		}
		s = e.prevSeq
	}
	g.scratch = out
	return out
}

// OnAccess implements the delta-correlation lookup: on a triggering
// access, gather the key stream, form the two most recent deltas as the
// correlation key, locate the same delta pair earlier in the stream, and
// prefetch the addresses implied by the deltas that followed it.
func (g *GHB) OnAccess(a Access, issue IssueFunc) {
	// The paper's GHB records cache misses and prefetches only when a
	// miss occurs — the conservative static policy whose every-5th-
	// access residual Figure 3 illustrates. TrainOnHits lifts the
	// restriction for ablation studies.
	if !g.cfg.TrainOnHits && !a.Miss() {
		return
	}
	key := g.key(a.PC)
	s := g.push(key, a.Line)

	// addrs[0] is the current address; addrs[i] are progressively older.
	// The walk is capped well below the buffer size: delta correlation
	// only needs enough history to find a recent recurrence, and a
	// bounded walk matches the constant-time hardware lookup.
	walk := 8 * (g.cfg.HistoryLength + g.cfg.Degree)
	if walk > g.cfg.BufferEntries {
		walk = g.cfg.BufferEntries
	}
	addrs := g.stream(s, walk)
	if len(addrs) < g.cfg.HistoryLength+1 {
		return
	}
	// deltas[i] = addrs[i] - addrs[i+1]: deltas newest-first.
	n := len(addrs) - 1
	if cap(g.dscratch) < n {
		g.dscratch = make([]int64, n)
	}
	deltas := g.dscratch[:n]
	for i := 0; i < n; i++ {
		deltas[i] = addrs[i].Delta(addrs[i+1])
	}
	// Correlation key: the HistoryLength-1 most recent deltas
	// (Nesbit & Smith use a delta pair for history length 3).
	keyLen := g.cfg.HistoryLength - 1
	if keyLen < 1 {
		keyLen = 1
	}
	if n < keyLen+1 {
		return
	}
	// Find the most recent earlier occurrence of the key window.
	match := -1
	for j := 1; j+keyLen <= n; j++ {
		same := true
		for k := 0; k < keyLen; k++ {
			if deltas[j+k] != deltas[k] {
				same = false
				break
			}
		}
		if same {
			match = j
			break
		}
	}
	if match < 0 {
		return
	}
	// The deltas that followed the matched occurrence (the ones newer
	// than it) are the prediction, applied oldest-to-newest from the
	// current address. When the prefetch degree exceeds the distance to
	// the match, the delta sequence is treated as periodic and replayed
	// — for a constant stride (period 1) this degenerates to classic
	// degree-deep stride prefetching, as in Nesbit & Smith.
	addr := addrs[0]
	for k := 0; k < g.cfg.Degree; k++ {
		addr = addr.Add(deltas[match-1-k%match])
		issue(addr)
	}
}

// StorageBits implements the Table III estimates:
// G/DC:  (3 history strides + 3 prefetch strides) × 256
// PC/DC: G/DC + PC × 256.
func (g *GHB) StorageBits() uint64 {
	bits := uint64(2*g.cfg.HistoryLength*g.cfg.StrideBits) * uint64(g.cfg.BufferEntries)
	if g.cfg.Mode == PCDC {
		bits += uint64(g.cfg.PCBits) * uint64(g.cfg.BufferEntries)
	}
	return bits
}

// Package trace defines the committed-instruction event stream that the
// timing model consumes and that workloads (or the IR interpreter)
// produce.
//
// The stream corresponds to the in-order commit stage of the simulated
// core: the CBWS prefetcher, like the paper's hardware, observes memory
// accesses in program order together with the BLOCK_BEGIN / BLOCK_END
// marker instructions inserted by the annotation pass.
package trace

import (
	"fmt"

	"cbws/internal/mem"
)

// Kind classifies a trace event.
type Kind uint8

const (
	// Instr is a batch of non-memory instructions (ALU, branch, ...).
	// N carries the batch size.
	Instr Kind = iota
	// Load is a memory read by the instruction at PC from Addr.
	Load
	// Store is a memory write by the instruction at PC to Addr.
	Store
	// BlockBegin marks the start of an annotated code block (a tight
	// loop iteration). Block carries the static block ID.
	BlockBegin
	// BlockEnd marks the end of an annotated code block.
	BlockEnd
	// Branch is a conditional branch at PC whose outcome is Taken. The
	// engine consults the branch predictor and charges a refill
	// penalty on mispredictions.
	Branch
)

func (k Kind) String() string {
	switch k {
	case Instr:
		return "instr"
	case Load:
		return "load"
	case Store:
		return "store"
	case BlockBegin:
		return "block_begin"
	case BlockEnd:
		return "block_end"
	case Branch:
		return "branch"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one element of the committed instruction stream.
type Event struct {
	Kind  Kind
	PC    uint64   // static instruction address (Load/Store/Branch)
	Addr  mem.Addr // effective byte address (Load/Store)
	Block int      // static block ID (BlockBegin/BlockEnd)
	N     int      // batch size (Instr); 0 means 1
	Taken bool     // branch outcome (Branch)
}

// Count returns the number of dynamic instructions the event represents.
func (e Event) Count() int {
	if e.Kind == Instr {
		if e.N <= 0 {
			return 1
		}
		return e.N
	}
	return 1
}

// IsMem reports whether the event is a memory access.
func (e Event) IsMem() bool { return e.Kind == Load || e.Kind == Store }

func (e Event) String() string {
	switch e.Kind {
	case Instr:
		return fmt.Sprintf("instr x%d", e.Count())
	case Load:
		return fmt.Sprintf("load pc=%#x addr=%#x", e.PC, uint64(e.Addr))
	case Store:
		return fmt.Sprintf("store pc=%#x addr=%#x", e.PC, uint64(e.Addr))
	case BlockBegin:
		return fmt.Sprintf("block_begin id=%d", e.Block)
	case BlockEnd:
		return fmt.Sprintf("block_end id=%d", e.Block)
	case Branch:
		return fmt.Sprintf("branch pc=%#x taken=%v", e.PC, e.Taken)
	}
	return "event(?)"
}

// Sink consumes trace events. The timing model and the statistics
// collectors implement Sink.
type Sink interface {
	Consume(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Consume calls f(e).
func (f SinkFunc) Consume(e Event) { f(e) }

// Generator produces a trace by pushing events into a Sink. Workloads
// implement Generator; producing events by callback avoids materializing
// billion-event traces.
type Generator interface {
	// Name identifies the workload (used in reports).
	Name() string
	// Generate pushes the complete event stream into sink.
	Generate(sink Sink)
}

// GeneratorFunc adapts a named function to the Generator interface.
type GeneratorFunc struct {
	GenName string
	Fn      func(Sink)
}

// Name returns the generator name.
func (g GeneratorFunc) Name() string { return g.GenName }

// Generate runs the wrapped function.
func (g GeneratorFunc) Generate(sink Sink) { g.Fn(sink) }

// Trace is an in-memory event sequence. It implements both Sink (append)
// and Generator (replay), which makes it convenient for tests and for
// capturing small traces to inspect.
type Trace struct {
	TraceName string
	Events    []Event
}

// New returns an empty named trace.
func New(name string) *Trace { return &Trace{TraceName: name} }

// Name returns the trace name.
func (t *Trace) Name() string { return t.TraceName }

// Consume appends e to the trace.
func (t *Trace) Consume(e Event) { t.Events = append(t.Events, e) }

// Generate replays the captured events into sink.
func (t *Trace) Generate(sink Sink) {
	for _, e := range t.Events {
		sink.Consume(e)
	}
}

// Instructions returns the total dynamic instruction count of the trace.
func (t *Trace) Instructions() uint64 {
	var n uint64
	for _, e := range t.Events {
		n += uint64(e.Count())
	}
	return n
}

// Capture materializes the events produced by g.
func Capture(g Generator) *Trace {
	t := New(g.Name())
	g.Generate(t)
	return t
}

// Limit wraps a generator and truncates its stream after max dynamic
// instructions, mirroring the paper's 1-billion-instruction simulation
// windows. The truncation is co-operative: generation stops at the first
// event past the budget.
type Limit struct {
	Gen Generator
	Max uint64
}

// Name returns the underlying generator's name.
func (l Limit) Name() string { return l.Gen.Name() }

// stopGeneration is the panic sentinel used to unwind out of a
// generator once the instruction budget is exhausted.
type stopGeneration struct{}

// Generate forwards events until the instruction budget is reached.
func (l Limit) Generate(sink Sink) {
	var n uint64
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(stopGeneration); !ok {
				panic(r)
			}
		}
	}()
	l.Gen.Generate(SinkFunc(func(e Event) {
		if n >= l.Max {
			panic(stopGeneration{})
		}
		n += uint64(e.Count())
		sink.Consume(e)
	}))
}

// Tee duplicates a stream into several sinks in order.
type Tee []Sink

// Consume forwards e to every sink.
func (t Tee) Consume(e Event) {
	for _, s := range t {
		s.Consume(e)
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cbws/internal/lint/analysis"
)

// HotPathAnnotation marks a function as part of the zero-allocation
// steady state: it must appear on its own line in the function's doc
// comment. The contract is transitive — every module function a hot
// function statically calls must itself carry the annotation — so the
// whole reachable hot region is checked, not just the entry points.
const HotPathAnnotation = "//cbws:hotpath"

// hotFact is the object fact recorded for every annotated function so
// importing packages can verify cross-package calls.
type hotFact struct{}

// HotPathAlloc enforces the zero-allocation contract of //cbws:hotpath
// functions: no make/new, no map or slice literals, no escaping
// (address-taken) composite literals, no append to slices that are not
// owned by the receiver, no capturing closures, no goroutines, no fmt
// calls, no string concatenation, no interface conversions of
// non-pointer values, and no calls to unannotated module functions.
// Code inside an `if check.Enabled` block is exempt: checked builds
// may allocate.
var HotPathAlloc = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: "flag allocating constructs inside //cbws:hotpath functions " +
		"and calls from them to unannotated module functions",
	Run: runHotPathAlloc,
}

func runHotPathAlloc(pass *analysis.Pass) error {
	// Phase 1: record every annotated function (as a fact, so callers
	// in later-analyzed packages can see it) before checking bodies.
	var hot []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasHotAnnotation(fd) {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				pass.ExportObjectFact(obj, hotFact{})
				hot = append(hot, fd)
			}
		}
	}
	for _, fd := range hot {
		checkHotFunc(pass, fd)
	}
	return nil
}

func hasHotAnnotation(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == HotPathAnnotation {
			return true
		}
	}
	return false
}

// hotChecker walks one annotated function body.
type hotChecker struct {
	pass *analysis.Pass
	decl *ast.FuncDecl
	// owned holds the receiver object and local variables derived from
	// it by plain assignment/reslicing: appending to these reuses
	// preallocated receiver-owned capacity and is permitted.
	owned map[types.Object]bool
}

func checkHotFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	c := &hotChecker{pass: pass, decl: fd, owned: make(map[types.Object]bool)}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		if obj := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]; obj != nil {
			c.owned[obj] = true
		}
	}
	// Pre-pass: collect receiver-derived aliases (x := p.buf[...] etc.)
	// in source order, before judging appends against them.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if root := c.sliceRoot(as.Rhs[i]); root != nil && c.owned[root] {
				if obj := c.defOrUse(id); obj != nil {
					c.owned[obj] = true
				}
			}
		}
		return true
	})
	c.walkStmt(fd.Body)
}

func (c *hotChecker) defOrUse(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

// sliceRoot returns the base object of a slice-valued expression chain
// (ident, reslice, field, or index), or nil.
func (c *hotChecker) sliceRoot(expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return c.defOrUse(e)
	case *ast.SliceExpr:
		return c.sliceRoot(e.X)
	case *ast.SelectorExpr:
		return rootIdent(c.pass.TypesInfo, e)
	case *ast.IndexExpr:
		return rootIdent(c.pass.TypesInfo, e)
	case *ast.StarExpr:
		return c.sliceRoot(e.X)
	case *ast.UnaryExpr:
		// &p.table[i]: a pointer into receiver-owned storage keeps the
		// receiver as its root, matching the e := &p.table[i] idiom.
		if e.Op == token.AND {
			return c.sliceRoot(e.X)
		}
	}
	return nil
}

// walkStmt visits statements, skipping bodies of `if check.Enabled`
// blocks (the else branch still runs in production and is visited).
func (c *hotChecker) walkStmt(n ast.Node) {
	if n == nil {
		return
	}
	if ifs, ok := n.(*ast.IfStmt); ok && guardsCheckEnabled(c.pass.TypesInfo, ifs.Cond) {
		c.walkStmt(ifs.Init)
		c.walkStmt(ifs.Else)
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.IfStmt:
			if e != n && guardsCheckEnabled(c.pass.TypesInfo, e.Cond) {
				c.walkStmt(e.Init)
				c.walkStmt(e.Else)
				return false
			}
		case *ast.GoStmt:
			c.pass.Reportf(e.Pos(), "hot path spawns a goroutine")
		case *ast.FuncLit:
			c.checkFuncLit(e)
			return false // contents judged as part of the closure check
		case *ast.CompositeLit:
			c.checkCompositeLit(e)
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					c.pass.Reportf(e.Pos(), "hot path takes the address of a composite literal (escapes)")
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && c.isString(e.X) {
				c.pass.Reportf(e.Pos(), "hot path concatenates strings (allocates)")
			}
		case *ast.AssignStmt:
			if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 && c.isString(e.Lhs[0]) {
				c.pass.Reportf(e.Pos(), "hot path concatenates strings (allocates)")
			}
		case *ast.CallExpr:
			c.checkCall(e)
		}
		return true
	})
}

func (c *hotChecker) isString(expr ast.Expr) bool {
	t := c.pass.TypesInfo.TypeOf(expr)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (c *hotChecker) checkFuncLit(fl *ast.FuncLit) {
	// A closure allocates exactly when it captures variables of the
	// enclosing function; package-level references keep it static.
	captured := ""
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured != "" {
			return captured == ""
		}
		obj, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Pos() >= c.decl.Pos() && obj.Pos() < fl.Pos() {
			captured = obj.Name()
		}
		return true
	})
	if captured != "" {
		c.pass.Reportf(fl.Pos(), "hot path closure captures %q (allocates)", captured)
	}
}

func (c *hotChecker) checkCompositeLit(cl *ast.CompositeLit) {
	t := c.pass.TypesInfo.TypeOf(cl)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		c.pass.Reportf(cl.Pos(), "hot path builds a map literal (allocates)")
	case *types.Slice:
		c.pass.Reportf(cl.Pos(), "hot path builds a slice literal (allocates)")
	}
}

func (c *hotChecker) checkCall(call *ast.CallExpr) {
	info := c.pass.TypesInfo
	// Type conversions: converting a non-pointer-shaped value to an
	// interface boxes it.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && types.IsInterface(tv.Type) && !pointerShaped(info.TypeOf(call.Args[0])) {
			c.pass.Reportf(call.Pos(), "hot path converts non-pointer value to interface (allocates)")
		}
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.pass.Reportf(call.Pos(), "hot path calls make (allocates)")
			case "new":
				c.pass.Reportf(call.Pos(), "hot path calls new (allocates)")
			case "append":
				c.checkAppend(call)
			}
			return
		}
	}
	fn := calleeOf(info, call)
	if fn == nil {
		// Dynamic call: func value or interface method. The target is
		// unknowable statically; the contract is enforced at each
		// concrete implementation instead.
		c.checkArgsBox(call, nil)
		return
	}
	if pkgPathHasSuffix(fn.Pkg(), "fmt") {
		c.pass.Reportf(call.Pos(), "hot path calls fmt.%s (allocates)", fn.Name())
		return
	}
	if inModule(fn.Pkg(), c.pass.ModulePath) {
		if _, ok := c.pass.ImportObjectFact(fn); !ok {
			c.pass.Reportf(call.Pos(),
				"hot path calls %s, which is not annotated %s", fn.FullName(), HotPathAnnotation)
		}
	}
	c.checkArgsBox(call, fn)
}

// checkArgsBox flags arguments that box non-pointer values into
// interface parameters.
func (c *hotChecker) checkArgsBox(call *ast.CallExpr, fn *types.Func) {
	info := c.pass.TypesInfo
	sigType := info.TypeOf(call.Fun)
	if sigType == nil {
		return
	}
	sig, ok := sigType.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // x... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at := info.TypeOf(arg)
		if types.IsInterface(pt) && !pointerShaped(at) {
			c.pass.Reportf(arg.Pos(),
				"hot path passes non-pointer %s as interface argument (allocates)", at)
		}
	}
}

// checkAppend permits append only on receiver-owned slices, whose
// capacity the Reset/New path preallocated; anything else may grow.
func (c *hotChecker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	root := c.sliceRoot(call.Args[0])
	if root != nil && c.owned[root] {
		return
	}
	c.pass.Reportf(call.Pos(), "hot path appends to a slice not owned by the receiver (may allocate)")
}

// pointerShaped reports whether values of t convert to interface
// without allocating: pointers, maps, channels, funcs, unsafe
// pointers, and interfaces themselves.
func pointerShaped(t types.Type) bool {
	if t == nil {
		return true // be lenient on untypeable corners
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer || b.Kind() == types.UntypedNil
	}
	return false
}

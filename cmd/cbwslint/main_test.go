package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunExitCodes pins the driver's exit-status convention end to end:
// 2 for usage errors, 1 for findings and load failures, 0 when clean.
func TestRunExitCodes(t *testing.T) {
	tests := []struct {
		name       string
		args       []string
		wantCode   int
		wantStdout string // substring, "" to skip
		wantStderr string // substring, "" to skip
	}{
		{
			name:     "bad flag is a usage error",
			args:     []string{"-nonsense"},
			wantCode: 2,
		},
		{
			name:       "no packages is a usage error",
			args:       []string{},
			wantCode:   2,
			wantStderr: "usage: cbwslint",
		},
		{
			name:       "list exits clean",
			args:       []string{"-list"},
			wantCode:   0,
			wantStdout: "cbws/hotpathalloc",
		},
		{
			name:     "unresolvable pattern is a runtime failure",
			args:     []string{"./does-not-exist"},
			wantCode: 1,
		},
		{
			name:       "findings exit 1",
			args:       []string{"../../internal/lint/testdata/src/batchalias"},
			wantCode:   1,
			wantStdout: "(cbws/batchalias)",
			wantStderr: "findings",
		},
		{
			name:     "clean package exits 0",
			args:     []string{"."},
			wantCode: 0,
		},
		{
			name:       "list includes the v2 analyzers",
			args:       []string{"-list"},
			wantCode:   0,
			wantStdout: "cbws/guardedby",
		},
		{
			name:       "json findings exit 1 with machine-readable output",
			args:       []string{"-json", "../../internal/lint/testdata/src/batchalias"},
			wantCode:   1,
			wantStdout: `"analyzer": "cbws/batchalias"`,
			wantStderr: "findings",
		},
		{
			name:       "unknown analyzer name is a usage error",
			args:       []string{"-analyzers", "nope", "."},
			wantCode:   2,
			wantStderr: `unknown analyzer "nope"`,
		},
		{
			name:     "analyzer subset skips other analyzers' findings",
			args:     []string{"-analyzers", "guardedby", "../../internal/lint/testdata/src/batchalias"},
			wantCode: 0,
		},
		{
			name:       "write-compat refuses multiple packages",
			args:       []string{"-write-compat", ".", "../../internal/lint"},
			wantCode:   2,
			wantStderr: "exactly one package",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Errorf("exit code = %d, want %d\nstdout: %s\nstderr: %s",
					code, tc.wantCode, stdout.String(), stderr.String())
			}
			if tc.wantStdout != "" && !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Errorf("stdout %q does not contain %q", stdout.String(), tc.wantStdout)
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tc.wantStderr)
			}
		})
	}
}

// TestWriteCompat drives the manifest generator end to end in a
// scratch package: initial freeze, byte-determinism against the
// handwritten fixture manifest, idempotence, breaking-change refusal
// without a note, and the CompatVersion bump with one.
func TestWriteCompat(t *testing.T) {
	fixture := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "wirecompat")
	// The scratch dir must live inside the module for go list to load it.
	dir, err := os.MkdirTemp(filepath.Join("..", "..", "internal", "lint", "testdata"), "wiregen")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	src, err := os.ReadFile(filepath.Join(fixture, "wire.go"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wire.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}

	runIn := func(args ...string) (int, string, string) {
		var stdout, stderr bytes.Buffer
		code := run(args, &stdout, &stderr)
		return code, stdout.String(), stderr.String()
	}

	// Initial freeze: version 1, byte-identical to the handwritten
	// fixture manifest (the generator is the source of truth for both).
	if code, _, errOut := runIn("-write-compat", dir); code != 0 {
		t.Fatalf("initial -write-compat exited %d: %s", code, errOut)
	}
	got, err := os.ReadFile(filepath.Join(dir, "compat.json"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(fixture, "compat.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("generated manifest differs from fixture:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Idempotent regeneration keeps the bytes and the version.
	if code, _, errOut := runIn("-write-compat", dir); code != 0 {
		t.Fatalf("second -write-compat exited %d: %s", code, errOut)
	}
	again, err := os.ReadFile(filepath.Join(dir, "compat.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, again) {
		t.Error("regeneration without source changes is not byte-identical")
	}

	// A breaking edit (json tag rename) is refused without a note...
	broken := bytes.Replace(src, []byte("`json:\"workload\"`"), []byte("`json:\"workload_v2\"`"), 1)
	if bytes.Equal(broken, src) {
		t.Fatal("mutation did not apply")
	}
	if err := os.WriteFile(filepath.Join(dir, "wire.go"), broken, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runIn("-write-compat", dir)
	if code != 1 {
		t.Fatalf("breaking -write-compat without note exited %d, want 1 (stderr: %s)", code, errOut)
	}
	if !strings.Contains(out, "breaking:") || !strings.Contains(errOut, "-compat-bump") {
		t.Errorf("missing breaking report or bump hint:\nstdout: %s\nstderr: %s", out, errOut)
	}

	// ...and bumps CompatVersion with one.
	if code, _, errOut := runIn("-write-compat", "-compat-bump", "rename workload tag", dir); code != 0 {
		t.Fatalf("-write-compat with note exited %d: %s", code, errOut)
	}
	bumped, err := os.ReadFile(filepath.Join(dir, "compat.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(bumped), `"compat_version": 2`) ||
		!strings.Contains(string(bumped), "rename workload tag") {
		t.Errorf("bumped manifest missing version 2 or note:\n%s", bumped)
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"

	"cbws/internal/lint/analysis"
)

// ExpvarNamePattern is the pinned cbwsd naming convention for
// published expvar counters: lower_snake_case, no leading digit.
var ExpvarNamePattern = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// AtomicDiscipline enforces two rules around sync/atomic state. First,
// values of the atomic wrapper types (atomic.Int64, atomic.Bool,
// atomic.Pointer[T], ...) may only be used as method-call receivers or
// have their address taken — copying or reassigning a wrapper silently
// forks the value and breaks atomicity. Second, a plain field that is
// passed by address to a sync/atomic function anywhere in the package
// must never also be read or written directly: mixing atomic and
// non-atomic access is a data race the race detector only catches when
// the schedule cooperates. It also pins published expvar names to the
// cbwsd convention (lower_snake_case).
var AtomicDiscipline = &analysis.Analyzer{
	Name: "atomicdiscipline",
	Doc: "forbid copying atomic wrapper values and mixing sync/atomic " +
		"with plain loads/stores; pin expvar names to lower_snake_case",
	Run: runAtomicDiscipline,
}

func runAtomicDiscipline(pass *analysis.Pass) error {
	info := pass.TypesInfo
	// allowed marks wrapper-typed expressions in a legitimate position:
	// the receiver of an atomic method, or an address-of operand.
	allowed := make(map[ast.Node]bool)
	// atomicObjs maps plain variables/fields passed by address to a
	// sync/atomic function to one such call position; allowedPlain
	// marks those argument nodes themselves.
	atomicObjs := make(map[types.Object]token.Pos)
	allowedPlain := make(map[ast.Node]bool)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal &&
					isAtomicWrapper(sel.Recv()) {
					allowed[ast.Unparen(n.X)] = true
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND && isAtomicWrapper(info.TypeOf(n.X)) {
					allowed[ast.Unparen(n.X)] = true
				}
			case *ast.CallExpr:
				fn := calleeOf(info, n)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" ||
					fn.Type().(*types.Signature).Recv() != nil {
					return true
				}
				for _, a := range n.Args {
					u, ok := ast.Unparen(a).(*ast.UnaryExpr)
					if !ok || u.Op != token.AND {
						continue
					}
					operand := ast.Unparen(u.X)
					if obj := addressableObject(info, operand); obj != nil {
						if _, seen := atomicObjs[obj]; !seen {
							atomicObjs[obj] = n.Pos()
						}
						allowedPlain[operand] = true
					}
				}
			}
			return true
		})
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				v, ok := info.Uses[n.Sel].(*types.Var)
				if !ok || !v.IsField() {
					return true
				}
				if isAtomicWrapper(v.Type()) && !allowed[n] {
					pass.Reportf(n.Sel.Pos(), "atomic field %s copied or reassigned; wrapper values may only receive method calls or have their address taken", v.Name())
				}
				if _, atomic := atomicObjs[v]; atomic && !allowedPlain[n] {
					pass.Reportf(n.Sel.Pos(), "plain access to field %s, which is accessed with sync/atomic elsewhere in this package", v.Name())
				}
			case *ast.Ident:
				v, ok := info.Uses[n].(*types.Var)
				if !ok || v.IsField() {
					return true
				}
				if isAtomicWrapper(v.Type()) && !allowed[n] {
					pass.Reportf(n.Pos(), "atomic value %s copied or reassigned; wrapper values may only receive method calls or have their address taken", v.Name())
				}
				if _, atomic := atomicObjs[v]; atomic && !allowedPlain[n] {
					pass.Reportf(n.Pos(), "plain access to %s, which is accessed with sync/atomic elsewhere in this package", v.Name())
				}
			case *ast.CallExpr:
				checkExpvarName(pass, n)
			}
			return true
		})
	}
	return nil
}

// isAtomicWrapper reports whether t (or its pointee) is one of the
// sync/atomic wrapper types (Int64, Bool, Pointer[T], Value, ...).
func isAtomicWrapper(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// addressableObject resolves &operand's base variable: a field
// selector or a plain identifier.
func addressableObject(info *types.Info, operand ast.Expr) types.Object {
	switch e := operand.(type) {
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.IsField() {
			return v
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// checkExpvarName pins string-literal names passed to expvar
// constructors to the cbwsd convention.
func checkExpvarName(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeOf(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "expvar" {
		return
	}
	switch fn.Name() {
	case "Publish", "NewInt", "NewFloat", "NewMap", "NewString":
	default:
		return
	}
	if len(call.Args) == 0 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if !ExpvarNamePattern.MatchString(name) {
		pass.Reportf(lit.Pos(), "expvar name %q violates the cbwsd convention (want %s)", name, ExpvarNamePattern)
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"cbws/internal/lint/analysis"
)

// GoLifecycle forbids fire-and-forget goroutines in the long-lived
// packages: every `go` statement must be tied to a join mechanism the
// analyzer can see — a WaitGroup.Add call earlier in the same function
// (with the goroutine calling Done), a result channel that the
// spawning function also receives from, or a loop that exits on
// context cancellation (a select receiving from ctx.Done()). Anything
// else leaks on shutdown and needs a //lint:ignore cbws/golifecycle
// waiver with a written reason.
var GoLifecycle = &analysis.Analyzer{
	Name: "golifecycle",
	Doc: "require every go statement in long-lived packages to be joined " +
		"via WaitGroup, a received result channel, or ctx cancellation",
	Scope: []string{
		"cbws/internal/service",
		"cbws/internal/cluster",
		"cbws/internal/harness",
		"cbws/internal/debugsrv",
		"cbws/internal/sim",
	},
	Run: runGoLifecycle,
}

func runGoLifecycle(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoStmts(pass, fd.Body)
		}
	}
	return nil
}

// checkGoStmts finds every go statement whose innermost enclosing
// function body is `encl` and checks it against the join rules;
// goroutines spawned inside nested function literals are checked
// against that literal's body, recursively.
func checkGoStmts(pass *analysis.Pass, encl *ast.BlockStmt) {
	ast.Inspect(encl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Body != encl {
				checkGoStmts(pass, n.Body)
				return false
			}
		case *ast.GoStmt:
			if !goStmtJoined(pass, encl, n) {
				pass.Reportf(n.Pos(), "goroutine is not joined: add a WaitGroup.Add/Done pair, "+
					"receive its result channel in this function, or loop on ctx.Done()")
			}
		}
		return true
	})
}

func goStmtJoined(pass *analysis.Pass, encl *ast.BlockStmt, g *ast.GoStmt) bool {
	// Rule 1: a WaitGroup.Add call lexically before the go statement in
	// the same function ties the goroutine to a waitable group.
	if waitGroupAddBefore(pass, encl, g.Pos()) {
		return true
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return false // bare `go f(...)` with no Add in scope
	}
	// Rule 2a: the goroutine itself calls WaitGroup.Done (the Add may
	// live in a helper the analyzer can't see; Done proves membership).
	if bodyCallsWaitGroupDone(pass, lit.Body) {
		return true
	}
	// Rule 2b: the goroutine closes or sends on a channel object that
	// the spawning function receives from — a joined result channel.
	if resultChannelReceived(pass, encl, lit) {
		return true
	}
	// Rule 2c: the goroutine is a ctx-cancelled loop: it selects on
	// ctx.Done(), so shutdown is bounded by context cancellation.
	if bodySelectsOnCtxDone(pass, lit.Body) {
		return true
	}
	return false
}

// waitGroupAddBefore reports whether a sync.WaitGroup Add call occurs
// in encl before pos (outside nested function literals).
func waitGroupAddBefore(pass *analysis.Pass, encl *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if n.Pos() < pos && isWaitGroupMethod(pass.TypesInfo, n, "Add") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func bodyCallsWaitGroupDone(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isWaitGroupMethod(pass.TypesInfo, call, "Done") {
			found = true
			return false
		}
		return true
	})
	return found
}

func isWaitGroupMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := methodOf(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup"
}

// resultChannelReceived reports whether the goroutine literal closes
// or sends on some channel object that encl also receives from (<-ch,
// range ch, or a select receive case).
func resultChannelReceived(pass *analysis.Pass, encl *ast.BlockStmt, lit *ast.FuncLit) bool {
	// Channels the goroutine completes through.
	var signals []types.Object
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) == 1 {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					if obj := channelObject(pass.TypesInfo, n.Args[0]); obj != nil {
						signals = append(signals, obj)
					}
				}
			}
		case *ast.SendStmt:
			if obj := channelObject(pass.TypesInfo, n.Chan); obj != nil {
				signals = append(signals, obj)
			}
		}
		return true
	})
	if len(signals) == 0 {
		return false
	}
	// Receives in the spawning function (nested literals excluded:
	// they may never run).
	received := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if received {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Body != encl {
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := channelObject(pass.TypesInfo, n.X); obj != nil && containsObject(signals, obj) {
					received = true
					return false
				}
			}
		case *ast.RangeStmt:
			if obj := channelObject(pass.TypesInfo, n.X); obj != nil && containsObject(signals, obj) {
				received = true
				return false
			}
		}
		return true
	})
	return received
}

// channelObject resolves a channel-typed expression to its variable
// object (identifier or field selector), or nil.
func channelObject(info *types.Info, e ast.Expr) types.Object {
	t := info.TypeOf(e)
	if t == nil {
		return nil
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return nil
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

func containsObject(list []types.Object, obj types.Object) bool {
	for _, o := range list {
		if o == obj {
			return true
		}
	}
	return false
}

// bodySelectsOnCtxDone reports whether body contains a receive from a
// context.Context's Done channel (in a select case or directly).
func bodySelectsOnCtxDone(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			if call, ok := ast.Unparen(u.X).(*ast.CallExpr); ok {
				if fn := methodOf(pass.TypesInfo, call); fn != nil && fn.Name() == "Done" &&
					pkgPathHasSuffix(fn.Pkg(), "context") {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

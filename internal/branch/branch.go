// Package branch implements the tournament branch predictor of the
// paper's Table II core (4K-entry tables, 16-bit tags, 11-bit history):
// a local two-level predictor and a global (gshare) predictor arbitrated
// by a chooser, in the style of the Alpha 21264 predictor that gem5's
// "Tournament" BP models.
//
// The timing engine consults the predictor for every conditional branch
// in the trace and charges a pipeline-refill penalty on mispredictions,
// which is how branchy, data-dependent loops (soplex, lbm, histo) pay
// for their divergence in this model.
package branch

import "fmt"

// Config sizes the predictor (Table II defaults via DefaultConfig).
type Config struct {
	// Entries is the size of the local-history, local-prediction,
	// global-prediction and chooser tables.
	Entries int
	// HistoryBits is the local/global history length.
	HistoryBits int
	// TagBits is used only for storage accounting.
	TagBits int
}

// DefaultConfig returns the Table II predictor: 4K entries, 11-bit
// history, 16-bit tags.
func DefaultConfig() Config {
	return Config{Entries: 4096, HistoryBits: 11, TagBits: 16}
}

// Validate checks the geometry.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Entries&(c.Entries-1) != 0 {
		return fmt.Errorf("branch: entries must be a positive power of two, got %d", c.Entries)
	}
	if c.HistoryBits <= 0 || c.HistoryBits > 30 {
		return fmt.Errorf("branch: history bits out of range: %d", c.HistoryBits)
	}
	return nil
}

// Stats counts predictor outcomes.
type Stats struct {
	Lookups     uint64
	Mispredicts uint64
}

// Rate returns the misprediction rate.
func (s Stats) Rate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Lookups)
}

// Tournament is the predictor.
type Tournament struct {
	cfg Config

	mask    uint32
	histMax uint32

	localHist  []uint32 // per-PC history registers
	localPred  []uint8  // 2-bit counters indexed by local history
	globalPred []uint8  // 2-bit counters indexed by global history
	chooser    []uint8  // 2-bit: high = trust global
	globalHist uint32

	Stats Stats
}

// New builds a predictor; a zero-value config uses the defaults.
func New(cfg Config) (*Tournament, error) {
	if cfg.Entries == 0 {
		cfg = DefaultConfig()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Tournament{cfg: cfg}
	t.Reset()
	return t, nil
}

// Config returns the active configuration.
func (t *Tournament) Config() Config { return t.cfg }

// Reset returns the predictor to power-on state (weakly not-taken,
// chooser neutral).
func (t *Tournament) Reset() {
	n := t.cfg.Entries
	t.mask = uint32(n - 1)
	t.histMax = uint32(1)<<uint(t.cfg.HistoryBits) - 1
	t.localHist = make([]uint32, n)
	t.localPred = make([]uint8, n)
	t.globalPred = make([]uint8, n)
	t.chooser = make([]uint8, n)
	for i := range t.localPred {
		t.localPred[i] = 1 // weakly not-taken
		t.globalPred[i] = 1
		t.chooser[i] = 2 // weakly prefer global
	}
	t.globalHist = 0
	t.Stats = Stats{}
}

func taken(counter uint8) bool { return counter >= 2 }

func bump(counter uint8, t bool) uint8 {
	if t {
		if counter < 3 {
			return counter + 1
		}
		return counter
	}
	if counter > 0 {
		return counter - 1
	}
	return counter
}

func (t *Tournament) pcIndex(pc uint64) uint32 {
	return uint32(pc>>2) & t.mask
}

// Predict returns the predicted direction for the branch at pc without
// updating any state.
func (t *Tournament) Predict(pc uint64) bool {
	li := t.localHist[t.pcIndex(pc)] & t.mask
	local := taken(t.localPred[li])
	gi := (t.globalHist ^ uint32(pc>>2)) & t.mask
	global := taken(t.globalPred[gi])
	if taken(t.chooser[t.globalHist&t.mask]) {
		return global
	}
	return local
}

// Update records the actual outcome for the branch at pc and returns
// whether the (pre-update) prediction was correct.
func (t *Tournament) Update(pc uint64, outcome bool) bool {
	t.Stats.Lookups++
	pi := t.pcIndex(pc)
	li := t.localHist[pi] & t.mask
	gi := (t.globalHist ^ uint32(pc>>2)) & t.mask
	ci := t.globalHist & t.mask

	localPred := taken(t.localPred[li])
	globalPred := taken(t.globalPred[gi])
	useGlobal := taken(t.chooser[ci])
	pred := localPred
	if useGlobal {
		pred = globalPred
	}
	correct := pred == outcome
	if !correct {
		t.Stats.Mispredicts++
	}

	// Chooser trains toward the component that was right (only when
	// they disagree).
	if localPred != globalPred {
		t.chooser[ci] = bump(t.chooser[ci], globalPred == outcome)
	}
	// Component counters.
	t.localPred[li] = bump(t.localPred[li], outcome)
	t.globalPred[gi] = bump(t.globalPred[gi], outcome)
	// Histories.
	bit := uint32(0)
	if outcome {
		bit = 1
	}
	t.localHist[pi] = ((t.localHist[pi] << 1) | bit) & t.histMax
	t.globalHist = ((t.globalHist << 1) | bit) & t.histMax
	return correct
}

// StorageBits estimates the hardware budget: three 2-bit counter tables,
// the local history table and the tag overhead of Table II.
func (t *Tournament) StorageBits() uint64 {
	n := uint64(t.cfg.Entries)
	counters := 3 * 2 * n
	history := n * uint64(t.cfg.HistoryBits)
	tags := n * uint64(t.cfg.TagBits)
	return counters + history + tags
}

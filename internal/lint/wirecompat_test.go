package lint_test

import (
	"testing"

	"cbws/internal/lint"
	"cbws/internal/lint/linttest"
)

func TestWireCompatClean(t *testing.T) {
	linttest.Run(t, lint.WireCompat, "testdata/src/wirecompat")
}

func TestWireCompatBreaking(t *testing.T) {
	linttest.Run(t, lint.WireCompat, "testdata/src/wirecompatbreak")
}

func TestWireCompatMissingManifest(t *testing.T) {
	linttest.Run(t, lint.WireCompat, "testdata/src/wirecompatmissing")
}

func TestDiffWireManifestsJobKey(t *testing.T) {
	old := &lint.WireManifest{
		Schema: lint.WireCompatSchema,
		JobKey: []lint.WireField{
			{Name: "Schema", JSON: "schema", Type: "string"},
			{Name: "Workload", JSON: "workload", Type: "string"},
		},
	}
	// Any job-key change is breaking, including a pure addition.
	cur := &lint.WireManifest{
		Schema: lint.WireCompatSchema,
		JobKey: []lint.WireField{
			{Name: "Schema", JSON: "schema", Type: "string"},
			{Name: "Workload", JSON: "workload", Type: "string"},
			{Name: "Extra", JSON: "extra", Type: "string"},
		},
	}
	items := lint.DiffWireManifests(old, cur)
	if len(items) != 1 {
		t.Fatalf("got %d diff items, want 1: %+v", len(items), items)
	}
	if !items[0].Breaking {
		t.Errorf("job-key addition must be breaking, got %+v", items[0])
	}
}

package lint_test

import (
	"testing"

	"cbws/internal/lint"
	"cbws/internal/lint/linttest"
)

func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, lint.HotPathAlloc, "testdata/src/hotpathalloc")
}

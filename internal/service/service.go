// Package service is the long-running simulation daemon behind cmd/cbwsd:
// an HTTP/JSON job queue over the evaluation harness with a
// content-addressed result cache.
//
// Jobs are (workload, prefetcher, sim.Config) triples. Submission is
// idempotent — the job's identity is a canonical hash of its effective
// values plus the simulator code version — and completed results are
// cached in memory and on disk under that hash, so a repeated sweep is
// served in O(1) without simulating anything. Production concerns are
// handled end to end: a bounded queue with 429 + Retry-After
// backpressure, per-job timeouts, progress reporting from the
// simulator's probe hooks, expvar counters, and graceful drain that
// finishes running jobs and persists the cache index.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cbws/internal/harness"
	"cbws/internal/sim"
	"cbws/internal/workload"
)

// Config parameterizes a Service.
type Config struct {
	// Workers bounds concurrent simulations (<= 0: one per CPU).
	Workers int
	// QueueDepth bounds the number of accepted-but-not-running jobs;
	// submissions beyond it are rejected with 429 (default 64).
	QueueDepth int
	// JobTimeout aborts a single simulation after this long (0: no
	// timeout). A timed-out job is reported failed.
	JobTimeout time.Duration
	// CacheDir persists results and the cache index ("" = memory only).
	CacheDir string
	// BaseSim is the configuration submitted partial configs merge over
	// (zero value: the Table II defaults with the harness's standard
	// 4M/1M window).
	BaseSim sim.Config
	// SampleInterval is the probe/progress period in committed
	// instructions (0: sim.DefaultSampleInterval).
	SampleInterval uint64
	// RetryAfter is advertised in the Retry-After header of 429
	// responses (0: 1s).
	RetryAfter time.Duration
	// CodeVersion overrides the build's VCS revision in cache keys
	// ("": CodeVersion()).
	CodeVersion string
	// Corpus, when set, replays corpus-backed workloads from packed
	// CBWC files: a job naming such a workload runs from replay, and
	// its key absorbs the corpus content address (JobSpec.WorkloadHash).
	Corpus *harness.CorpusSource
	// StreamWorkers bounds concurrently simulating streams: the slot
	// count of the fair round-robin stream scheduler (<= 0: Workers).
	StreamWorkers int
	// MaxStreams bounds non-terminal streams daemon-wide; opens beyond
	// it are rejected 429 (default 64, < 0: unlimited).
	MaxStreams int
	// TenantStreams bounds concurrently open streams per tenant
	// (default 4, < 0: unlimited).
	TenantStreams int
	// TenantRateBytes is each tenant's sustained chunk-ingest rate in
	// bytes/second (default 8 MiB/s).
	TenantRateBytes float64
	// TenantBurstBytes is each tenant's token-bucket capacity — the
	// largest admissible chunk and the instantaneous burst (default
	// 4 MiB).
	TenantBurstBytes float64
	// StreamBufferEvents bounds each stream's decoded-event buffer
	// between ingest and simulation; chunks that cannot fit are
	// rejected 413 (default 1<<16 events, ~3 MiB).
	StreamBufferEvents int
	// StreamIdleTimeout finalizes (cleanly terminated) or cancels
	// (mid-stream) streams with no chunk for this long (default 2m,
	// < 0: never).
	StreamIdleTimeout time.Duration
	// StreamQuantum is how many event batches a stream simulates per
	// scheduler slot acquisition before requeueing (default 64).
	StreamQuantum int
	// Clock supplies the time for rate-limit refill, idle detection and
	// stream wall-time telemetry (default time.Now); tests inject a
	// fake.
	Clock func() time.Time
	// Peers are sibling daemons' base URLs (this daemon excluded).
	// Before simulating a job, the worker asks the siblings for the
	// job's content address in ring order and serves a validated answer
	// from its own cache instead of simulating — the federated result
	// cache. Empty: fully standalone, exactly the pre-cluster behavior.
	Peers []string
	// PeerTimeout bounds each sibling probe (0: 2s).
	PeerTimeout time.Duration
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	var zero sim.Config
	if c.BaseSim == zero {
		c.BaseSim = harness.DefaultOptions().Sim
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = sim.DefaultSampleInterval
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.CodeVersion == "" {
		c.CodeVersion = CodeVersion()
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 2 * time.Second
	}
	if c.StreamWorkers <= 0 {
		c.StreamWorkers = c.Workers
	}
	if c.MaxStreams == 0 {
		c.MaxStreams = 64
	}
	if c.TenantStreams == 0 {
		c.TenantStreams = 4
	}
	if c.TenantRateBytes <= 0 {
		c.TenantRateBytes = 8 << 20
	}
	if c.TenantBurstBytes <= 0 {
		c.TenantBurstBytes = 4 << 20
	}
	if c.StreamBufferEvents <= 0 {
		c.StreamBufferEvents = 1 << 16
	}
	if c.StreamIdleTimeout == 0 {
		c.StreamIdleTimeout = 2 * time.Minute
	}
	if c.StreamQuantum <= 0 {
		c.StreamQuantum = 64
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Service is a running simulation daemon: worker pool, job table,
// result cache.
type Service struct {
	cfg   Config
	cache *Cache
	queue chan *Job

	jobsMu sync.Mutex
	jobs   map[string]*Job //cbws:guardedby jobsMu

	matMu    sync.Mutex
	matrices map[string]*harness.Matrix //cbws:guardedby matMu

	streamsMu   sync.Mutex
	streams     map[string]*Stream //cbws:guardedby streamsMu
	streamSeq   uint64             //cbws:guardedby streamsMu
	tenants     *tenantTable
	streamSched *ticketSched
	streamWG    sync.WaitGroup

	peers    *peerFetcher
	counters counters
	draining atomic.Bool
	quit     chan struct{}
	wg       sync.WaitGroup
}

// New builds a Service, loads the cache, and starts the worker pool.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if err := cfg.BaseSim.Validate(); err != nil {
		return nil, fmt.Errorf("service: base config: %w", err)
	}
	cache, err := NewCache(cfg.CacheDir)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	peers, err := newPeerFetcher(cfg.Peers, cfg.PeerTimeout)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	s := &Service{
		cfg:         cfg,
		cache:       cache,
		queue:       make(chan *Job, cfg.QueueDepth),
		jobs:        make(map[string]*Job),
		matrices:    make(map[string]*harness.Matrix),
		streams:     make(map[string]*Stream),
		tenants:     newTenantTable(cfg.TenantRateBytes, cfg.TenantBurstBytes),
		streamSched: newTicketSched(cfg.StreamWorkers),
		peers:       peers,
		quit:        make(chan struct{}),
	}
	publishVars(s)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	if cfg.StreamIdleTimeout > 0 {
		s.wg.Add(1)
		go s.reaper()
	}
	return s, nil
}

// Cache exposes the result cache (read-only use: stats, tests).
func (s *Service) Cache() *Cache { return s.cache }

// CodeVersion returns the version string baked into this service's
// cache keys.
func (s *Service) CodeVersion() string { return s.cfg.CodeVersion }

// Submit registers the spec as a job, idempotently. The returned view
// reflects the current state: done+cached when the result is already
// in the content-addressed cache, the existing job's state when the
// same spec was submitted before, queued when a fresh job was
// accepted. ErrQueueFull is returned when the queue is at depth, and
// ErrDraining once drain has begun.
func (s *Service) Submit(spec JobSpec) (JobView, error) {
	if err := s.resolveWorkloadHash(&spec); err != nil {
		return JobView{}, err
	}
	key := spec.Key(s.cfg.CodeVersion)
	if view, ok := s.cachedView(key); ok {
		s.counters.cacheHits.Add(1)
		return view, nil
	}
	if s.draining.Load() {
		return JobView{}, ErrDraining
	}
	s.jobsMu.Lock()
	if j, ok := s.jobs[key]; ok {
		s.jobsMu.Unlock()
		return j.View(), nil
	}
	j := newJob(key, spec)
	s.jobs[key] = j
	s.jobsMu.Unlock()

	select {
	case s.queue <- j:
		s.counters.cacheMisses.Add(1)
		s.counters.jobsQueued.Add(1)
		return j.View(), nil
	default:
		// Queue full: forget the job so a later retry can re-create it.
		s.jobsMu.Lock()
		delete(s.jobs, key)
		s.jobsMu.Unlock()
		s.counters.rejected.Add(1)
		return JobView{}, ErrQueueFull
	}
}

// resolveWorkloadHash reconciles the spec's workload hash with the
// daemon's corpus source before keying. A corpus-backed workload gets
// its corpus content address stamped into the spec (so the job key —
// and therefore the cache entry — is bound to the exact trace bytes);
// a client that pins a hash the daemon cannot honor is rejected rather
// than silently served a result computed from different bytes.
func (s *Service) resolveWorkloadHash(spec *JobSpec) error {
	var have string
	if s.cfg.Corpus != nil {
		have, _ = s.cfg.Corpus.Hash(spec.Workload)
	}
	switch {
	case spec.WorkloadHash == "":
		spec.WorkloadHash = have // "" when generator-backed: key shape unchanged
	case have == "":
		return fmt.Errorf("%w: job pins workload_hash %.12s… but this daemon has no corpus for %q",
			ErrCorpusMismatch, spec.WorkloadHash, spec.Workload)
	case spec.WorkloadHash != have:
		return fmt.Errorf("%w: job pins workload_hash %.12s… but the daemon's corpus for %q is %.12s…",
			ErrCorpusMismatch, spec.WorkloadHash, spec.Workload, have)
	}
	return nil
}

// cachedView synthesizes a done view for a key present in the result
// cache. The cache is authoritative across restarts: a key may be
// cached without a live job in this daemon's table.
func (s *Service) cachedView(key string) (JobView, bool) {
	meta, ok := s.cache.Meta(key)
	if !ok {
		return JobView{}, false
	}
	return JobView{
		Key:        key,
		Workload:   meta.Workload,
		Prefetcher: meta.Prefetcher,
		Status:     StatusDone,
		Cached:     true,
	}, true
}

// Job returns the live job table entry for key.
func (s *Service) Job(key string) (*Job, bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	j, ok := s.jobs[key]
	return j, ok
}

// Status reports the state of key: the live job when one exists, else
// a cache-synthesized done view.
func (s *Service) Status(key string) (JobView, bool) {
	if j, ok := s.Job(key); ok {
		view := j.View()
		if view.Status == StatusDone {
			// Mark completions whose bytes are served from the cache, so
			// clients can distinguish fresh work from replays.
			if _, cached := s.cache.Get(key); cached {
				view.Cached = true
			}
		}
		return view, true
	}
	return s.cachedView(key)
}

// Result returns the encoded run record for key.
func (s *Service) Result(key string) ([]byte, bool) {
	return s.cache.Get(key)
}

// worker runs queued jobs until drain.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		// Prefer quit over a ready job so drain stops promptly.
		select {
		case <-s.quit:
			return
		default:
		}
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.counters.jobsQueued.Add(-1)
			s.runJob(j)
		}
	}
}

// matrixFor memoizes one harness.Matrix per distinct sim.Config, so
// within a daemon lifetime the harness layer adds its single-flight
// guarantee on top of the job-level dedup.
func (s *Service) matrixFor(cfg sim.Config) *harness.Matrix {
	b, err := json.Marshal(cfg)
	if err != nil {
		panic(err) // plain struct of scalars; cannot fail
	}
	sum := sha256.Sum256(b)
	key := hex.EncodeToString(sum[:])
	s.matMu.Lock()
	defer s.matMu.Unlock()
	m, ok := s.matrices[key]
	if !ok {
		m = harness.NewMatrix(harness.Options{Sim: cfg, Parallel: 1})
		s.matrices[key] = m
	}
	return m
}

// runJob executes one job end to end: simulate with probe + progress
// attached, assemble the PR-2 run record as the wire result, store it
// under the job's content address.
func (s *Service) runJob(j *Job) {
	if !j.setRunning() {
		return // canceled while queued
	}
	s.counters.jobsRunning.Add(1)
	defer s.counters.jobsRunning.Add(-1)

	// Federated cache: any sibling that already computed this key serves
	// it in milliseconds; simulation is the fallback, not the default.
	if s.tryPeerFetch(j) {
		s.counters.jobsDone.Add(1)
		j.finish()
		return
	}

	ctx := context.Background()
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	spec, ok := workload.ByName(j.Spec.Workload)
	if !ok {
		// Validated at submit; only a roster change mid-flight gets here.
		s.failJob(j, fmt.Sprintf("unknown workload %q", j.Spec.Workload))
		return
	}
	if s.cfg.Corpus != nil {
		spec = s.cfg.Corpus.Override(spec)
	}
	f, err := harness.ResolveFactory(j.Spec.Prefetcher)
	if err != nil {
		s.failJob(j, err.Error())
		return
	}

	s.counters.jobsSimulated.Add(1)
	interval := s.cfg.SampleInterval
	capacity := int(j.Spec.Config.MaxInstructions/interval) + 2
	ts := sim.NewTimeSeries(capacity)
	//lint:ignore cbws/determinism wall-clock duration is telemetry only, excluded from result hashes
	start := time.Now()
	m := s.matrixFor(j.Spec.Config)
	res, err := m.GetObserved(ctx, spec, f,
		sim.WithProbe(ts), sim.WithSampleInterval(interval),
		sim.WithProgress(j.progress.Store))
	if err != nil {
		s.failJob(j, err.Error())
		return
	}
	rec := harness.NewRunRecord(j.Spec.Config, res, interval, ts.Points(), time.Since(start))
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		s.failJob(j, fmt.Sprintf("encoding result: %v", err))
		return
	}
	data = append(data, '\n')
	meta := CacheMeta{Workload: j.Spec.Workload, Prefetcher: j.Spec.Prefetcher}
	if err := s.cache.Put(j.Key, meta, data); err != nil {
		s.failJob(j, fmt.Sprintf("caching result: %v", err))
		return
	}
	s.counters.jobsDone.Add(1)
	j.finish()
}

func (s *Service) failJob(j *Job, msg string) {
	s.counters.jobsFailed.Add(1)
	j.fail(msg)
}

// Draining reports whether drain has begun.
func (s *Service) Draining() bool { return s.draining.Load() }

// Drain gracefully stops the service: no new submissions are accepted,
// running jobs finish, still-queued jobs are canceled, and the cache
// index is persisted. It returns ctx.Err() if the running jobs did not
// finish in time (the index is still persisted with whatever
// completed).
func (s *Service) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil // already draining
	}
	close(s.quit)
	// Cancel everything still waiting in the queue; workers are exiting.
cancelQueued:
	for {
		select {
		case j := <-s.queue:
			s.counters.jobsQueued.Add(-1)
			if j.cancel("server draining") {
				s.counters.jobsCanceled.Add(1)
			}
		default:
			break cancelQueued
		}
	}
	// Finalize-or-cancel every live stream: a cleanly terminated trace
	// finalizes into a normal cached result, everything else cancels.
	var waitErr error
	if err := s.drainStreams(ctx); err != nil {
		waitErr = err
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		waitErr = ctx.Err()
	}
	if err := s.cache.PersistIndex(); err != nil {
		return err
	}
	return waitErr
}

// prefetcherRoster lists every scheme the service accepts, evaluated
// roster plus extensions, in registration order.
func (s *Service) prefetcherRoster() []string {
	factories := harness.ExtendedPrefetchers()
	out := make([]string, len(factories))
	for i, f := range factories {
		out[i] = f.Name
	}
	return out
}

// Sentinel submission errors, mapped to HTTP statuses by the server
// layer.
var (
	ErrQueueFull = fmt.Errorf("job queue is full")
	ErrDraining  = fmt.Errorf("server is draining")
	// ErrCorpusMismatch rejects a submission that pins a workload_hash
	// the daemon's corpus source cannot honor (HTTP 409).
	ErrCorpusMismatch = fmt.Errorf("workload corpus mismatch")
)

package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package with syntax.
type Package struct {
	PkgPath   string
	Dir       string
	Module    string // module path, "" outside a module
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// depCount is the transitive import count, used to order analysis
	// dependencies-first so facts flow from callee to caller packages.
	depCount int
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Deps       []string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") with the go command and
// type-checks every matched non-test package from source. Imports —
// stdlib and module-internal alike — are satisfied from the compiler
// export data that `go list -export` leaves in the build cache, so
// loading is hermetic: no network, no GOPATH archives. tags is the
// build-tag list forwarded to the go command (empty for the default
// variant, "cbwscheck" for the checked build).
//
// The returned packages are sorted dependencies-first, which is the
// order Run analyzes them in.
func Load(dir string, tags string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("load: no package patterns")
	}
	args := []string{"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Deps,Standard,DepOnly,Module,Error"}
	if tags != "" {
		args = append(args, "-tags", tags)
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var roots []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			roots = append(roots, p)
		}
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("go list %s: no packages matched", strings.Join(patterns, " "))
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var pkgs []*Package
	for _, root := range roots {
		files, err := parseDir(fset, root.Dir, root.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg, info, err := TypeCheck(fset, root.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		module := ""
		if root.Module != nil {
			module = root.Module.Path
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   root.ImportPath,
			Dir:       root.Dir,
			Module:    module,
			Fset:      fset,
			Files:     files,
			Types:     pkg,
			TypesInfo: info,
			depCount:  len(root.Deps),
		})
	}
	// Deps is transitive, so |Deps| strictly increases along import
	// edges and sorting by it yields a dependencies-first order;
	// the path tiebreak keeps the order deterministic.
	sort.Slice(pkgs, func(i, j int) bool {
		if pkgs[i].depCount != pkgs[j].depCount {
			return pkgs[i].depCount < pkgs[j].depCount
		}
		return pkgs[i].PkgPath < pkgs[j].PkgPath
	})
	return pkgs, nil
}

// parseDir parses the named files of dir with comments retained
// (analyzers read annotations and suppression comments).
func parseDir(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// ExportImporter returns a go/types importer that reads compiler
// export data from the files named in exports (import path → file),
// as produced by `go list -export`.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	})
}

// TypeCheck runs go/types over one package's files with every Info map
// populated, which is what analyzers expect from a Pass.
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return pkg, info, nil
}

// ExportsFor runs `go list -export` over the given import paths and
// returns the export-data map for them and all their dependencies.
// The fixture loader uses it to resolve the imports of testdata
// packages that are not part of the module's package graph.
func ExportsFor(dir string, importPaths []string) (map[string]string, error) {
	exports := make(map[string]string)
	if len(importPaths) == 0 {
		return exports, nil
	}
	args := []string{"list", "-export", "-deps", "-json=ImportPath,Export,Error"}
	args = append(args, importPaths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export %s: %v\n%s",
			strings.Join(importPaths, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -export: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list -export: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

package cfg

import (
	"testing"

	"cbws/internal/ir"
)

// singleLoop builds: entry; loop body with conditional back edge; exit.
func singleLoop() *ir.Program {
	b := ir.NewBuilder("single")
	i := b.Const(0)
	n := b.Const(10)
	cond := b.Reg()
	b.Label("head")
	b.AddI(i, i, 1)
	b.CmpLT(cond, i, n)
	b.BrNZ(cond, "head")
	b.Ret()
	return b.MustBuild()
}

// nestedLoops builds a classic doubly-nested counted loop.
func nestedLoops() *ir.Program {
	b := ir.NewBuilder("nested")
	i := b.Const(0)
	j := b.Reg()
	n := b.Const(4)
	ci := b.Reg()
	cj := b.Reg()
	b.Label("outer")
	b.ConstTo(j, 0)
	b.Label("inner")
	b.AddI(j, j, 1)
	b.CmpLT(cj, j, n)
	b.BrNZ(cj, "inner")
	b.AddI(i, i, 1)
	b.CmpLT(ci, i, n)
	b.BrNZ(ci, "outer")
	b.Ret()
	return b.MustBuild()
}

func TestBuildBlocksSingleLoop(t *testing.T) {
	g, err := Build(singleLoop())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Blocks: [consts][head..brnz][ret]
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3\n%v", len(g.Blocks), g)
	}
	// The loop block has two successors (itself + exit).
	loop := g.Blocks[1]
	if len(loop.Succs) != 2 {
		t.Errorf("loop succs = %v", loop.Succs)
	}
	// Every instruction maps back to its block.
	for i := range g.Prog.Instrs {
		b := g.BlockOf(i)
		if i < g.Blocks[b].Start || i >= g.Blocks[b].End {
			t.Errorf("instr %d mapped to block %d [%d,%d)", i, b, g.Blocks[b].Start, g.Blocks[b].End)
		}
	}
}

func TestDominatorsSingleLoop(t *testing.T) {
	g, _ := Build(singleLoop())
	idom := g.Dominators()
	if idom[0] != 0 {
		t.Errorf("entry idom = %d", idom[0])
	}
	// Block 1 (loop) and block 2 (exit) are dominated by their
	// predecessors on the straight-line path.
	if idom[1] != 0 {
		t.Errorf("idom[1] = %d, want 0", idom[1])
	}
	if idom[2] != 1 {
		t.Errorf("idom[2] = %d, want 1", idom[2])
	}
}

func TestDominatorsDiamond(t *testing.T) {
	// if/else diamond: entry -> (then | else) -> join.
	b := ir.NewBuilder("diamond")
	c := b.Const(1)
	x := b.Reg()
	b.BrZ(c, "else")
	b.ConstTo(x, 1)
	b.Jmp("join")
	b.Label("else")
	b.ConstTo(x, 2)
	b.Label("join")
	b.Ret()
	g, _ := Build(b.MustBuild())
	idom := g.Dominators()
	// The join block's immediate dominator must be the entry block,
	// not either branch arm.
	join := g.BlockOf(len(g.Prog.Instrs) - 1)
	if idom[join] != 0 {
		t.Errorf("idom[join] = %d, want 0", idom[join])
	}
}

func TestLoopsSingle(t *testing.T) {
	g, _ := Build(singleLoop())
	loops := g.Loops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != 1 || l.Latch != 1 {
		t.Errorf("loop = %+v", l)
	}
	if len(l.Blocks) != 1 || l.Blocks[0] != 1 {
		t.Errorf("body = %v", l.Blocks)
	}
	if l.StaticInstrs != 3 {
		t.Errorf("static instrs = %d, want 3", l.StaticInstrs)
	}
}

func TestLoopsNested(t *testing.T) {
	g, _ := Build(nestedLoops())
	loops := g.Loops()
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2\n%v", len(loops), g)
	}
	inner := Innermost(loops)
	if len(inner) != 1 {
		t.Fatalf("innermost = %d, want 1", len(inner))
	}
	// The innermost loop must be the smaller one.
	var outer Loop
	for _, l := range loops {
		if l.Header != inner[0].Header {
			outer = l
		}
	}
	if len(inner[0].Blocks) >= len(outer.Blocks) {
		t.Errorf("innermost body %v not smaller than outer %v", inner[0].Blocks, outer.Blocks)
	}
	// The outer loop's body must contain the inner loop's header.
	found := false
	for _, b := range outer.Blocks {
		if b == inner[0].Header {
			found = true
		}
	}
	if !found {
		t.Error("outer loop does not contain inner header")
	}
}

func TestExitEdges(t *testing.T) {
	g, _ := Build(singleLoop())
	loops := g.Loops()
	exits := g.ExitEdges(loops[0])
	if len(exits) != 1 {
		t.Fatalf("exits = %v", exits)
	}
	if exits[0][0] != 1 || exits[0][1] != 2 {
		t.Errorf("exit edge = %v, want [1 2]", exits[0])
	}
}

func TestWhileStyleLoop(t *testing.T) {
	// Header tests the condition and exits; body is a separate block
	// with an unconditional back edge.
	b := ir.NewBuilder("while")
	i := b.Const(0)
	n := b.Const(8)
	cond := b.Reg()
	b.Label("head")
	b.CmpLT(cond, i, n)
	b.BrZ(cond, "exit")
	b.AddI(i, i, 1)
	b.Jmp("head")
	b.Label("exit")
	b.Ret()
	g, _ := Build(b.MustBuild())
	loops := g.Loops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d", len(loops))
	}
	l := loops[0]
	if len(l.Blocks) != 2 {
		t.Errorf("body = %v, want header+body", l.Blocks)
	}
	if l.Header == l.Latch {
		t.Error("while loop should have distinct header and latch")
	}
}

func TestMultipleBackEdgesMerged(t *testing.T) {
	// A loop with a continue-style second back edge: both back edges
	// share the header, producing a single merged loop.
	b := ir.NewBuilder("continue")
	i := b.Const(0)
	n := b.Const(100)
	cond := b.Reg()
	parity := b.Reg()
	two := b.Const(2)
	b.Label("head")
	b.AddI(i, i, 1)
	b.Mod(parity, i, two)
	b.BrNZ(parity, "head") // continue
	b.CmpLT(cond, i, n)
	b.BrNZ(cond, "head") // loop
	b.Ret()
	g, _ := Build(b.MustBuild())
	loops := g.Loops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1 merged loop", len(loops))
	}
	if len(loops[0].Blocks) != 2 {
		t.Errorf("merged body = %v", loops[0].Blocks)
	}
}

func TestUnreachableCode(t *testing.T) {
	b := ir.NewBuilder("dead")
	b.Ret()
	b.Nop() // unreachable
	b.Ret()
	g, err := Build(b.MustBuild())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(g.Loops()) != 0 {
		t.Error("unreachable code produced loops")
	}
	idom := g.Dominators()
	// The unreachable block has no dominator.
	dead := g.BlockOf(1)
	if idom[dead] != -1 {
		t.Errorf("unreachable block idom = %d, want -1", idom[dead])
	}
}

func TestNoLoops(t *testing.T) {
	b := ir.NewBuilder("straight")
	r := b.Const(1)
	b.AddI(r, r, 2)
	b.Ret()
	g, _ := Build(b.MustBuild())
	if len(g.Loops()) != 0 {
		t.Error("straight-line code has loops")
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"cbws/internal/cli"
)

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"stray-argument"},
		{"-n", "1000", "-warmup", "1000"}, // warmup must be < n
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != cli.ExitUsage {
			t.Errorf("run(%q) = %d, want %d (stderr %s)", args, code, cli.ExitUsage, stderr.String())
		}
	}
}

// TestFilterSelf pins the one-peer-list-per-fleet contract: a worker
// handed the full fleet list drops exactly its own advertised URL.
func TestFilterSelf(t *testing.T) {
	fleet := []string{"http://a:1", "http://b:2/", "http://c:3"}
	got := filterSelf(fleet, "http://b:2")
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://c:3" {
		t.Fatalf("filterSelf = %v", got)
	}
	if got := filterSelf(fleet, "http://elsewhere:9"); len(got) != 3 {
		t.Fatalf("foreign self filtered something: %v", got)
	}
	if got := filterSelf(nil, "http://a:1"); got != nil {
		t.Fatalf("empty peers: %v", got)
	}
	if got := splitList(" http://a:1, ,http://b:2 "); len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Fatalf("splitList = %v", got)
	}
}

// TestPeerConfigErrors checks a bad -peers list dies at startup, after
// the bind (the listener must not leak the port into the error path).
func TestPeerConfigErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-addr", "127.0.0.1:0", "-peers", "http://x:1,http://x:1"}, &stdout, &stderr)
	if code != cli.ExitFail || !strings.Contains(stderr.String(), "duplicate") {
		t.Fatalf("exit %d, stderr %q", code, stderr.String())
	}
}

func TestBadListenAddr(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-addr", "256.0.0.1:http"}, &stdout, &stderr); code != cli.ExitFail {
		t.Fatalf("run with bad -addr = %d, want %d", code, cli.ExitFail)
	}
}

// TestServeSubmitSigtermDrain is the full daemon lifecycle: start on an
// ephemeral port published through -addr-file, serve a job, then drain
// cleanly on SIGTERM with exit 0 and a persisted cache index.
func TestServeSubmitSigtermDrain(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	cacheDir := filepath.Join(dir, "cache")
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0", "-addr-file", addrFile,
			"-cache-dir", cacheDir, "-workers", "1",
			"-n", "200000", "-warmup", "50000",
		}, &stdout, &stderr)
	}()

	base := "http://" + waitAddr(t, addrFile)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"status": "ok"`)) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	key := submitAndWait(t, base, `{"workload":"stencil-default","prefetcher":"none"}`)
	resp, err = http.Get(base + "/v1/results/" + key)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result after completion: %d", resp.StatusCode)
	}

	// SIGTERM: the daemon must drain and exit 0. run installed the
	// handler via signal.NotifyContext, so the process-wide signal is
	// caught there, not by the test binary's default disposition.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != cli.ExitOK {
			t.Fatalf("exit %d after SIGTERM, want 0\nstderr %s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	if !strings.Contains(stderr.String(), "drained cleanly") {
		t.Fatalf("drain not logged:\n%s", stderr.String())
	}
	if _, err := os.Stat(filepath.Join(cacheDir, "index.json")); err != nil {
		t.Fatalf("cache index not persisted: %v", err)
	}
	if _, err := os.Stat(filepath.Join(cacheDir, key+".json")); err != nil {
		t.Fatalf("cached result not persisted: %v", err)
	}
	if _, err := os.Stat(addrFile); !os.IsNotExist(err) {
		t.Fatal("addr file not cleaned up on exit")
	}
}

// waitAddr polls the -addr-file until the daemon publishes its bound
// address.
func waitAddr(t *testing.T, path string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return strings.TrimSpace(string(b))
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("daemon never published its address")
	return ""
}

// submitAndWait posts one job and polls it to completion, returning its
// content address.
func submitAndWait(t *testing.T, base, body string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var view struct {
		Key    string `json:"key"`
		Status string `json:"status"`
	}
	if err := unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for view.Status != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", view.Status)
		}
		if view.Status == "failed" || view.Status == "canceled" {
			t.Fatalf("job %s: %s", view.Key, view.Status)
		}
		time.Sleep(20 * time.Millisecond)
		resp, err := http.Get(base + "/v1/jobs/" + view.Key)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := unmarshal(raw, &view); err != nil {
			t.Fatal(err)
		}
	}
	return view.Key
}

func unmarshal(raw []byte, v any) error {
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("decoding %q: %w", raw, err)
	}
	return nil
}

package core

import (
	"cbws/internal/mem"
	"cbws/internal/prefetch"
)

// Composite is the integrated CBWS+fallback prefetcher of Section VII:
// the CBWS prefetcher is an add-on that issues working-set predictions
// when the current access pattern hits in its history table, while the
// fallback scheme (SMS in the paper) covers the access patterns CBWS has
// no confident prediction for. Both schemes train on the full access
// stream.
//
// With Exclusive set, the fallback is suppressed whenever the CBWS
// context is confident — the strictest reading of the paper's issue
// policy. The default (inclusive) policy lets the fallback keep issuing;
// redundant candidates are dropped by the cache's residency check. The
// inclusive policy is the better performer whenever CBWS predictions are
// confident but late (dense unit-stride loops), and the difference is
// exposed as an ablation benchmark.
type Composite struct {
	cbws      *Prefetcher
	fallback  prefetch.Prefetcher
	exclusive bool
}

var _ prefetch.Prefetcher = (*Composite)(nil)

// dropIssue swallows fallback prefetches while the CBWS context is
// confident, implementing the exclusive issue policy.
func dropIssue(mem.LineAddr) {}

// NewComposite integrates a CBWS prefetcher with a fallback scheme using
// the default inclusive issue policy.
func NewComposite(cbws *Prefetcher, fallback prefetch.Prefetcher) *Composite {
	return &Composite{cbws: cbws, fallback: fallback}
}

// NewExclusiveComposite integrates with the exclusive policy: the
// fallback issues only when the CBWS history table has no prediction.
func NewExclusiveComposite(cbws *Prefetcher, fallback prefetch.Prefetcher) *Composite {
	return &Composite{cbws: cbws, fallback: fallback, exclusive: true}
}

// Name implements prefetch.Prefetcher.
func (c *Composite) Name() string { return c.cbws.Name() + "+" + c.fallback.Name() }

// CBWS exposes the wrapped CBWS prefetcher (for stats inspection).
func (c *Composite) CBWS() *Prefetcher { return c.cbws }

// OnAccess trains both schemes.
func (c *Composite) OnAccess(a prefetch.Access, issue prefetch.IssueFunc) {
	c.cbws.OnAccess(a, issue)
	if c.exclusive && c.cbws.inBlock && c.cbws.confident {
		c.fallback.OnAccess(a, dropIssue)
		return
	}
	c.fallback.OnAccess(a, issue)
}

// OnBlockBegin forwards the marker to both schemes.
func (c *Composite) OnBlockBegin(id int) {
	c.cbws.OnBlockBegin(id)
	c.fallback.OnBlockBegin(id)
}

// OnBlockEnd lets the CBWS prefetcher predict; the fallback (blockless)
// is still notified for interface completeness.
func (c *Composite) OnBlockEnd(id int, issue prefetch.IssueFunc) {
	c.cbws.OnBlockEnd(id, issue)
	c.fallback.OnBlockEnd(id, issue)
}

// StorageBits is the sum of both schemes' budgets.
func (c *Composite) StorageBits() uint64 {
	return c.cbws.StorageBits() + c.fallback.StorageBits()
}

// OnCacheEvict forwards cache evictions to the fallback scheme (SMS uses
// them to end spatial-region generations; CBWS has no use for them).
func (c *Composite) OnCacheEvict(l mem.LineAddr) {
	if eo, ok := c.fallback.(prefetch.EvictionObserver); ok {
		eo.OnCacheEvict(l)
	}
}

var _ prefetch.EvictionObserver = (*Composite)(nil)

// Reset implements prefetch.Prefetcher.
func (c *Composite) Reset() {
	c.cbws.Reset()
	c.fallback.Reset()
}

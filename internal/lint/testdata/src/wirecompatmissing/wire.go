// Package wirecompatmissing exercises the missing-manifest diagnostic.
package wirecompatmissing // want `missing compat.json`

type View struct {
	Key string `json:"key"`
}

package annotate

import (
	"testing"

	"cbws/internal/interp"
	"cbws/internal/ir"
	"cbws/internal/mem"
	"cbws/internal/trace"
)

// countedLoop builds a loop that loads a[i] for i in [0, n).
func countedLoop(n int64) *ir.Program {
	b := ir.NewBuilder("counted")
	i := b.Const(0)
	limit := b.Const(n)
	cond := b.Reg()
	addr := b.Reg()
	val := b.Reg()
	b.Label("head")
	b.CmpLT(cond, i, limit)
	b.BrZ(cond, "exit")
	b.MulI(addr, i, 8)
	b.AddI(addr, addr, 1<<20)
	b.Load(val, addr, 0)
	b.AddI(i, i, 1)
	b.Jmp("head")
	b.Label("exit")
	b.Ret()
	return b.MustBuild()
}

// nestedLoop builds for i in [0,oi): for j in [0,ij): load a[i*ij+j].
func nestedLoop(oi, ij int64) *ir.Program {
	b := ir.NewBuilder("nested")
	i := b.Const(0)
	j := b.Reg()
	on := b.Const(oi)
	in := b.Const(ij)
	ci := b.Reg()
	cj := b.Reg()
	addr := b.Reg()
	val := b.Reg()
	b.Label("outer")
	b.CmpLT(ci, i, on)
	b.BrZ(ci, "done")
	b.ConstTo(j, 0)
	b.Label("inner")
	b.CmpLT(cj, j, in)
	b.BrZ(cj, "iend")
	b.Mul(addr, i, in)
	b.Add(addr, addr, j)
	b.MulI(addr, addr, 8)
	b.Load(val, addr, 1<<20)
	b.AddI(j, j, 1)
	b.Jmp("inner")
	b.Label("iend")
	b.AddI(i, i, 1)
	b.Jmp("outer")
	b.Label("done")
	b.Ret()
	return b.MustBuild()
}

// runAnnotated executes a program and captures its trace.
func runAnnotated(t *testing.T, p *ir.Program) *trace.Trace {
	t.Helper()
	tr := trace.New(p.Name)
	m, err := interp.New(p, 1_000_000)
	if err != nil {
		t.Fatalf("interp.New: %v", err)
	}
	if err := m.Run(tr); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return tr
}

// blockStats summarizes marker structure of a trace.
type blockStats struct {
	begins, ends int
	loadsInside  int
	loadsOutside int
	balanced     bool
}

func analyze(tr *trace.Trace) blockStats {
	var s blockStats
	depth := 0
	ok := true
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.BlockBegin:
			s.begins++
			depth++
			if depth > 1 {
				// Nested begin of the same block: the runtime treats
				// it as a restart, structurally tolerated.
				depth = 1
			}
		case trace.BlockEnd:
			s.ends++
			if depth > 0 {
				depth--
			}
		case trace.Load, trace.Store:
			if depth > 0 {
				s.loadsInside++
			} else {
				s.loadsOutside++
			}
		}
	}
	s.balanced = ok && depth == 0
	return s
}

func TestAnnotateSimpleLoop(t *testing.T) {
	res, err := Annotate(countedLoop(10), 0)
	if err != nil {
		t.Fatalf("Annotate: %v", err)
	}
	if len(res.Loops) != 1 {
		t.Fatalf("annotated %d loops, want 1", len(res.Loops))
	}
	if res.Loops[0].BlockID != 0 {
		t.Errorf("block id = %d", res.Loops[0].BlockID)
	}
	tr := runAnnotated(t, res.Prog)
	s := analyze(tr)
	// 10 iterations plus the final header-test pass.
	if s.begins != 11 || s.ends < 10 {
		t.Errorf("begins=%d ends=%d", s.begins, s.ends)
	}
	if s.loadsInside != 10 || s.loadsOutside != 0 {
		t.Errorf("loads inside=%d outside=%d", s.loadsInside, s.loadsOutside)
	}
}

func TestAnnotationPreservesSemantics(t *testing.T) {
	// The annotated program must execute the same memory accesses in
	// the same order as the original.
	orig := countedLoop(25)
	res, err := Annotate(orig, 0)
	if err != nil {
		t.Fatalf("Annotate: %v", err)
	}
	trOrig := runAnnotated(t, orig)
	trAnn := runAnnotated(t, res.Prog)
	var memOrig, memAnn []mem.Addr
	for _, e := range trOrig.Events {
		if e.IsMem() {
			memOrig = append(memOrig, e.Addr)
		}
	}
	for _, e := range trAnn.Events {
		if e.IsMem() {
			memAnn = append(memAnn, e.Addr)
		}
	}
	if len(memOrig) != len(memAnn) {
		t.Fatalf("access counts differ: %d vs %d", len(memOrig), len(memAnn))
	}
	for i := range memOrig {
		if memOrig[i] != memAnn[i] {
			t.Fatalf("access %d differs: %#x vs %#x", i, memOrig[i], memAnn[i])
		}
	}
}

func TestAnnotateInnermostOnly(t *testing.T) {
	res, err := Annotate(nestedLoop(4, 6), 0)
	if err != nil {
		t.Fatalf("Annotate: %v", err)
	}
	if len(res.Loops) != 1 {
		t.Fatalf("annotated %d loops, want only the innermost", len(res.Loops))
	}
	tr := runAnnotated(t, res.Prog)
	s := analyze(tr)
	// Inner loop body runs 4*6 = 24 times; each inner iteration is one
	// block. Header-test passes add extra begins.
	if s.loadsInside != 24 {
		t.Errorf("loads inside = %d, want 24", s.loadsInside)
	}
	if s.begins < 24 {
		t.Errorf("begins = %d", s.begins)
	}
}

func TestTightnessThreshold(t *testing.T) {
	// With a 2-instruction threshold nothing qualifies.
	res, err := Annotate(countedLoop(5), 2)
	if err != nil {
		t.Fatalf("Annotate: %v", err)
	}
	if len(res.Loops) != 0 {
		t.Errorf("annotated %d loops with threshold 2", len(res.Loops))
	}
	tr := runAnnotated(t, res.Prog)
	s := analyze(tr)
	if s.begins != 0 || s.ends != 0 {
		t.Error("markers present despite threshold")
	}
}

func TestAnnotateRejectsAlreadyAnnotated(t *testing.T) {
	res, err := Annotate(countedLoop(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Annotate(res.Prog, 0); err == nil {
		t.Error("expected error annotating twice")
	}
}

func TestMultipleInnermostLoopsGetDistinctIDs(t *testing.T) {
	// Two sequential loops: both innermost, distinct block IDs.
	b := ir.NewBuilder("two")
	i := b.Const(0)
	n := b.Const(5)
	c := b.Reg()
	v := b.Reg()
	a := b.Reg()
	b.Label("l1")
	b.MulI(a, i, 8)
	b.Load(v, a, 1<<20)
	b.AddI(i, i, 1)
	b.CmpLT(c, i, n)
	b.BrNZ(c, "l1")
	b.ConstTo(i, 0)
	b.Label("l2")
	b.MulI(a, i, 8)
	b.Load(v, a, 1<<21)
	b.AddI(i, i, 1)
	b.CmpLT(c, i, n)
	b.BrNZ(c, "l2")
	b.Ret()
	res, err := Annotate(b.MustBuild(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(res.Loops))
	}
	if res.Loops[0].BlockID == res.Loops[1].BlockID {
		t.Error("block IDs not distinct")
	}
	// Execute and verify both IDs appear.
	tr := runAnnotated(t, res.Prog)
	seen := map[int]bool{}
	for _, e := range tr.Events {
		if e.Kind == trace.BlockBegin {
			seen[e.Block] = true
		}
	}
	if !seen[0] || !seen[1] {
		t.Errorf("block ids seen: %v", seen)
	}
}

func TestBranchTargetsRemapped(t *testing.T) {
	// After insertion, the annotated program must still validate and
	// terminate (covered implicitly), and every branch target must
	// point at a valid instruction.
	res, err := Annotate(nestedLoop(3, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	for idx, in := range res.Prog.Instrs {
		if in.Op.IsBranch() {
			if in.Target < 0 || in.Target >= len(res.Prog.Instrs) {
				t.Errorf("instr %d: target %d out of range", idx, in.Target)
			}
		}
	}
}

func TestDefaultMaxStatic(t *testing.T) {
	if DefaultMaxStatic != 64 {
		t.Errorf("DefaultMaxStatic = %d", DefaultMaxStatic)
	}
}

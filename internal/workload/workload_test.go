package workload

import (
	"testing"

	"cbws/internal/mem"
	"cbws/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 30 {
		t.Fatalf("registered %d workloads, want 30", len(all))
	}
	mi := MemoryIntensive()
	reg := Regular()
	if len(mi) != 15 || len(reg) != 15 {
		t.Errorf("MI=%d regular=%d, want 15/15", len(mi), len(reg))
	}
	seen := map[string]bool{}
	for _, s := range all {
		if seen[s.Name] {
			t.Errorf("duplicate workload %q", s.Name)
		}
		seen[s.Name] = true
		if s.Suite == "" {
			t.Errorf("%s: missing suite", s.Name)
		}
		if s.Make == nil {
			t.Errorf("%s: nil constructor", s.Name)
		}
	}
}

func TestTableIVNamesPresent(t *testing.T) {
	// The paper's Table IV memory-intensive benchmarks.
	names := []string{
		"429.mcf-ref", "450.soplex-ref", "462.libquantum-ref",
		"433.milc-su3imp", "401.bzip2-source", "mri-q-large",
		"histo-large", "stencil-default", "sgemm-medium", "nw",
		"lbm-long", "lu-ncb-simlarge", "fft-simlarge",
		"radix-simlarge", "streamcluster-simlarge",
	}
	for _, n := range names {
		s, ok := ByName(n)
		if !ok {
			t.Errorf("missing Table IV workload %q", n)
			continue
		}
		if !s.MI {
			t.Errorf("%q not marked memory-intensive", n)
		}
	}
}

func TestByNameMiss(t *testing.T) {
	if _, ok := ByName("no-such-benchmark"); ok {
		t.Error("ByName should miss")
	}
}

// structural checks applied to a bounded prefix of every workload.
func checkStructure(t *testing.T, s Spec) {
	t.Helper()
	tr := trace.Capture(trace.Limit{Gen: s.Make(), Max: 200_000})
	if len(tr.Events) == 0 {
		t.Fatalf("%s: empty trace", s.Name)
	}
	var loads, stores, begins, ends int
	depth := 0
	pcs := map[uint64]bool{}
	lines := map[mem.LineAddr]bool{}
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.Load:
			loads++
			pcs[e.PC] = true
			lines[mem.LineOf(e.Addr)] = true
		case trace.Store:
			stores++
			pcs[e.PC] = true
			lines[mem.LineOf(e.Addr)] = true
		case trace.BlockBegin:
			begins++
			depth++
			if depth > 1 {
				t.Fatalf("%s: nested BlockBegin", s.Name)
			}
		case trace.BlockEnd:
			ends++
			if depth == 0 {
				t.Fatalf("%s: BlockEnd without Begin", s.Name)
			}
			depth--
		}
	}
	if loads == 0 {
		t.Errorf("%s: no loads", s.Name)
	}
	if begins == 0 || ends == 0 {
		t.Errorf("%s: no annotated blocks (begins=%d ends=%d)", s.Name, begins, ends)
	}
	if d := begins - ends; d < 0 || d > 1 {
		t.Errorf("%s: unbalanced markers: %d begins, %d ends", s.Name, begins, ends)
	}
	if len(pcs) < 2 {
		t.Errorf("%s: only %d distinct PCs", s.Name, len(pcs))
	}
	if len(lines) < 8 {
		t.Errorf("%s: touches only %d lines", s.Name, len(lines))
	}
}

func TestAllWorkloadStructures(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) { checkStructure(t, s) })
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	for _, s := range All() {
		a := trace.Capture(trace.Limit{Gen: s.Make(), Max: 50_000})
		b := trace.Capture(trace.Limit{Gen: s.Make(), Max: 50_000})
		if len(a.Events) != len(b.Events) {
			t.Errorf("%s: lengths differ: %d vs %d", s.Name, len(a.Events), len(b.Events))
			continue
		}
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				t.Errorf("%s: event %d differs", s.Name, i)
				break
			}
		}
	}
}

func TestWorkloadsAreLargeEnough(t *testing.T) {
	// Every workload must naturally produce at least 5M instructions so
	// that the 4M+1M default window never underruns.
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			var n uint64
			trace.Limit{Gen: s.Make(), Max: 5_100_000}.Generate(trace.SinkFunc(func(e trace.Event) {
				n += uint64(e.Count())
			}))
			if n < 5_000_000 {
				t.Errorf("natural size %d < 5M instructions", n)
			}
		})
	}
}

func TestMIBlockSizesWithinCBWSLimit(t *testing.T) {
	// The paper sizes the CBWS buffer at 16 lines because 16 covers
	// >98% of dynamic blocks; verify the emulations respect that,
	// except bzip2, which intentionally overflows (Section VII-C).
	for _, s := range MemoryIntensive() {
		tr := trace.Capture(trace.Limit{Gen: s.Make(), Max: 150_000})
		var over, blocks int
		var cur map[mem.LineAddr]bool
		for _, e := range tr.Events {
			switch e.Kind {
			case trace.BlockBegin:
				cur = make(map[mem.LineAddr]bool)
			case trace.Load, trace.Store:
				if cur != nil {
					cur[mem.LineOf(e.Addr)] = true
				}
			case trace.BlockEnd:
				if cur != nil {
					blocks++
					if len(cur) > 16 {
						over++
					}
					cur = nil
				}
			}
		}
		if blocks == 0 {
			t.Errorf("%s: no blocks", s.Name)
			continue
		}
		frac := float64(over) / float64(blocks)
		if s.Name == "401.bzip2-source" {
			if frac < 0.5 {
				t.Errorf("bzip2 overflow fraction %.2f: expected most blocks to exceed 16 lines", frac)
			}
		} else if frac > 0.02 {
			t.Errorf("%s: %.1f%% of blocks exceed 16 lines", s.Name, 100*frac)
		}
	}
}

func TestPRNGDeterminism(t *testing.T) {
	a := newPRNG(42)
	b := newPRNG(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("prng not deterministic")
		}
	}
	c := newPRNG(43)
	same := true
	a = newPRNG(42)
	for i := 0; i < 10; i++ {
		if a.next() != c.next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestIntnRange(t *testing.T) {
	p := newPRNG(7)
	for i := 0; i < 1000; i++ {
		v := p.intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("intn out of range: %d", v)
		}
	}
}

func TestEmitBatching(t *testing.T) {
	tr := trace.New("x")
	e := newEmit(tr)
	e.instr(3)
	e.instr(4)
	e.load(0x10, 0x4000)
	e.flush()
	e.flushBuf()
	if len(tr.Events) != 2 {
		t.Fatalf("events = %v", tr.Events)
	}
	if tr.Events[0].Count() != 7 {
		t.Errorf("batched count = %d", tr.Events[0].Count())
	}
}

func TestBaseAddressesDisjoint(t *testing.T) {
	// Arrays must never overlap within a workload's address space.
	for k := 0; k < 8; k++ {
		lo := base(k)
		hi := base(k + 1)
		if hi-lo != arrayStride {
			t.Fatalf("base(%d)..base(%d) gap = %d", k, k+1, hi-lo)
		}
	}
}

package check_test

import (
	"math/rand"
	"testing"

	"cbws/internal/cache"
	"cbws/internal/check"
	"cbws/internal/mem"
)

// cacheConfig is the geometry used by the cache differential tests:
// small enough that evictions, MSHR stalls and pinned-victim fallbacks
// all occur constantly under a random stream.
func cacheConfig() (cache.Config, check.RefCacheConfig) {
	const sets, ways, mshrs = 16, 4, 3
	real := cache.Config{
		Name:          "diff",
		SizeBytes:     sets * ways * mem.LineSize,
		Ways:          ways,
		LatencyCycles: 2,
		MSHRs:         mshrs,
	}
	ref := check.RefCacheConfig{Sets: sets, Ways: ways, LatencyCycles: 2, MSHRs: mshrs}
	return real, ref
}

// compareCacheStats asserts counter-for-counter equality between the
// production and reference statistics.
func compareCacheStats(t *testing.T, step int, got cache.Stats, want check.RefCacheStats) {
	t.Helper()
	mirror := check.RefCacheStats{
		Accesses:          got.Accesses,
		Hits:              got.Hits,
		Misses:            got.Misses,
		MergedMiss:        got.MergedMiss,
		PrefetchIssued:    got.PrefetchIssued,
		PrefetchRedundant: got.PrefetchRedundant,
		PrefetchDropped:   got.PrefetchDropped,
		PrefetchUseful:    got.PrefetchUseful,
		PrefetchLate:      got.PrefetchLate,
		PrefetchWrong:     got.PrefetchWrong,
		Writebacks:        got.Writebacks,
	}
	if mirror != want {
		t.Fatalf("step %d: stats diverged:\n real %+v\n  ref %+v", step, mirror, want)
	}
}

// driveCachePair feeds one pseudo-random operation stream — demand
// accesses with protocol-correct fills, prefetches, invalidations,
// dirty marks, and deliberately non-monotonic timestamps — to the
// production cache and the reference model, requiring bit-identical
// outcomes at every step. It returns the number of operations driven.
func driveCachePair(t testingT, c *cache.Cache, ref *check.RefCache, rng *rand.Rand, ops int) {
	const memLatency = 37
	now := uint64(100)
	for i := 0; i < ops; i++ {
		// Mostly forward time, with occasional backward jitter: demand
		// fills run at now+latency while prefetch issues run at now, so
		// the MSHR reap must tolerate non-monotonic call times.
		now += uint64(rng.Intn(8))
		at := now
		if j := rng.Intn(16); j == 0 && at > 10 {
			at -= uint64(rng.Intn(10))
		}
		l := mem.LineAddr(rng.Intn(3 * 16 * 4)) // ~3x capacity: hits and evictions
		switch op := rng.Intn(10); {
		case op < 6: // demand access + protocol fill
			got := c.Access(l, at)
			want := ref.Access(l, at)
			if got.Hit != want.Hit || got.Merged != want.Merged ||
				got.MergedPf != want.MergedPf || got.ReadyAt != want.ReadyAt ||
				got.WasPfHit != want.WasPfHit || got.FilledNew != want.FilledNew {
				t.Fatalf("op %d: access %v at %d diverged:\n real %+v\n  ref %+v",
					i, l, at, got, want)
			}
			if got.FilledNew {
				lat := uint64(rng.Intn(memLatency))
				gf := c.Fill(l, at, lat, false)
				wf := ref.Fill(l, at, lat, false)
				if gf != wf {
					t.Fatalf("op %d: fill %v at %d: real completes %d, ref %d", i, l, at, gf, wf)
				}
			}
		case op < 8: // prefetch
			gi, _ := c.TryPrefetch(l, at, memLatency)
			wi := ref.TryPrefetch(l, at, memLatency)
			if gi != wi {
				t.Fatalf("op %d: prefetch %v at %d: real issued=%v, ref issued=%v", i, l, at, gi, wi)
			}
		case op < 9: // back-invalidation
			c.Invalidate(l)
			ref.Invalidate(l)
		default: // write
			c.MarkDirty(l)
			ref.MarkDirty(l)
		}
	}
}

// testingT is the subset of testing.T/testing.F shared by the
// differential drivers.
type testingT interface {
	Helper()
	Fatalf(format string, args ...any)
}

// TestCacheVsReference drives over a million random operations through
// the production cache and the map-based reference, with the embedded
// invariant checkers enabled, and requires bit-identical behaviour:
// every access outcome, every fill time, every statistics counter.
func TestCacheVsReference(t *testing.T) {
	prev := check.Enabled
	check.Enabled = true
	defer func() { check.Enabled = prev }()

	realCfg, refCfg := cacheConfig()
	const seeds, opsPerSeed = 8, 150_000 // 1.2M operations total
	for seed := int64(0); seed < seeds; seed++ {
		c, err := cache.New(realCfg)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := check.NewRefCache(refCfg)
		if err != nil {
			t.Fatal(err)
		}
		driveCachePair(t, c, ref, rand.New(rand.NewSource(seed)), opsPerSeed)

		c.DrainWrong()
		ref.DrainWrong()
		compareCacheStats(t, opsPerSeed, c.Stats, ref.Stats)
		if got, want := c.ResidentLines(), ref.ResidentLines(); got != want {
			t.Fatalf("seed %d: resident lines: real %d, ref %d", seed, got, want)
		}
		if err := c.Check(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// Package atomicdiscipline is the fixture for the
// cbws/atomicdiscipline analyzer.
package atomicdiscipline

import (
	"expvar"
	"sync/atomic"
)

type counters struct {
	hits atomic.Int64
	n    int64
}

func badCopy(c *counters) atomic.Int64 {
	return c.hits // want `atomic field hits copied or reassigned`
}

var flag atomic.Bool

func badVarCopy() atomic.Bool {
	return flag // want `atomic value flag copied or reassigned`
}

func badMixedRead(c *counters) int64 {
	atomic.AddInt64(&c.n, 1)
	return c.n // want `plain access to field n`
}

func badMixedWrite(c *counters) {
	c.n = 0 // want `plain access to field n`
}

func badExpvarName() {
	expvar.NewInt("BadName") // want `expvar name "BadName" violates the cbwsd convention`
}

func badExpvarUnderscoreFirst() {
	expvar.Publish("_hidden", nil) // want `expvar name "_hidden" violates the cbwsd convention`
}

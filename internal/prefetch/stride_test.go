package prefetch

import (
	"testing"

	"cbws/internal/mem"
)

// collect gathers issued prefetch lines.
type collect struct{ lines []mem.LineAddr }

func (c *collect) issue(l mem.LineAddr) { c.lines = append(c.lines, l) }

// missAt builds a full-miss access for line l by PC pc.
func missAt(pc uint64, l mem.LineAddr) Access {
	return Access{PC: pc, Addr: l.Byte(), Line: l}
}

// hitAt builds an L1-hit access.
func hitAt(pc uint64, l mem.LineAddr) Access {
	a := missAt(pc, l)
	a.HitL1 = true
	return a
}

func TestNonePrefetcher(t *testing.T) {
	p := NewNone()
	c := &collect{}
	p.OnAccess(missAt(1, 100), c.issue)
	p.OnBlockBegin(0)
	p.OnBlockEnd(0, c.issue)
	if len(c.lines) != 0 {
		t.Errorf("none issued %v", c.lines)
	}
	if p.StorageBits() != 0 || p.Name() != "none" {
		t.Error("none metadata wrong")
	}
	p.Reset()
}

func TestStrideDetectsSteadyStream(t *testing.T) {
	p := NewStride(StrideConfig{})
	c := &collect{}
	// Three accesses with stride 3 establish steady state; the third
	// (still a miss) triggers prefetches at +3 and +6.
	for i := 0; i < 3; i++ {
		p.OnAccess(missAt(0x40, mem.LineAddr(100+3*i)), c.issue)
	}
	want := []mem.LineAddr{109, 112}
	if len(c.lines) != 2 || c.lines[0] != want[0] || c.lines[1] != want[1] {
		t.Errorf("issued %v, want %v", c.lines, want)
	}
}

func TestStrideNoIssueBeforeSteady(t *testing.T) {
	p := NewStride(StrideConfig{})
	c := &collect{}
	p.OnAccess(missAt(0x40, 100), c.issue)
	p.OnAccess(missAt(0x40, 103), c.issue)
	if len(c.lines) != 0 {
		t.Errorf("issued before steady: %v", c.lines)
	}
}

func TestStrideChangeResetsConfidence(t *testing.T) {
	p := NewStride(StrideConfig{})
	c := &collect{}
	for i := 0; i < 3; i++ {
		p.OnAccess(missAt(0x40, mem.LineAddr(100+3*i)), c.issue)
	}
	c.lines = nil
	// Break the stride: no prefetch until re-trained.
	p.OnAccess(missAt(0x40, 500), c.issue)
	p.OnAccess(missAt(0x40, 505), c.issue)
	if len(c.lines) != 0 {
		t.Errorf("issued during retraining: %v", c.lines)
	}
	p.OnAccess(missAt(0x40, 510), c.issue)
	if len(c.lines) == 0 {
		t.Error("no prefetch after re-training")
	}
}

func TestStrideMissTriggerOnly(t *testing.T) {
	p := NewStride(StrideConfig{})
	c := &collect{}
	for i := 0; i < 3; i++ {
		p.OnAccess(missAt(0x40, mem.LineAddr(100+3*i)), c.issue)
	}
	c.lines = nil
	// An L1 hit trains but must not issue under the default policy.
	p.OnAccess(hitAt(0x40, 112), c.issue)
	if len(c.lines) != 0 {
		t.Errorf("hit-triggered prefetch: %v", c.lines)
	}
	// With IssueOnHits, hits issue too.
	p2 := NewStride(StrideConfig{IssueOnHits: true})
	for i := 0; i < 3; i++ {
		p2.OnAccess(hitAt(0x40, mem.LineAddr(100+3*i)), c.issue)
	}
	if len(c.lines) == 0 {
		t.Error("IssueOnHits did not issue")
	}
}

func TestStrideNegativeStride(t *testing.T) {
	p := NewStride(StrideConfig{})
	c := &collect{}
	for i := 0; i < 3; i++ {
		p.OnAccess(missAt(0x40, mem.LineAddr(1000-5*i)), c.issue)
	}
	if len(c.lines) != 2 || c.lines[0] != 985 || c.lines[1] != 980 {
		t.Errorf("issued %v, want [985 980]", c.lines)
	}
}

func TestStrideTracksStreamsPerPC(t *testing.T) {
	p := NewStride(StrideConfig{})
	c := &collect{}
	// Interleave two streams with different PCs and strides; both must
	// reach steady state independently.
	for i := 0; i < 3; i++ {
		p.OnAccess(missAt(0xA, mem.LineAddr(100+2*i)), c.issue)
		p.OnAccess(missAt(0xB, mem.LineAddr(9000+7*i)), c.issue)
	}
	found := map[mem.LineAddr]bool{}
	for _, l := range c.lines {
		found[l] = true
	}
	if !found[106] || !found[9021] {
		t.Errorf("missing per-PC predictions: %v", c.lines)
	}
}

func TestStrideSameLineNoTraining(t *testing.T) {
	p := NewStride(StrideConfig{})
	c := &collect{}
	// Repeated accesses to the same line carry no stream information.
	for i := 0; i < 10; i++ {
		p.OnAccess(missAt(0x40, 100), c.issue)
	}
	if len(c.lines) != 0 {
		t.Errorf("same-line accesses issued %v", c.lines)
	}
}

func TestStrideTableEviction(t *testing.T) {
	p := NewStride(StrideConfig{TableEntries: 2})
	c := &collect{}
	// Train PC 1 to steady.
	for i := 0; i < 3; i++ {
		p.OnAccess(missAt(1, mem.LineAddr(100+i)), c.issue)
	}
	// Touch two more PCs: PC 1 is evicted (LRU).
	p.OnAccess(missAt(2, 500), c.issue)
	p.OnAccess(missAt(3, 600), c.issue)
	c.lines = nil
	// PC 1 must re-train from scratch: first re-access issues nothing.
	p.OnAccess(missAt(1, 103), c.issue)
	if len(c.lines) != 0 {
		t.Errorf("evicted entry retained state: %v", c.lines)
	}
}

func TestStrideStorageBitsTableIII(t *testing.T) {
	p := NewStride(StrideConfig{})
	// Table III: (48 + 2*12) * 256 = 18432 bits = 2.25KB.
	if got := p.StorageBits(); got != 18432 {
		t.Errorf("StorageBits = %d, want 18432", got)
	}
}

func TestStrideReset(t *testing.T) {
	p := NewStride(StrideConfig{})
	c := &collect{}
	for i := 0; i < 3; i++ {
		p.OnAccess(missAt(0x40, mem.LineAddr(100+3*i)), c.issue)
	}
	p.Reset()
	c.lines = nil
	p.OnAccess(missAt(0x40, 112), c.issue)
	if len(c.lines) != 0 {
		t.Errorf("reset did not clear state: %v", c.lines)
	}
}

// Command figures regenerates every table and figure of the paper's
// evaluation on the simulated Table II system and prints them as ASCII
// tables.
//
// Usage:
//
//	figures [-n instructions] [-par N] [-fig all|1|t1|3|5|t2|t3|12|13|14|15]
//	figures -obs-dir obs/ [-sample-interval N]
//
// With -fig all (the default) the full evaluation matrix (30 workloads ×
// 7 schemes) is simulated once and every figure is derived from it.
// With -obs-dir every matrix cell additionally writes a structured run
// record (JSON manifest) and a time-series CSV into the directory;
// -debug-addr serves pprof/expvar diagnostics while the matrix fills.
package main

import (
	"flag"
	"fmt"
	"os"

	"cbws/internal/cli"
	"cbws/internal/debugsrv"
	"cbws/internal/harness"
	"cbws/internal/report"
	"cbws/internal/workload"
)

// validFigs is the accepted -fig vocabulary; anything else is a usage
// error (exit 2), not a silent no-op run.
var validFigs = map[string]bool{
	"all": true, "1": true, "t1": true, "3": true, "4": true, "5": true,
	"t2": true, "t3": true, "12": true, "13": true, "14": true, "15": true,
	"ext": true, "learned": true,
}

// usageErr reports a command-line usage error and exits 2 via the
// shared convention, matching flag's own behaviour on unknown flags.
func usageErr(format string, args ...any) {
	flag.Usage()
	cli.Usagef("figures", format, args...)
}

func main() {
	n := flag.Uint64("n", 4_000_000, "instructions per simulation run")
	warm := flag.Uint64("warmup", 1_000_000, "warmup instructions excluded from metrics")
	par := flag.Int("par", 0, "parallel simulations (<= 0: one per CPU)")
	fig := flag.String("fig", "all", "figure to regenerate (all, 1, t1, 3, 5, t2, t3, 12, 13, 14, 15, ext, learned)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	golden := flag.String("golden", "", "write a golden determinism manifest for the full matrix to this path and render nothing")
	obsDir := flag.String("obs-dir", "", "write per-cell run records (JSON) and time series (CSV) into this directory")
	interval := flag.Uint64("sample-interval", 0, "probe sampling period in instructions (0: default; used with -obs-dir)")
	corpusDir := flag.String("corpus-dir", "", "replay workloads from packed .cbwc corpora in this directory (others use live generators)")
	corpusMmap := flag.Bool("corpus-mmap", true, "mmap corpus files (false: positioned-read fallback)")
	debugAddr := flag.String("debug-addr", "", "serve pprof/expvar diagnostics on this address (e.g. :6060)")
	flag.Parse()

	if flag.NArg() > 0 {
		usageErr("unexpected argument %q", flag.Arg(0))
	}
	if !validFigs[*fig] {
		usageErr("unknown -fig %q", *fig)
	}
	if *warm >= *n {
		usageErr("-warmup %d must be smaller than -n %d", *warm, *n)
	}

	if *debugAddr != "" {
		addr, err := debugsrv.Serve(*debugAddr)
		if err != nil {
			cli.Errorf("figures", "%v", err)
		}
		fmt.Fprintf(os.Stderr, "figures: diagnostics on http://%s/debug/pprof/ and /debug/vars\n", addr)
	}

	opts := harness.DefaultOptions()
	opts.Sim.MaxInstructions = *n
	opts.Sim.WarmupInstructions = *warm
	opts.Parallel = *par
	opts.ObsDir = *obsDir
	opts.SampleInterval = *interval
	if *corpusDir != "" {
		src, err := harness.OpenCorpusDir(*corpusDir, *corpusMmap)
		if err != nil {
			cli.Errorf("figures", "%v", err)
		}
		defer src.Close()
		for _, name := range src.Names() {
			if got := src.Instructions(name); got < *n {
				cli.Errorf("figures", "corpus for %q holds %d instructions, run needs %d", name, got, *n)
			}
		}
		fmt.Fprintf(os.Stderr, "figures: replaying %d workload(s) from %s\n", len(src.Names()), *corpusDir)
		opts.Corpus = src
	}
	m := harness.NewMatrix(opts)

	if *golden != "" {
		if err := writeGolden(m, *golden); err != nil {
			cli.Errorf("figures", "%v", err)
		}
		return
	}

	if err := run(m, opts, *fig, *n, *csv); err != nil {
		cli.Errorf("figures", "%v", err)
	}
}

// writeGolden simulates the full evaluation matrix (every registered
// workload × every golden-roster scheme — the evaluated schemes plus
// the learned baselines) and writes its determinism manifest to path.
func writeGolden(m *harness.Matrix, path string) error {
	g, err := harness.BuildGolden(m, workload.All(), harness.GoldenPrefetchers())
	if err != nil {
		return err
	}
	if err := harness.WriteGolden(path, g); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "figures: golden manifest for %d cells written to %s (matrix %0.12s…)\n",
		len(g.Cells), path, g.MatrixHash)
	return nil
}

func run(m *harness.Matrix, opts harness.Options, fig string, n uint64, csv bool) error {
	out := os.Stdout
	want := func(name string) bool { return fig == "all" || fig == name }
	render := func(t *report.Table) {
		if csv {
			t.RenderCSV(out)
		} else {
			t.Render(out)
		}
	}

	if want("t2") {
		render(harness.TableII(opts))
	}
	if want("t3") {
		render(harness.TableIII())
	}
	if want("t1") {
		render(harness.TableI())
	}
	if want("1") {
		t, err := harness.Figure1(m)
		if err != nil {
			return err
		}
		render(t)
	}
	if want("3") || want("4") {
		f3, f4 := harness.Figure3And4(8)
		render(f3)
		render(f4)
	}
	if want("5") {
		t, err := harness.Figure5(n)
		if err != nil {
			return err
		}
		render(t)
	}
	if want("12") {
		t, err := harness.Figure12(m)
		if err != nil {
			return err
		}
		render(t)
	}
	if want("13") {
		t, err := harness.Figure13(m)
		if err != nil {
			return err
		}
		render(t)
	}
	if want("14") {
		mi, reg, err := harness.Figure14(m)
		if err != nil {
			return err
		}
		render(mi)
		render(reg)
	}
	if fig == "ext" { // extensions are opt-in, not part of "all"
		t, err := harness.ExtensionTable(m)
		if err != nil {
			return err
		}
		render(t)
	}
	if fig == "learned" { // learned baselines are opt-in, not part of "all"
		t, err := harness.LearnedTable(m)
		if err != nil {
			return err
		}
		render(t)
	}
	if want("15") {
		t, err := harness.Figure15(m)
		if err != nil {
			return err
		}
		render(t)
	}
	return nil
}

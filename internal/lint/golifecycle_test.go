package lint_test

import (
	"testing"

	"cbws/internal/lint"
	"cbws/internal/lint/linttest"
)

func TestGoLifecycle(t *testing.T) {
	linttest.Run(t, lint.GoLifecycle, "testdata/src/golifecycle")
}

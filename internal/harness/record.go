package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cbws/internal/sim"
	"cbws/internal/stats"
)

// RunRecordSchemaVersion identifies the run-record JSON layout. Bump it
// on any incompatible change and keep ValidateRunRecord in sync.
const RunRecordSchemaVersion = 1

// RunRecord is the structured manifest of one simulation run: the exact
// configuration, the identity of the cell, provenance (Go version, wall
// time), the final metrics, and the delta-encoded sample series. One
// record is written per matrix cell when observability is enabled.
type RunRecord struct {
	Schema         int               `json:"schema"`
	Workload       string            `json:"workload"`
	Prefetcher     string            `json:"prefetcher"`
	GoVersion      string            `json:"go_version"`
	WallTime       float64           `json:"wall_time_sec"`
	SampleInterval uint64            `json:"sample_interval"`
	Config         sim.Config        `json:"config"`
	Metrics        stats.Metrics     `json:"metrics"`
	Samples        []sim.SamplePoint `json:"samples"`
}

// NewRunRecord assembles the record for one completed run.
func NewRunRecord(cfg sim.Config, res sim.Result, interval uint64, samples []sim.SamplePoint, wall time.Duration) *RunRecord {
	return &RunRecord{
		Schema:         RunRecordSchemaVersion,
		Workload:       res.Workload,
		Prefetcher:     res.Prefetcher,
		GoVersion:      runtime.Version(),
		WallTime:       wall.Seconds(),
		SampleInterval: interval,
		Config:         cfg,
		Metrics:        res.Metrics,
		Samples:        samples,
	}
}

// Validate checks the record against the documented schema: version,
// identity, provenance, a positive sample interval, and a sample series
// whose interval counters sum to the final metrics.
func (r *RunRecord) Validate() error {
	if r.Schema != RunRecordSchemaVersion {
		return fmt.Errorf("run record: schema %d, want %d", r.Schema, RunRecordSchemaVersion)
	}
	if r.Workload == "" || r.Prefetcher == "" {
		return fmt.Errorf("run record: missing workload/prefetcher identity")
	}
	if r.GoVersion == "" {
		return fmt.Errorf("run record: missing go_version")
	}
	if r.WallTime < 0 {
		return fmt.Errorf("run record: negative wall_time_sec %g", r.WallTime)
	}
	if r.SampleInterval == 0 {
		return fmt.Errorf("run record: sample_interval must be positive")
	}
	if len(r.Samples) == 0 {
		return fmt.Errorf("run record: empty sample series")
	}
	last := r.Samples[len(r.Samples)-1]
	if !last.Final {
		return fmt.Errorf("run record: series does not end with the final sample")
	}
	var instr uint64
	prevAt := uint64(0)
	for i, p := range r.Samples {
		if p.Instructions < prevAt {
			return fmt.Errorf("run record: sample %d goes backwards (%d < %d)", i, p.Instructions, prevAt)
		}
		prevAt = p.Instructions
		instr += p.Interval.Instructions
	}
	if instr != r.Metrics.Instructions {
		return fmt.Errorf("run record: interval instructions sum to %d, final metrics report %d",
			instr, r.Metrics.Instructions)
	}
	return nil
}

// ReadRunRecord parses and validates a run-record JSON file.
func ReadRunRecord(path string) (*RunRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r RunRecord
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("run record %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// CellFileName returns the directory-safe base name (no extension) of
// the record files for one workload × prefetcher cell. Scheme names may
// contain path separators ("ghb-pc/dc"), which are flattened.
func CellFileName(workloadName, prefetcherName string) string {
	clean := func(s string) string {
		return strings.Map(func(r rune) rune {
			switch r {
			case '/', '\\', ':', ' ':
				return '-'
			}
			return r
		}, s)
	}
	return clean(workloadName) + "__" + clean(prefetcherName)
}

// WriteJSON writes the record as indented JSON to path.
func (r *RunRecord) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteCSV writes the sample series as CSV to path: one row per sample
// with cumulative position, interval counters and derived interval
// rates (IPC/MPKI over the interval alone), plus the occupancies.
func (r *RunRecord) WriteCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{
		"instructions", "cycles",
		"interval_instructions", "interval_cycles",
		"interval_ipc", "interval_mpki", "interval_timely_frac",
		"interval_bytes_from_mem", "interval_prefetch_issued",
		"rob_occupancy", "l1_mshr_occupancy", "l2_mshr_occupancy", "final",
	}); err != nil {
		f.Close()
		return err
	}
	for _, p := range r.Samples {
		m := p.Interval
		if err := w.Write([]string{
			strconv.FormatUint(p.Instructions, 10),
			strconv.FormatUint(p.Cycles, 10),
			strconv.FormatUint(m.Instructions, 10),
			strconv.FormatUint(m.Cycles, 10),
			strconv.FormatFloat(m.IPC(), 'g', -1, 64),
			strconv.FormatFloat(m.MPKI(), 'g', -1, 64),
			strconv.FormatFloat(m.TimelyFrac(), 'g', -1, 64),
			strconv.FormatUint(m.BytesFromMem, 10),
			strconv.FormatUint(m.PrefetchIssued, 10),
			strconv.Itoa(p.ROBOccupancy),
			strconv.Itoa(p.L1MSHROccupancy),
			strconv.Itoa(p.L2MSHROccupancy),
			strconv.FormatBool(p.Final),
		}); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteFiles writes the JSON manifest and CSV series into dir (created
// if missing) under the cell's sanitized name.
func (r *RunRecord) WriteFiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base := filepath.Join(dir, CellFileName(r.Workload, r.Prefetcher))
	if err := r.WriteJSON(base + ".json"); err != nil {
		return err
	}
	return r.WriteCSV(base + ".csv")
}

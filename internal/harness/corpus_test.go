package harness

import (
	"path/filepath"
	"strings"
	"testing"

	"cbws/internal/trace/corpus"
	"cbws/internal/workload"
)

// packWorkload packs the first max instructions of a workload into a
// .cbwc file under dir and returns the file path.
func packWorkload(t *testing.T, dir, name string, max uint64) string {
	t.Helper()
	spec, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("workload %q missing", name)
	}
	path := filepath.Join(dir, strings.ReplaceAll(name, "/", "_")+".cbwc")
	if _, err := corpus.Pack(path, spec.Make(), max, corpus.Options{}); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenCorpusDir(t *testing.T) {
	dir := t.TempDir()
	packWorkload(t, dir, "stencil-default", 200_000)
	packWorkload(t, dir, "429.mcf-ref", 200_000)

	src, err := OpenCorpusDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	want := []string{"429.mcf-ref", "stencil-default"}
	got := src.Names()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	if !src.Has("stencil-default") || src.Has("radix-simlarge") {
		t.Fatal("Has misreports corpus membership")
	}
	h, ok := src.Hash("stencil-default")
	if !ok || len(h) != 64 {
		t.Fatalf("Hash() = %q, %v", h, ok)
	}
	if n := src.Instructions("stencil-default"); n < 200_000 {
		t.Fatalf("Instructions() = %d, want >= 200000", n)
	}
	if src.Instructions("radix-simlarge") != 0 {
		t.Fatal("Instructions for an absent workload should be 0")
	}
}

func TestOpenCorpusDirErrors(t *testing.T) {
	if _, err := OpenCorpusDir(t.TempDir(), true); err == nil {
		t.Fatal("empty dir accepted")
	}
	if _, err := OpenCorpusDir(filepath.Join(t.TempDir(), "missing"), true); err == nil {
		t.Fatal("missing dir accepted")
	}
	// Two files claiming the same workload name must be rejected.
	dir := t.TempDir()
	spec, _ := workload.ByName("stencil-default")
	for _, f := range []string{"a.cbwc", "b.cbwc"} {
		if _, err := corpus.Pack(filepath.Join(dir, f), spec.Make(), 50_000, corpus.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := OpenCorpusDir(dir, true); err == nil || !strings.Contains(err.Error(), "two corpora") {
		t.Fatalf("duplicate names: got %v", err)
	}
}

// TestCorpusReplayMatchesLiveSimulation is the integration pin: a
// matrix cell simulated from corpus replay must produce exactly the
// metrics of the same cell simulated from the live generator, on both
// the mmap and the ReaderAt corpus paths. This is what lets corpus-fed
// runs share golden manifests and cbwsd cache entries with live runs.
func TestCorpusReplayMatchesLiveSimulation(t *testing.T) {
	opts := tinyOptions()
	spec, _ := workload.ByName("stencil-default")
	f, _ := FactoryByName("cbws")

	live, err := NewMatrix(opts).Get(spec, f)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	packWorkload(t, dir, "stencil-default", opts.Sim.MaxInstructions)
	for _, mmap := range []bool{true, false} {
		src, err := OpenCorpusDir(dir, mmap)
		if err != nil {
			t.Fatal(err)
		}
		copts := opts
		copts.Corpus = src
		res, err := NewMatrix(copts).Get(spec, f)
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics != live.Metrics {
			t.Errorf("mmap=%v: corpus replay metrics diverge from live simulation:\n corpus: %+v\n live:   %+v",
				mmap, res.Metrics, live.Metrics)
		}
		src.Close()
	}
}

// TestCorpusOverrideLeavesOthersAlone checks a spec without a corpus
// passes through Override untouched.
func TestCorpusOverrideLeavesOthersAlone(t *testing.T) {
	dir := t.TempDir()
	packWorkload(t, dir, "stencil-default", 50_000)
	src, err := OpenCorpusDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	spec, _ := workload.ByName("429.mcf-ref")
	if got := src.Override(spec); got.Name != spec.Name || got.Make == nil {
		t.Fatal("Override mangled a corpus-less spec")
	}
	backed, _ := workload.ByName("stencil-default")
	over := src.Override(backed)
	if over.Make == nil {
		t.Fatal("Override dropped Make")
	}
	if gen := over.Make(); gen.Name() != "stencil-default" {
		t.Fatalf("replayer name %q", gen.Name())
	}
}

package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"cbws/internal/harness"
	"cbws/internal/sim"
)

// submitAndWait drives one spec through a service's HTTP API to
// completion and returns (key, result bytes).
func submitAndWait(t *testing.T, url, body string) (string, []byte) {
	t.Helper()
	code, m, _ := postJob(t, url, body)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, m)
	}
	key, _ := m["key"].(string)
	if view := waitDone(t, url, key); view["status"] != "done" {
		t.Fatalf("job %s: %v", key, view)
	}
	status, data := getJSON(t, url+"/v1/results/"+key)
	if status != http.StatusOK {
		t.Fatalf("result %s: %d %s", key, status, data)
	}
	return key, data
}

const peerJobBody = `{"workload":"stencil-default","prefetcher":"stride"}`

// TestPeerFetchServesSiblingResult is the federated-cache core: worker
// A computes a key, worker B (peered with A) is asked for the same
// spec and must serve A's exact bytes via peer-fetch without running a
// simulation of its own.
func TestPeerFetchServesSiblingResult(t *testing.T) {
	svcA, tsA := newTestService(t, testConfig())
	keyA, dataA := submitAndWait(t, tsA.URL, peerJobBody)
	if got := svcA.Counters().JobsSimulated; got != 1 {
		t.Fatalf("A simulated %d jobs, want 1", got)
	}

	cfgB := testConfig()
	cfgB.Peers = []string{tsA.URL}
	svcB, tsB := newTestService(t, cfgB)
	keyB, dataB := submitAndWait(t, tsB.URL, peerJobBody)

	if keyA != keyB {
		t.Fatalf("same spec keyed differently: %s vs %s", keyA, keyB)
	}
	if !bytes.Equal(dataA, dataB) {
		t.Fatalf("peer-fetched result differs from the origin bytes:\nA %d bytes\nB %d bytes", len(dataA), len(dataB))
	}
	vars := svcB.Counters()
	if vars.PeerHits != 1 {
		t.Fatalf("B peer_fetch_hits = %d, want 1", vars.PeerHits)
	}
	if vars.JobsSimulated != 0 {
		t.Fatalf("B simulated %d jobs, want 0 — the peer fetch should have served it", vars.JobsSimulated)
	}
	if vars.JobsDone != 1 {
		t.Fatalf("B jobs_done = %d, want 1", vars.JobsDone)
	}

	// The peer-fetched entry is now in B's own cache: a replay is a
	// plain local cache hit, no sibling traffic.
	probes := vars.PeerHits + vars.PeerMisses + vars.PeerErrors
	code, m, _ := postJob(t, tsB.URL, peerJobBody)
	if code != http.StatusOK || m["cached"] != true {
		t.Fatalf("replay on B: %d %v, want cached 200", code, m)
	}
	v2 := svcB.Counters()
	if got := v2.PeerHits + v2.PeerMisses + v2.PeerErrors; got != probes {
		t.Fatalf("replay touched the peers (%d probes, had %d)", got, probes)
	}
}

// cellHashOf reduces a served run record to its canonical cell hash —
// the identity golden manifests pin. Wall-clock telemetry in the
// record is excluded by construction, so two daemons computing the
// same key must agree on this hash exactly.
func cellHashOf(t *testing.T, data []byte) string {
	t.Helper()
	rec := &harness.RunRecord{}
	if err := json.Unmarshal(data, rec); err != nil {
		t.Fatal(err)
	}
	return harness.CellHash(sim.Result{Workload: rec.Workload, Prefetcher: rec.Prefetcher, Metrics: rec.Metrics})
}

// TestPeerFetchFailover kills the only peer and proves the worker
// falls back to recomputing the identical result (same key, same
// canonical cell hash; only wall-clock telemetry may differ). This is
// the cluster's failover story in miniature: a worker death costs at
// most a redundant simulation, never a wrong or missing result.
func TestPeerFetchFailover(t *testing.T) {
	_, tsA := newTestService(t, testConfig())
	keyA, dataA := submitAndWait(t, tsA.URL, peerJobBody)
	deadURL := tsA.URL
	tsA.Close() // worker A dies

	cfgB := testConfig()
	cfgB.Peers = []string{deadURL}
	svcB, tsB := newTestService(t, cfgB)
	keyB, dataB := submitAndWait(t, tsB.URL, peerJobBody)

	if keyA != keyB {
		t.Fatalf("keys diverged: %s vs %s", keyA, keyB)
	}
	if cellHashOf(t, dataA) != cellHashOf(t, dataB) {
		t.Fatal("recomputed result differs from the dead sibling's — determinism broken")
	}
	vars := svcB.Counters()
	if vars.PeerErrors == 0 {
		t.Fatal("dead peer never surfaced as peer_fetch_errors")
	}
	if vars.JobsSimulated != 1 {
		t.Fatalf("B simulated %d jobs, want 1 (local fallback)", vars.JobsSimulated)
	}
}

// TestPeerFetchMissFallsBack peers with a live sibling that does NOT
// have the key: the probe counts a miss and the worker simulates.
func TestPeerFetchMissFallsBack(t *testing.T) {
	_, tsA := newTestService(t, testConfig()) // empty cache

	cfgB := testConfig()
	cfgB.Peers = []string{tsA.URL}
	svcB, tsB := newTestService(t, cfgB)
	submitAndWait(t, tsB.URL, peerJobBody)

	vars := svcB.Counters()
	if vars.PeerMisses != 1 || vars.PeerHits != 0 {
		t.Fatalf("peer counters hits=%d misses=%d, want 0/1", vars.PeerHits, vars.PeerMisses)
	}
	if vars.JobsSimulated != 1 {
		t.Fatalf("B simulated %d jobs, want 1", vars.JobsSimulated)
	}
}

// TestPeerFetchRejectsInvalidBody proves a sibling serving garbage for
// the right key cannot poison the local cache: the body is rejected,
// the error counted, and the job simulated locally.
func TestPeerFetchRejectsInvalidBody(t *testing.T) {
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"not":"a run record"}`)
	}))
	defer evil.Close()

	cfg := testConfig()
	cfg.Peers = []string{evil.URL}
	svc, ts := newTestService(t, cfg)
	_, data := submitAndWait(t, ts.URL, peerJobBody)
	if len(data) == 0 || bytes.Contains(data, []byte("not")) {
		t.Fatal("evil peer body reached the cache")
	}
	vars := svc.Counters()
	if vars.PeerErrors != 1 {
		t.Fatalf("peer_fetch_errors = %d, want 1", vars.PeerErrors)
	}
	if vars.JobsSimulated != 1 {
		t.Fatalf("simulated %d, want 1 — garbage must fall back to computing", vars.JobsSimulated)
	}
}

// TestPeerConfigRejectsDuplicates checks a malformed fleet config
// fails construction instead of skewing the ring.
func TestPeerConfigRejectsDuplicates(t *testing.T) {
	cfg := testConfig()
	cfg.Peers = []string{"http://x:1", "http://x:1"}
	if _, err := New(cfg); err == nil {
		t.Fatal("duplicate peers accepted")
	}
}

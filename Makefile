GO ?= go

.PHONY: all build test vet fmt-check race bench check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails if any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The harness is the one package with real concurrency (parallel matrix
# fill, single-flight memoization), so it gets a race-detector run.
race:
	$(GO) test -race ./internal/harness/...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

check: build vet fmt-check test race

// Command figures regenerates every table and figure of the paper's
// evaluation on the simulated Table II system and prints them as ASCII
// tables.
//
// Usage:
//
//	figures [-n instructions] [-par N] [-fig all|1|t1|3|5|t2|t3|12|13|14|15]
//	figures -obs-dir obs/ [-sample-interval N]
//
// With -fig all (the default) the full evaluation matrix (30 workloads ×
// 7 schemes) is simulated once and every figure is derived from it.
// With -obs-dir every matrix cell additionally writes a structured run
// record (JSON manifest) and a time-series CSV into the directory;
// -debug-addr serves pprof/expvar diagnostics while the matrix fills.
package main

import (
	"flag"
	"fmt"
	"os"

	"cbws/internal/debugsrv"
	"cbws/internal/harness"
	"cbws/internal/report"
)

func main() {
	n := flag.Uint64("n", 4_000_000, "instructions per simulation run")
	warm := flag.Uint64("warmup", 1_000_000, "warmup instructions excluded from metrics")
	par := flag.Int("par", 0, "parallel simulations (<= 0: one per CPU)")
	fig := flag.String("fig", "all", "figure to regenerate (all, 1, t1, 3, 5, t2, t3, 12, 13, 14, 15, ext)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	obsDir := flag.String("obs-dir", "", "write per-cell run records (JSON) and time series (CSV) into this directory")
	interval := flag.Uint64("sample-interval", 0, "probe sampling period in instructions (0: default; used with -obs-dir)")
	debugAddr := flag.String("debug-addr", "", "serve pprof/expvar diagnostics on this address (e.g. :6060)")
	flag.Parse()

	if *debugAddr != "" {
		addr, err := debugsrv.Serve(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "figures: diagnostics on http://%s/debug/pprof/ and /debug/vars\n", addr)
	}

	opts := harness.DefaultOptions()
	opts.Sim.MaxInstructions = *n
	opts.Sim.WarmupInstructions = *warm
	opts.Parallel = *par
	opts.ObsDir = *obsDir
	opts.SampleInterval = *interval
	m := harness.NewMatrix(opts)

	if err := run(m, opts, *fig, *n, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(m *harness.Matrix, opts harness.Options, fig string, n uint64, csv bool) error {
	out := os.Stdout
	want := func(name string) bool { return fig == "all" || fig == name }
	render := func(t *report.Table) {
		if csv {
			t.RenderCSV(out)
		} else {
			t.Render(out)
		}
	}

	if want("t2") {
		render(harness.TableII(opts))
	}
	if want("t3") {
		render(harness.TableIII())
	}
	if want("t1") {
		render(harness.TableI())
	}
	if want("1") {
		t, err := harness.Figure1(m)
		if err != nil {
			return err
		}
		render(t)
	}
	if want("3") || want("4") {
		f3, f4 := harness.Figure3And4(8)
		render(f3)
		render(f4)
	}
	if want("5") {
		t, err := harness.Figure5(n)
		if err != nil {
			return err
		}
		render(t)
	}
	if want("12") {
		t, err := harness.Figure12(m)
		if err != nil {
			return err
		}
		render(t)
	}
	if want("13") {
		t, err := harness.Figure13(m)
		if err != nil {
			return err
		}
		render(t)
	}
	if want("14") {
		mi, reg, err := harness.Figure14(m)
		if err != nil {
			return err
		}
		render(mi)
		render(reg)
	}
	if fig == "ext" { // extensions are opt-in, not part of "all"
		t, err := harness.ExtensionTable(m)
		if err != nil {
			return err
		}
		render(t)
	}
	if want("15") {
		t, err := harness.Figure15(m)
		if err != nil {
			return err
		}
		render(t)
	}
	return nil
}

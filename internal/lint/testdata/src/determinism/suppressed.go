package determinism

import "time"

// telemetry is the documented waiver shape: wall-clock durations that
// feed human-facing telemetry, never golden output.
func telemetry() int64 {
	//lint:ignore cbws/determinism wall-clock telemetry never reaches golden output
	return time.Now().UnixNano()
}

package harness

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"cbws/internal/prefetch"
	"cbws/internal/sim"
	"cbws/internal/workload"
)

// tinyOptions keeps harness tests fast.
func tinyOptions() Options {
	opts := DefaultOptions()
	opts.Sim.MaxInstructions = 120_000
	opts.Sim.WarmupInstructions = 20_000
	opts.Parallel = 4
	return opts
}

func TestPrefetcherRoster(t *testing.T) {
	fs := Prefetchers()
	want := []string{"none", "stride", "ghb-pc/dc", "ghb-g/dc", "sms", "cbws", "cbws+sms"}
	if len(fs) != len(want) {
		t.Fatalf("roster size %d", len(fs))
	}
	for i, f := range fs {
		if f.Name != want[i] {
			t.Errorf("roster[%d] = %q, want %q", i, f.Name, want[i])
		}
		p := f.New()
		if p.Name() != f.Name {
			t.Errorf("factory %q builds %q", f.Name, p.Name())
		}
	}
	if _, ok := FactoryByName("sms"); !ok {
		t.Error("FactoryByName(sms) missing")
	}
	if _, ok := FactoryByName("bogus"); ok {
		t.Error("FactoryByName(bogus) should miss")
	}
}

func TestMatrixMemoizes(t *testing.T) {
	m := NewMatrix(tinyOptions())
	spec, _ := workload.ByName("stencil-default")
	f, _ := FactoryByName("none")
	a, err := m.Get(spec, f)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Get(spec, f)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != b.Metrics {
		t.Error("memoized result differs")
	}
}

func TestMatrixGetSingleFlight(t *testing.T) {
	// Concurrent Gets of the same cell must run the simulation exactly
	// once (single-flight), with every caller receiving that one
	// result. The factory counts constructions: one construction = one
	// simulation.
	m := NewMatrix(tinyOptions())
	spec, _ := workload.ByName("stencil-default")
	var built atomic.Int32
	f := Factory{Name: "none", New: func() prefetch.Prefetcher {
		built.Add(1)
		return prefetch.NewNone()
	}}
	const callers = 8
	results := make([]sim.Result, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = m.Get(spec, f)
		}(i)
	}
	wg.Wait()
	if n := built.Load(); n != 1 {
		t.Errorf("simulation ran %d times, want 1", n)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i].Metrics != results[0].Metrics {
			t.Errorf("caller %d got a different result", i)
		}
	}
}

func TestDefaultParallelIsMachineWidth(t *testing.T) {
	if p := DefaultOptions().Parallel; p < 1 {
		t.Errorf("DefaultOptions().Parallel = %d, want >= 1", p)
	}
}

func TestMatrixFillParallel(t *testing.T) {
	m := NewMatrix(tinyOptions())
	specs := []workload.Spec{}
	for _, n := range []string{"stencil-default", "histo-large"} {
		s, _ := workload.ByName(n)
		specs = append(specs, s)
	}
	fs := []Factory{}
	for _, n := range []string{"none", "sms"} {
		f, _ := FactoryByName(n)
		fs = append(fs, f)
	}
	if err := m.Fill(specs, fs); err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		for _, f := range fs {
			r, err := m.Get(s, f)
			if err != nil {
				t.Fatal(err)
			}
			if r.Metrics.Instructions == 0 {
				t.Errorf("%s/%s: empty result", s.Name, f.Name)
			}
		}
	}
}

func TestTableI(t *testing.T) {
	tab := TableI()
	s := tab.String()
	// Must reproduce the paper's values.
	for _, want := range []string{"120, 3F9, 1FF", "124, 3F1, 1FF", "4, -8, 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table I missing %q:\n%s", want, s)
		}
	}
}

func TestTableII(t *testing.T) {
	s := TableII(DefaultOptions()).String()
	for _, want := range []string{"32KB", "2MB", "300 cycles", "4-way LRU", "8-way LRU", "inclusive"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

func TestTableIIIStorage(t *testing.T) {
	s := TableIII().String()
	// Paper's storage budgets.
	for _, want := range []string{"2.25", "3.75", "0.99"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table III missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "none") {
		t.Error("no-prefetch should not appear in Table III")
	}
}

func TestFigure3And4(t *testing.T) {
	f3, f4 := Figure3And4(8)
	if len(f3.Rows) != 8 {
		t.Errorf("figure 3 rows = %d", len(f3.Rows))
	}
	if len(f4.Rows) != 7 {
		t.Errorf("figure 4 rows = %d", len(f4.Rows))
	}
	// The stencil differentials are the constant 1024-line plane stride.
	for _, row := range f4.Rows {
		if !strings.Contains(row[1], "1024") {
			t.Errorf("differential row %q missing the 1024-line stride", row[1])
		}
	}
}

func TestFigure5(t *testing.T) {
	tab, err := Figure5(120_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(Figure5Workloads) {
		t.Errorf("rows = %d", len(tab.Rows))
	}
	s := tab.String()
	if !strings.Contains(s, "stencil-default") || !strings.Contains(s, "450.soplex-ref") {
		t.Error("figure 5 missing paper workloads")
	}
}

func TestFigure1SmallRun(t *testing.T) {
	m := NewMatrix(tinyOptions())
	tab, err := Figure1(m)
	if err != nil {
		t.Fatal(err)
	}
	// 15 MI workloads + average row.
	if len(tab.Rows) != 16 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "average" {
		t.Errorf("last row = %v", last)
	}
}

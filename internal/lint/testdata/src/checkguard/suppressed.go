package checkguard

import "cbws/internal/check"

func (t *table) flush() {
	//lint:ignore cbws/checkguard flush is cold-path and the assert documents an external contract
	check.Assertf(t.n >= 0, "flush with size %d", t.n)
	t.n = 0
}

// Package stats defines the derived metrics the paper's evaluation
// reports — IPC, last-level-cache MPKI, the five-way timeliness/accuracy
// classification of Figure 13, and performance/cost — together with the
// aggregation helpers (means, normalization) used to build the figures.
package stats

import (
	"fmt"
	"math"
)

// Metrics are the raw counters of one simulation run. The JSON tags are
// the run-record serialization schema (internal/harness run records);
// renaming one is a schema change.
type Metrics struct {
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	Loads        uint64  `json:"loads"`
	Stores       uint64  `json:"stores"`
	Branches     uint64  `json:"branches"`
	Mispredicts  uint64  `json:"mispredicts"`
	Blocks       uint64  `json:"blocks"`    // dynamic code block (loop iteration) count
	LoopFrac     float64 `json:"loop_frac"` // fraction of runtime inside annotated blocks

	DemandL2       uint64 `json:"demand_l2"`        // demand accesses that reached the L2
	DemandL2Misses uint64 `json:"demand_l2_misses"` // demand accesses whose data was not ready at the L2

	Timely    uint64 `json:"timely"` // Figure 13 classes, in demand L2 accesses
	ShorterWT uint64 `json:"shorter_wt"`
	NonTimely uint64 `json:"non_timely"`
	Missing   uint64 `json:"missing"`
	PlainHit  uint64 `json:"plain_hit"`
	Wrong     uint64 `json:"wrong"` // prefetched lines never demanded

	BytesFromMem      uint64 `json:"bytes_from_mem"`  // total read traffic (demand + prefetch)
	DemandBytes       uint64 `json:"demand_bytes"`    // read traffic from demand misses alone
	WritebackBytes    uint64 `json:"writeback_bytes"` // dirty-eviction write traffic
	PrefetchIssued    uint64 `json:"prefetch_issued"`
	PrefetchRedundant uint64 `json:"prefetch_redundant"`
	PrefetchDropped   uint64 `json:"prefetch_dropped"`
	PrefetchUseful    uint64 `json:"prefetch_useful"`
	PrefetchLate      uint64 `json:"prefetch_late"`
}

// IPC returns instructions per cycle.
func (m Metrics) IPC() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.Instructions) / float64(m.Cycles)
}

// MPKI returns last-level-cache demand misses per kilo-instruction
// (Figure 12).
func (m Metrics) MPKI() float64 {
	if m.Instructions == 0 {
		return 0
	}
	return float64(m.DemandL2Misses) / (float64(m.Instructions) / 1000)
}

// PerfPerByte returns IPC per byte read from memory, the raw
// performance/cost ratio of Figure 15 (reported there normalized to the
// no-prefetch configuration).
func (m Metrics) PerfPerByte() float64 {
	if m.BytesFromMem == 0 {
		return math.Inf(1)
	}
	return m.IPC() / float64(m.BytesFromMem)
}

// frac returns n as a fraction of the demand L2 accesses.
func (m Metrics) frac(n uint64) float64 {
	if m.DemandL2 == 0 {
		return 0
	}
	return float64(n) / float64(m.DemandL2)
}

// TimelyFrac returns the fraction of demand L2 accesses served by a
// completed prefetch.
func (m Metrics) TimelyFrac() float64 { return m.frac(m.Timely) }

// ShorterWTFrac returns the fraction that merged with in-flight
// prefetches.
func (m Metrics) ShorterWTFrac() float64 { return m.frac(m.ShorterWT) }

// NonTimelyFrac returns the fraction missing despite being identified.
func (m Metrics) NonTimelyFrac() float64 { return m.frac(m.NonTimely) }

// MissingFrac returns the fraction never identified by the prefetcher.
func (m Metrics) MissingFrac() float64 { return m.frac(m.Missing) }

// WrongFrac returns wrong prefetches as a fraction of demand L2
// accesses; like the paper's Figure 13, this can exceed 100%.
func (m Metrics) WrongFrac() float64 { return m.frac(m.Wrong) }

// MispredictRate returns branch mispredictions per branch.
func (m Metrics) MispredictRate() float64 {
	if m.Branches == 0 {
		return 0
	}
	return float64(m.Mispredicts) / float64(m.Branches)
}

// Accuracy returns useful prefetches (timely + late) over all issued.
func (m Metrics) Accuracy() float64 {
	if m.PrefetchIssued == 0 {
		return 0
	}
	return float64(m.PrefetchUseful+m.PrefetchLate) / float64(m.PrefetchIssued)
}

// Coverage returns the fraction of would-be misses covered by prefetches.
func (m Metrics) Coverage() float64 {
	covered := m.Timely
	total := m.Timely + m.DemandL2Misses
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}

func (m Metrics) String() string {
	return fmt.Sprintf("IPC=%.3f MPKI=%.2f timely=%.1f%% wrong=%.1f%% bytes=%d",
		m.IPC(), m.MPKI(), 100*m.TimelyFrac(), 100*m.WrongFrac(), m.BytesFromMem)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs; non-positive and non-finite
// values are skipped (0 for empty input).
func GeoMean(xs []float64) float64 {
	var s float64
	n := 0
	for _, x := range xs {
		if x <= 0 || math.IsInf(x, 0) || math.IsNaN(x) {
			continue
		}
		s += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Normalize divides each value by the matching baseline value; zero
// baselines produce zero.
func Normalize(values, baseline []float64) []float64 {
	out := make([]float64, len(values))
	for i := range values {
		if i < len(baseline) && baseline[i] != 0 {
			out[i] = values[i] / baseline[i]
		}
	}
	return out
}

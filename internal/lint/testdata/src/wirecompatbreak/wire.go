// Package wirecompatbreak is the fixture for wirecompat's failure
// modes: compat.json froze an older contract, and every declaration
// below has drifted from it.
package wirecompatbreak

const PathJobs = "/v1/jobs-moved" // want `route PathJobs changed from "/v1/jobs" to "/v1/jobs-moved"`

type JobView struct { // want `field JobView.Gone removed` `field JobView.Count retyped from int to int64`
	Key   string `json:"key"`
	Count int64  `json:"count"`
}

type TagView struct { // want `field TagView.Key json tag changed from "key" to "key_id"`
	Key string `json:"key_id"`
}

type Extra struct { // want `wire struct Extra not in manifest`
	Name string `json:"name"`
}

//go:build !unix

package corpus

import (
	"errors"
	"os"
)

// errMmapUnavailable makes Open fall through to the io.ReaderAt path.
var errMmapUnavailable = errors.New("corpus: mmap unavailable")

// mmapFile always fails on platforms without a memory-mapping
// implementation; Open falls back to positioned reads.
func mmapFile(_ *os.File, _ int64) ([]byte, func() error, error) {
	return nil, nil, errMmapUnavailable
}

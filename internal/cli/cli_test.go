package cli

import (
	"bytes"
	"os"
	"testing"
)

// TestExitCodeConvention pins the shared convention: Usagef is always
// exit 2, Errorf is always exit 1, and both prefix the command name.
func TestExitCodeConvention(t *testing.T) {
	tests := []struct {
		name     string
		call     func()
		wantCode int
		wantMsg  string
	}{
		{
			name:     "usage error exits 2",
			call:     func() { Usagef("demo", "unexpected argument %q", "x") },
			wantCode: ExitUsage,
			wantMsg:  "demo: unexpected argument \"x\"\n",
		},
		{
			name:     "runtime failure exits 1",
			call:     func() { Errorf("demo", "open %s: no such file", "a.json") },
			wantCode: ExitFail,
			wantMsg:  "demo: open a.json: no such file\n",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			code := -1
			Exit = func(c int) { code = c }
			Stderr = &buf
			defer func() {
				Exit = os.Exit
				Stderr = os.Stderr
			}()
			tc.call()
			if code != tc.wantCode {
				t.Errorf("exit code = %d, want %d", code, tc.wantCode)
			}
			if buf.String() != tc.wantMsg {
				t.Errorf("stderr = %q, want %q", buf.String(), tc.wantMsg)
			}
		})
	}
}

GO ?= go

.PHONY: all build test vet fmt-check race bench obs-smoke check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails if any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The harness has real concurrency (parallel matrix fill, single-flight
# memoization) and the sim probes run under it, so both get a
# race-detector pass.
race:
	$(GO) test -race ./internal/sim/... ./internal/harness/...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# End-to-end observability smoke: simulate 200k instructions with a run
# record attached, then re-validate the record against the schema.
obs-smoke:
	$(GO) build -o /tmp/cbwsim-smoke ./cmd/cbwsim
	/tmp/cbwsim-smoke -workload stencil-default -prefetcher cbws+sms \
		-n 200000 -warmup 50000 -obs /tmp/cbwsim-smoke-run.json -sample-interval 20000
	/tmp/cbwsim-smoke -validate-record /tmp/cbwsim-smoke-run.json

check: build vet fmt-check test race obs-smoke

// Package determinism is the fixture for the cbws/determinism
// analyzer.
package determinism

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"time"
)

func timestamps() int64 {
	return time.Now().UnixNano() // want `time.Now`
}

func roll() int {
	return rand.Intn(6) // want `unseeded global source`
}

func unstable(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `sort.Slice is not stable`
}

func leakOrder(m map[string]int) {
	for k := range m {
		fmt.Fprintln(os.Stdout, k) // want `map iteration order`
	}
}

func hashOrder(m map[string]int, w io.Writer) {
	for k := range m {
		w.Write([]byte(k)) // want `map iteration order`
	}
}

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `leaks iteration order`
	}
	return keys
}

package sim

import (
	"context"
	"errors"
	"testing"

	"cbws/internal/cache"
	"cbws/internal/engine"
	"cbws/internal/registry"
	"cbws/internal/trace"
	"cbws/internal/workload"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.MaxInstructions = 300_000
	cfg.WarmupInstructions = 80_000
	return cfg
}

// TestProbeFinalMatchesResult is the golden coherence check for the
// observability layer: for a grid of workloads × prefetchers, the final
// probe sample's cumulative metrics must be bit-identical to the run's
// Result.Metrics, and the delta-encoded interval series must telescope
// back to the same totals.
func TestProbeFinalMatchesResult(t *testing.T) {
	for _, wlName := range []string{"stencil-default", "429.mcf-ref"} {
		for _, pfName := range []string{"none", "sms", "cbws+sms"} {
			spec, ok := workload.ByName(wlName)
			if !ok {
				t.Fatalf("workload %s missing", wlName)
			}
			f, ok := registry.ByName(pfName)
			if !ok {
				t.Fatalf("prefetcher %s missing", pfName)
			}
			ts := NewTimeSeries(16)
			res, err := RunContext(context.Background(), testConfig(), spec.Make(), f.New(),
				WithProbe(ts), WithSampleInterval(50_000))
			if err != nil {
				t.Fatalf("%s/%s: %v", wlName, pfName, err)
			}
			final, ok := ts.Final()
			if !ok {
				t.Fatalf("%s/%s: no final sample", wlName, pfName)
			}
			if final != res.Metrics {
				t.Errorf("%s/%s: final cumulative sample diverges from Result.Metrics:\nprobe:  %+v\nresult: %+v",
					wlName, pfName, final, res.Metrics)
			}
			if ts.Len() == 0 {
				t.Fatalf("%s/%s: empty series", wlName, pfName)
			}
			pts := ts.Points()
			if !pts[len(pts)-1].Final {
				t.Errorf("%s/%s: last point not marked final", wlName, pfName)
			}
			sum := Result{}.Metrics // zero metrics
			for _, p := range pts {
				sum.Instructions += p.Interval.Instructions
				sum.Cycles += p.Interval.Cycles
				sum.DemandL2 += p.Interval.DemandL2
				sum.BytesFromMem += p.Interval.BytesFromMem
				sum.PrefetchIssued += p.Interval.PrefetchIssued
			}
			if sum.Instructions != res.Metrics.Instructions ||
				sum.Cycles != res.Metrics.Cycles ||
				sum.DemandL2 != res.Metrics.DemandL2 ||
				sum.BytesFromMem != res.Metrics.BytesFromMem ||
				sum.PrefetchIssued != res.Metrics.PrefetchIssued {
				t.Errorf("%s/%s: interval series does not telescope to the run totals: sum %+v, want %+v",
					wlName, pfName, sum, res.Metrics)
			}
		}
	}
}

// TestProbeDoesNotPerturbRun pins that attaching a probe changes no
// reported metric: sampling is read-only and batch splitting cannot move
// timing (the batched/per-event golden test guarantees boundary
// independence).
func TestProbeDoesNotPerturbRun(t *testing.T) {
	spec, _ := workload.ByName("histo-large")
	f, _ := registry.ByName("cbws+sms")

	plain, err := Run(testConfig(), spec.Make(), f.New())
	if err != nil {
		t.Fatal(err)
	}
	probed, err := RunContext(context.Background(), testConfig(), spec.Make(), f.New(),
		WithProbe(NewTimeSeries(16)), WithSampleInterval(30_000))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics != probed.Metrics {
		t.Errorf("probe perturbed the run:\nplain:  %+v\nprobed: %+v", plain.Metrics, probed.Metrics)
	}
}

// TestProbeSamplesCarryOccupancy checks that samples report plausible
// occupancy readings: bounded by the configured structures, and at
// least one non-trivial ROB reading on a memory-bound workload.
func TestProbeSamplesCarryOccupancy(t *testing.T) {
	spec, _ := workload.ByName("429.mcf-ref")
	f, _ := registry.ByName("none")
	cfg := testConfig()
	ts := NewTimeSeries(16)
	if _, err := RunContext(context.Background(), cfg, spec.Make(), f.New(),
		WithProbe(ts), WithSampleInterval(40_000)); err != nil {
		t.Fatal(err)
	}
	sawROB := false
	for _, p := range ts.Points() {
		if p.ROBOccupancy < 0 || p.ROBOccupancy > cfg.Core.ROBEntries {
			t.Fatalf("ROB occupancy %d out of [0, %d]", p.ROBOccupancy, cfg.Core.ROBEntries)
		}
		if p.L1MSHROccupancy < 0 || p.L1MSHROccupancy > cfg.Memory.L1.MSHRs {
			t.Fatalf("L1 MSHR occupancy %d out of [0, %d]", p.L1MSHROccupancy, cfg.Memory.L1.MSHRs)
		}
		if p.L2MSHROccupancy < 0 || p.L2MSHROccupancy > cfg.Memory.L2.MSHRs {
			t.Fatalf("L2 MSHR occupancy %d out of [0, %d]", p.L2MSHROccupancy, cfg.Memory.L2.MSHRs)
		}
		if p.ROBOccupancy > 0 {
			sawROB = true
		}
	}
	if !sawROB {
		t.Error("no sample observed a non-empty ROB on a memory-bound workload")
	}
}

// TestProgressReportsDuringWarmup checks that WithProgress fires from
// the start of the run (including warmup) at the sampling cadence, with
// monotonically increasing counts.
func TestProgressReportsDuringWarmup(t *testing.T) {
	spec, _ := workload.ByName("stencil-default")
	f, _ := registry.ByName("none")
	cfg := testConfig()
	var marks []uint64
	if _, err := RunContext(context.Background(), cfg, spec.Make(), f.New(),
		WithProgress(func(n uint64) { marks = append(marks, n) }),
		WithSampleInterval(50_000)); err != nil {
		t.Fatal(err)
	}
	if len(marks) == 0 {
		t.Fatal("no progress marks")
	}
	if marks[0] > cfg.WarmupInstructions {
		t.Errorf("first progress mark at %d, after warmup end %d — warmup not covered",
			marks[0], cfg.WarmupInstructions)
	}
	for i := 1; i < len(marks); i++ {
		if marks[i] <= marks[i-1] {
			t.Fatalf("progress not monotonic: %v", marks)
		}
	}
}

// TestRunContextCancellation checks that a cancellation mid-run aborts
// promptly — the run stops at a batch boundary long before the
// instruction budget — and surfaces ctx.Err().
func TestRunContextCancellation(t *testing.T) {
	spec, _ := workload.ByName("stencil-default")
	f, _ := registry.ByName("none")
	cfg := DefaultConfig()
	cfg.MaxInstructions = 50_000_000 // far more than we intend to simulate

	ctx, cancel := context.WithCancel(context.Background())
	var lastSeen uint64
	_, err := RunContext(ctx, cfg, spec.Make(), f.New(),
		WithProgress(func(n uint64) {
			lastSeen = n
			if n >= 100_000 {
				cancel()
			}
		}),
		WithSampleInterval(100_000))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The cancellation lands at the next batch boundary: well under a
	// million instructions past the cancel point, nowhere near the 50M
	// budget.
	if lastSeen > 2_000_000 {
		t.Errorf("run continued to %d instructions after cancellation", lastSeen)
	}
}

// TestRunContextPreCancelled checks the immediate-return path.
func TestRunContextPreCancelled(t *testing.T) {
	spec, _ := workload.ByName("stencil-default")
	f, _ := registry.ByName("none")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, testConfig(), spec.Make(), f.New()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunEqualsRunContextNoOptions pins the compatibility contract: Run
// and an option-less RunContext take the identical path.
func TestRunEqualsRunContextNoOptions(t *testing.T) {
	spec, _ := workload.ByName("histo-large")
	f, _ := registry.ByName("sms")
	a, err := Run(testConfig(), spec.Make(), f.New())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), testConfig(), spec.Make(), f.New())
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != b.Metrics {
		t.Errorf("Run and RunContext diverge:\nRun:        %+v\nRunContext: %+v", a.Metrics, b.Metrics)
	}
}

// TestSamplingSteadyStateAllocs asserts the zero-alloc steady state of
// the sampling path: taking a snapshot, computing interval/cumulative
// deltas, reading the occupancies and delivering the sample to a
// preallocated TimeSeries allocates nothing. The sink is first driven
// through real simulated work so the snapshots are non-trivial.
func TestSamplingSteadyStateAllocs(t *testing.T) {
	spec, _ := workload.ByName("stencil-default")
	f, _ := registry.ByName("cbws+sms")
	cfg := testConfig()

	h, err := cache.NewHierarchy(cfg.Memory)
	if err != nil {
		t.Fatal(err)
	}
	pf := f.New()
	pf.Reset()
	p := newPort(h, pf)
	eng, err := engine.New(cfg.Core, p, p)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTimeSeries(4096)
	s := &runSink{eng: eng, h: h, warmed: true, probe: ts, interval: 5_000, nextMark: 5_000}
	trace.DriveBatches(trace.Limit{Gen: spec.Make(), Max: 100_000}, s)
	if ts.Len() == 0 {
		t.Fatal("sink emitted no samples while being driven")
	}

	allocs := testing.AllocsPerRun(200, func() {
		s.emitSample(takeSnapshot(eng, h), false)
	})
	if allocs != 0 {
		t.Errorf("steady-state sampling allocates %v allocs/op, want 0", allocs)
	}
}

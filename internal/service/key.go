package service

import (
	"runtime/debug"

	apiv1 "cbws/api/v1"
)

// The job wire description and its canonical content address are part
// of the versioned wire contract and live in api/v1 — every consumer
// (this server, cbwsctl, cbwsload, the peer-fetch path) must key
// identically or the federated cache fractures. The service re-exports
// the names so server-side code reads naturally.
type JobSpec = apiv1.JobSpec

// KeySchema versions the content-address layout (see apiv1.KeySchema).
const KeySchema = apiv1.KeySchema

// CodeVersion returns the identity of the running simulator build for
// cache keying: the VCS revision when the binary carries build info,
// else "dev". Results cached by one revision are never served by
// another — and, because the key embeds it, a peer on a different
// revision simply never has the requested key, so peer-fetch can trust
// whatever a sibling serves.
func CodeVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	return "dev"
}

package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cbws/internal/mem"
)

// Binary trace file format:
//
//	magic "CBWT" | version u8 | name len uvarint | name bytes
//	then per event: kind u8 followed by kind-specific uvarint fields.
//	PC and Addr are delta-encoded against the previous Load/Store event
//	(zigzag varint), which keeps strided streams near 2 bytes/event.
//	A trailing kind byte 0xFF terminates the stream.

const (
	traceMagic   = "CBWT"
	traceVersion = 1
	kindEOF      = 0xFF
)

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("trace: malformed trace file")

// Writer encodes events to an io.Writer in the binary trace format.
type Writer struct {
	w        *bufio.Writer
	lastPC   uint64
	lastAddr uint64
	err      error
}

// NewWriter writes the file header (with the trace name) and returns a
// Writer ready to receive events.
func NewWriter(w io.Writer, name string) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(traceVersion); err != nil {
		return nil, err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(name)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(name); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

func (w *Writer) putUvarint(v uint64) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, w.err = w.w.Write(buf[:n])
}

func (w *Writer) putVarint(v int64) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, w.err = w.w.Write(buf[:n])
}

// Consume encodes one event. Errors are sticky and reported by Close.
func (w *Writer) Consume(e Event) {
	if w.err != nil {
		return
	}
	w.err = w.w.WriteByte(byte(e.Kind))
	switch e.Kind {
	case Instr:
		if e.N > MaxInstrCount {
			w.err = fmt.Errorf("trace: instr count %d exceeds %d", e.N, MaxInstrCount)
			return
		}
		w.putUvarint(uint64(e.Count()))
	case Load, Store:
		w.putVarint(int64(e.PC) - int64(w.lastPC))
		w.putVarint(int64(e.Addr) - int64(w.lastAddr))
		w.lastPC = e.PC
		w.lastAddr = uint64(e.Addr)
	case BlockBegin, BlockEnd:
		if e.Block < 0 || e.Block > MaxBlockID {
			w.err = fmt.Errorf("trace: block ID %d out of range [0, %d]", e.Block, MaxBlockID)
			return
		}
		w.putUvarint(uint64(e.Block))
	case Branch:
		w.putVarint(int64(e.PC) - int64(w.lastPC))
		w.lastPC = e.PC
		t := uint64(0)
		if e.Taken {
			t = 1
		}
		w.putUvarint(t)
	default:
		w.err = fmt.Errorf("trace: cannot encode kind %v", e.Kind)
	}
}

// ConsumeBatch implements BatchSink. Encoding errors are sticky; a
// stuck writer asks the producer to stop instead of silently chewing
// through the rest of the stream.
func (w *Writer) ConsumeBatch(batch []Event) bool {
	for i := range batch {
		if w.err != nil {
			return false
		}
		w.Consume(batch[i])
	}
	return w.err == nil
}

// Close terminates the stream and flushes buffered data.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if err := w.w.WriteByte(kindEOF); err != nil {
		return err
	}
	return w.w.Flush()
}

// Reader decodes a binary trace file. It implements Generator so a trace
// file can be fed straight into the simulator.
type Reader struct {
	r    *bufio.Reader
	name string
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if ver != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, ver)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("%w: name too long", ErrBadTrace)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	return &Reader{r: br, name: string(name)}, nil
}

// Name returns the trace name recorded in the file header.
func (r *Reader) Name() string { return r.name }

// Generate decodes events into sink until the terminator. Decoding errors
// surface as a panic-free early stop; use Decode for explicit errors.
func (r *Reader) Generate(sink Sink) {
	_ = r.Decode(sink)
}

// GenerateBatches implements BatchGenerator.
func (r *Reader) GenerateBatches(sink BatchSink) {
	_ = r.DecodeBatches(sink)
}

// Decode decodes events into sink and returns the first error.
func (r *Reader) Decode(sink Sink) error {
	return r.DecodeBatches(AsBatchSink(sink))
}

// DecodeBatches decodes events into sink in batches and returns the
// first error. Events decoded before an error are still delivered, and
// decoding stops early (without error) once the sink requests a stop.
func (r *Reader) DecodeBatches(sink BatchSink) error {
	var lastPC, lastAddr uint64
	buf := make([]Event, 0, batchSize)
	flush := func() bool {
		if len(buf) == 0 {
			return true
		}
		more := sink.ConsumeBatch(buf)
		buf = buf[:0]
		return more
	}
	fail := func(err error) error {
		flush()
		return fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	for {
		kb, err := r.r.ReadByte()
		if err != nil {
			return fail(err)
		}
		if kb == kindEOF {
			flush()
			return nil
		}
		e := Event{Kind: Kind(kb)}
		switch e.Kind {
		case Instr:
			n, err := binary.ReadUvarint(r.r)
			if err != nil {
				return fail(err)
			}
			// Bound before the int conversion: an unchecked 64-bit count
			// would wrap into garbage (possibly negative) on 32-bit
			// builds and distort instruction budgets everywhere.
			if n > MaxInstrCount {
				flush()
				return fmt.Errorf("%w: instr count %d exceeds %d", ErrBadTrace, n, uint64(MaxInstrCount))
			}
			e.N = int(n)
		case Load, Store:
			dpc, err := binary.ReadVarint(r.r)
			if err != nil {
				return fail(err)
			}
			daddr, err := binary.ReadVarint(r.r)
			if err != nil {
				return fail(err)
			}
			lastPC = uint64(int64(lastPC) + dpc)
			lastAddr = uint64(int64(lastAddr) + daddr)
			e.PC = lastPC
			e.Addr = mem.Addr(lastAddr)
		case BlockBegin, BlockEnd:
			id, err := binary.ReadUvarint(r.r)
			if err != nil {
				return fail(err)
			}
			if id > MaxBlockID {
				flush()
				return fmt.Errorf("%w: block ID %d exceeds %d", ErrBadTrace, id, uint64(MaxBlockID))
			}
			e.Block = int(id)
		case Branch:
			dpc, err := binary.ReadVarint(r.r)
			if err != nil {
				return fail(err)
			}
			lastPC = uint64(int64(lastPC) + dpc)
			e.PC = lastPC
			t, err := binary.ReadUvarint(r.r)
			if err != nil {
				return fail(err)
			}
			// The encoder writes exactly 0 or 1; anything else is a
			// corrupt stream, not a "very taken" branch.
			if t > 1 {
				flush()
				return fmt.Errorf("%w: branch outcome %d is not 0 or 1", ErrBadTrace, t)
			}
			e.Taken = t != 0
		default:
			flush()
			return fmt.Errorf("%w: unknown kind %d", ErrBadTrace, kb)
		}
		buf = append(buf, e)
		if len(buf) == cap(buf) && !flush() {
			return nil
		}
	}
}

// Package harness runs the paper's evaluation: every workload × every
// prefetcher on the Table II system, memoizing results so that all
// figures derive from one simulation matrix, and rendering each figure
// and table of the paper as a report.Table. With an observability
// directory configured it also writes a structured run record (JSON
// manifest plus time-series CSV) per matrix cell.
package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"cbws/internal/prefetch"
	"cbws/internal/registry"
	"cbws/internal/sim"
	"cbws/internal/workload"
)

// Factory names and constructs one prefetching scheme.
type Factory struct {
	Name string
	New  func() prefetch.Prefetcher
}

// fromRegistry converts registry factories to the harness view.
func fromRegistry(in []registry.Factory) []Factory {
	out := make([]Factory, len(in))
	for i, f := range in {
		out[i] = Factory{Name: f.Name, New: f.New}
	}
	return out
}

// Prefetchers returns the six evaluated schemes in the paper's plotting
// order: no-prefetch, stride, GHB PC/DC, GHB G/DC, SMS, CBWS, CBWS+SMS.
// The roster is backed by the shared scheme registry
// (internal/registry).
func Prefetchers() []Factory {
	return fromRegistry(registry.Evaluated())
}

// ExtendedPrefetchers returns the evaluated schemes plus extension
// baselines beyond the paper's roster (AMPM and Markov, which the
// paper's related-work section discusses but does not evaluate, and
// the learned Pythia/Gaze baselines).
func ExtendedPrefetchers() []Factory {
	return fromRegistry(registry.All())
}

// GoldenPrefetchers returns the roster pinned by golden/seed.json: the
// evaluated schemes plus the learned baselines (pythia, gaze), whose
// determinism the manifest guards cell by cell.
func GoldenPrefetchers() []Factory {
	return fromRegistry(registry.GoldenRoster())
}

// FactoryByName looks up an evaluated or extension scheme in the shared
// registry.
func FactoryByName(name string) (Factory, bool) {
	f, ok := registry.ByName(name)
	if !ok {
		return Factory{}, false
	}
	return Factory{Name: f.Name, New: f.New}, true
}

// ResolveFactory is FactoryByName with the registry's case-insensitive
// "did you mean" diagnostics: a miss returns the suggestion error
// verbatim, suitable for surfacing to a remote caller (the simulation
// service embeds it in HTTP 400 bodies).
func ResolveFactory(name string) (Factory, error) {
	f, err := registry.Resolve(name)
	if err != nil {
		return Factory{}, err
	}
	return Factory{Name: f.Name, New: f.New}, nil
}

// Options configures a harness run.
type Options struct {
	Sim sim.Config
	// Parallel bounds the number of simulations run concurrently by
	// Fill. Zero or negative means one per available CPU
	// (runtime.GOMAXPROCS(0)), the default.
	Parallel int
	// ObsDir, when non-empty, attaches a time-series probe to every
	// simulation and writes a run record (JSON manifest + CSV series)
	// per matrix cell into the directory, which is created if missing.
	ObsDir string
	// SampleInterval is the probe sampling period in committed
	// instructions (0: sim.DefaultSampleInterval). Only used when
	// ObsDir is set.
	SampleInterval uint64
	// Corpus, when set, replays workloads from packed CBWC corpora:
	// any spec whose name has a corpus in the source runs from replay
	// instead of its live generator; the rest are untouched.
	Corpus *CorpusSource
}

// DefaultOptions returns the Table II system with a 4M-instruction
// window per run, the first 1M excluded from metrics as warmup (the
// paper simulates 1e9 instructions starting at each benchmark's
// region of interest). Fill parallelism defaults to the full machine
// width.
func DefaultOptions() Options {
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = 4_000_000
	cfg.WarmupInstructions = 1_000_000
	return Options{Sim: cfg, Parallel: runtime.GOMAXPROCS(0)}
}

// cell is one memoized matrix entry with single-flight semantics:
// concurrent requests for the same cell run the simulation exactly once
// and all block on that one run, instead of racing to simulate it
// redundantly. The done channel (rather than a sync.Once) lets waiters
// also honor their own context, and lets a cell whose owning run was
// cancelled be retried instead of caching the cancellation forever.
type cell struct {
	done chan struct{}
	res  sim.Result
	err  error
}

// Matrix memoizes workload × prefetcher simulation results.
type Matrix struct {
	opts Options

	mu    sync.Mutex
	cells map[string]*cell //cbws:guardedby mu
}

// NewMatrix creates an empty result matrix.
func NewMatrix(opts Options) *Matrix {
	return &Matrix{opts: opts, cells: make(map[string]*cell)}
}

// Options returns the matrix configuration.
func (m *Matrix) Options() Options { return m.opts }

// Get simulates (or returns the memoized result of) one cell. Safe for
// concurrent use; concurrent Gets of the same cell simulate it once.
func (m *Matrix) Get(spec workload.Spec, f Factory) (sim.Result, error) {
	return m.GetContext(context.Background(), spec, f)
}

// isCtxErr reports whether err is (or wraps) a context cancellation or
// deadline error.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// GetContext is Get with cancellation: the context aborts both a run
// this call owns and the wait on a run another call owns. A cell whose
// owning run was cancelled is dropped from the matrix, so a later Get
// with a live context re-simulates it rather than inheriting the
// cancellation.
func (m *Matrix) GetContext(ctx context.Context, spec workload.Spec, f Factory) (sim.Result, error) {
	return m.GetObserved(ctx, spec, f)
}

// GetObserved is GetContext with per-call simulation options (probes,
// progress callbacks) attached to the run. The options only fire when
// this call ends up owning the simulation; a call that joins another
// caller's in-flight run (single-flight) or reads a memoized cell gets
// the result without its observers firing. The simulation service
// relies on this: each content-addressed job owns its cell exactly
// once, so its probe and progress hooks always attach.
func (m *Matrix) GetObserved(ctx context.Context, spec workload.Spec, f Factory, opts ...sim.Option) (sim.Result, error) {
	key := spec.Name + "\x00" + f.Name
	for {
		m.mu.Lock()
		c, ok := m.cells[key]
		if !ok {
			c = &cell{done: make(chan struct{})}
			m.cells[key] = c
			m.mu.Unlock()
			c.res, c.err = m.run(ctx, spec, f, opts...)
			if c.err != nil && isCtxErr(c.err) {
				m.mu.Lock()
				delete(m.cells, key)
				m.mu.Unlock()
			}
			close(c.done)
			return c.res, c.err
		}
		m.mu.Unlock()
		select {
		case <-c.done:
		case <-ctx.Done():
			return sim.Result{}, ctx.Err()
		}
		if c.err != nil && isCtxErr(c.err) {
			continue // owner was cancelled; retry with our context
		}
		return c.res, c.err
	}
}

// run executes one simulation, attaching the caller's per-run options
// plus the observability probe (and the run-record write) when an
// ObsDir is configured.
func (m *Matrix) run(ctx context.Context, spec workload.Spec, f Factory, extra ...sim.Option) (sim.Result, error) {
	wrap := func(err error) error {
		return fmt.Errorf("harness: %s/%s: %w", spec.Name, f.Name, err)
	}
	if m.opts.Corpus != nil {
		spec = m.opts.Corpus.Override(spec)
	}
	if m.opts.ObsDir == "" {
		res, err := sim.RunContext(ctx, m.opts.Sim, spec.Make(), f.New(), extra...)
		if err != nil {
			return res, wrap(err)
		}
		return res, nil
	}
	interval := m.opts.SampleInterval
	if interval == 0 {
		interval = sim.DefaultSampleInterval
	}
	ts := sim.NewTimeSeries(seriesCapacity(m.opts.Sim, interval))
	//lint:ignore cbws/determinism wall-clock duration is telemetry only, excluded from golden hashes
	start := time.Now()
	res, err := sim.RunContext(ctx, m.opts.Sim, spec.Make(), f.New(),
		append([]sim.Option{sim.WithProbe(ts), sim.WithSampleInterval(interval)}, extra...)...)
	if err != nil {
		return res, wrap(err)
	}
	rec := NewRunRecord(m.opts.Sim, res, interval, ts.Points(), time.Since(start))
	if err := rec.WriteFiles(m.opts.ObsDir); err != nil {
		return res, wrap(err)
	}
	return res, nil
}

// seriesCapacity sizes a TimeSeries so steady-state sampling never
// reallocates: one point per interval of the measured window, plus the
// final sample and slack for boundary overshoot.
func seriesCapacity(cfg sim.Config, interval uint64) int {
	if cfg.MaxInstructions == 0 || interval == 0 {
		return 64
	}
	return int(cfg.MaxInstructions/interval) + 2
}

// Fill simulates every cell of specs × factories, using up to
// opts.Parallel goroutines (all CPUs when Parallel <= 0).
func (m *Matrix) Fill(specs []workload.Spec, factories []Factory) error {
	return m.FillContext(context.Background(), specs, factories)
}

// FillContext fills the matrix under a context. Every launched
// simulation is waited for before returning — an early failure never
// leaves runs in flight — and all failures are aggregated with
// errors.Join. Cancelling the context stops new launches, aborts
// in-flight runs at their next batch boundary, and reports ctx.Err()
// (individual per-cell cancellations are folded into it rather than
// repeated per cell).
func (m *Matrix) FillContext(ctx context.Context, specs []workload.Spec, factories []Factory) error {
	type job struct {
		s workload.Spec
		f Factory
	}
	var jobs []job
	for _, s := range specs {
		for _, f := range factories {
			jobs = append(jobs, job{s, f})
		}
	}
	par := m.opts.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, par)
	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
		errs  []error
	)
launch:
	for _, j := range jobs {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break launch
		}
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := m.GetContext(ctx, j.s, j.f); err != nil && !isCtxErr(err) {
				errMu.Lock()
				errs = append(errs, err)
				errMu.Unlock()
			}
		}(j)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

package sim

import (
	"cbws/internal/stats"
)

// Sample is one probe observation, taken every SampleInterval committed
// instructions and once more at the end of the run. The struct handed to
// Probe.OnSample is owned by the simulator and reused between samples —
// implementations must copy what they keep and must not retain the
// pointer past the call.
type Sample struct {
	// Index is the 0-based sample sequence number within the run.
	Index int
	// Instructions is the total committed instruction count at the
	// sample point, including warmup.
	Instructions uint64
	// Cycles is the core clock at the sample point.
	Cycles uint64
	// Interval holds the metric deltas since the previous sample (for
	// the first sample: since the end of warmup) — the delta-encoded
	// series element.
	Interval stats.Metrics
	// Cumulative holds the metrics accumulated since the end of warmup.
	// The final sample's Cumulative is bit-identical to the run's
	// Result.Metrics.
	Cumulative stats.Metrics
	// ROBOccupancy is the number of reorder-buffer entries still
	// waiting to commit at the sample point.
	ROBOccupancy int
	// L1MSHROccupancy and L2MSHROccupancy count the outstanding fills
	// at each cache level at the sample point.
	L1MSHROccupancy int
	L2MSHROccupancy int
	// Final marks the end-of-run sample, taken after the hierarchy has
	// settled its accounting (unused prefetched lines charged as wrong).
	Final bool
}

// Probe observes a run as it executes. OnSample is called synchronously
// from the simulation loop every sample interval; implementations should
// be cheap and must not retain the *Sample (it is reused).
type Probe interface {
	OnSample(s *Sample)
}

// ProbeFunc adapts a function to the Probe interface.
type ProbeFunc func(s *Sample)

// OnSample calls f(s).
func (f ProbeFunc) OnSample(s *Sample) { f(s) }

// SamplePoint is the retained, serializable form of one sample: the
// delta-encoded interval metrics plus the instantaneous occupancies.
// Cumulative metrics are reconstructed by summing interval counters, so
// the series stays compact.
type SamplePoint struct {
	Instructions    uint64        `json:"instructions"`
	Cycles          uint64        `json:"cycles"`
	Interval        stats.Metrics `json:"interval"`
	ROBOccupancy    int           `json:"rob_occupancy"`
	L1MSHROccupancy int           `json:"l1_mshr_occupancy"`
	L2MSHROccupancy int           `json:"l2_mshr_occupancy"`
	Final           bool          `json:"final,omitempty"`
}

// TimeSeries is a Probe that records every sample as a SamplePoint. With
// a sufficient capacity hint it allocates nothing during the run, which
// keeps probed simulations on the zero-alloc steady-state path.
type TimeSeries struct {
	points   []SamplePoint
	final    stats.Metrics
	hasFinal bool
}

// NewTimeSeries returns an empty series with room for capacity samples
// before the backing array has to grow.
func NewTimeSeries(capacity int) *TimeSeries {
	return &TimeSeries{points: make([]SamplePoint, 0, capacity)}
}

// OnSample implements Probe.
func (t *TimeSeries) OnSample(s *Sample) {
	t.points = append(t.points, SamplePoint{
		Instructions:    s.Instructions,
		Cycles:          s.Cycles,
		Interval:        s.Interval,
		ROBOccupancy:    s.ROBOccupancy,
		L1MSHROccupancy: s.L1MSHROccupancy,
		L2MSHROccupancy: s.L2MSHROccupancy,
		Final:           s.Final,
	})
	if s.Final {
		t.final = s.Cumulative
		t.hasFinal = true
	}
}

// Points returns the recorded series. The slice is owned by the
// TimeSeries; callers must not mutate it while the run is in flight.
func (t *TimeSeries) Points() []SamplePoint { return t.points }

// Len returns the number of recorded samples.
func (t *TimeSeries) Len() int { return len(t.points) }

// Final returns the cumulative metrics of the end-of-run sample and
// whether the run completed (a cancelled run emits no final sample).
func (t *TimeSeries) Final() (stats.Metrics, bool) { return t.final, t.hasFinal }

// Reset clears the series for reuse, keeping the backing array.
func (t *TimeSeries) Reset() {
	t.points = t.points[:0]
	t.final = stats.Metrics{}
	t.hasFinal = false
}

// DefaultSampleInterval is the sampling period, in committed
// instructions, used when a probe or progress callback is attached
// without an explicit WithSampleInterval.
const DefaultSampleInterval = 100_000

// options collects the RunContext functional options.
type options struct {
	probe    Probe
	interval uint64
	progress func(instructions uint64)
}

// Option configures a RunContext run.
type Option func(*options)

// WithProbe attaches p to the run: p.OnSample fires every sample
// interval and once at the end of the run.
func WithProbe(p Probe) Option {
	return func(o *options) { o.probe = p }
}

// WithSampleInterval sets the sampling period in committed instructions
// (default DefaultSampleInterval). It only takes effect together with
// WithProbe or WithProgress; n == 0 keeps the default.
func WithSampleInterval(n uint64) Option {
	return func(o *options) { o.interval = n }
}

// WithProgress attaches a progress callback invoked with the total
// committed instruction count (including warmup) every sample interval.
// Unlike probe samples, progress fires during warmup too.
func WithProgress(fn func(instructions uint64)) Option {
	return func(o *options) { o.progress = fn }
}

package harness

import (
	"bytes"
	"testing"

	"cbws/internal/sim"
	"cbws/internal/workload"
)

// goldenTestMatrix builds a small but non-trivial matrix manifest with
// the given Fill parallelism.
func goldenTestMatrix(t *testing.T, parallel int, warmup uint64) *GoldenManifest {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = 60_000
	cfg.WarmupInstructions = warmup
	m := NewMatrix(Options{Sim: cfg, Parallel: parallel})

	specs := []workload.Spec{}
	for _, name := range []string{"stencil-default", "429.mcf-ref"} {
		s, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("workload %q missing", name)
		}
		specs = append(specs, s)
	}
	factories := []Factory{}
	for _, name := range []string{"none", "cbws", "sms"} {
		f, ok := FactoryByName(name)
		if !ok {
			t.Fatalf("prefetcher %q missing", name)
		}
		factories = append(factories, f)
	}
	g, err := BuildGolden(m, specs, factories)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestGoldenDeterministicAcrossParallelism is the determinism pin: the
// manifest built with serial Fill and the one built with concurrent
// Fill must encode to identical bytes.
func TestGoldenDeterministicAcrossParallelism(t *testing.T) {
	serial := goldenTestMatrix(t, 1, 15_000)
	parallel := goldenTestMatrix(t, 4, 15_000)

	sb, err := serial.Encode()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := parallel.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb, pb) {
		t.Fatalf("manifests diverged across parallelism:\nserial:\n%s\nparallel:\n%s", sb, pb)
	}
	if diff := DiffGolden(serial, parallel); len(diff) != 0 {
		t.Fatalf("DiffGolden reported on identical manifests: %v", diff)
	}
	if len(serial.Cells) != 6 {
		t.Fatalf("expected 6 cells, got %d", len(serial.Cells))
	}
	if serial.MatrixHash == "" {
		t.Fatal("empty matrix hash")
	}
}

// TestGoldenDiffDetectsDivergence perturbs the measured window and
// requires the diff to notice both the config line and the changed
// cell hashes.
func TestGoldenDiffDetectsDivergence(t *testing.T) {
	a := goldenTestMatrix(t, 4, 15_000)
	b := goldenTestMatrix(t, 4, 30_000)
	diff := DiffGolden(a, b)
	if len(diff) == 0 {
		t.Fatal("diff missed a changed warmup window")
	}
}

// TestGoldenRoundTrip writes a manifest to disk and reads it back.
func TestGoldenRoundTrip(t *testing.T) {
	g := goldenTestMatrix(t, 2, 15_000)
	path := t.TempDir() + "/seed.json"
	if err := WriteGolden(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGolden(path)
	if err != nil {
		t.Fatal(err)
	}
	if diff := DiffGolden(g, back); len(diff) != 0 {
		t.Fatalf("round-trip diverged: %v", diff)
	}
}

package registry

import (
	"strings"
	"testing"
)

// TestRoundTrip checks that every listed name constructs a prefetcher
// that reports the same name, via both ByName and New.
func TestRoundTrip(t *testing.T) {
	t.Parallel()
	for _, name := range Names() {
		f, ok := ByName(name)
		if !ok {
			t.Fatalf("ByName(%q) missing a listed name", name)
		}
		if f.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, f.Name)
		}
		if got := f.New().Name(); got != name {
			t.Errorf("factory %q constructs prefetcher named %q", name, got)
		}
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if got := p.Name(); got != name {
			t.Errorf("New(%q).Name() = %q", name, got)
		}
	}
}

// TestEvaluatedRoster pins the paper's evaluated schemes and their
// plotting order; extensions stay out of the evaluated set.
func TestEvaluatedRoster(t *testing.T) {
	t.Parallel()
	want := []string{"none", "stride", "ghb-pc/dc", "ghb-g/dc", "sms", "cbws", "cbws+sms"}
	got := Evaluated()
	if len(got) != len(want) {
		t.Fatalf("Evaluated() has %d schemes, want %d", len(got), len(want))
	}
	for i, f := range got {
		if f.Name != want[i] {
			t.Errorf("Evaluated()[%d] = %q, want %q", i, f.Name, want[i])
		}
		if f.Extension {
			t.Errorf("%s marked as extension inside the evaluated roster", f.Name)
		}
	}
	if len(All()) <= len(want) {
		t.Error("All() should extend the evaluated roster with extension schemes")
	}
}

// TestGoldenRoster pins the golden-manifest roster: the evaluated
// schemes plus the learned baselines, with the non-learned extensions
// (AMPM, Markov) excluded.
func TestGoldenRoster(t *testing.T) {
	t.Parallel()
	want := []string{"none", "stride", "ghb-pc/dc", "ghb-g/dc", "sms", "cbws", "cbws+sms",
		"pythia", "gaze"}
	got := GoldenRoster()
	if len(got) != len(want) {
		t.Fatalf("GoldenRoster() has %d schemes, want %d", len(got), len(want))
	}
	for i, f := range got {
		if f.Name != want[i] {
			t.Errorf("GoldenRoster()[%d] = %q, want %q", i, f.Name, want[i])
		}
	}
	for _, f := range All() {
		if f.Learned && !f.Extension {
			t.Errorf("%s: learned schemes are extensions for the paper figures", f.Name)
		}
	}
}

// TestSuggest pins the nearest-name suggestion on its edge cases: the
// empty name, case-only mismatches, near-misses, and distance ties
// (which must resolve to registration order, deterministically).
func TestSuggest(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		in   string
		want string
	}{
		{name: "empty name picks shortest", in: "", want: "sms"},
		{name: "exact but wrong case", in: "CBWS", want: "cbws"},
		{name: "mixed case near miss", in: "Cbw", want: "cbws"},
		{name: "single deletion", in: "strid", want: "stride"},
		{name: "ghb slash variant", in: "ghb-pc-dc", want: "ghb-pc/dc"},
		{name: "composite", in: "cbws-sms", want: "cbws+sms"},
		// "nonf" is distance 1 from "none" only; "xms" ties "sms" at 1
		// with nothing closer, so registration order keeps "sms" ahead
		// of later same-distance names.
		{name: "substitution", in: "nonf", want: "none"},
		{name: "tie resolves to registration order", in: "xms", want: "sms"},
		// Learned-roster typos resolve to the learned names.
		{name: "learned transposition", in: "pythai", want: "pythia"},
		{name: "learned trailing insertion", in: "gazee", want: "gaze"},
		// "zzzz" keeps one matching z against "gaze" (distance 3); every
		// four-letter elder is at 4, so the learned scheme wins outright.
		{name: "far from all lands on nearest learned", in: "zzzz", want: "gaze"},
		// Distance ties across the registration boundary: "aze" is 1
		// from "gaze" only; "mms" ties "sms" (1) and nothing earlier.
		{name: "learned deletion", in: "aze", want: "gaze"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for i := 0; i < 8; i++ { // determinism: same answer every call
				if got := Suggest(tc.in); got != tc.want {
					t.Fatalf("Suggest(%q) = %q, want %q (call %d)", tc.in, got, tc.want, i)
				}
			}
		})
	}
}

// TestUnknownName checks the error path: unknown names fail with a
// nearest-name suggestion and the full roster.
func TestUnknownName(t *testing.T) {
	t.Parallel()
	if _, ok := ByName("cbw"); ok {
		t.Error(`ByName("cbw") should miss`)
	}
	_, err := New("cbw")
	if err == nil {
		t.Fatal(`New("cbw") should fail`)
	}
	msg := err.Error()
	if !strings.Contains(msg, `"cbws"`) {
		t.Errorf("error should suggest the nearest name cbws: %s", msg)
	}
	if !strings.Contains(msg, "cbws+sms") || !strings.Contains(msg, "ghb-pc/dc") {
		t.Errorf("error should list the valid names: %s", msg)
	}
}

package workload

import (
	"testing"

	"cbws/internal/core"
	"cbws/internal/mem"
	"cbws/internal/prefetch"
	"cbws/internal/sim"
	"cbws/internal/trace"
)

func TestIRKernelsProduceAnnotatedTraces(t *testing.T) {
	for _, s := range IRKernels() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			tr := trace.Capture(trace.Limit{Gen: s.Make(), Max: 30_000})
			var begins, loadsInside int
			in := false
			for _, e := range tr.Events {
				switch e.Kind {
				case trace.BlockBegin:
					begins++
					in = true
				case trace.BlockEnd:
					in = false
				case trace.Load:
					if in {
						loadsInside++
					}
				}
			}
			if begins == 0 {
				t.Fatal("annotation pass produced no blocks")
			}
			if loadsInside == 0 {
				t.Fatal("loads not inside annotated blocks")
			}
		})
	}
}

func TestIRVecAddCBWSPredicts(t *testing.T) {
	// The annotated vecadd loop must be fully CBWS-predictable: the
	// prefetcher should reach confident steady state.
	p := core.New(core.Config{})
	p.Reset()
	issue := func(mem.LineAddr) {}
	trace.Limit{Gen: IRVecAdd(1 << 14), Max: 300_000}.Generate(trace.SinkFunc(func(e trace.Event) {
		switch e.Kind {
		case trace.BlockBegin:
			p.OnBlockBegin(e.Block)
		case trace.BlockEnd:
			p.OnBlockEnd(e.Block, issue)
		case trace.Load, trace.Store:
			p.OnAccess(prefetch.Access{PC: e.PC, Addr: e.Addr, Line: mem.LineOf(e.Addr)}, issue)
		}
	}))
	if p.Stats.Blocks == 0 {
		t.Fatal("no blocks observed")
	}
	if p.Stats.TableHits == 0 {
		t.Error("CBWS never hit its table on vecadd")
	}
}

func TestIRHistoDataDependence(t *testing.T) {
	// The histogram kernel's bin addresses must actually vary with the
	// initialized image data.
	tr := trace.Capture(trace.Limit{Gen: IRHisto(2048, 512), Max: 100_000})
	bins := map[mem.LineAddr]bool{}
	for _, e := range tr.Events {
		if e.Kind == trace.Load && e.Addr >= 1<<32+1<<28 {
			bins[mem.LineOf(e.Addr)] = true
		}
	}
	if len(bins) < 32 {
		t.Errorf("histogram touched only %d bin lines: data dependence broken", len(bins))
	}
}

func TestIRKernelSimulates(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = 200_000
	res, err := sim.Run(cfg, IRStencil1D(1<<16), core.New(core.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Blocks == 0 || res.Metrics.Loads == 0 {
		t.Errorf("metrics: %+v", res.Metrics)
	}
}

func TestIRPointerChaseVisitsManyNodes(t *testing.T) {
	tr := trace.Capture(trace.Limit{Gen: IRPointerChase(1<<10, 1<<12), Max: 60_000})
	nodes := map[mem.LineAddr]bool{}
	for _, e := range tr.Events {
		if e.Kind == trace.Load {
			nodes[mem.LineOf(e.Addr)] = true
		}
	}
	// The chase must actually follow the list (distinct nodes), not
	// spin on a broken pointer (memory defaulting to zero).
	if len(nodes) < 512 {
		t.Errorf("chase visited only %d distinct nodes", len(nodes))
	}
}

func TestIRPointerChaseIsAnnotated(t *testing.T) {
	// The do-while loop (latch == header) must still be discovered and
	// annotated by the pass.
	tr := trace.Capture(trace.Limit{Gen: IRPointerChase(1<<8, 1<<10), Max: 20_000})
	begins := 0
	for _, e := range tr.Events {
		if e.Kind == trace.BlockBegin {
			begins++
		}
	}
	if begins == 0 {
		t.Fatal("do-while loop not annotated")
	}
}

func TestIRGatherDiverges(t *testing.T) {
	tr := trace.Capture(trace.Limit{Gen: IRGather(1<<12, 1<<10), Max: 120_000})
	var branches, taken, stores int
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.Branch:
			branches++
			if e.Taken {
				taken++
			}
		case trace.Store:
			stores++
		}
	}
	if branches == 0 || stores == 0 {
		t.Fatalf("branches=%d stores=%d", branches, stores)
	}
	// The threshold branch must actually diverge: neither all-taken nor
	// never-taken.
	frac := float64(taken) / float64(branches)
	if frac < 0.05 || frac > 0.95 {
		t.Errorf("divergence fraction %.2f: branch is not data-dependent", frac)
	}
}

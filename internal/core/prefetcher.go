package core

import (
	"cbws/internal/check"
	"cbws/internal/mem"
	"cbws/internal/prefetch"
)

// Config parametrizes the CBWS prefetcher hardware (Figure 8 / Table II
// defaults via DefaultConfig).
type Config struct {
	// MaxVector bounds the lines traced per code block (16 covers >98%
	// of dynamic blocks in the paper's benchmarks).
	MaxVector int
	// Steps is the number of predecessor CBWSs kept and therefore the
	// multi-step prediction depth (paper: 4).
	Steps int
	// HistoryDepth is the depth of each history shift register
	// (paper: 3 differentials).
	HistoryDepth int
	// TableEntries sizes the fully-associative differential history
	// table (paper: 16, random replacement).
	TableEntries int
	// HashBits is the width of the bit-select hash of one differential
	// vector (paper: 12).
	HashBits int
	// StrideBits is the stored stride width (paper: 16); strides are
	// clamped into this range like the hardware's narrow adders.
	StrideBits int
	// AddrBits is the stored line-address width (paper: lower 32 bits).
	AddrBits int
}

// DefaultConfig returns the paper's sub-1KB configuration.
func DefaultConfig() Config {
	return Config{
		MaxVector:    16,
		Steps:        4,
		HistoryDepth: 3,
		TableEntries: 16,
		HashBits:     12,
		StrideBits:   16,
		AddrBits:     32,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MaxVector == 0 {
		c.MaxVector = d.MaxVector
	}
	if c.Steps == 0 {
		c.Steps = d.Steps
	}
	if c.HistoryDepth == 0 {
		c.HistoryDepth = d.HistoryDepth
	}
	if c.TableEntries == 0 {
		c.TableEntries = d.TableEntries
	}
	if c.HashBits == 0 {
		c.HashBits = d.HashBits
	}
	if c.StrideBits == 0 {
		c.StrideBits = d.StrideBits
	}
	if c.AddrBits == 0 {
		c.AddrBits = d.AddrBits
	}
	return c
}

// tableEntry is one differential history table slot.
type tableEntry struct {
	valid bool
	tag   uint16
	diff  []int32 // clamped strides; length ≤ MaxVector
}

// shiftReg is a history shift register: the HistoryDepth most recent
// differential hashes for one step, newest last.
type shiftReg struct {
	vals  []uint16
	count int // total enqueued, to gate predictions until warm
}

//cbws:hotpath
func (r *shiftReg) push(h uint16) {
	copy(r.vals, r.vals[1:])
	r.vals[len(r.vals)-1] = h
	r.count++
}

//cbws:hotpath
func (r *shiftReg) warm() bool { return r.count >= len(r.vals) }

// Stats counts prefetcher-internal events.
type Stats struct {
	Blocks         uint64 // block instances observed
	Overflows      uint64 // blocks whose working set exceeded MaxVector
	TableHits      uint64 // predictions served by the history table
	TableMisses    uint64 // lookups that missed (no prefetch issued)
	LinesPredicted uint64 // total lines handed to the issue callback
}

// Prefetcher is the hardware CBWS prefetcher of Section V: it constructs
// the current CBWS and its differentials incrementally on every memory
// access inside an annotated block, and at BLOCK_END stores the
// differentials in the history table and predicts the working sets of
// the next Steps iterations.
type Prefetcher struct {
	cfg Config

	inBlock  bool
	curBlock int

	cur     []mem.LineAddr   // current CBWS buffer
	last    [][]mem.LineAddr // last[i] = CBWS of the (i+1)-th previous block
	curDiff [][]int32        // curDiff[i] = differential vs last[i]
	hist    []shiftReg       // one shift register per step

	table []tableEntry
	rng   uint32 // xorshift32 for random replacement

	strideMin, strideMax int64
	hashMask             uint16

	confident bool // last BLOCK_END lookup hit the table (for CBWS+SMS)

	Stats Stats
}

var _ prefetch.Prefetcher = (*Prefetcher)(nil)

// New builds a CBWS prefetcher; zero-value fields of cfg fall back to the
// paper's defaults.
func New(cfg Config) *Prefetcher {
	cfg = cfg.withDefaults()
	p := &Prefetcher{cfg: cfg}
	p.Reset()
	return p
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "cbws" }

// Config returns the active configuration.
func (p *Prefetcher) Config() Config { return p.cfg }

// Reset implements prefetch.Prefetcher. Every buffer the prefetcher
// touches while running is preallocated at its hardware capacity here,
// so the per-access and per-block paths never allocate (asserted by the
// AllocsPerRun regression tests).
func (p *Prefetcher) Reset() {
	c := p.cfg
	p.inBlock = false
	p.curBlock = -1
	p.cur = make([]mem.LineAddr, 0, c.MaxVector)
	p.last = make([][]mem.LineAddr, c.Steps)
	for i := range p.last {
		p.last[i] = make([]mem.LineAddr, 0, c.MaxVector)
	}
	p.curDiff = make([][]int32, c.Steps)
	for i := range p.curDiff {
		p.curDiff[i] = make([]int32, 0, c.MaxVector)
	}
	p.hist = make([]shiftReg, c.Steps)
	for i := range p.hist {
		p.hist[i] = shiftReg{vals: make([]uint16, c.HistoryDepth)}
	}
	p.table = make([]tableEntry, c.TableEntries)
	for i := range p.table {
		p.table[i].diff = make([]int32, 0, c.MaxVector)
	}
	p.rng = 0x20140612 // deterministic seed (MICRO 2014)
	p.strideMax = 1<<(uint(c.StrideBits)-1) - 1
	p.strideMin = -(1 << (uint(c.StrideBits) - 1))
	p.hashMask = uint16(1<<uint(c.HashBits) - 1)
	p.confident = false
	p.Stats = Stats{}
}

// Confident reports whether the most recent BLOCK_END produced at least
// one history-table hit; the CBWS+SMS integration uses it to decide when
// to fall back to SMS.
func (p *Prefetcher) Confident() bool { return p.confident }

// invalidStride marks a differential element whose stride overflows the
// StrideBits-wide field. The hardware detects the saturation and never
// predicts with such an element: an overflowing delta means the two
// aligned accesses are unrelated (e.g. divergence shifted the vectors),
// so a prediction built from it would be garbage far outside the
// working set.
const invalidStride int32 = 1<<31 - 1

//cbws:hotpath
func (p *Prefetcher) clamp(d int64) int32 {
	if d > p.strideMax || d < p.strideMin {
		return invalidStride
	}
	return int32(d)
}

// storedLine narrows a line address to AddrBits, as the hardware stores
// only the lower bits (Figure 8).
//
//cbws:hotpath
func (p *Prefetcher) storedLine(l mem.LineAddr) mem.LineAddr {
	if p.cfg.AddrBits >= 64 {
		return l
	}
	return l & mem.LineAddr(1<<uint(p.cfg.AddrBits)-1)
}

// hashDiff bit-selects a differential vector into HashBits bits: each
// stride contributes its low bits at a position-dependent rotation, and
// the vector length is mixed in so that divergent iterations hash apart.
//
//cbws:hotpath
func (p *Prefetcher) hashDiff(d []int32) uint16 {
	hb := uint(p.cfg.HashBits)
	h := uint32(len(d)) * 0x9E5
	for i, s := range d {
		v := uint32(s) & uint32(p.hashMask)
		rot := uint(i*5) % hb
		v = (v<<rot | v>>(hb-rot)) & uint32(p.hashMask)
		h ^= v
	}
	return uint16(h) & p.hashMask
}

// foldTag xor-folds a history register's concatenated hashes into a
// 16-bit table tag (the paper xor-folds 48 bits to 16).
//
//cbws:hotpath
func (p *Prefetcher) foldTag(r *shiftReg) uint16 {
	var x uint64
	for _, v := range r.vals {
		x = x<<uint(p.cfg.HashBits) | uint64(v)
	}
	return uint16(x) ^ uint16(x>>16) ^ uint16(x>>32) ^ uint16(x>>48)
}

//cbws:hotpath
func (p *Prefetcher) xorshift() uint32 {
	x := p.rng
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	p.rng = x
	return x
}

// tableLookup returns the entry matching tag, if any.
//
//cbws:hotpath
func (p *Prefetcher) tableLookup(tag uint16) *tableEntry {
	for i := range p.table {
		if p.table[i].valid && p.table[i].tag == tag {
			return &p.table[i]
		}
	}
	return nil
}

// tableStore writes diff under tag, using random replacement on a full
// table (Table II: "History Table Repl. Random").
//
//cbws:hotpath
func (p *Prefetcher) tableStore(tag uint16, diff []int32) {
	e := p.tableLookup(tag)
	if e == nil {
		for i := range p.table {
			if !p.table[i].valid {
				e = &p.table[i]
				break
			}
		}
	}
	if e == nil {
		e = &p.table[p.xorshift()%uint32(len(p.table))]
	}
	e.valid = true
	e.tag = tag
	e.diff = append(e.diff[:0], diff...)
}

// OnBlockBegin implements the BLOCK_BEGIN flow (Figure 9): clear the
// current CBWS and differential tracing. A change of static block ID
// also clears the predecessor CBWSs and histories, since the single
// tracking context now belongs to a different loop.
//
//cbws:hotpath
func (p *Prefetcher) OnBlockBegin(id int) {
	if id != p.curBlock {
		p.curBlock = id
		for i := range p.last {
			p.last[i] = p.last[i][:0]
		}
		for i := range p.hist {
			r := &p.hist[i]
			for j := range r.vals {
				r.vals[j] = 0
			}
			r.count = 0
		}
		p.confident = false
	}
	p.inBlock = true
	p.cur = p.cur[:0]
	for i := range p.curDiff {
		p.curDiff[i] = p.curDiff[i][:0]
	}
}

// OnAccess implements the memory-access flow (Figure 10): push the line
// into the current CBWS if new, and incrementally extend each step's
// differential against the correlated entry of the predecessor CBWS.
// The CBWS prefetcher tracks all L1 accesses inside annotated blocks
// (hits and misses) — the aggressive policy the compiler hint licenses.
//
//cbws:hotpath
func (p *Prefetcher) OnAccess(a prefetch.Access, issue prefetch.IssueFunc) {
	if !p.inBlock {
		return
	}
	line := p.storedLine(a.Line)
	if len(p.cur) >= p.cfg.MaxVector {
		p.Stats.Overflows++
		return
	}
	for _, x := range p.cur {
		if x == line {
			return // already in the working set
		}
	}
	idx := len(p.cur)
	p.cur = append(p.cur, line)
	for i := 0; i < p.cfg.Steps; i++ {
		if idx < len(p.last[i]) {
			stride := line.Delta(p.last[i][idx])
			p.curDiff[i] = append(p.curDiff[i], p.clamp(stride))
		}
	}
}

// OnBlockEnd implements the BLOCK_END flow (Figure 11 / Algorithm 1):
// store the step differentials in the history table keyed by the
// pre-update history registers, enqueue them, rotate the predecessor
// CBWSs, then look up the post-update histories and prefetch the
// predicted future working sets.
//
//cbws:hotpath
func (p *Prefetcher) OnBlockEnd(id int, issue prefetch.IssueFunc) {
	if !p.inBlock || id != p.curBlock {
		p.inBlock = false
		return
	}
	p.inBlock = false
	p.Stats.Blocks++
	if check.Enabled {
		p.checkWorkingSet()
	}

	// 1. Update the tracing + prediction DB. The table learns that the
	// history prefix (pre-enqueue) was followed by the current
	// differential.
	for i := 0; i < p.cfg.Steps; i++ {
		if len(p.curDiff[i]) > 0 {
			if p.hist[i].warm() {
				p.tableStore(p.foldTag(&p.hist[i]), p.curDiff[i])
			}
			p.hist[i].push(p.hashDiff(p.curDiff[i]))
		}
	}

	// 2. Rotate the predecessor CBWS buffers: last[0] becomes the block
	// that just finished. The rotation permutes the Steps preallocated
	// buffers, so the copy into the recycled oldest never allocates.
	oldest := p.last[len(p.last)-1]
	copy(p.last[1:], p.last[:len(p.last)-1])
	p.last[0] = append(oldest[:0], p.cur...)

	// 3. Predict: for each step i, the post-update history selects the
	// differential expected between the just-finished block and the
	// block i+1 iterations ahead; adding it to the current CBWS yields
	// that block's predicted working set.
	p.confident = false
	cur := p.last[0]
	for i := 0; i < p.cfg.Steps; i++ {
		if !p.hist[i].warm() {
			continue
		}
		e := p.tableLookup(p.foldTag(&p.hist[i]))
		if e == nil {
			p.Stats.TableMisses++
			continue
		}
		p.Stats.TableHits++
		p.confident = true
		n := len(e.diff)
		if len(cur) < n {
			n = len(cur)
		}
		for j := 0; j < n; j++ {
			if e.diff[j] == 0 || e.diff[j] == invalidStride {
				// Zero stride: the line is the current iteration's,
				// already resident or in flight. Invalid stride: the
				// element saturated when recorded; no prediction.
				continue
			}
			issue(cur[j].Add(int64(e.diff[j])))
			p.Stats.LinesPredicted++
		}
	}
}

// checkWorkingSet verifies the CBWS structural invariants at a block
// boundary: the current working set is duplicate-free and within the
// MaxVector hardware bound, every step differential is no longer than
// the working set (it is truncated to the shorter of the two vectors it
// correlates), and no history-table entry exceeds MaxVector strides.
// Called once per block under check.Enabled.
func (p *Prefetcher) checkWorkingSet() {
	check.Assertf(len(p.cur) <= p.cfg.MaxVector,
		"cbws: working set length %d exceeds MaxVector %d", len(p.cur), p.cfg.MaxVector)
	for i, a := range p.cur {
		for _, b := range p.cur[i+1:] {
			check.Assertf(a != b, "cbws: duplicate line %v in working set", a)
		}
	}
	for i := range p.curDiff {
		check.Assertf(len(p.curDiff[i]) <= len(p.cur),
			"cbws: step-%d differential length %d exceeds working set length %d",
			i, len(p.curDiff[i]), len(p.cur))
	}
	for i := range p.table {
		check.Assertf(len(p.table[i].diff) <= p.cfg.MaxVector,
			"cbws: table entry %d holds %d strides, MaxVector is %d",
			i, len(p.table[i].diff), p.cfg.MaxVector)
	}
}

// StorageBits returns the hardware budget of Figure 8: with the default
// configuration 16×32b current CBWS + 4×16×32b predecessors +
// 4×16×16b differentials + 4×36b history registers + 16×(16b+16×16b)
// table ≈ 8080 bits, i.e. just under 1KB.
func (p *Prefetcher) StorageBits() uint64 {
	c := p.cfg
	cur := uint64(c.MaxVector * c.AddrBits)
	last := uint64(c.Steps * c.MaxVector * c.AddrBits)
	diffs := uint64(c.Steps * c.MaxVector * c.StrideBits)
	regs := uint64(c.Steps * c.HistoryDepth * c.HashBits)
	table := uint64(c.TableEntries) * uint64(16+c.MaxVector*c.StrideBits)
	return cur + last + diffs + regs + table
}

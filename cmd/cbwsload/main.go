// Command cbwsload is the load-generation harness for a cbwsd fleet.
//
// Usage:
//
//	cbwsload -servers URL[,URL...] [-requests N] [-concurrency C]
//	         [-hot-frac F] [-hot-set K] [-prewarm] [-seed S]
//	         [-workloads A,B] [-prefetchers X,Y] [-n INSTR]
//	         [-streams N] [-stream-tenants T] [-stream-chunk BYTES]
//	         [-stream-n INSTR] [-report FILE]
//
// The harness builds a population of job cells (workload × prefetcher,
// fetched from the fleet's roster unless pinned by flags), then fires
// -requests submissions from -concurrency goroutines through the
// cluster client — so every request routes by content like a real
// caller, including failover when a worker dies mid-run.
//
// The key mix is the interesting knob. With -hot-frac F, each request
// draws from a small hot set of K cells with probability F and from
// the whole population otherwise: -hot-frac 1 replays the same few
// keys forever (a pure cache-hit workload against a warm fleet, the
// shape content addressing is built for), -hot-frac 0 is a uniform
// sweep. The schedule is generated up front from -seed with a PCG
// source, so a mix is reproducible run to run regardless of
// concurrency or interleaving.
//
// With -prewarm each distinct cell in the schedule is computed to
// completion once before the clock starts, so the measured phase
// isolates serving latency from simulation cost.
//
// With -streams N the harness adds a streaming phase after the
// closed-job phase: N identical synthetic CBWT traces are streamed
// through the first worker, spread over -stream-tenants quota accounts,
// so the report exercises and surfaces admission control —
// streams_rejected_quota counts 429 quota rejections at open, and
// chunk_ack_latency_ms reports p50/p95/p99 per-chunk acknowledgement
// latency including rejected attempts.
//
// The report is machine-readable JSON on stdout (or -report FILE):
// p50/p95/p99/max submit latency, jobs/sec, cache-hit ratio, 429
// retries, submit errors, and which workers died. Human-readable
// progress goes to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	apiv1 "cbws/api/v1"
	"cbws/internal/cli"
	"cbws/internal/cluster"
)

func main() {
	cli.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// cell is one distinct job spec the harness can submit.
type cell struct {
	workload   string
	prefetcher string
	body       []byte
}

// report is the machine-readable run summary. Field order is the
// output order; keep it stable, scripts parse this.
type report struct {
	Servers       []string `json:"servers"`
	Requests      int      `json:"requests"`
	Concurrency   int      `json:"concurrency"`
	HotFrac       float64  `json:"hot_frac"`
	HotSet        int      `json:"hot_set"`
	Population    int      `json:"population"`
	Prewarmed     int      `json:"prewarmed"`
	Seed          uint64   `json:"seed"`
	DurationMS    float64  `json:"duration_ms"`
	JobsPerSec    float64  `json:"jobs_per_sec"`
	Latency       latency  `json:"submit_latency_ms"`
	CacheHits     int64    `json:"cache_hits"`
	CacheHitRatio float64  `json:"cache_hit_ratio"`
	Retries429    int64    `json:"retries_429"`
	SubmitErrors  int64    `json:"submit_errors"`
	WorkersDown   []string `json:"workers_down"`
	// Streaming is present when -streams > 0.
	Streaming *streamReport `json:"streaming,omitempty"`
}

type latency struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cbwsload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	servers := fs.String("servers", "http://127.0.0.1:8344", "comma-separated cbwsd base URLs")
	requests := fs.Int("requests", 200, "total submissions in the measured phase")
	concurrency := fs.Int("concurrency", 8, "submitting goroutines")
	hotFrac := fs.Float64("hot-frac", 0.9, "fraction of requests drawn from the hot set (0: uniform, 1: hot only)")
	hotSet := fs.Int("hot-set", 4, "number of cells in the hot set")
	prewarm := fs.Bool("prewarm", false, "compute every distinct scheduled cell once before measuring")
	seed := fs.Uint64("seed", 1, "PCG seed for the key mix")
	wls := fs.String("workloads", "", "comma-separated workloads (default: fleet roster)")
	pfs := fs.String("prefetchers", "", "comma-separated prefetchers (default: fleet roster)")
	n := fs.Uint64("n", 0, "instruction budget per cell (0: daemon default)")
	timeout := fs.Duration("timeout", 10*time.Minute, "per-request retry/poll budget")
	streams := fs.Int("streams", 0, "streaming-phase stream count (0: no streaming phase)")
	streamTenants := fs.Int("stream-tenants", 2, "tenant accounts the streams are spread over")
	streamChunk := fs.Int("stream-chunk", 64<<10, "streaming-phase chunk size in bytes")
	streamN := fs.Uint64("stream-n", 200_000, "instruction budget per streamed trace")
	reportPath := fs.String("report", "", "write the JSON report here instead of stdout")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if *requests <= 0 || *concurrency <= 0 || *hotSet <= 0 || *hotFrac < 0 || *hotFrac > 1 {
		fmt.Fprintln(stderr, "cbwsload: -requests, -concurrency, -hot-set must be positive and -hot-frac in [0,1]")
		return cli.ExitUsage
	}
	if *streams < 0 || *streamTenants <= 0 || *streamChunk <= 0 || *streamN == 0 {
		fmt.Fprintln(stderr, "cbwsload: -streams must be >= 0; -stream-tenants, -stream-chunk, -stream-n must be positive")
		return cli.ExitUsage
	}

	var retries429 atomic.Int64
	cc, err := cluster.New(splitList(*servers), func(w *apiv1.Client) {
		w.Budget = *timeout
		w.OnBackpressure = func(time.Duration) { retries429.Add(1) }
	})
	if err != nil {
		fmt.Fprintf(stderr, "cbwsload: %v\n", err)
		return cli.ExitUsage
	}

	cells, err := buildCells(cc, splitList(*wls), splitList(*pfs), *n)
	if err != nil {
		fmt.Fprintf(stderr, "cbwsload: %v\n", err)
		return cli.ExitFail
	}
	sched, hot := mix(len(cells), *requests, *hotSet, *hotFrac, *seed)
	fmt.Fprintf(stderr, "cbwsload: %d cells, hot set %d, %d requests × %d goroutines\n",
		len(cells), len(hot), *requests, *concurrency)

	prewarmed := 0
	if *prewarm {
		if prewarmed, err = prewarmCells(cc, cells, sched, stderr); err != nil {
			fmt.Fprintf(stderr, "cbwsload: prewarm: %v\n", err)
			return cli.ExitFail
		}
	}

	rep := fire(cc, cells, sched, *concurrency)
	if *streams > 0 {
		sr := fireStreams(cc, *streams, *streamTenants, *concurrency, *streamChunk,
			*streamN, *timeout, stderr)
		rep.Streaming = &sr
	}
	rep.Servers = cc.Workers()
	rep.HotFrac = *hotFrac
	rep.HotSet = len(hot)
	rep.Population = len(cells)
	rep.Prewarmed = prewarmed
	rep.Seed = *seed
	rep.Retries429 = retries429.Load()
	rep.WorkersDown = cc.Down()
	if rep.WorkersDown == nil {
		rep.WorkersDown = []string{}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "cbwsload: %v\n", err)
		return cli.ExitFail
	}
	out = append(out, '\n')
	if *reportPath != "" {
		if err := os.WriteFile(*reportPath, out, 0o644); err != nil {
			fmt.Fprintf(stderr, "cbwsload: %v\n", err)
			return cli.ExitFail
		}
	} else {
		_, _ = stdout.Write(out)
	}
	if rep.SubmitErrors > 0 {
		fmt.Fprintf(stderr, "cbwsload: %d submissions failed\n", rep.SubmitErrors)
		return cli.ExitFail
	}
	if rep.Streaming != nil && rep.Streaming.StreamErrors > 0 {
		fmt.Fprintf(stderr, "cbwsload: %d streams failed\n", rep.Streaming.StreamErrors)
		return cli.ExitFail
	}
	return cli.ExitOK
}

// buildCells expands the workload × prefetcher matrix into submit
// bodies. Empty lists are filled from the fleet's roster — asked of
// the first live worker, since a homogeneous fleet serves one roster.
func buildCells(cc *cluster.Client, workloads, prefetchers []string, n uint64) ([]cell, error) {
	if len(workloads) == 0 {
		if err := roster(cc, apiv1.PathWorkloads, &workloads); err != nil {
			return nil, fmt.Errorf("fetching workload roster: %w", err)
		}
	}
	if len(prefetchers) == 0 {
		if err := roster(cc, apiv1.PathPrefetchers, &prefetchers); err != nil {
			return nil, fmt.Errorf("fetching prefetcher roster: %w", err)
		}
	}
	if len(workloads) == 0 || len(prefetchers) == 0 {
		return nil, fmt.Errorf("empty population (%d workloads × %d prefetchers)", len(workloads), len(prefetchers))
	}
	var cells []cell
	for _, wl := range workloads {
		for _, pf := range prefetchers {
			req := apiv1.SubmitRequest{Workload: wl, Prefetcher: pf}
			if n > 0 {
				cfg, err := json.Marshal(map[string]uint64{"MaxInstructions": n})
				if err != nil {
					return nil, err
				}
				req.Config = cfg
			}
			body, err := json.Marshal(req)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell{workload: wl, prefetcher: pf, body: body})
		}
	}
	return cells, nil
}

// roster fills names from a fleet roster endpoint, trying workers in
// ring order until one answers.
func roster(cc *cluster.Client, path string, names *[]string) error {
	var lastErr error
	for _, url := range cc.Workers() {
		var entries []apiv1.RosterEntry
		if lastErr = cc.Worker(url).GetJSON(path, &entries); lastErr != nil {
			continue
		}
		for _, e := range entries {
			*names = append(*names, e.Name)
		}
		return nil
	}
	return lastErr
}

// mix builds the request schedule: sched[i] is the cell index of
// request i, hot is the hot-set cell indices. Deterministic in
// (nCells, requests, hotSet, hotFrac, seed) — the schedule is fixed
// before any goroutine runs, so a mix replays identically regardless
// of concurrency.
func mix(nCells, requests, hotSet int, hotFrac float64, seed uint64) (sched []int, hot []int) {
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	if hotSet > nCells {
		hotSet = nCells
	}
	hot = rng.Perm(nCells)[:hotSet]
	sched = make([]int, requests)
	for i := range sched {
		if rng.Float64() < hotFrac {
			sched[i] = hot[rng.IntN(len(hot))]
		} else {
			sched[i] = rng.IntN(nCells)
		}
	}
	return sched, hot
}

// prewarmCells computes every distinct scheduled cell to completion
// once, so the measured phase runs against a warm fleet cache.
func prewarmCells(cc *cluster.Client, cells []cell, sched []int, stderr io.Writer) (int, error) {
	distinct := make([]int, 0, len(cells))
	seen := make(map[int]bool)
	for _, ci := range sched {
		if !seen[ci] {
			seen[ci] = true
			distinct = append(distinct, ci)
		}
	}
	sort.Ints(distinct)
	for _, ci := range distinct {
		c := cells[ci]
		view, worker, err := cc.Submit(string(c.body), c.body)
		if err != nil {
			return 0, fmt.Errorf("%s/%s: %w", c.workload, c.prefetcher, err)
		}
		if _, _, _, err := cc.Collect(worker, string(c.body), c.body, view.Key); err != nil {
			return 0, fmt.Errorf("%s/%s: %w", c.workload, c.prefetcher, err)
		}
	}
	fmt.Fprintf(stderr, "cbwsload: prewarmed %d distinct cells\n", len(distinct))
	return len(distinct), nil
}

// fire runs the measured phase: concurrency goroutines drain the
// schedule through the cluster client, timing each submission.
func fire(cc *cluster.Client, cells []cell, sched []int, concurrency int) report {
	var next, cacheHits, submitErrors atomic.Int64
	lats := make([]time.Duration, len(sched))
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < concurrency; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sched) {
					return
				}
				c := cells[sched[i]]
				t0 := time.Now()
				view, _, err := cc.Submit(string(c.body), c.body)
				lats[i] = time.Since(t0)
				if err != nil {
					submitErrors.Add(1)
					continue
				}
				if view.Cached && view.Status == apiv1.StatusDone {
					cacheHits.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ok := int64(len(sched)) - submitErrors.Load()
	ratio := 0.0
	if ok > 0 {
		ratio = float64(cacheHits.Load()) / float64(ok)
	}
	return report{
		Requests:    len(sched),
		Concurrency: concurrency,
		DurationMS:  float64(elapsed.Microseconds()) / 1e3,
		JobsPerSec:  float64(len(sched)) / elapsed.Seconds(),
		Latency: latency{
			P50: ms(percentile(lats, 0.50)),
			P95: ms(percentile(lats, 0.95)),
			P99: ms(percentile(lats, 0.99)),
			Max: ms(lats[len(lats)-1]),
		},
		CacheHits:     cacheHits.Load(),
		CacheHitRatio: ratio,
		SubmitErrors:  submitErrors.Load(),
	}
}

// percentile is the nearest-rank percentile of a sorted sample.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

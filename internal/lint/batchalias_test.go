package lint_test

import (
	"testing"

	"cbws/internal/lint"
	"cbws/internal/lint/linttest"
)

func TestBatchAlias(t *testing.T) {
	linttest.Run(t, lint.BatchAlias, "testdata/src/batchalias")
}

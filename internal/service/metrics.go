package service

import (
	"expvar"
	"sort"
	"sync"
	"sync/atomic"
)

// counters are the service's expvar-exported operational counters.
// Everything is atomic: the submit path and the workers update them
// concurrently.
type counters struct {
	jobsQueued    atomic.Int64 // currently waiting in the queue
	jobsRunning   atomic.Int64 // currently simulating
	jobsDone      atomic.Int64 // completed successfully (lifetime)
	jobsFailed    atomic.Int64 // failed or timed out (lifetime)
	jobsCanceled  atomic.Int64 // canceled while queued, by drain (lifetime)
	jobsSimulated atomic.Int64 // jobs that actually ran a simulation (lifetime)
	cacheHits     atomic.Int64 // submissions answered from the result cache
	cacheMisses   atomic.Int64 // submissions that created a new job
	rejected      atomic.Int64 // submissions rejected with 429 (queue full)
	peerHits      atomic.Int64 // jobs served from a sibling's cache instead of simulating
	peerMisses    atomic.Int64 // sibling probes answered 404 (per-peer, not per-job)
	peerErrors    atomic.Int64 // sibling probes that failed transport or validation

	streamsOpened   atomic.Int64 // streams admitted (lifetime)
	streamsDone     atomic.Int64 // streams finalized into a cached result (lifetime)
	streamsFailed   atomic.Int64 // streams failed: decode/simulation error (lifetime)
	streamsCanceled atomic.Int64 // streams aborted: client, idle timeout, drain (lifetime)
	streamsRejected atomic.Int64 // stream opens rejected 429: daemon or tenant quota (lifetime)
}

// Vars is the operational-counter snapshot served under the "cbwsd"
// expvar and returned by Service.Counters. A struct (not a map) keeps
// the JSON field order fixed.
type Vars struct {
	JobsQueued    int64   `json:"jobs_queued"`
	JobsRunning   int64   `json:"jobs_running"`
	JobsDone      int64   `json:"jobs_done"`
	JobsFailed    int64   `json:"jobs_failed"`
	JobsCanceled  int64   `json:"jobs_canceled"`
	JobsSimulated int64   `json:"jobs_simulated"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	CacheEntries  int     `json:"cache_entries"`
	Rejected      int64   `json:"rejected_429"`
	PeerHits      int64   `json:"peer_fetch_hits"`
	PeerMisses    int64   `json:"peer_fetch_misses"`
	PeerErrors    int64   `json:"peer_fetch_errors"`
	Peers         int     `json:"peers"`
	QueueDepth    int     `json:"queue_depth"`
	Workers       int     `json:"workers"`
	Draining      bool    `json:"draining"`

	StreamsOpen     int          `json:"streams_open"`
	StreamsOpened   int64        `json:"streams_opened"`
	StreamsDone     int64        `json:"streams_done"`
	StreamsFailed   int64        `json:"streams_failed"`
	StreamsCanceled int64        `json:"streams_canceled"`
	StreamsRejected int64        `json:"streams_rejected_429"`
	Tenants         []TenantVars `json:"tenants,omitempty"`
}

func (s *Service) vars() Vars {
	c := &s.counters
	hits, misses := c.cacheHits.Load(), c.cacheMisses.Load()
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	return Vars{
		JobsQueued:    c.jobsQueued.Load(),
		JobsRunning:   c.jobsRunning.Load(),
		JobsDone:      c.jobsDone.Load(),
		JobsFailed:    c.jobsFailed.Load(),
		JobsCanceled:  c.jobsCanceled.Load(),
		JobsSimulated: c.jobsSimulated.Load(),
		CacheHits:     hits,
		CacheMisses:   misses,
		CacheHitRatio: ratio,
		CacheEntries:  s.cache.Len(),
		Rejected:      c.rejected.Load(),
		PeerHits:      c.peerHits.Load(),
		PeerMisses:    c.peerMisses.Load(),
		PeerErrors:    c.peerErrors.Load(),
		Peers:         len(s.cfg.Peers),
		QueueDepth:    cap(s.queue),
		Workers:       s.cfg.Workers,
		Draining:      s.draining.Load(),

		StreamsOpen:     s.openStreamCount(),
		StreamsOpened:   c.streamsOpened.Load(),
		StreamsDone:     c.streamsDone.Load(),
		StreamsFailed:   c.streamsFailed.Load(),
		StreamsCanceled: c.streamsCanceled.Load(),
		StreamsRejected: c.streamsRejected.Load(),
		Tenants:         s.tenantVars(),
	}
}

// tenantVars snapshots every tenant account, sorted by name so the
// expvar JSON is deterministic (the tenant table is a map).
func (s *Service) tenantVars() []TenantVars {
	s.tenants.mu.Lock()
	tens := make([]*tenant, 0, len(s.tenants.m))
	for _, t := range s.tenants.m {
		tens = append(tens, t)
	}
	s.tenants.mu.Unlock()
	sort.SliceStable(tens, func(i, j int) bool { return tens[i].name < tens[j].name })
	out := make([]TenantVars, len(tens))
	for i, t := range tens {
		out[i] = t.vars()
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Counters snapshots the service's operational counters — the same
// values the "cbwsd" expvar serves.
func (s *Service) Counters() Vars { return s.vars() }

// The "cbwsd" expvar reflects the most recently constructed Service.
// expvar names are process-global and re-publishing panics, so the var
// is registered once and indirects through an atomic pointer; tests
// that build several services just move the pointer.
var (
	activeService atomic.Pointer[Service]
	publishOnce   sync.Once
)

func publishVars(s *Service) {
	activeService.Store(s)
	publishOnce.Do(func() {
		expvar.Publish("cbwsd", expvar.Func(func() any {
			if svc := activeService.Load(); svc != nil {
				return svc.vars()
			}
			return Vars{}
		}))
	})
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	"cbws/internal/trace/corpus"
)

// silenceStdout redirects os.Stdout for the duration of fn, so
// subcommand happy paths can run in-process without spamming test
// output.
func silenceStdout(t *testing.T, fn func()) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	fn()
}

// TestPackConvertByteIdentity pins the capture/convert equivalence:
// packing a workload directly and converting a CBWT capture of the
// same workload window must produce byte-identical corpora (same
// content address), because both paths see the same event stream.
func TestPackConvertByteIdentity(t *testing.T) {
	dir := t.TempDir()
	cbwt := filepath.Join(dir, "stencil.cbwt")
	direct := filepath.Join(dir, "direct.cbwc")
	converted := filepath.Join(dir, "converted.cbwc")

	silenceStdout(t, func() {
		runCapture([]string{"-workload", "stencil-default", "-n", "50000", "-o", cbwt})
		runPack([]string{"-workload", "stencil-default", "-n", "50000", "-o", direct})
		runPack([]string{"-i", cbwt, "-o", converted})
	})

	a, err := os.ReadFile(direct)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(converted)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("direct pack (%d bytes) and CBWT conversion (%d bytes) differ", len(a), len(b))
	}

	c, err := corpus.OpenBytes(a)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "stencil-default" {
		t.Fatalf("corpus name %q", c.Name())
	}
	if c.Instructions() < 50_000 {
		t.Fatalf("corpus holds %d instructions, want >= 50000", c.Instructions())
	}

	// info on a valid corpus must complete without exiting.
	silenceStdout(t, func() {
		runInfo([]string{direct})
	})
}

// TestPackCompressedSmaller checks the -compress flag produces a valid,
// smaller corpus for the same window.
func TestPackCompressedSmaller(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.cbwc")
	packed := filepath.Join(dir, "packed.cbwc")
	silenceStdout(t, func() {
		runPack([]string{"-workload", "stencil-default", "-n", "50000", "-o", plain})
		runPack([]string{"-workload", "stencil-default", "-n", "50000", "-compress", "-o", packed})
	})
	sp, err := os.Stat(plain)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := os.Stat(packed)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Size() >= sp.Size() {
		t.Fatalf("compressed corpus (%d) not smaller than plain (%d)", sc.Size(), sp.Size())
	}
	c, err := corpus.Open(packed, corpus.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Compressed() {
		t.Fatal("corpus not marked compressed")
	}
}

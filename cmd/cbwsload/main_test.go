package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	apiv1 "cbws/api/v1"
	"cbws/internal/cli"
)

// fakeWorker serves a warm-fleet caricature of the v1 API: a fixed
// roster, and every submission answered instantly as a cache hit keyed
// by SHA-256 of the body. reject429 makes each distinct body bounce
// with a 429 once before being accepted, to exercise retry counting.
type fakeWorker struct {
	ts        *httptest.Server
	reject429 bool

	mu      sync.Mutex
	bounced map[string]bool
	submits int
}

func newFakeWorker(t *testing.T, reject429 bool) *fakeWorker {
	f := &fakeWorker{reject429: reject429, bounced: make(map[string]bool)}
	f.ts = httptest.NewServer(http.HandlerFunc(f.serve))
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeWorker) serve(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case r.URL.Path == apiv1.PathWorkloads:
		json.NewEncoder(w).Encode([]apiv1.RosterEntry{{Name: "w1"}, {Name: "w2"}})
	case r.URL.Path == apiv1.PathPrefetchers:
		json.NewEncoder(w).Encode([]apiv1.RosterEntry{{Name: "p1"}, {Name: "p2"}, {Name: "p3"}})
	case r.Method == http.MethodPost && r.URL.Path == apiv1.PathJobs:
		body, _ := io.ReadAll(r.Body)
		sum := sha256.Sum256(body)
		key := hex.EncodeToString(sum[:])
		if f.reject429 && !f.bounced[key] {
			f.bounced[key] = true
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(apiv1.ErrorBody{Error: "queue full"})
			return
		}
		f.submits++
		json.NewEncoder(w).Encode(apiv1.JobView{Key: key, Status: apiv1.StatusDone, Cached: true})
	default:
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(apiv1.ErrorBody{Error: "not found"})
	}
}

func runLoad(t *testing.T, args ...string) (int, report) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	var rep report
	if stdout.Len() > 0 {
		if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
			t.Fatalf("report is not JSON: %v\n%s", err, stdout.String())
		}
	}
	if code != cli.ExitOK {
		t.Logf("stderr:\n%s", stderr.String())
	}
	return code, rep
}

// TestWarmFleetIsAllCacheHits drives a hot-key replay against a warm
// 2-worker fleet: every submission must be a cache hit and the report
// must say so.
func TestWarmFleetIsAllCacheHits(t *testing.T) {
	a, b := newFakeWorker(t, false), newFakeWorker(t, false)
	code, rep := runLoad(t,
		"-servers", a.ts.URL+","+b.ts.URL,
		"-requests", "40", "-concurrency", "4",
		"-hot-frac", "1", "-hot-set", "2", "-seed", "7")
	if code != cli.ExitOK {
		t.Fatalf("exit %d", code)
	}
	if rep.Requests != 40 || rep.CacheHits != 40 || rep.CacheHitRatio != 1.0 {
		t.Fatalf("requests=%d hits=%d ratio=%v, want 40/40/1.0", rep.Requests, rep.CacheHits, rep.CacheHitRatio)
	}
	if rep.Population != 6 || rep.HotSet != 2 {
		t.Fatalf("population=%d hotset=%d, want 6/2 from the fake roster", rep.Population, rep.HotSet)
	}
	if rep.SubmitErrors != 0 || len(rep.WorkersDown) != 0 {
		t.Fatalf("errors=%d down=%v on a healthy fleet", rep.SubmitErrors, rep.WorkersDown)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 || rep.Latency.Max < rep.Latency.P99 {
		t.Fatalf("latency summary not ordered: %+v", rep.Latency)
	}
	if rep.JobsPerSec <= 0 {
		t.Fatalf("jobs_per_sec %v", rep.JobsPerSec)
	}
	a.mu.Lock()
	b.mu.Lock()
	total := a.submits + b.submits
	b.mu.Unlock()
	a.mu.Unlock()
	if total != 40 {
		t.Fatalf("fleet saw %d submits, want 40", total)
	}
}

// TestBackpressureRetriesCounted bounces each distinct cell once with
// a 429 and checks the retries land in the report.
func TestBackpressureRetriesCounted(t *testing.T) {
	a := newFakeWorker(t, true)
	code, rep := runLoad(t,
		"-servers", a.ts.URL,
		"-requests", "2", "-concurrency", "1",
		"-hot-frac", "1", "-hot-set", "1",
		"-workloads", "w1", "-prefetchers", "p1")
	if code != cli.ExitOK {
		t.Fatalf("exit %d", code)
	}
	// One distinct cell (hot-set 1, hot-frac 1): exactly one 429 bounce.
	if rep.Retries429 != 1 {
		t.Fatalf("retries_429 = %d, want 1", rep.Retries429)
	}
	if rep.CacheHits != 2 {
		t.Fatalf("cache_hits = %d, want 2", rep.CacheHits)
	}
}

// TestMixDeterministic pins the schedule generator: same seed, same
// schedule; hot-frac 1 stays inside the hot set; hot-frac 0 ranges
// beyond it.
func TestMixDeterministic(t *testing.T) {
	s1, h1 := mix(20, 200, 3, 0.9, 42)
	s2, h2 := mix(20, 200, 3, 0.9, 42)
	if len(s1) != 200 || len(h1) != 3 {
		t.Fatalf("shape: %d sched, %d hot", len(s1), len(h1))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("schedule diverged at %d: %d vs %d", i, s1[i], s2[i])
		}
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("hot set diverged at %d", i)
		}
	}
	if _, h3 := mix(20, 200, 3, 0.9, 43); equalInts(h1, h3) {
		t.Fatal("different seeds produced the same hot set")
	}

	hotOnly, hot := mix(20, 500, 3, 1.0, 7)
	inHot := map[int]bool{}
	for _, h := range hot {
		inHot[h] = true
	}
	for _, ci := range hotOnly {
		if !inHot[ci] {
			t.Fatalf("hot-frac 1 escaped the hot set: cell %d", ci)
		}
	}
	uniform, _ := mix(20, 500, 3, 0.0, 7)
	distinct := map[int]bool{}
	for _, ci := range uniform {
		distinct[ci] = true
	}
	if len(distinct) <= 3 {
		t.Fatalf("hot-frac 0 only touched %d cells", len(distinct))
	}

	// Hot set larger than the population degrades gracefully.
	if _, hot := mix(2, 10, 5, 0.5, 1); len(hot) != 2 {
		t.Fatalf("hot set %d, want clamped to 2", len(hot))
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBadFlags checks flag validation short-circuits before any
// network traffic.
func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-requests", "0"},
		{"-concurrency", "0"},
		{"-hot-set", "0"},
		{"-hot-frac", "1.5"},
		{"-servers", ""},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != cli.ExitUsage {
			t.Fatalf("%v exited %d, want usage", args, code)
		}
		if !strings.Contains(stderr.String(), "cbwsload") {
			t.Fatalf("%v: no diagnostic", args)
		}
	}
}

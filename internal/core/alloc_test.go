package core

import (
	"testing"

	"cbws/internal/check"
	"cbws/internal/mem"
	"cbws/internal/prefetch"
	"cbws/internal/trace"
)

// skipIfChecksEnabled guards the zero-allocation pins: they assert a
// property of the production build, which the cbwscheck diagnostic
// build deliberately trades for invariant checking (whose assertion
// arguments allocate).
func skipIfChecksEnabled(t *testing.T) {
	t.Helper()
	if check.Enabled {
		t.Skip("invariant checks enabled; zero-alloc pins apply to the production build")
	}
}

// Allocation regression tests for the hot paths. Reset preallocates
// every buffer the prefetcher mutates while running, so a full block
// cycle (begin, accesses, end with table store + prediction) must not
// allocate once warm; the census likewise reuses its differential and
// key scratch in steady state. A regression here silently costs the
// simulator GC time on every one of the millions of simulated blocks.

func TestPrefetcherBlockCycleAllocationFree(t *testing.T) {
	skipIfChecksEnabled(t)
	p := New(Config{})
	drop := func(mem.LineAddr) {}
	iter := func(k int) {
		p.OnBlockBegin(7)
		for j := 0; j < 8; j++ {
			l := mem.LineAddr(1<<20 + uint64(k*8+j*3))
			p.OnAccess(prefetch.Access{Addr: l.Byte(), Line: l}, drop)
		}
		p.OnBlockEnd(7, drop)
	}
	for k := 0; k < 64; k++ {
		iter(k) // warm histories and table entries
	}
	k := 64
	if avg := testing.AllocsPerRun(200, func() { iter(k); k++ }); avg != 0 {
		t.Errorf("warm block cycle allocates %.1f objects, want 0", avg)
	}
}

func TestPrefetcherBlockSwitchAllocationFree(t *testing.T) {
	skipIfChecksEnabled(t)
	// Switching static blocks clears the tracking context; the clear
	// must recycle the predecessor and history buffers, not reallocate
	// them.
	p := New(Config{})
	drop := func(mem.LineAddr) {}
	id := 0
	iter := func() {
		p.OnBlockBegin(id)
		l := mem.LineAddr(1 << 20)
		p.OnAccess(prefetch.Access{Addr: l.Byte(), Line: l}, drop)
		p.OnBlockEnd(id, drop)
		id = 1 - id // alternate: every begin is a block switch
	}
	for i := 0; i < 8; i++ {
		iter()
	}
	if avg := testing.AllocsPerRun(200, iter); avg != 0 {
		t.Errorf("block switch allocates %.1f objects, want 0", avg)
	}
}

func TestCensusSteadyStateAllocationFree(t *testing.T) {
	skipIfChecksEnabled(t)
	c := NewCensus(16)
	k := 0
	iter := func() {
		c.Consume(trace.Event{Kind: trace.BlockBegin, Block: 1})
		for j := 0; j < 4; j++ {
			c.Consume(trace.Event{Kind: trace.Load, Addr: mem.Addr((k*4 + j) * 64)})
		}
		c.Consume(trace.Event{Kind: trace.BlockEnd, Block: 1})
		k++
	}
	for i := 0; i < 8; i++ {
		iter() // constant stride: the one differential key is now interned
	}
	if avg := testing.AllocsPerRun(200, iter); avg != 0 {
		t.Errorf("steady-state census iteration allocates %.1f objects, want 0", avg)
	}
}

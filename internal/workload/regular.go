package workload

import (
	"cbws/internal/mem"
	"cbws/internal/trace"
)

// The regular (low-MPKI) group: compute-dominated kernels whose working
// sets fit in (and quickly become resident in) the 2MB L2, so
// prefetching moves performance only marginally — the bottom half of
// Figure 14. Footprints are sized well below the L2 so that steady
// state is reached within a small fraction of the simulation window.

func init() {
	register(Spec{Name: "458.sjeng-ref", Suite: "SPEC2006", Make: newSjeng})
	register(Spec{Name: "471.omnetpp-omnetpp", Suite: "SPEC2006", Make: newOmnetpp})
	register(Spec{Name: "bfs-1m", Suite: "Parboil", Make: newBFS})
	register(Spec{Name: "canneal-simlarge", Suite: "PARSEC", Make: newCanneal})
	register(Spec{Name: "cholesky-tk29", Suite: "SPLASH", Make: newCholesky})
	register(Spec{Name: "freqmine-simlarge", Suite: "PARSEC", Make: newFreqmine})
	register(Spec{Name: "md-linpack", Suite: "Rodinia", Make: newMD})
	register(Spec{Name: "mvx-linpack", Suite: "Rodinia", Make: newMVX})
	register(Spec{Name: "mxm-linpack", Suite: "Rodinia", Make: newMXM})
	register(Spec{Name: "ocean-cp-simlarge", Suite: "SPLASH", Make: newOcean})
	register(Spec{Name: "sad-base-large", Suite: "Parboil", Make: newSAD})
	register(Spec{Name: "spmv-large", Suite: "Parboil", Make: newSpMV})
	register(Spec{Name: "water-spatial-native", Suite: "SPLASH", Make: newWater})
	register(Spec{Name: "backprop", Suite: "Rodinia", Make: newBackprop})
	register(Spec{Name: "srad-v1", Suite: "Rodinia", Make: newSRAD})
}

// newSjeng models the chess engine: deep evaluation compute punctuated
// by transposition-table probes into a 512KB L2-resident table.
func newSjeng() trace.Generator {
	return gen{name: "458.sjeng-ref", body: func(e *emit) {
		const ttEntries = 1 << 11 // 128KB of 64B entries
		tt := base(0)
		rng := newPRNG(0x53e)
		for node := 0; node < 1<<19; node++ {
			e.begin(0)
			e.instr(24) // move generation / evaluation
			slot := rng.intn(ttEntries)
			e.load(0x11000, tt+mem.Addr(slot*64))
			e.instr(5)
			replace := rng.intn(4) == 0
			e.branch(0x11010, replace)
			if replace {
				e.store(0x11004, tt+mem.Addr(slot*64))
			}
			e.instr(8)
			e.end(0)
		}
	}}
}

// newOmnetpp models the discrete event simulator: heap pops touching a
// handful of event records in a 512KB arena plus queue maintenance.
func newOmnetpp() trace.Generator {
	return gen{name: "471.omnetpp-omnetpp", body: func(e *emit) {
		const events = 1 << 12 // 512KB of 128B events
		arena := base(0)
		arrivals := base(1)
		var arrOff mem.Addr
		rng := newPRNG(0x03e7)
		for step := 0; step < 1<<19; step++ {
			if step%8 == 0 {
				// Message arrival: decode a fresh record from the
				// (cold) arrival stream outside the scheduler loop.
				e.load(0x12010, arrivals+arrOff)
				arrOff += 16
				e.instr(6)
			}
			e.begin(0)
			e.instr(8)
			a := rng.intn(events)
			b := rng.intn(events)
			e.load(0x12000, arena+mem.Addr(a*128)) // heap root child
			e.load(0x12004, arena+mem.Addr(b*128)) // sibling compare
			e.instr(6)
			e.store(0x12008, arena+mem.Addr(a*128)) // sift-down write
			e.instr(10)                             // handler body
			e.end(0)
		}
	}}
}

// newBFS models the level-synchronous BFS on a graph whose frontier
// structures fit in the L2: repeated sweeps over a compact edge list
// with data-dependent visits into a small node array.
func newBFS() trace.Generator {
	return gen{name: "bfs-1m", body: func(e *emit) {
		const nodes = 1 << 13 // 512KB of 64B node records
		const edges = 1 << 16 // 512KB edge list
		edgeArr, nodeArr, frontier := base(0), base(1), base(2)
		var frontOff mem.Addr
		rng := newPRNG(0xbf5)
		for level := 0; level < 16; level++ {
			e.instr(60) // frontier swap
			for i := 0; i < edges; i++ {
				e.begin(0)
				e.instr(3)
				e.load(0x13000, edgeArr+mem.Addr(i*word)) // edge target, unit stride
				n := rng.intn(nodes)
				e.load(0x13004, nodeArr+mem.Addr(n*64)) // visited check
				e.instr(1)
				fresh := rng.intn(8) == 0
				e.branch(0x13010, fresh)
				if fresh {
					e.store(0x13008, nodeArr+mem.Addr(n*64)) // mark visited
					e.store(0x1300c, frontier+frontOff)      // append to next frontier
					frontOff += word
					e.instr(2)
				}
				e.instr(2)
				e.end(0)
			}
		}
	}}
}

// newCanneal models simulated annealing over a netlist: two random
// element reads per swap attempt over a 512KB arena, heavy compare
// logic, occasional committed swaps.
func newCanneal() trace.Generator {
	return gen{name: "canneal-simlarge", body: func(e *emit) {
		const elems = 1 << 12 // 256KB of 64B elements
		arena := base(0)
		rng := newPRNG(0xca2ea1)
		for step := 0; step < 1<<19; step++ {
			e.begin(0)
			e.instr(5)
			a := rng.intn(elems)
			b := rng.intn(elems)
			e.load(0x14000, arena+mem.Addr(a*64))
			e.load(0x14004, arena+mem.Addr(b*64))
			e.instr(11) // routing cost delta
			accept := rng.intn(4) == 0
			e.branch(0x14010, accept)
			if accept {
				e.store(0x14008, arena+mem.Addr(a*64))
				e.store(0x1400c, arena+mem.Addr(b*64))
			}
			e.instr(4)
			e.end(0)
		}
	}}
}

// newCholesky models the SPLASH blocked Cholesky on an L2-resident
// matrix: constant-stride panel updates with a high FLOP fraction.
func newCholesky() trace.Generator {
	return gen{name: "cholesky-tk29", body: func(e *emit) {
		const n = 192 // 288KB matrix: resident after the first panel
		a := base(0)
		at := func(i, j int) mem.Addr { return a + mem.Addr((i*n+j)*word) }
		for k := 0; k < n; k++ {
			e.instr(40) // column scaling (non-loop)
			for i := k + 1; i < n; i++ {
				for j := k + 1; j <= i; j++ {
					e.begin(0)
					e.instr(3)
					e.load(0x15000, at(i, k))
					e.load(0x15004, at(j, k))
					e.load(0x15008, at(i, j))
					e.instr(4)
					e.store(0x1500c, at(i, j))
					e.instr(2)
					e.end(0)
				}
				e.instr(3)
			}
		}
	}}
}

// newFreqmine models FP-growth: short pointer chases through a compact
// tree plus counter updates, all within 512KB.
func newFreqmine() trace.Generator {
	return gen{name: "freqmine-simlarge", body: func(e *emit) {
		const treeNodes = 1 << 13 // 512KB of 64B nodes
		tree := base(0)
		rng := newPRNG(0xf4e9)
		for txn := 0; txn < 1<<17; txn++ {
			node := rng.intn(treeNodes)
			depth := 2 + rng.intn(6)
			e.instr(15) // transaction decode (non-loop)
			for d := 0; d < depth; d++ {
				e.begin(0)
				e.instr(3)
				e.load(0x16000, tree+mem.Addr(node*64)) // node header
				e.instr(2)
				e.store(0x16004, tree+mem.Addr(node*64)) // count++
				node = rng.intn(treeNodes)               // child pointer
				e.instr(2)
				e.branch(0x16010, d+1 < depth)
				e.end(0)
			}
		}
	}}
}

// newMD models molecular dynamics with neighbor lists: per particle,
// gather ~16 spatially local neighbors from a 512KB position array with
// long force computations between loads.
func newMD() trace.Generator {
	return gen{name: "md-linpack", body: func(e *emit) {
		const particles = 1 << 11 // 64KB of 32B positions
		pos, force := base(0), base(1)
		rng := newPRNG(0x3d)
		for step := 0; step < 16; step++ {
			for p := 0; p < particles; p++ {
				e.instr(3)
				e.load(0x17000, pos+mem.Addr(p*32))
				for nb := 0; nb < 16; nb++ {
					e.begin(0)
					e.instr(2)
					// Neighbors are spatially local: within ±64 slots.
					q := p + rng.intn(129) - 64
					if q < 0 {
						q = 0
					}
					if q >= particles {
						q = particles - 1
					}
					e.load(0x17004, pos+mem.Addr(q*32))
					e.instr(14) // LJ force evaluation
					e.end(0)
				}
				e.store(0x17008, force+mem.Addr(p*32))
				e.instr(4)
			}
		}
	}}
}

// newMVX models dense matrix-vector multiply on an L2-resident matrix,
// repeated as in an iterative solver.
func newMVX() trace.Generator {
	return gen{name: "mvx-linpack", body: func(e *emit) {
		const n = 256 // 512KB matrix
		a, x, y := base(0), base(1), base(2)
		for rep := 0; rep < 48; rep++ {
			e.instr(30) // residual check between iterations
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					e.begin(0)
					e.instr(2)
					e.load(0x18000, a+mem.Addr((i*n+j)*word))
					e.load(0x18004, x+mem.Addr(j*word))
					e.instr(2)
					e.end(0)
				}
				e.store(0x18008, y+mem.Addr(i*word))
				e.instr(4)
			}
		}
	}}
}

// newMXM models a small matmul that stays inside the L2.
func newMXM() trace.Generator {
	return gen{name: "mxm-linpack", body: func(e *emit) {
		const n = 160 // three 200KB matrices
		a, b, c := base(0), base(1), base(2)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					e.begin(0)
					e.instr(3)
					e.load(0x19000, a+mem.Addr((i*n+k)*word))
					e.load(0x19004, b+mem.Addr((k*n+j)*word))
					e.instr(2)
					e.end(0)
				}
				e.store(0x19008, c+mem.Addr((i*n+j)*word))
				e.instr(4)
			}
		}
	}}
}

// newOcean models the SPLASH ocean grid solver: 5-point stencil sweeps
// over a ~0.5MB grid, resident after the first sweep.
func newOcean() trace.Generator {
	return gen{name: "ocean-cp-simlarge", body: func(e *emit) {
		const dim = 258
		grid, next := base(0), base(1)
		at := func(i, j int) mem.Addr { return mem.Addr((i*dim + j) * word) }
		for sweep := 0; sweep < 30; sweep++ {
			e.instr(80) // red/black phase setup
			for i := 1; i < dim-1; i++ {
				for j := 1; j < dim-1; j++ {
					e.begin(0)
					e.instr(3)
					e.load(0x1a000, grid+at(i-1, j))
					e.load(0x1a004, grid+at(i+1, j))
					e.load(0x1a008, grid+at(i, j-1))
					e.load(0x1a00c, grid+at(i, j+1))
					e.load(0x1a010, grid+at(i, j))
					e.instr(6)
					e.store(0x1a014, next+at(i, j))
					e.instr(2)
					e.end(0)
				}
				e.instr(4)
			}
			grid, next = next, grid
		}
	}}
}

// newSAD models the video block matcher: 4x4 sub-block absolute
// difference sums between a current macroblock and a search window,
// strided but extremely local.
func newSAD() trace.Generator {
	return gen{name: "sad-base-large", body: func(e *emit) {
		const width = 352
		cur, ref := base(0), base(1)
		for frame := 0; frame < 64; frame++ {
			e.instr(100) // frame setup
			for mb := 0; mb < 300; mb++ {
				mbx := (mb * 16) % width
				mby := (mb / (width / 16)) * 16
				for sy := -2; sy < 2; sy++ {
					for sx := -2; sx < 2; sx++ {
						for row := 0; row < 16; row++ {
							e.begin(0)
							e.instr(2)
							ca := mem.Addr((mby+row)*width + mbx)
							ra := mem.Addr((mby+row+sy+2)*width + mbx + sx + 2)
							e.load(0x1b000, cur+ca)
							e.load(0x1b004, ref+ra)
							e.instr(5) // 16-wide SAD accumulate
							e.end(0)
						}
						e.instr(4)
					}
				}
				e.instr(8)
			}
		}
	}}
}

// newSpMV models CSR sparse matrix-vector multiply on an L2-resident
// matrix, repeated as in an iterative solver: unit-stride index and
// value streams with a gather into a small dense vector.
func newSpMV() trace.Generator {
	return gen{name: "spmv-large", body: func(e *emit) {
		const rows = 1 << 13
		const avgNnz = 12
		const vecLen = 1 << 13 // 64KB dense vector: resident
		idxArr, valArr, x, y, rhs := base(0), base(1), base(2), base(3), base(4)
		var rhsOff mem.Addr
		for rep := 0; rep < 16; rep++ {
			rng := newPRNG(0x59e17) // same sparsity pattern every pass
			k := 0
			e.instr(40)
			// Preconditioner refresh: stream a fresh right-hand-side
			// segment (cold, outside the tight loop).
			for r := 0; r < 1024; r++ {
				e.load(0x1c010, rhs+rhsOff)
				rhsOff += word
				e.instr(4)
			}
			for r := 0; r < rows; r++ {
				nnz := 4 + rng.intn(2*avgNnz-4)
				e.instr(3)
				for c := 0; c < nnz; c++ {
					e.begin(0)
					e.instr(2)
					e.load(0x1c000, idxArr+mem.Addr(k*f32))
					e.load(0x1c004, valArr+mem.Addr(k*word))
					col := rng.intn(vecLen)
					e.load(0x1c008, x+mem.Addr(col*word))
					e.instr(2)
					e.end(0)
					k++
				}
				e.store(0x1c00c, y+mem.Addr(r*word))
				e.instr(3)
			}
		}
	}}
}

// newWater models SPLASH water-spatial: per molecule, gather a few
// neighbors from the same spatial cell and run a long interaction
// computation; the molecule array is L2-resident.
func newWater() trace.Generator {
	return gen{name: "water-spatial-native", body: func(e *emit) {
		const mols = 1 << 12 // 256KB of 64B molecules
		molArr, traj := base(0), base(1)
		var trajOff mem.Addr
		rng := newPRNG(0x77a7e4)
		for step := 0; step < 48; step++ {
			e.instr(60) // cell list rebuild
			if step%4 == 0 {
				// Trajectory snapshot: cold sequential writes.
				for t := 0; t < 1024; t++ {
					e.store(0x1d010, traj+trajOff)
					trajOff += word
					e.instr(2)
				}
			}
			for m := 0; m < mols; m++ {
				e.instr(4)
				e.load(0x1d000, molArr+mem.Addr(m*64))
				for nb := 0; nb < 6; nb++ {
					e.begin(0)
					e.instr(2)
					q := (m + rng.intn(32) - 16 + mols) % mols
					e.load(0x1d004, molArr+mem.Addr(q*64))
					e.instr(16) // O-O, O-H interactions
					e.end(0)
				}
				e.store(0x1d008, molArr+mem.Addr(m*64))
				e.instr(4)
			}
		}
	}}
}

// newBackprop models the neural net layer sweep: weight matrix rows
// stream with unit stride against a resident activation vector; the
// 256KB weight matrix stays L2-resident across epochs.
func newBackprop() trace.Generator {
	return gen{name: "backprop", body: func(e *emit) {
		const in, out = 512, 128
		w, act, delta, batch := base(0), base(1), base(2), base(3)
		var batchOff mem.Addr
		for epoch := 0; epoch < 64; epoch++ {
			e.instr(50) // learning-rate/bias update
			// Load a fresh training batch (cold stream, outside the
			// annotated layer loop).
			for b := 0; b < 2048; b++ {
				e.load(0x1e010, batch+batchOff)
				batchOff += f32
				e.instr(3)
			}
			for o := 0; o < out; o++ {
				for i := 0; i < in; i++ {
					e.begin(0)
					e.instr(2)
					e.load(0x1e000, w+mem.Addr((o*in+i)*f32))
					e.load(0x1e004, act+mem.Addr(i*f32))
					e.instr(3)
					e.end(0)
				}
				e.store(0x1e008, delta+mem.Addr(o*f32))
				e.instr(6)
			}
		}
	}}
}

// newSRAD models the Rodinia speckle-reducing diffusion stencil over a
// 144KB image: 4-neighbor reads with moderate compute.
func newSRAD() trace.Generator {
	return gen{name: "srad-v1", body: func(e *emit) {
		const dim = 192
		img, coef := base(0), base(1)
		at := func(i, j int) mem.Addr { return mem.Addr((i*dim + j) * f32) }
		for iter := 0; iter < 48; iter++ {
			e.instr(70) // statistics update per iteration
			for i := 1; i < dim-1; i++ {
				for j := 1; j < dim-1; j++ {
					e.begin(0)
					e.instr(3)
					e.load(0x1f000, img+at(i-1, j))
					e.load(0x1f004, img+at(i+1, j))
					e.load(0x1f008, img+at(i, j-1))
					e.load(0x1f00c, img+at(i, j+1))
					e.load(0x1f010, img+at(i, j))
					e.instr(9) // diffusion coefficient
					e.store(0x1f014, coef+at(i, j))
					e.instr(2)
					e.end(0)
				}
				e.instr(4)
			}
		}
	}}
}

// Package trace_test holds the fuzz targets that need real workload
// generators as seed corpus; they live outside package trace so they
// can import cbws/internal/workload without a cycle.
package trace_test

import (
	"bytes"
	"testing"

	"cbws/internal/trace"
	"cbws/internal/workload"
)

// encodePrefix captures the first maxEvents events of a workload as an
// encoded trace file.
func encodePrefix(f *testing.F, name string, maxEvents uint64) []byte {
	f.Helper()
	spec, ok := workload.ByName(name)
	if !ok {
		f.Fatalf("workload %q missing", name)
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, spec.Name)
	if err != nil {
		f.Fatal(err)
	}
	trace.DriveBatches(trace.Limit{Gen: spec.Make(), Max: maxEvents}, w)
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// sameEvent compares two events up to the encoder's Instr
// normalization: Consume writes Count() (which maps N=0 to 1), so a
// decode→encode→decode cycle preserves the instruction count but not a
// raw N of zero.
func sameEvent(a, b trace.Event) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind == trace.Instr {
		return a.Count() == b.Count()
	}
	return a == b
}

// FuzzTraceRoundTrip checks decode→encode→decode idempotence on
// arbitrary bytes, seeded with encoded prefixes of the real workload
// generators: whatever event stream the reader accepts, re-encoding it
// must reproduce the same stream (and trace name) exactly.
func FuzzTraceRoundTrip(f *testing.F) {
	for _, name := range []string{"stencil-default", "429.mcf-ref", "radix-simlarge"} {
		f.Add(encodePrefix(f, name, 4096))
	}
	// A hostile seed too: valid header, garbage body.
	f.Add(append([]byte("CBWT\x01\x04fuzz"), 0x03, 0xFF, 0xFF, 0xFF))
	// Field-bound regressions: a 2^63-ish Instr count, a block ID past
	// the cap, and a branch outcome byte that is neither 0 nor 1. All
	// three must be rejected (the decoder bounds every uvarint field),
	// and the fuzz property below asserts the bounds hold whenever a
	// decode does succeed.
	f.Add(append([]byte("CBWT\x01\x04fuzz"), 0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0xFF))
	f.Add(append([]byte("CBWT\x01\x04fuzz"), 0x03, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F, 0xFF))
	f.Add(append([]byte("CBWT\x01\x04fuzz"), 0x05, 0x00, 0x02, 0xFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := trace.NewReader(bytes.NewReader(data))
		if err != nil {
			return // header rejected: nothing to round-trip
		}
		first := trace.New(r.Name())
		if err := r.Decode(first); err != nil {
			return // body rejected: partial decodes are not re-encodable
		}
		// Everything the decoder accepts must respect the field bounds;
		// anything past them has to surface as ErrBadTrace, never as an
		// oversized event.
		for i, e := range first.Events {
			if e.N > trace.MaxInstrCount {
				t.Fatalf("event %d: decoded Instr count %d exceeds cap", i, e.N)
			}
			if e.Block < 0 || e.Block > trace.MaxBlockID {
				t.Fatalf("event %d: decoded block ID %d out of range", i, e.Block)
			}
		}

		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf, first.Name())
		if err != nil {
			t.Fatal(err)
		}
		if !w.ConsumeBatch(first.Events) {
			t.Fatal("re-encode refused decoded events")
		}
		if err := w.Close(); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}

		r2, err := trace.NewReader(&buf)
		if err != nil {
			t.Fatalf("re-encoded trace rejected: %v", err)
		}
		if r2.Name() != first.Name() {
			t.Fatalf("name diverged: %q != %q", r2.Name(), first.Name())
		}
		second := trace.New(r2.Name())
		if err := r2.Decode(second); err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if len(second.Events) != len(first.Events) {
			t.Fatalf("event count diverged: %d != %d", len(second.Events), len(first.Events))
		}
		for i := range first.Events {
			if !sameEvent(first.Events[i], second.Events[i]) {
				t.Fatalf("event %d diverged: %+v != %+v", i, first.Events[i], second.Events[i])
			}
		}
	})
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"cbws/internal/lint/analysis"
)

// BatchAlias enforces the BatchSink contract: the batch slice handed
// to ConsumeBatch is only valid for the duration of the call — the
// producer reuses the backing array — so implementations must not
// retain it (store it in a field, global, map, channel, closure, or
// goroutine) nor mutate it (write elements, or append to the batch
// itself, which can scribble past len into the producer's buffer).
// Passing the batch or a subslice onward to another synchronous call
// is fine; copying out with append(dst, batch...) is fine.
//
// The analyzer recognizes implementations structurally: any method
// named ConsumeBatch taking one slice parameter and returning bool.
var BatchAlias = &analysis.Analyzer{
	Name: "batchalias",
	Doc: "forbid retaining or mutating the borrowed batch slice in " +
		"BatchSink.ConsumeBatch implementations",
	Run: runBatchAlias,
}

func runBatchAlias(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name != "ConsumeBatch" {
				continue
			}
			if !isBatchSinkSig(pass.TypesInfo, fd) {
				continue
			}
			checkBatchBody(pass, fd)
		}
	}
	return nil
}

// isBatchSinkSig matches func(batch []T) bool.
func isBatchSinkSig(info *types.Info, fd *ast.FuncDecl) bool {
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	if _, ok := sig.Params().At(0).Type().Underlying().(*types.Slice); !ok {
		return false
	}
	b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// batchChecker tracks which locals alias the borrowed slice (aliases)
// or point into it (elemPtrs) while walking one ConsumeBatch body.
type batchChecker struct {
	pass     *analysis.Pass
	aliases  map[types.Object]bool // slice views of the batch
	elemPtrs map[types.Object]bool // pointers to batch elements
}

func checkBatchBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	c := &batchChecker{
		pass:     pass,
		aliases:  make(map[types.Object]bool),
		elemPtrs: make(map[types.Object]bool),
	}
	if len(fd.Type.Params.List) == 1 && len(fd.Type.Params.List[0].Names) == 1 {
		if obj := pass.TypesInfo.Defs[fd.Type.Params.List[0].Names[0]]; obj != nil {
			c.aliases[obj] = true
		}
	}
	if len(c.aliases) == 0 {
		return // unnamed parameter cannot be misused
	}
	// Alias pre-pass: locals bound to the batch or to element pointers.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := c.pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = c.pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			if c.isBatchSlice(as.Rhs[i]) {
				c.aliases[obj] = true
			}
			if c.isElemPtr(as.Rhs[i]) {
				c.elemPtrs[obj] = true
			}
		}
		return true
	})
	c.walk(fd.Body)
}

// isBatchSlice reports whether expr evaluates to a slice sharing the
// batch's backing array: the batch itself, a reslice of it, or a named
// alias. Indexing (an element copy) is not included.
func (c *batchChecker) isBatchSlice(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[e]
		return obj != nil && c.aliases[obj]
	case *ast.SliceExpr:
		return c.isBatchSlice(e.X)
	}
	return false
}

// isElemPtr reports whether expr is &batch[i] (or &alias[i]).
func (c *batchChecker) isElemPtr(expr ast.Expr) bool {
	ue, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || ue.Op != token.AND {
		return false
	}
	ie, ok := ast.Unparen(ue.X).(*ast.IndexExpr)
	return ok && c.isBatchSlice(ie.X)
}

// throughBatch reports whether lvalue expr writes into the batch's
// backing array: batch[i], batch[i].Field, *p / p.Field for a tracked
// element pointer.
func (c *batchChecker) throughBatch(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.IndexExpr:
		return c.isBatchSlice(e.X)
	case *ast.SelectorExpr:
		return c.throughBatch(e.X) || c.viaElemPtr(e.X)
	case *ast.StarExpr:
		return c.viaElemPtr(e.X)
	}
	return false
}

func (c *batchChecker) viaElemPtr(expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	obj := c.pass.TypesInfo.Uses[id]
	return obj != nil && c.elemPtrs[obj]
}

// escapingLHS reports whether an assignment target outlives the call:
// a field, an element of some container, a dereference, or a
// package-level variable.
func (c *batchChecker) escapingLHS(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[e]
		if obj == nil {
			return false // new local via :=
		}
		v, ok := obj.(*types.Var)
		return ok && v.Parent() == c.pass.Pkg.Scope()
	}
	return false
}

func (c *batchChecker) walk(body ast.Node) {
	info := c.pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range e.Lhs {
				if c.throughBatch(lhs) {
					c.pass.Reportf(lhs.Pos(), "ConsumeBatch mutates the borrowed batch (the producer reuses its backing array)")
				}
				if i < len(e.Rhs) && (c.isBatchSlice(e.Rhs[i]) || c.isElemPtr(e.Rhs[i])) && c.escapingLHS(lhs) {
					c.pass.Reportf(e.Pos(), "ConsumeBatch retains the borrowed batch beyond the call")
				}
			}
		case *ast.IncDecStmt:
			if c.throughBatch(e.X) {
				c.pass.Reportf(e.Pos(), "ConsumeBatch mutates the borrowed batch (the producer reuses its backing array)")
			}
		case *ast.SendStmt:
			if c.isBatchSlice(e.Value) || c.isElemPtr(e.Value) {
				c.pass.Reportf(e.Pos(), "ConsumeBatch sends the borrowed batch on a channel (retains it beyond the call)")
			}
		case *ast.GoStmt:
			for _, arg := range e.Call.Args {
				if c.isBatchSlice(arg) || c.isElemPtr(arg) {
					c.pass.Reportf(arg.Pos(), "ConsumeBatch passes the borrowed batch to a goroutine (outlives the call)")
				}
			}
		case *ast.FuncLit:
			c.checkCapture(e)
			return false
		case *ast.CompositeLit:
			for _, elt := range e.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if c.isBatchSlice(v) || c.isElemPtr(v) {
					c.pass.Reportf(v.Pos(), "ConsumeBatch stores the borrowed batch in a composite literal (may retain it)")
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(e.Args) > 0 {
					if c.isBatchSlice(e.Args[0]) {
						c.pass.Reportf(e.Pos(), "ConsumeBatch appends to the borrowed batch (can write past len into the producer's buffer)")
					}
				}
			}
		}
		return true
	})
}

// checkCapture flags closures that capture the batch or an element
// pointer: the closure can outlive the call, so the capture is a
// retention hazard regardless of how it is used.
func (c *batchChecker) checkCapture(fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pass.TypesInfo.Uses[id]
		if obj != nil && (c.aliases[obj] || c.elemPtrs[obj]) {
			c.pass.Reportf(id.Pos(), "closure inside ConsumeBatch captures the borrowed batch (retention hazard)")
			return false
		}
		return true
	})
}

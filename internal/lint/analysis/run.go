package analysis

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// Run applies analyzers to pkgs (already sorted dependencies-first by
// Load) and returns the surviving diagnostics in deterministic order:
// by file, line, column, analyzer, message. Findings suppressed by a
// //lint:ignore comment are dropped. Analyzer Scope is honored:
// out-of-scope packages are skipped.
func Run(analyzers []*Analyzer, pkgs []*Package, modulePath string) ([]Diagnostic, error) {
	facts := NewFactStore()
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		for _, a := range analyzers {
			if !a.InScope(pkg.PkgPath) {
				continue
			}
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.TypesInfo,
				ModulePath: modulePath,
				Dir:        pkg.Dir,
				facts:      facts,
				report: func(d Diagnostic) {
					if !sup.suppressed(d) {
						diags = append(diags, d)
					}
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// suppressions records, per file and line, which analyzers have been
// silenced by a //lint:ignore comment. A suppression on line N covers
// diagnostics reported on line N (trailing comment) and line N+1
// (comment on its own line above the flagged statement).
type suppressions struct {
	byFile map[string]map[int][]string
}

// IgnorePrefix is the suppression comment marker. The full syntax is
//
//	//lint:ignore cbws/<analyzer> <reason>
//
// and the reason is mandatory: a bare suppression is ignored (and thus
// does not suppress), so every waiver is forced to document itself.
const IgnorePrefix = "//lint:ignore "

func collectSuppressions(pkg *Package) *suppressions {
	s := &suppressions{byFile: make(map[string]map[int][]string)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, IgnorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 { // analyzer + non-empty reason required
					continue
				}
				name, ok := strings.CutPrefix(fields[0], "cbws/")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := s.byFile[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					s.byFile[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], name)
			}
		}
	}
	return s
}

func (s *suppressions) suppressed(d Diagnostic) bool {
	m := s.byFile[d.Pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range m[line] {
			if name == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// FileHasBuildTag reports whether f carries a //go:build constraint
// mentioning tag (e.g. "cbwscheck"). Such files only compile into
// checked builds, so checkguard exempts them from the Enabled-guard
// requirement.
func FileHasBuildTag(f *ast.File, tag string) bool {
	for _, cg := range f.Comments {
		// Build constraints precede the package clause.
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if expr, ok := strings.CutPrefix(c.Text, "//go:build "); ok {
				for _, tok := range strings.FieldsFunc(expr, func(r rune) bool {
					return r == ' ' || r == '(' || r == ')' || r == '&' || r == '|' || r == '\t'
				}) {
					if tok == tag {
						return true
					}
				}
			}
		}
	}
	return false
}

// Package registry is the single name-based catalogue of prefetching
// schemes. Every surface that constructs a prefetcher by name — the
// public cbws facade, the evaluation harness, the CLIs and the
// benchmarks — delegates here, so adding a scheme in one place makes it
// available everywhere.
package registry

import (
	"fmt"
	"strings"

	"cbws/internal/core"
	"cbws/internal/prefetch"
	"cbws/internal/prefetch/learned"
)

// Factory names and constructs one prefetching scheme.
type Factory struct {
	Name string
	// Extension marks schemes beyond the paper's evaluated roster
	// (related-work baselines); the paper figures exclude them.
	Extension bool
	// Learned marks the post-paper learned baselines (Pythia-style RL,
	// Gaze-style spatial). They are extensions for the paper figures
	// but join the golden roster so their determinism is pinned.
	Learned bool
	New     func() prefetch.Prefetcher
}

// factories lists every registered scheme in the paper's plotting order,
// evaluated roster first, then the extension baselines, then the
// learned baselines.
var factories = []Factory{
	{Name: "none", New: func() prefetch.Prefetcher { return prefetch.NewNone() }},
	{Name: "stride", New: func() prefetch.Prefetcher { return prefetch.NewStride(prefetch.StrideConfig{}) }},
	{Name: "ghb-pc/dc", New: func() prefetch.Prefetcher { return prefetch.NewGHB(prefetch.GHBConfig{Mode: prefetch.PCDC}) }},
	{Name: "ghb-g/dc", New: func() prefetch.Prefetcher { return prefetch.NewGHB(prefetch.GHBConfig{Mode: prefetch.GlobalDC}) }},
	{Name: "sms", New: func() prefetch.Prefetcher { return prefetch.NewSMS(prefetch.SMSConfig{}) }},
	{Name: "cbws", New: func() prefetch.Prefetcher { return core.New(core.Config{}) }},
	{Name: "cbws+sms", New: func() prefetch.Prefetcher {
		return core.NewComposite(core.New(core.Config{}), prefetch.NewSMS(prefetch.SMSConfig{}))
	}},
	{Name: "ampm", Extension: true, New: func() prefetch.Prefetcher { return prefetch.NewAMPM(prefetch.AMPMConfig{}) }},
	{Name: "markov", Extension: true, New: func() prefetch.Prefetcher { return prefetch.NewMarkov(prefetch.MarkovConfig{}) }},
	{Name: "pythia", Extension: true, Learned: true,
		New: func() prefetch.Prefetcher { return learned.NewPythia(learned.PythiaConfig{}) }},
	{Name: "gaze", Extension: true, Learned: true,
		New: func() prefetch.Prefetcher { return learned.NewGaze(learned.GazeConfig{}) }},
}

// Evaluated returns the schemes of the paper's evaluation in plotting
// order: none, stride, GHB PC/DC, GHB G/DC, SMS, CBWS, CBWS+SMS.
func Evaluated() []Factory {
	out := make([]Factory, 0, len(factories))
	for _, f := range factories {
		if !f.Extension {
			out = append(out, f)
		}
	}
	return out
}

// All returns every registered scheme: the evaluated roster followed by
// the extension baselines.
func All() []Factory {
	out := make([]Factory, len(factories))
	copy(out, factories)
	return out
}

// GoldenRoster returns the schemes whose simulation results are pinned
// in golden/seed.json: the paper's evaluated roster plus the learned
// baselines, in registration order. The non-learned extensions (AMPM,
// Markov) stay outside the manifest, matching its pre-growth shape.
func GoldenRoster() []Factory {
	out := make([]Factory, 0, len(factories))
	for _, f := range factories {
		if !f.Extension || f.Learned {
			out = append(out, f)
		}
	}
	return out
}

// Names returns the registered scheme names in registration order.
func Names() []string {
	out := make([]string, len(factories))
	for i, f := range factories {
		out[i] = f.Name
	}
	return out
}

// ByName looks up a registered scheme.
func ByName(name string) (Factory, bool) {
	for _, f := range factories {
		if f.Name == name {
			return f, true
		}
	}
	return Factory{}, false
}

// New constructs the named scheme, or an error listing the valid names
// (nearest first) when the name is unknown.
func New(name string) (prefetch.Prefetcher, error) {
	f, err := Resolve(name)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	return f.New(), nil
}

// Resolve looks up the named scheme's factory, or returns the
// "did you mean" error when the name is unknown. The message is part of
// the service API (it travels in HTTP 400 bodies), so its shape is
// pinned by tests.
func Resolve(name string) (Factory, error) {
	if f, ok := ByName(name); ok {
		return f, nil
	}
	return Factory{}, fmt.Errorf("unknown prefetcher %q (did you mean %q? valid: %s)",
		name, Suggest(name), strings.Join(Names(), ", "))
}

// Suggest returns the registered name nearest to name. The distance is
// case-insensitive (so "CBWS" suggests "cbws" rather than an arbitrary
// same-length neighbour) and ties resolve to strict registration order:
// each distance is computed once and a single scan keeps the first
// minimum, so the suggestion stays deterministic as the roster grows
// (a comparison sort could order equal-distance neighbours by
// implementation detail).
func Suggest(name string) string {
	lower := strings.ToLower(name)
	best, bestDist := "", 0
	for _, f := range factories {
		d := editDistance(lower, strings.ToLower(f.Name))
		if best == "" || d < bestDist {
			best, bestDist = f.Name, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b, used only to
// order the suggestion in New's error message.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

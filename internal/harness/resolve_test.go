package harness

import (
	"context"
	"sync/atomic"
	"testing"

	"cbws/internal/sim"
	"cbws/internal/workload"
)

// TestResolveFactoryKnown resolves every registered scheme.
func TestResolveFactoryKnown(t *testing.T) {
	for _, f := range ExtendedPrefetchers() {
		got, err := ResolveFactory(f.Name)
		if err != nil {
			t.Fatalf("ResolveFactory(%q): %v", f.Name, err)
		}
		if got.Name != f.Name {
			t.Fatalf("ResolveFactory(%q) resolved to %q", f.Name, got.Name)
		}
	}
}

// TestResolveFactorySuggestion pins the exact shape of the miss
// diagnostic: the simulation service embeds it verbatim in HTTP 400
// bodies, so remote users must keep seeing the case-insensitive
// "did you mean" suggestion and the full roster.
func TestResolveFactorySuggestion(t *testing.T) {
	cases := []struct{ name, want string }{
		{"CBWS", `unknown prefetcher "CBWS" (did you mean "cbws"? valid: none, stride, ghb-pc/dc, ghb-g/dc, sms, cbws, cbws+sms, ampm, markov, pythia, gaze)`},
		{"strde", `unknown prefetcher "strde" (did you mean "stride"? valid: none, stride, ghb-pc/dc, ghb-g/dc, sms, cbws, cbws+sms, ampm, markov, pythia, gaze)`},
		// Plain Levenshtein: "sms" (distance 3) ties "gaze" (also 3)
		// and beats the ghb variants (distance 5); registration order
		// keeps "sms" ahead — pinned so the suggestion stays
		// deterministic as the roster grows.
		{"ghb", `unknown prefetcher "ghb" (did you mean "sms"? valid: none, stride, ghb-pc/dc, ghb-g/dc, sms, cbws, cbws+sms, ampm, markov, pythia, gaze)`},
		// Learned-name typos resolve to the learned schemes.
		{"pythai", `unknown prefetcher "pythai" (did you mean "pythia"? valid: none, stride, ghb-pc/dc, ghb-g/dc, sms, cbws, cbws+sms, ampm, markov, pythia, gaze)`},
	}
	for _, tc := range cases {
		_, err := ResolveFactory(tc.name)
		if err == nil {
			t.Fatalf("ResolveFactory(%q): expected error", tc.name)
		}
		if err.Error() != tc.want {
			t.Errorf("ResolveFactory(%q):\n got %q\nwant %q", tc.name, err.Error(), tc.want)
		}
	}
}

// TestGetObservedAttachesHooks verifies a per-call progress hook fires
// on the owned run and that the observed result is bit-identical to an
// unobserved run of the same cell.
func TestGetObservedAttachesHooks(t *testing.T) {
	spec, ok := workload.ByName("stencil-default")
	if !ok {
		t.Fatal("stencil-default workload missing")
	}
	f, err := ResolveFactory("stride")
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Sim.MaxInstructions = 200_000
	opts.Sim.WarmupInstructions = 50_000

	var calls, last atomic.Uint64
	m := NewMatrix(opts)
	res, err := m.GetObserved(context.Background(), spec, f,
		sim.WithProgress(func(n uint64) { calls.Add(1); last.Store(n) }),
		sim.WithSampleInterval(20_000))
	if err != nil {
		t.Fatalf("GetObserved: %v", err)
	}
	if calls.Load() == 0 {
		t.Fatal("progress hook never fired on an owned run")
	}
	if got := last.Load(); got < opts.Sim.MaxInstructions-20_000 {
		t.Fatalf("last progress report %d, want near %d", got, opts.Sim.MaxInstructions)
	}

	plain, err := NewMatrix(opts).Get(spec, f)
	if err != nil {
		t.Fatalf("unobserved Get: %v", err)
	}
	if plain.Metrics != res.Metrics {
		t.Fatalf("observed run diverged from unobserved run:\n got %+v\nwant %+v", res.Metrics, plain.Metrics)
	}

	// A memoized re-read must not fire the new caller's hooks.
	var again atomic.Uint64
	if _, err := m.GetObserved(context.Background(), spec, f,
		sim.WithProgress(func(uint64) { again.Add(1) })); err != nil {
		t.Fatal(err)
	}
	if again.Load() != 0 {
		t.Fatal("progress hook fired on a memoized read")
	}
}

package debugsrv

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// get fetches a URL and returns the status code and body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

func TestHandlerServesDiagnostics(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()

	if code, body := get(t, ts.URL+"/debug/vars"); code != http.StatusOK {
		t.Fatalf("/debug/vars: status %d, body %q", code, body)
	} else if !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars does not expose memstats: %q", body[:min(len(body), 200)])
	}
	if code, _ := get(t, ts.URL+"/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/: status %d", code)
	}
}

func TestHandlerMountsUnderOwnMux(t *testing.T) {
	// The diagnostics must be mountable inside another server's routing
	// table (cbwsd does this), not only reachable through the global
	// mux. A sibling route on the same mux must keep working.
	mux := http.NewServeMux()
	mux.Handle("/debug/", Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	if code, _ := get(t, ts.URL+"/debug/vars"); code != http.StatusOK {
		t.Fatalf("/debug/vars under embedded mux: status %d", code)
	}
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("sibling route broken by embedded diagnostics: status %d", code)
	}
}

func TestStartShutdown(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if code, _ := get(t, "http://"+s.Addr()+"/debug/vars"); code != http.StatusOK {
		t.Fatalf("/debug/vars before shutdown: status %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/debug/vars"); err == nil {
		t.Fatal("server still accepting connections after Shutdown")
	}
}

func TestServeKeepsLegacyContract(t *testing.T) {
	addr, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if code, _ := get(t, "http://"+addr+"/debug/vars"); code != http.StatusOK {
		t.Fatalf("/debug/vars via Serve: status %d", code)
	}
}

package cache

import (
	"testing"

	"cbws/internal/mem"
)

func tinyHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	cfg := HierarchyConfig{
		L1:            Config{Name: "L1", SizeBytes: 4 * mem.LineSize * 2, Ways: 2, LatencyCycles: 2, MSHRs: 2},
		L2:            Config{Name: "L2", SizeBytes: 16 * mem.LineSize * 4, Ways: 4, LatencyCycles: 30, MSHRs: 4},
		MemoryLatency: 300,
	}
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	return h
}

func TestDefaultHierarchyConfigMatchesTableII(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	if cfg.L1.SizeBytes != 32<<10 || cfg.L1.Ways != 4 || cfg.L1.LatencyCycles != 2 || cfg.L1.MSHRs != 4 {
		t.Errorf("L1 config %+v", cfg.L1)
	}
	if cfg.L2.SizeBytes != 2<<20 || cfg.L2.Ways != 8 || cfg.L2.LatencyCycles != 30 || cfg.L2.MSHRs != 32 {
		t.Errorf("L2 config %+v", cfg.L2)
	}
	if cfg.MemoryLatency != 300 {
		t.Errorf("memory latency %d", cfg.MemoryLatency)
	}
	if _, err := NewHierarchy(cfg); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestColdMissLatency(t *testing.T) {
	h := tinyHierarchy(t)
	info := h.Access(1, 0x1000, false, 0)
	// Cold miss: L1 lookup (2) + memory (300), L1 fill completes then.
	if info.HitL1 || info.HitL2 {
		t.Errorf("cold access reported as hit: %+v", info)
	}
	if info.ReadyAt != 302 {
		t.Errorf("ReadyAt = %d, want 302", info.ReadyAt)
	}
	if h.Timeliness.Missing != 1 {
		t.Errorf("timeliness: %+v", h.Timeliness)
	}
	if h.BytesFromMem != mem.LineSize || h.DemandBytes != mem.LineSize {
		t.Errorf("bytes: %d/%d", h.BytesFromMem, h.DemandBytes)
	}
}

func TestL1HitLatency(t *testing.T) {
	h := tinyHierarchy(t)
	h.Access(1, 0x1000, false, 0)
	info := h.Access(1, 0x1000, false, 1000)
	if !info.HitL1 || info.ReadyAt != 1002 {
		t.Errorf("L1 hit: %+v", info)
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	h := tinyHierarchy(t)
	// Fill enough lines mapping to one L1 set to evict the first, while
	// the larger L2 keeps them all.
	l1Sets := h.Config().L1.Sets()
	for i := 0; i < 3; i++ {
		h.Access(1, mem.Addr(i*l1Sets*mem.LineSize), false, uint64(i)*1000)
	}
	info := h.Access(1, 0, false, 10_000)
	if info.HitL1 {
		t.Fatalf("line should have been evicted from L1: %+v", info)
	}
	if !info.HitL2 {
		t.Fatalf("line should hit in L2: %+v", info)
	}
	// L1 lookup (2) + L2 latency (30).
	if info.ReadyAt != 10_032 {
		t.Errorf("ReadyAt = %d, want 10032", info.ReadyAt)
	}
}

func TestInclusiveBackInvalidation(t *testing.T) {
	h := tinyHierarchy(t)
	// Fill L2 set 0 beyond capacity; the evicted L2 line must leave L1.
	l2Sets := h.Config().L2.Sets()
	step := l2Sets * mem.LineSize
	for i := 0; i <= 4; i++ { // 4-way L2 set: fifth line evicts the first
		h.Access(1, mem.Addr(i*step), false, uint64(i)*1000)
	}
	// The first line must now miss both levels.
	info := h.Access(1, 0, false, 50_000)
	if info.HitL1 || info.HitL2 {
		t.Errorf("line should have been back-invalidated: %+v", info)
	}
}

func TestPrefetchTimelinessClasses(t *testing.T) {
	h := tinyHierarchy(t)

	// Timely: prefetch completes before the demand.
	h.Prefetch(mem.LineOf(0x1000), 0)
	info := h.Access(1, 0x1000, false, 1000)
	if !info.PfHit || h.Timeliness.Timely != 1 {
		t.Errorf("timely: info=%+v timeliness=%+v", info, h.Timeliness)
	}

	// Shorter-waiting-time: demand arrives while prefetch in flight.
	h.Prefetch(mem.LineOf(0x2000), 2000)
	info = h.Access(1, 0x2000, false, 2010)
	if !info.PfHit || h.Timeliness.ShorterWT != 1 {
		t.Errorf("shorter-wait: info=%+v timeliness=%+v", info, h.Timeliness)
	}
	if info.ReadyAt < 2300 {
		t.Errorf("late prefetch should still wait for the fill: %d", info.ReadyAt)
	}

	// Missing: plain demand miss.
	h.Access(1, 0x9000, false, 5000)
	if h.Timeliness.Missing == 0 {
		t.Errorf("missing not counted: %+v", h.Timeliness)
	}
}

func TestNonTimelyClassification(t *testing.T) {
	h := tinyHierarchy(t)
	// Exhaust the L2 MSHRs with demand misses so a prefetch is dropped.
	for i := 0; i < 4; i++ {
		h.Access(1, mem.Addr(0x10000+i*mem.LineSize), false, 0)
	}
	target := mem.LineOf(0xF0000)
	if h.Prefetch(target, 1) {
		t.Fatal("prefetch should have been dropped (no MSHRs)")
	}
	// A later demand miss on the identified line is non-timely.
	h.Access(1, 0xF0000, false, 10_000)
	if h.Timeliness.NonTimely != 1 {
		t.Errorf("timeliness: %+v", h.Timeliness)
	}
}

func TestPrefetchRedundantNotCounted(t *testing.T) {
	h := tinyHierarchy(t)
	h.Access(1, 0x1000, false, 0)
	before := h.BytesFromMem
	if h.Prefetch(mem.LineOf(0x1000), 500) {
		t.Error("prefetch of resident line should be refused")
	}
	if h.BytesFromMem != before {
		t.Error("redundant prefetch generated traffic")
	}
}

func TestFinishDrainsWrong(t *testing.T) {
	h := tinyHierarchy(t)
	h.Prefetch(mem.LineOf(0x1000), 0)
	h.Prefetch(mem.LineOf(0x2000), 0)
	h.Access(1, 0x1000, false, 1000)
	h.Finish()
	if h.Timeliness.WrongFinal != 1 {
		t.Errorf("wrong = %d, want 1", h.Timeliness.WrongFinal)
	}
}

func TestDemandL2MissesExcludesShorterWT(t *testing.T) {
	h := tinyHierarchy(t)
	h.Prefetch(mem.LineOf(0x2000), 0)
	h.Access(1, 0x2000, false, 10) // merges with in-flight prefetch
	if h.DemandL2Misses() != 0 {
		t.Errorf("shorter-wait counted as miss: %d", h.DemandL2Misses())
	}
	h.Access(1, 0x9000, false, 1000) // plain miss
	if h.DemandL2Misses() != 1 {
		t.Errorf("misses = %d, want 1", h.DemandL2Misses())
	}
}

func TestMergedDemandCountsAsMiss(t *testing.T) {
	h := tinyHierarchy(t)
	h.Access(1, 0x3000, false, 0)
	// Second access to a different line in the same L1 set... actually
	// same line, while the demand fill is still in flight, arriving via
	// a second L1 set? Same line merges at L1 and never reaches L2.
	// Force an L2 merge: access a second address in the same L2 line
	// but a different L1 line is impossible (L1 lines == L2 lines), so
	// instead verify the L1 merge path: the second access merges at L1
	// and the L2 demand count stays 1.
	h.Access(2, 0x3000, false, 10)
	if h.Timeliness.DemandL2 != 1 {
		t.Errorf("L1 merge should not reach L2: %+v", h.Timeliness)
	}
	if h.DemandL2Misses() != 1 {
		t.Errorf("misses = %d, want 1", h.DemandL2Misses())
	}
}

func TestMonotonicReadyTimes(t *testing.T) {
	// Property: for monotonically non-decreasing access times, ReadyAt
	// is always strictly after the access time.
	h := tinyHierarchy(t)
	now := uint64(0)
	for i := 0; i < 1000; i++ {
		now += uint64(i % 7)
		addr := mem.Addr((i * 37 % 256) * mem.LineSize)
		info := h.Access(1, addr, i%3 == 0, now)
		if info.ReadyAt <= now {
			t.Fatalf("access %d at %d ready at %d", i, now, info.ReadyAt)
		}
	}
}

func TestWritebackPropagation(t *testing.T) {
	h := tinyHierarchy(t)
	// Write a line, then force it out of the L2 (which back-invalidates
	// the L1): one write-back to memory must be charged.
	h.Access(1, 0x3000, true, 0)
	l2Sets := h.Config().L2.Sets()
	step := l2Sets * mem.LineSize
	for i := 1; i <= 4; i++ {
		h.Access(1, mem.Addr(0x3000+i*step), false, uint64(i)*1000)
	}
	if h.WritebackBytes != mem.LineSize {
		t.Errorf("writeback bytes = %d, want %d", h.WritebackBytes, mem.LineSize)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	h := tinyHierarchy(t)
	h.Access(1, 0x3000, false, 0) // read only
	l2Sets := h.Config().L2.Sets()
	step := l2Sets * mem.LineSize
	for i := 1; i <= 4; i++ {
		h.Access(1, mem.Addr(0x3000+i*step), false, uint64(i)*1000)
	}
	if h.WritebackBytes != 0 {
		t.Errorf("clean eviction charged %d writeback bytes", h.WritebackBytes)
	}
}

func TestL1DirtyEvictionMarksL2(t *testing.T) {
	h := tinyHierarchy(t)
	// Dirty a line in L1, evict it from L1 (small L1), then evict the
	// L2 copy: the writeback must still be charged because the L1
	// eviction propagated the dirty state.
	h.Access(1, 0, true, 0)
	l1Sets := h.Config().L1.Sets()
	for i := 1; i <= 2; i++ { // evict from 2-way L1
		h.Access(1, mem.Addr(i*l1Sets*mem.LineSize), false, uint64(i)*1000)
	}
	l2Sets := h.Config().L2.Sets()
	step := l2Sets * mem.LineSize
	for i := 1; i <= 4; i++ {
		h.Access(1, mem.Addr(i*step), false, 10_000+uint64(i)*1000)
	}
	if h.WritebackBytes == 0 {
		t.Error("dirty state lost on L1 eviction")
	}
}

func queuedHierarchy(t *testing.T, depth, rate int) *Hierarchy {
	t.Helper()
	cfg := HierarchyConfig{
		L1:                 Config{Name: "L1", SizeBytes: 4 * mem.LineSize * 2, Ways: 2, LatencyCycles: 2, MSHRs: 2},
		L2:                 Config{Name: "L2", SizeBytes: 16 * mem.LineSize * 4, Ways: 4, LatencyCycles: 30, MSHRs: 8},
		MemoryLatency:      300,
		PrefetchQueueDepth: depth,
		PrefetchIssueRate:  rate,
	}
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	return h
}

func TestPrefetchQueueEnqueuesAndDrains(t *testing.T) {
	h := queuedHierarchy(t, 8, 2)
	// Queued prefetches do not issue immediately.
	if h.Prefetch(mem.LineOf(0x10000), 0) {
		t.Fatal("queued prefetch reported immediate issue")
	}
	if h.L2.Stats.PrefetchIssued != 0 {
		t.Fatal("prefetch issued before drain")
	}
	h.DrainPrefetchQueue(10)
	if h.L2.Stats.PrefetchIssued != 1 {
		t.Errorf("issued = %d after drain", h.L2.Stats.PrefetchIssued)
	}
}

func TestPrefetchQueueOverflowDrops(t *testing.T) {
	h := queuedHierarchy(t, 4, 2)
	for i := 0; i < 10; i++ {
		h.Prefetch(mem.LineOf(mem.Addr(0x10000+i*mem.LineSize)), 0)
	}
	if h.PrefetchQueueDrops != 6 {
		t.Errorf("drops = %d, want 6", h.PrefetchQueueDrops)
	}
	// A dropped candidate demanded later is non-timely.
	h.Access(1, 0x10000+9*mem.LineSize, false, 1000)
	if h.Timeliness.NonTimely != 1 {
		t.Errorf("timeliness: %+v", h.Timeliness)
	}
}

func TestPrefetchQueueRateBound(t *testing.T) {
	h := queuedHierarchy(t, 8, 2)
	for i := 0; i < 6; i++ {
		h.Prefetch(mem.LineOf(mem.Addr(0x20000+i*mem.LineSize)), 0)
	}
	h.DrainPrefetchQueue(5)
	if h.L2.Stats.PrefetchIssued != 2 {
		t.Errorf("issued = %d after one drain, want 2", h.L2.Stats.PrefetchIssued)
	}
	h.DrainPrefetchQueue(6)
	h.DrainPrefetchQueue(7)
	if h.L2.Stats.PrefetchIssued != 6 {
		t.Errorf("issued = %d after three drains, want 6", h.L2.Stats.PrefetchIssued)
	}
}

func TestDirectIssueWhenNoQueue(t *testing.T) {
	h := tinyHierarchy(t)
	if !h.Prefetch(mem.LineOf(0x30000), 0) {
		t.Error("direct prefetch did not issue")
	}
}

func TestMemoryChannelContention(t *testing.T) {
	cfg := HierarchyConfig{
		L1:              Config{Name: "L1", SizeBytes: 4 * mem.LineSize * 2, Ways: 2, LatencyCycles: 2, MSHRs: 4},
		L2:              Config{Name: "L2", SizeBytes: 16 * mem.LineSize * 4, Ways: 4, LatencyCycles: 30, MSHRs: 8},
		MemoryLatency:   300,
		MemoryChannels:  1,
		MemoryOccupancy: 50,
	}
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two simultaneous misses on one channel: the second transfer
	// starts only when the channel frees.
	a := h.Access(1, 0x10000, false, 0)
	b := h.Access(1, 0x20000, false, 0)
	if b.ReadyAt < a.ReadyAt+50 {
		t.Errorf("no contention: a ready %d, b ready %d", a.ReadyAt, b.ReadyAt)
	}
	if h.MemoryStallCycles == 0 {
		t.Error("stall cycles not recorded")
	}
}

func TestUnlimitedChannelsNoContention(t *testing.T) {
	h := tinyHierarchy(t)
	a := h.Access(1, 0x10000, false, 0)
	b := h.Access(1, 0x20000, false, 0)
	if a.ReadyAt != b.ReadyAt {
		t.Errorf("flat model should overlap fully: %d vs %d", a.ReadyAt, b.ReadyAt)
	}
	if h.MemoryStallCycles != 0 {
		t.Error("stall cycles recorded in flat model")
	}
}

func TestPrefetchContendsForChannels(t *testing.T) {
	cfg := HierarchyConfig{
		L1:              Config{Name: "L1", SizeBytes: 4 * mem.LineSize * 2, Ways: 2, LatencyCycles: 2, MSHRs: 4},
		L2:              Config{Name: "L2", SizeBytes: 16 * mem.LineSize * 4, Ways: 4, LatencyCycles: 30, MSHRs: 8},
		MemoryLatency:   300,
		MemoryChannels:  1,
		MemoryOccupancy: 50,
	}
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A burst of prefetches occupies the channel; the demand miss that
	// follows starts late.
	for i := 0; i < 4; i++ {
		h.Prefetch(mem.LineOf(mem.Addr(0x40000+i*mem.LineSize)), 0)
	}
	d := h.Access(1, 0x80000, false, 0)
	if d.ReadyAt < 4*50+300 {
		t.Errorf("demand did not wait for prefetch transfers: ready %d", d.ReadyAt)
	}
}

package workload

import (
	"cbws/internal/mem"
	"cbws/internal/trace"
)

// The memory-intensive group (Table IV). Each emulation reproduces the
// hot-loop memory structure of its benchmark; the comment above each
// constructor records the structural properties that drive the paper's
// per-benchmark results (Figures 12–15). Inner loops are modeled at the
// granularity the compilers emit them (tiled/unrolled), so annotated
// code blocks touch the realistic 4–16 cache lines per iteration that
// the paper's 16-line CBWS buffer is sized for. Unannotated setup and
// outer-loop work between blocks provides the non-loop runtime share of
// Figure 1.

func init() {
	register(Spec{Name: "stencil-default", Suite: "Parboil", MI: true, Make: newStencil})
	register(Spec{Name: "sgemm-medium", Suite: "Parboil", MI: true, Make: newSGEMM})
	register(Spec{Name: "nw", Suite: "Rodinia", MI: true, Make: newNW})
	register(Spec{Name: "radix-simlarge", Suite: "SPLASH", MI: true, Make: newRadix})
	register(Spec{Name: "lu-ncb-simlarge", Suite: "SPLASH", MI: true, Make: newLU})
	register(Spec{Name: "fft-simlarge", Suite: "SPLASH", MI: true, Make: newFFT})
	register(Spec{Name: "433.milc-su3imp", Suite: "SPEC2006", MI: true, Make: newMILC})
	register(Spec{Name: "429.mcf-ref", Suite: "SPEC2006", MI: true, Make: newMCF})
	register(Spec{Name: "450.soplex-ref", Suite: "SPEC2006", MI: true, Make: newSoplex})
	register(Spec{Name: "462.libquantum-ref", Suite: "SPEC2006", MI: true, Make: newLibquantum})
	register(Spec{Name: "401.bzip2-source", Suite: "SPEC2006", MI: true, Make: newBzip2})
	register(Spec{Name: "histo-large", Suite: "Parboil", MI: true, Make: newHisto})
	register(Spec{Name: "mri-q-large", Suite: "Parboil", MI: true, Make: newMRIQ})
	register(Spec{Name: "lbm-long", Suite: "Parboil", MI: true, Make: newLBM})
	register(Spec{Name: "streamcluster-simlarge", Suite: "PARSEC", MI: true, Make: newStreamcluster})
}

// newStencil is the Figure 2 kernel: a 7-point Jacobi operator on a 3-D
// float grid with the paper's index order (k innermost, stride nx*ny).
// Every inner iteration touches the same relative line set and the
// working set advances by one 64KB plane (1024 lines) per iteration —
// the constant CBWS differentials of Figure 4. The plane-sized strides
// overflow SMS's 2KB regions, which is why CBWS wins here.
func newStencil() trace.Generator {
	return gen{name: "stencil-default", body: func(e *emit) {
		const nx, ny, nz = 128, 128, 40
		plane := mem.Addr(nx * ny * f32) // 64KB = 1024 lines
		row := mem.Addr(nx * f32)
		a0 := base(0)
		a1 := base(1)
		idx := func(x, y, z int) mem.Addr {
			return mem.Addr((x + nx*(y+ny*z)) * f32)
		}
		for sweep := 0; sweep < 6; sweep++ {
			for i := 1; i < nx-1; i++ {
				for j := 1; j < ny-1; j++ {
					for k := 1; k < nz-1; k++ {
						e.begin(0)
						c := idx(i, j, k)
						e.instr(6)                 // index arithmetic
						e.load(0x1000, a0+c+plane) // k+1
						e.load(0x1004, a0+c-plane) // k-1
						e.load(0x1008, a0+c+row)   // j+1
						e.load(0x100c, a0+c-row)   // j-1
						e.load(0x1010, a0+c+f32)   // i+1
						e.load(0x1014, a0+c-f32)   // i-1
						e.load(0x1018, a0+c)       // center
						e.instr(8)                 // FMA chain
						e.store(0x101c, a1+c)
						e.instr(2) // loop bookkeeping
						e.branch(0x1020, k < nz-2)
						e.end(0)
					}
					e.instr(6)
				}
				e.instr(8)
			}
			e.instr(60) // sweep bookkeeping / convergence check
			a0, a1 = a1, a0
		}
	}}
}

// newSGEMM models the Parboil dense matmul with the compiler's 8-way
// unrolled k-loop: one annotated block streams 8 B-column elements
// (8 lines, 4KB row pitch) plus one A line — a 9-line working set
// whose differential is constant. The 64-line B stride leaves SMS's 2KB
// regions immediately, and the deep per-block line count gives the
// prefetcher enough memory-level parallelism to become timely: the
// paper's "misses effectively eliminated" case.
func newSGEMM() trace.Generator {
	return gen{name: "sgemm-medium", body: func(e *emit) {
		const m, n, k = 32, 1024, 1024
		const unroll = 8 // 8 B lines + 1 A line per block: fits the 16-line CBWS
		a, b, c := base(0), base(1), base(2)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				for kk := 0; kk < k; kk += unroll {
					e.begin(0)
					e.instr(4)
					e.load(0x2000, a+mem.Addr((i*k+kk)*f32)) // A[i][kk..kk+15]: one line
					for u := 0; u < unroll; u++ {
						e.load(0x2004, b+mem.Addr(((kk+u)*n+j)*f32)) // B column walk
						e.instr(2)                                   // FMA
					}
					e.instr(1)
					e.branch(0x2020, kk+unroll < k)
					e.end(0)
				}
				e.instr(4)
				e.store(0x2008, c+mem.Addr((i*n+j)*f32))
				e.instr(5)
			}
			e.instr(30) // row bookkeeping
		}
	}}
}

// newNW models Needleman-Wunsch with a 16-column unrolled inner sweep:
// each block reads one line each of the north row, the current row and
// the reference matrix and writes the current line — constant
// differentials, a block-structured benchmark where the CBWS schemes
// eliminate nearly all misses.
func newNW() trace.Generator {
	return gen{name: "nw", body: func(e *emit) {
		const cols = 4096
		const rows = 2048
		const unroll = 16 // 16 int cells = one 64B line
		itemsets, ref := base(0), base(1)
		pitch := mem.Addr(cols * f32)
		for i := 1; i < rows; i++ {
			e.instr(20)                                   // row setup
			e.load(0x3020, itemsets+mem.Addr(i*cols)*f32) // row head
			for j := 0; j < cols; j += unroll {
				e.begin(0)
				cur := mem.Addr(i*cols+j) * f32
				e.instr(4)
				e.load(0x3000, itemsets+cur-pitch)     // north line
				e.load(0x3004, itemsets+cur-pitch-f32) // north-west spill
				e.load(0x3008, ref+cur)                // substitution scores
				e.instr(unroll * 3)                    // max3 chain per cell
				e.store(0x300c, itemsets+cur)          // current line
				e.instr(2)
				e.branch(0x3030, j+unroll < cols)
				e.end(0)
			}
		}
	}}
}

// newRadix models the SPLASH-2 radix sort rank-and-permute phase on
// digit-grouped input (each pass consumes the previous pass's grouped
// output): blocks of 16 keys stream two input lines and two output
// lines with piecewise-constant strides, plus a resident rank counter.
// The differential distribution is extremely skewed, which is why the
// paper reports CBWS effectively eliminating radix's misses.
func newRadix() trace.Generator {
	return gen{name: "radix-simlarge", body: func(e *emit) {
		const keys = 1 << 21
		const buckets = 256
		const chunk = 16 // 16 8-byte keys: 2 lines in, 2 lines out
		keyArr, outArr, countArr := base(0), base(1), base(2)
		rng := newPRNG(0x4ad1c5)
		for pass := 0; pass < 2; pass++ {
			e.instr(200) // histogram/prefix-sum over resident counters
			for d := 0; d < buckets; d++ {
				e.load(0x4200, countArr+mem.Addr(d*word))
				e.instr(3)
			}
			outPos := 0
			for i := 0; i < keys; i += chunk {
				// Runs of same-digit keys: the destination stream
				// advances with unit stride within a run, jumping
				// between runs (runs of ~1K keys from the previous
				// pass's grouping).
				if i%1024 == 0 {
					outPos = rng.intn(keys - 2048)
					e.instr(40) // run switch: rank recomputation
					e.load(0x4204, countArr+mem.Addr(rng.intn(buckets)*word))
					e.load(0x4208, countArr+mem.Addr(rng.intn(buckets)*word))
				}
				e.begin(0)
				e.instr(3)
				e.load(0x4000, keyArr+mem.Addr(i*word))     // keys line 0
				e.load(0x4004, keyArr+mem.Addr((i+8)*word)) // keys line 1
				e.instr(chunk)                              // digit extraction
				e.store(0x4008, outArr+mem.Addr(outPos*word))
				e.store(0x400c, outArr+mem.Addr((outPos+8)*word))
				outPos += chunk
				e.instr(1)
				e.branch(0x4020, i+chunk < keys)
				e.end(0)
			}
		}
	}}
}

// newLU models the SPLASH-2 LU with non-contiguous blocks: the daxpy
// inner loop updates one 16-double row of a 16x16 block per iteration.
// Because blocks are allocated non-contiguously, consecutive rows of
// the logical matrix live a large constant stride apart — working sets
// of 4–6 lines whose differential is constant but whose span defeats
// region-based prefetchers.
func newLU() trace.Generator {
	return gen{name: "lu-ncb-simlarge", body: func(e *emit) {
		const blockBytes = 16 * 16 * word // 2KB per 16x16 block
		const nBlocks = 4096              // 8MB of block storage
		blocks := base(0)
		rowOf := func(blk, row int) mem.Addr {
			return blocks + mem.Addr(blk*blockBytes+row*16*word)
		}
		// Blocks are visited in the factorization's sweep order:
		// pivot block k updates the trailing blocks of its column,
		// across repeated factorizations of the solver loop.
		for fact := 0; fact < 6; fact++ {
			e.instr(500) // pivot search / permutation update per step
			for k := 0; k < 64; k++ {
				for t := k + 1; t < 64; t++ {
					pivot := k*64 + k%32
					target := t*64 + k%32
					e.instr(40) // block scheduling (non-loop)
					e.load(0x5020, blocks+mem.Addr(pivot%nBlocks*blockBytes))
					for row := 0; row < 16; row++ {
						e.begin(0)
						e.instr(3)
						// One row = 128B = 2 lines from each block.
						e.load(0x5000, rowOf(pivot%nBlocks, row))
						e.load(0x5004, rowOf(pivot%nBlocks, row)+64)
						e.load(0x5008, rowOf(target%nBlocks, row))
						e.load(0x500c, rowOf(target%nBlocks, row)+64)
						e.instr(16) // 16 fused multiply-subtracts
						e.store(0x5010, rowOf(target%nBlocks, row))
						e.store(0x5014, rowOf(target%nBlocks, row)+64)
						e.instr(1)
						e.branch(0x5030, row < 15)
						e.end(0)
					}
				}
			}
		}
	}}
}

// newFFT models the SPLASH-2 radix-2 FFT: a bit-reversal permutation
// (data-dependent gather) followed by log2(N) butterfly stages whose
// pair distance doubles every stage. Group boundaries, per-stage stride
// changes and the permutation produce a large set of distinct CBWS
// differentials — the case where the paper's 16-entry history table is
// too small and the SMS fallback matters.
func newFFT() trace.Generator {
	return gen{name: "fft-simlarge", body: func(e *emit) {
		const logN = 18 // 4MB of complex doubles: exceeds the 2MB L2
		const n = 1 << logN
		x, y := base(0), base(1)
		const elt = 2 * word // complex double
		rev := func(i int) int {
			r := 0
			for b := 0; b < logN; b++ {
				r = r<<1 | (i>>b)&1
			}
			return r
		}
		// Bit-reversal permutation: sequential store, scattered load.
		for i := 0; i < n; i += 4 {
			e.begin(0)
			e.instr(6)
			for u := 0; u < 4; u++ {
				e.load(0x6000, x+mem.Addr(rev(i+u)*elt))
				e.instr(2)
			}
			e.store(0x6004, y+mem.Addr(i*elt)) // 4 elements: one line
			e.instr(1)
			e.branch(0x6010, i+4 < n)
			e.end(0)
		}
		// Butterfly stages: every stage streams the complete array, so
		// the working set never becomes cache-resident; 4 butterflies
		// per annotated block.
		for s := 0; s < logN; s++ {
			d := 1 << s
			e.instr(120) // twiddle table setup for the stage (non-loop)
			for g := 0; g < n; g += 2 * d {
				for j := g; j < g+d; j += 4 {
					e.begin(1)
					e.instr(3)
					e.load(0x6100, y+mem.Addr(j*elt))
					e.load(0x6104, y+mem.Addr((j+d)*elt))
					e.instr(24) // 4 complex butterflies
					e.store(0x6108, y+mem.Addr(j*elt))
					e.store(0x610c, y+mem.Addr((j+d)*elt))
					e.instr(1)
					e.branch(0x6120, j+4 < g+d)
					e.end(1)
				}
			}
		}
	}}
}

// newMILC models the SU(3) lattice gauge kernel: per site, gather the
// link matrices of the four directions plus the four forward-neighbor
// site matrices. The 4-D lattice gives four constant site strides (1,
// L, L², L³), so the per-site working set is ~13 lines with a
// near-constant differential — the case where CBWS+SMS is the best
// scheme.
func newMILC() trace.Generator {
	return gen{name: "433.milc-su3imp", body: func(e *emit) {
		const l = 24 // 24^4 sites
		const sites = l * l * l * l
		const matBytes = 144 // su3 complex-double 3x3
		links, field, result := base(0), base(1), base(2)
		strides := [4]int{1, l, l * l, l * l * l}
		for sweep := 0; sweep < 2; sweep++ {
			e.instr(300) // gauge action bookkeeping between sweeps
			for s := 0; s < sites; s++ {
				e.begin(0)
				e.instr(5)
				for mu := 0; mu < 4; mu++ {
					// Link matrix of this site/direction: two lines.
					la := links + mem.Addr((s*4+mu)*matBytes)
					e.load(0x7000+uint64(mu)*8, la)
					e.load(0x7004+uint64(mu)*8, la+72)
					// Forward neighbor's field matrix.
					nb := (s + strides[mu]) % sites
					e.load(0x7020+uint64(mu)*8, field+mem.Addr(nb*matBytes))
					e.instr(9) // 3x3 complex multiply-accumulate slice
				}
				e.store(0x7040, result+mem.Addr(s*matBytes))
				e.instr(2)
				e.branch(0x7050, s < sites-1)
				e.end(0)
			}
		}
	}}
}

// newMCF models the network-simplex pricing loop of 429.mcf: arcs are
// scanned sequentially (sorted by tail node, so the tail-node stream
// advances slowly) while head-node accesses scatter within a locality
// window. Every 64 iterations, a basis-tree update walks pointers
// outside any tight loop. The mixed regular/irregular working set is
// why only the loop-aware scheme improves mcf beyond plain streaming.
func newMCF() trace.Generator {
	return gen{name: "429.mcf-ref", body: func(e *emit) {
		const arcs = 1 << 20
		const nodes = 1 << 18
		const arcBytes = 64
		const nodeBytes = 64
		const unroll = 6 // 6 arc lines + tail + 6 head lines = 13-line blocks
		arcArr, nodeArr := base(0), base(1)
		rng := newPRNG(0x3cf2)
		for pass := 0; pass < 8; pass++ {
			for i := 0; i < arcs; i += unroll {
				e.begin(0)
				e.instr(3)
				tail := i / 4 % nodes // arcs sorted by tail: slow advance
				e.load(0x8008, nodeArr+mem.Addr(tail*nodeBytes))
				for u := 0; u < unroll; u++ {
					a := arcArr + mem.Addr((i+u)*arcBytes)
					e.load(0x8000, a) // arc record: one line per arc
					// Head nodes scatter within a 64-node window
					// around the tail (graph locality).
					head := (tail + rng.intn(64) + 1) % nodes
					e.load(0x800c, nodeArr+mem.Addr(head*nodeBytes))
					e.instr(3)
					// Reduced-cost test: data-dependent, poorly
					// predictable.
					e.branch(0x8020, rng.intn(8) == 0)
				}
				e.instr(2)
				e.branch(0x8024, i+unroll < arcs)
				e.end(0)
				if i%(16*unroll) == 0 {
					// Basis-tree update: a pointer walk in a loop too
					// large and branchy to be annotated as tight.
					n := rng.intn(nodes)
					for d := 0; d < 8; d++ {
						e.load(0x8010, nodeArr+mem.Addr(n*nodeBytes)+32)
						e.instr(12)
						n = (n*7 + 13) % nodes
					}
					e.instr(40)
				}
			}
		}
	}}
}

// newSoplex models the sparse LP pricing loops of 450.soplex: iterations
// walk a compressed column, gathering x[idx[k]] through a data-dependent
// index, with a selection branch that skips part of the body — branch
// divergence that misaligns CBWS differentials, the failure mode the
// paper reports for soplex despite its skewed vector distribution.
func newSoplex() trace.Generator {
	return gen{name: "450.soplex-ref", body: func(e *emit) {
		const nnz = 1 << 20
		const vecLen = 1 << 19
		idxArr, valArr, xArr, yArr := base(0), base(1), base(2), base(3)
		rng := newPRNG(0x50137)
		// Column index deltas come from a small set (banded/structured
		// LP matrices), so the differential distribution is skewed as
		// in the paper's Figure 5 — yet prediction still fails because
		// the selection branch diverges the working-set vectors.
		strides := [4]int{8, 8, 136, 1048}
		col := 0
		for k := 0; k < nnz; {
			rowLen := 2 + rng.intn(14)
			e.instr(40) // row setup, pivot selection (non-loop)
			e.load(0x9014, idxArr+mem.Addr(k*f32))
			e.load(0x9018, xArr+mem.Addr(rng.intn(vecLen)*word)) // pivot probe
			for c := 0; c < rowLen && k < nnz; c++ {
				e.begin(0)
				e.instr(2)
				e.load(0x9000, idxArr+mem.Addr(k*f32))  // column index, unit stride
				e.load(0x9004, valArr+mem.Addr(k*word)) // value, unit stride
				col = (col + strides[rng.intn(4)]) % vecLen
				e.load(0x9008, xArr+mem.Addr(col*word)) // banded gather
				e.instr(3)
				sel := rng.intn(100) < 35 // selection: data-dependent
				e.branch(0x9020, sel)
				if sel { // the branch diverges the block
					e.load(0x900c, yArr+mem.Addr(col*word))
					e.instr(2)
					e.store(0x9010, yArr+mem.Addr(col*word))
				}
				e.instr(2)
				e.end(0)
				k++
			}
		}
	}}
}

// newLibquantum models the quantum register sweeps of 462.libquantum:
// a single unit-stride stream over a huge array of 16-byte amplitude
// records, 16 records (4 lines) per unrolled iteration, with a cheap
// bit test per element. Trivially streamable — every prefetcher covers
// it, so the schemes tie.
func newLibquantum() trace.Generator {
	return gen{name: "462.libquantum-ref", body: func(e *emit) {
		const amps = 1 << 21
		const ampBytes = 16
		const unroll = 16 // 4 lines per block
		state := base(0)
		for gate := 0; gate < 4; gate++ {
			target := uint64(10 + gate)
			e.instr(80) // gate decode (non-loop)
			for i := 0; i < amps; i += unroll {
				e.begin(0)
				e.instr(2)
				for u := 0; u < unroll; u += 4 {
					e.load(0xa000, state+mem.Addr((i+u)*ampBytes))
					e.instr(3) // bit tests on 4 amplitudes
					hit := uint64(i+u)&(1<<target) != 0
					e.branch(0xa010, hit)
					if hit {
						e.store(0xa004, state+mem.Addr((i+u)*ampBytes))
					}
				}
				e.instr(2)
				e.end(0)
			}
		}
	}}
}

// newBzip2 models the block-sorting compressor's buffer loops: each
// annotated iteration consumes a variable run of dozens of sequential
// cache lines. Runs regularly exceed the 16-line CBWS trace limit, so
// the CBWS schemes trace only a prefix and land ~5% behind SMS here —
// the overflow case discussed in Section VII-C. Run headers are decoded
// by branchy non-loop code with Huffman table probes.
func newBzip2() trace.Generator {
	return gen{name: "401.bzip2-source", body: func(e *emit) {
		src, dst, huff := base(0), base(1), base(2)
		rng := newPRNG(0xb21b2)
		var srcOff, dstOff mem.Addr
		const total = 1 << 22 // words consumed overall
		consumed := 0
		for consumed < total {
			run := 64 + rng.intn(512) // 8..72 lines per run
			// Run-header decode: non-loop, with Huffman table probes
			// over a table too large to stay resident.
			e.instr(160)
			for h := 0; h < 10; h++ {
				e.load(0xb010, huff+mem.Addr(rng.intn(1<<18)*word))
				e.instr(12)
			}
			e.begin(0)
			e.instr(6)
			for w := 0; w < run; w++ {
				e.load(0xb000, src+srcOff)
				srcOff += word
				e.instr(1)
				emitStore := w%4 == 0
				e.branch(0xb020, emitStore)
				if emitStore {
					e.store(0xb004, dst+dstOff)
					dstOff += word
				}
			}
			e.instr(4)
			e.end(0)
			consumed += run
		}
	}}
}

// newHisto models the Parboil histogram (Figure 16): a sequential image
// stream feeding a data-dependent increment of a large histogram. The
// bin address is a pure function of the input data, so CBWS
// differentials cannot capture it — the paper's example of a pattern
// the scheme cannot detect.
func newHisto() trace.Generator {
	return gen{name: "histo-large", body: func(e *emit) {
		const pixels = 1 << 21
		const bins = 1 << 19 // 4MB histogram: bin traffic misses
		img, histo := base(0), base(1)
		rng := newPRNG(0x815707)
		for i := 0; i < pixels; i++ {
			if i%512 == 0 {
				e.instr(60) // tile decode / bounds bookkeeping
			}
			e.begin(0)
			e.instr(2)
			e.load(0xc000, img+mem.Addr(i*f32))
			v := rng.intn(bins)
			e.instr(1)
			e.load(0xc004, histo+mem.Addr(v*f32)) // histo[value]
			e.branch(0xc010, true)                // saturation test: ~always below max
			e.store(0xc008, histo+mem.Addr(v*f32))
			e.instr(2)
			e.end(0)
		}
	}}
}

// newMRIQ models the Parboil MRI Q kernel: five parallel unit-stride
// sample streams with a long trigonometric computation per element —
// memory-intensive but perfectly regular, with a high compute fraction.
func newMRIQ() trace.Generator {
	return gen{name: "mri-q-large", body: func(e *emit) {
		const samples = 1 << 19
		kx, ky, kz, phiR, phiI, q := base(0), base(1), base(2), base(3), base(4), base(5)
		for pass := 0; pass < 6; pass++ {
			e.instr(150) // voxel setup between passes
			for i := 0; i < samples; i++ {
				e.begin(0)
				e.instr(2)
				e.load(0xd000, kx+mem.Addr(i*f32))
				e.load(0xd004, ky+mem.Addr(i*f32))
				e.load(0xd008, kz+mem.Addr(i*f32))
				e.load(0xd00c, phiR+mem.Addr(i*f32))
				e.load(0xd010, phiI+mem.Addr(i*f32))
				e.instr(18) // sin/cos polynomial
				e.store(0xd014, q+mem.Addr(i*word))
				e.instr(1)
				e.branch(0xd020, i < samples-1)
				e.end(0)
			}
		}
	}}
}

// newLBM models the D3Q19 lattice-Boltzmann kernel: per cell, read the
// 19 distribution values (3 lines) and an obstacle flag, then either
// stream to 19 neighbor offsets or bounce back in place depending on
// the (data-dependent) flag. The two body variants diverge the CBWS
// vectors, which is why the differential schemes trail SMS here.
func newLBM() trace.Generator {
	return gen{name: "lbm-long", body: func(e *emit) {
		const nx, ny, nz = 64, 64, 32
		const cells = nx * ny * nz
		const cellBytes = 19 * word // 152B ≈ 3 lines
		src, dst, flags := base(0), base(1), base(2)
		rng := newPRNG(0x1b4)
		offs := [5]int{1, -1, nx, -nx, nx * ny}
		for sweep := 0; sweep < 16; sweep++ {
			e.instr(120) // boundary condition handling per sweep
			for c := 0; c < cells; c++ {
				e.begin(0)
				e.instr(3)
				ca := src + mem.Addr(c*cellBytes)
				e.load(0xe000, ca)
				e.load(0xe004, ca+64)
				e.load(0xe008, ca+128)
				e.load(0xe00c, flags+mem.Addr(c*f32))
				obstacle := rng.intn(100) < 20
				e.branch(0xe030, obstacle)
				if obstacle {
					// Obstacle: bounce back into the source cell.
					e.instr(4)
					e.store(0xe010, ca)
					e.store(0xe014, ca+64)
				} else {
					// Stream to neighbor cells.
					e.instr(6)
					for d, off := range offs {
						n := c + off
						if n < 0 || n >= cells {
							n = c
						}
						e.store(0xe020+uint64(d)*4, dst+mem.Addr(n*cellBytes))
					}
				}
				e.instr(3)
				e.end(0)
			}
		}
	}}
}

// newStreamcluster models the PARSEC clustering kernel: the innermost
// distance loop walks a point and a candidate center eight dimensions
// (two lines) at a time. Centers are re-drawn (data-dependent) every
// few iterations, so block-to-block differentials jump to fresh random
// values — the many-distinct-vector case where the 16-entry CBWS table
// thrashes and SMS's region footprints win.
func newStreamcluster() trace.Generator {
	return gen{name: "streamcluster-simlarge", body: func(e *emit) {
		const points = 1 << 17
		const dims = 64 // 64 floats = 256B = 4 lines per point
		const ptBytes = dims * f32
		pts, ctrs := base(0), base(1)
		const nCenters = 512
		rng := newPRNG(0x57c)
		for p := 0; p < points; p++ {
			c := rng.intn(nCenters)
			pa := pts + mem.Addr(p*ptBytes)
			ca := ctrs + mem.Addr(c*ptBytes)
			for d := 0; d < dims; d += 8 { // 8 dims (one line pair) per iteration
				e.begin(0)
				e.instr(2)
				e.load(0xf000, pa+mem.Addr(d*f32))
				e.load(0xf004, ca+mem.Addr(d*f32))
				e.instr(10) // 8 squared-diff accumulations
				e.end(0)
			}
			// Assignment bookkeeping: gain tables and member counts,
			// outside the tight distance loop; the min-distance compare
			// is data-dependent.
			e.branch(0xf020, rng.intn(4) == 0)
			e.load(0xf010, ctrs+mem.Addr((nCenters+rng.intn(1024))*ptBytes))
			e.instr(33)
		}
	}}
}

// Quickstart: simulate the Parboil stencil under SMS and under the
// integrated CBWS+SMS prefetcher, and compare the headline metrics —
// the smallest end-to-end use of the public API. The second scheme is
// also run with a time-series probe attached, showing the options API
// and how IPC evolves over the measured window.
package main

import (
	"context"
	"fmt"
	"log"

	"cbws"
)

func main() {
	cfg := cbws.DefaultConfig()
	cfg.MaxInstructions = 2_000_000
	cfg.WarmupInstructions = 500_000

	wl, ok := cbws.WorkloadByName("stencil-default")
	if !ok {
		log.Fatal("stencil workload missing")
	}

	for _, name := range []string{"sms", "cbws+sms"} {
		pf, err := cbws.NewPrefetcher(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := cbws.Run(cfg, wl.Make(), pf)
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		fmt.Printf("%-9s IPC=%.3f  MPKI=%.2f  timely=%.1f%%  mem-traffic=%.1fMB\n",
			res.Prefetcher, m.IPC(), m.MPKI(), 100*m.TimelyFrac(),
			float64(m.BytesFromMem)/(1<<20))
	}

	// The same run, observed: sample the metrics every 250k committed
	// instructions and print per-interval IPC.
	pf, _ := cbws.NewPrefetcher("cbws+sms")
	series := cbws.NewTimeSeries(8)
	if _, err := cbws.RunContext(context.Background(), cfg, wl.Make(), pf,
		cbws.WithProbe(series), cbws.WithSampleInterval(250_000)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncbws+sms IPC over time:")
	for _, p := range series.Points() {
		if p.Final {
			continue // the end-of-run sample repeats the last interval tail
		}
		fmt.Printf("  @%7d instr  interval IPC=%.3f  ROB=%3d  L2-MSHR=%2d\n",
			p.Instructions, p.Interval.IPC(), p.ROBOccupancy, p.L2MSHROccupancy)
	}
}

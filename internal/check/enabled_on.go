//go:build cbwscheck

package check

// enabledDefault is true under the cbwscheck build tag, turning every
// embedded invariant checker on for the whole binary.
const enabledDefault = true

// Command tracegen captures a workload's annotated instruction trace
// into the binary stream format (CBWT), packs traces into the columnar
// corpus format (CBWC), and inspects packed corpora.
//
// Usage:
//
//	tracegen -workload histo-large -n 1000000 -o histo.cbwt
//	tracegen -workload histo-large -stats
//	tracegen pack -workload histo-large -n 1000000 -o histo.cbwc
//	tracegen pack -i histo.cbwt -o histo.cbwc [-compress] [-block-events N]
//	tracegen info histo.cbwc
//
// The first form (no subcommand) is the original stream capture. "pack"
// writes a CBWC corpus either straight from a workload generator or by
// converting an existing CBWT stream file; it prints the corpus content
// address (hex SHA-256), which is what cbwsd job keys absorb. "info"
// prints a corpus's header, column footprint, and content address.
package main

import (
	"flag"
	"fmt"
	"os"

	"cbws/internal/cli"
	"cbws/internal/debugsrv"
	"cbws/internal/trace"
	"cbws/internal/trace/corpus"
	"cbws/internal/workload"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "pack":
			runPack(os.Args[2:])
			return
		case "info":
			runInfo(os.Args[2:])
			return
		}
	}
	runCapture(os.Args[1:])
}

// runCapture is the legacy flag mode: capture a workload into a CBWT
// stream file (or print its summary).
func runCapture(args []string) {
	fs := flag.NewFlagSet("tracegen", flag.ExitOnError)
	wl := fs.String("workload", "stencil-default", "workload name")
	n := fs.Uint64("n", 1_000_000, "instructions to capture")
	out := fs.String("o", "", "output file (default <workload>.cbwt)")
	statsOnly := fs.Bool("stats", false, "print a trace summary instead of writing a file")
	debugAddr := fs.String("debug-addr", "", "serve pprof/expvar diagnostics on this address (e.g. :6060)")
	fs.Parse(args)

	if fs.NArg() > 0 {
		fs.Usage()
		cli.Usagef("tracegen", "unexpected argument %q", fs.Arg(0))
	}
	if *n == 0 {
		fs.Usage()
		cli.Usagef("tracegen", "-n must be positive")
	}

	if *debugAddr != "" {
		addr, err := debugsrv.Serve(*debugAddr)
		if err != nil {
			cli.Errorf("tracegen", "%v", err)
		}
		fmt.Fprintf(os.Stderr, "tracegen: diagnostics on http://%s/debug/pprof/ and /debug/vars\n", addr)
	}

	spec, ok := workload.ByName(*wl)
	if !ok {
		cli.Errorf("tracegen", "unknown workload %q", *wl)
	}
	if *statsOnly {
		trace.Analyze(spec.Make(), *n).Render(os.Stdout)
		return
	}
	path := *out
	if path == "" {
		path = spec.Name + ".cbwt"
	}
	f, err := os.Create(path)
	if err != nil {
		cli.Errorf("tracegen", "%v", err)
	}
	w, err := trace.NewWriter(f, spec.Name)
	if err != nil {
		cli.Errorf("tracegen", "%v", err)
	}
	trace.Limit{Gen: spec.Make(), Max: *n}.Generate(w)
	if err := w.Close(); err != nil {
		cli.Errorf("tracegen", "%v", err)
	}
	if err := f.Close(); err != nil {
		cli.Errorf("tracegen", "%v", err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("wrote %s (%d bytes)\n", path, st.Size())
}

// runPack packs a CBWC corpus from a workload generator (-workload) or
// from an existing CBWT stream file (-i).
func runPack(args []string) {
	fs := flag.NewFlagSet("tracegen pack", flag.ExitOnError)
	wl := fs.String("workload", "", "workload name to capture and pack")
	in := fs.String("i", "", "CBWT stream file to convert instead of capturing a workload")
	n := fs.Uint64("n", 1_000_000, "instructions to capture (with -workload)")
	out := fs.String("o", "", "output file (default <name>.cbwc)")
	blockEvents := fs.Int("block-events", 0, "events per block (0: default granule)")
	compress := fs.Bool("compress", false, "DEFLATE-compress block payloads (smaller file, slower replay)")
	fs.Parse(args)

	if fs.NArg() > 0 {
		fs.Usage()
		cli.Usagef("tracegen", "unexpected argument %q", fs.Arg(0))
	}
	if (*wl == "") == (*in == "") {
		fs.Usage()
		cli.Usagef("tracegen", "pack needs exactly one of -workload or -i")
	}
	opts := corpus.Options{BlockEvents: *blockEvents, Compress: *compress}

	var (
		gen  trace.Generator
		name string
		max  uint64
	)
	if *wl != "" {
		spec, ok := workload.ByName(*wl)
		if !ok {
			cli.Errorf("tracegen", "unknown workload %q", *wl)
		}
		if *n == 0 {
			cli.Usagef("tracegen", "-n must be positive")
		}
		gen, name, max = spec.Make(), spec.Name, *n
	} else {
		tr, err := readStream(*in)
		if err != nil {
			cli.Errorf("tracegen", "%v", err)
		}
		gen, name, max = tr, tr.Name(), 0 // 0: pack the whole stream
	}

	path := *out
	if path == "" {
		path = name + ".cbwc"
	}
	res, err := corpus.Pack(path, gen, max, opts)
	if err != nil {
		cli.Errorf("tracegen", "%v", err)
	}
	fmt.Printf("wrote %s (%d bytes, %d events, %d instructions)\n", path, res.Bytes, res.Events, res.Instructions)
	fmt.Printf("sha256 %s\n", res.Hash)
}

// readStream decodes a whole CBWT file into memory. Corpus packing
// needs the trace name before the first event, and the decoded trace
// doubles as the generator to pack.
func readStream(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return nil, err
	}
	tr := trace.New(r.Name())
	if err := r.Decode(tr); err != nil {
		return nil, err
	}
	return tr, nil
}

// runInfo prints a packed corpus's header fields, per-column footprint,
// and content address.
func runInfo(args []string) {
	fs := flag.NewFlagSet("tracegen info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		cli.Usagef("tracegen", "info needs exactly one corpus file")
	}
	path := fs.Arg(0)
	c, err := corpus.Open(path, corpus.OpenOptions{})
	if err != nil {
		cli.Errorf("tracegen", "%v", err)
	}
	defer c.Close()
	hash, err := c.Hash()
	if err != nil {
		cli.Errorf("tracegen", "%v", err)
	}
	fmt.Printf("name         %s\n", c.Name())
	fmt.Printf("events       %d\n", c.Events())
	fmt.Printf("instructions %d\n", c.Instructions())
	fmt.Printf("blocks       %d (granule %d events)\n", c.Blocks(), c.BlockEvents())
	fmt.Printf("compressed   %v\n", c.Compressed())
	fmt.Printf("size         %d bytes (%.2f B/event)\n", c.Size(), float64(c.Size())/float64(max64(c.Events(), 1)))
	cols := c.ColumnBytes()
	for i, label := range [...]string{"kinds", "pc", "addr", "n", "block", "taken"} {
		fmt.Printf("col %-8s %d bytes\n", label, cols[i])
	}
	fmt.Printf("sha256       %s\n", hash)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

package branch

import (
	"math/rand"
	"testing"
)

func mustNew(t *testing.T, cfg Config) *Tournament {
	t.Helper()
	bp, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return bp
}

func TestDefaultsMatchTableII(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Entries != 4096 || cfg.HistoryBits != 11 || cfg.TagBits != 16 {
		t.Errorf("defaults = %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Entries: 0, HistoryBits: 11},
		{Entries: 3000, HistoryBits: 11}, // not a power of two
		{Entries: 1024, HistoryBits: 0},
		{Entries: 1024, HistoryBits: 40},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should not validate", c)
		}
	}
}

func TestAlwaysTakenLearned(t *testing.T) {
	bp := mustNew(t, Config{})
	for i := 0; i < 64; i++ {
		bp.Update(0x400100, true)
	}
	if !bp.Predict(0x400100) {
		t.Error("always-taken branch not learned")
	}
	if r := bp.Stats.Rate(); r > 0.2 {
		t.Errorf("mispredict rate %.2f for an always-taken branch", r)
	}
}

func TestAlternatingPatternLearned(t *testing.T) {
	// T,N,T,N...: local history captures it after warmup.
	bp := mustNew(t, Config{})
	for i := 0; i < 64; i++ {
		bp.Update(0x400200, i%2 == 0)
	}
	warm := bp.Stats
	for i := 64; i < 192; i++ {
		bp.Update(0x400200, i%2 == 0)
	}
	late := bp.Stats.Mispredicts - warm.Mispredicts
	if late > 8 {
		t.Errorf("%d mispredicts after warmup on an alternating branch", late)
	}
}

func TestShortPeriodicPatternLearned(t *testing.T) {
	// Period-4 pattern (bzip2's w%4 branch).
	bp := mustNew(t, Config{})
	for i := 0; i < 128; i++ {
		bp.Update(0x400300, i%4 == 0)
	}
	warm := bp.Stats
	for i := 128; i < 512; i++ {
		bp.Update(0x400300, i%4 == 0)
	}
	late := bp.Stats.Mispredicts - warm.Mispredicts
	if float64(late)/384 > 0.1 {
		t.Errorf("%d/384 mispredicts on a period-4 branch", late)
	}
}

func TestLoopBackEdge(t *testing.T) {
	// Taken 99 times, not-taken once (loop exit), repeatedly: the only
	// inherent mispredict per loop execution is around the exit.
	bp := mustNew(t, Config{})
	for rep := 0; rep < 20; rep++ {
		for i := 0; i < 99; i++ {
			bp.Update(0x400400, true)
		}
		bp.Update(0x400400, false)
	}
	if r := bp.Stats.Rate(); r > 0.05 {
		t.Errorf("mispredict rate %.3f on a loop back edge", r)
	}
}

func TestRandomBranchNearChance(t *testing.T) {
	bp := mustNew(t, Config{})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20000; i++ {
		bp.Update(0x400500, rng.Intn(2) == 0)
	}
	r := bp.Stats.Rate()
	if r < 0.35 || r > 0.65 {
		t.Errorf("mispredict rate %.3f on a random branch, want ~0.5", r)
	}
}

func TestBiasedBranch(t *testing.T) {
	// 90% taken: rate should approach ~10%.
	bp := mustNew(t, Config{})
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 20000; i++ {
		bp.Update(0x400600, rng.Intn(10) != 0)
	}
	if r := bp.Stats.Rate(); r > 0.2 {
		t.Errorf("mispredict rate %.3f on a 90%%-biased branch", r)
	}
}

func TestIndependentPCs(t *testing.T) {
	// Two anti-correlated branches at different PCs must both be
	// learned (no destructive aliasing for this pair).
	bp := mustNew(t, Config{})
	for i := 0; i < 2000; i++ {
		bp.Update(0x400700, true)
		bp.Update(0x500704, false)
	}
	if !bp.Predict(0x400700) || bp.Predict(0x500704) {
		t.Error("per-PC behaviour not separated")
	}
}

func TestPredictDoesNotMutate(t *testing.T) {
	bp := mustNew(t, Config{})
	for i := 0; i < 32; i++ {
		bp.Update(0x400800, true)
	}
	before := bp.Stats
	for i := 0; i < 100; i++ {
		bp.Predict(0x400800)
	}
	if bp.Stats != before {
		t.Error("Predict changed state")
	}
}

func TestReset(t *testing.T) {
	bp := mustNew(t, Config{})
	for i := 0; i < 100; i++ {
		bp.Update(0x400900, true)
	}
	bp.Reset()
	if bp.Stats.Lookups != 0 {
		t.Error("stats survived reset")
	}
}

func TestStorageBits(t *testing.T) {
	bp := mustNew(t, Config{})
	// 3 tables × 2 bits × 4096 + 11 × 4096 + 16 × 4096.
	want := uint64(3*2*4096 + 11*4096 + 16*4096)
	if got := bp.StorageBits(); got != want {
		t.Errorf("StorageBits = %d, want %d", got, want)
	}
}

func TestRateZeroLookups(t *testing.T) {
	var s Stats
	if s.Rate() != 0 {
		t.Error("rate of zero lookups")
	}
}

package check_test

import (
	"testing"

	"cbws/internal/check"
	"cbws/internal/mem"
	"cbws/internal/prefetch"
	"cbws/internal/prefetch/learned"
	"cbws/internal/trace"
	"cbws/internal/workload"
)

// learnedFuzzConfigs returns the matched production/reference pair the
// learned fuzz targets run under: small tables so aliasing, queue
// churn and table eviction trigger within fuzzer-sized inputs.
func learnedPythiaFuzzPair() (*learned.Pythia, *check.RefPythia) {
	actions := []int8{0, 1, -1, 2, 8}
	p := learned.NewPythia(learned.PythiaConfig{
		Actions: actions, Feature1Entries: 64, Feature2Entries: 32,
		DeltaHistory: 2, EQSize: 8, QBits: 8,
		AlphaShift: 2, GammaShift: 1, EpsilonShift: 3, TimelyAge: 3,
		RewardAccurateTimely: 20, RewardAccurateLate: 12, RewardInaccurate: -14,
		RewardNoPrefGood: 12, RewardNoPrefBad: -4})
	ref := check.NewRefPythia(check.RefPythiaConfig{
		Actions: actions, Feature1Entries: 64, Feature2Entries: 32,
		DeltaHistory: 2, EQSize: 8, QBits: 8,
		AlphaShift: 2, GammaShift: 1, EpsilonShift: 3, TimelyAge: 3,
		RewardAccurateTimely: 20, RewardAccurateLate: 12, RewardInaccurate: -14,
		RewardNoPrefGood: 12, RewardNoPrefBad: -4})
	return p, ref
}

func learnedGazeFuzzPair() (*learned.Gaze, *check.RefGaze) {
	g := learned.NewGaze(learned.GazeConfig{RegionBytes: 1024, ActiveEntries: 4,
		PatternEntries: 16, OrderLines: 4, ConfMax: 2, ConfThreshold: 1})
	ref := check.NewRefGaze(check.RefGazeConfig{RegionBytes: 1024, ActiveEntries: 4,
		PatternEntries: 16, OrderLines: 4, ConfMax: 2, ConfThreshold: 1})
	return g, ref
}

// decodeLearnedAccess turns one 3-byte fuzz record into an access: the
// op byte selects PC and hit flags, the remaining two bytes the line.
func decodeLearnedAccess(op, hi, lo byte) prefetch.Access {
	line := mem.LineAddr(uint64(hi)<<8 | uint64(lo))
	a := prefetch.Access{
		PC:   0x400000 + uint64(op&0x07)*0x40,
		Line: line,
		Addr: line.Byte(),
	}
	switch {
	case op&0x08 != 0:
		a.HitL1 = true
	case op&0x40 != 0:
		a.HitL2 = true
	}
	if op&0x10 != 0 {
		a.PfHit = true
	}
	return a
}

// kernelSeed encodes a prefix of a real kernel's demand stream in the
// learned fuzz record format, so coverage-guided mutation starts from
// genuine loop access patterns rather than noise.
func kernelSeed(name string, records int) []byte {
	spec, ok := workload.ByName(name)
	if !ok {
		panic("unknown workload " + name)
	}
	tr := trace.Capture(trace.Limit{Gen: spec.Make(), Max: uint64(records) * 8})
	out := make([]byte, 0, records*3)
	for _, e := range tr.Events {
		if e.Kind != trace.Load && e.Kind != trace.Store {
			continue
		}
		line := mem.LineOf(e.Addr)
		op := byte(e.PC>>4) & 0x07
		out = append(out, op, byte(uint64(line)>>8), byte(line))
		if len(out) >= records*3 {
			break
		}
	}
	return out
}

// FuzzPythiaVsRef drives fuzzer-shaped access streams (seeded from
// real kernel traces) through the production Pythia-style agent and
// the naive reference, comparing the issued prefetch stream after
// every event plus final statistics.
func FuzzPythiaVsRef(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x00, 0x00, 0x01, 0x01, 0x00, 0x01, 0x02, 0x00, 0x01, 0x03})
	f.Add(kernelSeed("stencil-default", 512))
	f.Add(kernelSeed("429.mcf-ref", 512))

	f.Fuzz(func(t *testing.T, data []byte) {
		prev := check.Enabled
		check.Enabled = true
		defer func() { check.Enabled = prev }()

		p, ref := learnedPythiaFuzzPair()
		var gotIssued, wantIssued []mem.LineAddr
		issueGot := func(l mem.LineAddr) { gotIssued = append(gotIssued, l) }
		issueWant := func(l mem.LineAddr) { wantIssued = append(wantIssued, l) }

		feed := &byteFeed{data: data}
		for i := 0; i < len(data)/3; i++ {
			a := decodeLearnedAccess(feed.next(), feed.next(), feed.next())
			p.OnAccess(a, issueGot)
			ref.OnAccess(a, issueWant)
			if len(gotIssued) != len(wantIssued) {
				t.Fatalf("op %d: issued %d prefetches, ref issued %d",
					i, len(gotIssued), len(wantIssued))
			}
			for j := range gotIssued {
				if gotIssued[j] != wantIssued[j] {
					t.Fatalf("op %d: prefetch %d diverged: real %v, ref %v",
						i, j, gotIssued[j], wantIssued[j])
				}
			}
			gotIssued, wantIssued = gotIssued[:0], wantIssued[:0]
		}
		if got := learnedPythiaStats(p.Stats); got != ref.Stats {
			t.Fatalf("stats diverged:\n real %+v\n  ref %+v", got, ref.Stats)
		}
	})
}

// FuzzGazeVsRef drives fuzzer-shaped access/eviction streams (seeded
// from real kernel traces) through the production Gaze-style
// prefetcher and the naive reference, comparing the issued prefetch
// stream after every event plus final statistics.
func FuzzGazeVsRef(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x03, 0x20, 0x00, 0x00, 0x00, 0x00, 0x10})
	f.Add(kernelSeed("stencil-default", 512))
	f.Add(kernelSeed("462.libquantum-ref", 512))

	f.Fuzz(func(t *testing.T, data []byte) {
		prev := check.Enabled
		check.Enabled = true
		defer func() { check.Enabled = prev }()

		g, ref := learnedGazeFuzzPair()
		var gotIssued, wantIssued []mem.LineAddr
		issueGot := func(l mem.LineAddr) { gotIssued = append(gotIssued, l) }
		issueWant := func(l mem.LineAddr) { wantIssued = append(wantIssued, l) }

		feed := &byteFeed{data: data}
		for i := 0; i < len(data)/3; i++ {
			op, hi, lo := feed.next(), feed.next(), feed.next()
			if op&0x20 != 0 { // eviction record: close the region's generation
				line := mem.LineAddr(uint64(hi)<<8 | uint64(lo))
				g.OnCacheEvict(line)
				ref.OnCacheEvict(line)
				continue
			}
			a := decodeLearnedAccess(op, hi, lo)
			g.OnAccess(a, issueGot)
			ref.OnAccess(a, issueWant)
			if len(gotIssued) != len(wantIssued) {
				t.Fatalf("op %d: issued %d prefetches, ref issued %d",
					i, len(gotIssued), len(wantIssued))
			}
			for j := range gotIssued {
				if gotIssued[j] != wantIssued[j] {
					t.Fatalf("op %d: prefetch %d diverged: real %v, ref %v",
						i, j, gotIssued[j], wantIssued[j])
				}
			}
			gotIssued, wantIssued = gotIssued[:0], wantIssued[:0]
		}
		if got := learnedGazeStats(g.Stats); got != ref.Stats {
			t.Fatalf("stats diverged:\n real %+v\n  ref %+v", got, ref.Stats)
		}
	})
}

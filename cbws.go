// Package cbws is a from-scratch reproduction of the code block working
// set (CBWS) prefetcher of Fuchs, Mannor, Weiser and Etsion,
// "Loop-Aware Memory Prefetching Using Code Block Working Sets",
// MICRO 2014.
//
// The package provides the paper's complete experimental apparatus as a
// library:
//
//   - a trace-driven out-of-order core and two-level cache hierarchy
//     matching the paper's Table II configuration;
//   - the CBWS prefetcher itself (sub-1KB hardware budget, 16-line
//     working-set vectors, 4-step differential prediction, 16-entry
//     history table) plus the CBWS+SMS integration;
//   - the four baseline prefetchers it is evaluated against: stride,
//     GHB G/DC, GHB PC/DC and spatial memory streaming (SMS), plus
//     extension baselines (AMPM, Markov) and two learned baselines — a
//     Pythia-style online-RL prefetcher and a Gaze-style spatial
//     prefetcher — from the related work;
//   - 30 workload emulations standing in for the paper's SPEC CPU2006 /
//     PARSEC / SPLASH / Rodinia / Parboil benchmarks;
//   - a mini-IR with an automatic innermost-tight-loop annotation pass,
//     reproducing the paper's LLVM-based BLOCK_BEGIN/BLOCK_END
//     instrumentation.
//
// Quick start — prefetchers are constructed by name from the scheme
// registry, and runs go through the context-aware entry point, which
// accepts functional options for observability:
//
//	cfg := cbws.DefaultConfig()
//	cfg.MaxInstructions = 2_000_000
//	wl, _ := cbws.WorkloadByName("stencil-default")
//	pf, _ := cbws.NewPrefetcher("cbws+sms")
//
//	series := cbws.NewTimeSeries(64)
//	res, err := cbws.RunContext(ctx, cfg, wl.Make(), pf,
//	    cbws.WithProbe(series),
//	    cbws.WithSampleInterval(100_000))
//	fmt.Println(res.Metrics.IPC(), res.Metrics.MPKI())
//	for _, p := range series.Points() {
//	    fmt.Println(p.Instructions, p.Interval.IPC()) // IPC over time
//	}
//
// Cancelling ctx aborts the simulation promptly (checked at trace batch
// boundaries) and returns ctx.Err(). cbws.Run is shorthand for
// RunContext with a background context and no options, and
// cbws.Prefetchers lists every registered scheme name.
//
// The cmd/figures binary regenerates every table and figure of the
// paper's evaluation (with -obs-dir it also writes per-cell run records
// and time-series files); cmd/cbwsim simulates a single workload ×
// prefetcher pair (-obs writes its run record); cmd/tracegen captures
// annotated traces to disk. All CLIs serve pprof and expvar diagnostics
// under an opt-in -debug-addr flag.
package cbws

import (
	"context"

	"cbws/internal/core"
	"cbws/internal/prefetch"
	"cbws/internal/registry"
	"cbws/internal/sim"
	"cbws/internal/stats"
	"cbws/internal/trace"
	"cbws/internal/workload"
)

// Config is the full simulated-system configuration (core, memory
// hierarchy, instruction window).
type Config = sim.Config

// Result is the outcome of one simulation run.
type Result = sim.Result

// Metrics are the measured counters and derived statistics of a run.
type Metrics = stats.Metrics

// Prefetcher is a hardware prefetching scheme.
type Prefetcher = prefetch.Prefetcher

// Workload generates a committed-instruction trace.
type Workload = trace.Generator

// WorkloadSpec names and constructs one benchmark emulation.
type WorkloadSpec = workload.Spec

// CBWSConfig parametrizes the CBWS prefetcher hardware; its zero value
// uses the paper's sub-1KB configuration.
type CBWSConfig = core.Config

// Option configures a RunContext run (WithProbe, WithSampleInterval,
// WithProgress).
type Option = sim.Option

// Probe observes a run as it executes; see RunContext and WithProbe.
type Probe = sim.Probe

// Sample is one probe observation: interval and cumulative metrics plus
// ROB/MSHR occupancy. The pointer handed to a Probe is reused between
// samples and must not be retained.
type Sample = sim.Sample

// SamplePoint is the retained, serializable form of one sample.
type SamplePoint = sim.SamplePoint

// TimeSeries is a Probe recording every sample as a SamplePoint.
type TimeSeries = sim.TimeSeries

// DefaultConfig returns the paper's Table II system: a 4-wide, 128-entry
// ROB core with a 32KB 4-way L1D, an inclusive 2MB 8-way L2 and a
// 300-cycle memory.
func DefaultConfig() Config { return sim.DefaultConfig() }

// Run simulates workload wl on the configured system under prefetcher
// pf and returns the collected metrics. It is RunContext with a
// background context and no options.
func Run(cfg Config, wl Workload, pf Prefetcher) (Result, error) {
	return RunContext(context.Background(), cfg, wl, pf)
}

// RunContext simulates workload wl on the configured system under
// prefetcher pf. Cancelling ctx aborts the run promptly (checked at
// trace batch boundaries) and returns ctx.Err(). Options attach
// observability: WithProbe samples full metrics plus ROB/MSHR occupancy
// every WithSampleInterval committed instructions, and WithProgress
// reports the committed instruction count at the same cadence.
func RunContext(ctx context.Context, cfg Config, wl Workload, pf Prefetcher, opts ...Option) (Result, error) {
	return sim.RunContext(ctx, cfg, wl, pf, opts...)
}

// WithProbe attaches p to a RunContext run.
func WithProbe(p Probe) Option { return sim.WithProbe(p) }

// WithSampleInterval sets the probe/progress sampling period in
// committed instructions (default sim.DefaultSampleInterval).
func WithSampleInterval(n uint64) Option { return sim.WithSampleInterval(n) }

// WithProgress attaches a progress callback invoked with the total
// committed instruction count every sample interval.
func WithProgress(fn func(instructions uint64)) Option { return sim.WithProgress(fn) }

// NewTimeSeries returns a TimeSeries probe with room for capacity
// samples before its backing array has to grow.
func NewTimeSeries(capacity int) *TimeSeries { return sim.NewTimeSeries(capacity) }

// Prefetchers returns the names of every registered prefetching scheme,
// evaluated roster first ("none" … "cbws+sms"), then the extension
// baselines ("ampm", "markov"). Each name constructs via NewPrefetcher.
func Prefetchers() []string { return registry.Names() }

// NewPrefetcher constructs a registered scheme by name. Unknown names
// return an error listing the valid ones.
func NewPrefetcher(name string) (Prefetcher, error) { return registry.New(name) }

// NewCBWS builds the paper's CBWS prefetcher. A zero-value config uses
// the paper's parameters (16-line vectors, 4 steps, 16-entry table).
// For the registry-equivalent default configuration use
// NewPrefetcher("cbws"); NewCBWS remains for custom CBWSConfig values.
func NewCBWS(cfg CBWSConfig) *core.Prefetcher { return core.New(cfg) }

// NewCBWSPlusSMS builds the integrated CBWS+SMS prefetcher — the paper's
// best-performing configuration.
//
// Deprecated: use NewPrefetcher("cbws+sms").
func NewCBWSPlusSMS() Prefetcher { return mustNew("cbws+sms") }

// NewSMS builds the spatial memory streaming baseline.
//
// Deprecated: use NewPrefetcher("sms").
func NewSMS() Prefetcher { return mustNew("sms") }

// NewStride builds the 256-stream stride baseline.
//
// Deprecated: use NewPrefetcher("stride").
func NewStride() Prefetcher { return mustNew("stride") }

// NewGHBPCDC builds the GHB PC/DC baseline.
//
// Deprecated: use NewPrefetcher("ghb-pc/dc").
func NewGHBPCDC() Prefetcher { return mustNew("ghb-pc/dc") }

// NewGHBGDC builds the GHB G/DC baseline.
//
// Deprecated: use NewPrefetcher("ghb-g/dc").
func NewGHBGDC() Prefetcher { return mustNew("ghb-g/dc") }

// NewNone builds the no-prefetching baseline.
//
// Deprecated: use NewPrefetcher("none").
func NewNone() Prefetcher { return mustNew("none") }

// mustNew resolves a name known to be registered.
func mustNew(name string) Prefetcher {
	p, err := registry.New(name)
	if err != nil {
		panic(err) // unreachable: the wrappers only pass registered names
	}
	return p
}

// Workloads returns all 30 benchmark emulations.
func Workloads() []WorkloadSpec { return workload.All() }

// MemoryIntensiveWorkloads returns the paper's Table IV group.
func MemoryIntensiveWorkloads() []WorkloadSpec { return workload.MemoryIntensive() }

// WorkloadByName looks up a benchmark emulation by its paper name
// (e.g. "stencil-default", "429.mcf-ref").
func WorkloadByName(name string) (WorkloadSpec, bool) { return workload.ByName(name) }

package core

import (
	"math"
	"testing"

	"cbws/internal/mem"
	"cbws/internal/trace"
)

// feedBlocks runs block instances through a census.
func feedBlocks(c *Census, id int, blocks [][]mem.LineAddr) {
	for _, b := range blocks {
		c.Consume(trace.Event{Kind: trace.BlockBegin, Block: id})
		for _, l := range b {
			c.Consume(trace.Event{Kind: trace.Load, PC: 1, Addr: l.Byte()})
		}
		c.Consume(trace.Event{Kind: trace.BlockEnd, Block: id})
	}
}

func TestCensusSingleVector(t *testing.T) {
	c := NewCensus(16)
	var blocks [][]mem.LineAddr
	for n := 0; n < 11; n++ {
		blocks = append(blocks, []mem.LineAddr{
			mem.LineAddr(100 + 7*n),
			mem.LineAddr(5000 + 7*n),
		})
	}
	feedBlocks(c, 0, blocks)
	if c.DistinctVectors() != 1 {
		t.Fatalf("distinct = %d, want 1", c.DistinctVectors())
	}
	if c.Iterations() != 10 {
		t.Errorf("iterations = %d, want 10", c.Iterations())
	}
	if got := c.CoverageAt(0.01); got != 1.0 {
		t.Errorf("CoverageAt(0.01) = %v, want 1.0", got)
	}
}

func TestCensusSkewedDistribution(t *testing.T) {
	c := NewCensus(16)
	var blocks [][]mem.LineAddr
	// 90 constant-stride iterations plus 10 with unique strides.
	for n := 0; n < 91; n++ {
		blocks = append(blocks, []mem.LineAddr{mem.LineAddr(1000 + 3*n)})
	}
	feedBlocks(c, 0, blocks)
	base := mem.LineAddr(1_000_000)
	for n := 0; n < 10; n++ {
		base = base.Add(int64(1000 + n*137))
		blocks = [][]mem.LineAddr{{base}}
		feedBlocks(c, 0, blocks)
	}
	if c.DistinctVectors() < 10 {
		t.Fatalf("distinct = %d", c.DistinctVectors())
	}
	// The top vector alone (~1/12 of distinct) covers ~90%.
	if got := c.CoverageAt(0.1); got < 0.85 {
		t.Errorf("CoverageAt(0.1) = %v, want >= 0.85", got)
	}
	// The full set covers everything.
	if got := c.CoverageAt(1.0); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("CoverageAt(1.0) = %v", got)
	}
}

func TestCensusCoverageCurveMonotone(t *testing.T) {
	c := NewCensus(16)
	var blocks [][]mem.LineAddr
	for n := 0; n < 200; n++ {
		stride := int64(3 + n%7)
		blocks = append(blocks, []mem.LineAddr{mem.LineAddr(1000).Add(stride * int64(n))})
	}
	feedBlocks(c, 0, blocks)
	curve := c.Coverage()
	if len(curve) == 0 {
		t.Fatal("empty curve")
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].IterationFrac < curve[i-1].IterationFrac ||
			curve[i].VectorFrac < curve[i-1].VectorFrac {
			t.Fatalf("curve not monotone at %d: %+v %+v", i, curve[i-1], curve[i])
		}
	}
	last := curve[len(curve)-1]
	if math.Abs(last.VectorFrac-1) > 1e-9 || math.Abs(last.IterationFrac-1) > 1e-9 {
		t.Errorf("curve does not end at (1,1): %+v", last)
	}
}

func TestCensusPerBlockSeparation(t *testing.T) {
	c := NewCensus(16)
	// Two interleaved static blocks with different strides: each keeps
	// its own previous-CBWS context.
	for n := 0; n < 10; n++ {
		feedBlocks(c, 0, [][]mem.LineAddr{{mem.LineAddr(100 + 5*n)}})
		feedBlocks(c, 1, [][]mem.LineAddr{{mem.LineAddr(90000 + 11*n)}})
	}
	// Each block's differential is constant, so exactly 2 distinct
	// vectors exist (one per block).
	if got := c.DistinctVectors(); got != 2 {
		t.Errorf("distinct = %d, want 2", got)
	}
}

func TestCensusEmpty(t *testing.T) {
	c := NewCensus(0)
	if c.Coverage() != nil || c.CoverageAt(0.5) != 0 {
		t.Error("empty census should have no coverage")
	}
}

func TestCensusIgnoresOutsideBlocks(t *testing.T) {
	c := NewCensus(16)
	c.Consume(trace.Event{Kind: trace.Load, PC: 1, Addr: 0x4000})
	if c.Iterations() != 0 || c.DistinctVectors() != 0 {
		t.Error("accesses outside blocks were counted")
	}
}

package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"cbws/internal/mem"
)

// Summary characterizes a trace: event mix, footprint, access-pattern
// statistics and annotated-block structure. It powers `tracegen -stats`
// and the workload test suite's structural checks.
type Summary struct {
	Name string

	Instructions uint64
	Loads        uint64
	Stores       uint64
	Branches     uint64
	BranchTaken  uint64
	Blocks       uint64

	UniqueLines int
	UniquePCs   int

	// FootprintBytes is UniqueLines × the line size.
	FootprintBytes uint64

	// BlockSizes is the distribution of unique lines per dynamic block
	// (bucketed: 1,2,..,16,>16).
	BlockSizes map[int]uint64

	// TopStrides lists the most frequent per-PC line strides.
	TopStrides []StrideCount

	// Regions2KB counts distinct 2KB regions touched.
	Regions2KB int
}

// StrideCount is one entry of the stride histogram.
type StrideCount struct {
	Stride int64
	Count  uint64
}

// analyzer implements Sink.
type analyzer struct {
	s       Summary
	lines   map[mem.LineAddr]struct{}
	regions map[mem.Region]struct{}
	lastPC  map[uint64]mem.LineAddr
	strides map[int64]uint64
	rc      mem.RegionConfig

	inBlock  bool
	curLines map[mem.LineAddr]struct{}
}

// Analyze consumes up to max instructions of gen and summarizes them.
func Analyze(gen Generator, max uint64) *Summary {
	a := &analyzer{
		lines:   make(map[mem.LineAddr]struct{}),
		regions: make(map[mem.Region]struct{}),
		lastPC:  make(map[uint64]mem.LineAddr),
		strides: make(map[int64]uint64),
		rc:      mem.RegionConfig{SizeBytes: 2 << 10},
	}
	a.s.Name = gen.Name()
	a.s.BlockSizes = make(map[int]uint64)
	src := Generator(gen)
	if max > 0 {
		src = Limit{Gen: gen, Max: max}
	}
	DriveBatches(src, a)
	a.finish()
	return &a.s
}

// ConsumeBatch implements BatchSink so batched generators feed the
// analyzer without a per-event adapter.
func (a *analyzer) ConsumeBatch(batch []Event) bool {
	for i := range batch {
		a.Consume(batch[i])
	}
	return true
}

func (a *analyzer) Consume(e Event) {
	a.s.Instructions += uint64(e.Count())
	switch e.Kind {
	case Load, Store:
		if e.Kind == Load {
			a.s.Loads++
		} else {
			a.s.Stores++
		}
		l := mem.LineOf(e.Addr)
		a.lines[l] = struct{}{}
		a.regions[a.rc.RegionOf(e.Addr)] = struct{}{}
		if last, ok := a.lastPC[e.PC]; ok {
			a.strides[l.Delta(last)]++
		}
		a.lastPC[e.PC] = l
		if a.inBlock {
			a.curLines[l] = struct{}{}
		}
	case Branch:
		a.s.Branches++
		if e.Taken {
			a.s.BranchTaken++
		}
	case BlockBegin:
		a.inBlock = true
		a.curLines = make(map[mem.LineAddr]struct{}, 16)
	case BlockEnd:
		if a.inBlock {
			a.inBlock = false
			a.s.Blocks++
			n := len(a.curLines)
			if n > 16 {
				n = 17 // ">16" bucket
			}
			a.s.BlockSizes[n]++
		}
	}
}

func (a *analyzer) finish() {
	a.s.UniqueLines = len(a.lines)
	a.s.UniquePCs = len(a.lastPC)
	a.s.FootprintBytes = uint64(len(a.lines)) * mem.LineSize
	a.s.Regions2KB = len(a.regions)
	for st, n := range a.strides {
		a.s.TopStrides = append(a.s.TopStrides, StrideCount{Stride: st, Count: n})
	}
	sort.Slice(a.s.TopStrides, func(i, j int) bool {
		return a.s.TopStrides[i].Count > a.s.TopStrides[j].Count
	})
	if len(a.s.TopStrides) > 8 {
		a.s.TopStrides = a.s.TopStrides[:8]
	}
}

// BlocksWithin reports the fraction of dynamic blocks whose working set
// fits in maxLines cache lines (the paper sizes the CBWS buffer from
// this statistic: 16 lines cover >98% of blocks).
func (s *Summary) BlocksWithin(maxLines int) float64 {
	if s.Blocks == 0 {
		return 0
	}
	var within uint64
	for size, n := range s.BlockSizes {
		if size <= maxLines {
			within += n
		}
	}
	return float64(within) / float64(s.Blocks)
}

// Render writes a human-readable report.
func (s *Summary) Render(w io.Writer) {
	fmt.Fprintf(w, "trace %q\n", s.Name)
	fmt.Fprintf(w, "  instructions   %d\n", s.Instructions)
	fmt.Fprintf(w, "  loads          %d\n", s.Loads)
	fmt.Fprintf(w, "  stores         %d\n", s.Stores)
	if s.Branches > 0 {
		fmt.Fprintf(w, "  branches       %d (%.1f%% taken)\n",
			s.Branches, 100*float64(s.BranchTaken)/float64(s.Branches))
	}
	fmt.Fprintf(w, "  blocks         %d\n", s.Blocks)
	fmt.Fprintf(w, "  unique PCs     %d\n", s.UniquePCs)
	fmt.Fprintf(w, "  footprint      %d lines (%.1f KB) in %d 2KB regions\n",
		s.UniqueLines, float64(s.FootprintBytes)/1024, s.Regions2KB)
	if s.Blocks > 0 {
		fmt.Fprintf(w, "  blocks <= 16 lines: %.1f%%\n", 100*s.BlocksWithin(16))
	}
	if len(s.TopStrides) > 0 {
		var parts []string
		for _, sc := range s.TopStrides {
			parts = append(parts, fmt.Sprintf("%+d×%d", sc.Stride, sc.Count))
		}
		fmt.Fprintf(w, "  top per-PC line strides: %s\n", strings.Join(parts, ", "))
	}
}

// String renders to a string.
func (s *Summary) String() string {
	var b strings.Builder
	s.Render(&b)
	return b.String()
}

package determinism

import (
	"math/rand"
	"sort"
)

func seeded() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(6)
}

func stable(xs []int) {
	sort.SliceStable(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// appendThenSort is the sanctioned extract-sort-iterate pattern: map
// order leaks into the slice but the sort restores a canonical order.
func appendThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// commutative effects (counting, summing) are order-insensitive.
func totals(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

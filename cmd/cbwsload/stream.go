package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	apiv1 "cbws/api/v1"
	"cbws/internal/cluster"
	"cbws/internal/mem"
	"cbws/internal/trace"
)

// streamReport is the streaming-phase section of the load report.
type streamReport struct {
	Streams              int     `json:"streams"`
	Tenants              int     `json:"tenants"`
	Completed            int64   `json:"completed"`
	StreamsRejectedQuota int64   `json:"streams_rejected_quota"`
	StreamErrors         int64   `json:"stream_errors"`
	BytesSent            int64   `json:"bytes_sent"`
	ChunkAcks            int     `json:"chunk_acks"`
	ChunkAckLatency      latency `json:"chunk_ack_latency_ms"`
}

// syntheticTrace renders a deterministic CBWT trace: a tight annotated
// loop of strided loads, the shape the CBWS prefetcher is built for.
// Every caller with the same arguments gets identical bytes, so
// concurrent streams of the same workload converge on one
// content-addressed result.
func syntheticTrace(name string, instructions uint64) ([]byte, error) {
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, name)
	if err != nil {
		return nil, err
	}
	pc := uint64(0x400000)
	addr := uint64(0x1000_0000)
	var done uint64
	for done < instructions {
		w.Consume(trace.Event{Kind: trace.BlockBegin, Block: 1})
		for i := 0; i < 16; i++ {
			w.Consume(trace.Event{Kind: trace.Load, PC: pc, Addr: mem.Addr(addr)})
			w.Consume(trace.Event{Kind: trace.Instr, N: 8})
			addr += 64
			done += 9
		}
		w.Consume(trace.Event{Kind: trace.Branch, PC: pc + 0x80, Taken: true})
		w.Consume(trace.Event{Kind: trace.BlockEnd, Block: 1})
		done += 3
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// fireStreams runs the streaming phase: `streams` streams spread over
// `tenants` quota accounts, fed from `concurrency` goroutines through
// the first fleet worker. Opens are single-attempt — a 429 is counted
// as a quota rejection, not slept out — because the point of the phase
// is to measure admission behavior, while chunk-level backpressure
// (429/413 + Retry-After) is honored so admitted streams complete.
func fireStreams(cc *cluster.Client, streams, tenants, concurrency, chunkSize int,
	instructions uint64, budget time.Duration, stderr io.Writer) streamReport {
	data, err := syntheticTrace("cbwsload-stream", instructions)
	if err != nil {
		fmt.Fprintf(stderr, "cbwsload: synthesizing trace: %v\n", err)
		return streamReport{Streams: streams, Tenants: tenants, StreamErrors: int64(streams)}
	}
	fmt.Fprintf(stderr, "cbwsload: streaming %d×%d-byte traces over %d tenant(s)\n",
		streams, len(data), tenants)

	// Pin the sim budget to the synthetic trace so every stream runs the
	// same simulation; identical bytes then converge on one cache entry.
	cfg, err := json.Marshal(map[string]uint64{
		"MaxInstructions":    instructions,
		"WarmupInstructions": instructions / 4,
	})
	if err != nil {
		fmt.Fprintf(stderr, "cbwsload: %v\n", err)
		return streamReport{Streams: streams, Tenants: tenants, StreamErrors: int64(streams)}
	}

	client := cc.Worker(cc.Workers()[0])
	var (
		next, completed, rejectedQuota, errors, bytesSent atomic.Int64

		ackMu   sync.Mutex
		ackLats []time.Duration
	)
	measure := func(d time.Duration, status int) {
		ackMu.Lock()
		ackLats = append(ackLats, d)
		ackMu.Unlock()
	}

	var wg sync.WaitGroup
	for g := 0; g < concurrency; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= streams {
					return
				}
				req := apiv1.OpenStreamRequest{
					Tenant:     fmt.Sprintf("load-%d", i%tenants),
					Workload:   "cbwsload-stream",
					Prefetcher: "cbws",
					Config:     cfg,
				}
				body, err := json.Marshal(req)
				if err != nil {
					errors.Add(1)
					continue
				}
				deadline := time.Now().Add(budget)
				view, retry, err := client.TryOpenStream(body)
				for err != nil && retry > 0 {
					// Admission said "later": count every rejection, then
					// wait it out so the stream still completes and the
					// phase measures a full lifecycle under quota
					// pressure.
					rejectedQuota.Add(1)
					if time.Now().Add(retry).After(deadline) {
						break
					}
					time.Sleep(retry)
					view, retry, err = client.TryOpenStream(body)
				}
				if err != nil {
					errors.Add(1)
					continue
				}
				if !feedStream(client, view.ID, data, chunkSize, measure, &bytesSent) {
					errors.Add(1)
					continue
				}
				if _, err := client.CloseStream(view.ID); err != nil {
					errors.Add(1)
					continue
				}
				if _, err := client.WaitStream(view.ID); err != nil {
					errors.Add(1)
					continue
				}
				completed.Add(1)
			}
		}()
	}
	wg.Wait()

	sort.Slice(ackLats, func(i, j int) bool { return ackLats[i] < ackLats[j] })
	rep := streamReport{
		Streams:              streams,
		Tenants:              tenants,
		Completed:            completed.Load(),
		StreamsRejectedQuota: rejectedQuota.Load(),
		StreamErrors:         errors.Load(),
		BytesSent:            bytesSent.Load(),
		ChunkAcks:            len(ackLats),
	}
	if len(ackLats) > 0 {
		rep.ChunkAckLatency = latency{
			P50: ms(percentile(ackLats, 0.50)),
			P95: ms(percentile(ackLats, 0.95)),
			P99: ms(percentile(ackLats, 0.99)),
			Max: ms(ackLats[len(ackLats)-1]),
		}
	}
	return rep
}

// feedStream uploads data in chunkSize pieces, reporting success.
func feedStream(client *apiv1.Client, id string, data []byte, chunkSize int,
	measure func(time.Duration, int), bytesSent *atomic.Int64) bool {
	for off := 0; off < len(data); off += chunkSize {
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		if _, err := client.SendChunk(id, data[off:end], measure); err != nil {
			return false
		}
		bytesSent.Add(int64(end - off))
	}
	return true
}

package prefetch

import (
	"testing"

	"cbws/internal/mem"
)

func TestMarkovLearnsRepeatingSequence(t *testing.T) {
	p := NewMarkov(MarkovConfig{})
	c := &collect{}
	seq := []mem.LineAddr{100, 7000, 250, 100, 7000, 250}
	for _, l := range seq {
		p.OnAccess(missAt(1, l), c.issue)
	}
	// The second pass over the cycle should predict each successor.
	c.lines = nil
	p.OnAccess(missAt(1, 100), c.issue)
	if len(c.lines) != 1 || c.lines[0] != 7000 {
		t.Errorf("after 100, predicted %v, want [7000]", c.lines)
	}
	c.lines = nil
	p.OnAccess(missAt(1, 7000), c.issue)
	if len(c.lines) != 1 || c.lines[0] != 250 {
		t.Errorf("after 7000, predicted %v, want [250]", c.lines)
	}
}

func TestMarkovMultipleSuccessors(t *testing.T) {
	p := NewMarkov(MarkovConfig{Successors: 2})
	c := &collect{}
	// 100 is followed alternately by 200 and 300.
	for i := 0; i < 4; i++ {
		p.OnAccess(missAt(1, 100), c.issue)
		if i%2 == 0 {
			p.OnAccess(missAt(1, 200), c.issue)
		} else {
			p.OnAccess(missAt(1, 300), c.issue)
		}
	}
	c.lines = nil
	p.OnAccess(missAt(1, 100), c.issue)
	got := map[mem.LineAddr]bool{}
	for _, l := range c.lines {
		got[l] = true
	}
	if !got[200] || !got[300] {
		t.Errorf("predicted %v, want both 200 and 300", c.lines)
	}
}

func TestMarkovSuccessorFanOutBounded(t *testing.T) {
	p := NewMarkov(MarkovConfig{Successors: 2})
	c := &collect{}
	for i := 0; i < 8; i++ {
		p.OnAccess(missAt(1, 100), c.issue)
		p.OnAccess(missAt(1, mem.LineAddr(1000+i)), c.issue)
	}
	c.lines = nil
	p.OnAccess(missAt(1, 100), c.issue)
	if len(c.lines) > 2 {
		t.Errorf("fan-out exceeded: %v", c.lines)
	}
}

func TestMarkovHitsIgnored(t *testing.T) {
	p := NewMarkov(MarkovConfig{})
	c := &collect{}
	p.OnAccess(missAt(1, 100), c.issue)
	p.OnAccess(hitAt(1, 500), c.issue) // hit: not part of the miss stream
	p.OnAccess(missAt(1, 200), c.issue)
	c.lines = nil
	p.OnAccess(missAt(1, 100), c.issue)
	if len(c.lines) != 1 || c.lines[0] != 200 {
		t.Errorf("predicted %v, want [200] (hit must not break the pair)", c.lines)
	}
}

func TestMarkovTableEviction(t *testing.T) {
	p := NewMarkov(MarkovConfig{TableEntries: 2})
	c := &collect{}
	p.OnAccess(missAt(1, 1), c.issue)
	p.OnAccess(missAt(1, 2), c.issue)
	p.OnAccess(missAt(1, 3), c.issue)
	p.OnAccess(missAt(1, 4), c.issue) // entry for 1 evicted by now
	c.lines = nil
	p.OnAccess(missAt(1, 1), c.issue)
	if len(c.lines) != 0 {
		t.Errorf("evicted entry predicted: %v", c.lines)
	}
}

func TestMarkovStorageAndReset(t *testing.T) {
	p := NewMarkov(MarkovConfig{})
	if p.StorageBits() != 1024*(36+64) {
		t.Errorf("storage = %d", p.StorageBits())
	}
	c := &collect{}
	p.OnAccess(missAt(1, 100), c.issue)
	p.OnAccess(missAt(1, 200), c.issue)
	p.Reset()
	c.lines = nil
	p.OnAccess(missAt(1, 100), c.issue)
	if len(c.lines) != 0 {
		t.Errorf("reset did not clear: %v", c.lines)
	}
	if p.Name() != "markov" {
		t.Error("name")
	}
}

// Package check is the differential correctness harness: it holds
// deliberately simple reference models of the optimized hot paths — a
// map-based functional cache with the same LRU/MSHR semantics as
// internal/cache but none of its structure-of-arrays tricks, an
// unbounded-window reference for the engine's ROB occupancy and commit
// arithmetic, and a naive CBWS predictor built from plain slices — plus
// the Enabled flag that gates the runtime invariant checkers embedded
// in the production packages.
//
// The reference models trade every optimization for obviousness: they
// allocate freely, recompute instead of maintaining incremental state,
// and use maps and slices where the production code uses preallocated
// flat arrays. Differential tests (and the Fuzz*VsRef targets) drive a
// reference and its production counterpart with the same operation
// sequence and require bit-identical observable behaviour: hit/miss
// outcomes, fill times, issued prefetch streams, statistics counters.
//
// Invariant checking is off by default so production runs pay only a
// dead branch; tests flip check.Enabled, and the cbwscheck build tag
// turns it on for a whole binary (go build -tags cbwscheck ./...).
package check

import "fmt"

// Enabled gates the runtime invariant checkers compiled into the
// production packages (cache MSHR bounds and tag-array coherence, ROB
// FIFO order, CBWS vector dedup/bounds). It defaults to false — or true
// under the cbwscheck build tag — and may be toggled by tests. It is
// not synchronized: set it before starting concurrent simulations.
var Enabled = enabledDefault

// Failf reports an invariant violation. Violations are programming
// errors, never data-dependent conditions, so it panics.
func Failf(format string, args ...any) {
	panic(fmt.Sprintf("check: invariant violated: "+format, args...))
}

// Assertf panics via Failf when cond is false. Callers must gate the
// call (and any expensive argument construction) on Enabled.
func Assertf(cond bool, format string, args ...any) {
	if !cond {
		Failf(format, args...)
	}
}

// Package report renders the harness results as aligned ASCII tables —
// the textual equivalent of the paper's figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; cells beyond len(Columns) are kept (ragged rows
// render fine).
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			// Right-align numeric-looking cells, left-align text.
			if looksNumeric(cell) {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(cell)
			} else {
				b.WriteString(cell)
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	if len(t.Columns) > 0 {
		line(t.Columns)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		fmt.Fprintln(w, strings.Repeat("-", total-2))
	}
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// RenderCSV writes the table as RFC-4180-style CSV (title as a comment
// line), for plotting pipelines.
func (t *Table) RenderCSV(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "# %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			fmt.Fprint(w, cell)
		}
		fmt.Fprintln(w)
	}
	if len(t.Columns) > 0 {
		writeRow(t.Columns)
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	fmt.Fprintln(w)
}

func looksNumeric(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
		case r == '.' || r == '-' || r == '+' || r == '%' || r == 'x' || r == 'K' || r == 'B' || r == 'e':
		default:
			return false
		}
	}
	return true
}

// F formats a float with the given precision.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Speedup formats a ratio like the paper ("1.16x").
func Speedup(v float64) string { return fmt.Sprintf("%.2fx", v) }

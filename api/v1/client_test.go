package apiv1

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryAfterJitterBounds proves the jittered wait stays inside
// [base, 1.5·base] for the whole jitter range, and that the jitter
// source is injectable — the fleet-wide herd-spreading is deterministic
// under test.
func TestRetryAfterJitterBounds(t *testing.T) {
	resp := &http.Response{Header: http.Header{"Retry-After": []string{"2"}}}
	base := 2 * time.Second
	for _, j := range []float64{0, 0.25, 0.5, 0.9999} {
		c := NewClient("http://x")
		c.Jitter = func() float64 { return j }
		got := c.retryAfter(resp)
		want := base + time.Duration(j*float64(base)/2)
		if got != want {
			t.Errorf("jitter %v: wait %v, want %v", j, got, want)
		}
		if got < base || got > base+base/2 {
			t.Errorf("jitter %v: wait %v outside [%v, %v]", j, got, base, base+base/2)
		}
	}

	// Unparseable or absent Retry-After floors at 100ms so the loop
	// never spins.
	for _, h := range []http.Header{{}, {"Retry-After": []string{"soon"}}, {"Retry-After": []string{"0"}}} {
		c := NewClient("http://x")
		c.Jitter = func() float64 { return 0 }
		if got := c.retryAfter(&http.Response{Header: h}); got != 100*time.Millisecond {
			t.Errorf("header %v: floor wait %v, want 100ms", h, got)
		}
	}

	// The default source (nil Jitter) must still respect the bounds.
	c := NewClient("http://x")
	for i := 0; i < 100; i++ {
		got := c.retryAfter(resp)
		if got < base || got > base+base/2 {
			t.Fatalf("default jitter: wait %v outside [%v, %v]", got, base, base+base/2)
		}
	}
}

// TestSubmitRetriesBackpressure bounces two submits with 429 before
// accepting, and checks the client sleeps the jittered Retry-After,
// reports each sleep through OnBackpressure, and returns the accepted
// view.
func TestSubmitRetriesBackpressure(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != PathJobs {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0") // floors at 100ms
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(ErrorBody{Error: "job queue is full"})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(JobView{Key: "k1", Status: StatusQueued})
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	c.Jitter = func() float64 { return 0.5 }
	var waits []time.Duration
	c.OnBackpressure = func(d time.Duration) { waits = append(waits, d) }
	var logged []string
	c.Logf = func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }

	view, err := c.Submit([]byte(`{"workload":"w","prefetcher":"p"}`))
	if err != nil {
		t.Fatal(err)
	}
	if view.Key != "k1" || view.Status != StatusQueued {
		t.Fatalf("view %+v", view)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d submits, want 3", calls.Load())
	}
	want := 100*time.Millisecond + 25*time.Millisecond // base + 0.5·base/2
	if len(waits) != 2 || waits[0] != want || waits[1] != want {
		t.Fatalf("backpressure waits %v, want two of %v", waits, want)
	}
	if len(logged) != 2 {
		t.Fatalf("logged %v, want two retry notices", logged)
	}
}

// TestSubmitBudgetExhausted checks a persistently full queue fails with
// the server's error once the budget cannot cover the next wait.
func TestSubmitBudgetExhausted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(ErrorBody{Error: "job queue is full"})
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	c.Budget = 100 * time.Millisecond // smaller than one 1s Retry-After
	c.Jitter = func() float64 { return 0 }
	_, err := c.Submit([]byte(`{}`))
	var apiErr *Error
	if err == nil || !errors.As(err, &apiErr) || apiErr.Code != http.StatusTooManyRequests {
		t.Fatalf("got %v, want wrapped 429 Error", err)
	}
}

// TestErrorDecoding checks API errors carry the server's message and
// status, and non-JSON bodies degrade to raw text.
func TestErrorDecoding(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case PathJobs + "/missing":
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(ErrorBody{Error: `unknown job "missing"`})
		default:
			w.WriteHeader(http.StatusTeapot)
			fmt.Fprint(w, "plain text failure")
		}
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	_, err := c.Status("missing")
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Code != 404 || apiErr.Msg != `unknown job "missing"` {
		t.Fatalf("status error: %v", err)
	}
	_, err = c.Result("whatever")
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusTeapot || apiErr.Msg != "plain text failure" {
		t.Fatalf("non-JSON error: %v", err)
	}

	// Transport failures must NOT be *Error: failover keys off this.
	dead := NewClient("http://127.0.0.1:1")
	_, err = dead.Status("k")
	if err == nil || errors.As(err, &apiErr) {
		t.Fatalf("transport failure decoded as API error: %v", err)
	}
}

// TestWaitDone polls a job through queued → running → done.
func TestWaitDone(t *testing.T) {
	var polls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := StatusDone
		switch polls.Add(1) {
		case 1:
			st = StatusQueued
		case 2:
			st = StatusRunning
		}
		json.NewEncoder(w).Encode(JobView{Key: "k", Status: st})
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	c.Poll = time.Millisecond
	view, err := c.WaitDone("0123456789ab")
	if err != nil || view.Status != StatusDone {
		t.Fatalf("WaitDone: %+v, %v", view, err)
	}
	if polls.Load() != 3 {
		t.Fatalf("polled %d times, want 3", polls.Load())
	}
}

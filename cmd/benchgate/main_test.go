package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunExitCodes pins the exit-status convention shared with the
// other cbws commands: 2 only for usage errors (bad flags/arguments),
// 1 for runtime failures (unreadable files, bad input, gate
// violations), 0 on success.
func TestRunExitCodes(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	if err := os.WriteFile(baseline, []byte(`{"benchmarks":{"BenchmarkA":{"ns_per_op":100,"allocs_per_op":2}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	malformed := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(malformed, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"benchmarks":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	okBench := "BenchmarkA 100 120 ns/op 0 B/op 2 allocs/op\n"
	slowBench := "BenchmarkA 100 900 ns/op 0 B/op 2 allocs/op\n"

	tests := []struct {
		name  string
		args  []string
		stdin string
		want  int
	}{
		{"bad flag", []string{"-nonsense"}, "", 2},
		{"unexpected argument", []string{"-baseline", baseline, "extra"}, "", 2},
		{"neither baseline nor write", []string{}, "", 2},
		{"both baseline and write", []string{"-baseline", baseline, "-write", baseline}, "", 2},
		{"missing input file is a runtime failure", []string{"-baseline", baseline, "-input", filepath.Join(dir, "nope")}, "", 1},
		{"missing baseline file is a runtime failure", []string{"-baseline", filepath.Join(dir, "nope.json")}, okBench, 1},
		{"malformed baseline is a runtime failure", []string{"-baseline", malformed}, okBench, 1},
		{"empty baseline is a runtime failure", []string{"-baseline", empty}, okBench, 1},
		{"no bench results is a runtime failure", []string{"-baseline", baseline}, "PASS\n", 1},
		{"gate violation exits 1", []string{"-baseline", baseline}, slowBench, 1},
		{"clean gate exits 0", []string{"-baseline", baseline}, okBench, 0},
		{"write exits 0", []string{"-write", filepath.Join(dir, "out.json")}, okBench, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			var stdout, stderr bytes.Buffer
			got := run(tc.args, strings.NewReader(tc.stdin), &stdout, &stderr)
			if got != tc.want {
				t.Errorf("exit code = %d, want %d\nstderr: %s", got, tc.want, stderr.String())
			}
		})
	}
}

func TestParseLine(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		line string
		ok   bool
		want Measurement
	}{
		{
			name: "plain with allocs",
			line: "BenchmarkCBWSOnAccess         \t       1\t      1127 ns/op\t       0 B/op\t       0 allocs/op",
			ok:   true,
			want: Measurement{Name: "BenchmarkCBWSOnAccess", NsPerOp: 1127, AllocsPerOp: 0, HasAllocs: true},
		},
		{
			name: "gomaxprocs suffix stripped",
			line: "BenchmarkPipelineEventsPerSec-8 \t     100\t  891634 ns/op\t 174.0 Mevents/s\t   13656 B/op\t       4 allocs/op",
			ok:   true,
			want: Measurement{Name: "BenchmarkPipelineEventsPerSec", NsPerOp: 891634, AllocsPerOp: 4, HasAllocs: true},
		},
		{
			name: "custom metric between ns/op and allocs",
			line: "BenchmarkX-4 10 250.5 ns/op 42.0 widgets/s 1 allocs/op",
			ok:   true,
			want: Measurement{Name: "BenchmarkX", NsPerOp: 250.5, AllocsPerOp: 1, HasAllocs: true},
		},
		{
			name: "no allocs reported",
			line: "BenchmarkY 5 99 ns/op",
			ok:   true,
			want: Measurement{Name: "BenchmarkY", NsPerOp: 99},
		},
		{
			name: "hyphenated name keeps non-numeric suffix",
			line: "BenchmarkZ-fast 5 99 ns/op",
			ok:   true,
			want: Measurement{Name: "BenchmarkZ-fast", NsPerOp: 99},
		},
		{name: "header", line: "goos: linux", ok: false},
		{name: "pass", line: "PASS", ok: false},
		{name: "ok line", line: "ok  \tcbws\t0.005s", ok: false},
		{name: "empty", line: "", ok: false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got, ok := parseLine(tc.line)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v", ok, tc.ok)
			}
			if ok && got != tc.want {
				t.Fatalf("got %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestParseBenchFoldsRepeats(t *testing.T) {
	t.Parallel()
	in := strings.NewReader(`
BenchmarkA 100 200 ns/op 0 B/op 3 allocs/op
BenchmarkA 100 150 ns/op 0 B/op 3 allocs/op
BenchmarkA 100 180 ns/op 0 B/op 3 allocs/op
`)
	got, err := parseBench(in)
	if err != nil {
		t.Fatal(err)
	}
	m := got["BenchmarkA"]
	if m.NsPerOp != 150 {
		t.Fatalf("min ns/op = %v, want 150", m.NsPerOp)
	}
	if !m.HasAllocs || m.AllocsPerOp != 3 {
		t.Fatalf("allocs = %+v, want 3", m)
	}
}

func TestParseBenchRejectsAllocDrift(t *testing.T) {
	t.Parallel()
	in := strings.NewReader(`
BenchmarkA 100 200 ns/op 0 B/op 3 allocs/op
BenchmarkA 100 150 ns/op 0 B/op 4 allocs/op
`)
	if _, err := parseBench(in); err == nil {
		t.Fatal("expected error on allocs/op drift across repeats")
	}
}

func TestGate(t *testing.T) {
	t.Parallel()
	base := Baseline{Benchmarks: map[string]BaselineEntry{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 2},
		"BenchmarkB": {NsPerOp: 1000, AllocsPerOp: 0},
	}}
	ok := map[string]Measurement{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 150, AllocsPerOp: 2, HasAllocs: true},
		"BenchmarkB": {Name: "BenchmarkB", NsPerOp: 1999, AllocsPerOp: 0, HasAllocs: true},
		"BenchmarkC": {Name: "BenchmarkC", NsPerOp: 5, AllocsPerOp: 9, HasAllocs: true}, // ungated extra
	}
	if bad := gate(base, ok, 2.0); len(bad) != 0 {
		t.Fatalf("unexpected violations: %v", bad)
	}

	slow := map[string]Measurement{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 201, AllocsPerOp: 2, HasAllocs: true},
		"BenchmarkB": {Name: "BenchmarkB", NsPerOp: 1000, AllocsPerOp: 1, HasAllocs: true},
	}
	bad := gate(base, slow, 2.0)
	if len(bad) != 2 {
		t.Fatalf("want 2 violations (time + allocs), got %v", bad)
	}

	missing := map[string]Measurement{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 2, HasAllocs: true},
	}
	bad = gate(base, missing, 2.0)
	if len(bad) != 1 || !strings.Contains(bad[0], "missing") {
		t.Fatalf("want a missing-benchmark violation, got %v", bad)
	}

	noAllocs := map[string]Measurement{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 100},
		"BenchmarkB": {Name: "BenchmarkB", NsPerOp: 1000, AllocsPerOp: 0, HasAllocs: true},
	}
	bad = gate(base, noAllocs, 2.0)
	if len(bad) != 1 || !strings.Contains(bad[0], "allocs/op") {
		t.Fatalf("want an allocs-missing violation, got %v", bad)
	}
}

func TestGateBaselineRatioOverride(t *testing.T) {
	t.Parallel()
	base := Baseline{
		MaxTimeRatio: 3.0,
		Benchmarks:   map[string]BaselineEntry{"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 0}},
	}
	got := map[string]Measurement{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 250, AllocsPerOp: 0, HasAllocs: true},
	}
	if bad := gate(base, got, 2.0); len(bad) != 0 {
		t.Fatalf("baseline ratio 3.0 should win over default 2.0: %v", bad)
	}
}

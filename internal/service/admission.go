package service

import (
	"sync"
	"sync/atomic"
	"time"
)

// tokenBucket is a lazily-refilled byte-rate limiter: take() settles
// the elapsed-time refill and then answers whether n tokens are
// available, so there is no background filler goroutine and the bucket
// costs nothing while idle. All times come from the caller (the
// service's injected clock), which keeps refill behavior fully
// deterministic under a fake clock in tests.
type tokenBucket struct {
	rate   float64 // tokens (bytes) per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

// newTokenBucket returns a full bucket.
func newTokenBucket(rate, burst float64, now time.Time) *tokenBucket {
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// take settles the refill at now and withdraws n tokens if available.
// On refusal it returns the wait until n tokens will have accumulated,
// for the Retry-After header. n larger than the burst can never be
// granted; callers must reject such requests outright (413) before
// asking the bucket.
func (b *tokenBucket) take(now time.Time, n float64) (ok bool, wait time.Duration) {
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if n <= b.tokens {
		b.tokens -= n
		return true, 0
	}
	missing := n - b.tokens
	return false, time.Duration(missing / b.rate * float64(time.Second))
}

// tenant is one quota account: its rate limiter, its concurrent-stream
// count, and its committed traffic counters. The committed counters are
// atomics read by the expvar snapshot; the chunk hot path batches its
// deltas stream-locally and commits them here only every
// counterCommitBytes (see Stream.commitPending), so steady-state ingest
// does one atomic add per ~megabyte instead of three per chunk.
type tenant struct {
	name string

	mu      sync.Mutex
	bucket  *tokenBucket // pointer is immutable after construction; bucket state is guarded by mu
	streams int          //cbws:guardedby mu — currently open/finalizing streams

	bytesIn       atomic.Uint64 // committed stream bytes accepted
	chunksIn      atomic.Uint64 // committed chunks accepted
	eventsIn      atomic.Uint64 // committed events decoded
	rejectedRate  atomic.Uint64 // chunk/open rejects from the byte bucket (429)
	rejectedQuota atomic.Uint64 // stream opens over the concurrency quota (429)
	streamsDone   atomic.Uint64 // lifetime finalized streams
}

// TenantVars is the per-tenant expvar snapshot. Traffic counters are
// coalesced: they lag the live stream state by at most one commit
// interval.
type TenantVars struct {
	Tenant        string `json:"tenant"`
	Streams       int    `json:"streams"`
	BytesIn       uint64 `json:"bytes_in"`
	Chunks        uint64 `json:"chunks"`
	Events        uint64 `json:"events"`
	RejectedRate  uint64 `json:"rejected_rate_429"`
	RejectedQuota uint64 `json:"rejected_quota_429"`
	StreamsDone   uint64 `json:"streams_done"`
}

func (t *tenant) vars() TenantVars {
	t.mu.Lock()
	streams := t.streams
	t.mu.Unlock()
	return TenantVars{
		Tenant:        t.name,
		Streams:       streams,
		BytesIn:       t.bytesIn.Load(),
		Chunks:        t.chunksIn.Load(),
		Events:        t.eventsIn.Load(),
		RejectedRate:  t.rejectedRate.Load(),
		RejectedQuota: t.rejectedQuota.Load(),
		StreamsDone:   t.streamsDone.Load(),
	}
}

// tenantTable tracks every quota account the daemon has seen. Accounts
// are created on first use and never expire — tenancy is an
// operational concept, and the per-tenant footprint is a few words.
type tenantTable struct {
	rate  float64
	burst float64

	mu sync.Mutex
	m  map[string]*tenant //cbws:guardedby mu
}

func newTenantTable(rate, burst float64) *tenantTable {
	return &tenantTable{rate: rate, burst: burst, m: make(map[string]*tenant)}
}

// get returns (creating if needed) the account named name.
func (tt *tenantTable) get(name string, now time.Time) *tenant {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	t, ok := tt.m[name]
	if !ok {
		t = &tenant{name: name, bucket: newTokenBucket(tt.rate, tt.burst, now)}
		tt.m[name] = t
	}
	return t
}

// admitOpen charges one concurrent-stream slot against the tenant's
// quota; max <= 0 means unlimited.
func (t *tenant) admitOpen(max int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if max > 0 && t.streams >= max {
		t.rejectedQuota.Add(1)
		return false
	}
	t.streams++
	return true
}

// releaseStream returns a concurrent-stream slot.
func (t *tenant) releaseStream() {
	t.mu.Lock()
	t.streams--
	t.mu.Unlock()
}

// admitBytes charges n bytes against the tenant's rate bucket.
func (t *tenant) admitBytes(now time.Time, n int) (ok bool, wait time.Duration) {
	t.mu.Lock()
	ok, wait = t.bucket.take(now, float64(n))
	t.mu.Unlock()
	if !ok {
		t.rejectedRate.Add(1)
	}
	return ok, wait
}

package corpus

import (
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"

	"cbws/internal/trace"
)

// Options configures a corpus writer.
type Options struct {
	// BlockEvents is the events-per-block granule (0: DefaultBlockEvents).
	BlockEvents int
	// Compress DEFLATE-compresses each block payload. Compressed
	// corpora trade replay throughput (and the zero-allocation
	// steady state) for disk footprint; leave it off for benchmark
	// and golden-gate corpora.
	Compress bool
}

// withDefaults fills the zero fields and validates the rest.
func (o Options) withDefaults() (Options, error) {
	if o.BlockEvents == 0 {
		o.BlockEvents = DefaultBlockEvents
	}
	if o.BlockEvents < 1 || o.BlockEvents > MaxBlockEvents {
		return o, fmt.Errorf("corpus: block events %d out of range [1, %d]", o.BlockEvents, MaxBlockEvents)
	}
	return o, nil
}

// Writer encodes an event stream into the CBWC columnar format. It
// implements trace.Sink and trace.BatchSink, so any generator can be
// packed with trace.DriveBatches. Encoding errors are sticky and
// reported by Close.
type Writer struct {
	w     io.Writer
	sum   hash.Hash // sha256 over every byte written
	opts  Options
	name  string
	flags byte

	// Current block state.
	events   int // events in the current block
	basePC   uint64
	baseAddr uint64
	lastPC   uint64
	lastAddr uint64
	cols     [numCols][]byte
	takenBit uint // bit cursor into the taken column

	// File state.
	off        uint64
	index      []blockEntry
	eventCount uint64
	instrCount uint64
	comp       *flate.Writer
	compBuf    countingWriter
	closed     bool
	err        error
}

// countingWriter buffers compressed block bytes for length accounting.
type countingWriter struct{ buf []byte }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.buf = append(c.buf, p...)
	return len(p), nil
}

// NewWriter writes the corpus header for the given trace name and
// returns a Writer ready to receive events.
func NewWriter(w io.Writer, name string, opts Options) (*Writer, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(name) > maxNameLen {
		return nil, fmt.Errorf("corpus: name too long (%d bytes)", len(name))
	}
	cw := &Writer{sum: sha256.New(), opts: opts, name: name}
	cw.w = io.MultiWriter(w, cw.sum)
	if opts.Compress {
		cw.flags |= flagCompressed
		cw.comp, _ = flate.NewWriter(&cw.compBuf, flate.DefaultCompression)
	}
	var hdr []byte
	hdr = append(hdr, magic...)
	hdr = append(hdr, version, cw.flags, 0, 0)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(opts.BlockEvents))
	hdr = binary.AppendUvarint(hdr, uint64(len(name)))
	hdr = append(hdr, name...)
	if err := cw.write(hdr); err != nil {
		return nil, err
	}
	return cw, nil
}

// write appends raw bytes to the file, tracking the offset.
func (w *Writer) write(p []byte) error {
	n, err := w.w.Write(p)
	w.off += uint64(n)
	if err != nil {
		w.err = err
	}
	return err
}

// Consume implements trace.Sink.
func (w *Writer) Consume(e trace.Event) {
	if w.err != nil {
		return
	}
	w.encode(e)
}

// ConsumeBatch implements trace.BatchSink; a sticky error asks the
// producer to stop.
func (w *Writer) ConsumeBatch(batch []trace.Event) bool {
	for i := range batch {
		if w.err != nil {
			return false
		}
		w.encode(batch[i])
	}
	return w.err == nil
}

// encode appends one event to the current block's columns, flushing the
// block when it reaches the configured size.
func (w *Writer) encode(e trace.Event) {
	if w.events == 0 {
		w.basePC = w.lastPC
		w.baseAddr = w.lastAddr
	}
	w.cols[colKinds] = append(w.cols[colKinds], byte(e.Kind))
	switch e.Kind {
	case trace.Instr:
		if e.N > trace.MaxInstrCount {
			w.err = fmt.Errorf("corpus: instr count %d exceeds %d", e.N, trace.MaxInstrCount)
			return
		}
		n := uint64(e.Count())
		w.cols[colN] = binary.AppendUvarint(w.cols[colN], n)
		w.instrCount += n
	case trace.Load, trace.Store:
		w.cols[colPC] = binary.AppendUvarint(w.cols[colPC], zigzag(int64(e.PC)-int64(w.lastPC)))
		w.cols[colAddr] = binary.AppendUvarint(w.cols[colAddr], zigzag(int64(e.Addr)-int64(w.lastAddr)))
		w.lastPC = e.PC
		w.lastAddr = uint64(e.Addr)
		w.instrCount++
	case trace.BlockBegin, trace.BlockEnd:
		if e.Block < 0 || e.Block > trace.MaxBlockID {
			w.err = fmt.Errorf("corpus: block ID %d out of range [0, %d]", e.Block, trace.MaxBlockID)
			return
		}
		w.cols[colBlock] = binary.AppendUvarint(w.cols[colBlock], uint64(e.Block))
		w.instrCount++
	case trace.Branch:
		w.cols[colPC] = binary.AppendUvarint(w.cols[colPC], zigzag(int64(e.PC)-int64(w.lastPC)))
		w.lastPC = e.PC
		if w.takenBit%8 == 0 {
			w.cols[colTaken] = append(w.cols[colTaken], 0)
		}
		if e.Taken {
			w.cols[colTaken][len(w.cols[colTaken])-1] |= 1 << (w.takenBit % 8)
		}
		w.takenBit++
		w.instrCount++
	default:
		w.err = fmt.Errorf("corpus: cannot encode kind %v", e.Kind)
		return
	}
	w.events++
	w.eventCount++
	if w.events >= w.opts.BlockEvents {
		w.flushBlock()
	}
}

// flushBlock writes the current block payload and records its index
// entry.
func (w *Writer) flushBlock() {
	if w.err != nil || w.events == 0 {
		return
	}
	entry := blockEntry{
		offset:   w.off,
		events:   uint32(w.events),
		basePC:   w.basePC,
		baseAddr: w.baseAddr,
	}
	var raw int
	for i, col := range w.cols {
		entry.colLen[i] = uint32(len(col))
		raw += len(col)
	}
	entry.rawLen = uint32(raw)
	if w.opts.Compress {
		w.compBuf.buf = w.compBuf.buf[:0]
		w.comp.Reset(&w.compBuf)
		for _, col := range w.cols {
			if _, err := w.comp.Write(col); err != nil {
				w.err = err
				return
			}
		}
		if err := w.comp.Close(); err != nil {
			w.err = err
			return
		}
		entry.storedLen = uint32(len(w.compBuf.buf))
		if w.write(w.compBuf.buf) != nil {
			return
		}
	} else {
		entry.storedLen = entry.rawLen
		for _, col := range w.cols {
			if w.write(col) != nil {
				return
			}
		}
	}
	w.index = append(w.index, entry)
	for i := range w.cols {
		w.cols[i] = w.cols[i][:0]
	}
	w.events = 0
	w.takenBit = 0
}

// Close flushes the final partial block and writes the index and
// trailer. The writer is unusable afterwards.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	w.flushBlock()
	if w.err != nil {
		return w.err
	}
	indexOff := w.off
	var idx []byte
	for i := range w.index {
		idx = w.index[i].marshal(idx)
	}
	if err := w.write(idx); err != nil {
		return err
	}
	var tr []byte
	tr = binary.LittleEndian.AppendUint64(tr, indexOff)
	tr = binary.LittleEndian.AppendUint64(tr, uint64(len(idx)))
	tr = binary.LittleEndian.AppendUint64(tr, uint64(len(w.index)))
	tr = binary.LittleEndian.AppendUint64(tr, w.eventCount)
	tr = binary.LittleEndian.AppendUint64(tr, w.instrCount)
	tr = append(tr, magicEnd...)
	return w.write(tr)
}

// Sum returns the corpus content address: the hex SHA-256 over every
// byte written so far. Meaningful after Close.
func (w *Writer) Sum() string {
	return hex.EncodeToString(w.sum.Sum(nil))
}

// Events returns the number of events encoded.
func (w *Writer) Events() uint64 { return w.eventCount }

// Instructions returns the total dynamic instruction count encoded.
func (w *Writer) Instructions() uint64 { return w.instrCount }

// PackResult describes a corpus produced by Pack.
type PackResult struct {
	// Hash is the content address (hex SHA-256 of the file bytes).
	Hash string
	// Events and Instructions count what was packed.
	Events       uint64
	Instructions uint64
	// Bytes is the file size.
	Bytes int64
}

// Pack captures g's event stream (bounded to max dynamic instructions
// when max > 0) into a corpus file at path, written atomically via a
// temp file + rename so a crash never leaves a torn corpus behind.
func Pack(path string, g trace.Generator, max uint64, opts Options) (PackResult, error) {
	gen := g
	if max > 0 {
		gen = trace.Limit{Gen: g, Max: max}
	}
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return PackResult{}, fmt.Errorf("corpus: %w", err)
	}
	defer os.Remove(tmp.Name())
	res, err := packTo(tmp, g.Name(), gen, opts)
	if err != nil {
		tmp.Close()
		return PackResult{}, err
	}
	if err := tmp.Close(); err != nil {
		return PackResult{}, fmt.Errorf("corpus: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return PackResult{}, fmt.Errorf("corpus: %w", err)
	}
	return res, nil
}

// packTo drives gen into a Writer over w and reports the result.
func packTo(w io.Writer, name string, gen trace.Generator, opts Options) (PackResult, error) {
	cw, err := NewWriter(w, name, opts)
	if err != nil {
		return PackResult{}, err
	}
	trace.DriveBatches(gen, cw)
	if err := cw.Close(); err != nil {
		return PackResult{}, err
	}
	return PackResult{
		Hash:         cw.Sum(),
		Events:       cw.Events(),
		Instructions: cw.Instructions(),
		Bytes:        int64(cw.off),
	}, nil
}

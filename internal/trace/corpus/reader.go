package corpus

import (
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math/bits"
	"os"

	"cbws/internal/mem"
	"cbws/internal/trace"
)

// OpenOptions configures Open.
type OpenOptions struct {
	// DisableMmap forces the io.ReaderAt fallback path even on
	// platforms with mmap support. Replay output is identical either
	// way; the fallback copies each block through a reused buffer
	// instead of decoding straight out of the page cache.
	DisableMmap bool
}

// Corpus is an opened CBWC file. It is immutable and safe for
// concurrent use; per-goroutine decode state lives in Replayers.
type Corpus struct {
	name        string
	compressed  bool
	blockEvents int
	eventCount  uint64
	instrCount  uint64
	index       []blockEntry

	data    []byte       // whole-file view (mmap or caller-provided bytes)
	unmap   func() error // releases data when it is a mapping
	ra      io.ReaderAt  // fallback block source when data == nil
	f       *os.File     // owned handle backing ra (closed by Close)
	size    int64
	mmapped bool

	maxStored uint32 // scratch sizing for fallback/compressed reads
	maxRaw    uint32
}

// Open opens a corpus file, mapping it into memory where the platform
// supports it and falling back to positioned reads otherwise.
func Open(path string, opts OpenOptions) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("corpus: %w", err)
	}
	if !opts.DisableMmap {
		if data, unmap, err := mmapFile(f, st.Size()); err == nil {
			c, cerr := OpenBytes(data)
			if cerr != nil {
				unmap()
				f.Close()
				return nil, cerr
			}
			c.unmap = unmap
			c.f = f
			c.mmapped = true
			return c, nil
		}
	}
	c, err := openReaderAt(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	c.f = f
	return c, nil
}

// OpenBytes parses a corpus already resident in memory. The Corpus
// aliases data; the caller must keep it valid until Close.
func OpenBytes(data []byte) (*Corpus, error) {
	c := &Corpus{data: data, size: int64(len(data))}
	if err := c.parse(func(buf []byte, off int64) error {
		if off < 0 || off+int64(len(buf)) > int64(len(data)) {
			return fmt.Errorf("%w: truncated", ErrBadCorpus)
		}
		copy(buf, data[off:])
		return nil
	}); err != nil {
		return nil, err
	}
	return c, nil
}

// OpenReaderAt parses a corpus served by positioned reads (the
// explicit fallback constructor; Open uses it when mmap is unavailable
// or disabled).
func OpenReaderAt(ra io.ReaderAt, size int64) (*Corpus, error) {
	return openReaderAt(ra, size)
}

func openReaderAt(ra io.ReaderAt, size int64) (*Corpus, error) {
	c := &Corpus{ra: ra, size: size}
	if err := c.parse(func(buf []byte, off int64) error {
		if _, err := ra.ReadAt(buf, off); err != nil {
			return fmt.Errorf("%w: %v", ErrBadCorpus, err)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return c, nil
}

// parse validates the header, trailer, and block index via the given
// positioned-read function.
func (c *Corpus) parse(readAt func(buf []byte, off int64) error) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrBadCorpus, fmt.Sprintf(format, args...))
	}
	// Fixed header prefix: magic(4) + version(1) + flags(1) +
	// reserved(2) + blockEvents(4) = 12 bytes, then at least one
	// nameLen byte.
	const headerMin = 12 + 1
	if c.size < int64(headerMin+trailerLen) {
		return bad("file too small (%d bytes)", c.size)
	}

	// Header: magic, version, flags, block granule, name.
	hdr := make([]byte, headerMin)
	if err := readAt(hdr, 0); err != nil {
		return err
	}
	if string(hdr[:4]) != magic {
		return bad("bad magic %q", hdr[:4])
	}
	if hdr[4] != version {
		return bad("unsupported version %d", hdr[4])
	}
	flags := hdr[5]
	if flags&^byte(flagCompressed) != 0 {
		return bad("unknown flags %#x", flags)
	}
	c.compressed = flags&flagCompressed != 0
	if hdr[6] != 0 || hdr[7] != 0 {
		return bad("nonzero reserved bytes")
	}
	be := binary.LittleEndian.Uint32(hdr[8:])
	if be < 1 || be > MaxBlockEvents {
		return bad("block events %d out of range [1, %d]", be, MaxBlockEvents)
	}
	c.blockEvents = int(be)
	// The name length is a uvarint; read enough bytes for the worst
	// case, bounded by the file size.
	nameArea := make([]byte, min64(int64(binary.MaxVarintLen64+maxNameLen), c.size-12))
	if err := readAt(nameArea, 12); err != nil {
		return err
	}
	nameLen, n := binary.Uvarint(nameArea)
	if n <= 0 || nameLen > maxNameLen || int64(n)+int64(nameLen) > int64(len(nameArea)) {
		return bad("bad name length")
	}
	c.name = string(nameArea[n : n+int(nameLen)])
	headerEnd := int64(12 + n + int(nameLen))

	// Trailer.
	tr := make([]byte, trailerLen)
	if err := readAt(tr, c.size-int64(trailerLen)); err != nil {
		return err
	}
	if string(tr[40:]) != magicEnd {
		return bad("bad end magic %q", tr[40:])
	}
	indexOff := binary.LittleEndian.Uint64(tr[0:])
	indexLen := binary.LittleEndian.Uint64(tr[8:])
	blockCount := binary.LittleEndian.Uint64(tr[16:])
	c.eventCount = binary.LittleEndian.Uint64(tr[24:])
	c.instrCount = binary.LittleEndian.Uint64(tr[32:])
	if indexLen != blockCount*indexEntry {
		return bad("index length %d does not cover %d blocks", indexLen, blockCount)
	}
	if int64(indexOff) < headerEnd || indexOff+indexLen != uint64(c.size-int64(trailerLen)) {
		return bad("index does not abut the trailer")
	}

	// Index: contiguous, in-order blocks exactly filling
	// [headerEnd, indexOff).
	idx := make([]byte, indexLen)
	if err := readAt(idx, int64(indexOff)); err != nil {
		return err
	}
	c.index = make([]blockEntry, blockCount)
	next := uint64(headerEnd)
	var events uint64
	for i := range c.index {
		e := &c.index[i]
		e.unmarshal(idx[i*indexEntry:])
		if e.offset != next {
			return bad("block %d at offset %d, want %d (blocks must be contiguous)", i, e.offset, next)
		}
		if e.events < 1 || int(e.events) > c.blockEvents {
			return bad("block %d has %d events, granule is %d", i, e.events, c.blockEvents)
		}
		if i < len(c.index)-1 && int(e.events) != c.blockEvents {
			return bad("block %d is short (%d events) but not last", i, e.events)
		}
		var colSum uint64
		for _, l := range e.colLen {
			colSum += uint64(l)
		}
		if colSum != uint64(e.rawLen) {
			return bad("block %d column lengths sum to %d, raw length is %d", i, colSum, e.rawLen)
		}
		if e.colLen[colKinds] != e.events {
			return bad("block %d kind column has %d bytes for %d events", i, e.colLen[colKinds], e.events)
		}
		// Generous per-event ceiling (kind + four 10-byte varints +
		// taken bit): bounds the decode scratch a hostile index can
		// demand.
		if uint64(e.rawLen) > uint64(e.events)*48 {
			return bad("block %d raw length %d implausible for %d events", i, e.rawLen, e.events)
		}
		if c.compressed {
			if e.storedLen == 0 {
				return bad("block %d empty", i)
			}
		} else if e.storedLen != e.rawLen {
			return bad("block %d stored length %d != raw length %d in an uncompressed corpus", i, e.storedLen, e.rawLen)
		}
		next += uint64(e.storedLen)
		events += uint64(e.events)
		if e.storedLen > c.maxStored {
			c.maxStored = e.storedLen
		}
		if e.rawLen > c.maxRaw {
			c.maxRaw = e.rawLen
		}
	}
	if next != indexOff {
		return bad("blocks end at %d, index starts at %d", next, indexOff)
	}
	if events != c.eventCount {
		return bad("index holds %d events, trailer claims %d", events, c.eventCount)
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Name returns the trace name recorded in the corpus header.
func (c *Corpus) Name() string { return c.name }

// Events returns the total event count.
func (c *Corpus) Events() uint64 { return c.eventCount }

// Instructions returns the total dynamic instruction count.
func (c *Corpus) Instructions() uint64 { return c.instrCount }

// Blocks returns the number of blocks.
func (c *Corpus) Blocks() int { return len(c.index) }

// BlockEvents returns the events-per-block granule.
func (c *Corpus) BlockEvents() int { return c.blockEvents }

// Compressed reports whether block payloads are DEFLATE-compressed.
func (c *Corpus) Compressed() bool { return c.compressed }

// Size returns the file size in bytes.
func (c *Corpus) Size() int64 { return c.size }

// Mmapped reports whether the corpus is served from a memory mapping
// (false on the io.ReaderAt fallback path).
func (c *Corpus) Mmapped() bool { return c.mmapped }

// ColumnBytes returns the total on-disk (uncompressed) bytes of each
// column, in format order: kinds, pc, addr, n, block, taken.
func (c *Corpus) ColumnBytes() [6]uint64 {
	var out [6]uint64
	for i := range c.index {
		for j, l := range c.index[i].colLen {
			out[j] += uint64(l)
		}
	}
	return out
}

// Hash computes the content address: the hex SHA-256 over the exact
// file bytes.
func (c *Corpus) Hash() (string, error) {
	h := sha256.New()
	if c.data != nil {
		h.Write(c.data)
	} else {
		if _, err := io.Copy(h, io.NewSectionReader(c.ra, 0, c.size)); err != nil {
			return "", fmt.Errorf("corpus: hashing: %w", err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Close releases the mapping and the underlying file.
func (c *Corpus) Close() error {
	var err error
	if c.unmap != nil {
		err = c.unmap()
		c.unmap = nil
		c.data = nil
	}
	if c.f != nil {
		if cerr := c.f.Close(); err == nil {
			err = cerr
		}
		c.f = nil
	}
	return err
}

// Replayer replays a corpus as a trace.BatchGenerator. Each Replayer
// owns its decode buffers, so independent simulations can replay one
// shared Corpus concurrently; a single Replayer is not safe for
// concurrent use but is reusable — every Generate/Replay call starts
// from the first event.
type Replayer struct {
	c       *Corpus
	buf     []trace.Event
	scratch []byte        // decompressed/read block payload when needed
	stored  []byte        // compressed payload staging for the fallback path
	fr      io.ReadCloser // flate reader, Reset-reused across blocks
}

// NewReplayer returns a replayer with freshly allocated decode buffers.
// All buffers are sized up front from the index, so replay itself
// allocates nothing.
func (c *Corpus) NewReplayer() *Replayer {
	r := &Replayer{c: c, buf: make([]trace.Event, c.blockEvents)}
	if c.data == nil || c.compressed {
		r.scratch = make([]byte, c.maxRaw)
	}
	if c.compressed && c.data == nil {
		r.stored = make([]byte, c.maxStored)
	}
	return r
}

// Name implements trace.Generator.
func (r *Replayer) Name() string { return r.c.name }

// Generate implements trace.Generator. Decode errors on a corrupt file
// stop the stream early; use Replay for explicit errors.
func (r *Replayer) Generate(sink trace.Sink) {
	_ = r.Replay(trace.AsBatchSink(sink))
}

// GenerateBatches implements trace.BatchGenerator.
func (r *Replayer) GenerateBatches(sink trace.BatchSink) {
	_ = r.Replay(sink)
}

// Replay decodes every block into the reused event buffer and hands
// each to sink, stopping early (without error) once the sink returns
// false. The delivered batch is only valid during the ConsumeBatch
// call, per the trace.BatchSink contract.
func (r *Replayer) Replay(sink trace.BatchSink) error {
	c := r.c
	for i := range c.index {
		e := &c.index[i]
		data, err := r.blockPayload(e)
		if err != nil {
			return fmt.Errorf("%w: block %d: %v", ErrBadCorpus, i, err)
		}
		if !r.decodeBlock(e, data) {
			return fmt.Errorf("%w: block %d: corrupt columns", ErrBadCorpus, i)
		}
		if !sink.ConsumeBatch(r.buf[:e.events]) {
			return nil
		}
	}
	return nil
}

// blockPayload returns the raw (decompressed) payload bytes of one
// block: a zero-copy subslice of the mapping when possible, the reused
// scratch buffer otherwise.
func (r *Replayer) blockPayload(e *blockEntry) ([]byte, error) {
	c := r.c
	if c.data != nil && !c.compressed {
		return c.data[e.offset : e.offset+uint64(e.storedLen)], nil
	}
	if c.data != nil { // mmapped but compressed
		return r.inflate(c.data[e.offset:e.offset+uint64(e.storedLen)], e.rawLen)
	}
	if !c.compressed { // fallback reads, plain payload
		out := r.scratch[:e.storedLen]
		if _, err := c.ra.ReadAt(out, int64(e.offset)); err != nil {
			return nil, err
		}
		return out, nil
	}
	stored := r.stored[:e.storedLen]
	if _, err := c.ra.ReadAt(stored, int64(e.offset)); err != nil {
		return nil, err
	}
	return r.inflate(stored, e.rawLen)
}

// inflate decompresses one block payload into the reused scratch
// buffer.
func (r *Replayer) inflate(stored []byte, rawLen uint32) ([]byte, error) {
	br := byteReaderAt{data: stored}
	if r.fr == nil {
		r.fr = flate.NewReader(&br)
	} else if err := r.fr.(flate.Resetter).Reset(&br, nil); err != nil {
		return nil, err
	}
	out := r.scratch[:rawLen]
	if _, err := io.ReadFull(r.fr, out); err != nil {
		return nil, err
	}
	// The payload must end exactly at rawLen.
	var one [1]byte
	if n, err := r.fr.Read(one[:]); n != 0 || err != io.EOF {
		return nil, fmt.Errorf("block longer than its raw length")
	}
	return out, nil
}

// byteReaderAt is a minimal io.Reader over a byte slice, avoiding a
// bytes.Reader allocation per block.
type byteReaderAt struct {
	data []byte
	pos  int
}

func (b *byteReaderAt) Read(p []byte) (int, error) {
	if b.pos >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.pos:])
	b.pos += n
	return n, nil
}

// decodeBlock decodes one block payload into r.buf, returning false on
// any structural corruption. This is the replay hot path: a single walk
// over the kind bytes with per-column cursors and plain stores into the
// reused buffer — no allocation, no error wrapping, and no per-event
// calls on the common paths (the varint fast paths are hand-inlined;
// only 9/10-byte varints and column tails take the out-of-line decoder).
//
//cbws:hotpath
func (r *Replayer) decodeBlock(e *blockEntry, data []byte) bool {
	if uint64(len(data)) != uint64(e.rawLen) {
		return false
	}
	// Column boundaries as absolute offsets into the single payload
	// slice. Six sub-slices would carry six live (ptr, len) pairs through
	// the loop and spill; integer ends against one base pointer roughly
	// halve the live state.
	kEnd := int(e.colLen[colKinds])
	pEnd := kEnd + int(e.colLen[colPC])
	aEnd := pEnd + int(e.colLen[colAddr])
	nEnd := aEnd + int(e.colLen[colN])
	bEnd := nEnd + int(e.colLen[colBlock])
	if bEnd > len(data) {
		return false
	}

	kinds := data[:kEnd]
	out := r.buf[:kEnd]
	pp, ap, np, bp := kEnd, pEnd, aEnd, nEnd // column cursors
	var tb uint                              // taken bit cursor
	lastPC := e.basePC
	lastAddr := e.baseAddr
	for i := range kinds {
		// Each arm overwrites out[i] with a full composite literal —
		// one run of plain stores that both sets the decoded fields and
		// clears the stale ones, cheaper than a separate memclr pass
		// over the reused batch. Dispatch is an if/else chain in
		// event-frequency order (memory ops, instr runs, block marks,
		// branches): a 6-way switch compiles to a balanced compare tree
		// that mispredicts more on the skewed kind mix of real traces.
		k := trace.Kind(kinds[i])
		if k == trace.Load || k == trace.Store {
			// PC delta: a one-byte fast path (consecutive memory ops sit
			// close together), then a branchless multi-byte decode — one
			// 8-byte load, the continuation-bit mask m gives both the
			// length and (as m^(m-1)) the payload mask, and three
			// shift-mask steps compact the 7-bit groups. Varints past 8
			// bytes and the column tail fall back to the generic decoder.
			if pp < pEnd && data[pp] < 0x80 {
				lastPC = uint64(int64(lastPC) + unzigzag(uint64(data[pp])))
				pp++
			} else if pp+8 <= pEnd {
				x := binary.LittleEndian.Uint64(data[pp:])
				m := ^x & 0x8080808080808080
				if m == 0 {
					v, n := uvarintSlowAt(data[:pEnd], pp)
					if n <= 0 {
						return false
					}
					pp += n
					lastPC = uint64(int64(lastPC) + unzigzag(v))
				} else {
					x &= m ^ (m - 1)
					x = (x&0x7f007f007f007f00)>>1 | x&0x007f007f007f007f
					x = (x&0x3fff00003fff0000)>>2 | x&0x00003fff00003fff
					x = (x&0x0fffffff00000000)>>4 | x&0x000000000fffffff
					pp += bits.TrailingZeros64(m)>>3 + 1
					lastPC = uint64(int64(lastPC) + unzigzag(x))
				}
			} else {
				v, n := uvarintSlowAt(data[:pEnd], pp)
				if n <= 0 {
					return false
				}
				pp += n
				lastPC = uint64(int64(lastPC) + unzigzag(v))
			}
			// Addr deltas commonly span several bytes (cache-line and
			// array-switch strides zigzag past one byte), so skip the
			// one-byte fast path and decode branchlessly straight away.
			if ap+8 <= aEnd {
				x := binary.LittleEndian.Uint64(data[ap:])
				m := ^x & 0x8080808080808080
				if m == 0 {
					v, n := uvarintSlowAt(data[:aEnd], ap)
					if n <= 0 {
						return false
					}
					ap += n
					lastAddr = uint64(int64(lastAddr) + unzigzag(v))
				} else {
					x &= m ^ (m - 1)
					x = (x&0x7f007f007f007f00)>>1 | x&0x007f007f007f007f
					x = (x&0x3fff00003fff0000)>>2 | x&0x00003fff00003fff
					x = (x&0x0fffffff00000000)>>4 | x&0x000000000fffffff
					ap += bits.TrailingZeros64(m)>>3 + 1
					lastAddr = uint64(int64(lastAddr) + unzigzag(x))
				}
			} else {
				v, n := uvarintSlowAt(data[:aEnd], ap)
				if n <= 0 {
					return false
				}
				ap += n
				lastAddr = uint64(int64(lastAddr) + unzigzag(v))
			}
			out[i] = trace.Event{Kind: k, PC: lastPC, Addr: mem.Addr(lastAddr)}
		} else if k == trace.Instr {
			var v uint64
			if np < nEnd && data[np] < 0x80 {
				v = uint64(data[np])
				np++
			} else {
				var n int
				if v, n = uvarintSlowAt(data[:nEnd], np); n <= 0 || v > trace.MaxInstrCount {
					return false
				}
				np += n
			}
			out[i] = trace.Event{Kind: trace.Instr, N: int(v)}
		} else if k == trace.BlockBegin || k == trace.BlockEnd {
			var v uint64
			if bp < bEnd && data[bp] < 0x80 {
				v = uint64(data[bp])
				bp++
			} else {
				var n int
				if v, n = uvarintSlowAt(data[:bEnd], bp); n <= 0 || v > trace.MaxBlockID {
					return false
				}
				bp += n
			}
			out[i] = trace.Event{Kind: k, Block: int(v)}
		} else if k == trace.Branch {
			// Branch PC deltas: same fast path + branchless decode as
			// Load/Store, in its own arm so the memory-op path stays
			// free of the per-branch taken-bit work.
			if pp < pEnd && data[pp] < 0x80 {
				lastPC = uint64(int64(lastPC) + unzigzag(uint64(data[pp])))
				pp++
			} else if pp+8 <= pEnd {
				x := binary.LittleEndian.Uint64(data[pp:])
				m := ^x & 0x8080808080808080
				if m == 0 {
					v, n := uvarintSlowAt(data[:pEnd], pp)
					if n <= 0 {
						return false
					}
					pp += n
					lastPC = uint64(int64(lastPC) + unzigzag(v))
				} else {
					x &= m ^ (m - 1)
					x = (x&0x7f007f007f007f00)>>1 | x&0x007f007f007f007f
					x = (x&0x3fff00003fff0000)>>2 | x&0x00003fff00003fff
					x = (x&0x0fffffff00000000)>>4 | x&0x000000000fffffff
					pp += bits.TrailingZeros64(m)>>3 + 1
					lastPC = uint64(int64(lastPC) + unzigzag(x))
				}
			} else {
				v, n := uvarintSlowAt(data[:pEnd], pp)
				if n <= 0 {
					return false
				}
				pp += n
				lastPC = uint64(int64(lastPC) + unzigzag(v))
			}
			ti := bEnd + int(tb>>3)
			if ti >= len(data) {
				return false
			}
			out[i] = trace.Event{Kind: trace.Branch, PC: lastPC, Taken: data[ti]>>(tb&7)&1 != 0}
			tb++
		} else {
			return false
		}
	}
	// Every column must be fully consumed: trailing bytes would mean
	// the index lied about the column lengths.
	if pp != pEnd || ap != aEnd || np != nEnd || bp != bEnd {
		return false
	}
	return bEnd+(int(tb)+7)/8 == len(data)
}

// uvarintSlowAt is the multi-byte (and end-of-column) varint tail of
// the hand-inlined fast paths in decodeBlock. It returns the value and
// the number of bytes consumed (0 at the end of the column, negative
// on overflow), mirroring binary.Uvarint.
//
//cbws:hotpath
func uvarintSlowAt(col []byte, p int) (uint64, int) {
	if p >= len(col) {
		return 0, 0
	}
	return binary.Uvarint(col[p:])
}
